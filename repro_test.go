package repro_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/fleet"
	"repro/internal/telemetry"
)

func TestGenerateDatasetErrors(t *testing.T) {
	if _, err := repro.GenerateDataset("60-end-1", 0.05, 1); err == nil {
		t.Error("unknown dataset should fail")
	}
	if _, err := repro.GenerateDataset("60-middle-1", 0, 1); err == nil {
		t.Error("zero scale should fail")
	}
	if _, err := repro.GenerateDataset("60-middle-1", 2, 1); err == nil {
		t.Error("scale > 1 should fail")
	}
}

func TestGenerateAndTrainFacade(t *testing.T) {
	ds, err := repro.GenerateDataset("60-middle-1", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Challenge.Train.Len() == 0 || ds.Challenge.Test.Len() == 0 {
		t.Fatal("empty dataset")
	}
	res, err := repro.TrainRFCov(ds, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.25 {
		t.Errorf("facade RF-Cov accuracy %.3f at 5%% scale", res.Accuracy)
	}
	if len(res.ClassNames) != 26 {
		t.Errorf("got %d class names", len(res.ClassNames))
	}
	if res.Confusion == nil || res.Model == nil {
		t.Error("missing result fields")
	}
}

func TestRunExperimentMetaTables(t *testing.T) {
	for _, table := range []string{"1", "2", "7"} {
		out, err := repro.RunExperiment(table, "smoke")
		if err != nil {
			t.Fatalf("table %s: %v", table, err)
		}
		if len(out) == 0 {
			t.Errorf("table %s produced no output", table)
		}
	}
	out, err := repro.RunExperiment("4", "smoke")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "60-middle-1") {
		t.Errorf("table 4 output missing datasets:\n%s", out)
	}
	if _, err := repro.RunExperiment("12", "smoke"); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := repro.RunExperiment("1", "warp"); err == nil {
		t.Error("unknown preset should fail")
	}
}

func TestFleetFacade(t *testing.T) {
	ds, err := repro.GenerateDataset("60-middle-1", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.TrainRFCov(ds, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := repro.NewFleet(ds, res, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Stream a handful of live jobs through the fleet via the multi-job
	// replay source and check each gets a well-formed prediction.
	var live []*telemetry.Job
	for _, j := range ds.Sim.Jobs() {
		if j.Duration >= 62 {
			live = append(live, j)
		}
		if len(live) == 4 {
			break
		}
	}
	if len(live) == 0 {
		t.Fatal("no streamable jobs at this scale")
	}
	r, err := telemetry.NewReplay(live, 0, 0, 61.5)
	if err != nil {
		t.Fatal(err)
	}
	for {
		s, ok := r.Next()
		if !ok {
			break
		}
		if err := m.Ingest(s.JobID, s.Values); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := m.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Classified != len(live) {
		t.Fatalf("classified %d jobs, want %d", stats.Classified, len(live))
	}
	for _, j := range live {
		pred, ok := m.Prediction(j.ID)
		if !ok {
			t.Fatalf("job %d: no prediction", j.ID)
		}
		if len(pred.Probs) != len(res.ClassNames) || pred.Class < 0 || pred.Class >= len(res.ClassNames) {
			t.Fatalf("job %d: malformed prediction %+v", j.ID, pred)
		}
	}
}

// TestShardedFleetFacade checks the sharded serving core built by the
// facade classifies the same replay bit-identically to the single-monitor
// facade fleet: sharding changes throughput, never predictions.
func TestShardedFleetFacade(t *testing.T) {
	ds, err := repro.GenerateDataset("60-middle-1", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.TrainRFCov(ds, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	single, err := repro.NewFleet(ds, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	core, err := repro.NewShardedFleet(ds, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := core.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}

	var live []*telemetry.Job
	for _, j := range ds.Sim.Jobs() {
		if j.Duration >= 62 {
			live = append(live, j)
		}
		if len(live) == 4 {
			break
		}
	}
	if len(live) == 0 {
		t.Fatal("no streamable jobs at this scale")
	}
	r, err := telemetry.NewReplay(live, 0, 0, 61.5)
	if err != nil {
		t.Fatal(err)
	}
	for {
		s, ok := r.Next()
		if !ok {
			break
		}
		if err := single.Ingest(s.JobID, s.Values); err != nil {
			t.Fatal(err)
		}
		if err := core.Ingest(s.JobID, s.Values); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := single.Tick(); err != nil {
		t.Fatal(err)
	}
	stats, err := core.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Classified != len(live) {
		t.Fatalf("sharded core classified %d jobs, want %d", stats.Classified, len(live))
	}
	for _, j := range live {
		want, ok := single.Prediction(j.ID)
		if !ok {
			t.Fatalf("job %d: single monitor has no prediction", j.ID)
		}
		got, ok := core.Prediction(j.ID)
		if !ok {
			t.Fatalf("job %d: sharded core has no prediction", j.ID)
		}
		if got.Class != want.Class || got.Probability != want.Probability {
			t.Fatalf("job %d: sharded (%d, %v) vs single (%d, %v)",
				j.ID, got.Class, got.Probability, want.Class, want.Probability)
		}
		for c := range want.Probs {
			if got.Probs[c] != want.Probs[c] {
				t.Fatalf("job %d class %d: not bit-identical", j.ID, c)
			}
		}
	}
}

// TestSaveLoadModelFacade pins the offline-train / online-serve split: a
// model saved with SaveModel and restored with LoadModel must classify live
// windows bit-identically to the in-memory pipeline, without any retraining.
func TestSaveLoadModelFacade(t *testing.T) {
	ds, err := repro.GenerateDataset("60-middle-1", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.TrainRFCov(ds, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rf-cov.wcc")
	if err := repro.SaveModel(path, ds, res); err != nil {
		t.Fatal(err)
	}
	lm, err := repro.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	meta := lm.Artifact.Meta
	if meta.Dataset != "60-middle-1" || meta.Scale != 0.05 || meta.Seed != 1 {
		t.Fatalf("provenance did not survive: %+v", meta)
	}
	if meta.Window != ds.Challenge.Train.X.T || meta.Sensors != ds.Challenge.Train.X.C {
		t.Fatalf("window shape %dx%d", meta.Window, meta.Sensors)
	}
	if meta.Accuracy != res.Accuracy {
		t.Fatalf("accuracy %v, want %v", meta.Accuracy, res.Accuracy)
	}
	if res.Drift == nil {
		t.Fatal("TrainRFCov did not calibrate open-set drift")
	}
	if lm.Artifact.Drift == nil {
		t.Fatal("drift calibration did not survive the artifact")
	}
	if lm.Artifact.Drift.Threshold != res.Drift.Threshold {
		t.Fatalf("threshold drifted through the artifact: %+v vs %+v",
			lm.Artifact.Drift.Threshold, res.Drift.Threshold)
	}

	// Serve identical telemetry through a fleet from the in-memory model and
	// one from the artifact; predictions must agree bit for bit.
	mMem, err := repro.NewFleet(ds, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	mArt, err := lm.NewFleet(0)
	if err != nil {
		t.Fatal(err)
	}
	var live []*telemetry.Job
	for _, j := range ds.Sim.Jobs() {
		if j.Duration >= 62 {
			live = append(live, j)
		}
		if len(live) == 3 {
			break
		}
	}
	if len(live) == 0 {
		t.Fatal("no streamable jobs at this scale")
	}
	for _, monitor := range []*fleet.Monitor{mMem, mArt} {
		r, err := telemetry.NewReplay(live, 0, 0, 61.5)
		if err != nil {
			t.Fatal(err)
		}
		for {
			s, ok := r.Next()
			if !ok {
				break
			}
			if err := monitor.Ingest(s.JobID, s.Values); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := monitor.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range live {
		want, ok1 := mMem.Prediction(j.ID)
		got, ok2 := mArt.Prediction(j.ID)
		if !ok1 || !ok2 {
			t.Fatalf("job %d: missing prediction (mem %v, artifact %v)", j.ID, ok1, ok2)
		}
		if got.Class != want.Class || got.Probability != want.Probability {
			t.Fatalf("job %d: artifact fleet (%d, %v) vs in-memory fleet (%d, %v)",
				j.ID, got.Class, got.Probability, want.Class, want.Probability)
		}
		for c := range want.Probs {
			if got.Probs[c] != want.Probs[c] {
				t.Fatalf("job %d class %d: %v vs %v (not bit-identical)", j.ID, c, got.Probs[c], want.Probs[c])
			}
		}
		// Both fleets score open-set, and the artifact path agrees with the
		// in-memory calibration verdict for verdict.
		if want.Open == nil || got.Open == nil {
			t.Fatalf("job %d: missing open-set annotation (mem %v, artifact %v)", j.ID, want.Open, got.Open)
		}
		if *want.Open != *got.Open {
			t.Fatalf("job %d: annotations differ: %+v vs %+v", j.ID, want.Open, got.Open)
		}
	}
	if st := mArt.DriftStats(); !st.Enabled || st.Samples == 0 {
		t.Fatalf("artifact fleet drift stats: %+v", st)
	}

	if _, err := repro.LoadModel(filepath.Join(t.TempDir(), "missing.wcc")); err == nil {
		t.Error("loading a missing artifact should fail")
	}
}

// TestNewServerFacade pins the public HTTP-serving entry point: train at
// tiny scale, serve the fleet over a real loopback listener, ingest one
// job's window as batched NDJSON, and read the classification back.
func TestNewServerFacade(t *testing.T) {
	ds, err := repro.GenerateDataset("60-middle-1", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.TrainRFCov(ds, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := repro.NewFleet(ds, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := repro.NewServer(m, res.ClassNames, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var live *telemetry.Job
	for _, j := range ds.Sim.Jobs() {
		if j.Duration >= 62 {
			live = j
			break
		}
	}
	if live == nil {
		t.Fatal("no streamable job at this scale")
	}
	r, err := telemetry.NewReplay([]*telemetry.Job{live}, 0, 0, 61.5)
	if err != nil {
		t.Fatal(err)
	}
	var body strings.Builder
	for {
		s, ok := r.Next()
		if !ok {
			break
		}
		line, err := json.Marshal(struct {
			Job    int       `json:"job"`
			Values []float64 `json:"values"`
		}{s.JobID, s.Values})
		if err != nil {
			t.Fatal(err)
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	var acct struct {
		Accepted int `json:"accepted"`
		Rejected int `json:"rejected"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acct); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || acct.Rejected != 0 || acct.Accepted == 0 {
		t.Fatalf("ingest: status %d, accounting %+v", resp.StatusCode, acct)
	}

	// Drain flushes the pending window into a prediction...
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%d/prediction", ts.URL, live.ID))
	if err != nil {
		t.Fatal(err)
	}
	var pred struct {
		Class     int    `json:"class"`
		ClassName string `json:"class_name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prediction status %d", resp.StatusCode)
	}
	// ...and the served result matches the in-process registry.
	want, ok := m.Prediction(live.ID)
	if !ok || pred.Class != want.Class || pred.ClassName != res.ClassNames[want.Class] {
		t.Fatalf("served prediction %+v vs monitor %+v (ok=%v)", pred, want, ok)
	}
}
