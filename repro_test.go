package repro_test

import (
	"strings"
	"testing"

	"repro"
)

func TestGenerateDatasetErrors(t *testing.T) {
	if _, err := repro.GenerateDataset("60-end-1", 0.05, 1); err == nil {
		t.Error("unknown dataset should fail")
	}
	if _, err := repro.GenerateDataset("60-middle-1", 0, 1); err == nil {
		t.Error("zero scale should fail")
	}
	if _, err := repro.GenerateDataset("60-middle-1", 2, 1); err == nil {
		t.Error("scale > 1 should fail")
	}
}

func TestGenerateAndTrainFacade(t *testing.T) {
	ds, err := repro.GenerateDataset("60-middle-1", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Challenge.Train.Len() == 0 || ds.Challenge.Test.Len() == 0 {
		t.Fatal("empty dataset")
	}
	res, err := repro.TrainRFCov(ds, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.25 {
		t.Errorf("facade RF-Cov accuracy %.3f at 5%% scale", res.Accuracy)
	}
	if len(res.ClassNames) != 26 {
		t.Errorf("got %d class names", len(res.ClassNames))
	}
	if res.Confusion == nil || res.Model == nil {
		t.Error("missing result fields")
	}
}

func TestRunExperimentMetaTables(t *testing.T) {
	for _, table := range []string{"1", "2", "7"} {
		out, err := repro.RunExperiment(table, "smoke")
		if err != nil {
			t.Fatalf("table %s: %v", table, err)
		}
		if len(out) == 0 {
			t.Errorf("table %s produced no output", table)
		}
	}
	out, err := repro.RunExperiment("4", "smoke")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "60-middle-1") {
		t.Errorf("table 4 output missing datasets:\n%s", out)
	}
	if _, err := repro.RunExperiment("12", "smoke"); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := repro.RunExperiment("1", "warp"); err == nil {
		t.Error("unknown preset should fail")
	}
}
