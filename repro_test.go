package repro_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/telemetry"
)

func TestGenerateDatasetErrors(t *testing.T) {
	if _, err := repro.GenerateDataset("60-end-1", 0.05, 1); err == nil {
		t.Error("unknown dataset should fail")
	}
	if _, err := repro.GenerateDataset("60-middle-1", 0, 1); err == nil {
		t.Error("zero scale should fail")
	}
	if _, err := repro.GenerateDataset("60-middle-1", 2, 1); err == nil {
		t.Error("scale > 1 should fail")
	}
}

func TestGenerateAndTrainFacade(t *testing.T) {
	ds, err := repro.GenerateDataset("60-middle-1", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Challenge.Train.Len() == 0 || ds.Challenge.Test.Len() == 0 {
		t.Fatal("empty dataset")
	}
	res, err := repro.TrainRFCov(ds, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.25 {
		t.Errorf("facade RF-Cov accuracy %.3f at 5%% scale", res.Accuracy)
	}
	if len(res.ClassNames) != 26 {
		t.Errorf("got %d class names", len(res.ClassNames))
	}
	if res.Confusion == nil || res.Model == nil {
		t.Error("missing result fields")
	}
}

func TestRunExperimentMetaTables(t *testing.T) {
	for _, table := range []string{"1", "2", "7"} {
		out, err := repro.RunExperiment(table, "smoke")
		if err != nil {
			t.Fatalf("table %s: %v", table, err)
		}
		if len(out) == 0 {
			t.Errorf("table %s produced no output", table)
		}
	}
	out, err := repro.RunExperiment("4", "smoke")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "60-middle-1") {
		t.Errorf("table 4 output missing datasets:\n%s", out)
	}
	if _, err := repro.RunExperiment("12", "smoke"); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := repro.RunExperiment("1", "warp"); err == nil {
		t.Error("unknown preset should fail")
	}
}

func TestFleetFacade(t *testing.T) {
	ds, err := repro.GenerateDataset("60-middle-1", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.TrainRFCov(ds, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := repro.NewFleet(ds, res, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Stream a handful of live jobs through the fleet via the multi-job
	// replay source and check each gets a well-formed prediction.
	var live []*telemetry.Job
	for _, j := range ds.Sim.Jobs() {
		if j.Duration >= 62 {
			live = append(live, j)
		}
		if len(live) == 4 {
			break
		}
	}
	if len(live) == 0 {
		t.Fatal("no streamable jobs at this scale")
	}
	r, err := telemetry.NewReplay(live, 0, 0, 61.5)
	if err != nil {
		t.Fatal(err)
	}
	for {
		s, ok := r.Next()
		if !ok {
			break
		}
		if err := m.Ingest(s.JobID, s.Values); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := m.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Classified != len(live) {
		t.Fatalf("classified %d jobs, want %d", stats.Classified, len(live))
	}
	for _, j := range live {
		pred, ok := m.Prediction(j.ID)
		if !ok {
			t.Fatalf("job %d: no prediction", j.ID)
		}
		if len(pred.Probs) != len(res.ClassNames) || pred.Class < 0 || pred.Class >= len(res.ClassNames) {
			t.Fatalf("job %d: malformed prediction %+v", j.ID, pred)
		}
	}
}
