package forest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// randomProblem builds an n-row, d-feature training set with k random
// labels — enough structure to grow real splits, no structure that could
// mask a traversal bug behind constant leaves.
func randomProblem(rng *rand.Rand, n, d, k int) (*mat.Matrix, []int) {
	x := mat.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, rng.NormFloat64()*3)
		}
		y[i] = rng.Intn(k)
	}
	return x, y
}

// hostileRows builds an evaluation batch whose rows mix ordinary values
// with NaN, ±Inf, exact zeros, and huge magnitudes, so the flat walk's
// comparison semantics (NaN routes right, same as `!(v <= thr)`) are
// pinned on every edge the pointer walk has.
func hostileRows(rng *rand.Rand, rows, d int) *mat.Matrix {
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), 1e300, -1e300, 5e-324}
	x := mat.New(rows, d)
	for i := 0; i < rows; i++ {
		for j := 0; j < d; j++ {
			if rng.Intn(3) == 0 {
				x.Set(i, j, specials[rng.Intn(len(specials))])
			} else {
				x.Set(i, j, rng.NormFloat64()*3)
			}
		}
	}
	return x
}

// pointerOnly clones a fitted forest without its flat form, forcing
// PredictProbaBatch down the pointer-tree fallback.
func pointerOnly(f *Classifier) *Classifier {
	return &Classifier{cfg: f.cfg, trees: f.trees, numClasses: f.numClasses, numFeats: f.numFeats}
}

// TestEquivalenceFlatForest pins the flat node-array kernel bit-identical
// to both the pointer-tree block walk and the serial per-row path, across
// ensemble shapes, worker counts, and hostile inputs including empty and
// single-row batches.
func TestEquivalenceFlatForest(t *testing.T) {
	cases := []struct {
		name                     string
		trees, depth, classes, d int
	}{
		{"shallow-binary", 5, 2, 2, 3},
		{"deep-binary", 20, 0, 2, 5},
		{"multiclass", 15, 6, 5, 7},
		{"stumps-manyclass", 40, 1, 8, 4},
	}
	rng := rand.New(rand.NewSource(42))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, y := randomProblem(rng, 240, tc.d, tc.classes)
			f := New(Config{NumTrees: tc.trees, MaxDepth: tc.depth, Seed: 9, Bootstrap: true, Workers: 3})
			if err := f.Fit(x, y, tc.classes); err != nil {
				t.Fatal(err)
			}
			if f.flat == nil {
				t.Fatal("Fit left no compiled flat form")
			}
			ptr := pointerOnly(f)
			for _, rows := range []int{0, 1, 37} {
				ev := hostileRows(rng, rows, tc.d)
				got, err := f.PredictProbaBatch(ev)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ptr.PredictProbaBatch(ev)
				if err != nil {
					t.Fatal(err)
				}
				serial, err := f.PredictProba(ev)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want.Data {
					if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
						t.Fatalf("rows=%d: element %d: flat %v vs pointer %v", rows, i, got.Data[i], want.Data[i])
					}
					if math.Float64bits(got.Data[i]) != math.Float64bits(serial.Data[i]) {
						t.Fatalf("rows=%d: element %d: flat %v vs serial %v", rows, i, got.Data[i], serial.Data[i])
					}
				}
			}
		})
	}
}

// TestFlatForestCompiledShape checks the relayout invariants the kernel
// relies on: one root per tree, right child adjacent to left, and leaf
// probability blocks of exactly numClasses.
func TestFlatForestCompiledShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := randomProblem(rng, 120, 4, 3)
	f := New(Config{NumTrees: 8, MaxDepth: 5, Seed: 3, Bootstrap: true})
	if err := f.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	fl := f.flat
	if len(fl.roots) != 8 {
		t.Fatalf("%d roots for 8 trees", len(fl.roots))
	}
	if len(fl.feat) != len(fl.thr) || len(fl.feat) != len(fl.kids) {
		t.Fatalf("ragged arrays: %d/%d/%d", len(fl.feat), len(fl.thr), len(fl.kids))
	}
	if len(fl.probs)%fl.numClasses != 0 {
		t.Fatalf("probs length %d not a multiple of %d classes", len(fl.probs), fl.numClasses)
	}
	for id, ft := range fl.feat {
		if ft < 0 {
			if off := int(fl.kids[id]); off < 0 || off+fl.numClasses > len(fl.probs) {
				t.Fatalf("leaf %d has out-of-range probs offset %d", id, off)
			}
			continue
		}
		if k := int(fl.kids[id]); k <= id || k+1 >= len(fl.feat) {
			t.Fatalf("node %d has out-of-range children at %d", id, k)
		}
	}
}
