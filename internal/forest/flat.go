package forest

import (
	"repro/internal/mat"
	"repro/internal/tree"
)

// flatForest is the compiled inference form of a fitted ensemble: every
// tree's nodes in one contiguous structure-of-arrays layout, children laid
// out adjacently so the traversal picks a child by offset arithmetic
// instead of chasing per-node pointers. It is built once — at Fit or Decode
// time — and is immutable afterwards, so ticks on many goroutines can walk
// it without synchronisation.
//
// Per node:
//
//	feat[id]  split feature index, or -1 for a leaf
//	thr[id]   split threshold (unused for leaves)
//	kids[id]  internal node: index of the left child; the right child is
//	          always kids[id]+1 (breadth-first relayout guarantees the
//	          pair is adjacent). Leaf: offset of the node's class
//	          distribution in probs.
//
// probs concatenates every leaf's numClasses-wide distribution. The walk
// uses the same `value <= threshold` comparison as the pointer tree — NaN
// routes right on both — and the batch kernel accumulates tree
// contributions in ensemble order followed by one scaling, exactly as
// predictProbaInto, so results are bit-identical to the pointer paths.
type flatForest struct {
	numClasses int
	roots      []int32
	feat       []int32
	thr        []float64
	kids       []int32
	probs      []float64
}

// compileFlat flattens the ensemble. Each tree is relaid breadth-first so
// sibling children occupy adjacent slots; node count and leaf distributions
// are preserved exactly.
func compileFlat(trees []*tree.Classifier, numClasses int) *flatForest {
	f := &flatForest{
		numClasses: numClasses,
		roots:      make([]int32, 0, len(trees)),
	}
	type pending struct {
		orig int
		slot int32
	}
	var queue []pending
	for _, t := range trees {
		nodes := t.ExportNodes()
		root := int32(len(f.feat))
		f.roots = append(f.roots, root)
		f.feat = append(f.feat, 0)
		f.thr = append(f.thr, 0)
		f.kids = append(f.kids, 0)
		queue = append(queue[:0], pending{orig: 0, slot: root})
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			nd := &nodes[p.orig]
			if nd.Leaf {
				f.feat[p.slot] = -1
				f.kids[p.slot] = int32(len(f.probs))
				f.probs = append(f.probs, nd.Probs...)
				continue
			}
			left := int32(len(f.feat))
			f.feat = append(f.feat, 0, 0)
			f.thr = append(f.thr, 0, 0)
			f.kids = append(f.kids, 0, 0)
			f.feat[p.slot] = int32(nd.Feature)
			f.thr[p.slot] = nd.Threshold
			f.kids[p.slot] = left
			queue = append(queue, pending{orig: nd.Left, slot: left}, pending{orig: nd.Right, slot: left + 1})
		}
	}
	return f
}

// scoreBlock accumulates the ensemble's averaged leaf distributions for
// rows [lo, hi) into out. Tree-outer iteration keeps the flat arrays hot in
// cache while each tree sweeps the block, and the sweep walks four rows at
// a time: each walk is a serial chain of data-dependent loads, so four
// independent lanes let the core overlap their latencies. Lanes that reach
// a leaf early idle (their feat sentinel goes negative) until the slowest
// lane finishes. Per-row accumulation order and the final scaling match
// predictProbaInto bit for bit; interleaving rows never reorders any
// single row's additions.
//
//wcc:hotpath zero allocations per call, pinned by an AllocsPerRun gate
func (f *flatForest) scoreBlock(x, out *mat.Matrix, lo, hi int) {
	nc := f.numClasses
	feat, thr, kids, probs := f.feat, f.thr, f.kids, f.probs
	xd, xc := x.Data, x.Cols
	od, oc := out.Data, out.Cols
	for _, root := range f.roots {
		i := lo
		for ; i+4 <= hi; i += 4 {
			r0 := xd[(i+0)*xc : (i+1)*xc]
			r1 := xd[(i+1)*xc : (i+2)*xc]
			r2 := xd[(i+2)*xc : (i+3)*xc]
			r3 := xd[(i+3)*xc : (i+4)*xc]
			id0, id1, id2, id3 := root, root, root, root
			f0, f1, f2, f3 := feat[id0], feat[id1], feat[id2], feat[id3]
			for f0 >= 0 || f1 >= 0 || f2 >= 0 || f3 >= 0 {
				if f0 >= 0 {
					step := int32(1)
					if r0[f0] <= thr[id0] {
						step = 0
					}
					id0 = kids[id0] + step
					f0 = feat[id0]
				}
				if f1 >= 0 {
					step := int32(1)
					if r1[f1] <= thr[id1] {
						step = 0
					}
					id1 = kids[id1] + step
					f1 = feat[id1]
				}
				if f2 >= 0 {
					step := int32(1)
					if r2[f2] <= thr[id2] {
						step = 0
					}
					id2 = kids[id2] + step
					f2 = feat[id2]
				}
				if f3 >= 0 {
					step := int32(1)
					if r3[f3] <= thr[id3] {
						step = 0
					}
					id3 = kids[id3] + step
					f3 = feat[id3]
				}
			}
			addLeaf(od[(i+0)*oc:(i+0)*oc+nc], probs, int(kids[id0]), nc)
			addLeaf(od[(i+1)*oc:(i+1)*oc+nc], probs, int(kids[id1]), nc)
			addLeaf(od[(i+2)*oc:(i+2)*oc+nc], probs, int(kids[id2]), nc)
			addLeaf(od[(i+3)*oc:(i+3)*oc+nc], probs, int(kids[id3]), nc)
		}
		for ; i < hi; i++ {
			row := xd[i*xc : (i+1)*xc]
			id := root
			for {
				ft := feat[id]
				if ft < 0 {
					break
				}
				// Conditional-select phrasing (not a guarded increment)
				// so the compiler emits SETcc instead of a branch: the
				// split direction is data-dependent and near 50/50.
				// NaN routes right, exactly like `!(v <= thr)`.
				step := int32(1)
				if row[ft] <= thr[id] {
					step = 0
				}
				id = kids[id] + step
			}
			addLeaf(od[i*oc:i*oc+nc], probs, int(kids[id]), nc)
		}
	}
	inv := 1.0 / float64(len(f.roots))
	for i := lo; i < hi; i++ {
		dst := od[i*oc : i*oc+nc]
		for c := range dst {
			dst[c] *= inv
		}
	}
}

// addLeaf adds the nc-wide leaf distribution at probs[off:] into dst. The
// full-slice reslices let the compiler drop bounds checks from the add loop.
func addLeaf(dst, probs []float64, off, nc int) {
	src := probs[off : off+nc : off+nc]
	dst = dst[:nc:nc]
	for c, v := range src {
		dst[c] += v
	}
}
