package forest

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func fitSmallForest(t *testing.T, seed int64) (*Classifier, *mat.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := mat.New(150, 8)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.Intn(4)
	}
	f := New(Config{NumTrees: 12, MaxDepth: 7, Bootstrap: true, Seed: seed})
	if err := f.Fit(x, y, 4); err != nil {
		t.Fatal(err)
	}
	eval := mat.New(60, 8)
	for i := range eval.Data {
		eval.Data[i] = rng.NormFloat64()
	}
	return f, eval
}

// TestCodecRoundTrip pins Fit → Encode → Decode → PredictProbaBatch
// bit-identical to the in-memory forest on the same inputs.
func TestCodecRoundTrip(t *testing.T) {
	f, eval := fitSmallForest(t, 11)
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTrees() != f.NumTrees() {
		t.Fatalf("decoded %d trees, want %d", got.NumTrees(), f.NumTrees())
	}
	want, err := f.PredictProbaBatch(eval)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.PredictProbaBatch(eval)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if have.Data[i] != want.Data[i] {
			t.Fatalf("prob[%d]: %v vs %v (not bit-identical)", i, have.Data[i], want.Data[i])
		}
	}

	wantImp := f.FeatureImportances()
	for i, v := range got.FeatureImportances() {
		if v != wantImp[i] {
			t.Fatalf("importance %d: %v vs %v", i, v, wantImp[i])
		}
	}
}

func TestEncodeUnfitted(t *testing.T) {
	if err := New(DefaultConfig()).Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("encoding an unfitted forest should fail")
	}
}

// TestOOBUnavailableAfterDecode pins that a decoded forest reports a
// descriptive error for OOBScore instead of panicking on the missing
// training-time out-of-bag state.
func TestOOBUnavailableAfterDecode(t *testing.T) {
	f, eval := fitSmallForest(t, 13)
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	y := make([]int, eval.Rows)
	if _, err := got.OOBScore(eval, y); err == nil {
		t.Fatal("OOBScore on a decoded forest should fail")
	}
}

// TestDecodeRejectsMismatchedTreeHeader pins the crafted-payload defence: a
// forest header claiming fewer classes than its embedded trees must fail to
// decode instead of panicking later when a leaf distribution overruns the
// forest's accumulator rows.
func TestDecodeRejectsMismatchedTreeHeader(t *testing.T) {
	f, _ := fitSmallForest(t, 19) // fitted for 4 classes
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Forest header layout: u16 version, 4 int64 config fields, bool,
	// 2 int64 (workers, seed), then numClasses at this offset.
	const numClassesOff = 2 + 4*8 + 1 + 2*8
	if raw[numClassesOff] != 4 {
		t.Fatalf("header layout drifted: numClasses byte = %d", raw[numClassesOff])
	}
	raw[numClassesOff] = 2
	_, err := Decode(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("mismatched tree/forest class counts decoded successfully")
	}
}

func TestDecodeTruncations(t *testing.T) {
	f, _ := fitSmallForest(t, 17)
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 997 {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}
