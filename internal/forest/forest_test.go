package forest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// gaussianBlobs builds a k-class problem with Gaussian clusters.
func gaussianBlobs(n, k int, spread float64, seed int64) (*mat.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := mat.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		angle := 2 * math.Pi * float64(c) / float64(k)
		x.Set(i, 0, 3*math.Cos(angle)+rng.NormFloat64()*spread)
		x.Set(i, 1, 3*math.Sin(angle)+rng.NormFloat64()*spread)
		y[i] = c
	}
	return x, y
}

func TestForestSeparableBlobs(t *testing.T) {
	x, y := gaussianBlobs(300, 3, 0.5, 1)
	f := New(Config{NumTrees: 30, Seed: 1, Bootstrap: true})
	if err := f.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	xt, yt := gaussianBlobs(150, 3, 0.5, 2)
	pred, err := f.Predict(xt)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, p := range pred {
		if p == yt[i] {
			correct++
		}
	}
	if acc := float64(correct) / 150; acc < 0.95 {
		t.Errorf("test accuracy %v on separable blobs", acc)
	}
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	// With label noise, the bagged ensemble should generalise at least as
	// well as one deep tree.
	rng := rand.New(rand.NewSource(3))
	x, y := gaussianBlobs(400, 4, 1.2, 3)
	for i := range y {
		if rng.Float64() < 0.1 {
			y[i] = rng.Intn(4)
		}
	}
	xt, yt := gaussianBlobs(300, 4, 1.2, 4)

	single := New(Config{NumTrees: 1, Seed: 5, Bootstrap: false})
	if err := single.Fit(x, y, 4); err != nil {
		t.Fatal(err)
	}
	ens := New(Config{NumTrees: 60, Seed: 5, Bootstrap: true})
	if err := ens.Fit(x, y, 4); err != nil {
		t.Fatal(err)
	}
	accOf := func(f *Classifier) float64 {
		pred, err := f.Predict(xt)
		if err != nil {
			t.Fatal(err)
		}
		c := 0
		for i, p := range pred {
			if p == yt[i] {
				c++
			}
		}
		return float64(c) / float64(len(yt))
	}
	a1, aN := accOf(single), accOf(ens)
	if aN < a1-0.02 {
		t.Errorf("ensemble accuracy %v below single tree %v", aN, a1)
	}
}

func TestPredictProbaRowsSumToOne(t *testing.T) {
	x, y := gaussianBlobs(120, 3, 0.8, 7)
	f := New(Config{NumTrees: 10, Seed: 2, Bootstrap: true})
	if err := f.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	probs, err := f.PredictProba(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < probs.Rows; i++ {
		sum := mat.SumSlice(probs.Row(i))
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d probs sum to %v", i, sum)
		}
	}
}

func TestOOBScore(t *testing.T) {
	x, y := gaussianBlobs(300, 3, 0.5, 9)
	f := New(Config{NumTrees: 40, Seed: 3, Bootstrap: true})
	if err := f.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	oob, err := f.OOBScore(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if oob < 0.9 {
		t.Errorf("OOB score %v on separable blobs", oob)
	}
	noBoot := New(Config{NumTrees: 5, Seed: 3, Bootstrap: false})
	if err := noBoot.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := noBoot.OOBScore(x, y); err == nil {
		t.Error("OOB without bootstrap should fail")
	}
}

func TestForestDeterminism(t *testing.T) {
	x, y := gaussianBlobs(200, 3, 1.0, 11)
	cfg := Config{NumTrees: 20, Seed: 42, Bootstrap: true, Workers: 4}
	f1, f2 := New(cfg), New(cfg)
	if err := f1.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	if err := f2.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	p1, _ := f1.PredictProba(x)
	p2, _ := f2.PredictProba(x)
	if !mat.Equal(p1, p2, 0) {
		t.Error("same seed produced different forests despite concurrency")
	}
}

func TestForestErrors(t *testing.T) {
	f := New(DefaultConfig())
	if err := f.Fit(mat.New(2, 2), []int{0}, 2); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := f.Fit(mat.New(0, 2), nil, 2); err == nil {
		t.Error("empty training set should fail")
	}
	if _, err := f.Predict(mat.New(1, 2)); err == nil {
		t.Error("predict before fit should fail")
	}
}

func TestForestFeatureImportances(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 300
	x := mat.New(n, 4)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		if x.At(i, 2) > 0 {
			y[i] = 1
		}
	}
	f := New(Config{NumTrees: 30, Seed: 17, Bootstrap: true})
	if err := f.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportances()
	for j := 0; j < 4; j++ {
		if j != 2 && imp[j] > imp[2] {
			t.Errorf("noise feature %d importance %v exceeds signal %v", j, imp[j], imp[2])
		}
	}
}

func TestNumTreesConfigDefaults(t *testing.T) {
	f := New(Config{})
	x, y := gaussianBlobs(60, 2, 0.5, 19)
	if err := f.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 100 {
		t.Errorf("default ensemble size %d, want 100", f.NumTrees())
	}
}

// TestPredictProbaBatchBitIdentical pins the fleet serving invariant: the
// worker-pool batched path must return exactly the probabilities the serial
// path does, for any worker count.
func TestPredictProbaBatchBitIdentical(t *testing.T) {
	x, y := gaussianBlobs(300, 4, 0.9, 11)
	for _, workers := range []int{0, 1, 3, 16} {
		f := New(Config{NumTrees: 25, Seed: 9, Bootstrap: true, Workers: workers})
		if err := f.Fit(x, y, 4); err != nil {
			t.Fatal(err)
		}
		want, err := f.PredictProba(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.PredictProbaBatch(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("workers=%d: element %d differs: batched %v vs serial %v",
					workers, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestPredictProbaBatchUnfitted(t *testing.T) {
	if _, err := New(Config{}).PredictProbaBatch(mat.New(1, 2)); err == nil {
		t.Error("unfitted batch predict should fail")
	}
}
