// Package forest implements a random-forest classifier — bootstrap-bagged
// CART trees with per-node feature subsampling and soft-probability voting,
// matching scikit-learn's RandomForestClassifier as used for the paper's
// best-performing baseline (RF with covariance features, Table V).
package forest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/mat"
	"repro/internal/tree"
)

// Config controls forest construction.
type Config struct {
	// NumTrees is the ensemble size (the paper grid-searches 50/100/250).
	NumTrees int
	// MaxDepth limits individual trees (0 = unlimited).
	MaxDepth int
	// MaxFeatures per split; 0 selects √d, scikit-learn's default.
	MaxFeatures int
	// MinSamplesLeaf for individual trees.
	MinSamplesLeaf int
	// Bootstrap draws n samples with replacement per tree when true
	// (scikit-learn default). When false every tree sees all rows.
	Bootstrap bool
	// Workers bounds fitting parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed makes the ensemble reproducible.
	Seed int64
}

// DefaultConfig mirrors scikit-learn defaults with 100 trees.
func DefaultConfig() Config {
	return Config{NumTrees: 100, Bootstrap: true}
}

// Classifier is a fitted random forest.
type Classifier struct {
	cfg        Config
	trees      []*tree.Classifier
	oobIdx     [][]int // per-tree out-of-bag row indices
	numClasses int
	numFeats   int
	// flat is the compiled contiguous inference form, built once at Fit or
	// Decode time and immutable afterwards; PredictProbaBatch walks it
	// instead of the pointer trees. See flat.go.
	flat *flatForest
}

// New returns an unfitted forest.
func New(cfg Config) *Classifier {
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = 100
	}
	return &Classifier{cfg: cfg}
}

// Fit trains the ensemble. Trees are grown concurrently on a bounded worker
// pool; each tree's bootstrap sample and feature subsampling derive from the
// forest seed, so results are independent of scheduling.
func (f *Classifier) Fit(x *mat.Matrix, y []int, numClasses int) error {
	if x.Rows != len(y) {
		return fmt.Errorf("forest: %d rows vs %d labels", x.Rows, len(y))
	}
	if x.Rows == 0 {
		return errors.New("forest: empty training set")
	}
	f.numClasses = numClasses
	f.numFeats = x.Cols

	maxFeatures := f.cfg.MaxFeatures
	if maxFeatures <= 0 {
		maxFeatures = int(math.Sqrt(float64(x.Cols)))
		if maxFeatures < 1 {
			maxFeatures = 1
		}
	}

	f.trees = make([]*tree.Classifier, f.cfg.NumTrees)
	f.oobIdx = make([][]int, f.cfg.NumTrees)
	errs := make([]error, f.cfg.NumTrees)

	workers := f.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup

	for ti := 0; ti < f.cfg.NumTrees; ti++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(ti int) {
			defer wg.Done()
			defer func() { <-sem }()
			treeSeed := f.cfg.Seed + int64(ti)*7919
			rng := rand.New(rand.NewSource(treeSeed))

			idx := make([]int, x.Rows)
			if f.cfg.Bootstrap {
				seen := make([]bool, x.Rows)
				for i := range idx {
					k := rng.Intn(x.Rows)
					idx[i] = k
					seen[k] = true
				}
				var oob []int
				for i, s := range seen {
					if !s {
						oob = append(oob, i)
					}
				}
				f.oobIdx[ti] = oob
			} else {
				for i := range idx {
					idx[i] = i
				}
			}

			t := tree.New(tree.Config{
				MaxDepth:       f.cfg.MaxDepth,
				MinSamplesLeaf: f.cfg.MinSamplesLeaf,
				MaxFeatures:    maxFeatures,
				Seed:           treeSeed ^ 0x517cc1b7,
			})
			if err := t.FitIndices(x, y, idx, numClasses); err != nil {
				errs[ti] = err
				return
			}
			f.trees[ti] = t
		}(ti)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	f.flat = compileFlat(f.trees, numClasses)
	return nil
}

// predictProbaInto accumulates the ensemble's averaged leaf distribution for
// one feature row into dst. Both the serial and batched predict paths go
// through here, so their per-row results are bit-identical.
func (f *Classifier) predictProbaInto(row, dst []float64) error {
	for _, t := range f.trees {
		p, err := t.PredictProbaRow(row)
		if err != nil {
			return err
		}
		for c, v := range p {
			dst[c] += v
		}
	}
	inv := 1.0 / float64(len(f.trees))
	for c := range dst {
		dst[c] *= inv
	}
	return nil
}

// PredictProba averages leaf distributions over the ensemble.
func (f *Classifier) PredictProba(x *mat.Matrix) (*mat.Matrix, error) {
	if len(f.trees) == 0 {
		return nil, errors.New("forest: not fitted")
	}
	out := mat.New(x.Rows, f.numClasses)
	for i := 0; i < x.Rows; i++ {
		if err := f.predictProbaInto(x.Row(i), out.Row(i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// predictProbaBlock scores rows [lo, hi) with tree-outer iteration over the
// pointer trees. It is the fallback when no flat form was compiled (a
// zero-value Classifier populated by hand); fitted and decoded forests take
// flatForest.scoreBlock instead. Every accumulator receives its tree
// contributions in ensemble order followed by one scaling, exactly as
// predictProbaInto, so results are bit-identical to the serial path.
func (f *Classifier) predictProbaBlock(x, out *mat.Matrix, lo, hi int) error {
	for _, t := range f.trees {
		for i := lo; i < hi; i++ {
			p, err := t.PredictProbaRow(x.Row(i))
			if err != nil {
				return err
			}
			dst := out.Row(i)
			for c, v := range p {
				dst[c] += v
			}
		}
	}
	inv := 1.0 / float64(len(f.trees))
	for i := lo; i < hi; i++ {
		dst := out.Row(i)
		for c := range dst {
			dst[c] *= inv
		}
	}
	return nil
}

// PredictProbaBatch is the serving hot path for fleet-scale batched
// inference: one call scores the whole matrix, splitting rows into
// contiguous blocks over a bounded worker pool (cfg.Workers, 0 = GOMAXPROCS)
// and sweeping each block tree by tree over the flat node arrays compiled
// at Fit/Decode time (see flat.go) — no per-node pointer dereferences.
// Results are bit-identical to PredictProba.
func (f *Classifier) PredictProbaBatch(x *mat.Matrix) (*mat.Matrix, error) {
	if len(f.trees) == 0 {
		return nil, errors.New("forest: not fitted")
	}
	if x.Cols != f.numFeats {
		return nil, fmt.Errorf("forest: %d features, fitted on %d", x.Cols, f.numFeats)
	}
	out := mat.New(x.Rows, f.numClasses)
	if f.flat != nil {
		_ = mat.ParallelRowBlocks(x.Rows, f.cfg.Workers, func(lo, hi int) error {
			f.flat.scoreBlock(x, out, lo, hi)
			return nil
		})
		return out, nil
	}
	err := mat.ParallelRowBlocks(x.Rows, f.cfg.Workers, func(lo, hi int) error {
		return f.predictProbaBlock(x, out, lo, hi)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Predict labels every row by soft vote.
func (f *Classifier) Predict(x *mat.Matrix) ([]int, error) {
	probs, err := f.PredictProba(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, x.Rows)
	for i := range out {
		out[i] = mat.ArgMax(probs.Row(i))
	}
	return out, nil
}

// OOBScore estimates generalisation accuracy from out-of-bag votes. It needs
// Bootstrap=true and returns an error otherwise.
func (f *Classifier) OOBScore(x *mat.Matrix, y []int) (float64, error) {
	if len(f.trees) == 0 {
		return 0, errors.New("forest: not fitted")
	}
	if !f.cfg.Bootstrap {
		return 0, errors.New("forest: OOB score needs bootstrap sampling")
	}
	if len(f.oobIdx) != len(f.trees) {
		return 0, errors.New("forest: out-of-bag indices unavailable (model decoded from an artifact)")
	}
	votes := mat.New(x.Rows, f.numClasses)
	counted := make([]bool, x.Rows)
	for ti, t := range f.trees {
		for _, i := range f.oobIdx[ti] {
			p, err := t.PredictProbaRow(x.Row(i))
			if err != nil {
				return 0, err
			}
			dst := votes.Row(i)
			for c, v := range p {
				dst[c] += v
			}
			counted[i] = true
		}
	}
	correct, total := 0, 0
	for i := range counted {
		if !counted[i] {
			continue
		}
		total++
		if mat.ArgMax(votes.Row(i)) == y[i] {
			correct++
		}
	}
	if total == 0 {
		return 0, errors.New("forest: no out-of-bag samples (too few trees)")
	}
	return float64(correct) / float64(total), nil
}

// FeatureImportances averages normalised Gini importances over trees.
func (f *Classifier) FeatureImportances() []float64 {
	out := make([]float64, f.numFeats)
	if len(f.trees) == 0 {
		return out
	}
	for _, t := range f.trees {
		for i, v := range t.FeatureImportances() {
			out[i] += v
		}
	}
	inv := 1.0 / float64(len(f.trees))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// NumTrees returns the fitted ensemble size.
func (f *Classifier) NumTrees() int { return len(f.trees) }
