package forest

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/tree"
	"repro/internal/wire"
)

// codecVersion is the forest payload format; bump on incompatible layout
// changes so old readers fail descriptively instead of misloading.
const codecVersion = 1

// Encode serialises the fitted ensemble: config, shape, and every tree.
// Out-of-bag row indices are training-time state and are not persisted, so
// OOBScore is unavailable on a decoded forest; predictions are bit-identical
// to the original model.
func (f *Classifier) Encode(w io.Writer) error {
	if len(f.trees) == 0 {
		return errors.New("forest: cannot encode an unfitted forest")
	}
	ww := wire.NewWriter(w)
	ww.U16(codecVersion)
	ww.Int(f.cfg.NumTrees)
	ww.Int(f.cfg.MaxDepth)
	ww.Int(f.cfg.MaxFeatures)
	ww.Int(f.cfg.MinSamplesLeaf)
	ww.Bool(f.cfg.Bootstrap)
	ww.Int(f.cfg.Workers)
	ww.I64(f.cfg.Seed)
	ww.Int(f.numClasses)
	ww.Int(f.numFeats)
	ww.Int(len(f.trees))
	if err := ww.Err(); err != nil {
		return err
	}
	for _, t := range f.trees {
		if err := t.Encode(w); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads a forest previously written by Encode.
func Decode(r io.Reader) (*Classifier, error) {
	rr := wire.NewReader(r)
	if v := rr.U16(); rr.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("forest: unsupported codec version %d (this build reads %d)", v, codecVersion)
	}
	f := &Classifier{}
	f.cfg.NumTrees = rr.Int()
	f.cfg.MaxDepth = rr.Int()
	f.cfg.MaxFeatures = rr.Int()
	f.cfg.MinSamplesLeaf = rr.Int()
	f.cfg.Bootstrap = rr.Bool()
	f.cfg.Workers = rr.Int()
	f.cfg.Seed = rr.I64()
	f.numClasses = rr.Int()
	f.numFeats = rr.Int()
	numTrees := rr.Int()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if f.numClasses < 2 || f.numFeats < 1 || numTrees < 1 || numTrees > 1<<20 {
		return nil, fmt.Errorf("forest: corrupt header (%d classes, %d features, %d trees)", f.numClasses, f.numFeats, numTrees)
	}
	f.trees = make([]*tree.Classifier, numTrees)
	for i := range f.trees {
		t, err := tree.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("forest: tree %d: %w", i, err)
		}
		// Each tree's own header must agree with the forest's, or a crafted
		// payload could smuggle in leaf distributions wider than the
		// forest's accumulator rows and panic at prediction time.
		if t.NumClasses() != f.numClasses || t.NumFeatures() != f.numFeats {
			return nil, fmt.Errorf("forest: tree %d fitted for %d classes / %d features, forest header says %d / %d",
				i, t.NumClasses(), t.NumFeatures(), f.numClasses, f.numFeats)
		}
		f.trees[i] = t
	}
	f.flat = compileFlat(f.trees, f.numClasses)
	return f, nil
}
