package forest

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// TestScoreBlockZeroAlloc pins the //wcc:hotpath contract on the flat
// forest batch kernel: scoring a block into a caller-provided output
// matrix allocates nothing. BENCH_BASELINE.json only guards throughput
// within ±25%; this gate guards the mechanism behind the PR 6 win
// directly, so an accidental per-row allocation fails loudly instead of
// hiding inside the regression budget.
func TestScoreBlockZeroAlloc(t *testing.T) {
	const classes, d, rows = 4, 6, 32
	rng := rand.New(rand.NewSource(7))
	x, y := randomProblem(rng, 200, d, classes)
	f := New(Config{NumTrees: 10, MaxDepth: 5, Seed: 3, Bootstrap: true, Workers: 1})
	if err := f.Fit(x, y, classes); err != nil {
		t.Fatal(err)
	}
	if f.flat == nil {
		t.Fatal("Fit left no compiled flat form")
	}
	ev := hostileRows(rng, rows, d)
	out := mat.New(rows, classes)

	allocs := testing.AllocsPerRun(100, func() {
		f.flat.scoreBlock(ev, out, 0, rows)
	})
	if allocs != 0 {
		t.Fatalf("flatForest.scoreBlock allocates %.1f times per call, want 0", allocs)
	}
}
