// Package stream implements online workload classification — the paper's
// future-work deployment scenario: classify snapshots of live workloads
// from a sliding window of telemetry.
//
// A WindowedEmbedder maintains a ring buffer of the most recent W samples
// and incrementally updates the second-moment sums the covariance embedding
// needs, so each new sample costs O(C²) instead of recomputing the O(W·C²)
// embedding, and a prediction can be requested at any time.
package stream

import (
	"errors"
	"fmt"

	"repro/internal/mat"
	"repro/internal/preprocess"
)

// Classifier is any model consuming one embedded feature row.
type Classifier interface {
	PredictProba(x *mat.Matrix) (*mat.Matrix, error)
}

// WindowedEmbedder turns a live sample stream into covariance features over
// a sliding window, standardised with offline (training-time) statistics.
type WindowedEmbedder struct {
	window  int
	sensors int
	scaler  *preprocess.StandardScaler

	ring  []float64 // window×sensors ring buffer of standardised samples
	head  int       // next write position (in samples)
	count int       // samples seen (saturates at window)

	// sums[a][b] accumulates Σ zₐ·z_b over the current window (upper
	// triangle only).
	sums []float64
}

// NewWindowedEmbedder builds an embedder for the given window length and
// sensor count. The scaler must have been fitted on flattened training
// windows of the same shape (window·sensors columns).
func NewWindowedEmbedder(window, sensors int, scaler *preprocess.StandardScaler) (*WindowedEmbedder, error) {
	if window < 2 || sensors < 1 {
		return nil, fmt.Errorf("stream: invalid window shape %dx%d", window, sensors)
	}
	if scaler == nil || len(scaler.Means) != window*sensors {
		return nil, errors.New("stream: scaler not fitted for this window shape")
	}
	return &WindowedEmbedder{
		window:  window,
		sensors: sensors,
		scaler:  scaler,
		ring:    make([]float64, window*sensors),
		sums:    make([]float64, preprocess.CovarianceDim(sensors)),
	}, nil
}

// Push adds one telemetry sample (one value per sensor). The sample is
// standardised with the column statistics of the ring position it lands in,
// matching how offline training standardised flattened windows.
//
//wcc:hotpath zero allocations per call, pinned by an AllocsPerRun gate
func (w *WindowedEmbedder) Push(sample []float64) error {
	if len(sample) != w.sensors {
		return fmt.Errorf("stream: sample has %d sensors, want %d", len(sample), w.sensors)
	}
	base := w.head * w.sensors
	// Evict the old sample's contribution once the ring is full.
	if w.count >= w.window {
		old := w.ring[base : base+w.sensors]
		k := 0
		for a := 0; a < w.sensors; a++ {
			for b := a; b < w.sensors; b++ {
				w.sums[k] -= old[a] * old[b]
				k++
			}
		}
	}
	// Standardise into the ring and add the new contribution.
	for c, v := range sample {
		col := base + c
		w.ring[col] = (v - w.scaler.Means[col]) / w.scaler.Stds[col]
	}
	cur := w.ring[base : base+w.sensors]
	k := 0
	for a := 0; a < w.sensors; a++ {
		for b := a; b < w.sensors; b++ {
			w.sums[k] += cur[a] * cur[b]
			k++
		}
	}
	w.head = (w.head + 1) % w.window
	if w.count < w.window {
		w.count++
	}
	return nil
}

// Ready reports whether a full window has been observed.
func (w *WindowedEmbedder) Ready() bool { return w.count >= w.window }

// Features returns the current covariance embedding (1×C(C+1)/2 matrix),
// or an error before the first full window.
func (w *WindowedEmbedder) Features() (*mat.Matrix, error) {
	out := mat.New(1, len(w.sums))
	if err := w.FeaturesInto(out.Data); err != nil {
		return nil, err
	}
	return out, nil
}

// FeaturesInto writes the current covariance embedding into dst, which must
// have length FeatureDim. It is the allocation-free variant of Features used
// by batched serving paths that assemble many jobs' features into one matrix.
//
//wcc:hotpath zero allocations per call, pinned by an AllocsPerRun gate
func (w *WindowedEmbedder) FeaturesInto(dst []float64) error {
	if !w.Ready() {
		return fmt.Errorf("stream: only %d of %d samples seen", w.count, w.window)
	}
	if len(dst) != len(w.sums) {
		return fmt.Errorf("stream: destination length %d, want %d", len(dst), len(w.sums))
	}
	inv := 1.0 / float64(w.window-1)
	for i, s := range w.sums {
		dst[i] = s * inv
	}
	return nil
}

// FeatureDim returns the length of the embedding Features produces.
func (w *WindowedEmbedder) FeatureDim() int { return len(w.sums) }

// Monitor couples an embedder with a trained classifier.
type Monitor struct {
	Embedder *WindowedEmbedder
	Model    Classifier
}

// Prediction is one live classification snapshot.
type Prediction struct {
	Class       int
	Probability float64
	Probs       []float64
	// Open carries open-set annotations when the serving layer scores
	// predictions against a drift calibration (see internal/drift); nil
	// when open-set detection is disabled. Class, Probability and Probs
	// are identical either way — scoring annotates, it never alters.
	Open *OpenSet
}

// Unknown reports whether the prediction carries an open-set verdict that
// rejected it as an unknown workload. False when open-set detection is
// disabled — the shorthand every consumer of the verdict (event emission,
// HTTP responses, load-driver scoring) shares.
func (p *Prediction) Unknown() bool {
	return p != nil && p.Open != nil && p.Open.Rejected
}

// OpenSet is one prediction's open-set verdict: the scores beyond the
// winning probability and whether the calibrated threshold rejected the
// prediction as an unknown workload.
type OpenSet struct {
	// Margin is the gap between the top two class probabilities.
	Margin float64
	// Energy is the energy-style uncertainty score (see drift.ScoreProbs).
	Energy float64
	// FeatDist is the feature-space distance from the training
	// distribution (see drift.FeatureStats); 0 when the calibration has
	// no feature gate.
	FeatDist float64
	// Rejected marks the prediction as outside the calibrated
	// in-distribution region — an unknown workload.
	Rejected bool
}

// Classify returns the model's current belief, or an error before the
// window has filled.
func (m *Monitor) Classify() (*Prediction, error) {
	feats, err := m.Embedder.Features()
	if err != nil {
		return nil, err
	}
	probs, err := m.Model.PredictProba(feats)
	if err != nil {
		return nil, err
	}
	row := probs.Row(0)
	best := mat.ArgMax(row)
	return &Prediction{Class: best, Probability: row[best], Probs: row}, nil
}
