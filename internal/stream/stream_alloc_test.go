package stream

import (
	"testing"

	"repro/internal/preprocess"
)

// TestPushAndFeaturesIntoZeroAlloc pins the //wcc:hotpath contract on the
// per-sample embedding path: pushing a sample into a full ring and
// extracting the covariance embedding into a caller-provided slice
// allocate nothing. This is the per-sample, per-tick inner loop of the
// whole fleet — one allocation here multiplies by every sample served.
func TestPushAndFeaturesIntoZeroAlloc(t *testing.T) {
	const window, sensors = 16, 4
	scaler := &preprocess.StandardScaler{
		Means: make([]float64, window*sensors),
		Stds:  make([]float64, window*sensors),
	}
	for i := range scaler.Stds {
		scaler.Stds[i] = 1
	}
	w, err := NewWindowedEmbedder(window, sensors, scaler)
	if err != nil {
		t.Fatal(err)
	}
	sample := []float64{0.5, -1.25, 3, 0.0625}
	for i := 0; i < window; i++ { // fill the ring so FeaturesInto succeeds
		if err := w.Push(sample); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]float64, w.FeatureDim())

	bad := false
	allocs := testing.AllocsPerRun(200, func() {
		if err := w.Push(sample); err != nil {
			bad = true
		}
		if err := w.FeaturesInto(dst); err != nil {
			bad = true
		}
	})
	if bad {
		t.Fatal("Push/FeaturesInto failed during measurement")
	}
	if allocs != 0 {
		t.Fatalf("Push+FeaturesInto allocate %.1f times per sample, want 0", allocs)
	}
}
