package stream

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/preprocess"
)

// fitScaler builds a scaler over random flattened windows of the given
// shape so tests exercise realistic (non-unit) statistics.
func fitScaler(t *testing.T, window, sensors int, seed int64) *preprocess.StandardScaler {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	train := mat.New(30, window*sensors)
	for i := range train.Data {
		train.Data[i] = rng.NormFloat64()*3 + 5
	}
	var s preprocess.StandardScaler
	if _, err := s.FitTransform(train); err != nil {
		t.Fatal(err)
	}
	return &s
}

func TestNewWindowedEmbedderErrors(t *testing.T) {
	scaler := fitScaler(t, 4, 2, 1)
	if _, err := NewWindowedEmbedder(1, 2, scaler); err == nil {
		t.Error("window < 2 should fail")
	}
	if _, err := NewWindowedEmbedder(4, 2, nil); err == nil {
		t.Error("nil scaler should fail")
	}
	if _, err := NewWindowedEmbedder(8, 2, scaler); err == nil {
		t.Error("mismatched scaler should fail")
	}
}

func TestPushValidation(t *testing.T) {
	scaler := fitScaler(t, 4, 2, 2)
	w, err := NewWindowedEmbedder(4, 2, scaler)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Push([]float64{1}); err == nil {
		t.Error("wrong sensor count should fail")
	}
	if _, err := w.Features(); err == nil {
		t.Error("features before full window should fail")
	}
	if w.Ready() {
		t.Error("not ready before full window")
	}
}

// TestIncrementalMatchesBatch is the core invariant: after any stream of
// pushes, the incremental embedding must equal the batch CovarianceEmbed of
// the same window.
func TestIncrementalMatchesBatch(t *testing.T) {
	const window, sensors = 6, 3
	scaler := fitScaler(t, window, sensors, 3)
	w, err := NewWindowedEmbedder(window, sensors, scaler)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))

	var history [][]float64
	for step := 0; step < 40; step++ {
		sample := make([]float64, sensors)
		for c := range sample {
			sample[c] = rng.NormFloat64()*2 + 4
		}
		history = append(history, sample)
		if err := w.Push(sample); err != nil {
			t.Fatal(err)
		}
		if len(history) < window {
			continue
		}

		got, err := w.Features()
		if err != nil {
			t.Fatal(err)
		}

		// Batch reference: the last `window` samples, laid out at the ring
		// positions the embedder used, standardised and embedded.
		flat := mat.New(1, window*sensors)
		for k := 0; k < window; k++ {
			idx := len(history) - window + k
			pos := idx % window // ring position this sample landed in
			for c := 0; c < sensors; c++ {
				flat.Data[pos*sensors+c] = history[idx][c]
			}
		}
		z, err := scaler.Transform(flat)
		if err != nil {
			t.Fatal(err)
		}
		want, err := preprocess.CovarianceEmbed(z, window, sensors)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("step %d feature %d: incremental %v vs batch %v",
					step, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// constModel predicts a fixed distribution, for Monitor plumbing tests.
type constModel struct{ probs []float64 }

func (m constModel) PredictProba(x *mat.Matrix) (*mat.Matrix, error) {
	out := mat.New(x.Rows, len(m.probs))
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i), m.probs)
	}
	return out, nil
}

func TestMonitorClassify(t *testing.T) {
	const window, sensors = 4, 2
	scaler := fitScaler(t, window, sensors, 5)
	w, err := NewWindowedEmbedder(window, sensors, scaler)
	if err != nil {
		t.Fatal(err)
	}
	m := &Monitor{Embedder: w, Model: constModel{probs: []float64{0.2, 0.7, 0.1}}}
	if _, err := m.Classify(); err == nil {
		t.Error("classify before full window should fail")
	}
	for i := 0; i < window; i++ {
		if err := w.Push([]float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	pred, err := m.Classify()
	if err != nil {
		t.Fatal(err)
	}
	if pred.Class != 1 || pred.Probability != 0.7 || len(pred.Probs) != 3 {
		t.Errorf("prediction = %+v", pred)
	}
}

// TestEvictionSumsMatchRecomputation targets the drift-prone eviction path
// in Push: once the ring wraps, every new sample first subtracts the evicted
// sample's products from the running sums. The table drives several window
// shapes and stream lengths past multiple complete wraparounds and checks
// the incrementally maintained sums against a from-scratch recomputation
// over the ring contents after every push.
func TestEvictionSumsMatchRecomputation(t *testing.T) {
	cases := []struct {
		name            string
		window, sensors int
		pushes          int
		scale, offset   float64
	}{
		{"small-3-wraps", 4, 2, 4 * 3, 1, 0},
		{"challenge-shape-2-wraps", 9, 7, 9 * 2, 2, 5},
		{"tall-window-many-wraps", 16, 3, 16 * 6, 3, -2},
		{"two-sensors-misaligned", 5, 2, 5*4 + 3, 0.5, 100},
		{"shifted-values-cancellation", 6, 4, 6 * 5, 20, 60},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scaler := fitScaler(t, tc.window, tc.sensors, 11)
			w, err := NewWindowedEmbedder(tc.window, tc.sensors, scaler)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(12))
			for step := 0; step < tc.pushes; step++ {
				sample := make([]float64, tc.sensors)
				for c := range sample {
					sample[c] = rng.NormFloat64()*tc.scale + tc.offset
				}
				if err := w.Push(sample); err != nil {
					t.Fatal(err)
				}
				if w.count < tc.window {
					continue
				}
				// From-scratch reference: recompute Σ zₐ·z_b over the full
				// ring (every resident standardised sample).
				want := make([]float64, len(w.sums))
				for row := 0; row < tc.window; row++ {
					z := w.ring[row*tc.sensors : (row+1)*tc.sensors]
					k := 0
					for a := 0; a < tc.sensors; a++ {
						for b := a; b < tc.sensors; b++ {
							want[k] += z[a] * z[b]
							k++
						}
					}
				}
				for k := range want {
					if math.Abs(w.sums[k]-want[k]) > 1e-9 {
						t.Fatalf("push %d sum %d: incremental %v vs recomputed %v (drift %v)",
							step, k, w.sums[k], want[k], w.sums[k]-want[k])
					}
				}
			}
		})
	}
}

func TestFeaturesIntoValidation(t *testing.T) {
	scaler := fitScaler(t, 4, 2, 6)
	w, err := NewWindowedEmbedder(4, 2, scaler)
	if err != nil {
		t.Fatal(err)
	}
	if w.FeatureDim() != 3 {
		t.Fatalf("feature dim %d, want 3", w.FeatureDim())
	}
	if err := w.FeaturesInto(make([]float64, 3)); err == nil {
		t.Error("features before full window should fail")
	}
	for i := 0; i < 4; i++ {
		if err := w.Push([]float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.FeaturesInto(make([]float64, 2)); err == nil {
		t.Error("short destination should fail")
	}
	dst := make([]float64, 3)
	if err := w.FeaturesInto(dst); err != nil {
		t.Fatal(err)
	}
	feats, err := w.Features()
	if err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != feats.Data[i] {
			t.Fatalf("FeaturesInto[%d] = %v, Features = %v", i, dst[i], feats.Data[i])
		}
	}
}
