package trace

import (
	"testing"
	"time"
)

// TestObserveZeroAlloc pins the //wcc:hotpath contract on span recording:
// Observe runs on every tick stage and every ingest batch, so it must
// stay a fixed-size histogram update plus a ring write — no allocation.
func TestObserveZeroAlloc(t *testing.T) {
	r := NewRecorder()
	start := time.Unix(1700000000, 0)

	allocs := testing.AllocsPerRun(200, func() {
		r.Observe(StageClassify, start, 3*time.Millisecond, 128)
	})
	if allocs != 0 {
		t.Fatalf("Recorder.Observe allocates %.1f times per call, want 0", allocs)
	}
}
