package trace

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestObserveBucketsAndSnapshot(t *testing.T) {
	r := NewRecorder()
	now := time.Now()
	r.Observe(StageClassify, now, 3*time.Microsecond, 8)  // ≤ 5µs bucket
	r.Observe(StageClassify, now, 40*time.Microsecond, 8) // ≤ 50µs bucket
	r.Observe(StageClassify, now, 10*time.Second, 8)      // beyond the grid
	r.Observe(StageParse, now, 100*time.Nanosecond, 256)  // ≤ 5µs bucket

	snap := r.Snapshot()
	cl := snap.Stages[StageClassify]
	if cl.Count != 3 {
		t.Fatalf("classify count = %d, want 3", cl.Count)
	}
	if got := cl.Cumulative[0]; got != 1 {
		t.Fatalf("classify ≤5µs cumulative = %d, want 1", got)
	}
	if got := cl.Cumulative[len(Buckets)-1]; got != 2 {
		t.Fatalf("classify ≤%g cumulative = %d, want 2 (one observation beyond the grid)",
			Buckets[len(Buckets)-1], got)
	}
	wantSum := (3*time.Microsecond + 40*time.Microsecond + 10*time.Second).Seconds()
	if math.Abs(cl.Sum-wantSum) > 1e-12 {
		t.Fatalf("classify sum = %v, want %v", cl.Sum, wantSum)
	}
	if pa := snap.Stages[StageParse]; pa.Count != 1 || pa.Cumulative[0] != 1 {
		t.Fatalf("parse stats %+v", pa)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("snapshot holds %d spans, want 4", len(snap.Spans))
	}
	if sp := snap.Spans[0]; sp.Stage != StageClassify || sp.Items != 8 {
		t.Fatalf("first span %+v", sp)
	}
}

func TestBucketsAreSorted(t *testing.T) {
	for i := 1; i < len(Buckets); i++ {
		if Buckets[i] <= Buckets[i-1] {
			t.Fatalf("bucket grid not increasing at %d: %g after %g", i, Buckets[i], Buckets[i-1])
		}
	}
}

func TestQuantile(t *testing.T) {
	r := NewRecorder()
	now := time.Now()
	// 100 observations uniform in (0, 1ms]: the q-quantile should sit near
	// q·1ms once interpolated through the bucket grid.
	for i := 1; i <= 100; i++ {
		r.Observe(StageIngest, now, time.Duration(i)*10*time.Microsecond, 1)
	}
	st := r.Snapshot().Stages[StageIngest]
	p50 := st.Quantile(0.5)
	if p50 < 100e-6 || p50 > 900e-6 {
		t.Fatalf("p50 = %v, want near 500µs", p50)
	}
	p99 := st.Quantile(0.99)
	if p99 < p50 {
		t.Fatalf("p99 %v below p50 %v", p99, p50)
	}
	if got := (StageStats{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty-stage quantile = %v, want 0", got)
	}
}

func TestSpanRingKeepsNewest(t *testing.T) {
	r := NewRecorder()
	now := time.Now()
	for i := 0; i < spanRing+50; i++ {
		r.Observe(StageQueue, now, time.Duration(i), i)
	}
	spans := r.Snapshot().Spans
	if len(spans) != spanRing {
		t.Fatalf("ring holds %d spans, want %d", len(spans), spanRing)
	}
	if spans[0].Items != 50 || spans[len(spans)-1].Items != spanRing+49 {
		t.Fatalf("ring order wrong: first=%d last=%d", spans[0].Items, spans[len(spans)-1].Items)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Observe(StageParse, time.Now(), time.Millisecond, 1)
	snap := r.Snapshot()
	if snap.Stages[StageParse].Count != 0 || len(snap.Spans) != 0 {
		t.Fatalf("nil recorder produced observations: %+v", snap)
	}
}

func TestStageNamesRoundTrip(t *testing.T) {
	for s := Stage(0); s < NumStages; s++ {
		got, ok := ParseStage(s.String())
		if !ok || got != s {
			t.Fatalf("stage %d name %q did not round-trip", s, s.String())
		}
	}
	if _, ok := ParseStage("nope"); ok {
		t.Fatal("ParseStage accepted an unknown name")
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := time.Now()
			for i := 0; i < 1000; i++ {
				r.Observe(Stage(i%int(NumStages)), now, time.Duration(i)*time.Microsecond, i)
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for _, st := range r.Snapshot().Stages {
		total += st.Count
	}
	if total != 8000 {
		t.Fatalf("recorded %d observations, want 8000", total)
	}
}
