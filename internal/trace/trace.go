// Package trace records per-stage serving latency: a lightweight span
// recorder threaded through the serving pipeline — HTTP parse → queue wait
// → ingest → window collection → batched classification → prediction
// write-back — feeding fixed-bucket latency histograms (rendered as
// Prometheus _bucket/_sum/_count series by the serving layer) and a small
// ring of recent spans for the sampled-trace endpoint.
//
// The recorder is built for the hot path: one mutex-guarded fixed-size
// table, no allocation per observation, and a nil *Recorder is a valid
// no-op — callers thread it unconditionally and tracing costs nothing when
// disabled. Timing never influences results; the equivalence tests pin
// that a traced fleet's predictions are bit-identical to an untraced one.
package trace

import (
	"sync"
	"time"
)

// Stage names one pipeline stage a span can cover.
type Stage uint8

const (
	// StageParse is the HTTP handler decoding an ingest body into samples
	// (either framing).
	StageParse Stage = iota
	// StageQueue is a parsed batch's wait on the bounded ingest queue,
	// from enqueue to worker pickup.
	StageQueue
	// StageIngest is a worker pushing one batch's samples into the fleet's
	// per-job windows.
	StageIngest
	// StageCollect is a tick gathering dirty, full windows into the batch
	// feature matrix.
	StageCollect
	// StageClassify is the tick's batched model call.
	StageClassify
	// StageWriteBack is the tick publishing predictions (and open-set
	// verdicts) back to the registry.
	StageWriteBack
	// NumStages bounds the per-stage tables.
	NumStages
)

var stageNames = [NumStages]string{
	"parse", "queue", "ingest", "collect", "classify", "writeback",
}

// String returns the stage's metric-label name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// ParseStage maps a metric-label name back to its Stage.
func ParseStage(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// Buckets is the histogram's upper-bound grid in seconds: 5µs to 2.5s in a
// 1–2.5–5 progression, wide enough for a multi-millisecond batched tick
// and fine enough to see a microsecond parse. The final implicit bucket is
// +Inf.
var Buckets = [...]float64{
	5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5,
}

// spanRing bounds the recent-span sample the trace endpoint serves.
const spanRing = 256

// Span is one recorded stage execution.
type Span struct {
	// Stage is the pipeline stage the span covers.
	Stage Stage
	// Start is when the stage began.
	Start time.Time
	// Dur is the stage's wall-clock duration.
	Dur time.Duration
	// Items is the batch size the stage processed (samples for the ingest
	// stages, windows for the tick stages).
	Items int
}

// hist is one stage's fixed-bucket latency histogram; counts[i] is the
// number of observations ≤ Buckets[i], inf those beyond the grid.
type hist struct {
	counts [len(Buckets)]uint64
	inf    uint64
	count  uint64
	sum    float64
}

// Recorder accumulates spans. All methods are safe for concurrent use and
// valid on a nil receiver (no-ops), so one recorder can be threaded
// through the HTTP layer, the ingest workers, and every monitor shard's
// tick loop unconditionally.
type Recorder struct {
	mu     sync.Mutex
	stages [NumStages]hist
	ring   [spanRing]Span
	ringN  uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Observe records one stage execution: its duration lands in the stage's
// histogram and the span joins the recent-span ring. items is the batch
// size the stage processed (0 when not meaningful).
//
//wcc:hotpath zero allocations per call, pinned by an AllocsPerRun gate
func (r *Recorder) Observe(st Stage, start time.Time, d time.Duration, items int) {
	if r == nil || st >= NumStages {
		return
	}
	if d < 0 {
		d = 0
	}
	secs := d.Seconds()
	r.mu.Lock()
	h := &r.stages[st]
	h.count++
	h.sum += secs
	placed := false
	for i, ub := range Buckets {
		if secs <= ub {
			h.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.inf++
	}
	r.ring[r.ringN%spanRing] = Span{Stage: st, Start: start, Dur: d, Items: items}
	r.ringN++
	r.mu.Unlock()
}

// StageStats is one stage's accumulated histogram in a Snapshot.
type StageStats struct {
	// Stage is the stage the row covers.
	Stage Stage
	// Count and Sum are the histogram's total observations and their summed
	// seconds.
	Count uint64
	Sum   float64
	// Cumulative[i] counts observations ≤ Buckets[i] — already cumulative,
	// ready for Prometheus _bucket exposition; Count covers +Inf.
	Cumulative [len(Buckets)]uint64
}

// Quantile estimates the q-quantile in seconds from the histogram by
// linear interpolation inside the selected bucket. With no observations it
// returns 0; mass beyond the bucket grid reports the grid's upper edge.
func (s StageStats) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	lower := 0.0
	for i, ub := range Buckets {
		c := float64(s.Cumulative[i])
		if c >= rank {
			prev := 0.0
			if i > 0 {
				prev = float64(s.Cumulative[i-1])
			}
			width := ub - lower
			inBucket := c - prev
			if inBucket <= 0 {
				return ub
			}
			return lower + width*(rank-prev)/inBucket
		}
		lower = ub
	}
	return Buckets[len(Buckets)-1]
}

// Snapshot is a consistent point-in-time copy of the recorder: per-stage
// histograms plus the most recent spans, newest last.
type Snapshot struct {
	Stages [NumStages]StageStats
	Spans  []Span
}

// Snapshot copies the recorder's state. Safe concurrently with Observe; a
// nil recorder yields an empty snapshot.
func (r *Recorder) Snapshot() Snapshot {
	var out Snapshot
	for i := range out.Stages {
		out.Stages[i].Stage = Stage(i)
	}
	if r == nil {
		return out
	}
	r.mu.Lock()
	for i := range r.stages {
		h := &r.stages[i]
		st := &out.Stages[i]
		st.Count = h.count
		st.Sum = h.sum
		var cum uint64
		for j := range h.counts {
			cum += h.counts[j]
			st.Cumulative[j] = cum
		}
	}
	n := r.ringN
	if n > spanRing {
		n = spanRing
	}
	out.Spans = make([]Span, 0, n)
	// Oldest first: the ring's next write slot is the oldest retained span.
	start := uint64(0)
	if r.ringN > spanRing {
		start = r.ringN
	}
	for i := uint64(0); i < n; i++ {
		out.Spans = append(out.Spans, r.ring[(start+i)%spanRing])
	}
	r.mu.Unlock()
	return out
}
