// Package xgb implements an XGBoost-style gradient-boosted tree classifier:
// second-order (Newton) boosting with a softmax objective, exact greedy
// splits scored by the regularised gain formula, γ (min split loss),
// λ (ℓ2) and α (ℓ1) regularisation, row subsampling, and gain/weight
// feature importance — everything the paper's §IV-B experiment exercises.
package xgb

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mat"
)

// Config controls boosting.
type Config struct {
	// NumRounds is the number of boosting rounds (the paper uses 40).
	NumRounds int
	// LearningRate shrinks each tree's contribution (xgboost default 0.3).
	LearningRate float64
	// MaxDepth limits individual trees (xgboost default 6).
	MaxDepth int
	// Gamma is the minimum loss reduction to make a split (γ in the paper's
	// grid search).
	Gamma float64
	// Lambda is the ℓ2 regularisation on leaf weights (λ).
	Lambda float64
	// Alpha is the ℓ1 regularisation on leaf weights (α).
	Alpha float64
	// MinChildWeight is the minimum hessian sum per child.
	MinChildWeight float64
	// Subsample is the per-tree row sampling fraction (1 = all rows).
	Subsample float64
	// Workers bounds batched-prediction parallelism (0 = GOMAXPROCS),
	// mirroring forest.Config.Workers.
	Workers int
	// Seed drives subsampling.
	Seed int64
}

// DefaultConfig mirrors common xgboost defaults with the paper's 40 rounds.
func DefaultConfig() Config {
	return Config{
		NumRounds:      40,
		LearningRate:   0.3,
		MaxDepth:       6,
		Lambda:         1,
		MinChildWeight: 1,
		Subsample:      1,
	}
}

// regNode is one node of a regression tree on (gradient, hessian) targets.
type regNode struct {
	feature   int
	threshold float64
	left      int
	right     int
	leaf      bool
	weight    float64
}

type regTree struct{ nodes []regNode }

func (t *regTree) predictRow(row []float64) float64 {
	id := 0
	for !t.nodes[id].leaf {
		n := &t.nodes[id]
		if row[n.feature] <= n.threshold {
			id = n.left
		} else {
			id = n.right
		}
	}
	return t.nodes[id].weight
}

// Classifier is a fitted boosted ensemble.
type Classifier struct {
	cfg        Config
	trees      [][]*regTree // [round][class]
	numClasses int
	numFeats   int

	gainImp   []float64
	weightImp []float64

	// flat is the compiled contiguous inference form, built once at Fit or
	// Decode time and immutable afterwards; PredictProbaBatch walks it
	// instead of the pointer trees. See flat.go.
	flat *flatEnsemble

	// TrainLoss records mean softmax cross-entropy per round, used to
	// reproduce the paper's plateau/overfitting analysis.
	TrainLoss []float64
	// EvalAccuracy records per-round accuracy on the optional eval set.
	EvalAccuracy []float64
}

// New returns an unfitted classifier.
func New(cfg Config) *Classifier {
	if cfg.NumRounds <= 0 {
		cfg.NumRounds = 40
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.3
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 6
	}
	if cfg.MinChildWeight <= 0 {
		cfg.MinChildWeight = 1
	}
	if cfg.Subsample <= 0 || cfg.Subsample > 1 {
		cfg.Subsample = 1
	}
	return &Classifier{cfg: cfg}
}

// Fit trains the ensemble. evalX/evalY may be nil; when given, per-round
// eval accuracy is recorded in EvalAccuracy.
func (c *Classifier) Fit(x *mat.Matrix, y []int, numClasses int, evalX *mat.Matrix, evalY []int) error {
	if x.Rows != len(y) {
		return fmt.Errorf("xgb: %d rows vs %d labels", x.Rows, len(y))
	}
	if x.Rows == 0 {
		return errors.New("xgb: empty training set")
	}
	if numClasses < 2 {
		return errors.New("xgb: need at least two classes")
	}
	for _, v := range y {
		if v < 0 || v >= numClasses {
			return fmt.Errorf("xgb: label %d out of range", v)
		}
	}
	c.numClasses = numClasses
	c.numFeats = x.Cols
	c.gainImp = make([]float64, x.Cols)
	c.weightImp = make([]float64, x.Cols)
	c.trees = nil
	c.TrainLoss = nil
	c.EvalAccuracy = nil

	n := x.Rows
	scores := mat.New(n, numClasses)
	probs := mat.New(n, numClasses)
	g := make([]float64, n)
	h := make([]float64, n)
	rng := rand.New(rand.NewSource(c.cfg.Seed))

	var evalScores *mat.Matrix
	if evalX != nil {
		evalScores = mat.New(evalX.Rows, numClasses)
	}

	for round := 0; round < c.cfg.NumRounds; round++ {
		// Softmax over current scores; accumulate train loss.
		loss := 0.0
		for i := 0; i < n; i++ {
			softmaxInto(probs.Row(i), scores.Row(i))
			p := probs.At(i, y[i])
			loss += -math.Log(math.Max(p, 1e-15))
		}
		c.TrainLoss = append(c.TrainLoss, loss/float64(n))

		rows := c.sampleRows(n, rng)
		roundTrees := make([]*regTree, numClasses)
		for k := 0; k < numClasses; k++ {
			for i := 0; i < n; i++ {
				p := probs.At(i, k)
				target := 0.0
				if y[i] == k {
					target = 1
				}
				g[i] = p - target
				h[i] = math.Max(p*(1-p), 1e-16)
			}
			tr := c.buildTree(x, g, h, rows)
			roundTrees[k] = tr
			for i := 0; i < n; i++ {
				scores.Set(i, k, scores.At(i, k)+c.cfg.LearningRate*tr.predictRow(x.Row(i)))
			}
			if evalScores != nil {
				for i := 0; i < evalX.Rows; i++ {
					evalScores.Set(i, k, evalScores.At(i, k)+c.cfg.LearningRate*tr.predictRow(evalX.Row(i)))
				}
			}
		}
		c.trees = append(c.trees, roundTrees)

		if evalScores != nil {
			correct := 0
			for i := 0; i < evalX.Rows; i++ {
				if mat.ArgMax(evalScores.Row(i)) == evalY[i] {
					correct++
				}
			}
			c.EvalAccuracy = append(c.EvalAccuracy, float64(correct)/float64(evalX.Rows))
		}
	}
	c.flat = compileFlat(c.trees, c.cfg.LearningRate, numClasses)
	return nil
}

// softmaxInto writes softmax(scores) into dst. dst may alias scores: the
// max is read before any write, and each scores[i] is read before dst[i]
// is written — the flat kernel's in-place call depends on this.
func softmaxInto(dst, scores []float64) {
	max := scores[0]
	for _, v := range scores[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range scores {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

func (c *Classifier) sampleRows(n int, rng *rand.Rand) []int {
	if c.cfg.Subsample >= 1 {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		return rows
	}
	var rows []int
	for i := 0; i < n; i++ {
		if rng.Float64() < c.cfg.Subsample {
			rows = append(rows, i)
		}
	}
	if len(rows) == 0 {
		rows = append(rows, rng.Intn(n))
	}
	return rows
}

// leafWeight applies the ℓ1 soft threshold and ℓ2 shrinkage:
// w* = -T_α(G)/(H+λ).
func (c *Classifier) leafWeight(gSum, hSum float64) float64 {
	return -softThreshold(gSum, c.cfg.Alpha) / (hSum + c.cfg.Lambda)
}

// splitScore is the structure score ½·T_α(G)²/(H+λ) entering the gain.
func (c *Classifier) splitScore(gSum, hSum float64) float64 {
	t := softThreshold(gSum, c.cfg.Alpha)
	return 0.5 * t * t / (hSum + c.cfg.Lambda)
}

func softThreshold(g, alpha float64) float64 {
	switch {
	case g > alpha:
		return g - alpha
	case g < -alpha:
		return g + alpha
	default:
		return 0
	}
}

// buildTree grows one regression tree by exact greedy search.
func (c *Classifier) buildTree(x *mat.Matrix, g, h []float64, rows []int) *regTree {
	t := &regTree{}
	c.grow(t, x, g, h, rows, 0)
	return t
}

func (c *Classifier) grow(t *regTree, x *mat.Matrix, g, h []float64, rows []int, depth int) int {
	var gSum, hSum float64
	for _, i := range rows {
		gSum += g[i]
		hSum += h[i]
	}
	id := len(t.nodes)
	t.nodes = append(t.nodes, regNode{})

	if depth >= c.cfg.MaxDepth || len(rows) < 2 {
		t.nodes[id] = regNode{leaf: true, weight: c.leafWeight(gSum, hSum)}
		return id
	}

	parentScore := c.splitScore(gSum, hSum)
	bestGain := 0.0
	bestFeat := -1
	var bestThresh float64

	sorted := make([]int, len(rows))
	for f := 0; f < x.Cols; f++ {
		copy(sorted, rows)
		sort.Slice(sorted, func(a, b int) bool { return x.At(sorted[a], f) < x.At(sorted[b], f) })
		var gl, hl float64
		for k := 0; k < len(sorted)-1; k++ {
			i := sorted[k]
			gl += g[i]
			hl += h[i]
			v, next := x.At(i, f), x.At(sorted[k+1], f)
			if v == next {
				continue
			}
			hr := hSum - hl
			if hl < c.cfg.MinChildWeight || hr < c.cfg.MinChildWeight {
				continue
			}
			gain := c.splitScore(gl, hl) + c.splitScore(gSum-gl, hr) - parentScore - c.cfg.Gamma
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (v + next) / 2
			}
		}
	}

	if bestFeat < 0 {
		t.nodes[id] = regNode{leaf: true, weight: c.leafWeight(gSum, hSum)}
		return id
	}

	c.gainImp[bestFeat] += bestGain
	c.weightImp[bestFeat]++

	var left, right []int
	for _, i := range rows {
		if x.At(i, bestFeat) <= bestThresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	l := c.grow(t, x, g, h, left, depth+1)
	r := c.grow(t, x, g, h, right, depth+1)
	t.nodes[id] = regNode{feature: bestFeat, threshold: bestThresh, left: l, right: r}
	return id
}

// scoreRowInto accumulates the boosted per-class scores for one feature row
// into dst. Both the serial and batched predict paths go through here, so
// their per-row results are bit-identical.
func (c *Classifier) scoreRowInto(row, dst []float64) {
	for _, round := range c.trees {
		for k, tr := range round {
			dst[k] += c.cfg.LearningRate * tr.predictRow(row)
		}
	}
}

func (c *Classifier) checkPredictable(x *mat.Matrix) error {
	if c.trees == nil {
		return errors.New("xgb: not fitted")
	}
	if x.Cols != c.numFeats {
		return fmt.Errorf("xgb: %d features, fitted on %d", x.Cols, c.numFeats)
	}
	return nil
}

// PredictScores returns raw per-class boosting scores.
func (c *Classifier) PredictScores(x *mat.Matrix) (*mat.Matrix, error) {
	if err := c.checkPredictable(x); err != nil {
		return nil, err
	}
	out := mat.New(x.Rows, c.numClasses)
	for i := 0; i < x.Rows; i++ {
		c.scoreRowInto(x.Row(i), out.Row(i))
	}
	return out, nil
}

// PredictProba returns softmax probabilities.
func (c *Classifier) PredictProba(x *mat.Matrix) (*mat.Matrix, error) {
	scores, err := c.PredictScores(x)
	if err != nil {
		return nil, err
	}
	for i := 0; i < scores.Rows; i++ {
		row := scores.Row(i)
		softmaxInto(row, append([]float64(nil), row...))
	}
	return scores, nil
}

// probaBlock scores rows [lo, hi) with tree-outer iteration — each
// regression tree's node array stays hot in cache while it sweeps the whole
// block — then softmaxes every row. Each score accumulator still receives
// its round contributions in boosting order, exactly as scoreRowInto, so
// results are bit-identical to the serial path.
func (c *Classifier) probaBlock(x, out *mat.Matrix, lo, hi int) {
	for _, round := range c.trees {
		for k, tr := range round {
			for i := lo; i < hi; i++ {
				out.Row(i)[k] += c.cfg.LearningRate * tr.predictRow(x.Row(i))
			}
		}
	}
	scratch := make([]float64, c.numClasses)
	for i := lo; i < hi; i++ {
		dst := out.Row(i)
		copy(scratch, dst)
		softmaxInto(dst, scratch)
	}
}

// PredictProbaBatch is the serving hot path for fleet-scale batched
// inference: one call scores the whole matrix, splitting rows into
// contiguous blocks over a bounded worker pool (cfg.Workers, 0 = GOMAXPROCS,
// mirroring forest.Config.Workers) and sweeping each block tree by tree
// over the flat node arrays compiled at Fit/Decode time (see flat.go) — no
// per-node pointer dereferences. Results are bit-identical to PredictProba.
func (c *Classifier) PredictProbaBatch(x *mat.Matrix) (*mat.Matrix, error) {
	if err := c.checkPredictable(x); err != nil {
		return nil, err
	}
	out := mat.New(x.Rows, c.numClasses)
	_ = mat.ParallelRowBlocks(x.Rows, c.cfg.Workers, func(lo, hi int) error {
		if c.flat != nil {
			c.flat.scoreBlock(x, out, lo, hi)
		} else {
			c.probaBlock(x, out, lo, hi)
		}
		return nil
	})
	return out, nil
}

// Predict labels rows by the highest boosting score.
func (c *Classifier) Predict(x *mat.Matrix) ([]int, error) {
	scores, err := c.PredictScores(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, x.Rows)
	for i := range out {
		out[i] = mat.ArgMax(scores.Row(i))
	}
	return out, nil
}

// ImportanceKind selects the feature-importance flavour.
type ImportanceKind int

const (
	// ImportanceGain accumulates split gains ("how much each attribute
	// split point improves the accuracy metric", as the paper puts it).
	ImportanceGain ImportanceKind = iota
	// ImportanceWeight counts how often a feature is split on.
	ImportanceWeight
)

// FeatureImportances returns normalised importances of the requested kind.
func (c *Classifier) FeatureImportances(kind ImportanceKind) []float64 {
	src := c.gainImp
	if kind == ImportanceWeight {
		src = c.weightImp
	}
	out := make([]float64, len(src))
	var total float64
	for _, v := range src {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range src {
		out[i] = v / total
	}
	return out
}

// TopFeatures returns the k most important feature indices by the given
// kind, most important first.
func (c *Classifier) TopFeatures(kind ImportanceKind, k int) []int {
	imp := c.FeatureImportances(kind)
	idx := make([]int, len(imp))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return imp[idx[a]] > imp[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// NumRounds returns the number of fitted boosting rounds.
func (c *Classifier) NumRounds() int { return len(c.trees) }
