package xgb

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func blobs(n, k int, spread float64, seed int64) (*mat.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := mat.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		angle := 2 * math.Pi * float64(c) / float64(k)
		x.Set(i, 0, 4*math.Cos(angle)+rng.NormFloat64()*spread)
		x.Set(i, 1, 4*math.Sin(angle)+rng.NormFloat64()*spread)
		y[i] = c
	}
	return x, y
}

func TestXGBSeparable(t *testing.T) {
	x, y := blobs(300, 3, 0.5, 1)
	c := New(Config{NumRounds: 15, LearningRate: 0.3, MaxDepth: 4, Lambda: 1, MinChildWeight: 1, Subsample: 1})
	if err := c.Fit(x, y, 3, nil, nil); err != nil {
		t.Fatal(err)
	}
	xt, yt := blobs(150, 3, 0.5, 2)
	pred, err := c.Predict(xt)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, p := range pred {
		if p == yt[i] {
			correct++
		}
	}
	if acc := float64(correct) / 150; acc < 0.95 {
		t.Errorf("accuracy %v", acc)
	}
}

func TestXGBTrainLossDecreases(t *testing.T) {
	x, y := blobs(200, 3, 1.0, 3)
	c := New(DefaultConfig())
	if err := c.Fit(x, y, 3, nil, nil); err != nil {
		t.Fatal(err)
	}
	if len(c.TrainLoss) != 40 {
		t.Fatalf("recorded %d losses", len(c.TrainLoss))
	}
	if c.TrainLoss[0] < c.TrainLoss[len(c.TrainLoss)-1] {
		t.Errorf("loss increased: %v -> %v", c.TrainLoss[0], c.TrainLoss[len(c.TrainLoss)-1])
	}
	// First-round loss must be ln(K) (uniform start).
	if math.Abs(c.TrainLoss[0]-math.Log(3)) > 1e-9 {
		t.Errorf("initial loss %v, want ln 3 = %v", c.TrainLoss[0], math.Log(3))
	}
}

func TestXGBEvalAccuracyRecorded(t *testing.T) {
	x, y := blobs(200, 3, 0.8, 5)
	xt, yt := blobs(100, 3, 0.8, 6)
	c := New(Config{NumRounds: 10})
	if err := c.Fit(x, y, 3, xt, yt); err != nil {
		t.Fatal(err)
	}
	if len(c.EvalAccuracy) != 10 {
		t.Fatalf("recorded %d eval points", len(c.EvalAccuracy))
	}
	final := c.EvalAccuracy[len(c.EvalAccuracy)-1]
	if final < 0.9 {
		t.Errorf("final eval accuracy %v", final)
	}
}

func TestXGBGammaPrunesSplits(t *testing.T) {
	x, y := blobs(200, 2, 1.5, 7)
	free := New(Config{NumRounds: 5, Gamma: 0})
	if err := free.Fit(x, y, 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	pruned := New(Config{NumRounds: 5, Gamma: 1e6})
	if err := pruned.Fit(x, y, 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	splitsOf := func(c *Classifier) int {
		total := 0
		for _, round := range c.trees {
			for _, tr := range round {
				for _, n := range tr.nodes {
					if !n.leaf {
						total++
					}
				}
			}
		}
		return total
	}
	if splitsOf(pruned) >= splitsOf(free) {
		t.Errorf("huge gamma did not prune: %d vs %d splits", splitsOf(pruned), splitsOf(free))
	}
	if splitsOf(pruned) != 0 {
		t.Errorf("gamma=1e6 should produce stumps-free trees, got %d splits", splitsOf(pruned))
	}
}

func TestXGBLambdaShrinksLeaves(t *testing.T) {
	x, y := blobs(100, 2, 0.5, 9)
	small := New(Config{NumRounds: 1, Lambda: 0.001})
	if err := small.Fit(x, y, 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	big := New(Config{NumRounds: 1, Lambda: 1000})
	if err := big.Fit(x, y, 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	maxLeaf := func(c *Classifier) float64 {
		m := 0.0
		for _, round := range c.trees {
			for _, tr := range round {
				for _, n := range tr.nodes {
					if n.leaf && math.Abs(n.weight) > m {
						m = math.Abs(n.weight)
					}
				}
			}
		}
		return m
	}
	if maxLeaf(big) >= maxLeaf(small) {
		t.Errorf("λ=1000 leaf %v not smaller than λ=0.001 leaf %v", maxLeaf(big), maxLeaf(small))
	}
}

func TestSoftThreshold(t *testing.T) {
	if softThreshold(5, 2) != 3 || softThreshold(-5, 2) != -3 || softThreshold(1, 2) != 0 {
		t.Error("softThreshold wrong")
	}
}

func TestXGBAlphaZeroesWeakLeaves(t *testing.T) {
	x, y := blobs(100, 2, 2.5, 11)
	c := New(Config{NumRounds: 1, Alpha: 1e6})
	if err := c.Fit(x, y, 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	for _, round := range c.trees {
		for _, tr := range round {
			for _, n := range tr.nodes {
				if n.leaf && n.weight != 0 {
					t.Fatalf("α=1e6 should zero all leaves, got %v", n.weight)
				}
			}
		}
	}
}

func TestXGBFeatureImportance(t *testing.T) {
	// Feature 1 carries all the signal.
	rng := rand.New(rand.NewSource(13))
	n := 300
	x := mat.New(n, 3)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		s := rng.NormFloat64()
		x.Set(i, 1, s)
		x.Set(i, 2, rng.NormFloat64())
		if s > 0 {
			y[i] = 1
		}
	}
	c := New(Config{NumRounds: 10})
	if err := c.Fit(x, y, 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	gain := c.FeatureImportances(ImportanceGain)
	if gain[1] < 0.7 {
		t.Errorf("signal feature gain importance %v (all %v)", gain[1], gain)
	}
	// Weight importance merely counts splits, so deep refits on noise
	// residuals can dominate it (the reason gain is the paper's metric);
	// just require the signal feature to be split on at all and the
	// distribution to normalise.
	weight := c.FeatureImportances(ImportanceWeight)
	if weight[1] == 0 {
		t.Errorf("signal feature never split on: %v", weight)
	}
	if math.Abs(weight[0]+weight[1]+weight[2]-1) > 1e-9 {
		t.Errorf("weight importances do not normalise: %v", weight)
	}
	top := c.TopFeatures(ImportanceGain, 1)
	if len(top) != 1 || top[0] != 1 {
		t.Errorf("TopFeatures = %v", top)
	}
}

func TestXGBPredictProba(t *testing.T) {
	x, y := blobs(120, 3, 0.8, 15)
	c := New(Config{NumRounds: 8})
	if err := c.Fit(x, y, 3, nil, nil); err != nil {
		t.Fatal(err)
	}
	probs, err := c.PredictProba(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < probs.Rows; i++ {
		sum := mat.SumSlice(probs.Row(i))
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d probs sum %v", i, sum)
		}
	}
}

func TestXGBSubsample(t *testing.T) {
	x, y := blobs(200, 2, 1.0, 17)
	c := New(Config{NumRounds: 10, Subsample: 0.5, Seed: 1})
	if err := c.Fit(x, y, 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	pred, _ := c.Predict(x)
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	if float64(correct)/200 < 0.9 {
		t.Errorf("subsampled accuracy %v", float64(correct)/200)
	}
}

func TestXGBErrors(t *testing.T) {
	c := New(DefaultConfig())
	if err := c.Fit(mat.New(2, 2), []int{0}, 2, nil, nil); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := c.Fit(mat.New(0, 2), nil, 2, nil, nil); err == nil {
		t.Error("empty set should fail")
	}
	if err := c.Fit(mat.New(2, 2), []int{0, 1}, 1, nil, nil); err == nil {
		t.Error("single class should fail")
	}
	if err := c.Fit(mat.New(2, 2), []int{0, 7}, 2, nil, nil); err == nil {
		t.Error("bad label should fail")
	}
	if _, err := c.Predict(mat.New(1, 2)); err == nil {
		t.Error("predict before fit should fail")
	}
}

func TestXGBDeterminism(t *testing.T) {
	x, y := blobs(150, 3, 1.0, 19)
	c1 := New(Config{NumRounds: 5, Subsample: 0.8, Seed: 7})
	c2 := New(Config{NumRounds: 5, Subsample: 0.8, Seed: 7})
	if err := c1.Fit(x, y, 3, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c2.Fit(x, y, 3, nil, nil); err != nil {
		t.Fatal(err)
	}
	p1, _ := c1.Predict(x)
	p2, _ := c2.Predict(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different ensembles")
		}
	}
}

// TestXGBPredictProbaBatchBitIdentical pins the fleet serving invariant: the
// worker-pool batched path must return exactly the probabilities the serial
// path does, for any worker count.
func TestXGBPredictProbaBatchBitIdentical(t *testing.T) {
	x, y := blobs(250, 3, 0.9, 13)
	for _, workers := range []int{0, 1, 4, 32} {
		c := New(Config{NumRounds: 12, MaxDepth: 4, Workers: workers, Seed: 2})
		if err := c.Fit(x, y, 3, nil, nil); err != nil {
			t.Fatal(err)
		}
		want, err := c.PredictProba(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.PredictProbaBatch(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("workers=%d: element %d differs: batched %v vs serial %v",
					workers, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestXGBPredictProbaBatchErrors(t *testing.T) {
	if _, err := New(Config{}).PredictProbaBatch(mat.New(1, 2)); err == nil {
		t.Error("unfitted batch predict should fail")
	}
	x, y := blobs(60, 2, 0.5, 14)
	c := New(Config{NumRounds: 3})
	if err := c.Fit(x, y, 2, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PredictProbaBatch(mat.New(4, 5)); err == nil {
		t.Error("feature-count mismatch should fail")
	}
}
