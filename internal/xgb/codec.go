package xgb

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/wire"
)

// codecVersion is the xgb payload format; bump on incompatible layout
// changes so old readers fail descriptively instead of misloading.
const codecVersion = 1

// Encode serialises the fitted ensemble: config, shape, feature importances,
// the per-round training loss / eval accuracy curves, and every regression
// tree. Decode restores a classifier whose predictions are bit-identical to
// the original.
func (c *Classifier) Encode(w io.Writer) error {
	if c.trees == nil {
		return errors.New("xgb: cannot encode an unfitted classifier")
	}
	ww := wire.NewWriter(w)
	ww.U16(codecVersion)
	ww.Int(c.cfg.NumRounds)
	ww.F64(c.cfg.LearningRate)
	ww.Int(c.cfg.MaxDepth)
	ww.F64(c.cfg.Gamma)
	ww.F64(c.cfg.Lambda)
	ww.F64(c.cfg.Alpha)
	ww.F64(c.cfg.MinChildWeight)
	ww.F64(c.cfg.Subsample)
	ww.Int(c.cfg.Workers)
	ww.I64(c.cfg.Seed)
	ww.Int(c.numClasses)
	ww.Int(c.numFeats)
	ww.F64s(c.gainImp)
	ww.F64s(c.weightImp)
	ww.F64s(c.TrainLoss)
	ww.F64s(c.EvalAccuracy)
	ww.Int(len(c.trees))
	for _, round := range c.trees {
		if len(round) != c.numClasses {
			return fmt.Errorf("xgb: round has %d trees, want %d", len(round), c.numClasses)
		}
		for _, tr := range round {
			encodeRegTree(ww, tr)
		}
	}
	return ww.Err()
}

func encodeRegTree(ww *wire.Writer, t *regTree) {
	ww.Int(len(t.nodes))
	for i := range t.nodes {
		nd := &t.nodes[i]
		ww.Bool(nd.leaf)
		if nd.leaf {
			ww.F64(nd.weight)
		} else {
			ww.Int(nd.feature)
			ww.F64(nd.threshold)
			ww.Int(nd.left)
			ww.Int(nd.right)
		}
	}
}

// Decode reads a classifier previously written by Encode, validating node
// indices so corrupted input errors instead of panicking at prediction time.
func Decode(r io.Reader) (*Classifier, error) {
	rr := wire.NewReader(r)
	if v := rr.U16(); rr.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("xgb: unsupported codec version %d (this build reads %d)", v, codecVersion)
	}
	c := &Classifier{}
	c.cfg.NumRounds = rr.Int()
	c.cfg.LearningRate = rr.F64()
	c.cfg.MaxDepth = rr.Int()
	c.cfg.Gamma = rr.F64()
	c.cfg.Lambda = rr.F64()
	c.cfg.Alpha = rr.F64()
	c.cfg.MinChildWeight = rr.F64()
	c.cfg.Subsample = rr.F64()
	c.cfg.Workers = rr.Int()
	c.cfg.Seed = rr.I64()
	c.numClasses = rr.Int()
	c.numFeats = rr.Int()
	c.gainImp = rr.F64s()
	c.weightImp = rr.F64s()
	c.TrainLoss = rr.F64s()
	c.EvalAccuracy = rr.F64s()
	rounds := rr.Int()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if c.numClasses < 2 || c.numFeats < 1 || rounds < 1 || rounds > 1<<20 {
		return nil, fmt.Errorf("xgb: corrupt header (%d classes, %d features, %d rounds)", c.numClasses, c.numFeats, rounds)
	}
	if len(c.gainImp) != c.numFeats || len(c.weightImp) != c.numFeats {
		return nil, fmt.Errorf("xgb: importance lengths %d/%d for %d features", len(c.gainImp), len(c.weightImp), c.numFeats)
	}
	c.trees = make([][]*regTree, rounds)
	for ri := range c.trees {
		round := make([]*regTree, c.numClasses)
		for k := range round {
			tr, err := decodeRegTree(rr, c.numFeats)
			if err != nil {
				return nil, fmt.Errorf("xgb: round %d class %d: %w", ri, k, err)
			}
			round[k] = tr
		}
		c.trees[ri] = round
	}
	if err := rr.Err(); err != nil {
		return nil, err
	}
	c.flat = compileFlat(c.trees, c.cfg.LearningRate, c.numClasses)
	return c, nil
}

func decodeRegTree(rr *wire.Reader, numFeats int) (*regTree, error) {
	numNodes := rr.Int()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if numNodes < 1 || numNodes > 1<<27 {
		return nil, fmt.Errorf("corrupt node count %d", numNodes)
	}
	t := &regTree{nodes: make([]regNode, numNodes)}
	for i := range t.nodes {
		nd := &t.nodes[i]
		nd.leaf = rr.Bool()
		if nd.leaf {
			nd.weight = rr.F64()
		} else {
			nd.feature = rr.Int()
			nd.threshold = rr.F64()
			nd.left = rr.Int()
			nd.right = rr.Int()
			if rr.Err() == nil {
				if nd.feature < 0 || nd.feature >= numFeats {
					return nil, fmt.Errorf("node %d splits on feature %d of %d", i, nd.feature, numFeats)
				}
				// Children must point forward, as grow() lays them out; this
				// also rules out traversal cycles.
				if nd.left <= i || nd.left >= numNodes || nd.right <= i || nd.right >= numNodes {
					return nil, fmt.Errorf("node %d has out-of-range children (%d, %d)", i, nd.left, nd.right)
				}
			}
		}
	}
	if err := rr.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
