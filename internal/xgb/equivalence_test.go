package xgb

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// randomProblem builds an n-row, d-feature training set with k random
// labels, forcing real splits without structure that could hide a
// traversal bug behind constant leaves.
func randomProblem(rng *rand.Rand, n, d, k int) (*mat.Matrix, []int) {
	x := mat.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, rng.NormFloat64()*3)
		}
		y[i] = rng.Intn(k)
	}
	return x, y
}

// hostileRows mixes ordinary values with NaN, ±Inf, signed zeros, and
// extreme magnitudes so both walks face every comparison edge.
func hostileRows(rng *rand.Rand, rows, d int) *mat.Matrix {
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), 1e300, -1e300, 5e-324}
	x := mat.New(rows, d)
	for i := 0; i < rows; i++ {
		for j := 0; j < d; j++ {
			if rng.Intn(3) == 0 {
				x.Set(i, j, specials[rng.Intn(len(specials))])
			} else {
				x.Set(i, j, rng.NormFloat64()*3)
			}
		}
	}
	return x
}

// pointerOnly clones a fitted ensemble without its flat form, forcing
// PredictProbaBatch down the pointer-tree probaBlock fallback.
func pointerOnly(c *Classifier) *Classifier {
	return &Classifier{cfg: c.cfg, trees: c.trees, numClasses: c.numClasses, numFeats: c.numFeats}
}

// TestEquivalenceFlatXGB pins the flat node-array kernel bit-identical to
// the pointer-tree block path and the serial PredictProba path across
// ensemble shapes, including empty and single-row hostile batches.
func TestEquivalenceFlatXGB(t *testing.T) {
	cases := []struct {
		name                      string
		rounds, depth, classes, d int
	}{
		{"shallow-binary", 4, 2, 2, 3},
		{"deeper-binary", 10, 5, 2, 5},
		{"multiclass", 8, 4, 5, 7},
		{"stumps-manyclass", 12, 1, 7, 4},
	}
	rng := rand.New(rand.NewSource(99))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x, y := randomProblem(rng, 220, tc.d, tc.classes)
			c := New(Config{NumRounds: tc.rounds, MaxDepth: tc.depth, Workers: 3, Seed: 5})
			if err := c.Fit(x, y, tc.classes, nil, nil); err != nil {
				t.Fatal(err)
			}
			if c.flat == nil {
				t.Fatal("Fit left no compiled flat form")
			}
			ptr := pointerOnly(c)
			for _, rows := range []int{0, 1, 37} {
				ev := hostileRows(rng, rows, tc.d)
				got, err := c.PredictProbaBatch(ev)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ptr.PredictProbaBatch(ev)
				if err != nil {
					t.Fatal(err)
				}
				serial, err := c.PredictProba(ev)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want.Data {
					if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
						t.Fatalf("rows=%d: element %d: flat %v vs pointer %v", rows, i, got.Data[i], want.Data[i])
					}
					if math.Float64bits(got.Data[i]) != math.Float64bits(serial.Data[i]) {
						t.Fatalf("rows=%d: element %d: flat %v vs serial %v", rows, i, got.Data[i], serial.Data[i])
					}
				}
			}
		})
	}
}

// TestFlatXGBCompiledShape checks the relayout invariants the kernel
// relies on: one root per (round, class) tree in boosting order and
// adjacent sibling children.
func TestFlatXGBCompiledShape(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x, y := randomProblem(rng, 150, 4, 3)
	c := New(Config{NumRounds: 6, MaxDepth: 4, Seed: 11})
	if err := c.Fit(x, y, 3, nil, nil); err != nil {
		t.Fatal(err)
	}
	fl := c.flat
	if len(fl.roots) != 6*3 {
		t.Fatalf("%d roots for 6 rounds × 3 classes", len(fl.roots))
	}
	if len(fl.feat) != len(fl.thr) || len(fl.feat) != len(fl.kids) {
		t.Fatalf("ragged arrays: %d/%d/%d", len(fl.feat), len(fl.thr), len(fl.kids))
	}
	for id, ft := range fl.feat {
		if ft < 0 {
			continue
		}
		if k := int(fl.kids[id]); k <= id || k+1 >= len(fl.feat) {
			t.Fatalf("node %d has out-of-range children at %d", id, k)
		}
	}
}
