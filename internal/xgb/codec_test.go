package xgb

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func fitSmallBooster(t *testing.T, seed int64) (*Classifier, *mat.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := mat.New(120, 6)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.Intn(3)
	}
	c := New(Config{NumRounds: 6, LearningRate: 0.3, MaxDepth: 4, Lambda: 1, MinChildWeight: 1, Subsample: 0.9, Seed: seed})
	if err := c.Fit(x, y, 3, nil, nil); err != nil {
		t.Fatal(err)
	}
	eval := mat.New(50, 6)
	for i := range eval.Data {
		eval.Data[i] = rng.NormFloat64()
	}
	return c, eval
}

// TestCodecRoundTrip pins Fit → Encode → Decode → PredictProbaBatch
// bit-identical to the in-memory booster on the same inputs.
func TestCodecRoundTrip(t *testing.T) {
	c, eval := fitSmallBooster(t, 7)
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRounds() != c.NumRounds() {
		t.Fatalf("decoded %d rounds, want %d", got.NumRounds(), c.NumRounds())
	}
	want, err := c.PredictProbaBatch(eval)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.PredictProbaBatch(eval)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if have.Data[i] != want.Data[i] {
			t.Fatalf("prob[%d]: %v vs %v (not bit-identical)", i, have.Data[i], want.Data[i])
		}
	}

	// Importances and the training-loss curve are provenance; they survive.
	wantImp := c.FeatureImportances(ImportanceGain)
	for i, v := range got.FeatureImportances(ImportanceGain) {
		if v != wantImp[i] {
			t.Fatalf("gain importance %d: %v vs %v", i, v, wantImp[i])
		}
	}
	if len(got.TrainLoss) != len(c.TrainLoss) {
		t.Fatalf("train loss length %d, want %d", len(got.TrainLoss), len(c.TrainLoss))
	}
}

func TestEncodeUnfitted(t *testing.T) {
	if err := New(DefaultConfig()).Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("encoding an unfitted booster should fail")
	}
}

func TestDecodeTruncations(t *testing.T) {
	c, _ := fitSmallBooster(t, 9)
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 211 {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}
