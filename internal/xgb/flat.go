package xgb

import (
	"repro/internal/mat"
)

// flatEnsemble is the compiled inference form of a fitted boosted ensemble:
// every regression tree's nodes in one contiguous structure-of-arrays
// layout, children laid out adjacently so the traversal picks a child by
// offset arithmetic instead of chasing per-node pointers. It is built once
// — at Fit or Decode time — and is immutable afterwards, so ticks on many
// goroutines can walk it without synchronisation.
//
// Per node:
//
//	feat[id]  split feature index, or -1 for a leaf
//	thr[id]   split threshold; for leaves, the leaf weight
//	kids[id]  index of the left child (right child is kids[id]+1);
//	          unused (0) for leaves
//
// roots holds one root index per (round, class) tree in boosting order. The
// walk uses the same `value <= threshold` comparison as the pointer tree —
// NaN routes right on both — and the batch kernel accumulates round
// contributions in boosting order before one softmax per row, exactly as
// probaBlock, so results are bit-identical to the pointer paths.
type flatEnsemble struct {
	lr         float64
	numClasses int
	roots      []int32 // row-major [round][class]
	feat       []int32
	thr        []float64
	kids       []int32
}

// compileFlat flattens the ensemble. Each tree is relaid breadth-first so
// sibling children occupy adjacent slots; leaf weights are preserved
// exactly.
func compileFlat(trees [][]*regTree, lr float64, numClasses int) *flatEnsemble {
	f := &flatEnsemble{lr: lr, numClasses: numClasses}
	type pending struct {
		orig int
		slot int32
	}
	var queue []pending
	for _, round := range trees {
		for _, t := range round {
			root := int32(len(f.feat))
			f.roots = append(f.roots, root)
			f.feat = append(f.feat, 0)
			f.thr = append(f.thr, 0)
			f.kids = append(f.kids, 0)
			queue = append(queue[:0], pending{orig: 0, slot: root})
			for len(queue) > 0 {
				p := queue[0]
				queue = queue[1:]
				nd := &t.nodes[p.orig]
				if nd.leaf {
					f.feat[p.slot] = -1
					f.thr[p.slot] = nd.weight
					continue
				}
				left := int32(len(f.feat))
				f.feat = append(f.feat, 0, 0)
				f.thr = append(f.thr, 0, 0)
				f.kids = append(f.kids, 0, 0)
				f.feat[p.slot] = int32(nd.feature)
				f.thr[p.slot] = nd.threshold
				f.kids[p.slot] = left
				queue = append(queue, pending{orig: nd.left, slot: left}, pending{orig: nd.right, slot: left + 1})
			}
		}
	}
	return f
}

// predictRow walks one flat tree for one feature row. The split step is
// phrased as a conditional select so the compiler emits SETcc instead of a
// data-dependent branch (the direction is near 50/50 and mispredicts
// dominate a branchy walk); NaN routes right, exactly like `!(v <= thr)`.
func (f *flatEnsemble) predictRow(root int32, row []float64) float64 {
	feat, thr, kids := f.feat, f.thr, f.kids
	id := root
	for {
		ft := feat[id]
		if ft < 0 {
			return thr[id]
		}
		step := int32(1)
		if row[ft] <= thr[id] {
			step = 0
		}
		id = kids[id] + step
	}
}

// scoreBlock accumulates boosted per-class scores for rows [lo, hi) into
// out, then softmaxes every row. Tree-outer iteration keeps the flat arrays
// hot in cache, and each tree sweeps the block four rows at a time: a
// single walk is a serial chain of data-dependent loads, so four
// independent lanes let the core overlap their latencies (lanes that reach
// a leaf early idle until the slowest lane finishes). Accumulation order
// (round, class, row) and the softmax match probaBlock bit for bit;
// interleaving rows never reorders any single row's additions.
//
//wcc:hotpath zero allocations per call, pinned by an AllocsPerRun gate
func (f *flatEnsemble) scoreBlock(x, out *mat.Matrix, lo, hi int) {
	feat, thr, kids := f.feat, f.thr, f.kids
	xd, xc := x.Data, x.Cols
	od, oc := out.Data, out.Cols
	lr := f.lr
	for ti, root := range f.roots {
		k := ti % f.numClasses
		i := lo
		for ; i+4 <= hi; i += 4 {
			r0 := xd[(i+0)*xc : (i+1)*xc]
			r1 := xd[(i+1)*xc : (i+2)*xc]
			r2 := xd[(i+2)*xc : (i+3)*xc]
			r3 := xd[(i+3)*xc : (i+4)*xc]
			id0, id1, id2, id3 := root, root, root, root
			f0, f1, f2, f3 := feat[id0], feat[id1], feat[id2], feat[id3]
			for f0 >= 0 || f1 >= 0 || f2 >= 0 || f3 >= 0 {
				if f0 >= 0 {
					step := int32(1)
					if r0[f0] <= thr[id0] {
						step = 0
					}
					id0 = kids[id0] + step
					f0 = feat[id0]
				}
				if f1 >= 0 {
					step := int32(1)
					if r1[f1] <= thr[id1] {
						step = 0
					}
					id1 = kids[id1] + step
					f1 = feat[id1]
				}
				if f2 >= 0 {
					step := int32(1)
					if r2[f2] <= thr[id2] {
						step = 0
					}
					id2 = kids[id2] + step
					f2 = feat[id2]
				}
				if f3 >= 0 {
					step := int32(1)
					if r3[f3] <= thr[id3] {
						step = 0
					}
					id3 = kids[id3] + step
					f3 = feat[id3]
				}
			}
			od[(i+0)*oc+k] += lr * thr[id0]
			od[(i+1)*oc+k] += lr * thr[id1]
			od[(i+2)*oc+k] += lr * thr[id2]
			od[(i+3)*oc+k] += lr * thr[id3]
		}
		for ; i < hi; i++ {
			od[i*oc+k] += lr * f.predictRow(root, xd[i*xc:(i+1)*xc])
		}
	}
	for i := lo; i < hi; i++ {
		dst := od[i*oc : i*oc+f.numClasses]
		softmaxInto(dst, dst)
	}
}
