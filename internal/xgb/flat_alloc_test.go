package xgb

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// TestScoreBlockZeroAlloc pins the //wcc:hotpath contract on the flat
// boosted-ensemble batch kernel: accumulation and the in-place softmax
// (softmaxInto with dst aliasing scores) allocate nothing per block.
func TestScoreBlockZeroAlloc(t *testing.T) {
	const classes, d, rows = 5, 7, 32
	rng := rand.New(rand.NewSource(11))
	x, y := randomProblem(rng, 200, d, classes)
	c := New(Config{NumRounds: 8, MaxDepth: 4, Seed: 5})
	if err := c.Fit(x, y, classes, nil, nil); err != nil {
		t.Fatal(err)
	}
	if c.flat == nil {
		t.Fatal("Fit left no compiled flat form")
	}
	ev := hostileRows(rng, rows, d)
	out := mat.New(rows, classes)

	allocs := testing.AllocsPerRun(100, func() {
		c.flat.scoreBlock(ev, out, 0, rows)
	})
	if allocs != 0 {
		t.Fatalf("flatEnsemble.scoreBlock allocates %.1f times per call, want 0", allocs)
	}
}
