package nn

import (
	"math"
	"math/rand"

	"repro/internal/mat"
)

// Dense is a fully-connected layer: y = xW + b.
type Dense struct {
	W *Param // in×out
	B *Param // 1×out

	x *mat.Matrix // cached input
}

// NewDense builds a Glorot-initialised dense layer.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{W: newParam("dense.W", in, out), B: newParam("dense.b", 1, out)}
	glorotInit(d.W.W, in, out, rng)
	return d
}

// Forward computes xW + b for a B×in batch.
func (d *Dense) Forward(x *mat.Matrix) *mat.Matrix {
	d.x = x
	out := mat.New(x.Rows, d.W.W.Cols)
	mat.MulInto(out, x, d.W.W)
	bias := d.B.W.Row(0)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
	return out
}

// Backward accumulates parameter gradients and returns the input gradient.
func (d *Dense) Backward(grad *mat.Matrix) *mat.Matrix {
	// dW += xᵀ·grad
	for i := 0; i < d.x.Rows; i++ {
		xrow := d.x.Row(i)
		grow := grad.Row(i)
		for a, xv := range xrow {
			if xv == 0 {
				continue
			}
			dst := d.W.Grad.Row(a)
			for b, gv := range grow {
				dst[b] += xv * gv
			}
		}
	}
	// db += column sums of grad
	bgrad := d.B.Grad.Row(0)
	for i := 0; i < grad.Rows; i++ {
		for j, gv := range grad.Row(i) {
			bgrad[j] += gv
		}
	}
	// dx = grad·Wᵀ
	dx := mat.New(grad.Rows, d.W.W.Rows)
	mat.MulTransInto(dx, grad, d.W.W)
	return dx
}

// Params returns the layer's trainables.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// LeakyReLU applies max(αx, x) element-wise (the paper's non-linearity).
type LeakyReLU struct {
	Alpha float64
	x     *mat.Matrix
}

// NewLeakyReLU uses the conventional slope 0.01 when alpha ≤ 0.
func NewLeakyReLU(alpha float64) *LeakyReLU {
	if alpha <= 0 {
		alpha = 0.01
	}
	return &LeakyReLU{Alpha: alpha}
}

// Forward applies the activation.
func (l *LeakyReLU) Forward(x *mat.Matrix) *mat.Matrix {
	l.x = x
	out := mat.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = l.Alpha * v
		}
	}
	return out
}

// Backward gates the incoming gradient.
func (l *LeakyReLU) Backward(grad *mat.Matrix) *mat.Matrix {
	dx := mat.New(grad.Rows, grad.Cols)
	for i, v := range l.x.Data {
		if v > 0 {
			dx.Data[i] = grad.Data[i]
		} else {
			dx.Data[i] = l.Alpha * grad.Data[i]
		}
	}
	return dx
}

// Dropout zeroes activations with probability P during training, scaling
// the survivors by 1/(1-P) (inverted dropout), and is the identity at
// evaluation time.
type Dropout struct {
	P    float64
	rng  *rand.Rand
	mask []float64
}

// NewDropout builds a dropout layer (the paper uses p = 0.5).
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	return &Dropout{P: p, rng: rng}
}

// Forward applies dropout when train is true.
func (d *Dropout) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	out := mat.New(x.Rows, x.Cols)
	d.mask = make([]float64, len(x.Data))
	keep := 1 - d.P
	inv := 1 / keep
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = inv
			out.Data[i] = v * inv
		}
	}
	return out
}

// Backward routes gradients through the surviving units.
func (d *Dropout) Backward(grad *mat.Matrix) *mat.Matrix {
	if d.mask == nil {
		return grad
	}
	dx := mat.New(grad.Rows, grad.Cols)
	for i, g := range grad.Data {
		dx.Data[i] = g * d.mask[i]
	}
	return dx
}

// LogSoftmax computes row-wise log-probabilities.
type LogSoftmax struct {
	out *mat.Matrix
}

// Forward returns log softmax of each row.
func (l *LogSoftmax) Forward(x *mat.Matrix) *mat.Matrix {
	out := mat.New(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		dst := out.Row(i)
		max := src[0]
		for _, v := range src[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range src {
			dst[j] = v - max
			sum += math.Exp(dst[j])
		}
		lse := math.Log(sum)
		for j := range dst {
			dst[j] -= lse
		}
	}
	l.out = out
	return out
}

// Backward converts a gradient w.r.t. log-probabilities into a gradient
// w.r.t. the logits: dx = g − softmax(x)·Σg.
func (l *LogSoftmax) Backward(grad *mat.Matrix) *mat.Matrix {
	dx := mat.New(grad.Rows, grad.Cols)
	for i := 0; i < grad.Rows; i++ {
		g := grad.Row(i)
		lp := l.out.Row(i)
		var sum float64
		for _, v := range g {
			sum += v
		}
		dst := dx.Row(i)
		for j := range dst {
			dst[j] = g[j] - math.Exp(lp[j])*sum
		}
	}
	return dx
}

// NLLLoss computes the negative log-likelihood of the true classes given
// log-probabilities, averaged over the batch, together with the gradient
// w.r.t. the log-probabilities (the paper's loss on the log-softmax output).
func NLLLoss(logProbs *mat.Matrix, y []int) (loss float64, grad *mat.Matrix) {
	grad = mat.New(logProbs.Rows, logProbs.Cols)
	invB := 1.0 / float64(logProbs.Rows)
	for i := 0; i < logProbs.Rows; i++ {
		loss -= logProbs.At(i, y[i]) * invB
		grad.Set(i, y[i], -invB)
	}
	return loss, grad
}
