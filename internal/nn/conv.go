package nn

import (
	"math"
	"math/rand"

	"repro/internal/mat"
)

// Conv1D slides kernels across the time axis of a batch sequence. Input is
// T matrices of B×Cin; output is T' matrices of B×Cout with
// T' = (T-K)/S + 1. Weights are stored as a (K·Cin)×Cout matrix so each
// output step is one im2col matmul.
type Conv1D struct {
	InCh, OutCh, Kernel, Stride int

	W *Param // (K·Cin)×Cout
	B *Param // 1×Cout

	cols []*mat.Matrix // cached im2col blocks per output step
	inT  int
	bsz  int
}

// NewConv1D builds a Glorot-initialised 1-D convolution.
func NewConv1D(inCh, outCh, kernel, stride int, rng *rand.Rand) *Conv1D {
	c := &Conv1D{
		InCh: inCh, OutCh: outCh, Kernel: kernel, Stride: stride,
		W: newParam("conv.W", kernel*inCh, outCh),
		B: newParam("conv.b", 1, outCh),
	}
	glorotInit(c.W.W, kernel*inCh, outCh, rng)
	return c
}

// OutLen returns the output sequence length for an input of length t.
func (c *Conv1D) OutLen(t int) int {
	if t < c.Kernel {
		return 0
	}
	return (t-c.Kernel)/c.Stride + 1
}

// Forward applies the convolution.
func (c *Conv1D) Forward(seq []*mat.Matrix) []*mat.Matrix {
	tIn := len(seq)
	tOut := c.OutLen(tIn)
	b := seq[0].Rows
	c.inT = tIn
	c.bsz = b
	c.cols = make([]*mat.Matrix, tOut)
	outs := make([]*mat.Matrix, tOut)

	for to := 0; to < tOut; to++ {
		col := mat.New(b, c.Kernel*c.InCh)
		for k := 0; k < c.Kernel; k++ {
			src := seq[to*c.Stride+k]
			for i := 0; i < b; i++ {
				copy(col.Row(i)[k*c.InCh:(k+1)*c.InCh], src.Row(i))
			}
		}
		c.cols[to] = col
		out := mat.New(b, c.OutCh)
		mat.MulInto(out, col, c.W.W)
		bias := c.B.W.Row(0)
		for i := 0; i < b; i++ {
			row := out.Row(i)
			for j := range row {
				row[j] += bias[j]
			}
		}
		outs[to] = out
	}
	return outs
}

// Backward accumulates parameter gradients and returns the input-sequence
// gradient.
func (c *Conv1D) Backward(dOut []*mat.Matrix) []*mat.Matrix {
	dxs := make([]*mat.Matrix, c.inT)
	for t := range dxs {
		dxs[t] = mat.New(c.bsz, c.InCh)
	}
	dcol := mat.New(c.bsz, c.Kernel*c.InCh)
	for to, g := range dOut {
		col := c.cols[to]
		// dW += colᵀ·g ; db += Σg.
		for i := 0; i < c.bsz; i++ {
			crow := col.Row(i)
			grow := g.Row(i)
			for a, cv := range crow {
				if cv == 0 {
					continue
				}
				dst := c.W.Grad.Row(a)
				for j, gv := range grow {
					dst[j] += cv * gv
				}
			}
			bg := c.B.Grad.Row(0)
			for j, gv := range grow {
				bg[j] += gv
			}
		}
		// dcol = g·Wᵀ, scattered back to input steps.
		mat.MulTransInto(dcol, g, c.W.W)
		for k := 0; k < c.Kernel; k++ {
			dst := dxs[to*c.Stride+k]
			for i := 0; i < c.bsz; i++ {
				drow := dst.Row(i)
				src := dcol.Row(i)[k*c.InCh : (k+1)*c.InCh]
				for j, v := range src {
					drow[j] += v
				}
			}
		}
	}
	return dxs
}

// Params returns the convolution trainables.
func (c *Conv1D) Params() []*Param { return []*Param{c.W, c.B} }

// MaxPool1D takes the per-channel maximum over non-overlapping (or strided)
// time windows.
type MaxPool1D struct {
	Kernel, Stride int

	argmax [][]int // per output step: flattened (b·ch) winner step indices
	inT    int
	bsz    int
	ch     int
}

// NewMaxPool1D builds the pooling layer.
func NewMaxPool1D(kernel, stride int) *MaxPool1D {
	return &MaxPool1D{Kernel: kernel, Stride: stride}
}

// OutLen returns the output sequence length for an input of length t.
func (p *MaxPool1D) OutLen(t int) int {
	if t < p.Kernel {
		return 0
	}
	return (t-p.Kernel)/p.Stride + 1
}

// Forward applies max pooling over time.
func (p *MaxPool1D) Forward(seq []*mat.Matrix) []*mat.Matrix {
	tOut := p.OutLen(len(seq))
	b := seq[0].Rows
	ch := seq[0].Cols
	p.inT = len(seq)
	p.bsz = b
	p.ch = ch
	p.argmax = make([][]int, tOut)
	outs := make([]*mat.Matrix, tOut)
	for to := 0; to < tOut; to++ {
		out := mat.New(b, ch)
		arg := make([]int, b*ch)
		for i := 0; i < b; i++ {
			dst := out.Row(i)
			for j := 0; j < ch; j++ {
				best := math.Inf(-1)
				bestT := -1
				for k := 0; k < p.Kernel; k++ {
					v := seq[to*p.Stride+k].At(i, j)
					if v > best {
						best = v
						bestT = to*p.Stride + k
					}
				}
				dst[j] = best
				arg[i*ch+j] = bestT
			}
		}
		outs[to] = out
		p.argmax[to] = arg
	}
	return outs
}

// Backward routes gradients to the winning timesteps.
func (p *MaxPool1D) Backward(dOut []*mat.Matrix) []*mat.Matrix {
	dxs := make([]*mat.Matrix, p.inT)
	for t := range dxs {
		dxs[t] = mat.New(p.bsz, p.ch)
	}
	for to, g := range dOut {
		arg := p.argmax[to]
		for i := 0; i < p.bsz; i++ {
			grow := g.Row(i)
			for j := 0; j < p.ch; j++ {
				t := arg[i*p.ch+j]
				dxs[t].Set(i, j, dxs[t].At(i, j)+grow[j])
			}
		}
	}
	return dxs
}
