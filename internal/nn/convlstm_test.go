package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestConvLSTMForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewConvLSTM(7, 1, 4, rng)
	seq := make([]*mat.Matrix, 5)
	for s := range seq {
		seq[s] = mat.New(3, 7)
		for i := range seq[s].Data {
			seq[s].Data[i] = rng.NormFloat64()
		}
	}
	out := l.Forward(seq)
	if out.Rows != 3 || out.Cols != 7*4 {
		t.Fatalf("final hidden shape %dx%d, want 3x28", out.Rows, out.Cols)
	}
}

// TestConvLSTMGradCheck verifies the full BPTT through the convolutional
// gates against numerical differentiation.
func TestConvLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewConvLSTM(5, 1, 2, rng)
	seqLen, batch := 3, 2
	seq := make([]*mat.Matrix, seqLen)
	for s := range seq {
		seq[s] = mat.New(batch, 5)
		for i := range seq[s].Data {
			seq[s].Data[i] = rng.NormFloat64()
		}
	}
	y := []int{1, 0}
	ls := &LogSoftmax{}
	dense := NewDense(5*2, 2, rng)

	loss := func() float64 {
		out := ls.Forward(dense.Forward(l.Forward(seq)))
		v, _ := NLLLoss(out, y)
		return v
	}
	out := ls.Forward(dense.Forward(l.Forward(seq)))
	_, grad := NLLLoss(out, y)
	params := append(l.Params(), dense.Params()...)
	ZeroGrads(params)
	l.Backward(dense.Backward(ls.Backward(grad)))

	for _, p := range l.Params() {
		step := len(p.W.Data)/6 + 1
		for i := 0; i < len(p.W.Data); i += step {
			num := numericalGrad(loss, p.W.Data, i)
			if math.Abs(num-p.Grad.Data[i]) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestConvLSTMClassifierTrains(t *testing.T) {
	s, y := makeSynth(60, 12, 7, 2, 7)
	model, err := NewConvLSTMClassifier(7, 4, 12, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 8
	cfg.Patience = 8
	cfg.BatchSize = 16
	res, err := Train(model, s, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValAcc < 0.4 {
		t.Errorf("ConvLSTM best val acc %v", res.BestValAcc)
	}
	if model.Name() != "ConvLSTM (maps=4)" {
		t.Errorf("name = %q", model.Name())
	}
}

func TestConvLSTMClassifierErrors(t *testing.T) {
	if _, err := NewConvLSTMClassifier(2, 4, 10, 2, 1); err == nil {
		t.Error("too few sensor positions should fail")
	}
}
