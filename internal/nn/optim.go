package nn

import "math"

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	Beta1, Beta2, Eps float64

	step int
	m    map[*Param][]float64
	v    map[*Param][]float64
}

// NewAdam builds an optimizer with the standard β₁=0.9, β₂=0.999 defaults.
func NewAdam() *Adam {
	return &Adam{
		Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float64),
		v: make(map[*Param][]float64),
	}
}

// Step applies one update with the given learning rate (supplied per step
// by the cyclical schedule) and the gradients currently accumulated in the
// params.
func (a *Adam) Step(params []*Param, lr float64) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.W.Data))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.W.Data))
		}
		v := a.v[p]
		for i, g := range p.Grad.Data {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / c1
			vh := v[i] / c2
			p.W.Data[i] -= lr * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// CyclicalCosineLR implements the paper's cyclical learning-rate schedule
// with cosine annealing: within each cycle the rate decays from Max to Min
// along a half cosine, then restarts.
type CyclicalCosineLR struct {
	Min, Max float64
	// CycleSteps is the number of optimizer steps per cycle.
	CycleSteps int
}

// NewCyclicalCosineLR validates and builds the schedule.
func NewCyclicalCosineLR(min, max float64, cycleSteps int) *CyclicalCosineLR {
	if cycleSteps <= 0 {
		cycleSteps = 1
	}
	if min > max {
		min, max = max, min
	}
	return &CyclicalCosineLR{Min: min, Max: max, CycleSteps: cycleSteps}
}

// At returns the learning rate for optimizer step t (0-based).
func (s *CyclicalCosineLR) At(t int) float64 {
	pos := float64(t%s.CycleSteps) / float64(s.CycleSteps)
	return s.Min + 0.5*(s.Max-s.Min)*(1+math.Cos(math.Pi*pos))
}
