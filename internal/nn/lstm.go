package nn

import (
	"math"
	"math/rand"

	"repro/internal/mat"
)

// LSTM is a single-direction LSTM layer processing a batch of sequences.
// Gate order in the packed weight matrices is (input, forget, cell, output).
type LSTM struct {
	InSize, HiddenSize int

	Wx *Param // in×4h
	Wh *Param // h×4h
	B  *Param // 1×4h

	// Forward caches for BPTT.
	xs    []*mat.Matrix // inputs per step, B×in
	hs    []*mat.Matrix // hidden states per step (hs[0] is the initial zero state)
	cs    []*mat.Matrix // cell states per step
	gates []*mat.Matrix // post-activation gates per step, B×4h
	tanhC []*mat.Matrix // tanh(c_t) per step
}

// NewLSTM builds a Glorot-initialised LSTM with the forget-gate bias set to
// 1, the standard trick for gradient flow early in training.
func NewLSTM(in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		InSize:     in,
		HiddenSize: hidden,
		Wx:         newParam("lstm.Wx", in, 4*hidden),
		Wh:         newParam("lstm.Wh", hidden, 4*hidden),
		B:          newParam("lstm.b", 1, 4*hidden),
	}
	glorotInit(l.Wx.W, in, 4*hidden, rng)
	glorotInit(l.Wh.W, hidden, 4*hidden, rng)
	for j := hidden; j < 2*hidden; j++ {
		l.B.W.Set(0, j, 1)
	}
	return l
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Forward runs the batch sequence (T matrices of B×in) and returns the
// hidden state at every step (T matrices of B×h).
func (l *LSTM) Forward(seq []*mat.Matrix) []*mat.Matrix {
	t := len(seq)
	b := seq[0].Rows
	h := l.HiddenSize

	l.xs = seq
	l.hs = make([]*mat.Matrix, t+1)
	l.cs = make([]*mat.Matrix, t+1)
	l.gates = make([]*mat.Matrix, t)
	l.tanhC = make([]*mat.Matrix, t)
	l.hs[0] = mat.New(b, h)
	l.cs[0] = mat.New(b, h)

	outs := make([]*mat.Matrix, t)
	pre := mat.New(b, 4*h)
	for step := 0; step < t; step++ {
		mat.MulInto(pre, seq[step], l.Wx.W)
		hprev := l.hs[step]
		// pre += hprev·Wh + b
		for i := 0; i < b; i++ {
			prow := pre.Row(i)
			hrow := hprev.Row(i)
			for a, hv := range hrow {
				if hv == 0 {
					continue
				}
				wrow := l.Wh.W.Row(a)
				for j, wv := range wrow {
					prow[j] += hv * wv
				}
			}
			bias := l.B.W.Row(0)
			for j := range prow {
				prow[j] += bias[j]
			}
		}

		gates := mat.New(b, 4*h)
		ct := mat.New(b, h)
		ht := mat.New(b, h)
		th := mat.New(b, h)
		for i := 0; i < b; i++ {
			prow := pre.Row(i)
			grow := gates.Row(i)
			cprev := l.cs[step].Row(i)
			crow := ct.Row(i)
			hrow := ht.Row(i)
			trow := th.Row(i)
			for j := 0; j < h; j++ {
				ig := sigmoid(prow[j])
				fg := sigmoid(prow[h+j])
				gg := math.Tanh(prow[2*h+j])
				og := sigmoid(prow[3*h+j])
				grow[j] = ig
				grow[h+j] = fg
				grow[2*h+j] = gg
				grow[3*h+j] = og
				c := fg*cprev[j] + ig*gg
				crow[j] = c
				tc := math.Tanh(c)
				trow[j] = tc
				hrow[j] = og * tc
			}
		}
		l.gates[step] = gates
		l.tanhC[step] = th
		l.cs[step+1] = ct
		l.hs[step+1] = ht
		outs[step] = ht
	}
	return outs
}

// Backward runs BPTT. dOut holds the gradient w.r.t. the hidden output at
// each step (entries may be nil when a step's output is unused). It returns
// the gradient w.r.t. the input sequence and accumulates parameter
// gradients.
func (l *LSTM) Backward(dOut []*mat.Matrix) []*mat.Matrix {
	t := len(l.xs)
	b := l.xs[0].Rows
	h := l.HiddenSize

	dxs := make([]*mat.Matrix, t)
	dhNext := mat.New(b, h)
	dcNext := mat.New(b, h)
	dPre := mat.New(b, 4*h)

	for step := t - 1; step >= 0; step-- {
		dh := dhNext
		if dOut[step] != nil {
			dh = dh.Clone()
			if err := dh.Add(dOut[step]); err != nil {
				panic(err)
			}
		}

		gates := l.gates[step]
		th := l.tanhC[step]
		cprev := l.cs[step]
		dcNew := mat.New(b, h)
		for i := 0; i < b; i++ {
			grow := gates.Row(i)
			trow := th.Row(i)
			dhrow := dh.Row(i)
			dcrow := dcNext.Row(i)
			cprow := cprev.Row(i)
			dprow := dPre.Row(i)
			dcnew := dcNew.Row(i)
			for j := 0; j < h; j++ {
				ig, fg, gg, og := grow[j], grow[h+j], grow[2*h+j], grow[3*h+j]
				tc := trow[j]
				dc := dcrow[j] + dhrow[j]*og*(1-tc*tc)
				// Gate pre-activation gradients.
				dprow[j] = dc * gg * ig * (1 - ig)         // input gate
				dprow[h+j] = dc * cprow[j] * fg * (1 - fg) // forget gate
				dprow[2*h+j] = dc * ig * (1 - gg*gg)       // candidate
				dprow[3*h+j] = dhrow[j] * tc * og * (1 - og)
				dcnew[j] = dc * fg
			}
		}

		// Parameter gradients: dWx += x_tᵀ·dPre ; dWh += h_{t-1}ᵀ·dPre ;
		// db += Σ dPre.
		x := l.xs[step]
		hprev := l.hs[step]
		for i := 0; i < b; i++ {
			xrow := x.Row(i)
			dprow := dPre.Row(i)
			for a, xv := range xrow {
				if xv == 0 {
					continue
				}
				dst := l.Wx.Grad.Row(a)
				for j, dv := range dprow {
					dst[j] += xv * dv
				}
			}
			hrow := hprev.Row(i)
			for a, hv := range hrow {
				if hv == 0 {
					continue
				}
				dst := l.Wh.Grad.Row(a)
				for j, dv := range dprow {
					dst[j] += hv * dv
				}
			}
			bg := l.B.Grad.Row(0)
			for j, dv := range dprow {
				bg[j] += dv
			}
		}

		// Input gradient dx = dPre·Wxᵀ and recurrent dh = dPre·Whᵀ.
		dx := mat.New(b, l.InSize)
		mat.MulTransInto(dx, dPre, l.Wx.W)
		dxs[step] = dx
		dhPrev := mat.New(b, h)
		mat.MulTransInto(dhPrev, dPre, l.Wh.W)
		dhNext = dhPrev
		dcNext = dcNew
	}
	return dxs
}

// Params returns the LSTM trainables.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// FinalHidden returns the last step's hidden state from the most recent
// Forward call.
func (l *LSTM) FinalHidden() *mat.Matrix { return l.hs[len(l.hs)-1] }

// BiLSTM runs one LSTM forward in time and a second one backward, exposing
// the concatenation of their final hidden states — the summary vector the
// paper feeds into the classification head.
type BiLSTM struct {
	Fwd, Bwd *LSTM
	seqLen   int
}

// NewBiLSTM builds both directions.
func NewBiLSTM(in, hidden int, rng *rand.Rand) *BiLSTM {
	return &BiLSTM{Fwd: NewLSTM(in, hidden, rng), Bwd: NewLSTM(in, hidden, rng)}
}

// Forward returns the concatenated final hidden states, B×2h.
func (bl *BiLSTM) Forward(seq []*mat.Matrix) *mat.Matrix {
	bl.seqLen = len(seq)
	rev := make([]*mat.Matrix, len(seq))
	for i, m := range seq {
		rev[len(seq)-1-i] = m
	}
	bl.Fwd.Forward(seq)
	bl.Bwd.Forward(rev)
	hf := bl.Fwd.FinalHidden()
	hb := bl.Bwd.FinalHidden()
	b := hf.Rows
	h := bl.Fwd.HiddenSize
	out := mat.New(b, 2*h)
	for i := 0; i < b; i++ {
		copy(out.Row(i)[:h], hf.Row(i))
		copy(out.Row(i)[h:], hb.Row(i))
	}
	return out
}

// Backward splits the concatenated gradient between directions and returns
// the gradient w.r.t. the input sequence (in original time order).
func (bl *BiLSTM) Backward(grad *mat.Matrix) []*mat.Matrix {
	b := grad.Rows
	h := bl.Fwd.HiddenSize
	gf := mat.New(b, h)
	gb := mat.New(b, h)
	for i := 0; i < b; i++ {
		copy(gf.Row(i), grad.Row(i)[:h])
		copy(gb.Row(i), grad.Row(i)[h:])
	}
	dOutF := make([]*mat.Matrix, bl.seqLen)
	dOutF[bl.seqLen-1] = gf
	dxF := bl.Fwd.Backward(dOutF)

	dOutB := make([]*mat.Matrix, bl.seqLen)
	dOutB[bl.seqLen-1] = gb
	dxB := bl.Bwd.Backward(dOutB)

	// dxB is in reversed time; fold it back.
	dxs := make([]*mat.Matrix, bl.seqLen)
	for t := 0; t < bl.seqLen; t++ {
		d := dxF[t].Clone()
		if err := d.Add(dxB[bl.seqLen-1-t]); err != nil {
			panic(err)
		}
		dxs[t] = d
	}
	return dxs
}

// Params returns both directions' trainables.
func (bl *BiLSTM) Params() []*Param {
	return append(bl.Fwd.Params(), bl.Bwd.Params()...)
}

// ForwardSeq returns the bidirectional output at every step: out[t] is
// B×2h holding the forward hidden at t and the backward hidden at t (the
// backward LSTM having processed the sequence in reverse). Used when
// stacking BiLSTM layers.
func (bl *BiLSTM) ForwardSeq(seq []*mat.Matrix) []*mat.Matrix {
	bl.seqLen = len(seq)
	rev := make([]*mat.Matrix, len(seq))
	for i, m := range seq {
		rev[len(seq)-1-i] = m
	}
	fo := bl.Fwd.Forward(seq)
	bo := bl.Bwd.Forward(rev)
	b := seq[0].Rows
	h := bl.Fwd.HiddenSize
	outs := make([]*mat.Matrix, len(seq))
	for t := range seq {
		out := mat.New(b, 2*h)
		bwd := bo[len(seq)-1-t] // backward output at original position t
		for i := 0; i < b; i++ {
			copy(out.Row(i)[:h], fo[t].Row(i))
			copy(out.Row(i)[h:], bwd.Row(i))
		}
		outs[t] = out
	}
	return outs
}

// BackwardSeq is the counterpart of ForwardSeq: per-step output gradients
// in, input-sequence gradients out.
func (bl *BiLSTM) BackwardSeq(dOuts []*mat.Matrix) []*mat.Matrix {
	t := bl.seqLen
	b := dOuts[0].Rows
	h := bl.Fwd.HiddenSize
	dF := make([]*mat.Matrix, t)
	dB := make([]*mat.Matrix, t)
	for step := 0; step < t; step++ {
		gf := mat.New(b, h)
		gb := mat.New(b, h)
		for i := 0; i < b; i++ {
			copy(gf.Row(i), dOuts[step].Row(i)[:h])
			copy(gb.Row(i), dOuts[step].Row(i)[h:])
		}
		dF[step] = gf
		dB[t-1-step] = gb // map back to the backward LSTM's own time order
	}
	dxF := bl.Fwd.Backward(dF)
	dxB := bl.Bwd.Backward(dB)
	dxs := make([]*mat.Matrix, t)
	for step := 0; step < t; step++ {
		d := dxF[step].Clone()
		if err := d.Add(dxB[t-1-step]); err != nil {
			panic(err)
		}
		dxs[step] = d
	}
	return dxs
}
