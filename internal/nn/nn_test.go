package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(2, 2, rand.New(rand.NewSource(1)))
	copy(d.W.W.Data, []float64{1, 2, 3, 4})
	copy(d.B.W.Data, []float64{0.5, -0.5})
	x, _ := mat.FromRows([][]float64{{1, 1}})
	out := d.Forward(x)
	if math.Abs(out.At(0, 0)-4.5) > 1e-12 || math.Abs(out.At(0, 1)-5.5) > 1e-12 {
		t.Errorf("dense forward = %v", out)
	}
}

// numericalGrad estimates d loss / d w[i] by central differences.
func numericalGrad(f func() float64, w []float64, i int) float64 {
	const eps = 1e-5
	orig := w[i]
	w[i] = orig + eps
	lp := f()
	w[i] = orig - eps
	lm := f()
	w[i] = orig
	return (lp - lm) / (2 * eps)
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(3, 2, rng)
	x := mat.New(4, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := []int{0, 1, 1, 0}
	ls := &LogSoftmax{}

	loss := func() float64 {
		out := ls.Forward(d.Forward(x))
		l, _ := NLLLoss(out, y)
		return l
	}
	// Analytic gradients.
	out := ls.Forward(d.Forward(x))
	_, grad := NLLLoss(out, y)
	ZeroGrads(d.Params())
	d.Backward(ls.Backward(grad))

	for _, p := range d.Params() {
		for i := 0; i < len(p.W.Data); i += 2 {
			num := numericalGrad(loss, p.W.Data, i)
			if math.Abs(num-p.Grad.Data[i]) > 1e-6*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLSTM(2, 3, rng)
	seqLen, batch := 4, 2
	seq := make([]*mat.Matrix, seqLen)
	for s := range seq {
		seq[s] = mat.New(batch, 2)
		for i := range seq[s].Data {
			seq[s].Data[i] = rng.NormFloat64()
		}
	}
	y := []int{1, 2}
	ls := &LogSoftmax{}

	loss := func() float64 {
		l.Forward(seq)
		out := ls.Forward(l.FinalHidden())
		v, _ := NLLLoss(out, y)
		return v
	}
	l.Forward(seq)
	out := ls.Forward(l.FinalHidden())
	_, grad := NLLLoss(out, y)
	ZeroGrads(l.Params())
	dOut := make([]*mat.Matrix, seqLen)
	dOut[seqLen-1] = ls.Backward(grad)
	l.Backward(dOut)

	for _, p := range l.Params() {
		step := len(p.W.Data)/5 + 1
		for i := 0; i < len(p.W.Data); i += step {
			num := numericalGrad(loss, p.W.Data, i)
			if math.Abs(num-p.Grad.Data[i]) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestLSTMInputGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLSTM(2, 3, rng)
	seqLen := 3
	seq := make([]*mat.Matrix, seqLen)
	for s := range seq {
		seq[s] = mat.New(1, 2)
		for i := range seq[s].Data {
			seq[s].Data[i] = rng.NormFloat64()
		}
	}
	y := []int{0}
	ls := &LogSoftmax{}
	loss := func() float64 {
		l.Forward(seq)
		out := ls.Forward(l.FinalHidden())
		v, _ := NLLLoss(out, y)
		return v
	}
	l.Forward(seq)
	out := ls.Forward(l.FinalHidden())
	_, grad := NLLLoss(out, y)
	ZeroGrads(l.Params())
	dOut := make([]*mat.Matrix, seqLen)
	dOut[seqLen-1] = ls.Backward(grad)
	dxs := l.Backward(dOut)

	for s := 0; s < seqLen; s++ {
		for i := range seq[s].Data {
			num := numericalGrad(loss, seq[s].Data, i)
			if math.Abs(num-dxs[s].Data[i]) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("dX[%d][%d]: analytic %v numeric %v", s, i, dxs[s].Data[i], num)
			}
		}
	}
}

func TestConvGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv1D(2, 3, 3, 2, rng)
	seqLen := 7
	seq := make([]*mat.Matrix, seqLen)
	for s := range seq {
		seq[s] = mat.New(2, 2)
		for i := range seq[s].Data {
			seq[s].Data[i] = rng.NormFloat64()
		}
	}
	y := []int{0, 1}
	dense := NewDense(3, 2, rng)
	ls := &LogSoftmax{}

	loss := func() float64 {
		outs := c.Forward(seq)
		// Sum conv outputs over time, classify the pooled vector.
		pooled := mat.New(2, 3)
		for _, o := range outs {
			if err := pooled.Add(o); err != nil {
				panic(err)
			}
		}
		out := ls.Forward(dense.Forward(pooled))
		v, _ := NLLLoss(out, y)
		return v
	}

	outs := c.Forward(seq)
	pooled := mat.New(2, 3)
	for _, o := range outs {
		if err := pooled.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	out := ls.Forward(dense.Forward(pooled))
	_, grad := NLLLoss(out, y)
	ZeroGrads(c.Params())
	ZeroGrads(dense.Params())
	gPooled := dense.Backward(ls.Backward(grad))
	dOuts := make([]*mat.Matrix, len(outs))
	for i := range dOuts {
		dOuts[i] = gPooled
	}
	c.Backward(dOuts)

	for _, p := range c.Params() {
		for i := range p.W.Data {
			num := numericalGrad(loss, p.W.Data, i)
			if math.Abs(num-p.Grad.Data[i]) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v numeric %v", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestLogSoftmaxRowsNormalise(t *testing.T) {
	ls := &LogSoftmax{}
	x, _ := mat.FromRows([][]float64{{1, 2, 3}, {-5, 0, 5}})
	out := ls.Forward(x)
	for i := 0; i < out.Rows; i++ {
		var sum float64
		for _, v := range out.Row(i) {
			sum += math.Exp(v)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d probabilities sum to %v", i, sum)
		}
	}
}

func TestNLLLoss(t *testing.T) {
	lp, _ := mat.FromRows([][]float64{{math.Log(0.5), math.Log(0.5)}})
	loss, grad := NLLLoss(lp, []int{0})
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Errorf("loss = %v, want ln 2", loss)
	}
	if grad.At(0, 0) != -1 || grad.At(0, 1) != 0 {
		t.Errorf("grad = %v", grad)
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDropout(0.5, rng)
	x := mat.New(10, 100)
	for i := range x.Data {
		x.Data[i] = 1
	}
	evalOut := d.Forward(x, false)
	if !mat.Equal(evalOut, x, 0) {
		t.Error("dropout must be identity at eval time")
	}
	trainOut := d.Forward(x, true)
	zeros := 0
	var sum float64
	for _, v := range trainOut.Data {
		if v == 0 {
			zeros++
		}
		sum += v
	}
	if zeros < 300 || zeros > 700 {
		t.Errorf("dropout zeroed %d/1000", zeros)
	}
	// Inverted dropout keeps the expectation ≈ 1.
	if mean := sum / 1000; math.Abs(mean-1) > 0.15 {
		t.Errorf("dropout output mean %v, want ≈1", mean)
	}
}

func TestLeakyReLU(t *testing.T) {
	l := NewLeakyReLU(0.1)
	x, _ := mat.FromRows([][]float64{{-2, 3}})
	out := l.Forward(x)
	if out.At(0, 0) != -0.2 || out.At(0, 1) != 3 {
		t.Errorf("leaky relu = %v", out)
	}
	g, _ := mat.FromRows([][]float64{{1, 1}})
	dx := l.Backward(g)
	if dx.At(0, 0) != 0.1 || dx.At(0, 1) != 1 {
		t.Errorf("leaky relu grad = %v", dx)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool1D(2, 2)
	seq := []*mat.Matrix{}
	vals := []float64{1, 5, 3, 2}
	for _, v := range vals {
		m := mat.New(1, 1)
		m.Set(0, 0, v)
		seq = append(seq, m)
	}
	out := p.Forward(seq)
	if len(out) != 2 || out[0].At(0, 0) != 5 || out[1].At(0, 0) != 3 {
		t.Fatalf("pool out = %v", out)
	}
	g := []*mat.Matrix{mat.New(1, 1), mat.New(1, 1)}
	g[0].Set(0, 0, 1)
	g[1].Set(0, 0, 2)
	dx := p.Backward(g)
	want := []float64{0, 1, 2, 0}
	for i, w := range want {
		if dx[i].At(0, 0) != w {
			t.Errorf("pool grad[%d] = %v, want %v", i, dx[i].At(0, 0), w)
		}
	}
}

func TestCyclicalCosineLR(t *testing.T) {
	s := NewCyclicalCosineLR(0.001, 0.01, 10)
	if math.Abs(s.At(0)-0.01) > 1e-12 {
		t.Errorf("cycle start lr = %v, want max", s.At(0))
	}
	// Just before restart the rate is near min; at restart it jumps back.
	if s.At(9) > 0.0015 {
		t.Errorf("end of cycle lr = %v, want near min", s.At(9))
	}
	if math.Abs(s.At(10)-0.01) > 1e-12 {
		t.Errorf("restart lr = %v, want max", s.At(10))
	}
	// Monotone decrease within a cycle.
	for i := 1; i < 10; i++ {
		if s.At(i) > s.At(i-1) {
			t.Errorf("lr increased within cycle at %d", i)
		}
	}
}

func TestAdamConvergesQuadratic(t *testing.T) {
	// Minimise (w-3)² with Adam.
	p := newParam("w", 1, 1)
	p.W.Set(0, 0, -4)
	opt := NewAdam()
	for i := 0; i < 2000; i++ {
		w := p.W.At(0, 0)
		p.Grad.Set(0, 0, 2*(w-3))
		opt.Step([]*Param{p}, 0.05)
	}
	if math.Abs(p.W.At(0, 0)-3) > 0.01 {
		t.Errorf("Adam converged to %v, want 3", p.W.At(0, 0))
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", 1, 2)
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm %v", norm)
	}
	if math.Abs(mat.Norm2(p.Grad.Data)-1) > 1e-12 {
		t.Errorf("post-clip norm %v", mat.Norm2(p.Grad.Data))
	}
	// Norm below the cap must be untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad.Data[0] != 0.3 {
		t.Error("clip modified in-bounds gradient")
	}
}
