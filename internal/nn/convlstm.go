package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
)

// ConvLSTM is the architecture the paper's future-work section singles out
// (Shi et al., 2015): an LSTM whose input-to-state and state-to-state
// transforms are convolutions instead of dense products. Here the "spatial"
// axis is the sensor axis: at each timestep the 7 DCGM sensors form a 1-D
// grid, gates are computed by kernel-3 same-padded convolutions over that
// grid, and the hidden state keeps Maps feature maps per sensor position.
type ConvLSTM struct {
	Positions int // spatial length (sensors)
	InMaps    int // input feature maps per position
	Maps      int // hidden feature maps per position

	convX *Conv1D // InMaps → 4·Maps, over the padded sensor axis
	convH *Conv1D // Maps → 4·Maps

	// Per-step caches for BPTT.
	xs    [][]*mat.Matrix // padded spatial input per step
	hs    [][]*mat.Matrix // hidden maps per step (hs[0] zero state)
	cs    [][]*mat.Matrix
	gates [][]*mat.Matrix // post-activation gates per step, per position (B×4Maps)
	tanhC [][]*mat.Matrix
	// Per-step conv instances sharing parameters with convX/convH so each
	// keeps its own im2col cache for the backward pass.
	stepConvX []*Conv1D
	stepConvH []*Conv1D
}

// NewConvLSTM builds the layer for the given spatial length.
func NewConvLSTM(positions, inMaps, maps int, rng *rand.Rand) *ConvLSTM {
	l := &ConvLSTM{
		Positions: positions,
		InMaps:    inMaps,
		Maps:      maps,
		convX:     NewConv1D(inMaps, 4*maps, 3, 1, rng),
		convH:     NewConv1D(maps, 4*maps, 3, 1, rng),
	}
	// Forget-gate bias to 1, as for the dense LSTM.
	for j := maps; j < 2*maps; j++ {
		l.convX.B.W.Set(0, j, 1)
	}
	return l
}

// shareParams returns a Conv1D aliasing c's parameters but with private
// caches, so every timestep can run its own backward pass while gradients
// accumulate into the shared weights.
func shareParams(c *Conv1D) *Conv1D {
	cp := *c
	return &cp
}

// pad returns the spatial sequence with one zero matrix on each side
// (same-padding for kernel 3).
func pad(seq []*mat.Matrix, b, ch int) []*mat.Matrix {
	z1 := mat.New(b, ch)
	z2 := mat.New(b, ch)
	out := make([]*mat.Matrix, 0, len(seq)+2)
	out = append(out, z1)
	out = append(out, seq...)
	return append(out, z2)
}

// Forward consumes a batch sequence (T steps of B×Positions·InMaps laid out
// position-major) and returns the final hidden state flattened to
// B×Positions·Maps.
func (l *ConvLSTM) Forward(seq []*mat.Matrix) *mat.Matrix {
	t := len(seq)
	b := seq[0].Rows
	s := l.Positions
	m := l.Maps

	l.xs = make([][]*mat.Matrix, t)
	l.hs = make([][]*mat.Matrix, t+1)
	l.cs = make([][]*mat.Matrix, t+1)
	l.gates = make([][]*mat.Matrix, t)
	l.tanhC = make([][]*mat.Matrix, t)
	l.stepConvX = make([]*Conv1D, t)
	l.stepConvH = make([]*Conv1D, t)

	zeroMaps := func() []*mat.Matrix {
		out := make([]*mat.Matrix, s)
		for p := range out {
			out[p] = mat.New(b, m)
		}
		return out
	}
	l.hs[0] = zeroMaps()
	l.cs[0] = zeroMaps()

	for step := 0; step < t; step++ {
		// Unpack the flat input into the spatial layout.
		xsp := make([]*mat.Matrix, s)
		for p := 0; p < s; p++ {
			xm := mat.New(b, l.InMaps)
			for i := 0; i < b; i++ {
				for c := 0; c < l.InMaps; c++ {
					xm.Set(i, c, seq[step].At(i, p*l.InMaps+c))
				}
			}
			xsp[p] = xm
		}
		padX := pad(xsp, b, l.InMaps)
		padH := pad(l.hs[step], b, m)
		l.xs[step] = padX

		cx := shareParams(l.convX)
		ch := shareParams(l.convH)
		l.stepConvX[step] = cx
		l.stepConvH[step] = ch
		gx := cx.Forward(padX) // s positions of B×4m
		gh := ch.Forward(padH)

		hNew := make([]*mat.Matrix, s)
		cNew := make([]*mat.Matrix, s)
		gateS := make([]*mat.Matrix, s)
		tanhS := make([]*mat.Matrix, s)
		for p := 0; p < s; p++ {
			gates := mat.New(b, 4*m)
			hp := mat.New(b, m)
			cp := mat.New(b, m)
			tp := mat.New(b, m)
			cPrev := l.cs[step][p]
			for i := 0; i < b; i++ {
				gxr := gx[p].Row(i)
				ghr := gh[p].Row(i)
				gr := gates.Row(i)
				cpr := cPrev.Row(i)
				hr := hp.Row(i)
				cr := cp.Row(i)
				tr := tp.Row(i)
				for j := 0; j < m; j++ {
					ig := sigmoid(gxr[j] + ghr[j])
					fg := sigmoid(gxr[m+j] + ghr[m+j])
					gg := math.Tanh(gxr[2*m+j] + ghr[2*m+j])
					og := sigmoid(gxr[3*m+j] + ghr[3*m+j])
					gr[j], gr[m+j], gr[2*m+j], gr[3*m+j] = ig, fg, gg, og
					c := fg*cpr[j] + ig*gg
					cr[j] = c
					tc := math.Tanh(c)
					tr[j] = tc
					hr[j] = og * tc
				}
			}
			gateS[p] = gates
			tanhS[p] = tp
			hNew[p] = hp
			cNew[p] = cp
		}
		l.gates[step] = gateS
		l.tanhC[step] = tanhS
		l.hs[step+1] = hNew
		l.cs[step+1] = cNew
	}

	// Flatten the final hidden maps.
	out := mat.New(b, s*m)
	final := l.hs[t]
	for p := 0; p < s; p++ {
		for i := 0; i < b; i++ {
			copy(out.Row(i)[p*m:(p+1)*m], final[p].Row(i))
		}
	}
	return out
}

// Backward takes the gradient w.r.t. the flattened final hidden state and
// runs BPTT, accumulating the shared convolution gradients. Input gradients
// are not propagated further (the ConvLSTM is this model's first layer).
func (l *ConvLSTM) Backward(grad *mat.Matrix) {
	t := len(l.xs)
	b := grad.Rows
	s := l.Positions
	m := l.Maps

	dh := make([]*mat.Matrix, s)
	dc := make([]*mat.Matrix, s)
	for p := 0; p < s; p++ {
		dhp := mat.New(b, m)
		for i := 0; i < b; i++ {
			copy(dhp.Row(i), grad.Row(i)[p*m:(p+1)*m])
		}
		dh[p] = dhp
		dc[p] = mat.New(b, m)
	}

	for step := t - 1; step >= 0; step-- {
		dGates := make([]*mat.Matrix, s)
		dcPrev := make([]*mat.Matrix, s)
		for p := 0; p < s; p++ {
			dg := mat.New(b, 4*m)
			dcp := mat.New(b, m)
			gates := l.gates[step][p]
			th := l.tanhC[step][p]
			cPrev := l.cs[step][p]
			for i := 0; i < b; i++ {
				gr := gates.Row(i)
				tr := th.Row(i)
				dhr := dh[p].Row(i)
				dcr := dc[p].Row(i)
				cpr := cPrev.Row(i)
				dgr := dg.Row(i)
				dcpr := dcp.Row(i)
				for j := 0; j < m; j++ {
					ig, fg, gg, og := gr[j], gr[m+j], gr[2*m+j], gr[3*m+j]
					tc := tr[j]
					dcv := dcr[j] + dhr[j]*og*(1-tc*tc)
					dgr[j] = dcv * gg * ig * (1 - ig)
					dgr[m+j] = dcv * cpr[j] * fg * (1 - fg)
					dgr[2*m+j] = dcv * ig * (1 - gg*gg)
					dgr[3*m+j] = dhr[j] * tc * og * (1 - og)
					dcpr[j] = dcv * fg
				}
			}
			dGates[p] = dg
			dcPrev[p] = dcp
		}

		// Both convolutions saw the same pre-activation sum, so each gets
		// the full gate gradient.
		l.stepConvX[step].Backward(dGates)
		dPadH := l.stepConvH[step].Backward(dGates)

		// Recurrent hidden gradient: strip the padding positions.
		for p := 0; p < s; p++ {
			dh[p] = dPadH[p+1]
			dc[p] = dcPrev[p]
		}
	}
}

// Params returns the shared convolution parameters.
func (l *ConvLSTM) Params() []*Param {
	return append(l.convX.Params(), l.convH.Params()...)
}

// ConvLSTMClassifier is the future-work architecture end to end: ConvLSTM
// over the sensor grid, final hidden maps flattened into the paper's
// standard classification head.
type ConvLSTMClassifier struct {
	name string
	rnn  *ConvLSTM
	head *head
}

// NewConvLSTMClassifier builds the model for (seqLen × sensors) windows.
func NewConvLSTMClassifier(sensors, maps, seqLen, numClasses int, seed int64) (*ConvLSTMClassifier, error) {
	if sensors < 3 {
		return nil, fmt.Errorf("nn: ConvLSTM needs ≥3 sensor positions, got %d", sensors)
	}
	rng := rand.New(rand.NewSource(seed))
	m := &ConvLSTMClassifier{
		name: fmt.Sprintf("ConvLSTM (maps=%d)", maps),
		rnn:  NewConvLSTM(sensors, 1, maps, rng),
	}
	m.head = newHead(sensors*maps, seqLen, numClasses, rng)
	return m, nil
}

// Name identifies the model in tables.
func (m *ConvLSTMClassifier) Name() string { return m.name }

// Forward returns log-probabilities for the batch.
func (m *ConvLSTMClassifier) Forward(seq []*mat.Matrix, train bool) *mat.Matrix {
	final := m.rnn.Forward(seq)
	return m.head.forward(final, train)
}

// Backward propagates the loss gradient.
func (m *ConvLSTMClassifier) Backward(grad *mat.Matrix) {
	g := m.head.backward(grad)
	m.rnn.Backward(g)
}

// Params returns all trainables.
func (m *ConvLSTMClassifier) Params() []*Param {
	return append(m.rnn.Params(), m.head.params()...)
}
