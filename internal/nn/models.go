package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/mat"
)

// SequenceClassifier is the contract shared by the Section V architectures:
// a batch of sequences in, per-class log-probabilities out.
type SequenceClassifier interface {
	Forward(seq []*mat.Matrix, train bool) *mat.Matrix
	Backward(grad *mat.Matrix)
	Params() []*Param
	Name() string
}

// seqLeakyReLU applies LeakyReLU independently at every timestep.
type seqLeakyReLU struct {
	alpha float64
	steps []*LeakyReLU
}

func newSeqLeakyReLU(alpha float64) *seqLeakyReLU { return &seqLeakyReLU{alpha: alpha} }

func (s *seqLeakyReLU) Forward(seq []*mat.Matrix) []*mat.Matrix {
	s.steps = make([]*LeakyReLU, len(seq))
	outs := make([]*mat.Matrix, len(seq))
	for t, m := range seq {
		s.steps[t] = NewLeakyReLU(s.alpha)
		outs[t] = s.steps[t].Forward(m)
	}
	return outs
}

func (s *seqLeakyReLU) Backward(dOuts []*mat.Matrix) []*mat.Matrix {
	dxs := make([]*mat.Matrix, len(dOuts))
	for t, g := range dOuts {
		dxs[t] = s.steps[t].Backward(g)
	}
	return dxs
}

// seqDropout applies dropout with independent masks at every timestep,
// matching PyTorch's inter-layer LSTM dropout.
type seqDropout struct {
	p     float64
	rng   *rand.Rand
	steps []*Dropout
}

func newSeqDropout(p float64, rng *rand.Rand) *seqDropout { return &seqDropout{p: p, rng: rng} }

func (s *seqDropout) Forward(seq []*mat.Matrix, train bool) []*mat.Matrix {
	s.steps = make([]*Dropout, len(seq))
	outs := make([]*mat.Matrix, len(seq))
	for t, m := range seq {
		s.steps[t] = NewDropout(s.p, s.rng)
		outs[t] = s.steps[t].Forward(m, train)
	}
	return outs
}

func (s *seqDropout) Backward(dOuts []*mat.Matrix) []*mat.Matrix {
	dxs := make([]*mat.Matrix, len(dOuts))
	for t, g := range dOuts {
		dxs[t] = s.steps[t].Backward(g)
	}
	return dxs
}

// head is the paper's shared classification head: the concatenated final
// hidden states pass through a fully-connected layer projecting to the
// sequence length, dropout p=0.5, leaky ReLU, a second fully-connected
// layer to the class count, and log-softmax.
type head struct {
	fc1     *Dense
	drop    *Dropout
	act     *LeakyReLU
	fc2     *Dense
	logsoft *LogSoftmax
}

func newHead(in, seqLen, numClasses int, rng *rand.Rand) *head {
	return &head{
		fc1:     NewDense(in, seqLen, rng),
		drop:    NewDropout(0.5, rng),
		act:     NewLeakyReLU(0.01),
		fc2:     NewDense(seqLen, numClasses, rng),
		logsoft: &LogSoftmax{},
	}
}

func (h *head) forward(x *mat.Matrix, train bool) *mat.Matrix {
	z := h.fc1.Forward(x)
	z = h.drop.Forward(z, train)
	z = h.act.Forward(z)
	z = h.fc2.Forward(z)
	return h.logsoft.Forward(z)
}

func (h *head) backward(grad *mat.Matrix) *mat.Matrix {
	g := h.logsoft.Backward(grad)
	g = h.fc2.Backward(g)
	g = h.act.Backward(g)
	g = h.drop.Backward(g)
	return h.fc1.Backward(g)
}

func (h *head) params() []*Param {
	return append(h.fc1.Params(), h.fc2.Params()...)
}

// BiLSTMClassifier is the paper's LSTM baseline: a (optionally stacked)
// bidirectional LSTM followed by the shared head. With Layers=2 a dropout
// layer with p=0.5 sits between the stacked BiLSTMs, exactly as described.
type BiLSTMClassifier struct {
	name   string
	layers []*BiLSTM
	drops  []*seqDropout
	head   *head
}

// NewBiLSTMClassifier builds the architecture. layers must be 1 or 2 (the
// paper evaluates both).
func NewBiLSTMClassifier(inCh, hidden, seqLen, numClasses, layers int, seed int64) (*BiLSTMClassifier, error) {
	if layers < 1 || layers > 2 {
		return nil, fmt.Errorf("nn: BiLSTM layers must be 1 or 2, got %d", layers)
	}
	rng := rand.New(rand.NewSource(seed))
	m := &BiLSTMClassifier{
		name: fmt.Sprintf("LSTM (h=%d%s)", hidden, map[bool]string{true: ", 2-layer", false: ""}[layers == 2]),
	}
	in := inCh
	for l := 0; l < layers; l++ {
		m.layers = append(m.layers, NewBiLSTM(in, hidden, rng))
		in = 2 * hidden
		if l < layers-1 {
			m.drops = append(m.drops, newSeqDropout(0.5, rng))
		}
	}
	m.head = newHead(2*hidden, seqLen, numClasses, rng)
	return m, nil
}

// Name identifies the model in tables.
func (m *BiLSTMClassifier) Name() string { return m.name }

// Forward returns log-probabilities for the batch.
func (m *BiLSTMClassifier) Forward(seq []*mat.Matrix, train bool) *mat.Matrix {
	cur := seq
	for l := 0; l < len(m.layers)-1; l++ {
		cur = m.layers[l].ForwardSeq(cur)
		cur = m.drops[l].Forward(cur, train)
	}
	final := m.layers[len(m.layers)-1].Forward(cur)
	return m.head.forward(final, train)
}

// Backward propagates the loss gradient through the whole network.
func (m *BiLSTMClassifier) Backward(grad *mat.Matrix) {
	g := m.head.backward(grad)
	dSeq := m.layers[len(m.layers)-1].Backward(g)
	for l := len(m.layers) - 2; l >= 0; l-- {
		dSeq = m.drops[l].Backward(dSeq)
		dSeq = m.layers[l].BackwardSeq(dSeq)
	}
}

// Params returns all trainables.
func (m *BiLSTMClassifier) Params() []*Param {
	var ps []*Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return append(ps, m.head.params()...)
}

// CNNLSTMClassifier is the paper's CNN-LSTM: two 1-D convolutional layers
// sandwiching a max-pooling layer (each conv followed by a leaky ReLU),
// feeding the same bidirectional-LSTM architecture and head. The standard
// variant reduces the sequence ~8×; SmallKernel reduces it only ~2× (the
// paper's "smaller kernel and step size" model).
type CNNLSTMClassifier struct {
	name  string
	conv1 *Conv1D
	act1  *seqLeakyReLU
	pool  *MaxPool1D
	conv2 *Conv1D
	act2  *seqLeakyReLU
	rnn   *BiLSTM
	head  *head
}

// CNNLSTMOptions selects the variant.
type CNNLSTMOptions struct {
	Hidden      int
	SmallKernel bool
	Seed        int64
}

// NewCNNLSTMClassifier builds the architecture for the given input shape.
func NewCNNLSTMClassifier(inCh, seqLen, numClasses int, opt CNNLSTMOptions) (*CNNLSTMClassifier, error) {
	rng := rand.New(rand.NewSource(opt.Seed))
	kernel, stride := 5, 2
	label := fmt.Sprintf("CNN-LSTM (h=%d)", opt.Hidden)
	if opt.SmallKernel {
		kernel, stride = 3, 1
		label = fmt.Sprintf("CNN-LSTM (h=%d, small kernel)", opt.Hidden)
	}
	m := &CNNLSTMClassifier{
		name:  label,
		conv1: NewConv1D(inCh, 32, kernel, stride, rng),
		act1:  newSeqLeakyReLU(0.01),
		pool:  NewMaxPool1D(2, 2),
		conv2: NewConv1D(32, 64, kernel, stride, rng),
		act2:  newSeqLeakyReLU(0.01),
	}
	t1 := m.conv1.OutLen(seqLen)
	t2 := m.pool.OutLen(t1)
	t3 := m.conv2.OutLen(t2)
	if t3 < 1 {
		return nil, fmt.Errorf("nn: sequence length %d too short for the CNN front-end", seqLen)
	}
	m.rnn = NewBiLSTM(64, opt.Hidden, rng)
	// The head projects to the *input* sequence length, as the paper
	// specifies for all its models ("a feature size equal to the length of
	// the sequence"); using the conv-reduced length here would bottleneck
	// the classifier when sequences are short.
	m.head = newHead(2*opt.Hidden, seqLen, numClasses, rng)
	return m, nil
}

// Name identifies the model in tables.
func (m *CNNLSTMClassifier) Name() string { return m.name }

// ReducedLen reports the sequence length after the CNN front-end for an
// input of length t (the paper's ~8× / ~2× reduction).
func (m *CNNLSTMClassifier) ReducedLen(t int) int {
	return m.conv2.OutLen(m.pool.OutLen(m.conv1.OutLen(t)))
}

// Forward returns log-probabilities for the batch.
func (m *CNNLSTMClassifier) Forward(seq []*mat.Matrix, train bool) *mat.Matrix {
	z := m.conv1.Forward(seq)
	z = m.act1.Forward(z)
	z = m.pool.Forward(z)
	z = m.conv2.Forward(z)
	z = m.act2.Forward(z)
	final := m.rnn.Forward(z)
	return m.head.forward(final, train)
}

// Backward propagates the loss gradient through the whole network.
func (m *CNNLSTMClassifier) Backward(grad *mat.Matrix) {
	g := m.head.backward(grad)
	dSeq := m.rnn.Backward(g)
	dSeq = m.act2.Backward(dSeq)
	dSeq = m.conv2.Backward(dSeq)
	dSeq = m.pool.Backward(dSeq)
	dSeq = m.act1.Backward(dSeq)
	m.conv1.Backward(dSeq)
}

// Params returns all trainables.
func (m *CNNLSTMClassifier) Params() []*Param {
	ps := append(m.conv1.Params(), m.conv2.Params()...)
	ps = append(ps, m.rnn.Params()...)
	return append(ps, m.head.params()...)
}
