// Package nn is the sequence-model library behind the paper's Section V
// baselines: bidirectional LSTMs and CNN-LSTMs with the exact head the
// paper describes (concatenated final hidden states → fully-connected layer
// sized to the sequence length → dropout(0.5) → leaky ReLU →
// fully-connected → log-softmax), trained with Adam under a cyclical
// cosine-annealing learning-rate schedule with early stopping.
//
// Layers cache their forward activations and implement explicit backward
// passes; there is no autodiff. Batches of sequences are represented as a
// slice of T matrices, each B×C (batch × channels), so recurrent layers
// iterate over time with contiguous per-step matrices.
package nn

import (
	"math"
	"math/rand"

	"repro/internal/mat"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *mat.Matrix
	Grad *mat.Matrix
}

// newParam allocates a zeroed parameter and gradient.
func newParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: mat.New(rows, cols), Grad: mat.New(rows, cols)}
}

// glorotInit fills w with Glorot/Xavier-uniform values for the given fan-in
// and fan-out.
func glorotInit(w *mat.Matrix, fanIn, fanOut int, rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range w.Data {
		w.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// ZeroGrads clears the gradients of all params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = 0
		}
	}
}

// ClipGradNorm scales gradients so their global L2 norm is at most maxNorm,
// returning the pre-clip norm. Standard practice for stabilising BPTT.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return norm
}
