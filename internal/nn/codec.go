package nn

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/wire"
)

// codecVersion is the nn payload format; bump on incompatible layout changes
// so old readers fail descriptively instead of misloading.
const codecVersion = 1

// Model kind tags on the wire — also the artifact metadata vocabulary for
// sequence models.
const (
	KindBiLSTM   = "bilstm"
	KindCNNLSTM  = "cnnlstm"
	KindConvLSTM = "convlstm"
)

// ModelKind returns the serialisation kind for a sequence classifier, or an
// error for architectures the codec does not cover.
func ModelKind(m SequenceClassifier) (string, error) {
	switch m.(type) {
	case *BiLSTMClassifier:
		return KindBiLSTM, nil
	case *CNNLSTMClassifier:
		return KindCNNLSTM, nil
	case *ConvLSTMClassifier:
		return KindConvLSTM, nil
	default:
		return "", fmt.Errorf("nn: cannot serialise model type %T", m)
	}
}

// modelSpec is the constructor recipe recovered from a fitted model: enough
// to rebuild the architecture before copying the trained parameters in.
type modelSpec struct {
	kind       string
	in         int // input channels (sensors)
	hidden     int // LSTM hidden size / ConvLSTM feature maps
	seqLen     int
	numClasses int
	layers     int  // BiLSTM stack depth
	small      bool // CNN-LSTM small-kernel variant
}

func specOf(m SequenceClassifier) (modelSpec, error) {
	switch mm := m.(type) {
	case *BiLSTMClassifier:
		if len(mm.layers) == 0 {
			return modelSpec{}, errors.New("nn: empty BiLSTM classifier")
		}
		return modelSpec{
			kind:       KindBiLSTM,
			in:         mm.layers[0].Fwd.InSize,
			hidden:     mm.layers[0].Fwd.HiddenSize,
			seqLen:     mm.head.fc1.W.W.Cols,
			numClasses: mm.head.fc2.W.W.Cols,
			layers:     len(mm.layers),
		}, nil
	case *CNNLSTMClassifier:
		return modelSpec{
			kind:       KindCNNLSTM,
			in:         mm.conv1.InCh,
			hidden:     mm.rnn.Fwd.HiddenSize,
			seqLen:     mm.head.fc1.W.W.Cols,
			numClasses: mm.head.fc2.W.W.Cols,
			small:      mm.conv1.Kernel == 3,
		}, nil
	case *ConvLSTMClassifier:
		return modelSpec{
			kind:       KindConvLSTM,
			in:         mm.rnn.Positions,
			hidden:     mm.rnn.Maps,
			seqLen:     mm.head.fc1.W.W.Cols,
			numClasses: mm.head.fc2.W.W.Cols,
		}, nil
	default:
		return modelSpec{}, fmt.Errorf("nn: cannot serialise model type %T", m)
	}
}

// maxSpecDim caps every architecture dimension read from the wire. The
// challenge models are orders of magnitude smaller (7 sensors, 540 steps,
// 26 classes, hidden ≤ a few hundred); anything larger is corruption, and
// letting it through would ask the allocator for terabyte weight matrices —
// a fatal out-of-memory abort, not a recoverable error.
const maxSpecDim = 8192

func (s modelSpec) validate() error {
	for _, d := range []struct {
		name string
		v    int
	}{
		{"input channels", s.in},
		{"hidden size", s.hidden},
		{"sequence length", s.seqLen},
		{"class count", s.numClasses},
	} {
		if d.v < 1 || d.v > maxSpecDim {
			return fmt.Errorf("nn: corrupt architecture: %s %d out of range [1, %d]", d.name, d.v, maxSpecDim)
		}
	}
	return nil
}

// build reconstructs the architecture the spec describes with zero-valued
// training state; DecodeModel overwrites the freshly initialised weights.
func (s modelSpec) build() (SequenceClassifier, error) {
	switch s.kind {
	case KindBiLSTM:
		return NewBiLSTMClassifier(s.in, s.hidden, s.seqLen, s.numClasses, s.layers, 0)
	case KindCNNLSTM:
		return NewCNNLSTMClassifier(s.in, s.seqLen, s.numClasses, CNNLSTMOptions{Hidden: s.hidden, SmallKernel: s.small})
	case KindConvLSTM:
		return NewConvLSTMClassifier(s.in, s.hidden, s.seqLen, s.numClasses, 0)
	default:
		return nil, fmt.Errorf("nn: unknown model kind %q", s.kind)
	}
}

// EncodeModel serialises a sequence classifier: the architecture recipe
// followed by every trainable tensor (name, shape, values) in Params()
// order. Gradients and layer caches are training-time state and are not
// persisted; the decoded model's inference output (train=false) is
// bit-identical to the original.
func EncodeModel(w io.Writer, m SequenceClassifier) error {
	spec, err := specOf(m)
	if err != nil {
		return err
	}
	ww := wire.NewWriter(w)
	ww.U16(codecVersion)
	ww.String(spec.kind)
	ww.Int(spec.in)
	ww.Int(spec.hidden)
	ww.Int(spec.seqLen)
	ww.Int(spec.numClasses)
	ww.Int(spec.layers)
	ww.Bool(spec.small)
	params := m.Params()
	ww.Int(len(params))
	for _, p := range params {
		ww.String(p.Name)
		ww.Matrix(p.W)
	}
	return ww.Err()
}

// DecodeModel reads a sequence classifier previously written by EncodeModel,
// rebuilding the architecture and verifying that every stored tensor matches
// the rebuilt model's parameter names and shapes before copying values in.
func DecodeModel(r io.Reader) (SequenceClassifier, error) {
	rr := wire.NewReader(r)
	if v := rr.U16(); rr.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("nn: unsupported codec version %d (this build reads %d)", v, codecVersion)
	}
	spec := modelSpec{
		kind:       rr.String(),
		in:         rr.Int(),
		hidden:     rr.Int(),
		seqLen:     rr.Int(),
		numClasses: rr.Int(),
		layers:     rr.Int(),
		small:      rr.Bool(),
	}
	numParams := rr.Int()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	m, err := spec.build()
	if err != nil {
		return nil, err
	}
	params := m.Params()
	if numParams != len(params) {
		return nil, fmt.Errorf("nn: %s artifact has %d tensors, architecture has %d", spec.kind, numParams, len(params))
	}
	for i, p := range params {
		name := rr.String()
		w := rr.Matrix()
		if err := rr.Err(); err != nil {
			return nil, err
		}
		if name != p.Name || w.Rows != p.W.Rows || w.Cols != p.W.Cols {
			return nil, fmt.Errorf("nn: tensor %d is %s %dx%d, architecture expects %s %dx%d",
				i, name, w.Rows, w.Cols, p.Name, p.W.Rows, p.W.Cols)
		}
		copy(p.W.Data, w.Data)
	}
	return m, nil
}
