package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/wire"
)

// seqData is a tiny in-memory SeqSource for codec tests.
type seqData struct {
	n, t, c int
	data    []float64
}

func makeSeqData(n, t, c int, seed int64) *seqData {
	rng := rand.New(rand.NewSource(seed))
	d := &seqData{n: n, t: t, c: c, data: make([]float64, n*t*c)}
	for i := range d.data {
		d.data[i] = rng.NormFloat64()
	}
	return d
}

func (s *seqData) Dims() (n, t, c int)    { return s.n, s.t, s.c }
func (s *seqData) At(i, t, c int) float64 { return s.data[(i*s.t+t)*s.c+c] }
func (s *seqData) labels(k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	y := make([]int, s.n)
	for i := range y {
		y[i] = rng.Intn(k)
	}
	return y
}

// roundTrip fits the model briefly (one real training epoch so the weights
// leave their init state), encodes, decodes, and asserts PredictProbaBatch
// is bit-identical between the in-memory and decoded models.
func roundTrip(t *testing.T, m SequenceClassifier, x *seqData, numClasses int) {
	t.Helper()
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.Patience = 0
	cfg.BatchSize = 8
	cfg.ValFrac = 0.2
	if _, err := Train(m, x, x.labels(numClasses, 99), cfg); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := EncodeModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != m.Name() {
		t.Fatalf("decoded model %q, want %q", got.Name(), m.Name())
	}
	want, err := PredictProbaBatch(m, x, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	have, err := PredictProbaBatch(got, x, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if have.Rows != want.Rows || have.Cols != want.Cols {
		t.Fatalf("probs shape %dx%d, want %dx%d", have.Rows, have.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if have.Data[i] != want.Data[i] {
			t.Fatalf("prob[%d]: %v vs %v (not bit-identical)", i, have.Data[i], want.Data[i])
		}
	}
}

func TestBiLSTMCodecRoundTrip(t *testing.T) {
	x := makeSeqData(24, 6, 3, 41)
	m, err := NewBiLSTMClassifier(3, 4, 6, 3, 1, 41)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, m, x, 3)
}

func TestBiLSTM2CodecRoundTrip(t *testing.T) {
	x := makeSeqData(24, 6, 3, 42)
	m, err := NewBiLSTMClassifier(3, 4, 6, 3, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, m, x, 3)
}

func TestCNNLSTMCodecRoundTrip(t *testing.T) {
	x := makeSeqData(24, 40, 3, 43)
	m, err := NewCNNLSTMClassifier(3, 40, 3, CNNLSTMOptions{Hidden: 4, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, m, x, 3)
}

func TestCNNLSTMSmallKernelCodecRoundTrip(t *testing.T) {
	x := makeSeqData(24, 40, 3, 44)
	m, err := NewCNNLSTMClassifier(3, 40, 3, CNNLSTMOptions{Hidden: 4, SmallKernel: true, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, m, x, 3)
}

func TestConvLSTMCodecRoundTrip(t *testing.T) {
	x := makeSeqData(24, 6, 4, 45)
	m, err := NewConvLSTMClassifier(4, 2, 6, 3, 45)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, m, x, 3)
}

func TestModelKind(t *testing.T) {
	m, err := NewBiLSTMClassifier(3, 4, 6, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k, err := ModelKind(m); err != nil || k != KindBiLSTM {
		t.Fatalf("ModelKind = %q, %v", k, err)
	}
	if _, err := ModelKind(nil); err == nil {
		t.Fatal("nil model should be rejected")
	}
}

// TestDecodeModelRejectsInsaneDimensions pins the crafted-payload defence:
// absurd architecture dimensions must error before reaching the allocator,
// where they would abort the process with an unrecoverable out-of-memory.
func TestDecodeModelRejectsInsaneDimensions(t *testing.T) {
	craft := func(in, hidden, seqLen, numClasses, layers int64) []byte {
		var buf bytes.Buffer
		w := wire.NewWriter(&buf)
		w.U16(1) // codec version
		w.String(KindBiLSTM)
		w.I64(in)
		w.I64(hidden)
		w.I64(seqLen)
		w.I64(numClasses)
		w.I64(layers)
		w.Bool(false)
		w.Int(0) // no tensors
		if err := w.Err(); err != nil {
			t.Fatalf("crafting payload: %v", err)
		}
		return buf.Bytes()
	}
	cases := [][5]int64{
		{3, 1 << 40, 6, 3, 1}, // terabyte weight matrices
		{-3, 4, 6, 3, 1},      // negative make() sizes
		{3, 4, 0, 3, 1},
		{3, 4, 6, 1 << 50, 1},
	}
	for _, c := range cases {
		if _, err := DecodeModel(bytes.NewReader(craft(c[0], c[1], c[2], c[3], c[4]))); err == nil {
			t.Errorf("spec %v decoded successfully", c)
		}
	}
}

func TestDecodeModelTruncations(t *testing.T) {
	m, err := NewBiLSTMClassifier(3, 4, 6, 3, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 101 {
		if _, err := DecodeModel(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}
