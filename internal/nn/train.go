package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
)

// SeqSource abstracts a (trials × samples × sensors) dataset so the trainer
// does not depend on the dataset package (dataset.Tensor3 satisfies it).
type SeqSource interface {
	Dims() (n, t, c int)
	At(i, t, c int) float64
}

// MakeBatch assembles the given trials into the trainer's sequence layout:
// T matrices of B×C.
func MakeBatch(x SeqSource, ids []int) []*mat.Matrix {
	_, t, c := x.Dims()
	seq := make([]*mat.Matrix, t)
	for step := 0; step < t; step++ {
		m := mat.New(len(ids), c)
		for bi, i := range ids {
			row := m.Row(bi)
			for ch := 0; ch < c; ch++ {
				row[ch] = x.At(i, step, ch)
			}
		}
		seq[step] = m
	}
	return seq
}

// TrainConfig controls the Section V training protocol.
type TrainConfig struct {
	// Epochs is the maximum epoch count (the paper trains up to 1000).
	Epochs int
	// BatchSize for SGD.
	BatchSize int
	// LRMax / LRMin bound the cyclical cosine schedule.
	LRMax, LRMin float64
	// CycleEpochs is the schedule's cycle length in epochs.
	CycleEpochs int
	// Patience stops training when validation accuracy has not improved
	// for this many epochs (the paper uses 100). Zero disables it.
	Patience int
	// ValFrac is carved from the training set for validation.
	ValFrac float64
	// MaxGradNorm clips global gradient norm (0 = no clipping).
	MaxGradNorm float64
	// Seed drives shuffling and the validation split.
	Seed int64
	// Logf receives progress lines when non-nil.
	Logf func(format string, args ...any)
}

// DefaultTrainConfig returns the scaled defaults used by examples/tests.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:      20,
		BatchSize:   32,
		LRMax:       3e-3,
		LRMin:       1e-4,
		CycleEpochs: 8,
		Patience:    10,
		ValFrac:     0.15,
		MaxGradNorm: 5,
		Seed:        1,
	}
}

// EpochStats records one epoch of training history.
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	ValAcc    float64
	LR        float64
}

// TrainResult summarises a training run.
type TrainResult struct {
	BestValAcc float64
	BestEpoch  int
	History    []EpochStats
	// EarlyStopped reports whether patience ran out before Epochs.
	EarlyStopped bool
}

// Train fits the model with Adam under the cyclical cosine schedule,
// early-stopping on validation accuracy and restoring the best weights, as
// the paper's protocol reports best-validation-epoch numbers.
func Train(model SequenceClassifier, x SeqSource, y []int, cfg TrainConfig) (*TrainResult, error) {
	n, _, _ := x.Dims()
	if n != len(y) {
		return nil, fmt.Errorf("nn: %d trials vs %d labels", n, len(y))
	}
	if n < 4 {
		return nil, errors.New("nn: too few trials to train")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.ValFrac <= 0 || cfg.ValFrac >= 0.9 {
		cfg.ValFrac = 0.15
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	perm := rng.Perm(n)
	nVal := int(float64(n) * cfg.ValFrac)
	if nVal < 1 {
		nVal = 1
	}
	valIdx := perm[:nVal]
	trainIdx := perm[nVal:]

	stepsPerEpoch := (len(trainIdx) + cfg.BatchSize - 1) / cfg.BatchSize
	cycle := cfg.CycleEpochs
	if cycle <= 0 {
		cycle = cfg.Epochs
	}
	sched := NewCyclicalCosineLR(cfg.LRMin, cfg.LRMax, cycle*stepsPerEpoch)
	opt := NewAdam()
	params := model.Params()

	res := &TrainResult{BestValAcc: -1}
	var bestWeights []*mat.Matrix
	globalStep := 0
	sinceBest := 0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(trainIdx), func(a, b int) { trainIdx[a], trainIdx[b] = trainIdx[b], trainIdx[a] })
		var epochLoss float64
		var lr float64
		for start := 0; start < len(trainIdx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(trainIdx) {
				end = len(trainIdx)
			}
			ids := trainIdx[start:end]
			seq := MakeBatch(x, ids)
			labels := make([]int, len(ids))
			for k, i := range ids {
				labels[k] = y[i]
			}

			logProbs := model.Forward(seq, true)
			loss, grad := NLLLoss(logProbs, labels)
			epochLoss += loss * float64(len(ids))

			ZeroGrads(params)
			model.Backward(grad)
			if cfg.MaxGradNorm > 0 {
				ClipGradNorm(params, cfg.MaxGradNorm)
			}
			lr = sched.At(globalStep)
			opt.Step(params, lr)
			globalStep++
		}
		epochLoss /= float64(len(trainIdx))

		valAcc, err := Evaluate(model, x, y, valIdx, cfg.BatchSize)
		if err != nil {
			return nil, err
		}
		res.History = append(res.History, EpochStats{Epoch: epoch, TrainLoss: epochLoss, ValAcc: valAcc, LR: lr})
		if cfg.Logf != nil {
			cfg.Logf("epoch %3d  loss %.4f  val acc %.4f  lr %.5f", epoch, epochLoss, valAcc, lr)
		}

		if valAcc > res.BestValAcc {
			res.BestValAcc = valAcc
			res.BestEpoch = epoch
			sinceBest = 0
			bestWeights = snapshot(params)
		} else {
			sinceBest++
			if cfg.Patience > 0 && sinceBest >= cfg.Patience {
				res.EarlyStopped = true
				break
			}
		}
	}

	if bestWeights != nil {
		restore(params, bestWeights)
	}
	return res, nil
}

func snapshot(params []*Param) []*mat.Matrix {
	out := make([]*mat.Matrix, len(params))
	for i, p := range params {
		out[i] = p.W.Clone()
	}
	return out
}

func restore(params []*Param, weights []*mat.Matrix) {
	for i, p := range params {
		copy(p.W.Data, weights[i].Data)
	}
}

// Evaluate computes accuracy of the model on the given trial indices
// (all trials when idx is nil).
func Evaluate(model SequenceClassifier, x SeqSource, y []int, idx []int, batchSize int) (float64, error) {
	n, _, _ := x.Dims()
	if idx == nil {
		idx = make([]int, n)
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return 0, errors.New("nn: no trials to evaluate")
	}
	pred, err := Predict(model, x, idx, batchSize)
	if err != nil {
		return 0, err
	}
	correct := 0
	for k, i := range idx {
		if pred[k] == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(idx)), nil
}

// PredictProbaBatch returns per-class probabilities for the given trials
// (all trials when idx is nil), one row per trial. It is the sequence-model
// counterpart of the forest/xgb batched predict paths: trials are forwarded
// through the network a whole batch at a time — one Forward per batch rather
// than per trial — and the head's log-softmax output is exponentiated.
func PredictProbaBatch(model SequenceClassifier, x SeqSource, idx []int, batchSize int) (*mat.Matrix, error) {
	n, _, _ := x.Dims()
	if idx == nil {
		idx = make([]int, n)
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return nil, errors.New("nn: no trials to predict")
	}
	if batchSize <= 0 {
		batchSize = 32
	}
	var out *mat.Matrix
	for start := 0; start < len(idx); start += batchSize {
		end := start + batchSize
		if end > len(idx) {
			end = len(idx)
		}
		seq := MakeBatch(x, idx[start:end])
		logProbs := model.Forward(seq, false)
		if out == nil {
			out = mat.New(len(idx), logProbs.Cols)
		}
		for k := 0; k < end-start; k++ {
			src := logProbs.Row(k)
			dst := out.Row(start + k)
			for c, v := range src {
				dst[c] = math.Exp(v)
			}
		}
	}
	return out, nil
}

// Predict labels the given trials (all trials when idx is nil). Labels are
// the argmax of PredictProbaBatch's rows — exp is monotone, so this equals
// the argmax over the head's log-probabilities.
func Predict(model SequenceClassifier, x SeqSource, idx []int, batchSize int) ([]int, error) {
	n, _, _ := x.Dims()
	if idx == nil {
		idx = make([]int, n)
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return []int{}, nil
	}
	probs, err := PredictProbaBatch(model, x, idx, batchSize)
	if err != nil {
		return nil, err
	}
	out := make([]int, probs.Rows)
	for i := range out {
		out[i] = mat.ArgMax(probs.Row(i))
	}
	return out, nil
}
