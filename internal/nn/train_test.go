package nn

import (
	"math"
	"math/rand"
	"testing"
)

// synthSeqs builds an easy synthetic sequence-classification problem: class
// k has a sinusoid of frequency k+1 in channel 0 and noise elsewhere.
type synthSeqs struct {
	n, t, c int
	data    []float64
}

func (s *synthSeqs) Dims() (int, int, int)      { return s.n, s.t, s.c }
func (s *synthSeqs) At(i, t, c int) float64     { return s.data[(i*s.t+t)*s.c+c] }
func (s *synthSeqs) set(i, t, c int, v float64) { s.data[(i*s.t+t)*s.c+c] = v }

func makeSynth(n, tLen, cCh, k int, seed int64) (*synthSeqs, []int) {
	rng := rand.New(rand.NewSource(seed))
	s := &synthSeqs{n: n, t: tLen, c: cCh, data: make([]float64, n*tLen*cCh)}
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % k
		y[i] = cls
		phase := rng.Float64() * 2 * math.Pi
		for t := 0; t < tLen; t++ {
			s.set(i, t, 0, math.Sin(2*math.Pi*float64(cls+1)*float64(t)/float64(tLen)+phase)+0.1*rng.NormFloat64())
			for c := 1; c < cCh; c++ {
				s.set(i, t, c, 0.3*rng.NormFloat64())
			}
		}
	}
	return s, y
}

func TestMakeBatchLayout(t *testing.T) {
	s, _ := makeSynth(4, 5, 2, 2, 1)
	seq := MakeBatch(s, []int{2, 0})
	if len(seq) != 5 || seq[0].Rows != 2 || seq[0].Cols != 2 {
		t.Fatalf("batch layout %d steps %dx%d", len(seq), seq[0].Rows, seq[0].Cols)
	}
	if seq[3].At(0, 1) != s.At(2, 3, 1) {
		t.Error("batch content mismatch")
	}
}

func TestTrainBiLSTMLearnsSinusoids(t *testing.T) {
	s, y := makeSynth(120, 20, 2, 3, 2)
	model, err := NewBiLSTMClassifier(2, 16, 20, 3, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 30
	cfg.Patience = 30
	cfg.BatchSize = 16
	res, err := Train(model, s, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValAcc < 0.7 {
		t.Errorf("best val accuracy %v; history %v", res.BestValAcc, res.History)
	}
	// Full-set accuracy with restored best weights must also be high.
	acc, err := Evaluate(model, s, y, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Errorf("full-set accuracy %v after restore", acc)
	}
}

func TestTrainCNNLSTM(t *testing.T) {
	s, y := makeSynth(90, 32, 2, 3, 3)
	model, err := NewCNNLSTMClassifier(2, 32, 3, CNNLSTMOptions{Hidden: 12, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 25
	cfg.Patience = 25
	cfg.BatchSize = 16
	res, err := Train(model, s, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValAcc < 0.5 {
		t.Errorf("CNN-LSTM best val accuracy %v", res.BestValAcc)
	}
}

func TestCNNLSTMSequenceReduction(t *testing.T) {
	std, err := NewCNNLSTMClassifier(7, 540, 26, CNNLSTMOptions{Hidden: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewCNNLSTMClassifier(7, 540, 26, CNNLSTMOptions{Hidden: 8, SmallKernel: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rStd := std.ReducedLen(540)
	rSmall := small.ReducedLen(540)
	// The paper: the standard CNN front-end shortens the sequence ~8×, the
	// small-kernel variant keeps it longer.
	if ratio := 540.0 / float64(rStd); ratio < 6 || ratio > 10 {
		t.Errorf("standard reduction %vx (len %d), want ≈8x", ratio, rStd)
	}
	if rSmall <= rStd*2 {
		t.Errorf("small-kernel length %d should clearly exceed standard %d", rSmall, rStd)
	}
}

func TestBiLSTMStackedConstruction(t *testing.T) {
	m, err := NewBiLSTMClassifier(7, 8, 30, 26, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "LSTM (h=8, 2-layer)" {
		t.Errorf("name = %q", m.Name())
	}
	// 2 BiLSTMs (6 params each) + head (4 params).
	if got := len(m.Params()); got != 16 {
		t.Errorf("param count %d, want 16", got)
	}
	if _, err := NewBiLSTMClassifier(7, 8, 30, 26, 3, 1); err == nil {
		t.Error("3 layers should be rejected")
	}
	if _, err := NewBiLSTMClassifier(7, 8, 30, 26, 0, 1); err == nil {
		t.Error("0 layers should be rejected")
	}
}

func TestStackedBiLSTMTrains(t *testing.T) {
	s, y := makeSynth(80, 16, 2, 2, 5)
	model, err := NewBiLSTMClassifier(2, 8, 16, 2, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 15
	cfg.Patience = 15
	cfg.BatchSize = 16
	res, err := Train(model, s, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValAcc < 0.5 {
		t.Errorf("stacked best val acc %v", res.BestValAcc)
	}
}

func TestTrainEarlyStopping(t *testing.T) {
	s, y := makeSynth(60, 10, 2, 2, 9)
	model, err := NewBiLSTMClassifier(2, 4, 10, 2, 1, 17)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 200
	cfg.Patience = 3
	cfg.BatchSize = 16
	res, err := Train(model, s, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStopped && len(res.History) == 200 {
		t.Error("expected early stopping well before 200 epochs")
	}
	if len(res.History) > res.BestEpoch+cfg.Patience+1 {
		t.Errorf("trained %d epochs, best at %d, patience %d", len(res.History), res.BestEpoch, cfg.Patience)
	}
}

func TestTrainErrors(t *testing.T) {
	s, y := makeSynth(10, 8, 2, 2, 21)
	model, err := NewBiLSTMClassifier(2, 4, 8, 2, 1, 19)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(model, s, y[:5], DefaultTrainConfig()); err == nil {
		t.Error("label mismatch should fail")
	}
	tiny := &synthSeqs{n: 2, t: 4, c: 2, data: make([]float64, 16)}
	if _, err := Train(model, tiny, []int{0, 1}, DefaultTrainConfig()); err == nil {
		t.Error("too-few trials should fail")
	}
}

func TestPredictMatchesEvaluate(t *testing.T) {
	s, y := makeSynth(40, 12, 2, 2, 23)
	model, err := NewBiLSTMClassifier(2, 6, 12, 2, 1, 29)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	cfg.BatchSize = 8
	if _, err := Train(model, s, y, cfg); err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(model, s, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	acc, _ := Evaluate(model, s, y, nil, 8)
	if math.Abs(acc-float64(correct)/float64(len(y))) > 1e-12 {
		t.Errorf("Predict and Evaluate disagree: %v vs %v", float64(correct)/float64(len(y)), acc)
	}
}

func TestTrainDeterminism(t *testing.T) {
	s, y := makeSynth(40, 10, 2, 2, 31)
	run := func() float64 {
		model, err := NewBiLSTMClassifier(2, 4, 10, 2, 1, 37)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultTrainConfig()
		cfg.Epochs = 4
		cfg.BatchSize = 8
		res, err := Train(model, s, y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.BestValAcc
	}
	if run() != run() {
		t.Error("training is not deterministic for a fixed seed")
	}
}

// TestPredictProbaBatchMatchesPredict checks the batched probability path
// agrees with Predict's argmax labels and yields normalised rows, across
// batch sizes (including one that does not divide the trial count).
func TestPredictProbaBatchMatchesPredict(t *testing.T) {
	s, _ := makeSynth(30, 12, 2, 3, 9)
	model, err := NewBiLSTMClassifier(2, 8, 12, 3, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := Predict(model, s, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{7, 30} {
		probs, err := PredictProbaBatch(model, s, nil, bs)
		if err != nil {
			t.Fatal(err)
		}
		if probs.Rows != 30 || probs.Cols != 3 {
			t.Fatalf("probs shape %dx%d", probs.Rows, probs.Cols)
		}
		for i := 0; i < probs.Rows; i++ {
			row := probs.Row(i)
			var sum float64
			for _, v := range row {
				if v < 0 {
					t.Fatalf("row %d has negative probability %v", i, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("row %d sums to %v", i, sum)
			}
		}
	}
	// Dropout is inactive at inference, so argmax must match Predict.
	probs, err := PredictProbaBatch(model, s, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range labels {
		got, best := 0, probs.At(i, 0)
		for c := 1; c < probs.Cols; c++ {
			if probs.At(i, c) > best {
				got, best = c, probs.At(i, c)
			}
		}
		if got != want {
			t.Fatalf("trial %d: batched argmax %d vs Predict %d", i, got, want)
		}
	}
	if _, err := PredictProbaBatch(model, s, []int{}, 8); err == nil {
		t.Error("empty index set should fail")
	}
}
