package server

import (
	"embed"
	"net/http"
)

// dashboardFS embeds the operator dashboard: one self-contained HTML file —
// no build toolchain, no external assets — so the serving binary carries its
// own UI. The page drives itself off the same public API it documents:
// GET /v1/events for the live feed, plus short polls of /v1/jobs, /v1/drift,
// /v1/trace and /healthz.
//
//go:embed static/index.html
var dashboardFS embed.FS

// handleDashboard serves GET / (exact-path only; the {$} route pattern keeps
// every other unmatched path a 404 rather than a dashboard copy).
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	page, err := dashboardFS.ReadFile("static/index.html")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "dashboard not embedded")
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache")
	w.Write(page)
}
