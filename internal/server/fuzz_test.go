package server

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/wire"
)

// FuzzParseIngestLine fuzzes the NDJSON line parser with hostile input:
// malformed JSON, JSON's unparseable NaN/Inf spellings, out-of-range
// numbers, wrong field types, deep nesting and binary garbage. The
// contract: never panic, never accept a sample without a valid job ID and
// non-empty values, and report blank-vs-error consistently.
func FuzzParseIngestLine(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"job":1,"values":[1,2,3]}`,
		`{"job":-4,"values":[1]}`,
		`{"job":null,"values":[1]}`,
		`{"job":1,"values":[]}`,
		`{"job":1,"values":[NaN]}`,
		`{"job":1,"values":[Infinity,-Infinity]}`,
		`{"job":1,"values":[1e999]}`,
		`{"job":1,"values":[1e308,-1e308]}`,
		`{"job":18446744073709551616,"values":[1]}`,
		`{"job":"7","values":[1]}`,
		`{"job":1,"values":"nope"}`,
		`{"job":1,"values":[{"a":1}]}`,
		`[1,2,3]`,
		`"just a string"`,
		`{"job":1,"values":[1,2,3]`,
		"\x00\x01\x02\xff",
		strings.Repeat(`{"job":1,`, 1000),
		`{"values":[0.1,0.2],"job":3,"extra":{"nested":[1,[2,[3]]]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		trimmed := bytes.TrimSpace(raw)
		sm, errp, ok := parseIngestLine(1, trimmed)
		switch {
		case ok:
			if errp != nil {
				t.Fatalf("accepted line also reported an error: %v", errp)
			}
			if sm.job < 0 {
				t.Fatalf("accepted negative job %d", sm.job)
			}
			if len(sm.values) == 0 {
				t.Fatal("accepted a sample with no values")
			}
			// encoding/json cannot produce NaN/Inf — pin that assumption,
			// since the fleet's sanity gate is the only other line of
			// defence before the covariance sums.
			for _, v := range sm.values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("parser let a non-finite value through: %v", v)
				}
			}
		case len(trimmed) == 0:
			if errp != nil {
				t.Fatalf("blank line reported an error: %v", errp)
			}
		default:
			if errp == nil {
				t.Fatal("rejected line carries no error")
			}
			if errp.Line != 1 || errp.Error == "" {
				t.Fatalf("malformed line error: %+v", errp)
			}
		}
	})
}

// FuzzParseIngestLineFast is the differential contract of the
// zero-allocation scanner: on any input it must never panic, and whenever
// it accepts a line, encoding/json (parseIngestLine) must also accept it
// with the same job and bit-identical values — the fast path may only ever
// decline and fall back, never disagree.
func FuzzParseIngestLineFast(f *testing.F) {
	seeds := []string{
		`{"job":1,"values":[1,2,3]}`,
		`{"job":0,"values":[0.5]}`,
		`{"job":17,"values":[-1.25e-3,2E+4,0.0]}`,
		`{"job":1, "values":[1]}`,
		`{"job":01,"values":[1]}`,
		`{"job":-1,"values":[1]}`,
		`{"job":1,"values":[01]}`,
		`{"job":1,"values":[1.]}`,
		`{"job":1,"values":[.5]}`,
		`{"job":1,"values":[+5]}`,
		`{"job":1,"values":[0x1p3]}`,
		`{"job":1,"values":[1e999]}`,
		`{"job":1,"values":[5e-324,-0.0,1e308]}`,
		`{"job":999999999999999999,"values":[1]}`,
		`{"job":9999999999999999999,"values":[1]}`,
		`{"job":1,"values":[]}`,
		`{"job":1,"values":[1],"x":2}`,
		`{"values":[1],"job":1}`,
		`{"job":1,"values":[1]}{"job":2,"values":[2]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		trimmed := bytes.TrimSpace(raw)
		if len(trimmed) == 0 {
			return
		}
		sm, _, ok := parseIngestLineFast(1, trimmed, nil)
		if !ok {
			return
		}
		want, errp, wok := parseIngestLine(1, trimmed)
		if !wok {
			t.Fatalf("fast path accepted %q, stdlib rejected it: %v", trimmed, errp)
		}
		if sm.job != want.job {
			t.Fatalf("%q: fast job %d, stdlib job %d", trimmed, sm.job, want.job)
		}
		if len(sm.values) != len(want.values) {
			t.Fatalf("%q: fast %d values, stdlib %d", trimmed, len(sm.values), len(want.values))
		}
		for i := range sm.values {
			if math.Float64bits(sm.values[i]) != math.Float64bits(want.values[i]) {
				t.Fatalf("%q value %d: fast %v, stdlib %v", trimmed, i, sm.values[i], want.values[i])
			}
		}
	})
}

// FuzzBinaryIngestFrame fuzzes the binary framing end to end over a real
// handler: arbitrary bodies — truncations, oversized or lying length
// prefixes, zero-length frames, float garbage — must produce a well-formed
// 200/400/413, never a panic, and never a sample the sanity gates would
// reject (non-finite values die at the fleet, misframed records die at the
// decoder).
func FuzzBinaryIngestFrame(f *testing.F) {
	valid := wire.AppendIngestRecord(nil, 1, []float64{1, 2, 3})
	valid = wire.AppendIngestRecord(valid, 2, []float64{4, 5, 6})
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{1, 0, 0})
	f.Add(wire.AppendIngestRecord(nil, -9, nil))
	f.Add(append(wire.AppendIngestRecord(nil, 3, []float64{math.Inf(1), math.NaN(), -0.0}), 0xde, 0xad))

	scaler, model := fixture(f)
	m, err := fleet.New(fleet.Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		f.Fatal(err)
	}
	s, err := New(Config{Monitor: m, TickEvery: time.Hour, MaxBodyBytes: 1 << 20})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/ingest", bytes.NewReader(body))
		req.Header.Set("Content-Type", wire.IngestContentType)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		switch rec.Code {
		case 200, 400, 413:
		default:
			t.Fatalf("unexpected status %d", rec.Code)
		}
	})
}

// FuzzIngestHTTP fuzzes the whole ingest path over a real handler: any
// body — including oversized lines and batches mixing valid and hostile
// samples — must produce a well-formed HTTP response, never a panic, and
// never poison the valid samples' jobs.
func FuzzIngestHTTP(f *testing.F) {
	f.Add([]byte(`{"job":1,"values":[1,2,3]}` + "\n" + `{"job":2,"values":[4,5,6]}`))
	f.Add([]byte(`{"job":1,"values":[1e308,2,3]}`))
	f.Add([]byte("{\"job\":1,\"values\":[1,2,3]}\n\xde\xad\xbe\xef\n{\"job\":2,\"values\":[4,5,6]}"))
	f.Add(bytes.Repeat([]byte("x"), 4096))
	f.Add([]byte(`{"job":1,"values":[` + strings.Repeat("1,", 5000) + `1]}`))

	scaler, model := fixture(f)
	m, err := fleet.New(fleet.Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		f.Fatal(err)
	}
	s, err := New(Config{Monitor: m, TickEvery: time.Hour, MaxBodyBytes: 1 << 20})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/ingest", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		switch rec.Code {
		case 200, 400, 413:
		default:
			t.Fatalf("unexpected status %d", rec.Code)
		}
	})
}
