package server

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

// FuzzParseIngestLine fuzzes the NDJSON line parser with hostile input:
// malformed JSON, JSON's unparseable NaN/Inf spellings, out-of-range
// numbers, wrong field types, deep nesting and binary garbage. The
// contract: never panic, never accept a sample without a valid job ID and
// non-empty values, and report blank-vs-error consistently.
func FuzzParseIngestLine(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"job":1,"values":[1,2,3]}`,
		`{"job":-4,"values":[1]}`,
		`{"job":null,"values":[1]}`,
		`{"job":1,"values":[]}`,
		`{"job":1,"values":[NaN]}`,
		`{"job":1,"values":[Infinity,-Infinity]}`,
		`{"job":1,"values":[1e999]}`,
		`{"job":1,"values":[1e308,-1e308]}`,
		`{"job":18446744073709551616,"values":[1]}`,
		`{"job":"7","values":[1]}`,
		`{"job":1,"values":"nope"}`,
		`{"job":1,"values":[{"a":1}]}`,
		`[1,2,3]`,
		`"just a string"`,
		`{"job":1,"values":[1,2,3]`,
		"\x00\x01\x02\xff",
		strings.Repeat(`{"job":1,`, 1000),
		`{"values":[0.1,0.2],"job":3,"extra":{"nested":[1,[2,[3]]]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		trimmed := bytes.TrimSpace(raw)
		sm, errp, ok := parseIngestLine(1, trimmed)
		switch {
		case ok:
			if errp != nil {
				t.Fatalf("accepted line also reported an error: %v", errp)
			}
			if sm.job < 0 {
				t.Fatalf("accepted negative job %d", sm.job)
			}
			if len(sm.values) == 0 {
				t.Fatal("accepted a sample with no values")
			}
			// encoding/json cannot produce NaN/Inf — pin that assumption,
			// since the fleet's sanity gate is the only other line of
			// defence before the covariance sums.
			for _, v := range sm.values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("parser let a non-finite value through: %v", v)
				}
			}
		case len(trimmed) == 0:
			if errp != nil {
				t.Fatalf("blank line reported an error: %v", errp)
			}
		default:
			if errp == nil {
				t.Fatal("rejected line carries no error")
			}
			if errp.Line != 1 || errp.Error == "" {
				t.Fatalf("malformed line error: %+v", errp)
			}
		}
	})
}

// FuzzIngestHTTP fuzzes the whole ingest path over a real handler: any
// body — including oversized lines and batches mixing valid and hostile
// samples — must produce a well-formed HTTP response, never a panic, and
// never poison the valid samples' jobs.
func FuzzIngestHTTP(f *testing.F) {
	f.Add([]byte(`{"job":1,"values":[1,2,3]}` + "\n" + `{"job":2,"values":[4,5,6]}`))
	f.Add([]byte(`{"job":1,"values":[1e308,2,3]}`))
	f.Add([]byte("{\"job\":1,\"values\":[1,2,3]}\n\xde\xad\xbe\xef\n{\"job\":2,\"values\":[4,5,6]}"))
	f.Add(bytes.Repeat([]byte("x"), 4096))
	f.Add([]byte(`{"job":1,"values":[` + strings.Repeat("1,", 5000) + `1]}`))

	scaler, model := fixture(f)
	m, err := fleet.New(fleet.Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		f.Fatal(err)
	}
	s, err := New(Config{Monitor: m, TickEvery: time.Hour, MaxBodyBytes: 1 << 20})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/ingest", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		switch rec.Code {
		case 200, 400, 413:
		default:
			t.Fatalf("unexpected status %d", rec.Code)
		}
	})
}
