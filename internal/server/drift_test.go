package server

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/drift"
	"repro/internal/fleet"
	"repro/internal/mat"
)

// driftCalibration fits a calibration matched to the server test fixture.
func driftCalibration(t *testing.T, model interface {
	PredictProbaBatch(x *mat.Matrix) (*mat.Matrix, error)
}) *drift.Calibration {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	trainFeats := mat.New(400, 6)
	for i := range trainFeats.Data {
		trainFeats.Data[i] = rng.NormFloat64()
	}
	heldOut := mat.New(200, 6)
	for i := range heldOut.Data {
		heldOut.Data[i] = rng.NormFloat64()
	}
	probs, err := model.PredictProbaBatch(heldOut)
	if err != nil {
		t.Fatal(err)
	}
	ref := mat.New(4000, testSensors)
	for i := range ref.Data {
		ref.Data[i] = rng.NormFloat64()*2 + 4
	}
	cal, err := drift.Fit(drift.FitInput{
		Probs: probs, TrainFeatures: trainFeats, HeldOutFeatures: heldOut, RawSamples: ref,
	}, drift.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

// newDriftServer is newTestServer over a drift-enabled monitor.
func newDriftServer(t *testing.T) (*Server, *fleet.Monitor, *httptest.Server) {
	t.Helper()
	scaler, model := fixture(t)
	m, err := fleet.New(fleet.Config{Window: testWindow, Sensors: testSensors,
		Scaler: scaler, Model: model, Drift: driftCalibration(t, model)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Monitor: m, TickEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, m, ts
}

// TestDriftEndpointAndPredictionFields drives a drift-enabled server and
// checks the whole read surface: /v1/drift reports PSI state, predictions
// carry the open-set block, the snapshot carries the unknown verdict, and
// /metrics exports the new series.
func TestDriftEndpointAndPredictionFields(t *testing.T) {
	s, _, ts := newDriftServer(t)

	var body strings.Builder
	for _, sm := range jobSamples(3, testWindow+1) {
		body.WriteString(sampleLine(3, sm) + "\n")
	}
	resp, ir := postNDJSON(t, ts.URL, body.String())
	if resp.StatusCode != http.StatusOK || ir.Accepted != testWindow+1 {
		t.Fatalf("ingest: status %d, accepted %d", resp.StatusCode, ir.Accepted)
	}
	if err := s.runTick(0); err != nil {
		t.Fatal(err)
	}

	// Prediction carries the open-set fields.
	var pr struct {
		Probability float64   `json:"probability"`
		Confidence  *float64  `json:"confidence"`
		Margin      *float64  `json:"margin"`
		Energy      *float64  `json:"energy"`
		Unknown     *bool     `json:"unknown"`
		Probs       []float64 `json:"probs"`
	}
	getJSON(t, ts.URL+"/v1/jobs/3/prediction", &pr)
	if pr.Confidence == nil || pr.Margin == nil || pr.Energy == nil || pr.Unknown == nil {
		t.Fatalf("open-set fields missing from prediction: %+v", pr)
	}
	if *pr.Confidence != pr.Probability {
		t.Fatalf("confidence %v != probability %v", *pr.Confidence, pr.Probability)
	}
	sc := drift.ScoreProbs(pr.Probs, drift.DefaultTemperature)
	if *pr.Margin != sc.Margin || *pr.Energy != sc.Energy {
		t.Fatalf("served scores (%v, %v) disagree with re-scored (%v, %v)",
			*pr.Margin, *pr.Energy, sc.Margin, sc.Energy)
	}

	// Snapshot rows carry the unknown verdict.
	var snap struct {
		Jobs []struct {
			Job     int   `json:"job"`
			Unknown *bool `json:"unknown"`
		} `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &snap)
	if len(snap.Jobs) != 1 || snap.Jobs[0].Unknown == nil {
		t.Fatalf("snapshot lacks the unknown verdict: %+v", snap)
	}

	// /v1/drift reports the accumulated state.
	var dr driftResponse
	getJSON(t, ts.URL+"/v1/drift", &dr)
	if !dr.Enabled {
		t.Fatal("/v1/drift reports disabled on a drift-enabled fleet")
	}
	if dr.Samples != uint64(testWindow+1) {
		t.Fatalf("/v1/drift binned %d samples, want %d", dr.Samples, testWindow+1)
	}
	if len(dr.SensorPSI) != testSensors {
		t.Fatalf("/v1/drift PSI over %d sensors, want %d", len(dr.SensorPSI), testSensors)
	}

	// /metrics exports the new series.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"\nwcc_unknown_total ", "\nwcc_drift_score ", `wcc_drift_sensor_psi{sensor="0"}`} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics lacks %q", want)
		}
	}
}

// TestDriftEndpointDisabled pins the disabled shape: enabled=false, no PSI
// series in /metrics, no open-set fields on predictions.
func TestDriftEndpointDisabled(t *testing.T) {
	s, _, ts := newTestServer(t, nil)

	var body strings.Builder
	for _, sm := range jobSamples(5, testWindow) {
		body.WriteString(sampleLine(5, sm) + "\n")
	}
	postNDJSON(t, ts.URL, body.String())
	if err := s.runTick(0); err != nil {
		t.Fatal(err)
	}

	var dr driftResponse
	getJSON(t, ts.URL+"/v1/drift", &dr)
	if dr.Enabled || dr.Samples != 0 || dr.SensorPSI != nil {
		t.Fatalf("disabled fleet reports drift state: %+v", dr)
	}
	var pr struct {
		Confidence *float64 `json:"confidence"`
		Unknown    *bool    `json:"unknown"`
	}
	getJSON(t, ts.URL+"/v1/jobs/5/prediction", &pr)
	if pr.Confidence != nil || pr.Unknown != nil {
		t.Fatal("open-set fields present with drift disabled")
	}
	// wcc_unknown_total still scrapes (as zero) so dashboards never 404.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wcc_unknown_total 0") {
		t.Fatal("/metrics lacks wcc_unknown_total on a drift-disabled fleet")
	}
	if strings.Contains(sb.String(), "wcc_drift_sensor_psi") {
		t.Fatal("/metrics exports PSI series with drift disabled")
	}
}

// getJSON fetches a URL and decodes its JSON body.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
