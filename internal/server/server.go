// Package server exposes a fleet over HTTP — the network boundary of the
// paper's deployment scenario (§VI): collectors on other machines feed
// telemetry in, operators and dashboards read classifications out, and the
// serving process keeps hot-swapping refreshed model artifacts underneath
// without dropping either side. The fleet behind the API is anything
// implementing the Monitor contract: a single fleet.Monitor, or the
// sharded shard.Core, which the serving layer recognises and drives with
// one independent tick loop per shard plus shard-labelled /metrics.
//
// docs/API.md is the complete request/response reference for this API.
// The surface is deliberately small:
//
//	POST   /v1/ingest               batch ingest in either framing,
//	                                negotiated by Content-Type: NDJSON
//	                                (default), one sample per line:
//	                                {"job":17,"values":[v0,...,v6]}
//	                                or length-prefixed binary records
//	                                (Content-Type: application/x-wcc-ingest,
//	                                layout in internal/wire). Per-line /
//	                                per-record error accounting; a malformed
//	                                line never poisons the batch's valid
//	                                samples. 429 + Retry-After when the
//	                                bounded ingest queue is full.
//	GET    /v1/jobs                 fleet-wide snapshot (per-job state and
//	                                latest classification)
//	GET    /v1/jobs/{id}/prediction latest full prediction for one job
//	                                (with open-set confidence/unknown fields
//	                                when the fleet carries a drift
//	                                calibration)
//	DELETE /v1/jobs/{id}            end a job, freeing its registry slot
//	GET    /v1/drift                open-set and input-drift state: unknown
//	                                counts and per-sensor PSI against the
//	                                training reference
//	GET    /v1/adapt                continual-learning flywheel status:
//	                                lifecycle phase, rejected-window buffer,
//	                                candidate families, shadow-scoring stats
//	GET    /v1/adapt/families       clustered rejected-window families as a
//	                                portable JSON bundle (wcctrain -families)
//	POST   /v1/adapt/build          force a cluster+train pass now instead of
//	                                waiting for the background cadence
//	POST   /v1/adapt/promote        promote the shadow candidate regardless
//	                                of the quality gate
//	POST   /v1/adapt/abort          discard the candidate and rebuffer
//	GET    /v1/events               push plane: Server-Sent Events stream of
//	                                prediction-change, unknown-verdict,
//	                                drift-band, model-swap and shard-health
//	                                events; ?type= and ?job= filters
//	GET    /v1/trace                per-stage serving latency: histogram
//	                                summaries plus sampled recent spans
//	GET    /healthz                 liveness plus window shape
//	GET    /metrics                 Prometheus-style text metrics
//	GET    /                        embedded live operator dashboard
//
// Ingest is decoupled from request handling by a bounded queue drained by a
// fixed worker pool: a handler parses its batch, enqueues it without
// blocking, and waits for the workers' per-line results. When the queue is
// full the server answers 429 with a Retry-After header instead of letting
// requests pile up — backpressure is explicit and visible to clients. A
// background goroutine runs the monitor's batched inference ticks on a
// fixed cadence, and Close drains everything in order: queued batches are
// ingested, loops stop, and one final tick flushes every pending window so
// the tail of a drained stream still produces predictions.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/drift"
	"repro/internal/events"
	"repro/internal/fleet"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Monitor is the fleet contract the serving layer drives: concurrent
// sample ingest, batched inference ticks, prediction and snapshot reads,
// job lifecycle, zero-downtime model swaps, and the counters /metrics
// exports. *fleet.Monitor (one registry, one tick loop) and *shard.Core
// (N monitor shards ticking independently) both implement it.
type Monitor interface {
	Ingest(jobID int, sample []float64) error
	Tick() (fleet.TickStats, error)
	SwapClassifier(model stream.Classifier) error
	SwapClassifierDrift(model stream.Classifier, cal *drift.Calibration) error
	Prediction(jobID int) (*stream.Prediction, bool)
	EndJob(jobID int) (*stream.Prediction, bool)
	EvictIdle(maxIdle time.Duration) int
	Snapshot() []fleet.JobInfo
	Window() int
	Sensors() int
	NumJobs() int
	SamplesIngested() uint64
	Classifications() uint64
	Ticks() uint64
	Swaps() uint64
	Evictions() uint64
	DriftStats() fleet.DriftStats
	SetEventSink(s events.Sink)
	SetTraceRecorder(r *trace.Recorder)
}

// Sharded is the optional extension a sharded fleet offers. When the
// configured Monitor implements it, the serving layer runs one tick loop
// per shard on its own goroutine — no whole-fleet barrier — and /metrics
// grows shard-labelled series from ShardStats.
type Sharded interface {
	Monitor
	NumShards() int
	TickShard(i int) (fleet.TickStats, error)
	ShardStats() []shard.Stats
}

var (
	_ Monitor = (*fleet.Monitor)(nil)
	_ Sharded = (*shard.Core)(nil)
)

// Config sizes an HTTP serving layer over a fleet monitor.
type Config struct {
	// Monitor is the fleet being served — a *fleet.Monitor or, for
	// per-shard tick loops and shard-labelled metrics, a *shard.Core.
	// Required.
	Monitor Monitor
	// ClassNames optionally maps class indices to workload names in
	// prediction responses.
	ClassNames []string
	// TickEvery is the batched-inference cadence (default 10ms).
	TickEvery time.Duration
	// QueueDepth bounds how many parsed ingest batches may wait for a
	// worker (default 256). A full queue makes POST /v1/ingest answer 429
	// with Retry-After instead of blocking.
	QueueDepth int
	// Workers is the number of goroutines draining the ingest queue
	// (default 4).
	Workers int
	// MaxBodyBytes caps one ingest request body (default 16 MiB).
	MaxBodyBytes int64
	// RetryAfter is the client backoff advertised on 429 (default 1s,
	// rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// EvictAfter > 0 enables idle-job eviction: jobs idle longer than this
	// are removed from the registry every EvictEvery (default EvictAfter/4),
	// bounding memory on fleets whose producers never call DELETE.
	EvictAfter time.Duration
	// EvictEvery overrides the eviction sweep interval.
	EvictEvery time.Duration
	// Logf, when non-nil, receives operational log lines (tick errors,
	// eviction sweeps).
	Logf func(format string, args ...any)
	// Events is the push-plane bus GET /v1/events serves; nil means the
	// server creates its own. Either way the bus is wired into the monitor
	// so prediction, unknown and swap events flow, and the server adds
	// drift-band and shard-health events on top.
	Events *events.Bus
	// EventBuffer bounds each SSE subscriber's queue (default 256). A
	// subscriber whose queue overflows is evicted — its stream ends — so a
	// stalled reader can never backpressure tick write-back.
	EventBuffer int
	// EventHeartbeat is the SSE keep-alive comment cadence (default 15s),
	// keeping idle streams alive through proxies and letting dead client
	// connections surface as write errors.
	EventHeartbeat time.Duration
	// DriftPollEvery is the drift-band watcher cadence (default 1s): how
	// often the fleet PSI score is checked against the stable/moderate/major
	// band boundaries to emit drift events on crossings.
	DriftPollEvery time.Duration
	// Now, when non-nil, replaces the real clock for tick latency
	// measurement (see fleet.Config.Now for the same knob on the monitor);
	// nil means time.Now.
	Now func() time.Time
	// Adapt, when non-nil, is the continual-learning flywheel the /v1/adapt
	// routes drive. The server only reads it — wiring the manager into the
	// monitor (SetAdaptObserver) and running its background loop is the
	// caller's job, because the promotion hook usually closes over the
	// caller's model path and watcher.
	Adapt *adapt.Manager

	// testHook, when non-nil, runs at the top of every worker batch —
	// tests use it to hold workers and fill the queue deterministically.
	testHook func()
}

// tickWindow is how many recent tick durations back the /metrics latency
// quantiles.
const tickWindow = 512

// maxLineBytes caps one NDJSON line.
const maxLineBytes = 1 << 20

// maxReportedLineErrors caps the per-line error list echoed in an ingest
// response; the rejected count is always exact.
const maxReportedLineErrors = 64

// Server is the HTTP serving layer. Build with New, mount Handler on an
// http.Server, and Close after the listener has shut down.
type Server struct {
	cfg     Config
	m       Monitor
	sharded Sharded // non-nil when m is a sharded fleet
	mux     *http.ServeMux
	queue   chan *ingestBatch
	stop    chan struct{}
	start   time.Time
	now     func() time.Time // injected clock (Config.Now, default time.Now)

	// bus and tracer are the observability plane: the monitor publishes
	// prediction/unknown/swap events into bus and feeds tick-stage spans to
	// tracer; the HTTP layer adds drift-band and shard-health events plus
	// the parse/queue/ingest stages, and serves both over /v1/events,
	// /v1/trace and /metrics. Neither influences a prediction bit.
	bus    *events.Bus
	tracer *trace.Recorder
	// streamsStop ends every open SSE stream; CloseStreams closes it so a
	// graceful http.Server.Shutdown is not held hostage by long-lived
	// event subscribers.
	streamsStop      chan struct{}
	closeStreamsOnce sync.Once

	inflight  sync.WaitGroup // handlers between stop-check and result
	workerWG  sync.WaitGroup
	loopWG    sync.WaitGroup
	closeOnce sync.Once
	closeErr  error

	throttled atomic.Uint64 // 429 responses
	lineErrs  atomic.Uint64 // rejected ingest lines

	tickMu   sync.Mutex
	tickDur  [tickWindow]time.Duration
	tickN    uint64
	tickErrs uint64
	// lastErrs holds each tick loop's most recent error ("" after a
	// success): one slot for a single monitor, one per shard otherwise,
	// so one healthy shard cannot clear another's failure.
	lastErrs []string

	scrapeMu    sync.Mutex
	lastScrape  time.Time
	lastSamples uint64
	lastClassed uint64

	// namesMu guards classNames, which starts as Config.ClassNames and can
	// be replaced at runtime (SetClassNames) when an adapt promotion widens
	// the class set.
	namesMu    sync.RWMutex
	classNames []string
}

type ingestBatch struct {
	samples []sampleReq
	done    chan batchResult
	enq     time.Time // when the batch joined the queue, for the queue-wait span
}

type sampleReq struct {
	line   int
	job    int
	values []float64
}

type batchResult struct {
	accepted int
	errors   []lineError
}

// lineError is one rejected ingest line in an ingest response.
type lineError struct {
	Line  int    `json:"line"`
	Error string `json:"error"`
}

// New validates the configuration, starts the ingest workers and the
// inference tick loop, and returns the serving layer.
func New(cfg Config) (*Server, error) {
	if cfg.Monitor == nil {
		return nil, errors.New("server: nil monitor")
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 10 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.EvictAfter > 0 && cfg.EvictEvery <= 0 {
		cfg.EvictEvery = cfg.EvictAfter / 4
	}
	if cfg.Events == nil {
		cfg.Events = events.NewBus()
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 256
	}
	if cfg.EventHeartbeat <= 0 {
		cfg.EventHeartbeat = 15 * time.Second
	}
	if cfg.DriftPollEvery <= 0 {
		cfg.DriftPollEvery = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &Server{
		cfg:         cfg,
		m:           cfg.Monitor,
		queue:       make(chan *ingestBatch, cfg.QueueDepth),
		stop:        make(chan struct{}),
		start:       time.Now(),
		now:         cfg.Now,
		bus:         cfg.Events,
		tracer:      trace.NewRecorder(),
		streamsStop: make(chan struct{}),
		classNames:  cfg.ClassNames,
	}
	s.m.SetEventSink(s.bus)
	s.m.SetTraceRecorder(s.tracer)
	tickLoops := 1
	if sm, ok := cfg.Monitor.(Sharded); ok {
		s.sharded = sm
		tickLoops = sm.NumShards()
	}
	s.lastErrs = make([]string, tickLoops)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/jobs", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/jobs/{id}/prediction", s.handlePrediction)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleEndJob)
	s.mux.HandleFunc("GET /v1/drift", s.handleDrift)
	s.mux.HandleFunc("GET /v1/adapt", s.handleAdapt)
	s.mux.HandleFunc("GET /v1/adapt/families", s.handleAdaptFamilies)
	s.mux.HandleFunc("POST /v1/adapt/build", s.handleAdaptBuild)
	s.mux.HandleFunc("POST /v1/adapt/promote", s.handleAdaptPromote)
	s.mux.HandleFunc("POST /v1/adapt/abort", s.handleAdaptAbort)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/trace", s.handleTrace)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /{$}", s.handleDashboard)

	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	for i := 0; i < tickLoops; i++ {
		s.loopWG.Add(1)
		go s.tickLoop(i)
	}
	if cfg.EvictAfter > 0 {
		s.loopWG.Add(1)
		go s.evictLoop()
	}
	s.loopWG.Add(1)
	go s.driftBandLoop()
	return s, nil
}

// Handler returns the API's HTTP handler, to be mounted on the caller's
// http.Server (or an httptest.Server in tests).
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the serving layer: new ingest batches are refused, queued
// batches are ingested by the workers, the background loops stop, and one
// final inference tick flushes every pending window so the last samples of
// a drained stream still produce predictions. Close returns the final
// tick's error, if any. Call it after the HTTP listener has stopped
// accepting requests (http.Server.Shutdown); Close does not stop the
// listener itself, and read-only endpoints keep working afterwards.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.CloseStreams()
		close(s.stop)
		s.inflight.Wait()
		close(s.queue)
		s.workerWG.Wait()
		s.loopWG.Wait()
		s.closeErr = s.finalTick()
	})
	return s.closeErr
}

// CloseStreams ends every open /v1/events stream. SSE subscribers hold
// their connections indefinitely, which would stall http.Server.Shutdown's
// graceful drain forever; wire this into the listener's shutdown
// (http.Server.RegisterOnShutdown) so streams end the moment a drain
// begins. Safe to call more than once; Close calls it too.
func (s *Server) CloseStreams() {
	s.closeStreamsOnce.Do(func() { close(s.streamsStop) })
}

// Events exposes the server's push-plane bus: the serving process publishes
// its own lifecycle moments (artifact watcher swaps) through the same bus
// its HTTP subscribers read.
func (s *Server) Events() *events.Bus { return s.bus }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for b := range s.queue {
		if s.cfg.testHook != nil {
			s.cfg.testHook()
		}
		s.tracer.Observe(trace.StageQueue, b.enq, time.Since(b.enq), len(b.samples))
		ingestStart := time.Now()
		var res batchResult
		for _, sm := range b.samples {
			if err := s.m.Ingest(sm.job, sm.values); err != nil {
				res.errors = append(res.errors, lineError{Line: sm.line, Error: err.Error()})
			} else {
				res.accepted++
			}
		}
		s.tracer.Observe(trace.StageIngest, ingestStart, time.Since(ingestStart), len(b.samples))
		b.done <- res
	}
}

// tickLoop drives one inference loop. A single monitor gets loop 0 over
// the whole fleet; a sharded fleet gets one loop per shard, each on its
// own ticker, so a slow shard's batch delays nobody else's cadence.
func (s *Server) tickLoop(loop int) {
	defer s.loopWG.Done()
	t := time.NewTicker(s.cfg.TickEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if err := s.runTick(loop); err != nil {
				s.logf("tick error (loop %d): %v", loop, err)
			}
		}
	}
}

// finalTick is the drain's whole-fleet flush. A sharded fleet is ticked
// shard by shard so each outcome lands in its own lastErrs slot — the
// fullTick path would misattribute a cross-shard error to loop 0.
func (s *Server) finalTick() error {
	if s.sharded == nil {
		return s.runTick(fullTick)
	}
	var errs []error
	for i := 0; i < s.sharded.NumShards(); i++ {
		if err := s.runTick(i); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// runTick performs one timed inference pass and records its latency and
// error state for /metrics and /healthz. loop selects the shard to tick
// on a sharded fleet; fullTick runs the unsharded whole-fleet pass.
const fullTick = -1

//wcc:tickpath latency is measured on the injected s.now clock
func (s *Server) runTick(loop int) error {
	t0 := s.now()
	var err error
	if s.sharded != nil && loop != fullTick {
		_, err = s.sharded.TickShard(loop)
	} else {
		_, err = s.m.Tick()
	}
	d := s.now().Sub(t0)
	slot := 0
	if loop > 0 {
		slot = loop
	}
	s.tickMu.Lock()
	s.tickDur[s.tickN%tickWindow] = d
	s.tickN++
	prevErr := s.lastErrs[slot]
	if err != nil {
		s.tickErrs++
		s.lastErrs[slot] = err.Error()
	} else {
		s.lastErrs[slot] = ""
	}
	s.tickMu.Unlock()
	// Health is an edge, not a level: emit only when a loop's error state
	// flips — first failure after successes, first success after a failure.
	if failed := err != nil; failed == (prevErr == "") {
		e := events.Event{Type: events.TypeShardHealth, Shard: events.Intp(slot), Healthy: events.Boolp(!failed)}
		if err != nil {
			e.Error = err.Error()
		}
		s.bus.Publish(e)
	}
	return err
}

// driftBandLoop watches the fleet PSI score and publishes a drift event
// whenever it crosses a band boundary (stable / moderate / major) in
// either direction — the push-plane counterpart of polling GET /v1/drift.
func (s *Server) driftBandLoop() {
	defer s.loopWG.Done()
	t := time.NewTicker(s.cfg.DriftPollEvery)
	defer t.Stop()
	last := drift.BandStable // a fleet starts undrifted: score 0
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			st := s.m.DriftStats()
			if !st.Enabled {
				continue
			}
			band := drift.Band(st.Score)
			if band == last {
				continue
			}
			s.bus.Publish(events.Event{Type: events.TypeDrift, Score: st.Score, Band: band, PrevBand: last})
			last = band
		}
	}
}

// lastTickErr joins every tick loop's most recent error state; "" means
// all loops' last passes succeeded.
func (s *Server) lastTickErr() string {
	s.tickMu.Lock()
	defer s.tickMu.Unlock()
	var parts []string
	for loop, e := range s.lastErrs {
		if e == "" {
			continue
		}
		if s.sharded != nil {
			e = fmt.Sprintf("shard %d: %s", loop, e)
		}
		parts = append(parts, e)
	}
	return strings.Join(parts, "; ")
}

func (s *Server) evictLoop() {
	defer s.loopWG.Done()
	t := time.NewTicker(s.cfg.EvictEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if n := s.m.EvictIdle(s.cfg.EvictAfter); n > 0 {
				s.logf("evicted %d jobs idle longer than %s", n, s.cfg.EvictAfter)
			}
		}
	}
}

// ingestLine is the wire form of one NDJSON ingest line.
type ingestLine struct {
	Job    *int      `json:"job"`
	Values []float64 `json:"values"`
}

// parseIngestLine validates one raw NDJSON line (already trimmed of
// surrounding whitespace). It returns ok=false with nil errp for a blank
// line (skipped), ok=false with a lineError for a rejected line, and
// ok=true with the parsed sample otherwise. It never panics on hostile
// input: malformed JSON, wrong field types, missing fields and JSON's
// unrepresentable NaN/Inf spellings all land in the per-line error, so one
// bad line never poisons the batch's valid samples. Sensor-width and
// value-sanity checks (non-finite and absurd magnitudes) happen in
// fleet.Monitor.Ingest, and surface per line through the same accounting.
func parseIngestLine(line int, raw []byte) (sampleReq, *lineError, bool) {
	if len(raw) == 0 {
		return sampleReq{}, nil, false
	}
	var in ingestLine
	if err := json.Unmarshal(raw, &in); err != nil {
		return sampleReq{}, &lineError{Line: line, Error: "malformed JSON: " + err.Error()}, false
	}
	if in.Job == nil || *in.Job < 0 {
		return sampleReq{}, &lineError{Line: line, Error: `missing or negative "job"`}, false
	}
	if len(in.Values) == 0 {
		return sampleReq{}, &lineError{Line: line, Error: `missing or empty "values"`}, false
	}
	return sampleReq{line: line, job: *in.Job, values: in.Values}, nil, true
}

// ingestResponse is the per-request accounting an ingest returns.
type ingestResponse struct {
	Accepted int         `json:"accepted"`
	Rejected int         `json:"rejected"`
	Errors   []lineError `json:"errors,omitempty"`
	// ErrorsTruncated reports that more lines were rejected than Errors
	// lists; Rejected is always the exact count.
	ErrorsTruncated bool `json:"errors_truncated,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	// Register with the drain barrier before checking it: a handler that
	// passes the stop check is then guaranteed to enqueue before Close
	// closes the queue (Close waits on inflight first), and one that Adds
	// after Close's Wait necessarily observes stop closed here.
	s.inflight.Add(1)
	defer s.inflight.Done()
	select {
	case <-s.stop:
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	default:
	}

	// The whole body is read into pooled scratch, then parsed by framing:
	// binary length-prefixed records when the Content-Type says so, NDJSON
	// otherwise. The scratch (body buffer, values arena, sample list) is
	// returned to the pool when the handler exits — by then the workers
	// have copied every sample out (Push copies into the job's ring), so
	// the aliasing is safe even though the batch rode the queue.
	sc := ingestScratchPool.Get().(*ingestScratch)
	defer ingestScratchPool.Put(sc)

	parseStart := time.Now()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var err error
	sc.body, err = readBody(sc.body[:0], body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes; split the batch", tooBig.Limit))
		} else {
			writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		}
		return
	}

	var samples []sampleReq
	var parseErrs []lineError
	var fatal error
	if isBinaryIngest(r.Header.Get("Content-Type")) {
		samples, parseErrs, fatal = parseBinary(sc)
	} else {
		samples, parseErrs, fatal = parseLines(sc)
	}
	if fatal != nil {
		// Nothing was enqueued yet, so a request-level failure rejects the
		// whole batch rather than ingesting an unknown prefix.
		writeError(w, http.StatusBadRequest, "reading body: "+fatal.Error())
		return
	}
	s.tracer.Observe(trace.StageParse, parseStart, time.Since(parseStart), len(samples))

	var res batchResult
	if len(samples) > 0 {
		b := &ingestBatch{samples: samples, done: make(chan batchResult, 1), enq: time.Now()}
		select {
		case s.queue <- b:
		default:
			s.throttled.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
			writeError(w, http.StatusTooManyRequests, "ingest queue full")
			return
		}
		res = <-b.done
	}

	all := append(parseErrs, res.errors...)
	sort.Slice(all, func(i, j int) bool { return all[i].Line < all[j].Line })
	s.lineErrs.Add(uint64(len(all)))
	resp := ingestResponse{Accepted: res.accepted, Rejected: len(all), Errors: all}
	if len(all) > maxReportedLineErrors {
		resp.Errors = all[:maxReportedLineErrors]
		resp.ErrorsTruncated = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// predictionResponse is the full per-job prediction read. The open-set
// fields (confidence through unknown) are present only when the serving
// fleet carries a drift calibration; confidence duplicates probability
// under its open-set name so drift-aware clients read one coherent block.
type predictionResponse struct {
	Job         int       `json:"job"`
	Class       int       `json:"class"`
	ClassName   string    `json:"class_name,omitempty"`
	Probability float64   `json:"probability"`
	Probs       []float64 `json:"probs"`
	Confidence  *float64  `json:"confidence,omitempty"`
	Margin      *float64  `json:"margin,omitempty"`
	Energy      *float64  `json:"energy,omitempty"`
	FeatureDist *float64  `json:"feature_distance,omitempty"`
	Unknown     *bool     `json:"unknown,omitempty"`
}

func (s *Server) className(class int) string {
	s.namesMu.RLock()
	defer s.namesMu.RUnlock()
	if class >= 0 && class < len(s.classNames) {
		return s.classNames[class]
	}
	return ""
}

func (s *Server) handlePrediction(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "job id must be an integer")
		return
	}
	pred, ok := s.m.Prediction(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no prediction for job %d", id))
		return
	}
	resp := predictionResponse{
		Job: id, Class: pred.Class, ClassName: s.className(pred.Class),
		Probability: pred.Probability, Probs: pred.Probs,
	}
	if o := pred.Open; o != nil {
		conf, margin, energy, featDist, unknown := pred.Probability, o.Margin, o.Energy, o.FeatDist, o.Rejected
		resp.Confidence, resp.Margin, resp.Energy, resp.FeatureDist, resp.Unknown =
			&conf, &margin, &energy, &featDist, &unknown
	}
	writeJSON(w, http.StatusOK, resp)
}

// jobSummary is one job's row in the fleet snapshot.
type jobSummary struct {
	Job     int    `json:"job"`
	Samples uint64 `json:"samples"`
	Ready   bool   `json:"ready"`
	// LastSeenUnixMS is when the job's most recent sample arrived (0 if none).
	LastSeenUnixMS int64 `json:"last_seen_unix_ms,omitempty"`
	// Class/ClassName/Probability summarise the latest prediction and are
	// absent for jobs not classified yet; full probabilities are on the
	// per-job prediction endpoint.
	Class       *int    `json:"class,omitempty"`
	ClassName   string  `json:"class_name,omitempty"`
	Probability float64 `json:"probability,omitempty"`
	// Unknown is the open-set verdict, present only when the fleet scores
	// predictions against a drift calibration.
	Unknown *bool `json:"unknown,omitempty"`
}

type snapshotResponse struct {
	Count int          `json:"count"`
	Jobs  []jobSummary `json:"jobs"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.m.Snapshot()
	resp := snapshotResponse{Count: len(snap), Jobs: make([]jobSummary, 0, len(snap))}
	for _, ji := range snap {
		row := jobSummary{Job: ji.JobID, Samples: ji.Samples, Ready: ji.Ready}
		if !ji.LastSeen.IsZero() {
			row.LastSeenUnixMS = ji.LastSeen.UnixMilli()
		}
		if ji.Pred != nil {
			class := ji.Pred.Class
			row.Class = &class
			row.ClassName = s.className(class)
			row.Probability = ji.Pred.Probability
			if o := ji.Pred.Open; o != nil {
				unknown := o.Rejected
				row.Unknown = &unknown
			}
		}
		resp.Jobs = append(resp.Jobs, row)
	}
	writeJSON(w, http.StatusOK, resp)
}

// endJobResponse acknowledges a DELETE with the job's final classification.
type endJobResponse struct {
	Job         int     `json:"job"`
	Ended       bool    `json:"ended"`
	Class       *int    `json:"class,omitempty"`
	ClassName   string  `json:"class_name,omitempty"`
	Probability float64 `json:"probability,omitempty"`
}

func (s *Server) handleEndJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "job id must be an integer")
		return
	}
	final, ok := s.m.EndJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %d", id))
		return
	}
	resp := endJobResponse{Job: id, Ended: true}
	if final != nil {
		class := final.Class
		resp.Class = &class
		resp.ClassName = s.className(class)
		resp.Probability = final.Probability
	}
	writeJSON(w, http.StatusOK, resp)
}

// driftResponse is the fleet's open-set and input-drift state. Score and
// SensorPSI follow the usual PSI reading: < 0.1 stable, 0.1–0.25 moderate
// drift, > 0.25 major drift.
type driftResponse struct {
	// Enabled reports whether the serving model carries a drift
	// calibration; all other fields are zero when it does not.
	Enabled bool `json:"enabled"`
	// Score is the fleet drift score: the maximum per-sensor PSI.
	Score float64 `json:"score"`
	// SensorPSI is the per-sensor PSI against the training reference, in
	// Table III sensor order.
	SensorPSI []float64 `json:"sensor_psi,omitempty"`
	// Samples is the number of ingested samples binned into the drift
	// histograms.
	Samples uint64 `json:"samples"`
	// Unknowns counts classifications rejected as unknown workloads.
	Unknowns uint64 `json:"unknowns"`
}

func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	st := s.m.DriftStats()
	writeJSON(w, http.StatusOK, driftResponse{
		Enabled:   st.Enabled,
		Score:     st.Score,
		SensorPSI: st.SensorPSI,
		Samples:   st.Samples,
		Unknowns:  st.Unknowns,
	})
}

// HealthResponse is the liveness read; Window and Sensors tell a load
// driver what sample shape the fleet expects. The cluster layer
// (internal/cluster) embeds it in its own /healthz payload, adding
// membership and routing on top.
type HealthResponse struct {
	Status  string `json:"status"`
	Jobs    int    `json:"jobs"`
	Window  int    `json:"window"`
	Sensors int    `json:"sensors"`
	// Shards is the serving core's shard count; absent (0) when a single
	// unsharded monitor serves the fleet.
	Shards        int     `json:"shards,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	LastTickError string  `json:"last_tick_error,omitempty"`
	// Classes maps class indices to workload names when the server was
	// configured with them — the dashboard labels its class mix from here.
	Classes []string `json:"classes,omitempty"`
}

// Health assembles the current liveness state — the payload GET /healthz
// serves. Status "degraded" means some tick loop's most recent pass
// failed; the matching HTTP code is 503.
func (s *Server) Health() HealthResponse {
	lastErr := s.lastTickErr()
	resp := HealthResponse{
		Status:        "ok",
		Jobs:          s.m.NumJobs(),
		Window:        s.m.Window(),
		Sensors:       s.m.Sensors(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		LastTickError: lastErr,
		Classes:       s.ClassNames(),
	}
	if s.sharded != nil {
		resp.Shards = s.sharded.NumShards()
	}
	if lastErr != "" {
		resp.Status = "degraded"
	}
	return resp
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := s.Health()
	code := http.StatusOK
	if resp.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// retryAfterSeconds rounds the configured backoff up to the whole seconds
// the Retry-After header speaks, never below 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
