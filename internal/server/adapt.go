package server

import (
	"bytes"
	"errors"
	"net/http"

	"repro/internal/adapt"
)

// adaptStatusResponse wraps the manager's status with an enabled flag so
// GET /v1/adapt has a stable shape whether or not the flywheel is wired:
// the routes are always registered, and a server without a manager answers
// {"enabled":false} instead of 404.
type adaptStatusResponse struct {
	Enabled bool `json:"enabled"`
	adapt.Status
}

// ClassNames returns the current class-index → workload-name mapping.
func (s *Server) ClassNames() []string {
	s.namesMu.RLock()
	defer s.namesMu.RUnlock()
	return s.classNames
}

// SetClassNames replaces the class-name mapping, typically after an adapt
// promotion widened the class set with novel-N families. Prediction
// responses and /healthz pick the new names up on their next read.
func (s *Server) SetClassNames(names []string) {
	s.namesMu.Lock()
	s.classNames = names
	s.namesMu.Unlock()
}

// handleAdapt serves the flywheel's lifecycle status.
func (s *Server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Adapt == nil {
		writeJSON(w, http.StatusOK, adaptStatusResponse{Enabled: false})
		return
	}
	writeJSON(w, http.StatusOK, adaptStatusResponse{Enabled: true, Status: s.cfg.Adapt.Status()})
}

// handleAdaptFamilies serves the clustered rejected-window families as the
// portable JSON bundle wcctrain -families consumes, so an operator can pull
// candidate classes out of a serving node and retrain offline.
func (s *Server) handleAdaptFamilies(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Adapt == nil {
		writeError(w, http.StatusNotFound, "adapt flywheel not enabled")
		return
	}
	fams := s.cfg.Adapt.Families()
	if len(fams) == 0 {
		writeError(w, http.StatusNotFound, "no candidate families yet")
		return
	}
	var buf bytes.Buffer
	if err := adapt.EncodeFamilies(&buf, fams); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// handleAdaptBuild forces a cluster+train pass now. The build runs
// synchronously in the request (seconds for a provenance retrain), which is
// exactly what CI smokes want: when the response comes back the candidate
// either exists or the error explains why.
func (s *Server) handleAdaptBuild(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Adapt == nil {
		writeError(w, http.StatusNotFound, "adapt flywheel not enabled")
		return
	}
	if err := s.cfg.Adapt.BuildCandidate(); err != nil {
		writeError(w, adaptErrCode(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, adaptStatusResponse{Enabled: true, Status: s.cfg.Adapt.Status()})
}

// handleAdaptPromote promotes the shadow candidate unconditionally — the
// operator override of the quality gate. Automatic promotion goes through
// the gate instead (Config.AutoPromote on the manager).
func (s *Server) handleAdaptPromote(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Adapt == nil {
		writeError(w, http.StatusNotFound, "adapt flywheel not enabled")
		return
	}
	if err := s.cfg.Adapt.Promote(); err != nil {
		writeError(w, adaptErrCode(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, adaptStatusResponse{Enabled: true, Status: s.cfg.Adapt.Status()})
}

// handleAdaptAbort discards the candidate and the buffered windows behind
// it, restarting the flywheel from an empty buffer.
func (s *Server) handleAdaptAbort(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Adapt == nil {
		writeError(w, http.StatusNotFound, "adapt flywheel not enabled")
		return
	}
	if err := s.cfg.Adapt.Abort(); err != nil {
		writeError(w, adaptErrCode(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, adaptStatusResponse{Enabled: true, Status: s.cfg.Adapt.Status()})
}

// adaptErrCode maps flywheel lifecycle errors to HTTP codes: state-machine
// refusals are 409 (retryable once the state moves), everything else 500.
func adaptErrCode(err error) int {
	switch {
	case errors.Is(err, adapt.ErrNotReady),
		errors.Is(err, adapt.ErrNoFamilies),
		errors.Is(err, adapt.ErrNoCandidate),
		errors.Is(err, adapt.ErrBusy),
		errors.Is(err, adapt.ErrStale),
		errors.Is(err, adapt.ErrGate):
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}
