package server

import (
	"bufio"
	"bytes"
	"io"
	"strconv"
	"strings"
	"sync"
	"unsafe"

	"repro/internal/wire"
)

// The per-sample ingest path is allocation-free in steady state: each
// request borrows one ingestScratch from a pool — a body buffer, a values
// arena every sample's slice aliases, and the sample list itself — and a
// canonical NDJSON line is decoded by a byte scanner instead of
// encoding/json. The scanner is deliberately narrow: it accepts exactly
// the shape producers emit ({"job":N,"values":[...]}, no whitespace, no
// reordering) and hands anything else to the stdlib decoder, so
// acceptance and per-line error text stay byte-identical to the
// encoding/json path it replaces.

// ingestScratch is one request's pooled parsing state. It is returned to
// the pool only after the worker has finished the batch (Push copies every
// sample into the job's ring), so aliasing the arena is safe.
type ingestScratch struct {
	body    []byte
	values  []float64
	samples []sampleReq
}

var ingestScratchPool = sync.Pool{
	New: func() any { return &ingestScratch{body: make([]byte, 0, 64*1024)} },
}

// readBody reads r to EOF into dst's spare capacity, growing as needed,
// and returns the filled slice.
func readBody(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// isBinaryIngest reports whether an ingest Content-Type selects the binary
// framing; anything else (including absent) reads as NDJSON.
func isBinaryIngest(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == wire.IngestContentType
}

// parseBinary decodes a binary-framed body from sc.body into sc.samples.
// Record-local defects land in the per-line error list under the record's
// index; a framing-fatal defect is returned and rejects the whole batch
// before anything is enqueued, mirroring the NDJSON scanner-error path.
func parseBinary(sc *ingestScratch) ([]sampleReq, []lineError, error) {
	dec := wire.NewIngestDecoder(sc.body)
	dec.Arena = sc.values[:0]
	samples := sc.samples[:0]
	var errs []lineError
	for {
		rec, ok := dec.Next()
		if !ok {
			break
		}
		if rec.Err != nil {
			errs = append(errs, lineError{Line: rec.Index, Error: rec.Err.Error()})
			continue
		}
		if rec.Job < 0 {
			errs = append(errs, lineError{Line: rec.Index, Error: `missing or negative "job"`})
			continue
		}
		if len(rec.Values) == 0 {
			errs = append(errs, lineError{Line: rec.Index, Error: `missing or empty "values"`})
			continue
		}
		samples = append(samples, sampleReq{line: rec.Index, job: int(rec.Job), values: rec.Values})
	}
	sc.values, sc.samples = dec.Arena, samples
	return samples, errs, dec.Err()
}

// parseLines splits sc.body into NDJSON lines exactly as bufio.ScanLines
// would — a final fragment without a newline is still a line, a trailing
// empty fragment is not — and parses each through the fast scanner with a
// stdlib fallback. A line over maxLineBytes returns bufio.ErrTooLong as
// the fatal error, matching the scanner-based path this replaces.
func parseLines(sc *ingestScratch) ([]sampleReq, []lineError, error) {
	samples := sc.samples[:0]
	arena := sc.values[:0]
	var errs []lineError
	buf := sc.body
	line := 0
	for off := 0; off < len(buf); {
		var seg []byte
		if nl := bytes.IndexByte(buf[off:], '\n'); nl < 0 {
			seg = buf[off:]
			off = len(buf)
		} else {
			seg = buf[off : off+nl]
			off += nl + 1
		}
		line++
		if len(seg) > maxLineBytes {
			sc.values, sc.samples = arena, samples
			return nil, nil, bufio.ErrTooLong
		}
		raw := bytes.TrimSpace(seg)
		if len(raw) == 0 {
			continue
		}
		if sm, grown, ok := parseIngestLineFast(line, raw, arena); ok {
			arena = grown
			samples = append(samples, sm)
			continue
		}
		sm, errp, ok := parseIngestLine(line, raw)
		if errp != nil {
			errs = append(errs, *errp)
		}
		if ok {
			samples = append(samples, sm)
		}
	}
	sc.values, sc.samples = arena, samples
	return samples, errs, nil
}

var (
	ingestLinePrefix = []byte(`{"job":`)
	ingestValuesSep  = []byte(`,"values":[`)
)

// parseIngestLineFast decodes the canonical ingest line shape without
// encoding/json or per-line allocations, appending values to arena (the
// sample's slice aliases it) and returning the grown arena. ok=false means
// the line deviated from the canonical byte shape — whitespace, reordered
// or extra fields, a number JSON or the int job field would reject — and
// the caller must fall back to parseIngestLine, which stays authoritative
// for both acceptance and error text.
//
//wcc:hotpath zero allocations per call, pinned by an AllocsPerRun gate
func parseIngestLineFast(line int, raw []byte, arena []float64) (sampleReq, []float64, bool) {
	if !bytes.HasPrefix(raw, ingestLinePrefix) {
		return sampleReq{}, arena, false
	}
	p := len(ingestLinePrefix)
	job, d0 := 0, p
	for p < len(raw) && raw[p] >= '0' && raw[p] <= '9' {
		job = job*10 + int(raw[p]-'0')
		p++
	}
	// No digits, a JSON-invalid leading zero, or enough digits to threaten
	// int64 all defer to the stdlib's verdict.
	if p == d0 || p-d0 > 18 || (raw[d0] == '0' && p-d0 > 1) {
		return sampleReq{}, arena, false
	}
	if !bytes.HasPrefix(raw[p:], ingestValuesSep) {
		return sampleReq{}, arena, false
	}
	p += len(ingestValuesSep)
	start := len(arena)
	for {
		n := jsonNumberLen(raw[p:])
		if n == 0 {
			return sampleReq{}, arena[:start], false
		}
		// For a JSON-grammar-valid number this is exactly the conversion
		// encoding/json performs; a range error (1e999) falls back so the
		// stdlib's rejection is what the client sees.
		v, err := strconv.ParseFloat(bytesString(raw[p:p+n]), 64)
		if err != nil {
			return sampleReq{}, arena[:start], false
		}
		arena = append(arena, v)
		p += n
		if p >= len(raw) {
			return sampleReq{}, arena[:start], false
		}
		if raw[p] == ',' {
			p++
			continue
		}
		if raw[p] == ']' {
			p++
			break
		}
		return sampleReq{}, arena[:start], false
	}
	if p != len(raw)-1 || raw[p] != '}' {
		return sampleReq{}, arena[:start], false
	}
	return sampleReq{line: line, job: job, values: arena[start:]}, arena, true
}

// jsonNumberLen returns how many leading bytes of b form a complete JSON
// number (RFC 8259 grammar: no leading zeros, no bare '.', no Inf/NaN
// spellings), or 0 if they don't.
func jsonNumberLen(b []byte) int {
	i := 0
	if i < len(b) && b[i] == '-' {
		i++
	}
	if i >= len(b) {
		return 0
	}
	switch {
	case b[i] == '0':
		i++
	case b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return 0
	}
	if i < len(b) && b[i] == '.' {
		i++
		d := i
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
		if i == d {
			return 0
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		d := i
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
		if i == d {
			return 0
		}
	}
	return i
}

// bytesString views b as a string without copying; the result must not
// outlive b, which holds here — it only feeds strconv.ParseFloat.
func bytesString(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}
