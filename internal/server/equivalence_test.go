package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// equivFixture builds a scaler and forest for an arbitrary window shape;
// the statistics are synthetic — the equivalence invariant is about the
// two serving paths agreeing, not about accuracy.
func equivFixture(t *testing.T, window, sensors int) (*preprocess.StandardScaler, *forest.Classifier) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	train := mat.New(50, window*sensors)
	for i := range train.Data {
		train.Data[i] = rng.NormFloat64()*20 + 40
	}
	var scaler preprocess.StandardScaler
	if _, err := scaler.FitTransform(train); err != nil {
		t.Fatal(err)
	}
	dim := preprocess.CovarianceDim(sensors)
	x := mat.New(300, dim)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.Intn(8)
	}
	f := forest.New(forest.Config{NumTrees: 20, Bootstrap: true, Seed: 4})
	if err := f.Fit(x, y, 8); err != nil {
		t.Fatal(err)
	}
	return &scaler, f
}

// TestServerMatchesInProcessFleet is the serving-layer acceptance
// invariant: replaying the same simulated telemetry through the HTTP API
// (batched NDJSON over real loopback connections, several concurrent
// clients, the server ticking on its own cadence) and through an in-process
// fleet.Monitor must end in bit-identical predictions for every job.
func TestServerMatchesInProcessFleet(t *testing.T) {
	const (
		window  = 24
		sensors = int(telemetry.NumGPUSensors)
		conns   = 3
		batchSz = 32
	)
	scaler, model := equivFixture(t, window, sensors)

	sim, err := telemetry.NewSimulator(telemetry.Config{Seed: 5, Scale: 0.02, GapRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	windowSec := float64(window) * telemetry.GPUSampleDT
	const start = 30.0
	horizon := start + windowSec + 10
	var sources []*telemetry.Job
	for _, j := range sim.Jobs() {
		if j.Duration >= horizon+1 {
			sources = append(sources, j)
		}
	}
	if len(sources) < 4 {
		t.Fatalf("only %d usable simulated jobs", len(sources))
	}
	if len(sources) > 8 {
		sources = sources[:8]
	}
	// Fleet job k replays source k; source job IDs map back to k.
	fleetID := make(map[int]int, len(sources))
	for k, j := range sources {
		fleetID[j.ID] = k
	}

	newMonitor := func() *fleet.Monitor {
		m, err := fleet.New(fleet.Config{Window: window, Sensors: sensors, Scaler: scaler, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// In-process baseline: same replay, direct Ingest, ticks interleaved
	// mid-stream to prove tick timing cannot change final predictions.
	inproc := newMonitor()
	replay, err := telemetry.NewReplay(sources, 0, start, horizon)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		s, ok := replay.Next()
		if !ok {
			break
		}
		if err := inproc.Ingest(fleetID[s.JobID], s.Values); err != nil {
			t.Fatal(err)
		}
		if n++; n%97 == 0 {
			if _, err := inproc.Tick(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := inproc.Tick(); err != nil {
		t.Fatal(err)
	}

	// Served fleet: the same replay partitioned across conns concurrent
	// HTTP clients (a job's samples always ride the same connection, so
	// per-job order is preserved), while the server ticks every 2ms.
	served := newMonitor()
	srv, err := New(Config{Monitor: served, TickEvery: 2 * time.Millisecond, QueueDepth: 64, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bodies := make([][][]byte, conns)
	cur := make([][]string, conns)
	flush := func(w int) {
		if len(cur[w]) == 0 {
			return
		}
		var buf bytes.Buffer
		for _, line := range cur[w] {
			buf.WriteString(line)
			buf.WriteByte('\n')
		}
		bodies[w] = append(bodies[w], buf.Bytes())
		cur[w] = cur[w][:0]
	}
	replay2, err := telemetry.NewReplay(sources, 0, start, horizon)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		s, ok := replay2.Next()
		if !ok {
			break
		}
		k := fleetID[s.JobID]
		w := k % conns
		line, _ := json.Marshal(struct {
			Job    int       `json:"job"`
			Values []float64 `json:"values"`
		}{k, s.Values})
		cur[w] = append(cur[w], string(line))
		total++
		if len(cur[w]) == batchSz {
			flush(w)
		}
	}
	for w := 0; w < conns; w++ {
		flush(w)
	}

	var wg sync.WaitGroup
	errc := make(chan error, conns)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{}
			for _, body := range bodies[w] {
				for {
					resp, err := client.Post(ts.URL+"/v1/ingest", "application/x-ndjson", bytes.NewReader(body))
					if err != nil {
						errc <- err
						return
					}
					var ir ingestResponse
					code := resp.StatusCode
					if code == http.StatusOK {
						json.NewDecoder(resp.Body).Decode(&ir)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if code == http.StatusTooManyRequests {
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if code != http.StatusOK || ir.Rejected != 0 {
						errc <- fmt.Errorf("conn %d: status %d, accounting %+v", w, code, ir)
						return
					}
					break
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// Graceful drain: the final tick classifies whatever the cadence ticker
	// had not caught yet.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := served.SamplesIngested(); got != uint64(total) {
		t.Fatalf("server ingested %d samples, replay emitted %d", got, total)
	}

	for k := range sources {
		want, ok := inproc.Prediction(k)
		if !ok {
			t.Fatalf("job %d: in-process fleet has no prediction", k)
		}
		// Read through the API so the comparison covers JSON float
		// round-tripping, not just the registry.
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/prediction", ts.URL, k))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d: prediction status %d", k, resp.StatusCode)
		}
		var pr predictionResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := &stream.Prediction{Class: pr.Class, Probability: pr.Probability, Probs: pr.Probs}
		if !predictionEqual(got, want) {
			t.Fatalf("job %d: served prediction (%d, %v) not bit-identical to in-process (%d, %v)",
				k, got.Class, got.Probs, want.Class, want.Probs)
		}
	}
}
