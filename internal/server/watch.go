package server

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/artifact"
	"repro/internal/preprocess"
	"repro/internal/stream"
)

// WatchConfig describes one artifact path to poll for hot-swaps into a
// live fleet.
type WatchConfig struct {
	// Path is the .wcc artifact to watch.
	Path string
	// Every is the poll interval (default 2s).
	Every time.Duration
	// Monitor receives the swapped classifier — a single monitor, or a
	// sharded core whose SwapClassifier installs the artifact on every
	// shard atomically.
	Monitor Monitor
	// Window, Sensors and Scaler are the serving fleet's shape and
	// preprocessing statistics; a replacement artifact must match all
	// three, because per-job window state survives the swap.
	Window  int
	Sensors int
	Scaler  *preprocess.StandardScaler
	// OnSwap, when non-nil, is called after each successful swap.
	OnSwap func(meta artifact.Metadata)
	// Logf, when non-nil, receives skipped-reload diagnostics.
	Logf func(format string, args ...any)
}

// Watch polls the artifact path until stop is closed, hot-swapping each
// content change into the monitor. Replacement is detected by artifact
// identity — the container's section CRCs via artifact.ReadInfo — not by
// os.Stat, so a retrained model atomically renamed into place is caught
// even when the new file has the same size and a same-granularity mtime
// (coarse filesystem timestamps make that a real occurrence for fast
// retrain loops). artifact.Save renames atomically, so a poll never reads
// a torn file; a path that is briefly unreadable is retried next poll.
func Watch(stop <-chan struct{}, cfg WatchConfig) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Every <= 0 {
		cfg.Every = 2 * time.Second
	}
	last, err := artifactIdentity(cfg.Path)
	if err != nil {
		logf("artifact watch: initial read of %s: %v", cfg.Path, err)
	}
	t := time.NewTicker(cfg.Every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			ident, err := artifactIdentity(cfg.Path)
			if err != nil || ident == last {
				continue
			}
			last = ident
			meta, err := swapFromPath(cfg)
			if err != nil {
				logf("model reload skipped: %v", err)
				continue
			}
			if cfg.OnSwap != nil {
				cfg.OnSwap(meta)
			}
		}
	}
}

// artifactIdentity fingerprints an artifact by its container contents —
// format version plus every section's name, length and CRC32 — so two
// files with identical stat signatures but different payloads still
// compare as different.
func artifactIdentity(path string) (string, error) {
	info, err := artifact.ReadInfo(path)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "v%d", info.FormatVersion)
	for _, sec := range info.Sections {
		fmt.Fprintf(&b, "|%s:%d:%08x", sec.Name, sec.Length, sec.CRC)
	}
	return b.String(), nil
}

// swapFromPath loads the artifact and, when it is compatible with the
// serving fleet, swaps its classifier in.
func swapFromPath(cfg WatchConfig) (artifact.Metadata, error) {
	a, err := artifact.Load(cfg.Path)
	if err != nil {
		return artifact.Metadata{}, err
	}
	if a.Meta.Features != "cov" {
		return artifact.Metadata{}, fmt.Errorf("artifact has %q features; live serving needs a covariance-feature model", a.Meta.Features)
	}
	cls, ok := a.Model.(stream.Classifier)
	if !ok {
		return artifact.Metadata{}, fmt.Errorf("%s models cannot serve streaming windows", a.Meta.Kind)
	}
	if a.Meta.Window != cfg.Window || a.Meta.Sensors != cfg.Sensors {
		return artifact.Metadata{}, fmt.Errorf("window shape %dx%d differs from serving %dx%d",
			a.Meta.Window, a.Meta.Sensors, cfg.Window, cfg.Sensors)
	}
	if a.Scaler == nil {
		return artifact.Metadata{}, errors.New("artifact carries no scaler")
	}
	if !a.Scaler.Equal(cfg.Scaler) {
		return artifact.Metadata{}, errors.New("scaler statistics differ from the serving scaler")
	}
	// The replacement model brings its own drift calibration (or none):
	// swapping both together keeps open-set verdicts coherent — thresholds
	// calibrated on the outgoing model's probability distribution must
	// never score the incoming model.
	if err := cfg.Monitor.SwapClassifierDrift(cls, a.Drift); err != nil {
		return artifact.Metadata{}, err
	}
	return a.Meta, nil
}
