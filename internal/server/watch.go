package server

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/artifact"
	"repro/internal/preprocess"
	"repro/internal/stream"
)

// WatchConfig describes one artifact path to poll for hot-swaps into a
// live fleet.
type WatchConfig struct {
	// Path is the .wcc artifact to watch.
	Path string
	// Every is the poll interval (default 2s).
	Every time.Duration
	// Monitor receives the swapped classifier — a single monitor, or a
	// sharded core whose SwapClassifier installs the artifact on every
	// shard atomically.
	Monitor Monitor
	// Window, Sensors and Scaler are the serving fleet's shape and
	// preprocessing statistics; a replacement artifact must match all
	// three, because per-job window state survives the swap.
	Window  int
	Sensors int
	Scaler  *preprocess.StandardScaler
	// OnSwap, when non-nil, is called after each successful swap.
	OnSwap func(meta artifact.Metadata)
	// Distribute, when non-nil, replaces the local swap with a fleet-wide
	// one: each detected content change is handed to it (the cluster
	// control plane's rolling-swap orchestration — see internal/cluster)
	// instead of being installed on this process's monitor alone. OnSwap
	// still fires after Distribute succeeds.
	Distribute func(path string) (artifact.Metadata, error)
	// Logf, when non-nil, receives skipped-reload diagnostics.
	Logf func(format string, args ...any)
}

// Watch polls the artifact path until stop is closed, hot-swapping each
// content change into the monitor. Replacement is detected by artifact
// identity — the container's section CRCs via artifact.ReadInfo — not by
// os.Stat, so a retrained model atomically renamed into place is caught
// even when the new file has the same size and a same-granularity mtime
// (coarse filesystem timestamps make that a real occurrence for fast
// retrain loops). artifact.Save renames atomically, so a poll never reads
// a torn file; a path that is briefly unreadable is retried next poll.
func Watch(stop <-chan struct{}, cfg WatchConfig) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Every <= 0 {
		cfg.Every = 2 * time.Second
	}
	last, err := artifactIdentity(cfg.Path)
	if err != nil {
		logf("artifact watch: initial read of %s: %v", cfg.Path, err)
	}
	t := time.NewTicker(cfg.Every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			ident, err := artifactIdentity(cfg.Path)
			if err != nil || ident == last {
				continue
			}
			last = ident
			swap := swapFromPath
			if cfg.Distribute != nil {
				swap = func(cfg WatchConfig) (artifact.Metadata, error) { return cfg.Distribute(cfg.Path) }
			}
			meta, err := swap(cfg)
			if err != nil {
				logf("model reload skipped: %v", err)
				continue
			}
			if cfg.OnSwap != nil {
				cfg.OnSwap(meta)
			}
		}
	}
}

// artifactIdentity fingerprints an artifact by its container contents —
// format version plus every section's name, length and CRC32 — so two
// files with identical stat signatures but different payloads still
// compare as different. The fingerprint itself lives in the artifact
// package because the cluster control plane uses the same identity as its
// replication-convergence check.
func artifactIdentity(path string) (string, error) {
	return artifact.Identity(path)
}

// ServableModel validates that a decoded artifact can serve a live fleet
// of the given shape and returns its classifier. The gates exist because
// per-job window state survives a swap: the replacement must consume the
// same window shape and the exact scaler statistics the fleet's embedders
// were built with. The watcher runs these gates before every hot-swap;
// the cluster control plane (internal/cluster) runs the same gates on
// every node during a rolling swap's prepare phase, so an incompatible
// artifact is refused fleet-wide before any node commits.
func ServableModel(a *artifact.Artifact, window, sensors int, scaler *preprocess.StandardScaler) (stream.Classifier, error) {
	if a.Meta.Features != "cov" {
		return nil, fmt.Errorf("artifact has %q features; live serving needs a covariance-feature model", a.Meta.Features)
	}
	cls, ok := a.Model.(stream.Classifier)
	if !ok {
		return nil, fmt.Errorf("%s models cannot serve streaming windows", a.Meta.Kind)
	}
	if a.Meta.Window != window || a.Meta.Sensors != sensors {
		return nil, fmt.Errorf("window shape %dx%d differs from serving %dx%d",
			a.Meta.Window, a.Meta.Sensors, window, sensors)
	}
	if a.Scaler == nil {
		return nil, errors.New("artifact carries no scaler")
	}
	if !a.Scaler.Equal(scaler) {
		return nil, errors.New("scaler statistics differ from the serving scaler")
	}
	return cls, nil
}

// swapFromPath loads the artifact and, when it is compatible with the
// serving fleet, swaps its classifier in.
func swapFromPath(cfg WatchConfig) (artifact.Metadata, error) {
	a, err := artifact.Load(cfg.Path)
	if err != nil {
		return artifact.Metadata{}, err
	}
	cls, err := ServableModel(a, cfg.Window, cfg.Sensors, cfg.Scaler)
	if err != nil {
		return artifact.Metadata{}, err
	}
	// The replacement model brings its own drift calibration (or none):
	// swapping both together keeps open-set verdicts coherent — thresholds
	// calibrated on the outgoing model's probability distribution must
	// never score the incoming model.
	if err := cfg.Monitor.SwapClassifierDrift(cls, a.Drift); err != nil {
		return artifact.Metadata{}, err
	}
	return a.Meta, nil
}
