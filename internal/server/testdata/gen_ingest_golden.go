//go:build ignore

// Regenerates ingest_golden.bin, the committed binary-framed ingest
// capture pinned byte-for-byte by TestGoldenBinaryIngestCapture:
//
//	go run internal/server/testdata/gen_ingest_golden.go
//
// The capture deliberately mixes clean samples with every record-local
// defect class: if the framing bytes or the decoder's semantics drift,
// the golden test fails before any client does.
package main

import (
	"encoding/binary"
	"math"
	"os"

	"repro/internal/wire"
)

func main() {
	var b []byte
	// 1, 2: ordinary accepted samples (width 3 matches the test fleet).
	b = wire.AppendIngestRecord(b, 7, []float64{1.5, -2.25, 3.125})
	b = wire.AppendIngestRecord(b, 0, []float64{0.1, 0.2, 0.3})
	// 3: zero-length frame (record-local reject).
	b = binary.LittleEndian.AppendUint32(b, 0)
	// 4: NaN with a payload, +Inf, -Inf — bits must survive verbatim.
	b = wire.AppendIngestRecord(b, 42, []float64{
		math.Float64frombits(0x7ff8000000000001), math.Inf(1), math.Inf(-1),
	})
	// 5: payload shorter than the 10-byte header.
	b = binary.LittleEndian.AppendUint32(b, 5)
	b = append(b, 0xde, 0xad, 0xbe, 0xef, 0x01)
	// 6: length/count mismatch: 18-byte payload declaring 5 values.
	b = binary.LittleEndian.AppendUint32(b, 18)
	b = binary.LittleEndian.AppendUint64(b, 11)
	b = binary.LittleEndian.AppendUint16(b, 5)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(4.5))
	// 7: negative job (decoded fine, rejected by the server).
	b = wire.AppendIngestRecord(b, -3, []float64{1})
	// 8: zero values (decoded fine, rejected by the server).
	b = wire.AppendIngestRecord(b, 9, nil)
	// 9: extreme magnitudes — denormal, negative zero, 1e308.
	b = wire.AppendIngestRecord(b, 1000000, []float64{5e-324, math.Copysign(0, -1), 1e308})
	if err := os.WriteFile("internal/server/testdata/ingest_golden.bin", b, 0o644); err != nil {
		panic(err)
	}
}
