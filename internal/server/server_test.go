package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/stream"
)

const (
	testWindow  = 6
	testSensors = 3
)

// fixture builds a scaler fitted for the test window shape and a small
// random forest over the matching covariance-embedding dimension.
func fixture(t testing.TB) (*preprocess.StandardScaler, *forest.Classifier) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	train := mat.New(40, testWindow*testSensors)
	for i := range train.Data {
		train.Data[i] = rng.NormFloat64()*3 + 5
	}
	var scaler preprocess.StandardScaler
	if _, err := scaler.FitTransform(train); err != nil {
		t.Fatal(err)
	}
	dim := preprocess.CovarianceDim(testSensors)
	x := mat.New(200, dim)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.Intn(4)
	}
	f := forest.New(forest.Config{NumTrees: 15, Bootstrap: true, Seed: 2})
	if err := f.Fit(x, y, 4); err != nil {
		t.Fatal(err)
	}
	return &scaler, f
}

// jobSamples derives a deterministic telemetry stream for one job.
func jobSamples(jobID, n int) [][]float64 {
	rng := rand.New(rand.NewSource(int64(jobID)*7919 + 3))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, testSensors)
		for c := range s {
			s[c] = rng.NormFloat64()*2 + 4
		}
		out[i] = s
	}
	return out
}

// predictionEqual compares two predictions bit for bit.
func predictionEqual(a, b *stream.Prediction) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Class != b.Class || a.Probability != b.Probability || len(a.Probs) != len(b.Probs) {
		return false
	}
	for i := range a.Probs {
		if a.Probs[i] != b.Probs[i] {
			return false
		}
	}
	return true
}

// baseline replays samples through a fresh single-job stream.Monitor.
func baseline(t testing.TB, scaler *preprocess.StandardScaler, model stream.Classifier, samples [][]float64) *stream.Prediction {
	t.Helper()
	emb, err := stream.NewWindowedEmbedder(testWindow, testSensors, scaler)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := emb.Push(s); err != nil {
			t.Fatal(err)
		}
	}
	pred, err := (&stream.Monitor{Embedder: emb, Model: model}).Classify()
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

// newTestServer builds a monitor + serving layer with a very long tick
// cadence, so tests control inference timing via runTick and Close.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *fleet.Monitor, *httptest.Server) {
	t.Helper()
	scaler, model := fixture(t)
	m, err := fleet.New(fleet.Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Monitor:    m,
		ClassNames: []string{"c0", "c1", "c2", "c3"},
		TickEvery:  time.Hour,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, m, ts
}

func postNDJSON(t *testing.T, url, body string) (*http.Response, ingestResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir ingestResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, ir
}

func sampleLine(job int, values []float64) string {
	b, _ := json.Marshal(struct {
		Job    int       `json:"job"`
		Values []float64 `json:"values"`
	}{job, values})
	return string(b)
}

// TestIngestErrorAccounting is the end-to-end error-path contract: a
// malformed NDJSON line and a wrong-width sample produce structured
// per-line errors without poisoning the batch's valid samples.
func TestIngestErrorAccounting(t *testing.T) {
	_, m, ts := newTestServer(t, nil)

	s1 := jobSamples(1, testWindow)
	s3 := jobSamples(3, 1)
	body := strings.Join([]string{
		sampleLine(1, s1[0]),
		`{not json`,
		sampleLine(2, []float64{1, 2}), // wrong width: rejected by the fleet
		`{"values":[1,2,3]}`,           // missing job
		"",                             // blank lines are skipped, not errors
		sampleLine(3, s3[0]),
	}, "\n")

	resp, ir := postNDJSON(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ir.Accepted != 2 || ir.Rejected != 3 {
		t.Fatalf("accounting %+v, want accepted 2 / rejected 3", ir)
	}
	wantLines := []int{2, 3, 4}
	if len(ir.Errors) != len(wantLines) {
		t.Fatalf("errors %+v, want lines %v", ir.Errors, wantLines)
	}
	for i, le := range ir.Errors {
		if le.Line != wantLines[i] || le.Error == "" {
			t.Fatalf("error %d = %+v, want line %d with a message", i, le, wantLines[i])
		}
	}
	if n := m.SamplesIngested(); n != 2 {
		t.Fatalf("monitor ingested %d samples, want 2", n)
	}

	// The valid samples survived: finish job 1's window and classify.
	var rest []string
	for _, s := range s1[1:] {
		rest = append(rest, sampleLine(1, s))
	}
	resp, ir = postNDJSON(t, ts.URL, strings.Join(rest, "\n"))
	if resp.StatusCode != http.StatusOK || ir.Rejected != 0 || ir.Accepted != testWindow-1 {
		t.Fatalf("follow-up batch: status %d, accounting %+v", resp.StatusCode, ir)
	}
	if err := pingTick(m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Prediction(1); !ok {
		t.Fatal("job 1 should classify after its window filled")
	}
}

func pingTick(m *fleet.Monitor) error {
	_, err := m.Tick()
	return err
}

// TestIngestBackpressure fills the bounded queue while the single worker is
// held, and requires the next request to be refused with 429 + Retry-After
// rather than queued without bound.
func TestIngestBackpressure(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s, _, ts := newTestServer(t, func(cfg *Config) {
		cfg.QueueDepth = 1
		cfg.Workers = 1
		cfg.RetryAfter = 3 * time.Second
		cfg.testHook = func() {
			entered <- struct{}{}
			<-release
		}
	})
	var relOnce sync.Once
	rel := func() { relOnce.Do(func() { close(release) }) }
	defer rel() // unblock workers even on a failing path, or Cleanup deadlocks

	line := sampleLine(1, jobSamples(1, 1)[0])
	results := make(chan int, 2)
	post := func() {
		resp, _ := postNDJSON(t, ts.URL, line)
		results <- resp.StatusCode
	}

	go post() // occupies the worker
	<-entered
	go post() // occupies the queue's single slot
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second batch never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with a full queue, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want %q", ra, "3")
	}

	rel()
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("held request finished with %d, want 200", code)
		}
	}
}

// TestReadEndpoints covers prediction reads, the fleet snapshot, job end,
// health and metrics over real HTTP.
func TestReadEndpoints(t *testing.T) {
	s, m, ts := newTestServer(t, nil)

	samples := jobSamples(4, testWindow)
	var lines []string
	for _, smp := range samples {
		lines = append(lines, sampleLine(4, smp))
	}
	if resp, ir := postNDJSON(t, ts.URL, strings.Join(lines, "\n")); resp.StatusCode != 200 || ir.Accepted != testWindow {
		t.Fatalf("ingest: %d / %+v", resp.StatusCode, ir)
	}
	if err := s.runTick(fullTick); err != nil {
		t.Fatal(err)
	}

	// Full prediction read, bit-identical through JSON.
	resp, err := http.Get(ts.URL + "/v1/jobs/4/prediction")
	if err != nil {
		t.Fatal(err)
	}
	var pr predictionResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prediction status %d", resp.StatusCode)
	}
	want, _ := m.Prediction(4)
	got := &stream.Prediction{Class: pr.Class, Probability: pr.Probability, Probs: pr.Probs}
	if !predictionEqual(got, want) {
		t.Fatalf("HTTP prediction %+v differs from monitor %+v", pr, want)
	}
	if pr.Job != 4 || pr.ClassName != fmt.Sprintf("c%d", pr.Class) {
		t.Fatalf("prediction envelope %+v", pr)
	}

	// Unknown and malformed job IDs.
	for path, wantCode := range map[string]int{
		"/v1/jobs/99/prediction":  http.StatusNotFound,
		"/v1/jobs/abc/prediction": http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantCode)
		}
	}

	// Fleet snapshot.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshotResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Count != 1 || len(snap.Jobs) != 1 {
		t.Fatalf("snapshot %+v, want exactly job 4", snap)
	}
	row := snap.Jobs[0]
	if row.Job != 4 || !row.Ready || row.Samples != testWindow || row.Class == nil ||
		*row.Class != want.Class || row.Probability != want.Probability || row.LastSeenUnixMS == 0 {
		t.Fatalf("snapshot row %+v", row)
	}

	// Health: serving shape for load drivers.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hr.Status != "ok" || hr.Jobs != 1 || hr.Window != testWindow || hr.Sensors != testSensors {
		t.Fatalf("healthz %+v", hr)
	}

	// Metrics: the counters the dashboard scrapes.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"wcc_samples_ingested_total 6",
		"wcc_classifications_total 1",
		"wcc_jobs 1",
		"wcc_ingest_queue_capacity 256",
		`wcc_tick_latency_seconds{quantile="0.95"}`,
		"wcc_model_swaps_total 0",
		"wcc_jobs_evicted_total 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// End the job over HTTP: final classification comes back, slot is freed.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/4", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var er endJobResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !er.Ended || er.Class == nil || *er.Class != want.Class {
		t.Fatalf("end job: status %d, %+v", resp.StatusCode, er)
	}
	if m.NumJobs() != 0 {
		t.Fatal("registry should be empty after DELETE")
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double DELETE: status %d, want 404", resp.StatusCode)
	}
}

// TestCloseFlushesPendingWindows pins graceful drain: samples whose windows
// filled after the last cadence tick are still classified by Close's final
// flush tick.
func TestCloseFlushesPendingWindows(t *testing.T) {
	s, m, ts := newTestServer(t, nil) // TickEvery is an hour: no cadence ticks
	var lines []string
	for _, smp := range jobSamples(9, testWindow) {
		lines = append(lines, sampleLine(9, smp))
	}
	if resp, ir := postNDJSON(t, ts.URL, strings.Join(lines, "\n")); resp.StatusCode != 200 || ir.Accepted != testWindow {
		t.Fatalf("ingest: %d / %+v", resp.StatusCode, ir)
	}
	if _, ok := m.Prediction(9); ok {
		t.Fatal("no tick ran; prediction should not exist yet")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Prediction(9); !ok {
		t.Fatal("drain must flush the pending window into a prediction")
	}

	// Ingest after drain is refused; reads keep working.
	resp, _ := postNDJSON(t, ts.URL, lines[0])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest after Close: status %d, want 503", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/v1/jobs/9/prediction")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("read after Close: status %d, want 200", resp2.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
}

// TestIngestBodyTooLarge pins the request-level failure mode: an oversized
// batch is rejected whole with 413 before anything is ingested.
func TestIngestBodyTooLarge(t *testing.T) {
	_, m, ts := newTestServer(t, func(cfg *Config) { cfg.MaxBodyBytes = 64 })
	line := sampleLine(1, jobSamples(1, 1)[0])
	resp, _ := postNDJSON(t, ts.URL, strings.Repeat(line+"\n", 10))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if n := m.SamplesIngested(); n != 0 {
		t.Fatalf("oversized request ingested %d samples, want 0", n)
	}
}

// TestIdleEvictionLoop wires Config.EvictAfter end to end: an idle job
// disappears from the registry and the eviction is visible in /metrics.
func TestIdleEvictionLoop(t *testing.T) {
	_, m, ts := newTestServer(t, func(cfg *Config) {
		cfg.EvictAfter = 10 * time.Millisecond
		cfg.EvictEvery = 2 * time.Millisecond
	})
	if resp, ir := postNDJSON(t, ts.URL, sampleLine(1, jobSamples(1, 1)[0])); resp.StatusCode != 200 || ir.Accepted != 1 {
		t.Fatalf("ingest: %d / %+v", resp.StatusCode, ir)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.NumJobs() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle job was never evicted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if m.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", m.Evictions())
	}
}
