package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/events"
)

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	event string
	id    string
	data  string
}

// readSSE parses frames off an event stream, sending each complete frame on
// the returned channel until the stream ends. A scanner read error is
// surfaced as a final "read-error" frame rather than a silent stop, so a
// test waiting on a frame that never arrives fails on the error, not the
// deadline. (Tests that close the response body to end a subscription see
// that close as a read-error frame after the frames they asserted on.)
func readSSE(r io.Reader) <-chan sseFrame {
	ch := make(chan sseFrame, 64)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(r)
		var f sseFrame
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if f.event != "" || f.data != "" {
					ch <- f
				}
				f = sseFrame{}
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "id: "):
				f.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "data: "):
				f.data = strings.TrimPrefix(line, "data: ")
			}
		}
		if err := sc.Err(); err != nil {
			ch <- sseFrame{event: "read-error", data: err.Error()}
		}
	}()
	return ch
}

// nextFrame receives one frame or fails the test after a timeout.
func nextFrame(t *testing.T, ch <-chan sseFrame) sseFrame {
	t.Helper()
	select {
	case f, ok := <-ch:
		if !ok {
			t.Fatal("event stream closed early")
		}
		return f
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for an SSE frame")
	}
	panic("unreachable")
}

// TestEventsSSEStream drives the push plane end to end over HTTP: ingest
// classifies a job (prediction event), a hot-swap follows (swap event), and
// the stream delivers both with SSE framing — event name, id = bus
// sequence, JSON payload carrying the generation.
func TestEventsSSEStream(t *testing.T) {
	s, m, ts := newTestServer(t, nil)

	resp, err := http.Get(ts.URL + "/v1/events?type=prediction,swap")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	frames := readSSE(resp.Body)

	var lines []string
	for _, sample := range jobSamples(1, testWindow) {
		b, _ := json.Marshal(map[string]any{"job": 1, "values": sample})
		lines = append(lines, string(b))
	}
	postNDJSON(t, ts.URL, strings.Join(lines, "\n"))
	if err := s.runTick(fullTick); err != nil {
		t.Fatal(err)
	}

	f := nextFrame(t, frames)
	if f.event != "prediction" || f.id == "" {
		t.Fatalf("first frame = %+v, want a prediction with an id", f)
	}
	var pred events.Event
	if err := json.Unmarshal([]byte(f.data), &pred); err != nil {
		t.Fatalf("prediction payload: %v", err)
	}
	if pred.Job == nil || *pred.Job != 1 || pred.Gen != 0 {
		t.Fatalf("prediction payload = %+v", pred)
	}

	_, model2 := fixture(t)
	if err := m.SwapClassifier(model2); err != nil {
		t.Fatal(err)
	}
	f = nextFrame(t, frames)
	if f.event != "swap" {
		t.Fatalf("frame after swap = %+v", f)
	}
	var swap events.Event
	if err := json.Unmarshal([]byte(f.data), &swap); err != nil {
		t.Fatal(err)
	}
	if swap.Gen != 1 || swap.Model == "" {
		t.Fatalf("swap payload = %+v", swap)
	}
}

// TestEventsSSEFilters pins the query validation and the job filter.
func TestEventsSSEFilters(t *testing.T) {
	s, _, ts := newTestServer(t, nil)

	for _, bad := range []string{"?type=bogus", "?job=notanumber", "?job=-3"} {
		resp, err := http.Get(ts.URL + "/v1/events" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/events%s = %d, want 400", bad, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/events?job=7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readSSE(resp.Body)
	// Give the handler a moment to subscribe before publishing.
	waitSubscribers(t, s, 1)
	s.bus.Publish(events.Event{Type: events.TypePrediction, Job: events.Intp(8), Class: events.Intp(0)})
	s.bus.Publish(events.Event{Type: events.TypePrediction, Job: events.Intp(7), Class: events.Intp(1)})
	s.bus.Publish(events.Event{Type: events.TypeSwap, Model: "m"})

	f := nextFrame(t, frames)
	var e events.Event
	if err := json.Unmarshal([]byte(f.data), &e); err != nil {
		t.Fatal(err)
	}
	if f.event != "prediction" || e.Job == nil || *e.Job != 7 {
		t.Fatalf("job-filtered stream delivered %+v", f)
	}
	// Fleet-scoped events still flow through a job filter.
	if f = nextFrame(t, frames); f.event != "swap" {
		t.Fatalf("job-filtered stream missed the swap, got %+v", f)
	}
}

// waitSubscribers blocks until the bus reports n live subscribers.
func waitSubscribers(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.bus.Stats().Subscribers != n {
		if time.Now().After(deadline) {
			t.Fatalf("bus never reached %d subscribers (have %d)", n, s.bus.Stats().Subscribers)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestEventsSlowClientEvicted is the serving-side half of the slow-client
// policy, meaningful under -race: a subscriber that never reads is evicted
// when its bounded queue overflows, the publisher (the tick write-back
// path) never blocks, and the handler goroutine does not leak once the
// connection dies.
func TestEventsSlowClientEvicted(t *testing.T) {
	s, _, ts := newTestServer(t, func(c *Config) { c.EventBuffer = 2 })
	before := runtime.NumGoroutine()

	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	waitSubscribers(t, s, 1)

	// Never read resp.Body: the handler stalls once the kernel socket
	// buffers fill, the subscription queue (capacity 2) overflows, and the
	// bus must evict. Publishing must stay non-blocking throughout — this
	// is the tick write-back path's guarantee.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200000 && s.bus.Stats().Evicted == 0; i++ {
			s.bus.Publish(events.Event{Type: events.TypePrediction, Job: events.Intp(i), Class: events.Intp(0)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on a stalled SSE subscriber")
	}
	st := s.bus.Stats()
	if st.Evicted != 1 || st.Subscribers != 0 {
		t.Fatalf("after stall: %+v, want 1 eviction and 0 subscribers", st)
	}

	// Killing the dead connection must free the handler goroutine.
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines: %d before stream, %d after close", before, g)
	}
}

// TestCloseStreamsEndsSSE pins the graceful-drain contract: CloseStreams
// ends every open event stream, so http.Server.Shutdown is never held open
// by a long-lived subscriber.
func TestCloseStreamsEndsSSE(t *testing.T) {
	s, _, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitSubscribers(t, s, 1)
	s.CloseStreams()
	ended := make(chan struct{})
	go func() {
		io.Copy(io.Discard, resp.Body)
		close(ended)
	}()
	select {
	case <-ended:
	case <-time.After(5 * time.Second):
		t.Fatal("stream still open after CloseStreams")
	}
}

// TestTraceEndpoint drives samples through the HTTP ingest path and a tick,
// then checks /v1/trace reports every pipeline stage that ran, with spans.
func TestTraceEndpoint(t *testing.T) {
	s, _, ts := newTestServer(t, nil)
	var lines []string
	for _, sample := range jobSamples(3, testWindow) {
		b, _ := json.Marshal(map[string]any{"job": 3, "values": sample})
		lines = append(lines, string(b))
	}
	postNDJSON(t, ts.URL, strings.Join(lines, "\n"))
	if err := s.runTick(fullTick); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr traceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"parse": true, "queue": true, "ingest": true, "collect": true, "classify": true, "writeback": true}
	got := map[string]uint64{}
	for _, st := range tr.Stages {
		got[st.Stage] = st.Count
	}
	for stage := range want {
		if got[stage] == 0 {
			t.Fatalf("stage %q recorded no observations: %+v", stage, got)
		}
	}
	if len(tr.Spans) == 0 {
		t.Fatal("trace endpoint returned no spans")
	}
	for _, sp := range tr.Spans {
		if !want[sp.Stage] || sp.StartUnixMS == 0 {
			t.Fatalf("malformed span %+v", sp)
		}
	}
}

// TestDashboardServed pins the embedded dashboard: the root path serves the
// single-file UI, and only the root path does.
func TestDashboardServed(t *testing.T) {
	_, _, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET / = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"Workload classification fleet", "/v1/events", "/v1/trace"} {
		if !strings.Contains(string(body), needle) {
			t.Fatalf("dashboard page missing %q", needle)
		}
	}
	// The {$} pattern keeps other unmatched paths 404, not dashboard copies.
	other, err := http.Get(ts.URL + "/not-a-route")
	if err != nil {
		t.Fatal(err)
	}
	other.Body.Close()
	if other.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /not-a-route = %d, want 404", other.StatusCode)
	}
}

// TestMetricsStageHistogramAndEventCounters pins the new /metrics series:
// proper histogram exposition for the stage recorder and the event-bus
// counters.
func TestMetricsStageHistogramAndEventCounters(t *testing.T) {
	s, _, ts := newTestServer(t, nil)
	var lines []string
	for _, sample := range jobSamples(4, testWindow) {
		b, _ := json.Marshal(map[string]any{"job": 4, "values": sample})
		lines = append(lines, string(b))
	}
	postNDJSON(t, ts.URL, strings.Join(lines, "\n"))
	if err := s.runTick(fullTick); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, needle := range []string{
		`wcc_stage_latency_seconds_bucket{stage="classify",le="+Inf"}`,
		`wcc_stage_latency_seconds_sum{stage="parse"}`,
		`wcc_stage_latency_seconds_count{stage="ingest"}`,
		"wcc_events_published_total",
		"wcc_events_dropped_total",
		"wcc_event_subscribers",
	} {
		if !strings.Contains(text, needle) {
			t.Fatalf("/metrics missing %q", needle)
		}
	}
}
