package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/events"
)

// sseWriteTimeout bounds one SSE frame write. The bus already evicts a
// subscriber whose queue overflows; this bounds the other half of a stalled
// client — a handler goroutine blocked in a TCP write whose socket buffer
// never drains — so eviction always frees the goroutine, not just the slot.
const sseWriteTimeout = 30 * time.Second

// handleEvents serves GET /v1/events: the fleet's push plane as a
// Server-Sent Events stream. Query parameters filter the feed —
// ?type=a,b,c keeps only those event types, ?job=N keeps job-scoped events
// for that job (fleet-scoped events still deliver). Each event is framed as
//
//	event: <type>
//	id: <seq>
//	data: <JSON event>
//
// with periodic ": keep-alive" comments. A subscriber that stops reading is
// evicted when its queue overflows: the stream ends with an "eviction"
// event; reconnect and catch up from GET /v1/jobs.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	opts := events.SubOptions{Buffer: s.cfg.EventBuffer}
	if raw := r.URL.Query().Get("type"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			t := events.Type(strings.TrimSpace(part))
			if !knownEventType(t) {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown event type %q", t))
				return
			}
			opts.Types = append(opts.Types, t)
		}
	}
	if raw := r.URL.Query().Get("job"); raw != "" {
		id, err := strconv.Atoi(raw)
		if err != nil || id < 0 {
			writeError(w, http.StatusBadRequest, "job must be a non-negative integer")
			return
		}
		opts.Job = events.Intp(id)
	}

	sub := s.bus.Subscribe(opts)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	fmt.Fprintf(w, "retry: 2000\n: gen %d\n\n", s.bus.Gen())
	fl.Flush()

	hb := time.NewTicker(s.cfg.EventHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.streamsStop:
			return
		case <-hb.C:
			rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
			if _, err := io.WriteString(w, ": keep-alive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case e, open := <-sub.Events():
			if !open {
				// Evicted for falling behind: tell the client why the
				// stream ends (best effort — it wasn't reading).
				rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
				io.WriteString(w, "event: eviction\ndata: {\"reason\":\"subscriber queue overflow\"}\n\n")
				fl.Flush()
				return
			}
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
			if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", e.Type, e.Seq, data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func knownEventType(t events.Type) bool {
	for _, k := range events.Types() {
		if t == k {
			return true
		}
	}
	return false
}

// traceStage is one pipeline stage's latency summary in a trace response.
type traceStage struct {
	Stage      string  `json:"stage"`
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	P50        float64 `json:"p50_seconds"`
	P95        float64 `json:"p95_seconds"`
	P99        float64 `json:"p99_seconds"`
}

// traceSpan is one sampled span in a trace response.
type traceSpan struct {
	Stage           string  `json:"stage"`
	StartUnixMS     int64   `json:"start_unix_ms"`
	DurationSeconds float64 `json:"duration_seconds"`
	Items           int     `json:"items"`
}

type traceResponse struct {
	// Stages summarises every pipeline stage's latency histogram, in
	// pipeline order; stages that never ran report zero counts.
	Stages []traceStage `json:"stages"`
	// Spans are the most recent recorded stage executions, oldest first.
	Spans []traceSpan `json:"spans"`
}

// handleTrace serves GET /v1/trace: per-stage latency summaries plus the
// recent-span sample — the JSON face of the same recorder /metrics renders
// as wcc_stage_latency_seconds histograms.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	snap := s.tracer.Snapshot()
	resp := traceResponse{Stages: make([]traceStage, 0, len(snap.Stages)), Spans: make([]traceSpan, 0, len(snap.Spans))}
	for _, st := range snap.Stages {
		resp.Stages = append(resp.Stages, traceStage{
			Stage:      st.Stage.String(),
			Count:      st.Count,
			SumSeconds: st.Sum,
			P50:        st.Quantile(0.50),
			P95:        st.Quantile(0.95),
			P99:        st.Quantile(0.99),
		})
	}
	for _, sp := range snap.Spans {
		resp.Spans = append(resp.Spans, traceSpan{
			Stage:           sp.Stage.String(),
			StartUnixMS:     sp.Start.UnixMilli(),
			DurationSeconds: sp.Dur.Seconds(),
			Items:           sp.Items,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
