package server

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/shard"
	"repro/internal/trace"
)

// handleMetrics renders Prometheus-style text metrics: monotonic counters
// for scrapers that compute their own rates, plus convenience gauges —
// samples/sec and classifications/sec over the interval since the previous
// scrape (since start on the first), and tick-latency quantiles over the
// last tickWindow ticks.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	samples := s.m.SamplesIngested()
	classed := s.m.Classifications()

	s.scrapeMu.Lock()
	since := s.start
	prevSamples, prevClassed := uint64(0), uint64(0)
	if !s.lastScrape.IsZero() {
		since = s.lastScrape
		prevSamples, prevClassed = s.lastSamples, s.lastClassed
	}
	dt := now.Sub(since).Seconds()
	var sampleRate, classRate float64
	if dt > 0 {
		sampleRate = float64(samples-prevSamples) / dt
		classRate = float64(classed-prevClassed) / dt
	}
	s.lastScrape, s.lastSamples, s.lastClassed = now, samples, classed
	s.scrapeMu.Unlock()

	// The tick ring is shared with every tick loop's hot path, so the
	// scrape must hold tickMu only to copy: the allocation happens before
	// taking the lock and the O(n log n) sort after releasing it — a slow
	// scraper never stretches the critical section a tick write sits behind.
	durs := make([]time.Duration, 0, tickWindow)
	s.tickMu.Lock()
	n := s.tickN
	if n > tickWindow {
		n = tickWindow
	}
	durs = append(durs, s.tickDur[:n]...)
	tickErrs := s.tickErrs
	s.tickMu.Unlock()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("wcc_samples_ingested_total", "Telemetry samples accepted into the fleet.", samples)
	counter("wcc_classifications_total", "Per-job classifications produced by inference ticks.", classed)
	counter("wcc_ticks_total", "Completed batched inference ticks.", s.m.Ticks())
	counter("wcc_tick_errors_total", "Inference ticks that returned an error.", tickErrs)
	counter("wcc_model_swaps_total", "Zero-downtime classifier hot-swaps.", s.m.Swaps())
	counter("wcc_jobs_evicted_total", "Jobs removed from the registry (EndJob or idle eviction).", s.m.Evictions())
	ds := s.m.DriftStats()
	counter("wcc_unknown_total", "Classifications rejected as unknown workloads by the open-set threshold.", ds.Unknowns)
	gauge("wcc_drift_score", "Fleet input-drift score: maximum per-sensor PSI against the training reference.", ds.Score)
	if ds.Enabled {
		fmt.Fprintf(w, "# HELP wcc_drift_sensor_psi Per-sensor PSI of live input against the training reference.\n# TYPE wcc_drift_sensor_psi gauge\n")
		for i, v := range ds.SensorPSI {
			fmt.Fprintf(w, "wcc_drift_sensor_psi{sensor=\"%d\"} %g\n", i, v)
		}
	}
	counter("wcc_ingest_throttled_total", "Ingest requests answered 429 because the queue was full.", s.throttled.Load())
	counter("wcc_ingest_line_errors_total", "Ingest lines rejected (malformed or unacceptable samples).", s.lineErrs.Load())
	gauge("wcc_jobs", "Jobs currently registered in the fleet.", float64(s.m.NumJobs()))
	gauge("wcc_ingest_queue_depth", "Parsed ingest batches waiting for a worker.", float64(len(s.queue)))
	gauge("wcc_ingest_queue_capacity", "Bound on queued ingest batches.", float64(cap(s.queue)))
	gauge("wcc_samples_per_second", "Ingest rate over the interval since the previous scrape.", sampleRate)
	gauge("wcc_classifications_per_second", "Classification rate over the interval since the previous scrape.", classRate)
	gauge("wcc_uptime_seconds", "Seconds since the serving layer started.", time.Since(s.start).Seconds())

	if s.cfg.Adapt != nil {
		s.writeAdaptMetrics(w, counter, gauge)
	}

	es := s.bus.Stats()
	counter("wcc_events_published_total", "Events published on the push-plane bus.", es.Published)
	counter("wcc_events_dropped_total", "Events a subscriber missed because its queue was full.", es.Dropped)
	counter("wcc_event_subscribers_evicted_total", "Event subscribers evicted for falling behind.", es.Evicted)
	gauge("wcc_event_subscribers", "Live /v1/events subscribers.", float64(es.Subscribers))

	fmt.Fprintf(w, "# HELP wcc_tick_latency_seconds Batched inference tick latency over the last %d ticks.\n", tickWindow)
	fmt.Fprintf(w, "# TYPE wcc_tick_latency_seconds summary\n")
	for _, q := range []float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(w, "wcc_tick_latency_seconds{quantile=%q} %g\n", fmt.Sprintf("%g", q), quantile(durs, q).Seconds())
	}

	s.writeStageMetrics(w)

	if s.sharded != nil {
		s.writeShardMetrics(w)
	}
}

// writeAdaptMetrics renders the continual-learning flywheel's state: the
// lifecycle phase as a one-hot labelled gauge (so dashboards can plot the
// state machine), buffer/family/candidate gauges, shadow-scoring evidence,
// and the promotion/abort counters.
func (s *Server) writeAdaptMetrics(w http.ResponseWriter, counter func(name, help string, v uint64), gauge func(name, help string, v float64)) {
	st := s.cfg.Adapt.Status()

	fmt.Fprintf(w, "# HELP wcc_adapt_phase Flywheel lifecycle phase (one-hot: buffer, train, shadow, promoted, aborted).\n# TYPE wcc_adapt_phase gauge\n")
	for _, p := range []string{"buffer", "train", "shadow", "promoted", "aborted"} {
		v := 0
		if string(st.Phase) == p {
			v = 1
		}
		fmt.Fprintf(w, "wcc_adapt_phase{phase=%q} %d\n", p, v)
	}
	counter("wcc_adapt_observed_windows_total", "Live windows observed by the flywheel.", st.Observed)
	gauge("wcc_adapt_buffered", "Rejected windows currently in the reservoir.", float64(st.Buffered))
	gauge("wcc_adapt_buffer_capacity", "Reservoir capacity.", float64(st.BufferedCap))
	counter("wcc_adapt_buffer_dropped_total", "Rejected windows reservoir-sampled away after the buffer filled.", st.Dropped)
	gauge("wcc_adapt_families", "Candidate new-workload families from the last clustering pass.", float64(len(st.Families)))
	if st.Candidate != nil {
		gauge("wcc_adapt_candidate_classes", "Classes in the candidate model (base plus novel).", float64(st.Candidate.Classes))
		gauge("wcc_adapt_candidate_novel_classes", "Novel classes the candidate adds.", float64(st.Candidate.Novel))
	}
	if st.Shadow != nil {
		counter("wcc_adapt_shadow_windows_total", "Live windows shadow-scored by the candidate.", st.Shadow.Windows)
		counter("wcc_adapt_shadow_compared_total", "Serving-accepted windows in the agreement denominator.", st.Shadow.Compared)
		gauge("wcc_adapt_shadow_agreement", "Candidate/serving class agreement on accepted windows.", st.Shadow.Agreement)
		gauge("wcc_adapt_serving_unknown_rate", "Serving model's rejected fraction of shadow-scored windows.", st.Shadow.ServingUnknownRate)
		gauge("wcc_adapt_candidate_unknown_rate", "Candidate model's rejected fraction of shadow-scored windows.", st.Shadow.CandidateUnknownRate)
	}
	gateReady := 0.0
	if st.GateReady {
		gateReady = 1
	}
	gauge("wcc_adapt_gate_ready", "1 when the shadow candidate passes the promotion quality gate.", gateReady)
	counter("wcc_adapt_promotions_total", "Candidates promoted into serving.", st.Promotions)
	counter("wcc_adapt_aborts_total", "Candidates discarded by operator abort.", st.Aborts)
}

// writeStageMetrics renders the per-stage serving-latency histograms as
// proper Prometheus histogram series — cumulative _bucket rows per le
// bound, _sum and _count — one set per pipeline stage that has recorded at
// least one span.
func (s *Server) writeStageMetrics(w http.ResponseWriter) {
	snap := s.tracer.Snapshot()
	fmt.Fprintf(w, "# HELP wcc_stage_latency_seconds Per-stage serving pipeline latency (parse, queue, ingest, collect, classify, writeback).\n")
	fmt.Fprintf(w, "# TYPE wcc_stage_latency_seconds histogram\n")
	for _, st := range snap.Stages {
		if st.Count == 0 {
			continue
		}
		name := st.Stage.String()
		for i, ub := range trace.Buckets {
			fmt.Fprintf(w, "wcc_stage_latency_seconds_bucket{stage=%q,le=\"%g\"} %d\n", name, ub, st.Cumulative[i])
		}
		fmt.Fprintf(w, "wcc_stage_latency_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", name, st.Count)
		fmt.Fprintf(w, "wcc_stage_latency_seconds_sum{stage=%q} %g\n", name, st.Sum)
		fmt.Fprintf(w, "wcc_stage_latency_seconds_count{stage=%q} %d\n", name, st.Count)
	}
}

// writeShardMetrics renders the per-shard series of a sharded fleet, one
// HELP/TYPE block per metric with a shard label per series, so a scraper
// can spot a cold or overloaded shard that the fleet-wide sums average
// away.
func (s *Server) writeShardMetrics(w http.ResponseWriter) {
	per := s.sharded.ShardStats()
	fmt.Fprintf(w, "# HELP wcc_shards Monitor shards in the serving core.\n# TYPE wcc_shards gauge\nwcc_shards %d\n", len(per))
	shardCounter := func(name, help string, v func(shard.Stats) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for i, st := range per {
			fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", name, i, v(st))
		}
	}
	fmt.Fprintf(w, "# HELP wcc_shard_jobs Jobs currently registered on the shard.\n# TYPE wcc_shard_jobs gauge\n")
	for i, st := range per {
		fmt.Fprintf(w, "wcc_shard_jobs{shard=\"%d\"} %d\n", i, st.Jobs)
	}
	shardCounter("wcc_shard_samples_ingested_total", "Telemetry samples accepted by the shard.",
		func(st shard.Stats) uint64 { return st.Samples })
	shardCounter("wcc_shard_classifications_total", "Per-job classifications produced by the shard's ticks.",
		func(st shard.Stats) uint64 { return st.Classifications })
	shardCounter("wcc_shard_ticks_total", "Completed inference passes on the shard.",
		func(st shard.Stats) uint64 { return st.Ticks })
	shardCounter("wcc_shard_jobs_evicted_total", "Jobs removed from the shard's registry.",
		func(st shard.Stats) uint64 { return st.Evictions })
}

// quantile returns the nearest-rank q-quantile of sorted durations.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
