package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/wire"
)

// binaryTestServer starts a served fixture fleet whose ticks only happen on
// Close, so tests control exactly when windows are classified.
func binaryTestServer(t *testing.T) (*Server, *fleet.Monitor, *httptest.Server) {
	t.Helper()
	scaler, model := fixture(t)
	m, err := fleet.New(fleet.Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Monitor: m, TickEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, m, ts
}

func postIngest(t *testing.T, url, contentType string, body []byte) (int, ingestResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir ingestResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, ir
}

// TestBinaryIngestMatchesNDJSON is the framing equivalence invariant:
// replaying the same samples through NDJSON and through binary frames must
// leave two fleets with bit-identical predictions for every job, and
// identical accept/reject accounting on the way in. json.Marshal emits the
// shortest round-tripping decimal for a float64, so both framings deliver
// the same bits to the fleet.
func TestBinaryIngestMatchesNDJSON(t *testing.T) {
	const jobs, perJob = 4, testWindow + 3
	srvA, _, tsA := binaryTestServer(t) // NDJSON
	srvB, _, tsB := binaryTestServer(t) // binary

	var ndjson bytes.Buffer
	var bin []byte
	for i := 0; i < perJob; i++ {
		for j := 0; j < jobs; j++ {
			vals := jobSamples(j, perJob)[i]
			line, err := json.Marshal(struct {
				Job    int       `json:"job"`
				Values []float64 `json:"values"`
			}{j, vals})
			if err != nil {
				t.Fatal(err)
			}
			ndjson.Write(line)
			ndjson.WriteByte('\n')
			bin = wire.AppendIngestRecord(bin, int64(j), vals)
		}
	}

	code, ir := postIngest(t, tsA.URL, "application/x-ndjson", ndjson.Bytes())
	if code != http.StatusOK || ir.Accepted != jobs*perJob || ir.Rejected != 0 {
		t.Fatalf("NDJSON ingest: status %d, accounting %+v", code, ir)
	}
	code, ir = postIngest(t, tsB.URL, wire.IngestContentType, bin)
	if code != http.StatusOK || ir.Accepted != jobs*perJob || ir.Rejected != 0 {
		t.Fatalf("binary ingest: status %d, accounting %+v", code, ir)
	}

	// Close flushes the pending windows through one final tick each.
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srvB.Close(); err != nil {
		t.Fatal(err)
	}

	for j := 0; j < jobs; j++ {
		var preds [2]predictionResponse
		for i, ts := range []*httptest.Server{tsA, tsB} {
			resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/prediction", ts.URL, j))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("job %d via server %d: status %d", j, i, resp.StatusCode)
			}
			if err := json.NewDecoder(resp.Body).Decode(&preds[i]); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		a, b := preds[0], preds[1]
		if a.Class != b.Class || math.Float64bits(a.Probability) != math.Float64bits(b.Probability) {
			t.Fatalf("job %d: NDJSON (%d, %v) vs binary (%d, %v)", j, a.Class, a.Probability, b.Class, b.Probability)
		}
		if len(a.Probs) != len(b.Probs) {
			t.Fatalf("job %d: probs width %d vs %d", j, len(a.Probs), len(b.Probs))
		}
		for k := range a.Probs {
			if math.Float64bits(a.Probs[k]) != math.Float64bits(b.Probs[k]) {
				t.Fatalf("job %d class %d: NDJSON %v vs binary %v", j, k, a.Probs[k], b.Probs[k])
			}
		}
	}
}

// TestGoldenBinaryIngestCapture pins the committed binary capture
// byte-for-byte: the fixture's exact size, every decoded record's job and
// value bits, every record-local rejection, and the accounting the HTTP
// handler produces from it. Regenerate with
// `go run internal/server/testdata/gen_ingest_golden.go` — and if this
// test then fails, the framing changed and needs a version bump, not a
// golden refresh.
func TestGoldenBinaryIngestCapture(t *testing.T) {
	body, err := os.ReadFile("testdata/ingest_golden.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 223 {
		t.Fatalf("golden capture is %d bytes, want 223", len(body))
	}

	type rec struct {
		job     int64
		bits    []uint64
		errPart string // non-empty: record must be rejected with this substring
	}
	want := []rec{
		{job: 7, bits: []uint64{0x3ff8000000000000, 0xc002000000000000, 0x4009000000000000}},
		{job: 0, bits: []uint64{
			math.Float64bits(0.1), math.Float64bits(0.2), math.Float64bits(0.3),
		}},
		{errPart: "zero-length frame"},
		{job: 42, bits: []uint64{0x7ff8000000000001, 0x7ff0000000000000, 0xfff0000000000000}},
		{errPart: "shorter than the 10-byte header"},
		{errPart: "declares 5 values"},
		{job: -3, bits: []uint64{0x3ff0000000000000}},
		{job: 9, bits: nil},
		{job: 1000000, bits: []uint64{0x1, 0x8000000000000000, math.Float64bits(1e308)}},
	}

	dec := wire.NewIngestDecoder(body)
	for i, w := range want {
		got, ok := dec.Next()
		if !ok {
			t.Fatalf("decoder ended at record %d of %d: %v", i+1, len(want), dec.Err())
		}
		if got.Index != i+1 {
			t.Fatalf("record %d decoded with index %d", i+1, got.Index)
		}
		if w.errPart != "" {
			if got.Err == nil || !strings.Contains(got.Err.Error(), w.errPart) {
				t.Fatalf("record %d: error %v, want substring %q", i+1, got.Err, w.errPart)
			}
			continue
		}
		if got.Err != nil {
			t.Fatalf("record %d: unexpected error %v", i+1, got.Err)
		}
		if got.Job != w.job {
			t.Fatalf("record %d: job %d, want %d", i+1, got.Job, w.job)
		}
		if len(got.Values) != len(w.bits) {
			t.Fatalf("record %d: %d values, want %d", i+1, len(got.Values), len(w.bits))
		}
		for k, bits := range w.bits {
			if g := math.Float64bits(got.Values[k]); g != bits {
				t.Fatalf("record %d value %d: bits %#x, want %#x", i+1, k, g, bits)
			}
		}
	}
	if _, ok := dec.Next(); ok {
		t.Fatal("decoder produced records beyond the golden capture")
	}
	if err := dec.Err(); err != nil {
		t.Fatalf("clean capture ended with framing error: %v", err)
	}

	// Through the handler: records 1 and 2 land (width matches the fixture
	// fleet); 3, 5, 6 are framing-local rejects; 7 (negative job) and 8 (no
	// values) are contract rejects; 4 (NaN) and 9 (1e308) die at the
	// fleet's sanity gate. Accounting must say exactly that.
	_, _, ts := binaryTestServer(t)
	code, ir := postIngest(t, ts.URL, wire.IngestContentType, body)
	if code != http.StatusOK {
		t.Fatalf("golden POST: status %d", code)
	}
	if ir.Accepted != 2 || ir.Rejected != 7 {
		t.Fatalf("golden accounting: %+v", ir)
	}
	var lines []int
	for _, le := range ir.Errors {
		lines = append(lines, le.Line)
	}
	if fmt.Sprint(lines) != "[3 4 5 6 7 8 9]" {
		t.Fatalf("rejected records %v, want [3 4 5 6 7 8 9]", lines)
	}
}

// TestBinaryIngestTruncation cuts a clean three-record body at every byte:
// a cut on a record boundary is a clean end of body (200, the complete
// prefix accepted), and a cut anywhere else breaks framing (400, nothing
// enqueued). No cut may panic or poison the batch with misframed samples.
func TestBinaryIngestTruncation(t *testing.T) {
	_, m, ts := binaryTestServer(t)
	var body []byte
	boundaries := map[int]int{0: 0} // byte offset -> complete records
	for r := 1; r <= 3; r++ {
		body = wire.AppendIngestRecord(body, int64(r), []float64{1, 2, 3})
		boundaries[len(body)] = r
	}
	for cut := 0; cut <= len(body); cut++ {
		code, ir := postIngest(t, ts.URL, wire.IngestContentType, body[:cut])
		if recs, ok := boundaries[cut]; ok {
			if code != http.StatusOK || ir.Accepted != recs || ir.Rejected != 0 {
				t.Fatalf("cut %d (boundary): status %d, accounting %+v", cut, code, ir)
			}
		} else if code != http.StatusBadRequest {
			t.Fatalf("cut %d (mid-record): status %d, want 400", cut, code)
		}
	}
	// The four boundary posts accepted 0, 1, 2 and 3 records; every other
	// cut enqueued nothing. The fleet must have seen exactly those 6
	// samples and no misframed fragment more.
	if got := m.SamplesIngested(); got != 6 {
		t.Fatalf("fleet ingested %d samples across truncations, want 6", got)
	}
}

// TestBinaryIngestOversizedPrefix pins the fatal path for a length prefix
// beyond the frame cap: the whole batch is rejected up front, even though
// a valid record precedes it.
func TestBinaryIngestOversizedPrefix(t *testing.T) {
	_, m, ts := binaryTestServer(t)
	body := wire.AppendIngestRecord(nil, 1, []float64{1, 2, 3})
	body = binary.LittleEndian.AppendUint32(body, wire.MaxIngestFramePayload+1)
	body = append(body, 0x01, 0x02)
	code, _ := postIngest(t, ts.URL, wire.IngestContentType, body)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized prefix: status %d, want 400", code)
	}
	if got := m.SamplesIngested(); got != 0 {
		t.Fatalf("fatal framing error still ingested %d samples", got)
	}
}
