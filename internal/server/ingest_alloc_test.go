package server

import "testing"

// TestParseIngestLineFastZeroAlloc pins the //wcc:hotpath contract on the
// NDJSON fast path: parsing a canonical line into a pre-grown arena
// allocates nothing. The first call may grow the arena; the measured
// calls reuse its capacity, which is exactly the steady state the pooled
// ingestScratch provides in serving.
func TestParseIngestLineFastZeroAlloc(t *testing.T) {
	raw := []byte(`{"job":42,"values":[1.5,2,32.5,-4,0.125,9e2,-0.5]}`)
	arena := make([]float64, 0, 64)

	sm, grown, ok := parseIngestLineFast(1, raw, arena[:0])
	if !ok || sm.job != 42 || len(sm.values) != 7 {
		t.Fatalf("fast path rejected canonical line: ok=%v req=%+v", ok, sm)
	}
	arena = grown[:0]

	bad := false
	allocs := testing.AllocsPerRun(200, func() {
		_, grown, ok := parseIngestLineFast(1, raw, arena)
		if !ok || len(grown) != 7 {
			bad = true
		}
	})
	if bad {
		t.Fatal("fast path rejected the canonical line during measurement")
	}
	if allocs != 0 {
		t.Fatalf("parseIngestLineFast allocates %.1f times per call, want 0", allocs)
	}
}
