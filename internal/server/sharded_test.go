package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/shard"
)

// newShardedServer builds a shard.Core-backed serving layer. The tick
// cadence is real (per-shard loops run), short enough that predictions
// appear promptly.
func newShardedServer(t *testing.T, shards int) (*Server, *shard.Core, *httptest.Server) {
	t.Helper()
	scaler, model := fixture(t)
	core, err := shard.New(shard.Config{
		Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Monitor:    core,
		ClassNames: []string{"c0", "c1", "c2", "c3"},
		TickEvery:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, core, ts
}

// TestShardedServerMatchesInProcessFleet serves a 4-shard core over real
// loopback HTTP — concurrent NDJSON clients, per-shard tick loops on their
// own cadence — and checks every prediction read through the API is
// bit-identical to an in-process single fleet.Monitor fed the same
// streams.
func TestShardedServerMatchesInProcessFleet(t *testing.T) {
	const (
		jobs    = 48
		perJob  = testWindow*2 + 3
		clients = 4
	)
	s, core, ts := newShardedServer(t, 4)

	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each client owns jobs ≡ w (mod clients): per-job sample order
			// rides one request stream.
			for j := w; j < jobs; j += clients {
				var lines []string
				for _, smp := range jobSamples(j, perJob) {
					lines = append(lines, sampleLine(j, smp))
				}
				resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(strings.Join(lines, "\n")))
				if err != nil {
					t.Error(err)
					return
				}
				var ir ingestResponse
				if resp.StatusCode == http.StatusOK {
					json.NewDecoder(resp.Body).Decode(&ir)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || ir.Accepted != perJob || ir.Rejected != 0 {
					t.Errorf("job %d: status %d, accounting %+v", j, resp.StatusCode, ir)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// Drain: queued batches land and a final whole-fleet tick flushes
	// every shard's pending windows.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := core.SamplesIngested(); got != uint64(jobs*perJob) {
		t.Fatalf("core ingested %d samples, want %d", got, jobs*perJob)
	}

	scaler, model := fixture(t)
	single, err := fleet.New(fleet.Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < jobs; j++ {
		for _, smp := range jobSamples(j, perJob) {
			if err := single.Ingest(j, smp); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := single.Tick(); err != nil {
		t.Fatal(err)
	}

	for j := 0; j < jobs; j++ {
		want, ok := single.Prediction(j)
		if !ok {
			t.Fatalf("job %d: baseline has no prediction", j)
		}
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/prediction", ts.URL, j))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d: prediction status %d", j, resp.StatusCode)
		}
		var pr predictionResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if pr.Class != want.Class || pr.Probability != want.Probability {
			t.Fatalf("job %d: served (%d, %v) vs in-process (%d, %v)",
				j, pr.Class, pr.Probability, want.Class, want.Probability)
		}
		for c := range want.Probs {
			if pr.Probs[c] != want.Probs[c] {
				t.Fatalf("job %d class %d: served %v vs in-process %v (not bit-identical)",
					j, c, pr.Probs[c], want.Probs[c])
			}
		}
	}
}

// TestShardedMetricsAndHealth pins the sharded observability surface:
// /healthz reports the shard count, and /metrics carries one shard-labelled
// series per shard for the per-shard metrics, consistent with the
// fleet-wide sums.
func TestShardedMetricsAndHealth(t *testing.T) {
	const shards = 3
	s, core, ts := newShardedServer(t, shards)

	var lines []string
	for j := 0; j < 16; j++ {
		for _, smp := range jobSamples(j, testWindow) {
			lines = append(lines, sampleLine(j, smp))
		}
	}
	if resp, ir := postNDJSON(t, ts.URL, strings.Join(lines, "\n")); resp.StatusCode != 200 || ir.Rejected != 0 {
		t.Fatalf("ingest: %d / %+v", resp.StatusCode, ir)
	}
	if err := s.Close(); err != nil { // drain so counters are settled
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Shards != shards {
		t.Fatalf("healthz shards = %d, want %d", h.Shards, shards)
	}
	if h.Jobs != 16 {
		t.Fatalf("healthz jobs = %d, want 16", h.Jobs)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, fmt.Sprintf("wcc_shards %d", shards)) {
		t.Fatalf("/metrics lacks wcc_shards gauge:\n%s", text)
	}
	for _, name := range []string{
		"wcc_shard_jobs", "wcc_shard_samples_ingested_total",
		"wcc_shard_classifications_total", "wcc_shard_ticks_total",
		"wcc_shard_jobs_evicted_total",
	} {
		for i := 0; i < shards; i++ {
			series := fmt.Sprintf("%s{shard=\"%d\"}", name, i)
			if !strings.Contains(text, series) {
				t.Fatalf("/metrics lacks %s:\n%s", series, text)
			}
		}
	}

	// Shard-labelled samples must sum to the fleet-wide counter.
	var sum uint64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "wcc_shard_samples_ingested_total{") {
			var v uint64
			if _, err := fmt.Sscanf(line[strings.Index(line, "} ")+2:], "%d", &v); err != nil {
				t.Fatalf("unparsable series %q", line)
			}
			sum += v
		}
	}
	if sum != core.SamplesIngested() {
		t.Fatalf("shard-labelled samples sum to %d, fleet-wide counter is %d", sum, core.SamplesIngested())
	}
}
