package server

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/fleet"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
)

// saveWatchArtifact writes a .wcc artifact with the given tool string (the
// padding knob the size-equalisation below turns).
func saveWatchArtifact(t *testing.T, path string, scaler *preprocess.StandardScaler, model *forest.Classifier, tool string) int64 {
	t.Helper()
	err := artifact.Save(path, &artifact.Artifact{
		Meta: artifact.Metadata{
			Features: "cov", Window: testWindow, Sensors: testSensors,
			Accuracy: 0.5, CreatedUnix: 1234, Tool: tool,
		},
		Scaler: scaler,
		Model:  model,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// altForest trains a second forest whose predictions differ from fixture's.
func altForest(t *testing.T) *forest.Classifier {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	dim := preprocess.CovarianceDim(testSensors)
	x := mat.New(200, dim)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.Intn(4)
	}
	f := forest.New(forest.Config{NumTrees: 9, MaxDepth: 5, Bootstrap: true, Seed: 77})
	if err := f.Fit(x, y, 4); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestWatchDetectsSameStatReplacement is the regression test for the
// stat-based watcher miss: a retrained artifact renamed into place with the
// same byte length and the same mtime as its predecessor must still be
// hot-swapped, because replacement detection now compares section CRCs via
// artifact.ReadInfo rather than os.Stat.
func TestWatchDetectsSameStatReplacement(t *testing.T) {
	scaler, modelA := fixture(t)
	modelB := altForest(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.wcc")
	pathB := filepath.Join(dir, "replacement.wcc")

	// Equalise file sizes by padding the smaller artifact's tool string:
	// meta is plain-ASCII JSON, so one pad byte is one file byte.
	sizeA := saveWatchArtifact(t, path, scaler, modelA, "watch-test")
	sizeB := saveWatchArtifact(t, pathB, scaler, modelB, "watch-test")
	if diff := sizeA - sizeB; diff > 0 {
		saveWatchArtifact(t, pathB, scaler, modelB, "watch-test"+strings.Repeat("x", int(diff)))
	} else if diff < 0 {
		sizeA = saveWatchArtifact(t, path, scaler, modelA, "watch-test"+strings.Repeat("x", int(-diff)))
	}

	stA, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(pathB, stA.ModTime(), stA.ModTime()); err != nil {
		t.Fatal(err)
	}
	// The premise of the regression: identical stat signature.
	stB, err := os.Stat(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if stB.Size() != stA.Size() || !stB.ModTime().Equal(stA.ModTime()) {
		t.Fatalf("fixture broke its own premise: size %d/%d mtime %v/%v",
			stA.Size(), stB.Size(), stA.ModTime(), stB.ModTime())
	}
	// ...but different content identity.
	identA, err := artifactIdentity(path)
	if err != nil {
		t.Fatal(err)
	}
	identB, err := artifactIdentity(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if identA == identB {
		t.Fatal("replacement artifact has the same content identity")
	}

	monitor, err := fleet.New(fleet.Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: modelA})
	if err != nil {
		t.Fatal(err)
	}
	swapped := make(chan artifact.Metadata, 1)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		Watch(stop, WatchConfig{
			Path: path, Every: 2 * time.Millisecond, Monitor: monitor,
			Window: testWindow, Sensors: testSensors, Scaler: scaler,
			OnSwap: func(meta artifact.Metadata) {
				select {
				case swapped <- meta:
				default:
				}
			},
		})
	}()
	defer func() { close(stop); <-done }()

	// Let the watcher record the original identity, then atomically rename
	// the replacement into place (rename preserves mtime).
	time.Sleep(50 * time.Millisecond)
	if err := os.Rename(pathB, path); err != nil {
		t.Fatal(err)
	}

	select {
	case meta := <-swapped:
		if !strings.HasPrefix(meta.Tool, "watch-test") {
			t.Fatalf("swapped metadata %+v", meta)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("same-size same-mtime replacement was never hot-swapped")
	}
	if n := monitor.Swaps(); n != 1 {
		t.Fatalf("monitor saw %d swaps, want 1", n)
	}

	// The swapped model must actually serve: predictions now come from
	// the replacement forest.
	samples := jobSamples(21, testWindow)
	for _, s := range samples {
		if err := monitor.Ingest(21, s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := monitor.Tick(); err != nil {
		t.Fatal(err)
	}
	got, ok := monitor.Prediction(21)
	if !ok {
		t.Fatal("no prediction after swap")
	}
	if want := baseline(t, scaler, modelB, samples); !predictionEqual(got, want) {
		t.Fatalf("post-swap prediction (%d, %v) does not match the replacement model (%d, %v)",
			got.Class, got.Probability, want.Class, want.Probability)
	}
}

// TestWatchRejectsIncompatibleArtifact pins the swap safety boundary:
// per-job window state survives a swap, so an artifact with different
// scaler statistics must be skipped, not installed.
func TestWatchRejectsIncompatibleArtifact(t *testing.T) {
	scaler, modelA := fixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.wcc")
	saveWatchArtifact(t, path, scaler, modelA, "watch-test")

	monitor, err := fleet.New(fleet.Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: modelA})
	if err != nil {
		t.Fatal(err)
	}
	skipped := make(chan string, 4)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		Watch(stop, WatchConfig{
			Path: path, Every: 2 * time.Millisecond, Monitor: monitor,
			Window: testWindow, Sensors: testSensors, Scaler: scaler,
			Logf: func(format string, args ...any) {
				select {
				case skipped <- fmt.Sprintf(format, args...):
				default:
				}
			},
		})
	}()
	defer func() { close(stop); <-done }()

	time.Sleep(50 * time.Millisecond)
	other := *scaler
	other.Means = append([]float64(nil), scaler.Means...)
	other.Means[0] += 1 // different training statistics
	saveWatchArtifact(t, path, &other, modelA, "watch-test-2")

	select {
	case msg := <-skipped:
		if !strings.Contains(msg, "scaler") {
			t.Fatalf("skip reason %q, want a scaler mismatch", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("incompatible artifact never reported as skipped")
	}
	if n := monitor.Swaps(); n != 0 {
		t.Fatalf("incompatible artifact was swapped in (%d swaps)", n)
	}
}
