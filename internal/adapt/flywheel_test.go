package adapt

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/fleet"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/stream"
)

const (
	e2eWindow  = 6
	e2eSensors = 3
	e2eClasses = 4
)

// Class means with distinct squared deviations from the overall mean: the
// covariance embedding keeps only uncentered second moments of the
// standardised window, so equally-spaced means would collide in ± pairs
// (mean +z and -z embed identically). Unequal magnitudes keep all four
// classes separable.
var idMeans = [e2eClasses]float64{2, 4, 8, 16}

// idSamples generates one in-distribution job's raw telemetry.
func idSamples(class, seed, n int) [][]float64 {
	rng := rand.New(rand.NewSource(int64(seed)*7919 + 3))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, e2eSensors)
		for c := range s {
			s[c] = rng.NormFloat64() + idMeans[class]
		}
		out[i] = s
	}
	return out
}

// oodSamples generates an out-of-distribution job: a coherent workload
// family no training class covers (mean 28 — well past every class mean).
func oodSamples(seed, n int) [][]float64 {
	rng := rand.New(rand.NewSource(int64(seed)*104729 + 7))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, e2eSensors)
		for c := range s {
			s[c] = rng.NormFloat64() + 28
		}
		out[i] = s
	}
	return out
}

// collectObserver harvests the embedded feature rows the fleet computes,
// keyed by job — the bridge that lets the fixture train on exactly the
// features live serving produces.
type collectObserver struct {
	mu   sync.Mutex
	rows map[int][]float64
}

func (c *collectObserver) ObserveWindow(o fleet.Observation) {
	c.mu.Lock()
	c.rows[o.Job] = append([]float64(nil), o.Features...)
	c.mu.Unlock()
}

// servingFixture builds a realistic serving stack: a scaler fitted on ID
// windows, a forest trained on the fleet's own embedded features, a drift
// calibration that accepts ID traffic and rejects the OOD family, and the
// base feature pair an in-process Trainer widens.
func servingFixture(t *testing.T) (*preprocess.StandardScaler, *forest.Classifier, *drift.Calibration, *core.FeaturePair, *mat.Matrix) {
	t.Helper()
	const perClass = 60
	const trainPer = 45

	// Scaler over flattened ID windows, and the raw PSI reference over the
	// same samples.
	flat := mat.New(e2eClasses*perClass, e2eWindow*e2eSensors)
	raw := mat.New(e2eClasses*perClass*e2eWindow, e2eSensors)
	ri := 0
	for j := 0; j < e2eClasses*perClass; j++ {
		for si, s := range idSamples(j%e2eClasses, j, e2eWindow) {
			copy(flat.Data[j*e2eWindow*e2eSensors+si*e2eSensors:], s)
			copy(raw.Data[ri*e2eSensors:(ri+1)*e2eSensors], s)
			ri++
		}
	}
	var scaler preprocess.StandardScaler
	if _, err := scaler.FitTransform(flat); err != nil {
		t.Fatal(err)
	}

	// Harvest the embedded rows through a fleet with a throwaway model: the
	// observer hook hands back exactly the features serving will compute.
	dim := preprocess.CovarianceDim(e2eSensors)
	rng := rand.New(rand.NewSource(1))
	dummyX := mat.New(80, dim)
	for i := range dummyX.Data {
		dummyX.Data[i] = rng.NormFloat64()
	}
	dummyY := make([]int, dummyX.Rows)
	for i := range dummyY {
		dummyY[i] = rng.Intn(e2eClasses)
	}
	dummy := forest.New(forest.Config{NumTrees: 5, Bootstrap: true, Seed: 2})
	if err := dummy.Fit(dummyX, dummyY, e2eClasses); err != nil {
		t.Fatal(err)
	}
	collect, err := fleet.New(fleet.Config{Window: e2eWindow, Sensors: e2eSensors, Scaler: &scaler, Model: dummy})
	if err != nil {
		t.Fatal(err)
	}
	obs := &collectObserver{rows: make(map[int][]float64)}
	collect.SetAdaptObserver(obs)
	for j := 0; j < e2eClasses*perClass; j++ {
		for _, s := range idSamples(j%e2eClasses, j, e2eWindow) {
			if err := collect.Ingest(j, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := collect.Tick(); err != nil {
		t.Fatal(err)
	}
	if len(obs.rows) != e2eClasses*perClass {
		t.Fatalf("harvested %d feature rows, want %d", len(obs.rows), e2eClasses*perClass)
	}

	// Per-class train/test split over the harvested rows.
	trainX := mat.New(e2eClasses*trainPer, dim)
	trainY := make([]int, 0, trainX.Rows)
	testX := mat.New(e2eClasses*(perClass-trainPer), dim)
	testY := make([]int, 0, testX.Rows)
	for j := 0; j < e2eClasses*perClass; j++ {
		row, ok := obs.rows[j]
		if !ok {
			t.Fatalf("job %d produced no feature row", j)
		}
		if j/e2eClasses < trainPer {
			copy(trainX.Data[len(trainY)*dim:], row)
			trainY = append(trainY, j%e2eClasses)
		} else {
			copy(testX.Data[len(testY)*dim:], row)
			testY = append(testY, j%e2eClasses)
		}
	}

	model := forest.New(forest.Config{NumTrees: 30, Bootstrap: true, Seed: 3})
	if err := model.Fit(trainX, trainY, e2eClasses); err != nil {
		t.Fatal(err)
	}
	probs, err := model.PredictProbaBatch(testX)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := drift.Fit(drift.FitInput{
		Probs: probs, TrainFeatures: trainX, HeldOutFeatures: testX, RawSamples: raw,
	}, drift.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fp := &core.FeaturePair{TrainX: trainX, TrainY: trainY, TestX: testX, TestY: testY, Scaler: &scaler}
	return &scaler, model, cal, fp, raw
}

// ingestPhase drives one traffic phase: idJobs in-distribution jobs (class
// = job index mod 4) then oodJobs out-of-distribution jobs, one window
// each, job IDs starting at base. Returns the OOD job IDs.
func ingestPhase(t *testing.T, monitors []*fleet.Monitor, base, idJobs, oodJobs int) []int {
	t.Helper()
	for j := 0; j < idJobs; j++ {
		for _, s := range idSamples(j%e2eClasses, base+j, e2eWindow) {
			for _, m := range monitors {
				if err := m.Ingest(base+j, s); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	var ood []int
	for j := 0; j < oodJobs; j++ {
		id := base + idJobs + j
		ood = append(ood, id)
		for _, s := range oodSamples(id, e2eWindow) {
			for _, m := range monitors {
				if err := m.Ingest(id, s); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for _, m := range monitors {
		if _, err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	return ood
}

// rejectedRate reads the open-set verdicts of the given jobs.
func rejectedRate(t *testing.T, m *fleet.Monitor, jobs []int) float64 {
	t.Helper()
	rejected := 0
	for _, id := range jobs {
		pred, ok := m.Prediction(id)
		if !ok {
			t.Fatalf("job %d has no prediction", id)
		}
		if pred.Open != nil && pred.Open.Rejected {
			rejected++
		}
	}
	return float64(rejected) / float64(len(jobs))
}

// fixtureTrainer widens the harvested base feature pair — the in-process
// equivalent of the provenance trainer, without the simulator round trip.
type fixtureTrainer struct {
	fp  *core.FeaturePair
	raw *mat.Matrix
}

func (ft *fixtureTrainer) Train(fams []Family) (*artifact.Artifact, error) {
	return BuildCandidateArtifact(ft.fp, ft.raw, fams, CandidateOptions{
		BaseMeta: artifact.Metadata{
			ClassNames: []string{"c0", "c1", "c2", "c3"},
			Window:     e2eWindow, Sensors: e2eSensors, Seed: 3,
		},
		Trees: 30,
		// The held-out set carries only a handful of family rows, and they
		// dominate the distance tail; the default 0.95 feature quantile
		// would cut into the family region itself.
		FeatQuantile: 0.99,
	})
}

// TestAdaptEquivalenceBitIdentical pins the tentpole invariant: a monitor
// with the adapt flywheel observing publishes bit-identical
// Class/Probability/Probs/Open verdicts to one without, for every job, ID
// and OOD alike — until a promotion is explicitly installed, the flywheel
// only watches.
func TestAdaptEquivalenceBitIdentical(t *testing.T) {
	scaler, model, cal, fp, raw := servingFixture(t)

	plain, err := fleet.New(fleet.Config{Window: e2eWindow, Sensors: e2eSensors, Scaler: scaler, Model: model, Drift: cal})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := fleet.New(fleet.Config{Window: e2eWindow, Sensors: e2eSensors, Scaler: scaler, Model: model, Drift: cal})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(Config{
		FeatureDim:  preprocess.CovarianceDim(e2eSensors),
		MinSupport:  10,
		Radius:      12,
		Calibration: cal,
		Trainer:     &fixtureTrainer{fp: fp, raw: raw},
	})
	if err != nil {
		t.Fatal(err)
	}
	observed.SetAdaptObserver(mgr)

	ood := ingestPhase(t, []*fleet.Monitor{plain, observed}, 0, 40, 24)

	for j := 0; j < 64; j++ {
		want, ok := plain.Prediction(j)
		if !ok {
			t.Fatalf("job %d: no plain prediction", j)
		}
		got, ok := observed.Prediction(j)
		if !ok {
			t.Fatalf("job %d: no observed prediction", j)
		}
		if got.Class != want.Class || got.Probability != want.Probability {
			t.Fatalf("job %d: observed (%d, %v) vs plain (%d, %v)", j, got.Class, got.Probability, want.Class, want.Probability)
		}
		for c := range want.Probs {
			if got.Probs[c] != want.Probs[c] {
				t.Fatalf("job %d class %d: %v vs %v (not bit-identical)", j, c, got.Probs[c], want.Probs[c])
			}
		}
		if (got.Open != nil) != (want.Open != nil) {
			t.Fatalf("job %d: open-set annotation diverged", j)
		}
		if got.Open != nil && got.Open.Rejected != want.Open.Rejected {
			t.Fatalf("job %d: verdict diverged: %v vs %v", j, got.Open.Rejected, want.Open.Rejected)
		}
	}

	// And the flywheel did observe: the OOD jobs' rejections are buffered.
	st := mgr.Status()
	if st.Observed == 0 || st.Buffered == 0 {
		t.Fatalf("flywheel observed nothing: %+v", st)
	}
	if st.Buffered > len(ood) {
		t.Fatalf("buffered %d rows from %d OOD jobs", st.Buffered, len(ood))
	}

	// Building and shadowing still changes nothing about serving: tick
	// the same traffic again and compare once more.
	if err := mgr.BuildCandidate(); err != nil {
		t.Fatal(err)
	}
	ingestPhase(t, []*fleet.Monitor{plain, observed}, 100, 20, 10)
	for j := 100; j < 130; j++ {
		want, _ := plain.Prediction(j)
		got, _ := observed.Prediction(j)
		if want == nil || got == nil {
			t.Fatalf("job %d: missing prediction", j)
		}
		if got.Class != want.Class || got.Probability != want.Probability {
			t.Fatalf("job %d: shadow scoring leaked into serving: (%d, %v) vs (%d, %v)",
				j, got.Class, got.Probability, want.Class, want.Probability)
		}
	}
	if st := mgr.Status(); st.Shadow == nil || st.Shadow.Windows == 0 {
		t.Fatalf("candidate shadow-scored nothing: %+v", st)
	}
}

// TestFlywheelE2EUnknownRateDrops is the full single-node loop: injected
// OOD traffic is rejected, buffered, clustered into a family, a candidate
// is trained and shadow-scored, the gate opens, promotion swaps the
// candidate in through SwapClassifierDrift — and the unknown rate on the
// same OOD family collapses below 20% of its pre-promotion rate while the
// generation advances cleanly.
func TestFlywheelE2EUnknownRateDrops(t *testing.T) {
	scaler, model, cal, fp, raw := servingFixture(t)
	monitor, err := fleet.New(fleet.Config{Window: e2eWindow, Sensors: e2eSensors, Scaler: scaler, Model: model, Drift: cal})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(Config{
		FeatureDim:       preprocess.CovarianceDim(e2eSensors),
		MinSupport:       20,
		Radius:           12,
		Calibration:      cal,
		Trainer:          &fixtureTrainer{fp: fp, raw: raw},
		ShadowMinWindows: 40,
		GateAgreement:    0.8,
		Promote: func(a *artifact.Artifact) error {
			return monitor.SwapClassifierDrift(a.Model.(stream.Classifier), a.Drift)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	monitor.SetAdaptObserver(mgr)
	ms := []*fleet.Monitor{monitor}

	// Phase A: the OOD family shows up and serving rejects it. Support
	// matters: the candidate's feature gate is calibrated from held-out
	// family rows, so the buffer must sample the family densely enough
	// that its distance scale is represented.
	oodA := ingestPhase(t, ms, 0, 40, 60)
	preRate := rejectedRate(t, monitor, oodA)
	if preRate < 0.5 {
		t.Fatalf("pre-promotion OOD rejection rate %.2f: the fixture family is not out-of-distribution enough", preRate)
	}
	st := mgr.Status()
	if st.Buffered < 20 {
		t.Fatalf("buffered %d rejected windows, want >= MinSupport", st.Buffered)
	}

	// Cluster + train: the family becomes candidate class novel-0.
	if err := mgr.BuildCandidate(); err != nil {
		t.Fatal(err)
	}
	st = mgr.Status()
	if st.Phase != PhaseShadow || len(st.Families) == 0 || st.Candidate == nil {
		t.Fatalf("after build: %+v", st)
	}
	if st.Candidate.ClassNames[len(st.Candidate.ClassNames)-1] != "novel-0" {
		t.Fatalf("candidate classes %v lack novel-0", st.Candidate.ClassNames)
	}

	// Phase B: shadow scoring over live traffic opens the gate.
	ingestPhase(t, ms, 100, 40, 30)
	st = mgr.Status()
	if st.Shadow == nil || st.Shadow.Windows < 40 {
		t.Fatalf("shadow under-scored: %+v", st.Shadow)
	}
	if !st.GateReady {
		t.Fatalf("gate closed after healthy shadow: %+v", st.Shadow)
	}
	if err := mgr.PromoteIfReady(); err != nil {
		t.Fatal(err)
	}
	if n := monitor.Swaps(); n != 1 {
		t.Fatalf("promotion performed %d swaps, want 1", n)
	}

	// Phase C: the same OOD family is now a recognised class.
	oodC := ingestPhase(t, ms, 200, 40, 30)
	postRate := rejectedRate(t, monitor, oodC)
	if postRate > 0.2*preRate {
		t.Fatalf("post-promotion OOD rejection rate %.2f vs pre %.2f: flywheel did not close the gap", postRate, preRate)
	}
	novel := 0
	for _, id := range oodC {
		pred, _ := monitor.Prediction(id)
		if pred != nil && pred.Class == e2eClasses {
			novel++
		}
	}
	if novel < len(oodC)*3/4 {
		t.Fatalf("only %d/%d OOD jobs classified as the novel class", novel, len(oodC))
	}

	// The generation advanced cleanly and the flywheel restarted buffering.
	st = mgr.Status()
	if st.Gen != 1 || st.Phase != PhaseBuffer || st.Shadow != nil {
		t.Fatalf("after promotion cycle: %+v", st)
	}
	if st.Promotions != 1 {
		t.Fatalf("promotions %d, want 1", st.Promotions)
	}
}
