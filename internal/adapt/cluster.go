package adapt

import (
	"math"
	"sort"

	"repro/internal/drift"
	"repro/internal/mat"
)

// Family is one candidate new-workload class: a cluster of rejected-window
// feature rows dense enough to pass the min-support gate. Rows are in the
// serving scaler's feature space — the exact rows the serving model scored
// and rejected — so a trainer can append them to a regenerated training set
// without any re-embedding.
type Family struct {
	// ID indexes the family within one clustering pass, in decreasing
	// support order; a promoted candidate maps family i to class
	// numBaseClasses+i.
	ID int
	// Count is the family's support (number of member rows).
	Count int
	// Centroid is the mean member row (unnormalised feature space).
	Centroid []float64
	// Rows holds the member feature rows, one per row.
	Rows *mat.Matrix
}

// leader is one in-progress cluster during the single pass: a running mean
// in normalised space plus its member indices.
type leader struct {
	center  []float64
	members []int
}

// Cluster groups rejected-window feature rows into candidate families by
// leader clustering: each row joins the nearest existing leader within
// radius (normalised Euclidean distance) or founds a new one, and leaders
// with fewer than minSupport members are discarded — noise and stragglers
// never become a class. At most maxFamilies survive, largest first.
//
// norm, when non-nil, standardises rows dimension-wise before distances are
// taken (covariance features span wildly different scales); the serving
// calibration's FeatureStats is the natural choice, making radius
// commensurable with the calibration's feature-distance threshold. One pass,
// deterministic in the row order.
func Cluster(rows [][]float64, norm *drift.FeatureStats, radius float64, minSupport, maxFamilies int) []Family {
	if len(rows) == 0 || radius <= 0 {
		return nil
	}
	if minSupport < 1 {
		minSupport = 1
	}
	dim := len(rows[0])
	normalise := func(row []float64) []float64 {
		z := make([]float64, dim)
		for j, v := range row {
			if norm != nil && norm.Stds[j] > 0 {
				z[j] = (v - norm.Means[j]) / norm.Stds[j]
			} else {
				z[j] = v
			}
		}
		return z
	}

	var leaders []*leader
	for i, row := range rows {
		if len(row) != dim {
			continue // defensive: a torn row cannot join any cluster
		}
		z := normalise(row)
		best, bestDist := -1, math.Inf(1)
		for li, l := range leaders {
			if d := euclid(z, l.center); d < bestDist {
				best, bestDist = li, d
			}
		}
		if best >= 0 && bestDist <= radius {
			l := leaders[best]
			l.members = append(l.members, i)
			// Running mean keeps the leader centred on its members, so an
			// early outlier founder does not anchor the cluster off-centre.
			n := float64(len(l.members))
			for j := range l.center {
				l.center[j] += (z[j] - l.center[j]) / n
			}
		} else {
			leaders = append(leaders, &leader{center: z, members: []int{i}})
		}
	}

	sort.SliceStable(leaders, func(a, b int) bool {
		return len(leaders[a].members) > len(leaders[b].members)
	})
	var fams []Family
	for _, l := range leaders {
		if len(l.members) < minSupport {
			break // sorted by support: everything after is sparser
		}
		if maxFamilies > 0 && len(fams) == maxFamilies {
			break
		}
		f := Family{ID: len(fams), Count: len(l.members), Centroid: make([]float64, dim)}
		f.Rows = mat.New(len(l.members), dim)
		for r, idx := range l.members {
			copy(f.Rows.Data[r*dim:(r+1)*dim], rows[idx])
			for j, v := range rows[idx] {
				f.Centroid[j] += v
			}
		}
		for j := range f.Centroid {
			f.Centroid[j] /= float64(f.Count)
		}
		fams = append(fams, f)
	}
	return fams
}

// euclid is the plain Euclidean distance between equal-length vectors.
func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
