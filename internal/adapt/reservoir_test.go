package adapt

import "testing"

func row(vals ...float64) []float64 { return vals }

func TestReservoirKeepsEverythingUnderCapacity(t *testing.T) {
	r := newReservoir(8, 1)
	for i := 0; i < 5; i++ {
		r.offer(row(float64(i), float64(i)))
	}
	if len(r.rows) != 5 || r.seen != 5 || r.dropped != 0 {
		t.Fatalf("got %d rows, seen %d, dropped %d; want 5, 5, 0", len(r.rows), r.seen, r.dropped)
	}
	snap := r.snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d rows, want 5", len(snap))
	}
	// Snapshot rows are copies: mutating one must not reach the reservoir.
	snap[0][0] = 999
	if r.rows[0][0] == 999 {
		t.Fatal("snapshot aliases reservoir storage")
	}
}

func TestReservoirCopiesOfferedRows(t *testing.T) {
	r := newReservoir(4, 1)
	borrowed := row(1, 2)
	r.offer(borrowed)
	borrowed[0] = -7 // the tick path reuses its batch row immediately
	if r.rows[0][0] != 1 {
		t.Fatal("reservoir retained a borrowed row without copying")
	}
}

func TestReservoirSamplesPastCapacity(t *testing.T) {
	const capacity, offered = 64, 4096
	r := newReservoir(capacity, 7)
	for i := 0; i < offered; i++ {
		r.offer(row(float64(i)))
	}
	if len(r.rows) != capacity {
		t.Fatalf("retained %d rows, want the capacity %d", len(r.rows), capacity)
	}
	if r.seen != offered {
		t.Fatalf("seen %d, want %d", r.seen, offered)
	}
	if r.dropped != offered-capacity {
		t.Fatalf("dropped %d, want %d", r.dropped, offered-capacity)
	}
	// Uniform sampling must not privilege early traffic: the retained mean
	// index should be near the middle of the offered range, far above the
	// first-64-wins mean of 31.5.
	var sum float64
	for _, rr := range r.rows {
		sum += rr[0]
	}
	mean := sum / capacity
	if mean < offered/4 || mean > 3*offered/4 {
		t.Fatalf("retained-sample mean index %.0f suggests biased sampling over [0,%d)", mean, offered)
	}
}

func TestReservoirResetClearsSampleKeepsDropCounter(t *testing.T) {
	r := newReservoir(2, 1)
	for i := 0; i < 10; i++ {
		r.offer(row(float64(i)))
	}
	droppedBefore := r.dropped
	if droppedBefore == 0 {
		t.Fatal("expected drops past capacity")
	}
	r.reset()
	if len(r.rows) != 0 || r.seen != 0 {
		t.Fatalf("reset left %d rows, seen %d", len(r.rows), r.seen)
	}
	if r.dropped != droppedBefore {
		t.Fatalf("reset rewound the cumulative drop counter: %d -> %d", droppedBefore, r.dropped)
	}
	// The reservoir keeps working after a reset.
	r.offer(row(42))
	if len(r.rows) != 1 || r.rows[0][0] != 42 {
		t.Fatal("reservoir unusable after reset")
	}
}
