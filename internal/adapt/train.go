package adapt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/drift"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/telemetry"
)

// Trainer turns clustered families into a candidate artifact: a model
// covering the base classes plus one new class per family, with scaler
// statistics byte-identical to the serving fleet's and a drift calibration
// refreshed over the widened class set. Implementations may be slow (the
// provenance trainer regenerates the training set); the Manager never calls
// Train on the tick path.
type Trainer interface {
	Train(families []Family) (*artifact.Artifact, error)
}

// CandidateOptions parameterises BuildCandidateArtifact.
type CandidateOptions struct {
	// BaseMeta is the serving artifact's metadata; the candidate inherits
	// its provenance fields and appends novel class names to its
	// ClassNames. len(ClassNames), when non-zero, fixes the base class
	// count.
	BaseMeta artifact.Metadata
	// Trees sizes the candidate forest (default 50).
	Trees int
	// Seed seeds the forest fit (default BaseMeta.Seed).
	Seed int64
	// Quantile and FeatQuantile configure the refreshed drift calibration
	// (package drift defaults when zero).
	Quantile     float64
	FeatQuantile float64
	// Tool names the producer in the candidate's metadata (default
	// "adapt").
	Tool string
}

// heldOutEvery reserves every n-th family row for calibration instead of
// training, so the refreshed threshold sees held-out novel-class scores the
// model did not memorise.
const heldOutEvery = 4

// BuildCandidateArtifact trains a candidate model over the base feature
// pair widened with one new class per family, and calibrates a fresh drift
// section over the widened class set. fp must be built against the serving
// scaler (core.CovFeaturesWith) — the candidate reuses it verbatim, which
// is what lets the hot-swap compatibility gate accept the artifact — and
// family rows must be in the same feature space, which they are by
// construction (they came from the serving embedders). raw holds raw
// telemetry samples for the PSI reference, typically the regenerated
// training windows.
//
// Both the in-process flywheel (ProvenanceTrainer) and the offline
// `wcctrain -families` path build candidates through here, so the two
// produce identical artifacts from identical inputs.
func BuildCandidateArtifact(fp *core.FeaturePair, raw *mat.Matrix, fams []Family, o CandidateOptions) (*artifact.Artifact, error) {
	if len(fams) == 0 {
		return nil, errors.New("adapt: no families to train on")
	}
	if fp == nil || fp.TrainX == nil || fp.TestX == nil {
		return nil, errors.New("adapt: candidate training needs base train and test features")
	}
	if fp.Scaler == nil {
		return nil, errors.New("adapt: feature pair carries no scaler (candidate must reuse the serving scaler)")
	}
	dim := fp.TrainX.Cols
	numBase := len(o.BaseMeta.ClassNames)
	if numBase == 0 {
		for _, y := range fp.TrainY {
			if y+1 > numBase {
				numBase = y + 1
			}
		}
	}
	if o.Trees <= 0 {
		o.Trees = 50
	}
	if o.Seed == 0 {
		o.Seed = o.BaseMeta.Seed
	}
	if o.Tool == "" {
		o.Tool = "adapt"
	}

	// Split each family into train and held-out rows, then assemble the
	// widened matrices: base rows keep their labels, family i becomes class
	// numBase+i.
	trainRows, testRows := fp.TrainX.Rows, fp.TestX.Rows
	var famTrain, famHeld int
	for _, f := range fams {
		if f.Rows == nil || f.Rows.Cols != dim {
			return nil, fmt.Errorf("adapt: family %d rows have %d features, base has %d", f.ID, f.Rows.Cols, dim)
		}
		h := f.Rows.Rows / heldOutEvery
		if h == 0 && f.Rows.Rows > 1 {
			h = 1
		}
		famHeld += h
		famTrain += f.Rows.Rows - h
	}
	trainX := mat.New(trainRows+famTrain, dim)
	trainY := make([]int, 0, trainRows+famTrain)
	copy(trainX.Data, fp.TrainX.Data)
	trainY = append(trainY, fp.TrainY...)
	heldX := mat.New(testRows+famHeld, dim)
	copy(heldX.Data, fp.TestX.Data)

	ti, hi := trainRows, testRows
	for fi, f := range fams {
		label := numBase + fi
		for r := 0; r < f.Rows.Rows; r++ {
			row := f.Rows.Row(r)
			if r%heldOutEvery == heldOutEvery-1 && hi < heldX.Rows {
				copy(heldX.Data[hi*dim:(hi+1)*dim], row)
				hi++
				continue
			}
			copy(trainX.Data[ti*dim:(ti+1)*dim], row)
			trainY = append(trainY, label)
			ti++
		}
	}
	// Rounding drift between the size pre-pass and the modulo split can
	// leave a row of slack; trim to what actually landed.
	trainX = &mat.Matrix{Rows: ti, Cols: dim, Data: trainX.Data[:ti*dim]}
	heldX = &mat.Matrix{Rows: hi, Cols: dim, Data: heldX.Data[:hi*dim]}

	numClasses := numBase + len(fams)
	f := forest.New(forest.Config{NumTrees: o.Trees, Bootstrap: true, Seed: o.Seed})
	if err := f.Fit(trainX, trainY, numClasses); err != nil {
		return nil, fmt.Errorf("adapt: fitting candidate forest: %w", err)
	}

	probs, err := f.PredictProbaBatch(heldX)
	if err != nil {
		return nil, fmt.Errorf("adapt: scoring held-out rows: %w", err)
	}
	// Base-split accuracy from the same probability rows (the first
	// testRows held-out rows are the base test split, in order).
	correct := 0
	for i, y := range fp.TestY {
		if mat.ArgMax(probs.Row(i)) == y {
			correct++
		}
	}
	acc := 0.0
	if len(fp.TestY) > 0 {
		acc = float64(correct) / float64(len(fp.TestY))
	}

	cal, err := drift.Fit(drift.FitInput{
		Probs:           probs,
		TrainFeatures:   trainX,
		HeldOutFeatures: heldX,
		RawSamples:      raw,
	}, drift.Options{Quantile: o.Quantile, FeatQuantile: o.FeatQuantile})
	if err != nil {
		return nil, fmt.Errorf("adapt: calibrating candidate drift: %w", err)
	}

	meta := o.BaseMeta
	meta.ClassNames = append(append([]string(nil), o.BaseMeta.ClassNames...), novelNames(o.BaseMeta.NovelClasses, len(fams))...)
	meta.Accuracy = acc
	meta.NovelClasses = o.BaseMeta.NovelClasses + len(fams)
	meta.AdaptedFrom = fmt.Sprintf("%s/%d-class base", o.BaseMeta.Tool, numBase)
	meta.CreatedUnix = time.Now().Unix()
	meta.Tool = o.Tool
	return &artifact.Artifact{Meta: meta, Scaler: fp.Scaler, Drift: cal, Model: f}, nil
}

// novelNames labels count new classes appended after start already-grown
// novel classes. Numbering continues across generations: a base that
// already grew novel classes keeps them and the new ones pick up where it
// left off.
func novelNames(start, count int) []string {
	names := make([]string, count)
	for i := range names {
		names[i] = telemetry.NovelClassName(start + i)
	}
	return names
}

// ProvenanceTrainer is the production Trainer: it regenerates the base
// training set from the serving artifact's recorded provenance (dataset
// spec, scale, seed), re-embeds it with the serving scaler — never refits
// one — and widens it with the clustered families. The caps must match the
// original training run's; they are not recorded in the artifact, so
// wccserve threads its own -max-train/-max-test flags through.
type ProvenanceTrainer struct {
	// Meta is the serving artifact's metadata (Dataset, Scale, Seed,
	// ClassNames drive regeneration).
	Meta artifact.Metadata
	// Scaler is the serving scaler, reused verbatim.
	Scaler *preprocess.StandardScaler
	// MaxTrain and MaxTest cap the regenerated splits (0 = all).
	MaxTrain, MaxTest int
	// Trees sizes the candidate forest (default 50).
	Trees int
	// Quantile and FeatQuantile configure the refreshed calibration.
	Quantile, FeatQuantile float64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Train implements Trainer.
func (t *ProvenanceTrainer) Train(fams []Family) (*artifact.Artifact, error) {
	if t.Scaler == nil {
		return nil, errors.New("adapt: provenance trainer needs the serving scaler")
	}
	spec, ok := dataset.SpecByName(t.Meta.Dataset)
	if !ok {
		return nil, fmt.Errorf("adapt: artifact provenance names unknown dataset %q", t.Meta.Dataset)
	}
	sim, err := telemetry.NewSimulator(telemetry.Config{Seed: t.Meta.Seed, Scale: t.Meta.Scale, GapRate: 1})
	if err != nil {
		return nil, err
	}
	p := core.PresetScaled()
	p.Seed = t.Meta.Seed
	p.MaxTrain = t.MaxTrain
	p.MaxTest = t.MaxTest
	t.logf("adapt: regenerating %s (scale %g, seed %d) for candidate training", t.Meta.Dataset, t.Meta.Scale, t.Meta.Seed)
	ch, err := core.BuildDataset(sim, spec, p)
	if err != nil {
		return nil, err
	}
	fp, err := core.CovFeaturesWith(ch, t.Scaler)
	if err != nil {
		return nil, err
	}
	a, err := BuildCandidateArtifact(fp, core.RawSensorSamples(ch.Train.X), fams, CandidateOptions{
		BaseMeta:     t.Meta,
		Trees:        t.Trees,
		Seed:         t.Meta.Seed,
		Quantile:     t.Quantile,
		FeatQuantile: t.FeatQuantile,
		Tool:         "wccserve-adapt",
	})
	if err != nil {
		return nil, err
	}
	t.logf("adapt: candidate trained: %d classes (%d novel), base accuracy %.3f",
		len(a.Meta.ClassNames), len(fams), a.Meta.Accuracy)
	return a, nil
}

func (t *ProvenanceTrainer) logf(format string, args ...any) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}

// familiesFile is the JSON wire form of an exported family set, served on
// GET /v1/adapt/families and consumed by `wcctrain -families`.
type familiesFile struct {
	FeatureDim int          `json:"feature_dim"`
	Families   []familyJSON `json:"families"`
}

type familyJSON struct {
	ID       int         `json:"id"`
	Count    int         `json:"count"`
	Centroid []float64   `json:"centroid"`
	Rows     [][]float64 `json:"rows"`
}

// EncodeFamilies writes the family set as JSON, full member rows included,
// so an offline `wcctrain -families` run can rebuild the exact candidate
// the in-process flywheel would.
func EncodeFamilies(w io.Writer, fams []Family) error {
	out := familiesFile{Families: make([]familyJSON, len(fams))}
	for i, f := range fams {
		if f.Rows != nil {
			out.FeatureDim = f.Rows.Cols
		}
		fj := familyJSON{ID: f.ID, Count: f.Count, Centroid: f.Centroid}
		if f.Rows != nil {
			fj.Rows = make([][]float64, f.Rows.Rows)
			for r := range fj.Rows {
				fj.Rows[r] = append([]float64(nil), f.Rows.Row(r)...)
			}
		}
		out.Families[i] = fj
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// DecodeFamilies reads a family set written by EncodeFamilies.
func DecodeFamilies(r io.Reader) ([]Family, error) {
	var in familiesFile
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("adapt: decoding families: %w", err)
	}
	fams := make([]Family, 0, len(in.Families))
	for _, fj := range in.Families {
		f := Family{ID: fj.ID, Count: fj.Count, Centroid: fj.Centroid}
		if len(fj.Rows) > 0 {
			dim := len(fj.Rows[0])
			if in.FeatureDim > 0 && dim != in.FeatureDim {
				return nil, fmt.Errorf("adapt: family %d rows have %d features, header says %d", fj.ID, dim, in.FeatureDim)
			}
			f.Rows = mat.New(len(fj.Rows), dim)
			for r, row := range fj.Rows {
				if len(row) != dim {
					return nil, fmt.Errorf("adapt: family %d row %d has %d features, want %d", fj.ID, r, len(row), dim)
				}
				copy(f.Rows.Data[r*dim:(r+1)*dim], row)
			}
			f.Count = len(fj.Rows)
		}
		fams = append(fams, f)
	}
	return fams, nil
}
