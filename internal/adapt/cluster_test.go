package adapt

import (
	"math/rand"
	"testing"

	"repro/internal/drift"
)

// blob draws n rows around a center with the given spread.
func blob(rng *rand.Rand, n int, center []float64, spread float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		r := make([]float64, len(center))
		for j, c := range center {
			r[j] = c + rng.NormFloat64()*spread
		}
		out[i] = r
	}
	return out
}

func TestClusterSeparatesDenseBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var rows [][]float64
	rows = append(rows, blob(rng, 60, []float64{0, 0, 0}, 0.3)...)
	rows = append(rows, blob(rng, 40, []float64{10, 10, 10}, 0.3)...)
	// Stragglers too sparse to become a class.
	rows = append(rows, blob(rng, 3, []float64{-50, 40, 5}, 0.3)...)

	fams := Cluster(rows, nil, 3, 10, 0)
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2 (the stragglers must not become a class)", len(fams))
	}
	if fams[0].Count < fams[1].Count {
		t.Fatalf("families not sorted by support: %d then %d", fams[0].Count, fams[1].Count)
	}
	if fams[0].Count != 60 || fams[1].Count != 40 {
		t.Fatalf("supports %d/%d, want 60/40", fams[0].Count, fams[1].Count)
	}
	if fams[0].ID != 0 || fams[1].ID != 1 {
		t.Fatalf("IDs %d/%d, want 0/1", fams[0].ID, fams[1].ID)
	}
	// Centroids land on the blob centers, in the original feature space.
	if c := fams[0].Centroid[0]; c < -1 || c > 1 {
		t.Fatalf("dense family centroid[0] = %v, want ≈0", c)
	}
	if c := fams[1].Centroid[0]; c < 9 || c > 11 {
		t.Fatalf("second family centroid[0] = %v, want ≈10", c)
	}
	if fams[0].Rows.Rows != 60 || fams[0].Rows.Cols != 3 {
		t.Fatalf("family rows %dx%d, want 60x3", fams[0].Rows.Rows, fams[0].Rows.Cols)
	}
}

func TestClusterMaxFamiliesCapsLargestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var rows [][]float64
	rows = append(rows, blob(rng, 50, []float64{0, 0}, 0.2)...)
	rows = append(rows, blob(rng, 30, []float64{20, 0}, 0.2)...)
	rows = append(rows, blob(rng, 20, []float64{0, 20}, 0.2)...)

	fams := Cluster(rows, nil, 3, 5, 2)
	if len(fams) != 2 {
		t.Fatalf("got %d families, want the cap of 2", len(fams))
	}
	if fams[0].Count != 50 || fams[1].Count != 30 {
		t.Fatalf("cap kept supports %d/%d, want the two largest 50/30", fams[0].Count, fams[1].Count)
	}
}

func TestClusterNormalisationMakesRadiusCommensurable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Two blobs separated only along a huge-scale dimension: unnormalised,
	// radius 3 sees two distant groups; normalised by the dimension's std,
	// the same radius merges them.
	var rows [][]float64
	rows = append(rows, blob(rng, 30, []float64{0, 0}, 0.1)...)
	rows = append(rows, blob(rng, 30, []float64{1000, 0}, 0.1)...)

	if fams := Cluster(rows, nil, 3, 10, 0); len(fams) != 2 {
		t.Fatalf("unnormalised: got %d families, want 2", len(fams))
	}
	norm := &drift.FeatureStats{Means: []float64{500, 0}, Stds: []float64{1000, 1}}
	if fams := Cluster(rows, norm, 3, 10, 0); len(fams) != 1 {
		t.Fatalf("normalised: got %d families, want 1 (separation shrinks to 1 std)", len(fams))
	}
}

func TestClusterDegenerateInputs(t *testing.T) {
	if fams := Cluster(nil, nil, 3, 10, 0); fams != nil {
		t.Fatalf("nil rows clustered into %d families", len(fams))
	}
	if fams := Cluster([][]float64{{1, 2}}, nil, 0, 1, 0); fams != nil {
		t.Fatalf("zero radius clustered into %d families", len(fams))
	}
	// A single row with minSupport 1 is a legitimate (tiny) family.
	fams := Cluster([][]float64{{1, 2}}, nil, 3, 1, 0)
	if len(fams) != 1 || fams[0].Count != 1 {
		t.Fatalf("single row: got %+v, want one 1-row family", fams)
	}
	// Torn rows (wrong width) are skipped, not clustered and not fatal.
	fams = Cluster([][]float64{{1, 2}, {1}, {1.1, 2.1}}, nil, 3, 2, 0)
	if len(fams) != 1 || fams[0].Count != 2 {
		t.Fatalf("torn row handling: got %+v, want one 2-row family", fams)
	}
}
