package adapt

import "math/rand"

// reservoir is the bounded buffer of rejected-window feature rows the
// flywheel clusters candidates from. It keeps a uniform sample of every row
// offered since its last reset (classic reservoir sampling), so a long
// buffering phase cannot bias the sample toward early traffic, and a burst
// of rejections past the capacity degrades to sampling — never to growth
// and never to blocking. Rows are copied on entry: the tick path lends its
// batch matrix rows and reuses them immediately.
//
// The reservoir is not concurrency-safe on its own; the Manager's mutex
// guards it.
type reservoir struct {
	cap  int
	rng  *rand.Rand
	rows [][]float64
	// seen counts rows offered since the last reset; dropped counts rows
	// not retained, cumulatively across resets (the wcc_adapt_dropped_total
	// counter stays monotonic through promotions).
	seen    uint64
	dropped uint64
}

func newReservoir(capacity int, seed int64) *reservoir {
	return &reservoir{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

// offer records one rejected window's feature row, copying it.
func (r *reservoir) offer(features []float64) {
	r.seen++
	if len(r.rows) < r.cap {
		r.rows = append(r.rows, append([]float64(nil), features...))
		return
	}
	// Full: replace a random slot with probability cap/seen, keeping the
	// retained set a uniform sample of everything offered.
	if j := r.rng.Intn(int(r.seen)); j < r.cap {
		copy(r.rows[j], features)
	}
	r.dropped++
}

// snapshot copies the retained rows out, so clustering and training can run
// outside the Manager's lock while ticks keep offering.
func (r *reservoir) snapshot() [][]float64 {
	out := make([][]float64, len(r.rows))
	for i, row := range r.rows {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// reset clears the retained sample — a model swap made every buffered row
// stale (it was scored by the previous generation). dropped stays
// cumulative.
func (r *reservoir) reset() {
	r.rows = r.rows[:0]
	r.seen = 0
}
