package adapt

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/preprocess"
)

const testDim = 6

// featureFixture builds a synthetic base feature pair: four well-separated
// class blobs in a testDim-wide feature space, split into train and test,
// with a fitted scaler attached (the candidate path requires one to reuse).
func featureFixture(t *testing.T, seed int64) *core.FeaturePair {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{
		{0, 0, 0, 0, 0, 0},
		{6, 0, 0, 6, 0, 0},
		{0, 6, 0, 0, 6, 0},
		{0, 0, 6, 0, 0, 6},
	}
	const perClassTrain, perClassTest = 40, 10
	train := mat.New(len(centers)*perClassTrain, testDim)
	trainY := make([]int, 0, train.Rows)
	test := mat.New(len(centers)*perClassTest, testDim)
	testY := make([]int, 0, test.Rows)
	fill := func(x *mat.Matrix, i int, c []float64) {
		for j := 0; j < testDim; j++ {
			x.Data[i*testDim+j] = c[j] + rng.NormFloat64()*0.5
		}
	}
	for cl, c := range centers {
		for k := 0; k < perClassTrain; k++ {
			fill(train, len(trainY), c)
			trainY = append(trainY, cl)
		}
		for k := 0; k < perClassTest; k++ {
			fill(test, len(testY), c)
			testY = append(testY, cl)
		}
	}
	var scaler preprocess.StandardScaler
	raw := mat.New(20, 18)
	for i := range raw.Data {
		raw.Data[i] = rng.NormFloat64()
	}
	if _, err := scaler.FitTransform(raw); err != nil {
		t.Fatal(err)
	}
	return &core.FeaturePair{TrainX: train, TrainY: trainY, TestX: test, TestY: testY, Scaler: &scaler}
}

// noveltyFamily clusters a blob far from every base class into one Family.
func noveltyFamily(t *testing.T, seed int64, n int) []Family {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := blob(rng, n, []float64{-8, -8, -8, -8, -8, -8}, 0.5)
	fams := Cluster(rows, nil, 4, n/2, 0)
	if len(fams) != 1 {
		t.Fatalf("novelty blob clustered into %d families, want 1", len(fams))
	}
	return fams
}

func rawRef(seed int64) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	raw := mat.New(500, 3)
	for i := range raw.Data {
		raw.Data[i] = rng.NormFloat64()*2 + 4
	}
	return raw
}

func TestBuildCandidateArtifactWidensClassSet(t *testing.T) {
	fp := featureFixture(t, 11)
	fams := noveltyFamily(t, 12, 48)
	base := artifact.Metadata{
		ClassNames: []string{"a", "b", "c", "d"},
		Dataset:    "60-middle-1", Scale: 0.1, Seed: 7, Tool: "wcctrain",
	}
	a, err := BuildCandidateArtifact(fp, rawRef(13), fams, CandidateOptions{BaseMeta: base, Trees: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Meta.ClassNames) != 5 {
		t.Fatalf("candidate has %d classes, want 5", len(a.Meta.ClassNames))
	}
	if a.Meta.ClassNames[4] != "novel-0" {
		t.Fatalf("novel class named %q, want novel-0", a.Meta.ClassNames[4])
	}
	if a.Meta.NovelClasses != 1 {
		t.Fatalf("NovelClasses %d, want 1", a.Meta.NovelClasses)
	}
	if a.Meta.AdaptedFrom == "" {
		t.Fatal("AdaptedFrom not stamped")
	}
	if a.Scaler != fp.Scaler {
		t.Fatal("candidate must reuse the serving scaler verbatim (hot-swap compatibility gate)")
	}
	if a.Drift == nil || a.Drift.Feat == nil {
		t.Fatal("candidate carries no refreshed drift calibration")
	}
	if a.Meta.Accuracy < 0.9 {
		t.Fatalf("base accuracy %.3f collapsed on separable blobs", a.Meta.Accuracy)
	}

	// The candidate classifies held-back novelty rows as the new class and
	// the refreshed feature gate accepts them.
	model := a.Model.(probaClassifier)
	probe := fams[0].Rows
	probs, err := model.PredictProba(probe)
	if err != nil {
		t.Fatal(err)
	}
	asNovel, rejected := 0, 0
	for i := 0; i < probs.Rows; i++ {
		if mat.ArgMax(probs.Row(i)) == 4 {
			asNovel++
		}
		sc := a.Drift.Score(probs.Row(i), probe.Row(i))
		if a.Drift.Threshold.Reject(sc) {
			rejected++
		}
	}
	if asNovel < probs.Rows*9/10 {
		t.Fatalf("only %d/%d family rows classified as the novel class", asNovel, probs.Rows)
	}
	// The threshold is quantile-calibrated, so a straggler row may still
	// fall under it; what must not survive is wholesale rejection.
	if rejected > probs.Rows/10 {
		t.Fatalf("refreshed calibration still rejects %d/%d family rows", rejected, probs.Rows)
	}
}

func TestBuildCandidateNovelNumberingContinues(t *testing.T) {
	fp := featureFixture(t, 21)
	fams := noveltyFamily(t, 22, 40)
	base := artifact.Metadata{
		ClassNames:   []string{"a", "b", "c", "d", "novel-0"},
		NovelClasses: 1,
		Dataset:      "60-middle-1", Seed: 7,
	}
	// A 5-class base that already grew novel-0: the base fixture is 4-class,
	// so widen TrainY labels is unnecessary — class count comes from
	// ClassNames, and the new family must become novel-1, not a second
	// novel-0.
	a, err := BuildCandidateArtifact(fp, rawRef(23), fams, CandidateOptions{BaseMeta: base, Trees: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := a.Meta.ClassNames[len(a.Meta.ClassNames)-1]
	if got != "novel-1" {
		t.Fatalf("second-generation novel class named %q, want novel-1", got)
	}
	if a.Meta.NovelClasses != 2 {
		t.Fatalf("NovelClasses %d, want 2", a.Meta.NovelClasses)
	}
}

func TestBuildCandidateRejectsBadInputs(t *testing.T) {
	fp := featureFixture(t, 31)
	if _, err := BuildCandidateArtifact(fp, rawRef(32), nil, CandidateOptions{}); err == nil {
		t.Fatal("no families accepted")
	}
	fams := noveltyFamily(t, 33, 40)
	bare := *fp
	bare.Scaler = nil
	if _, err := BuildCandidateArtifact(&bare, rawRef(34), fams, CandidateOptions{}); err == nil {
		t.Fatal("missing scaler accepted: the candidate would fail the swap compatibility gate")
	}
}

func TestFamiliesEncodeDecodeRoundTrip(t *testing.T) {
	fams := noveltyFamily(t, 41, 32)
	var buf bytes.Buffer
	if err := EncodeFamilies(&buf, fams); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFamilies(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fams) {
		t.Fatalf("round trip produced %d families, want %d", len(got), len(fams))
	}
	for i := range fams {
		w, g := fams[i], got[i]
		if g.ID != w.ID || g.Count != w.Count {
			t.Fatalf("family %d header changed: %+v vs %+v", i, g, w)
		}
		if g.Rows.Rows != w.Rows.Rows || g.Rows.Cols != w.Rows.Cols {
			t.Fatalf("family %d shape changed: %dx%d vs %dx%d", i, g.Rows.Rows, g.Rows.Cols, w.Rows.Rows, w.Rows.Cols)
		}
		for k := range w.Rows.Data {
			if g.Rows.Data[k] != w.Rows.Data[k] {
				t.Fatalf("family %d row data diverged at %d", i, k)
			}
		}
	}
	if _, err := DecodeFamilies(bytes.NewReader([]byte("{\"feature_dim\":2,\"families\":[{\"id\":0,\"rows\":[[1,2,3]]}]}"))); err == nil {
		t.Fatal("dimension-mismatched bundle accepted")
	}
}
