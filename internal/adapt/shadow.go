package adapt

import (
	"sort"

	"repro/internal/drift"
	"repro/internal/fleet"
	"repro/internal/mat"
)

// probaClassifier is the slice of the model contract shadow scoring needs.
type probaClassifier interface {
	PredictProba(x *mat.Matrix) (*mat.Matrix, error)
}

// shadowState scores the candidate model side-by-side with the serving
// model on live traffic: every observed window is re-scored by the
// candidate (one single-row inference — bounded pure compute, per the
// fleet.Observer contract) and compared with the serving verdict the tick
// just published. It accumulates the evidence the promotion gate reads:
// per-class agreement on serving-accepted windows and both models' unknown
// rates. Guarded by the Manager's mutex.
type shadowState struct {
	model probaClassifier
	cal   *drift.Calibration
	row   *mat.Matrix // reusable 1×F input for single-row inference

	windows         uint64 // observed windows scored by both models
	compared        uint64 // windows the serving model accepted (agreement denominator)
	agreed          uint64 // compared windows where the candidate kept the class
	servingRejected uint64
	candRejected    uint64
	perClass        map[int]*classAgreement // keyed by serving class
	errs            uint64
	lastErr         string
}

type classAgreement struct {
	windows uint64
	agreed  uint64
}

func newShadowState(model probaClassifier, cal *drift.Calibration, dim int) *shadowState {
	return &shadowState{
		model:    model,
		cal:      cal,
		row:      mat.New(1, dim),
		perClass: make(map[int]*classAgreement),
	}
}

// score runs the candidate on one observed window and tallies the verdict
// pair. Callers hold the Manager's mutex.
func (s *shadowState) score(o fleet.Observation) {
	copy(s.row.Data, o.Features)
	probs, err := s.model.PredictProba(s.row)
	if err != nil || probs.Rows != 1 {
		s.errs++
		if err != nil {
			s.lastErr = err.Error()
		}
		return
	}
	prow := probs.Row(0)
	candClass := mat.ArgMax(prow)
	candRejected := false
	if s.cal != nil {
		sc := s.cal.Score(prow, o.Features)
		candRejected = s.cal.Threshold.Reject(sc)
	}

	s.windows++
	if o.Rejected {
		s.servingRejected++
	}
	if candRejected {
		s.candRejected++
	}
	if !o.Rejected {
		// Agreement is judged only where the serving model committed to a
		// class; a candidate that rejects such a window disagrees.
		s.compared++
		ca := s.perClass[o.Class]
		if ca == nil {
			ca = &classAgreement{}
			s.perClass[o.Class] = ca
		}
		ca.windows++
		if !candRejected && candClass == o.Class {
			s.agreed++
			ca.agreed++
		}
	}
}

// ShadowStats is the read surface of one shadow comparison, served on
// /v1/adapt and /metrics.
type ShadowStats struct {
	// Windows counts live windows scored by both models; Compared is the
	// agreement denominator (serving-accepted windows) and Agreed the
	// windows where the candidate kept the serving class.
	Windows  uint64 `json:"windows"`
	Compared uint64 `json:"compared"`
	Agreed   uint64 `json:"agreed"`
	// Agreement is Agreed/Compared (0 until anything compared).
	Agreement float64 `json:"agreement"`
	// ServingUnknownRate and CandidateUnknownRate are each model's rejected
	// fraction of Windows — the unknown-rate delta the flywheel exists to
	// close.
	ServingUnknownRate   float64 `json:"serving_unknown_rate"`
	CandidateUnknownRate float64 `json:"candidate_unknown_rate"`
	// PerClass breaks agreement down by serving class, ascending.
	PerClass []ClassAgreement `json:"per_class,omitempty"`
	// Errors counts candidate inference failures (never fatal to serving).
	Errors uint64 `json:"errors,omitempty"`
}

// ClassAgreement is one serving class's row in ShadowStats.
type ClassAgreement struct {
	Class   int     `json:"class"`
	Windows uint64  `json:"windows"`
	Agreed  uint64  `json:"agreed"`
	Rate    float64 `json:"rate"`
}

// stats snapshots the tallies. Callers hold the Manager's mutex.
func (s *shadowState) stats() ShadowStats {
	st := ShadowStats{
		Windows:  s.windows,
		Compared: s.compared,
		Agreed:   s.agreed,
		Errors:   s.errs,
	}
	if s.compared > 0 {
		st.Agreement = float64(s.agreed) / float64(s.compared)
	}
	if s.windows > 0 {
		st.ServingUnknownRate = float64(s.servingRejected) / float64(s.windows)
		st.CandidateUnknownRate = float64(s.candRejected) / float64(s.windows)
	}
	classes := make([]int, 0, len(s.perClass))
	for c := range s.perClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		ca := s.perClass[c]
		row := ClassAgreement{Class: c, Windows: ca.windows, Agreed: ca.agreed}
		if ca.windows > 0 {
			row.Rate = float64(ca.agreed) / float64(ca.windows)
		}
		st.PerClass = append(st.PerClass, row)
	}
	return st
}
