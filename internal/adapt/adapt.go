// Package adapt closes the loop on unknown workloads: the
// continual-learning flywheel that turns the serving plane's open-set
// rejections into new trained classes, zero-downtime.
//
// The paper's framing is a lifecycle, not a one-shot model: detect workloads
// the classifier was never trained on, then incorporate them. PR 5 built the
// detect half (internal/drift); this package is the incorporate half, a
// five-stage state machine riding the serving plane's existing machinery:
//
//	buffer  — rejected windows from fleet tick write-back land in a bounded,
//	          generation-aware reservoir (fleet.Observer; never blocks a tick)
//	cluster — buffered feature vectors group into candidate families by
//	          leader clustering, with a min-support gate so noise never
//	          becomes a class
//	train   — a Trainer (ProvenanceTrainer in production) fits a candidate
//	          model over base classes + families, reusing the serving scaler
//	          verbatim and refreshing the drift calibration
//	shadow  — the candidate scores live traffic side-by-side with the
//	          serving model: per-class agreement, unknown-rate delta
//	promote — on the quality gate (or an explicit POST /v1/adapt/promote)
//	          the candidate installs through the same SwapClassifierDrift /
//	          cluster-distribute path any retrained artifact uses
//
// The flywheel observes serving; it never participates in it. Attaching a
// Manager changes no prediction bit until a promotion actually swaps the
// model — TestAdaptEquivalenceBitIdentical pins that — and every stage
// respects the tick-path discipline the events bus set: bounded work,
// no blocking, drop before delay.
package adapt

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/drift"
	"repro/internal/events"
	"repro/internal/fleet"
	"repro/internal/preprocess"
)

// Phase names one state of the flywheel's lifecycle.
type Phase string

const (
	// PhaseBuffer is the resting state: rejected windows accumulate in the
	// reservoir until a candidate is worth building.
	PhaseBuffer Phase = "buffer"
	// PhaseTrain covers the transient cluster-and-train step; ticks keep
	// buffering while it runs in the background.
	PhaseTrain Phase = "train"
	// PhaseShadow means a candidate is being scored against live traffic.
	PhaseShadow Phase = "shadow"
	// PhasePromoted and PhaseAborted are terminal for one cycle; the next
	// observed window after the swap (or an operator action) returns the
	// flywheel to PhaseBuffer.
	PhasePromoted Phase = "promoted"
	PhaseAborted  Phase = "aborted"
)

// Errors the lifecycle methods return for expected conditions.
var (
	// ErrNotReady means the reservoir has not met the min-support gate.
	ErrNotReady = errors.New("adapt: not enough buffered unknown windows")
	// ErrNoFamilies means clustering found no family dense enough.
	ErrNoFamilies = errors.New("adapt: no cluster met the min-support gate")
	// ErrNoCandidate means there is no candidate to promote or abort.
	ErrNoCandidate = errors.New("adapt: no candidate in shadow")
	// ErrBusy means a candidate build is already in flight.
	ErrBusy = errors.New("adapt: candidate build already running")
	// ErrStale means a model swap landed while the candidate trained, so
	// the candidate was discarded.
	ErrStale = errors.New("adapt: model generation changed during training; candidate discarded")
	// ErrGate means the quality gate is not yet satisfied.
	ErrGate = errors.New("adapt: quality gate not satisfied")
)

// Config sizes a Manager. FeatureDim and Trainer are required; Promote is
// required for promotion to work.
type Config struct {
	// FeatureDim is the embedding width (preprocess.CovarianceDim of the
	// sensor count).
	FeatureDim int
	// Capacity bounds the reservoir (default 4096 rows).
	Capacity int
	// MinSupport is the smallest cluster that may become a class, and also
	// the buffered-row count that arms candidate building (default 30).
	MinSupport int
	// MaxFamilies caps how many new classes one candidate may add
	// (default 4).
	MaxFamilies int
	// Radius is the leader-clustering radius in normalised feature space.
	// Zero derives it from the serving calibration's feature-distance
	// threshold (the natural "different enough to have been rejected"
	// scale), falling back to sqrt(FeatureDim).
	Radius float64
	// Calibration is the serving drift calibration: its feature statistics
	// normalise rows for clustering and its threshold anchors the default
	// Radius. Optional.
	Calibration *drift.Calibration
	// Trainer builds candidate artifacts from clustered families.
	Trainer Trainer
	// ShadowMinWindows is the least live windows a candidate must shadow
	// before the quality gate can pass (default 200).
	ShadowMinWindows int
	// GateAgreement is the per-window agreement the candidate must hold on
	// serving-accepted traffic (default 0.9).
	GateAgreement float64
	// GateUnknownFactor caps the candidate's unknown rate relative to
	// serving's: candidate_rate <= factor × serving_rate (default 0.5).
	// With serving_rate zero the gate never passes — there is nothing to
	// win, and a degenerate candidate must not promote on the back of
	// all-rejected or empty comparisons.
	GateUnknownFactor float64
	// AutoPromote lets Run promote on the gate without an operator; off,
	// the gate only reports ready and POST /v1/adapt/promote decides.
	AutoPromote bool
	// Promote installs a candidate artifact into serving — wccserve writes
	// it to the watched model path (the watcher and cluster distribution
	// then do the swap), tests call SwapClassifierDrift directly.
	Promote func(a *artifact.Artifact) error
	// Events, when non-nil, receives TypeAdapt lifecycle events.
	Events events.Sink
	// Seed makes reservoir sampling deterministic (default 1).
	Seed int64
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.FeatureDim <= 0 {
		return errors.New("adapt: FeatureDim required")
	}
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 30
	}
	if c.MaxFamilies <= 0 {
		c.MaxFamilies = 4
	}
	if c.Radius <= 0 {
		if c.Calibration != nil && c.Calibration.Threshold.MaxFeatDist > 0 {
			c.Radius = c.Calibration.Threshold.MaxFeatDist
		} else {
			c.Radius = math.Sqrt(float64(c.FeatureDim))
		}
	}
	if c.ShadowMinWindows <= 0 {
		c.ShadowMinWindows = 200
	}
	if c.GateAgreement <= 0 {
		c.GateAgreement = 0.9
	}
	if c.GateUnknownFactor <= 0 {
		c.GateUnknownFactor = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Manager runs the flywheel. It implements fleet.Observer; attach it with
// fleet.Monitor.SetAdaptObserver or shard.Core.SetAdaptObserver. All
// methods are safe for concurrent use; ObserveWindow follows the Observer
// contract (bounded compute under the tick mutex, never blocking).
type Manager struct {
	cfg Config

	mu       sync.Mutex
	phase    Phase
	gen      uint64 // swap generation the buffered/shadow state belongs to
	observed uint64 // windows seen since attach (all verdicts)
	res      *reservoir
	training bool
	fams     []Family // families behind the current candidate
	cand     *artifact.Artifact
	candDesc string
	shadow   *shadowState
	promos   uint64
	aborts   uint64
	lastErr  string
}

// New validates the configuration and returns a Manager in PhaseBuffer.
func New(cfg Config) (*Manager, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.Trainer == nil {
		return nil, errors.New("adapt: Trainer required")
	}
	return &Manager{
		cfg:   cfg,
		phase: PhaseBuffer,
		res:   newReservoir(cfg.Capacity, cfg.Seed),
	}, nil
}

// normStats returns the calibration's feature statistics when they match
// the embedding width (nil otherwise — clustering then runs unnormalised).
func normStats(cal *drift.Calibration, dim int) *drift.FeatureStats {
	if cal == nil || cal.Feat == nil || len(cal.Feat.Means) != dim {
		return nil
	}
	return cal.Feat
}

// ObserveWindow implements fleet.Observer: buffer the rejected windows,
// shadow-score everything while a candidate is live, and reset buffered
// state when the model generation moves under us. Runs under the fleet's
// tick mutex — bounded compute only.
func (m *Manager) ObserveWindow(o fleet.Observation) {
	m.mu.Lock()
	if o.Gen != m.gen {
		// A swap landed (a promotion from this flywheel, or any other
		// artifact roll): everything buffered or shadowing was scored by
		// the previous model. Start the cycle over against the new one.
		m.gen = o.Gen
		m.res.reset()
		m.shadow = nil
		m.cand = nil
		m.candDesc = ""
		m.fams = nil
		if m.phase == PhaseShadow || m.phase == PhasePromoted || m.phase == PhaseAborted {
			m.phase = PhaseBuffer
		}
	}
	m.observed++
	if len(o.Features) == m.cfg.FeatureDim {
		if o.Rejected {
			m.res.offer(o.Features)
		}
		if m.shadow != nil {
			m.shadow.score(o)
		}
	}
	m.mu.Unlock()
}

// BuildCandidate runs the cluster-and-train step: snapshot the reservoir,
// cluster it, hand the families to the Trainer, and arm shadow scoring
// with the result. Training runs on the caller's goroutine (Run calls it
// from the background loop; tests call it synchronously) — never on the
// tick path. Returns ErrNotReady / ErrNoFamilies / ErrBusy / ErrStale for
// the expected non-fatal outcomes.
func (m *Manager) BuildCandidate() error {
	m.mu.Lock()
	if m.training {
		m.mu.Unlock()
		return ErrBusy
	}
	if m.shadow != nil {
		m.mu.Unlock()
		return fmt.Errorf("adapt: candidate already in shadow: %w", ErrBusy)
	}
	if len(m.res.rows) < m.cfg.MinSupport {
		m.mu.Unlock()
		return ErrNotReady
	}
	rows := m.res.snapshot()
	gen := m.gen
	m.training = true
	m.phase = PhaseTrain
	m.mu.Unlock()

	norm := normStats(m.cfg.Calibration, m.cfg.FeatureDim)
	fams := Cluster(rows, norm, m.cfg.Radius, m.cfg.MinSupport, m.cfg.MaxFamilies)
	if len(fams) == 0 {
		m.endBuild(gen, nil, nil, ErrNoFamilies)
		return ErrNoFamilies
	}
	m.logf("adapt: clustered %d buffered unknown windows into %d family(ies); training candidate", len(rows), len(fams))
	a, err := m.cfg.Trainer.Train(fams)
	if err == nil && a != nil {
		if _, ok := a.Model.(probaClassifier); !ok {
			err = fmt.Errorf("adapt: trainer returned unservable model %T", a.Model)
		}
	}
	return m.endBuild(gen, fams, a, err)
}

// endBuild finishes a BuildCandidate pass under the lock and publishes the
// outcome after releasing it.
func (m *Manager) endBuild(gen uint64, fams []Family, a *artifact.Artifact, err error) error {
	var evs []events.Event
	m.mu.Lock()
	m.training = false
	switch {
	case err != nil:
		m.lastErr = err.Error()
		if m.phase == PhaseTrain {
			m.phase = PhaseBuffer
		}
	case m.gen != gen:
		// The serving model moved while we trained: the candidate was built
		// from stale rejections. Drop it; buffering has already restarted.
		err = ErrStale
		m.lastErr = err.Error()
		m.phase = PhaseBuffer
	default:
		m.fams = fams
		m.cand = a
		m.candDesc = fmt.Sprintf("%s %d-class (%d novel)", a.Meta.Kind, len(a.Meta.ClassNames), len(fams))
		m.shadow = newShadowState(a.Model.(probaClassifier), a.Drift, m.cfg.FeatureDim)
		m.phase = PhaseShadow
		m.lastErr = ""
		evs = append(evs,
			events.Event{Type: events.TypeAdapt, Phase: "candidate", Model: m.candDesc},
			events.Event{Type: events.TypeAdapt, Phase: "shadow", Model: m.candDesc},
		)
	}
	m.mu.Unlock()
	for _, e := range evs {
		m.publish(e)
	}
	if err == nil {
		m.logf("adapt: candidate in shadow: %s", m.candDesc)
	}
	return err
}

// GateReady reports whether the promotion quality gate currently passes.
func (m *Manager) GateReady() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gateReadyLocked()
}

func (m *Manager) gateReadyLocked() bool {
	if m.shadow == nil {
		return false
	}
	st := m.shadow.stats()
	if st.Windows < uint64(m.cfg.ShadowMinWindows) {
		return false
	}
	// All-rejected traffic leaves nothing to compare: Compared == 0 keeps
	// Agreement at 0 and the gate shut, so a degenerate candidate cannot
	// promote off an empty denominator.
	if st.Compared == 0 || st.Agreement < m.cfg.GateAgreement {
		return false
	}
	if st.ServingUnknownRate <= 0 {
		return false // nothing to win; also avoids the 0×factor trap
	}
	return st.CandidateUnknownRate <= m.cfg.GateUnknownFactor*st.ServingUnknownRate
}

// Promote installs the shadowing candidate through the configured Promote
// hook, unconditionally (the operator's explicit decision). The swap it
// triggers advances the fleet generation, which resets the flywheel to
// buffering on the next observed window.
func (m *Manager) Promote() error {
	m.mu.Lock()
	cand := m.cand
	desc := m.candDesc
	m.mu.Unlock()
	if cand == nil {
		return ErrNoCandidate
	}
	if m.cfg.Promote == nil {
		return errors.New("adapt: no promotion hook configured")
	}
	if err := m.cfg.Promote(cand); err != nil {
		m.mu.Lock()
		m.lastErr = err.Error()
		m.mu.Unlock()
		return err
	}
	m.mu.Lock()
	m.promos++
	m.phase = PhasePromoted
	m.shadow = nil
	m.cand = nil
	m.lastErr = ""
	m.mu.Unlock()
	m.publish(events.Event{Type: events.TypeAdapt, Phase: "promoted", Model: desc})
	m.logf("adapt: promoted candidate: %s", desc)
	return nil
}

// PromoteIfReady promotes only when the quality gate passes, returning
// ErrGate otherwise.
func (m *Manager) PromoteIfReady() error {
	m.mu.Lock()
	ready := m.gateReadyLocked()
	m.mu.Unlock()
	if !ready {
		return ErrGate
	}
	return m.Promote()
}

// Abort discards the shadowing candidate and the buffered reservoir (the
// same rejections would immediately rebuild the same candidate) and
// returns the flywheel to buffering.
func (m *Manager) Abort() error {
	m.mu.Lock()
	if m.cand == nil && m.shadow == nil {
		m.mu.Unlock()
		return ErrNoCandidate
	}
	desc := m.candDesc
	m.cand = nil
	m.candDesc = ""
	m.shadow = nil
	m.fams = nil
	m.res.reset()
	m.aborts++
	m.phase = PhaseBuffer
	m.mu.Unlock()
	m.publish(events.Event{Type: events.TypeAdapt, Phase: "aborted", Model: desc})
	m.logf("adapt: aborted candidate: %s", desc)
	return nil
}

// Candidate returns the current candidate artifact (nil outside shadow).
func (m *Manager) Candidate() *artifact.Artifact {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cand
}

// Families returns the families behind the current candidate (nil outside
// shadow); rows are shared, callers must not mutate.
func (m *Manager) Families() []Family {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fams
}

// Run drives the flywheel in the background until stop closes: build a
// candidate once the reservoir arms, and (with AutoPromote) promote once
// the gate passes. wccserve starts it next to the tick loop; tests drive
// the steps synchronously instead.
func (m *Manager) Run(stop <-chan struct{}, every time.Duration) {
	if every <= 0 {
		every = 5 * time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			m.step()
		}
	}
}

// step is one background-loop iteration.
func (m *Manager) step() {
	m.mu.Lock()
	buffered := len(m.res.rows)
	phase := m.phase
	training := m.training
	m.mu.Unlock()
	switch {
	case phase == PhaseBuffer && !training && buffered >= m.cfg.MinSupport:
		if err := m.BuildCandidate(); err != nil && !errors.Is(err, ErrNotReady) && !errors.Is(err, ErrBusy) {
			m.logf("adapt: candidate build: %v", err)
		}
	case phase == PhaseShadow && m.cfg.AutoPromote:
		if err := m.PromoteIfReady(); err != nil && !errors.Is(err, ErrGate) {
			m.logf("adapt: auto-promotion: %v", err)
		}
	}
}

// FamilyInfo is one family's row in a Status.
type FamilyInfo struct {
	ID    int `json:"id"`
	Count int `json:"count"`
}

// CandidateInfo summarises the candidate under shadow.
type CandidateInfo struct {
	Kind       string   `json:"kind"`
	Classes    int      `json:"classes"`
	Novel      int      `json:"novel"`
	ClassNames []string `json:"class_names,omitempty"`
	// Accuracy is the candidate's accuracy on the regenerated base test
	// split — the "did we keep the old classes" check.
	Accuracy float64 `json:"base_accuracy"`
}

// Status is the flywheel's full read surface, served on GET /v1/adapt.
type Status struct {
	Phase       Phase          `json:"phase"`
	Gen         uint64         `json:"gen"`
	Observed    uint64         `json:"observed_windows"`
	Buffered    int            `json:"buffered"`
	BufferedCap int            `json:"buffer_capacity"`
	Dropped     uint64         `json:"dropped_total"`
	MinSupport  int            `json:"min_support"`
	Training    bool           `json:"training"`
	AutoPromote bool           `json:"auto_promote"`
	GateReady   bool           `json:"gate_ready"`
	Families    []FamilyInfo   `json:"families,omitempty"`
	Candidate   *CandidateInfo `json:"candidate,omitempty"`
	Shadow      *ShadowStats   `json:"shadow,omitempty"`
	Promotions  uint64         `json:"promotions_total"`
	Aborts      uint64         `json:"aborts_total"`
	LastError   string         `json:"last_error,omitempty"`
}

// Status snapshots the flywheel.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Phase:       m.phase,
		Gen:         m.gen,
		Observed:    m.observed,
		Buffered:    len(m.res.rows),
		BufferedCap: m.res.cap,
		Dropped:     m.res.dropped,
		MinSupport:  m.cfg.MinSupport,
		Training:    m.training,
		AutoPromote: m.cfg.AutoPromote,
		GateReady:   m.gateReadyLocked(),
		Promotions:  m.promos,
		Aborts:      m.aborts,
		LastError:   m.lastErr,
	}
	for _, f := range m.fams {
		st.Families = append(st.Families, FamilyInfo{ID: f.ID, Count: f.Count})
	}
	if m.cand != nil {
		st.Candidate = &CandidateInfo{
			Kind:       m.cand.Meta.Kind,
			Classes:    len(m.cand.Meta.ClassNames),
			Novel:      m.cand.Meta.NovelClasses,
			ClassNames: m.cand.Meta.ClassNames,
			Accuracy:   m.cand.Meta.Accuracy,
		}
	}
	if m.shadow != nil {
		ss := m.shadow.stats()
		st.Shadow = &ss
	}
	return st
}

// publish emits a lifecycle event; never called under m.mu (the sink is
// non-blocking by contract, but lifecycle emission has no ordering to
// protect, so it takes no chances with lock scope).
func (m *Manager) publish(e events.Event) {
	if m.cfg.Events != nil {
		m.cfg.Events.Publish(e)
	}
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// FeatureDimFor is a convenience for wiring: the covariance embedding
// width for a sensor count.
func FeatureDimFor(sensors int) int { return preprocess.CovarianceDim(sensors) }
