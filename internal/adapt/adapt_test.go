package adapt

import (
	"errors"
	"testing"

	"repro/internal/artifact"
	"repro/internal/events"
	"repro/internal/fleet"
	"repro/internal/mat"
)

// stubModel always predicts one class with full probability.
type stubModel struct{ class, classes int }

func (s stubModel) PredictProba(x *mat.Matrix) (*mat.Matrix, error) {
	p := mat.New(x.Rows, s.classes)
	for i := 0; i < x.Rows; i++ {
		p.Data[i*s.classes+s.class] = 1
	}
	return p, nil
}

// stubTrainer hands back a canned artifact (and can run a hook mid-train,
// to simulate a model swap landing while training).
type stubTrainer struct {
	a       *artifact.Artifact
	err     error
	midway  func()
	trained int
}

func (s *stubTrainer) Train(fams []Family) (*artifact.Artifact, error) {
	s.trained++
	if s.midway != nil {
		s.midway()
	}
	return s.a, s.err
}

func stubArtifact(class int) *artifact.Artifact {
	return &artifact.Artifact{
		Meta:  artifact.Metadata{ClassNames: []string{"a", "b", "c", "d", "novel-0"}, NovelClasses: 1},
		Model: stubModel{class: class, classes: 5},
	}
}

func testManager(t *testing.T, tr Trainer, promote func(*artifact.Artifact) error, sink events.Sink) *Manager {
	t.Helper()
	m, err := New(Config{
		FeatureDim:       2,
		Capacity:         64,
		MinSupport:       5,
		Radius:           10,
		Trainer:          tr,
		ShadowMinWindows: 10,
		GateAgreement:    0.8,
		Promote:          promote,
		Events:           sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func observe(m *Manager, gen uint64, class int, rejected bool, f0, f1 float64) {
	m.ObserveWindow(fleet.Observation{Job: 0, Class: class, Rejected: rejected, Gen: gen, Features: []float64{f0, f1}})
}

// fillBuffer feeds n rejected windows clustered around one point.
func fillBuffer(m *Manager, gen uint64, n int) {
	for i := 0; i < n; i++ {
		observe(m, gen, 0, true, 50+float64(i%3), 50)
	}
}

func TestManagerLifecycleToPromotion(t *testing.T) {
	var promoted *artifact.Artifact
	bus := events.NewBus()
	sub := bus.Subscribe(events.SubOptions{Types: []events.Type{events.TypeAdapt}, Buffer: 64})
	defer sub.Close()
	tr := &stubTrainer{a: stubArtifact(0)}
	m := testManager(t, tr, func(a *artifact.Artifact) error { promoted = a; return nil }, bus)

	if st := m.Status(); st.Phase != PhaseBuffer || st.Buffered != 0 {
		t.Fatalf("fresh manager: %+v", st)
	}
	if err := m.BuildCandidate(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("empty buffer built a candidate: %v", err)
	}

	fillBuffer(m, 0, 6)
	if st := m.Status(); st.Buffered != 6 || st.Observed != 6 {
		t.Fatalf("after buffering: %+v", st)
	}
	if err := m.BuildCandidate(); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if st.Phase != PhaseShadow || st.Candidate == nil || len(st.Families) != 1 {
		t.Fatalf("after build: %+v", st)
	}
	if st.Candidate.Novel != 1 || st.Candidate.Classes != 5 {
		t.Fatalf("candidate info: %+v", st.Candidate)
	}
	if err := m.BuildCandidate(); !errors.Is(err, ErrBusy) {
		t.Fatalf("rebuild during shadow: %v", err)
	}
	if m.GateReady() {
		t.Fatal("gate open with zero shadow windows")
	}

	// Shadow traffic: 15 serving-accepted class-0 windows the stub agrees
	// with, plus 5 rejected ones (the unknown rate the candidate closes —
	// the stub never rejects, having no calibration).
	for i := 0; i < 15; i++ {
		observe(m, 0, 0, false, 1, 1)
	}
	for i := 0; i < 5; i++ {
		observe(m, 0, 0, true, 60, 60)
	}
	st = m.Status()
	if st.Shadow == nil || st.Shadow.Windows != 20 || st.Shadow.Compared != 15 {
		t.Fatalf("shadow stats: %+v", st.Shadow)
	}
	if st.Shadow.Agreement != 1 {
		t.Fatalf("agreement %v, want 1", st.Shadow.Agreement)
	}
	if !st.GateReady {
		t.Fatalf("gate closed on a perfect candidate: %+v", st.Shadow)
	}
	if err := m.PromoteIfReady(); err != nil {
		t.Fatal(err)
	}
	if promoted != tr.a {
		t.Fatal("promotion hook did not receive the candidate artifact")
	}
	st = m.Status()
	if st.Phase != PhasePromoted || st.Promotions != 1 || st.Candidate != nil {
		t.Fatalf("after promotion: %+v", st)
	}

	// The swap the promotion triggered advances the generation; the next
	// observed window restarts the cycle against the new model.
	observe(m, 1, 4, false, 1, 1)
	st = m.Status()
	if st.Phase != PhaseBuffer || st.Buffered != 0 || st.Gen != 1 {
		t.Fatalf("after generation change: %+v", st)
	}

	var phases []string
	for {
		select {
		case e := <-sub.Events():
			phases = append(phases, e.Phase)
			continue
		default:
		}
		break
	}
	want := []string{"candidate", "shadow", "promoted"}
	if len(phases) != len(want) {
		t.Fatalf("lifecycle events %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("lifecycle events %v, want %v", phases, want)
		}
	}
}

func TestManagerGateFailsClosed(t *testing.T) {
	arm := func(t *testing.T, class int) *Manager {
		m := testManager(t, &stubTrainer{a: stubArtifact(class)}, nil, nil)
		fillBuffer(m, 0, 6)
		if err := m.BuildCandidate(); err != nil {
			t.Fatal(err)
		}
		return m
	}

	t.Run("all rejected traffic", func(t *testing.T) {
		// Every window rejected: Compared stays 0 and the gate must not
		// divide by — or promote on — the empty denominator.
		m := arm(t, 0)
		for i := 0; i < 25; i++ {
			observe(m, 0, 0, true, 60, 60)
		}
		st := m.Status()
		if st.Shadow.Compared != 0 || st.Shadow.Agreement != 0 {
			t.Fatalf("shadow stats: %+v", st.Shadow)
		}
		if st.GateReady {
			t.Fatal("gate open on all-rejected traffic")
		}
		if err := m.PromoteIfReady(); !errors.Is(err, ErrGate) {
			t.Fatalf("PromoteIfReady: %v", err)
		}
	})

	t.Run("zero serving unknown rate", func(t *testing.T) {
		// Nothing rejected: there is nothing for a candidate to win, and
		// candidate_rate <= factor*0 would otherwise pass vacuously.
		m := arm(t, 0)
		for i := 0; i < 25; i++ {
			observe(m, 0, 0, false, 1, 1)
		}
		if m.GateReady() {
			t.Fatal("gate open with a zero serving unknown rate")
		}
	})

	t.Run("low agreement", func(t *testing.T) {
		// The candidate contradicts serving on accepted windows.
		m := arm(t, 1)
		for i := 0; i < 20; i++ {
			observe(m, 0, 0, false, 1, 1)
		}
		for i := 0; i < 5; i++ {
			observe(m, 0, 0, true, 60, 60)
		}
		st := m.Status()
		if st.Shadow.Agreement != 0 {
			t.Fatalf("agreement %v, want 0", st.Shadow.Agreement)
		}
		if st.GateReady {
			t.Fatal("gate open at zero agreement")
		}
	})

	t.Run("too few windows", func(t *testing.T) {
		m := arm(t, 0)
		for i := 0; i < 5; i++ {
			observe(m, 0, 0, false, 1, 1)
		}
		observe(m, 0, 0, true, 60, 60)
		if m.GateReady() {
			t.Fatal("gate open under ShadowMinWindows")
		}
	})
}

func TestManagerStaleCandidateDiscarded(t *testing.T) {
	tr := &stubTrainer{a: stubArtifact(0)}
	m := testManager(t, tr, nil, nil)
	// Mid-train, a swap lands: the generation the candidate was built
	// against is gone by the time training returns.
	tr.midway = func() { observe(m, 7, 0, false, 1, 1) }
	fillBuffer(m, 0, 6)
	if err := m.BuildCandidate(); !errors.Is(err, ErrStale) {
		t.Fatalf("BuildCandidate across a swap: %v", err)
	}
	st := m.Status()
	if st.Phase != PhaseBuffer {
		t.Fatalf("stale build left phase %q, want buffer (flywheel must not wedge)", st.Phase)
	}
	if st.Candidate != nil || st.Shadow != nil {
		t.Fatalf("stale candidate retained: %+v", st)
	}
	// The flywheel keeps working: rebuffer at the new generation and build.
	tr.midway = nil
	fillBuffer(m, 7, 6)
	if err := m.BuildCandidate(); err != nil {
		t.Fatal(err)
	}
	if st := m.Status(); st.Phase != PhaseShadow {
		t.Fatalf("rebuild after stale: %+v", st)
	}
}

func TestManagerAbortRestartsBuffering(t *testing.T) {
	m := testManager(t, &stubTrainer{a: stubArtifact(0)}, nil, nil)
	if err := m.Abort(); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("abort with nothing in flight: %v", err)
	}
	fillBuffer(m, 0, 6)
	if err := m.BuildCandidate(); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if st.Phase != PhaseBuffer || st.Buffered != 0 || st.Aborts != 1 {
		t.Fatalf("after abort: %+v", st)
	}
	if st.Candidate != nil || st.Shadow != nil || len(st.Families) != 0 {
		t.Fatalf("abort retained candidate state: %+v", st)
	}
}

func TestManagerIgnoresTornFeatureRows(t *testing.T) {
	m := testManager(t, &stubTrainer{a: stubArtifact(0)}, nil, nil)
	// A row of the wrong width must not enter the buffer (defensive: the
	// fleet always hands FeatureDim-wide rows).
	m.ObserveWindow(fleet.Observation{Rejected: true, Features: []float64{1, 2, 3}})
	if st := m.Status(); st.Buffered != 0 || st.Observed != 1 {
		t.Fatalf("torn row buffered: %+v", st)
	}
}
