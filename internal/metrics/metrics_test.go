package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]int{0, 1, 2, 1}, []int{0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.75 {
		t.Errorf("accuracy = %v, want 0.75", acc)
	}
	if _, err := Accuracy([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Error("empty input should fail")
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm, err := NewConfusionMatrix([]int{0, 0, 1, 1, 2}, []int{0, 1, 1, 1, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Counts[0][0] != 1 || cm.Counts[0][1] != 1 || cm.Counts[1][1] != 2 || cm.Counts[2][0] != 1 {
		t.Errorf("counts = %v", cm.Counts)
	}
	if math.Abs(cm.Accuracy()-0.6) > 1e-12 {
		t.Errorf("accuracy = %v", cm.Accuracy())
	}
	if _, err := NewConfusionMatrix([]int{5}, []int{0}, 3); err == nil {
		t.Error("out-of-range label should fail")
	}
	if _, err := NewConfusionMatrix([]int{0}, []int{0, 1}, 3); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestPerClassStats(t *testing.T) {
	// Class 0: tp=2 fp=1 fn=0 → precision 2/3, recall 1.
	cm, _ := NewConfusionMatrix([]int{0, 0, 1}, []int{0, 0, 0}, 2)
	stats := cm.PerClass()
	if math.Abs(stats[0].Precision-2.0/3) > 1e-12 || stats[0].Recall != 1 {
		t.Errorf("class 0 stats = %+v", stats[0])
	}
	if stats[1].Recall != 0 || stats[1].Precision != 0 || stats[1].F1 != 0 {
		t.Errorf("class 1 stats = %+v", stats[1])
	}
	if stats[0].Support != 2 || stats[1].Support != 1 {
		t.Errorf("supports = %d, %d", stats[0].Support, stats[1].Support)
	}
}

func TestMacroF1PerfectPrediction(t *testing.T) {
	y := []int{0, 1, 2, 0, 1, 2}
	cm, _ := NewConfusionMatrix(y, y, 3)
	if cm.MacroF1() != 1 {
		t.Errorf("perfect macro F1 = %v", cm.MacroF1())
	}
}

func TestMacroF1IgnoresEmptyClasses(t *testing.T) {
	cm, _ := NewConfusionMatrix([]int{0, 0}, []int{0, 0}, 5)
	if cm.MacroF1() != 1 {
		t.Errorf("macro F1 with absent classes = %v", cm.MacroF1())
	}
}

func TestMostConfused(t *testing.T) {
	cm, _ := NewConfusionMatrix(
		[]int{0, 0, 0, 1, 1, 2},
		[]int{1, 1, 1, 0, 0, 2}, 3)
	top := cm.MostConfused(2)
	if len(top) != 2 {
		t.Fatalf("got %d cells", len(top))
	}
	if top[0] != [3]int{0, 1, 3} {
		t.Errorf("top confusion = %v, want [0 1 3]", top[0])
	}
	if top[1] != [3]int{1, 0, 2} {
		t.Errorf("second confusion = %v, want [1 0 2]", top[1])
	}
}

func TestReport(t *testing.T) {
	rep, err := Report([]int{0, 1, 1}, []int{0, 1, 0}, 2, []string{"VGG11", "Bert"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "VGG11") || !strings.Contains(rep, "Bert") {
		t.Errorf("report missing class names:\n%s", rep)
	}
	if !strings.Contains(rep, "accuracy") || !strings.Contains(rep, "macro F1") {
		t.Errorf("report missing summary rows:\n%s", rep)
	}
	if _, err := Report([]int{0}, []int{9}, 2, nil); err == nil {
		t.Error("bad labels should fail")
	}
}

// TestAccuracyMatchesConfusionTrace property: Accuracy and the confusion
// matrix trace must always agree.
func TestAccuracyMatchesConfusionTrace(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		k := 1 + rng.Intn(10)
		yt := make([]int, n)
		yp := make([]int, n)
		for i := range yt {
			yt[i] = rng.Intn(k)
			yp[i] = rng.Intn(k)
		}
		acc, err := Accuracy(yt, yp)
		if err != nil {
			return false
		}
		cm, err := NewConfusionMatrix(yt, yp, k)
		if err != nil {
			return false
		}
		return math.Abs(acc-cm.Accuracy()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPerClassRecallBounds property: precision/recall/F1 are in [0,1] and
// supports sum to n.
func TestPerClassRecallBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		k := 2 + rng.Intn(6)
		yt := make([]int, n)
		yp := make([]int, n)
		for i := range yt {
			yt[i] = rng.Intn(k)
			yp[i] = rng.Intn(k)
		}
		cm, err := NewConfusionMatrix(yt, yp, k)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range cm.PerClass() {
			if s.Precision < 0 || s.Precision > 1 || s.Recall < 0 || s.Recall > 1 || s.F1 < 0 || s.F1 > 1 {
				return false
			}
			total += s.Support
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
