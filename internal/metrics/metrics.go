// Package metrics provides the classification metrics used to score the
// challenge: accuracy (the challenge's criterion), confusion matrices and
// per-class precision/recall/F1 reports.
package metrics

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Accuracy returns the fraction of predictions equal to the true labels.
func Accuracy(yTrue, yPred []int) (float64, error) {
	if len(yTrue) != len(yPred) {
		return 0, fmt.Errorf("metrics: %d labels vs %d predictions", len(yTrue), len(yPred))
	}
	if len(yTrue) == 0 {
		return 0, errors.New("metrics: empty inputs")
	}
	correct := 0
	for i, y := range yTrue {
		if yPred[i] == y {
			correct++
		}
	}
	return float64(correct) / float64(len(yTrue)), nil
}

// ConfusionMatrix counts prediction outcomes: cell (i, j) is the number of
// trials with true class i predicted as class j.
type ConfusionMatrix struct {
	NumClasses int
	Counts     [][]int
}

// NewConfusionMatrix tallies a confusion matrix over numClasses classes.
func NewConfusionMatrix(yTrue, yPred []int, numClasses int) (*ConfusionMatrix, error) {
	if len(yTrue) != len(yPred) {
		return nil, fmt.Errorf("metrics: %d labels vs %d predictions", len(yTrue), len(yPred))
	}
	cm := &ConfusionMatrix{NumClasses: numClasses, Counts: make([][]int, numClasses)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, numClasses)
	}
	for i, y := range yTrue {
		p := yPred[i]
		if y < 0 || y >= numClasses || p < 0 || p >= numClasses {
			return nil, fmt.Errorf("metrics: label/prediction (%d, %d) out of range [0,%d)", y, p, numClasses)
		}
		cm.Counts[y][p]++
	}
	return cm, nil
}

// Accuracy returns the trace fraction of the confusion matrix.
func (cm *ConfusionMatrix) Accuracy() float64 {
	total, diag := 0, 0
	for i, row := range cm.Counts {
		for j, c := range row {
			total += c
			if i == j {
				diag += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// ClassStats holds the per-class precision/recall/F1 triple.
type ClassStats struct {
	Class     int
	Support   int
	Precision float64
	Recall    float64
	F1        float64
}

// PerClass computes precision, recall and F1 for every class.
func (cm *ConfusionMatrix) PerClass() []ClassStats {
	stats := make([]ClassStats, cm.NumClasses)
	for c := 0; c < cm.NumClasses; c++ {
		var tp, fp, fn int
		for j := 0; j < cm.NumClasses; j++ {
			if j == c {
				tp = cm.Counts[c][c]
				continue
			}
			fn += cm.Counts[c][j]
			fp += cm.Counts[j][c]
		}
		s := ClassStats{Class: c, Support: tp + fn}
		if tp+fp > 0 {
			s.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			s.Recall = float64(tp) / float64(tp+fn)
		}
		if s.Precision+s.Recall > 0 {
			s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
		}
		stats[c] = s
	}
	return stats
}

// MacroF1 averages F1 over classes with non-zero support.
func (cm *ConfusionMatrix) MacroF1() float64 {
	stats := cm.PerClass()
	var sum float64
	n := 0
	for _, s := range stats {
		if s.Support > 0 {
			sum += s.F1
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MostConfused returns the top-k off-diagonal cells by count, useful for
// inspecting which sub-architectures the classifier mixes up.
func (cm *ConfusionMatrix) MostConfused(k int) [][3]int {
	type cell struct{ t, p, n int }
	var cells []cell
	for i, row := range cm.Counts {
		for j, c := range row {
			if i != j && c > 0 {
				cells = append(cells, cell{i, j, c})
			}
		}
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].n > cells[b].n })
	if k > len(cells) {
		k = len(cells)
	}
	out := make([][3]int, k)
	for i := 0; i < k; i++ {
		out[i] = [3]int{cells[i].t, cells[i].p, cells[i].n}
	}
	return out
}

// Report renders a scikit-learn-style classification report. classNames may
// be nil, in which case numeric labels are printed.
func Report(yTrue, yPred []int, numClasses int, classNames []string) (string, error) {
	cm, err := NewConfusionMatrix(yTrue, yPred, numClasses)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %9s %9s %9s %9s\n", "class", "precision", "recall", "f1", "support")
	for _, s := range cm.PerClass() {
		name := fmt.Sprintf("%d", s.Class)
		if classNames != nil && s.Class < len(classNames) {
			name = classNames[s.Class]
		}
		fmt.Fprintf(&b, "%-16s %9.3f %9.3f %9.3f %9d\n", name, s.Precision, s.Recall, s.F1, s.Support)
	}
	fmt.Fprintf(&b, "%-16s %39.3f\n", "accuracy", cm.Accuracy())
	fmt.Fprintf(&b, "%-16s %39.3f\n", "macro F1", cm.MacroF1())
	return b.String(), nil
}
