package shard

import (
	"math/rand"
	"testing"

	"repro/internal/drift"
	"repro/internal/fleet"
	"repro/internal/mat"
)

// shardTestCalibration fits a calibration matched to the shard fixture:
// threshold from the fixture model's held-out probabilities, reference
// from the jobSamples distribution.
func shardTestCalibration(t *testing.T, model interface {
	PredictProbaBatch(x *mat.Matrix) (*mat.Matrix, error)
}) *drift.Calibration {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	trainFeats := mat.New(400, 6)
	for i := range trainFeats.Data {
		trainFeats.Data[i] = rng.NormFloat64()
	}
	heldOut := mat.New(200, 6)
	for i := range heldOut.Data {
		heldOut.Data[i] = rng.NormFloat64()
	}
	probs, err := model.PredictProbaBatch(heldOut)
	if err != nil {
		t.Fatal(err)
	}
	ref := mat.New(4000, testSensors)
	for i := range ref.Data {
		ref.Data[i] = rng.NormFloat64()*2 + 4
	}
	cal, err := drift.Fit(drift.FitInput{
		Probs: probs, TrainFeatures: trainFeats, HeldOutFeatures: heldOut, RawSamples: ref,
	}, drift.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

// TestShardedDriftStatsMatchSingleMonitor pins the merge contract: a
// 4-shard core and one fleet.Monitor fed identical streams must report
// bit-identical drift stats — counts are summed before the PSI is
// computed, exactly as TickStats are merged.
func TestShardedDriftStatsMatchSingleMonitor(t *testing.T) {
	scaler, model := fixture(t)
	cal := shardTestCalibration(t, model)

	core, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler,
		Model: model, Shards: 4, Drift: cal})
	if err != nil {
		t.Fatal(err)
	}
	single, err := fleet.New(fleet.Config{Window: testWindow, Sensors: testSensors,
		Scaler: scaler, Model: model, Drift: cal})
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 60
	for k := 0; k < jobs; k++ {
		for _, s := range jobSamples(k, testWindow+2) {
			if err := core.Ingest(k, s); err != nil {
				t.Fatal(err)
			}
			if err := single.Ingest(k, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := core.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, err := single.Tick(); err != nil {
		t.Fatal(err)
	}

	got, want := core.DriftStats(), single.DriftStats()
	if !got.Enabled || !want.Enabled {
		t.Fatal("drift stats disabled")
	}
	if got.Samples != want.Samples {
		t.Fatalf("sharded binned %d samples, single %d", got.Samples, want.Samples)
	}
	if got.Unknowns != want.Unknowns {
		t.Fatalf("sharded counted %d unknowns, single %d", got.Unknowns, want.Unknowns)
	}
	if len(got.SensorPSI) != len(want.SensorPSI) {
		t.Fatalf("PSI widths differ: %d vs %d", len(got.SensorPSI), len(want.SensorPSI))
	}
	for c := range want.SensorPSI {
		if got.SensorPSI[c] != want.SensorPSI[c] {
			t.Fatalf("sensor %d PSI: sharded %v vs single %v (not bit-identical)",
				c, got.SensorPSI[c], want.SensorPSI[c])
		}
	}
	if got.Score != want.Score {
		t.Fatalf("fleet score: sharded %v vs single %v", got.Score, want.Score)
	}

	// Per-job predictions carry the same annotations on both paths.
	for k := 0; k < jobs; k++ {
		cp, ok1 := core.Prediction(k)
		sp, ok2 := single.Prediction(k)
		if !ok1 || !ok2 {
			t.Fatalf("job %d missing a prediction (sharded %v, single %v)", k, ok1, ok2)
		}
		if (cp.Open == nil) != (sp.Open == nil) {
			t.Fatalf("job %d: annotation presence differs", k)
		}
		if cp.Open != nil && *cp.Open != *sp.Open {
			t.Fatalf("job %d: annotations differ: %+v vs %+v", k, cp.Open, sp.Open)
		}
	}
}

// TestShardedDriftDisabled pins the zero value on a core built without a
// calibration.
func TestShardedDriftDisabled(t *testing.T) {
	scaler, model := fixture(t)
	core := newCore(t, scaler, model, 3)
	if st := core.DriftStats(); st.Enabled || st.Samples != 0 || st.SensorPSI != nil {
		t.Fatalf("drift stats on a plain core: %+v", st)
	}
	if core.Unknowns() != 0 {
		t.Fatal("unknowns nonzero on a plain core")
	}
}
