// Package shard partitions a live fleet across independent fleet.Monitor
// shards so the serving path scales with the machine's cores instead of
// with one lock.
//
// A single fleet.Monitor serialises every batched inference pass on one
// tick mutex and walks one registry, so past a point more cores buy no
// more throughput. The Core in this package owns N monitors (default
// GOMAXPROCS) and
//
//   - routes every job to one shard by a stable hash of its ID — a job's
//     samples, predictions and lifecycle all live on that shard, so per-job
//     ordering guarantees are exactly those of a single monitor;
//   - ticks shards independently: Tick fans one synchronised pass out to
//     every shard on its own goroutine, TickShard drives one shard alone,
//     and Run keeps one tick loop per shard running on independent
//     goroutines until stopped;
//   - aggregates reads: Snapshot merges the per-shard registries into one
//     ID-sorted view, Tick merges per-shard TickStats, and the counters
//     (SamplesIngested, Classifications, Ticks, …) sum across shards;
//   - swaps models atomically fleet-wide: SwapClassifier installs one
//     classifier on every shard while holding the write side of a lock
//     whose read side every tick holds, so a tick anywhere observes either
//     the old model on all shards or the new one on all shards — never a
//     torn generation.
//
// Predictions are bit-identical to a single fleet.Monitor fed the same
// per-job streams: routing only changes which registry a job lives in, and
// fleet ticks score each window independently of its batch. The classifier
// is shared by all shards and must therefore be safe for concurrent
// PredictProba/PredictProbaBatch calls; the serving models (forest, xgb)
// read only fitted state and allocate per call, so they qualify.
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/drift"
	"repro/internal/events"
	"repro/internal/fleet"
	"repro/internal/preprocess"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Config sizes a sharded serving core.
type Config struct {
	// Window and Sensors give the per-job sliding-window shape (the
	// challenge's 540×7).
	Window  int
	Sensors int
	// Scaler holds the offline training-time statistics every job's window
	// is standardised with (see stream.NewWindowedEmbedder).
	Scaler *preprocess.StandardScaler
	// Model classifies embedded windows on every shard. Shards tick
	// concurrently, so it must tolerate concurrent predict calls.
	Model stream.Classifier
	// Shards is the monitor shard count (default GOMAXPROCS, minimum 1).
	// The count is fixed at construction; job routing depends on it.
	Shards int
	// RegistryShards is each monitor's internal registry shard count
	// (0 = the fleet default). Mostly a testing knob.
	RegistryShards int
	// Drift, when non-nil, enables open-set detection and input-drift
	// monitoring on every shard (see fleet.Config.Drift); DriftStats
	// merges the per-shard histograms back into one fleet-wide view.
	Drift *drift.Calibration
	// Now, when non-nil, is handed to every shard monitor as its clock
	// (see fleet.Config.Now); nil means time.Now.
	Now func() time.Time
}

// Core is a sharded fleet: N independent fleet.Monitor shards behind the
// same serving contract a single monitor offers. All methods are safe for
// concurrent use. The shards belong to the Core — driving one of the
// underlying monitors directly would bypass the swap lock that keeps
// cross-shard model generations consistent.
type Core struct {
	monitors []*fleet.Monitor
	window   int
	sensors  int
	drift    *drift.Calibration // nil when drift monitoring is disabled

	// swapMu orders ticks against model swaps: every inference pass holds
	// the read side, SwapClassifier holds the write side while installing
	// the new model on all shards. Ticks on different shards proceed
	// concurrently (read locks share); no tick overlaps an installation.
	// Waiting for the per-shard tick goroutines and publishing the swap
	// event happen under it by design — that ordering IS the protocol.
	//wcc:coordlock tick barrier and swap publish order under this lock
	swapMu sync.RWMutex
	swaps  atomic.Uint64
	// evs is the push-plane sink for fleet-wide swap events; per-shard
	// monitors publish their prediction/unknown events directly (swap
	// events muted — the Core publishes exactly one per fleet-wide swap).
	// Guarded by swapMu alongside the swap protocol it reports on.
	evs events.Sink
}

// New validates the configuration and builds an empty sharded core.
func New(cfg Config) (*Core, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	c := &Core{
		monitors: make([]*fleet.Monitor, cfg.Shards),
		window:   cfg.Window,
		sensors:  cfg.Sensors,
		drift:    cfg.Drift,
	}
	for i := range c.monitors {
		m, err := fleet.New(fleet.Config{
			Window:  cfg.Window,
			Sensors: cfg.Sensors,
			Scaler:  cfg.Scaler,
			Model:   cfg.Model,
			Shards:  cfg.RegistryShards,
			Drift:   cfg.Drift,
			Now:     cfg.Now,
		})
		if err != nil {
			return nil, err
		}
		c.monitors[i] = m
	}
	return c, nil
}

// NumShards returns the monitor shard count fixed at construction.
func (c *Core) NumShards() int { return len(c.monitors) }

// ShardOf returns the shard index the job routes to. The mapping is a
// stable function of the job ID and the shard count only — the same job
// always lands on the same shard for the life of the Core.
func (c *Core) ShardOf(jobID int) int {
	return int(JobHash(jobID) % uint64(len(c.monitors)))
}

// JobHash is the stable job-routing hash — the splitmix64 finalizer, so
// adjacent IDs spread uniformly. It is shared by the in-process shard
// router and the cluster's node router (internal/cluster): both layers
// partition the same keyspace, one hash, two moduli.
func JobHash(jobID int) uint64 {
	h := uint64(jobID)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Ingest feeds one telemetry sample for the given job to the job's shard,
// creating the job there on first sight. Safe for concurrent use from any
// number of goroutines, including concurrently with ticks and swaps.
func (c *Core) Ingest(jobID int, sample []float64) error {
	return c.monitors[c.ShardOf(jobID)].Ingest(jobID, sample)
}

// Tick runs one synchronised inference pass over the whole fleet: every
// shard ticks on its own goroutine, and the per-shard TickStats are merged.
// A shard error does not stop the other shards; the joined errors are
// returned alongside the stats of the shards that succeeded. The model
// generation is consistent across the pass — a concurrent SwapClassifier
// takes effect entirely before or entirely after it.
//
//wcc:tickpath the per-monitor clocks are injected at construction
func (c *Core) Tick() (fleet.TickStats, error) {
	c.swapMu.RLock()
	defer c.swapMu.RUnlock()
	stats := make([]fleet.TickStats, len(c.monitors))
	errs := make([]error, len(c.monitors))
	var wg sync.WaitGroup
	for i, m := range c.monitors {
		wg.Add(1)
		go func(i int, m *fleet.Monitor) {
			defer wg.Done()
			stats[i], errs[i] = m.Tick()
		}(i, m)
	}
	wg.Wait()
	return mergeTickStats(stats), errors.Join(errs...)
}

// TickShard runs one inference pass over a single shard. Different shards
// may tick concurrently; per-shard tick loops built on this — the HTTP
// serving layer runs its own, and Run packages the same shape for
// in-process callers — avoid the whole-fleet barrier of Tick.
//
//wcc:tickpath the per-monitor clocks are injected at construction
func (c *Core) TickShard(i int) (fleet.TickStats, error) {
	if i < 0 || i >= len(c.monitors) {
		return fleet.TickStats{}, fmt.Errorf("shard: no shard %d (have %d)", i, len(c.monitors))
	}
	c.swapMu.RLock()
	defer c.swapMu.RUnlock()
	return c.monitors[i].Tick()
}

// mergeTickStats sums per-shard tick stats into one fleet-wide view.
func mergeTickStats(stats []fleet.TickStats) fleet.TickStats {
	var out fleet.TickStats
	for _, st := range stats {
		out.Classified += st.Classified
		out.Pending += st.Pending
	}
	return out
}

// ShardTick reports one shard inference pass to a Run observer.
type ShardTick struct {
	Shard int
	Stats fleet.TickStats
	Dur   time.Duration
	Err   error
}

// Run drives one tick loop per shard, each on its own goroutine with its
// own ticker, so a slow shard delays nobody else. It blocks until stop is
// closed and every loop has exited. every ≤ 0 selects a 10ms cadence.
// observe, when non-nil, receives every pass's outcome; it is called
// concurrently from the per-shard goroutines and must be safe for that.
func (c *Core) Run(stop <-chan struct{}, every time.Duration, observe func(ShardTick)) {
	if every <= 0 {
		every = 10 * time.Millisecond
	}
	var wg sync.WaitGroup
	for i := range c.monitors {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					t0 := time.Now()
					stats, err := c.TickShard(i)
					if observe != nil {
						observe(ShardTick{Shard: i, Stats: stats, Dur: time.Since(t0), Err: err})
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

// SwapClassifier atomically installs a new model on every shard — the
// fleet-wide zero-downtime refresh. It holds the write side of the swap
// lock for the whole installation, so no inference pass anywhere overlaps
// it: every tick, on every shard, scores with either the old model or the
// new one, never a mix. Ingest never touches the model and proceeds
// untouched throughout. Per-job window state is preserved; the new model
// must consume the same feature layout (and scaler statistics) the shards'
// embedders were built with. The drift calibration is left untouched; a
// retrained artifact's calibration rolls in with SwapClassifierDrift.
func (c *Core) SwapClassifier(model stream.Classifier) error {
	if model == nil {
		return errors.New("shard: cannot swap in a nil model")
	}
	c.swapMu.Lock()
	defer c.swapMu.Unlock()
	for _, m := range c.monitors {
		// The only monitor-level swap failure is a nil model, checked
		// above, so the loop cannot strand shards on mixed generations.
		if err := m.SwapClassifier(model); err != nil {
			return err
		}
	}
	c.swaps.Add(1)
	c.publishSwap(model)
	return nil
}

// SwapClassifierDrift installs a new model together with its own drift
// calibration (nil disables detection) on every shard, under the same
// write lock as SwapClassifier — no tick anywhere scores one model's
// probabilities against another model's thresholds, fleet-wide. Per-shard
// drift histograms reset for the new generation.
func (c *Core) SwapClassifierDrift(model stream.Classifier, cal *drift.Calibration) error {
	if model == nil {
		return errors.New("shard: cannot swap in a nil model")
	}
	c.swapMu.Lock()
	defer c.swapMu.Unlock()
	for _, m := range c.monitors {
		// Validation (nil model, calibration shape) runs before any
		// monitor mutates and is identical across shards, so only the
		// first iteration can fail — the loop never strands the fleet on
		// mixed generations.
		if err := m.SwapClassifierDrift(model, cal); err != nil {
			return err
		}
	}
	c.drift = cal
	c.swaps.Add(1)
	c.publishSwap(model)
	return nil
}

// publishSwap emits the single fleet-wide swap event; callers hold the
// swapMu write side, so the event orders exactly with the installation —
// no shard ticks between the last install and the generation advancing.
func (c *Core) publishSwap(model stream.Classifier) {
	if c.evs != nil {
		c.evs.Publish(events.Event{Type: events.TypeSwap, Model: fmt.Sprintf("%T", model)})
	}
}

// muteSwaps passes a shard monitor's events through to the shared sink but
// drops its swap events: the Core installs one model on N shards and must
// publish exactly one swap event (and advance the bus generation exactly
// once), after every shard carries the new model.
type muteSwaps struct{ sink events.Sink }

func (m muteSwaps) Publish(e events.Event) {
	if e.Type == events.TypeSwap {
		return
	}
	m.sink.Publish(e)
}

// SetEventSink attaches the push plane fleet-wide: every shard's
// prediction and unknown events publish to s, and the Core publishes one
// swap event per fleet-wide swap (per-shard swap events are muted so
// subscribers never see a torn N-event generation). nil detaches.
func (c *Core) SetEventSink(s events.Sink) {
	c.swapMu.Lock()
	defer c.swapMu.Unlock()
	c.evs = s
	for _, m := range c.monitors {
		if s == nil {
			m.SetEventSink(nil)
		} else {
			m.SetEventSink(muteSwaps{sink: s})
		}
	}
}

// SetAdaptObserver threads one continual-learning observer through every
// shard's tick write-back (nil detaches): the observer sees every scored
// window fleet-wide, tagged with the shard monitor's swap generation. The
// observer must be concurrency-safe — shards ticking in parallel call it
// concurrently — on top of the fleet.Observer contract (bounded compute,
// never blocking, never altering a prediction).
func (c *Core) SetAdaptObserver(obs fleet.Observer) {
	c.swapMu.Lock()
	defer c.swapMu.Unlock()
	for _, m := range c.monitors {
		m.SetAdaptObserver(obs)
	}
}

// SetTraceRecorder threads one span recorder through every shard's tick
// path; the recorder is concurrency-safe, so shards ticking in parallel
// feed the same stage histograms. nil detaches.
func (c *Core) SetTraceRecorder(r *trace.Recorder) {
	c.swapMu.Lock()
	defer c.swapMu.Unlock()
	for _, m := range c.monitors {
		m.SetTraceRecorder(r)
	}
}

// Swaps returns the number of completed fleet-wide classifier swaps.
func (c *Core) Swaps() uint64 { return c.swaps.Load() }

// Prediction returns the most recent classification for the job from its
// shard, or false if the job is unknown or not yet classified.
func (c *Core) Prediction(jobID int) (*stream.Prediction, bool) {
	return c.monitors[c.ShardOf(jobID)].Prediction(jobID)
}

// EndJob removes a finished job from its shard and returns the job's final
// published prediction (nil if it was never classified) plus whether the
// job was registered at all.
func (c *Core) EndJob(jobID int) (*stream.Prediction, bool) {
	return c.monitors[c.ShardOf(jobID)].EndJob(jobID)
}

// EvictIdle removes every job, on every shard, whose most recent
// successful sample is at least maxIdle old, and reports how many were
// evicted. Safe to call concurrently with ingest and ticks.
func (c *Core) EvictIdle(maxIdle time.Duration) int {
	n := 0
	for _, m := range c.monitors {
		n += m.EvictIdle(maxIdle)
	}
	return n
}

// Snapshot merges every shard's read-only registry view into one slice
// sorted by job ID. Each shard's rows are internally consistent; rows from
// different shards may be observed at slightly different instants relative
// to concurrent ingest, exactly as a single monitor's registry shards are.
func (c *Core) Snapshot() []fleet.JobInfo {
	var out []fleet.JobInfo
	for _, m := range c.monitors {
		out = append(out, m.Snapshot()...)
	}
	// Shards hold disjoint jobs, so a plain re-sort of the concatenation
	// is a correct merge.
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// Stats is one shard's counters, for shard-labelled observability.
type Stats struct {
	// Jobs is the shard's currently registered job count.
	Jobs int
	// Samples counts the shard's successfully ingested samples.
	Samples uint64
	// Classifications counts per-job classifications the shard's ticks
	// produced.
	Classifications uint64
	// Ticks counts the shard's completed inference passes.
	Ticks uint64
	// Evictions counts jobs removed from the shard (EndJob or EvictIdle).
	Evictions uint64
}

// ShardStats returns one Stats row per shard, indexed by shard.
func (c *Core) ShardStats() []Stats {
	out := make([]Stats, len(c.monitors))
	for i, m := range c.monitors {
		out[i] = Stats{
			Jobs:            m.NumJobs(),
			Samples:         m.SamplesIngested(),
			Classifications: m.Classifications(),
			Ticks:           m.Ticks(),
			Evictions:       m.Evictions(),
		}
	}
	return out
}

// Window returns the per-job sliding-window length the core was built with.
func (c *Core) Window() int { return c.window }

// Sensors returns the per-sample sensor count the core was built with.
func (c *Core) Sensors() int { return c.sensors }

// NumJobs counts registered jobs across all shards.
func (c *Core) NumJobs() int {
	n := 0
	for _, m := range c.monitors {
		n += m.NumJobs()
	}
	return n
}

// SamplesIngested sums successfully ingested samples across all shards.
func (c *Core) SamplesIngested() uint64 {
	var n uint64
	for _, m := range c.monitors {
		n += m.SamplesIngested()
	}
	return n
}

// Classifications sums per-job classifications across all shards.
func (c *Core) Classifications() uint64 {
	var n uint64
	for _, m := range c.monitors {
		n += m.Classifications()
	}
	return n
}

// Ticks sums completed per-shard inference passes across all shards; one
// whole-fleet Tick therefore advances it by NumShards.
func (c *Core) Ticks() uint64 {
	var n uint64
	for _, m := range c.monitors {
		n += m.Ticks()
	}
	return n
}

// Evictions sums jobs removed from the registries across all shards.
func (c *Core) Evictions() uint64 {
	var n uint64
	for _, m := range c.monitors {
		n += m.Evictions()
	}
	return n
}

// Unknowns sums classifications rejected as unknown workloads across all
// shards (0 when drift monitoring is disabled).
func (c *Core) Unknowns() uint64 {
	var n uint64
	for _, m := range c.monitors {
		n += m.Unknowns()
	}
	return n
}

// DriftStats merges the per-shard drift state into one fleet-wide view,
// exactly as Tick merges TickStats: the shards' histogram windows are
// summed first and the per-sensor PSI recomputed on the merged counts
// (PSI is not additive, so averaging per-shard PSIs would misreport), so
// the result is bit-identical to a single monitor fed the same streams.
// The read side of the swap lock keeps the merge on one calibration
// generation.
func (c *Core) DriftStats() fleet.DriftStats {
	c.swapMu.RLock()
	defer c.swapMu.RUnlock()
	if c.drift == nil {
		return fleet.DriftStats{}
	}
	merged := drift.NewWindow(c.sensors, c.drift.Ref.Bins)
	for _, m := range c.monitors {
		if w, ok := m.DriftWindow(); ok {
			merged.Merge(w)
		}
	}
	psi := c.drift.Ref.PSI(merged)
	return fleet.DriftStats{
		Enabled:   true,
		Samples:   merged.Samples,
		Unknowns:  c.Unknowns(),
		SensorPSI: psi,
		Score:     drift.FleetScore(psi),
	}
}
