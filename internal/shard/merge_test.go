package shard

import (
	"sort"
	"sync"
	"testing"
	"time"
)

// shardedIDs returns n job IDs that all route to the given shard — the
// tool for building deliberately uneven job distributions.
func shardedIDs(t *testing.T, c *Core, shard, n int) []int {
	t.Helper()
	var ids []int
	for j := 0; len(ids) < n; j++ {
		if c.ShardOf(j) == shard {
			ids = append(ids, j)
		}
		if j > 1_000_000 {
			t.Fatalf("could not find %d jobs routing to shard %d", n, shard)
		}
	}
	return ids
}

// fill pushes enough samples to fill (and wrap) the job's window.
func fill(t *testing.T, c *Core, jobID int) {
	t.Helper()
	for _, s := range jobSamples(jobID, testWindow+1) {
		if err := c.Ingest(jobID, s); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMergeEmptyCore pins the degenerate merges: a core with no jobs at
// all snapshots empty and ticks to zero stats on every shard.
func TestMergeEmptyCore(t *testing.T) {
	scaler, model := fixture(t)
	c := newCore(t, scaler, model, 4)
	if snap := c.Snapshot(); len(snap) != 0 {
		t.Fatalf("empty core snapshot has %d rows", len(snap))
	}
	stats, err := c.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Classified != 0 || stats.Pending != 0 {
		t.Fatalf("empty core tick stats %+v", stats)
	}
	if c.Ticks() != uint64(c.NumShards()) {
		t.Fatalf("one full tick advanced Ticks to %d, want %d", c.Ticks(), c.NumShards())
	}
}

// TestMergeUnevenDistribution loads every job onto one shard and leaves
// the rest empty: the merged TickStats must equal that one shard's stats,
// and the merged Snapshot must list exactly those jobs, ID-sorted, with
// empty shards contributing nothing.
func TestMergeUnevenDistribution(t *testing.T) {
	scaler, model := fixture(t)
	c := newCore(t, scaler, model, 4)
	const loaded = 2
	ids := shardedIDs(t, c, loaded, 12)
	// Half the jobs get full windows, half stay pending.
	for i, id := range ids {
		if i%2 == 0 {
			fill(t, c, id)
		} else if err := c.Ingest(id, jobSamples(id, 1)[0]); err != nil {
			t.Fatal(err)
		}
	}

	stats, err := c.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Classified != 6 || stats.Pending != 6 {
		t.Fatalf("merged tick stats %+v, want 6 classified / 6 pending", stats)
	}
	per := c.ShardStats()
	for i, st := range per {
		wantJobs := 0
		if i == loaded {
			wantJobs = len(ids)
		}
		if st.Jobs != wantJobs {
			t.Fatalf("shard %d holds %d jobs, want %d", i, st.Jobs, wantJobs)
		}
		if i != loaded && (st.Samples != 0 || st.Classifications != 0) {
			t.Fatalf("empty shard %d reports activity: %+v", i, st)
		}
	}

	snap := c.Snapshot()
	if len(snap) != len(ids) {
		t.Fatalf("snapshot has %d rows, want %d", len(snap), len(ids))
	}
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].JobID < snap[j].JobID }) {
		t.Fatal("merged snapshot is not ID-sorted")
	}
	want := append([]int(nil), ids...)
	sort.Ints(want)
	for i, ji := range snap {
		if ji.JobID != want[i] {
			t.Fatalf("snapshot row %d is job %d, want %d", i, ji.JobID, want[i])
		}
	}
}

// TestMergeAcrossShards spreads jobs over all shards and checks the
// fan-in: merged TickStats equals the sum of per-shard stats, and the
// core-level counters equal the ShardStats sums.
func TestMergeAcrossShards(t *testing.T) {
	scaler, model := fixture(t)
	c := newCore(t, scaler, model, 4)
	const jobs = 40
	for j := 0; j < jobs; j++ {
		if j%4 == 3 {
			// Every fourth job stays pending (window not filled).
			if err := c.Ingest(j, jobSamples(j, 1)[0]); err != nil {
				t.Fatal(err)
			}
			continue
		}
		fill(t, c, j)
	}
	stats, err := c.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Classified != 30 || stats.Pending != 10 {
		t.Fatalf("merged tick stats %+v, want 30 classified / 10 pending", stats)
	}

	per := c.ShardStats()
	var jobsSum int
	var samples, classed, ticks, evicted uint64
	for _, st := range per {
		jobsSum += st.Jobs
		samples += st.Samples
		classed += st.Classifications
		ticks += st.Ticks
		evicted += st.Evictions
	}
	if jobsSum != c.NumJobs() || jobsSum != jobs {
		t.Fatalf("per-shard jobs sum %d, NumJobs %d, want %d", jobsSum, c.NumJobs(), jobs)
	}
	if samples != c.SamplesIngested() || classed != c.Classifications() ||
		ticks != c.Ticks() || evicted != c.Evictions() {
		t.Fatalf("ShardStats sums (%d, %d, %d, %d) disagree with core counters (%d, %d, %d, %d)",
			samples, classed, ticks, evicted,
			c.SamplesIngested(), c.Classifications(), c.Ticks(), c.Evictions())
	}

	// End a classified job and evict the idle pending ones: the merged
	// snapshot and counters must reflect both lifecycle paths.
	if _, ok := c.EndJob(0); !ok {
		t.Fatal("EndJob(0) found nothing")
	}
	time.Sleep(2 * time.Millisecond)
	if n := c.EvictIdle(time.Millisecond); n != jobs-1 {
		t.Fatalf("EvictIdle removed %d jobs, want %d", n, jobs-1)
	}
	if got := c.Evictions(); got != uint64(jobs) {
		t.Fatalf("Evictions = %d, want %d", got, jobs)
	}
	if snap := c.Snapshot(); len(snap) != 0 {
		t.Fatalf("snapshot after full eviction has %d rows", len(snap))
	}
}

// TestMergeWithConcurrentEviction hammers Snapshot and Tick while other
// goroutines end and evict jobs: every merged view must be ID-sorted and
// free of duplicates, whatever the interleaving. Under -race this also
// pins the merge's locking discipline against the eviction paths.
func TestMergeWithConcurrentEviction(t *testing.T) {
	scaler, model := fixture(t)
	c := newCore(t, scaler, model, 4)
	const jobs = 64
	for j := 0; j < jobs; j++ {
		fill(t, c, j)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // re-ingest and end jobs in a loop
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			j := (i * 17) % jobs
			c.EndJob(j)
			for _, s := range jobSamples(j, testWindow+1) {
				// Ingest only fails on a wrong sensor count, which these
				// fixtures cannot produce.
				_ = c.Ingest(j, s)
			}
		}
	}()
	go func() { // idle-evict with a cutoff that catches stragglers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.EvictIdle(time.Microsecond)
		}
	}()

	for i := 0; i < 200; i++ {
		snap := c.Snapshot()
		seen := make(map[int]bool, len(snap))
		last := -1
		for _, ji := range snap {
			if ji.JobID <= last {
				t.Fatalf("snapshot out of order or duplicated: job %d after %d", ji.JobID, last)
			}
			if ji.JobID < 0 || ji.JobID >= jobs || seen[ji.JobID] {
				t.Fatalf("snapshot holds unexpected job %d", ji.JobID)
			}
			seen[ji.JobID] = true
			last = ji.JobID
		}
		if _, err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
