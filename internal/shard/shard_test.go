package shard

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/stream"
)

const (
	testWindow  = 6
	testSensors = 3
)

// fixture builds a scaler fitted for the test window shape and a small
// random forest over the matching covariance-embedding dimension.
func fixture(t *testing.T) (*preprocess.StandardScaler, *forest.Classifier) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	train := mat.New(40, testWindow*testSensors)
	for i := range train.Data {
		train.Data[i] = rng.NormFloat64()*3 + 5
	}
	var scaler preprocess.StandardScaler
	if _, err := scaler.FitTransform(train); err != nil {
		t.Fatal(err)
	}

	dim := preprocess.CovarianceDim(testSensors)
	x := mat.New(200, dim)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.Intn(4)
	}
	f := forest.New(forest.Config{NumTrees: 15, Bootstrap: true, Seed: 2})
	if err := f.Fit(x, y, 4); err != nil {
		t.Fatal(err)
	}
	return &scaler, f
}

// jobSamples derives a deterministic telemetry stream for one job.
func jobSamples(jobID, n int) [][]float64 {
	rng := rand.New(rand.NewSource(int64(jobID)*7919 + 3))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, testSensors)
		for c := range s {
			s[c] = rng.NormFloat64()*2 + 4
		}
		out[i] = s
	}
	return out
}

func newCore(t *testing.T, scaler *preprocess.StandardScaler, model stream.Classifier, shards int) *Core {
	t.Helper()
	c, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// newSingle builds the single-monitor baseline the sharded core is
// compared against.
func newSingle(t *testing.T, scaler *preprocess.StandardScaler, model stream.Classifier) *fleet.Monitor {
	t.Helper()
	m, err := fleet.New(fleet.Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func assertSamePrediction(t *testing.T, jobID int, got, want *stream.Prediction) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("job %d: missing prediction (sharded %v, single %v)", jobID, got, want)
	}
	if got.Class != want.Class || got.Probability != want.Probability {
		t.Fatalf("job %d: sharded (%d, %v) vs single (%d, %v)",
			jobID, got.Class, got.Probability, want.Class, want.Probability)
	}
	if len(got.Probs) != len(want.Probs) {
		t.Fatalf("job %d: %d probs vs %d", jobID, len(got.Probs), len(want.Probs))
	}
	for c := range want.Probs {
		if got.Probs[c] != want.Probs[c] {
			t.Fatalf("job %d class %d: sharded %v vs single %v (not bit-identical)",
				jobID, c, got.Probs[c], want.Probs[c])
		}
	}
}

// TestShardedMatchesSingleMonitor is the tentpole equivalence invariant:
// the same per-job replay through a 4-shard Core and through one
// fleet.Monitor — with deliberately different tick cadences interleaved
// mid-stream on each side — must end in bit-identical predictions for
// every job. Sharding changes throughput, never predictions.
func TestShardedMatchesSingleMonitor(t *testing.T) {
	scaler, model := fixture(t)
	const jobs = 60
	const perJob = testWindow*3 + 5 // past ring wraparound

	single := newSingle(t, scaler, model)
	core := newCore(t, scaler, model, 4)

	streams := make([][][]float64, jobs)
	for j := range streams {
		streams[j] = jobSamples(j, perJob)
	}
	for i := 0; i < perJob; i++ {
		for j := 0; j < jobs; j++ {
			s := streams[j][i]
			if err := single.Ingest(j, s); err != nil {
				t.Fatal(err)
			}
			if err := core.Ingest(j, s); err != nil {
				t.Fatal(err)
			}
		}
		// Different mid-stream cadences on purpose: tick timing must not
		// be observable in final predictions.
		if i%3 == 0 {
			if _, err := single.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		if i%5 == 0 {
			if _, err := core.Tick(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := single.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Tick(); err != nil {
		t.Fatal(err)
	}

	if got, want := core.NumJobs(), single.NumJobs(); got != want {
		t.Fatalf("core registers %d jobs, single monitor %d", got, want)
	}
	if got, want := core.SamplesIngested(), single.SamplesIngested(); got != want {
		t.Fatalf("core ingested %d samples, single monitor %d", got, want)
	}
	for j := 0; j < jobs; j++ {
		got, ok := core.Prediction(j)
		if !ok {
			t.Fatalf("job %d: no sharded prediction", j)
		}
		want, ok := single.Prediction(j)
		if !ok {
			t.Fatalf("job %d: no single-monitor prediction", j)
		}
		assertSamePrediction(t, j, got, want)
	}
}

// TestShardedConcurrentIngest replays every job from its own goroutine
// while per-shard tick loops run, then checks the concurrent result
// against a sequential single monitor. Run under -race this also pins the
// locking discipline of Ingest/TickShard/Run.
func TestShardedConcurrentIngest(t *testing.T) {
	scaler, model := fixture(t)
	const jobs = 64
	const perJob = testWindow*2 + 3

	core := newCore(t, scaler, model, 4)
	stop := make(chan struct{})
	runDone := make(chan struct{})
	var obsMu sync.Mutex
	var tickErr error
	go func() {
		defer close(runDone)
		core.Run(stop, 100*time.Microsecond, func(st ShardTick) {
			obsMu.Lock()
			if st.Err != nil && tickErr == nil {
				tickErr = st.Err
			}
			obsMu.Unlock()
		})
	}()

	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for _, s := range jobSamples(j, perJob) {
				if err := core.Ingest(j, s); err != nil {
					t.Error(err)
					return
				}
			}
		}(j)
	}
	wg.Wait()
	close(stop)
	<-runDone
	if tickErr != nil {
		t.Fatal(tickErr)
	}
	if _, err := core.Tick(); err != nil {
		t.Fatal(err)
	}

	single := newSingle(t, scaler, model)
	for j := 0; j < jobs; j++ {
		for _, s := range jobSamples(j, perJob) {
			if err := single.Ingest(j, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := single.Tick(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < jobs; j++ {
		got, ok := core.Prediction(j)
		if !ok {
			t.Fatalf("job %d: no prediction", j)
		}
		want, _ := single.Prediction(j)
		assertSamePrediction(t, j, got, want)
	}
}

// TestRoutingStable pins ShardOf as a pure function of job ID and shard
// count, and checks jobs spread over every shard rather than clumping.
func TestRoutingStable(t *testing.T) {
	scaler, model := fixture(t)
	core := newCore(t, scaler, model, 8)
	seen := make([]int, core.NumShards())
	for j := 0; j < 4096; j++ {
		s := core.ShardOf(j)
		if s != core.ShardOf(j) {
			t.Fatalf("job %d: routing not stable", j)
		}
		if s < 0 || s >= core.NumShards() {
			t.Fatalf("job %d routed to shard %d of %d", j, s, core.NumShards())
		}
		seen[s]++
	}
	for i, n := range seen {
		// 4096 jobs over 8 shards: a uniform hash puts ~512 on each; an
		// empty or wildly overloaded shard means broken mixing.
		if n < 256 || n > 1024 {
			t.Fatalf("shard %d holds %d of 4096 jobs; routing is badly skewed", i, n)
		}
	}
}

func TestCoreValidation(t *testing.T) {
	scaler, model := fixture(t)
	if _, err := New(Config{Window: 1, Sensors: testSensors, Scaler: scaler, Model: model}); err == nil {
		t.Error("window < 2 should fail")
	}
	if _, err := New(Config{Window: testWindow, Sensors: testSensors, Model: model}); err == nil {
		t.Error("nil scaler should fail")
	}
	if _, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler}); err == nil {
		t.Error("nil model should fail")
	}
	c := newCore(t, scaler, model, 3)
	if got := c.NumShards(); got != 3 {
		t.Fatalf("NumShards = %d, want 3", got)
	}
	if c.Window() != testWindow || c.Sensors() != testSensors {
		t.Fatalf("window shape %dx%d, want %dx%d", c.Window(), c.Sensors(), testWindow, testSensors)
	}
	if _, err := c.TickShard(-1); err == nil {
		t.Error("TickShard(-1) should fail")
	}
	if _, err := c.TickShard(3); err == nil {
		t.Error("TickShard out of range should fail")
	}
	if err := c.SwapClassifier(nil); err == nil {
		t.Error("nil swap should fail")
	}
	def, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if def.NumShards() < 1 {
		t.Fatalf("default shard count %d", def.NumShards())
	}

	// RegistryShards reaches the underlying monitors: a core whose shards
	// each run a single-mutex registry still serves correctly.
	narrow, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model,
		Shards: 2, RegistryShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	samples := jobSamples(9, testWindow)
	for _, s := range samples {
		if err := narrow.Ingest(9, s); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := narrow.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Classified != 1 {
		t.Fatalf("narrow-registry core classified %d jobs, want 1", stats.Classified)
	}
	if _, ok := narrow.Prediction(9); !ok {
		t.Fatal("narrow-registry core has no prediction for job 9")
	}
}
