package shard

import (
	"sync"
	"testing"
	"time"

	"repro/internal/mat"
)

// stamped is a fake classifier whose predictions carry a model identity:
// every row's winning probability is the stamp, so a prediction reveals
// which model generation scored it.
type stamped struct{ stamp float64 }

func (s stamped) PredictProba(x *mat.Matrix) (*mat.Matrix, error) {
	out := mat.New(x.Rows, 2)
	for i := 0; i < x.Rows; i++ {
		row := out.Row(i)
		row[0] = s.stamp
		row[1] = 1 - s.stamp
	}
	return out, nil
}

// TestSwapNeverTearsAcrossShards is the cross-shard atomicity invariant:
// while one goroutine hot-swaps between two stamped models as fast as it
// can, every whole-fleet tick must score ALL shards with a single model
// generation. A torn installation — shard 0 already on the new model while
// shard 3 still ticks the old one inside the same pass — would surface as
// mixed stamps among predictions published by one tick.
func TestSwapNeverTearsAcrossShards(t *testing.T) {
	scaler, _ := fixture(t)
	modelA := stamped{stamp: 0.75}
	modelB := stamped{stamp: 0.6}
	core, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: modelA, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Fill every job's window so each iteration's single sample marks all
	// jobs dirty and the next tick re-scores the whole fleet.
	const jobs = 32
	for j := 0; j < jobs; j++ {
		for _, s := range jobSamples(j, testWindow) {
			if err := core.Ingest(j, s); err != nil {
				t.Fatal(err)
			}
		}
	}

	stop := make(chan struct{})
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m := pickModel(i)
			if err := core.SwapClassifier(m); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for iter := 0; iter < 300; iter++ {
		for j := 0; j < jobs; j++ {
			if err := core.Ingest(j, jobSamples(j, 1)[0]); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := core.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Classified != jobs {
			t.Fatalf("iter %d: tick classified %d of %d jobs", iter, stats.Classified, jobs)
		}
		// All predictions published by this tick must carry one stamp.
		first := -1.0
		for j := 0; j < jobs; j++ {
			pred, ok := core.Prediction(j)
			if !ok {
				t.Fatalf("iter %d: job %d has no prediction", iter, j)
			}
			if first < 0 {
				first = pred.Probability
			} else if pred.Probability != first {
				t.Fatalf("iter %d: torn generation — job %d stamped %v, job 0 stamped %v",
					iter, j, pred.Probability, first)
			}
		}
		if first != modelA.stamp && first != modelB.stamp {
			t.Fatalf("iter %d: unknown stamp %v", iter, first)
		}
	}
	close(stop)
	<-swapDone
	if core.Swaps() == 0 {
		t.Fatal("swap goroutine never swapped; the test raced nothing")
	}
}

// pickModel alternates the two stamped models.
func pickModel(i int) stamped {
	if i%2 == 0 {
		return stamped{stamp: 0.75}
	}
	return stamped{stamp: 0.6}
}

// TestConcurrentIngestSwapEvict is the kitchen-sink race test: per-shard
// tick loops, concurrent ingest from many goroutines, continuous model
// swaps, and both lifecycle paths (EndJob, EvictIdle) all run together.
// The assertions are loose — the point is the interleaving itself under
// -race, plus the invariant that nothing errors and counters stay sane.
func TestConcurrentIngestSwapEvict(t *testing.T) {
	scaler, model := fixture(t)
	core, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		core.Run(stop, 200*time.Microsecond, func(st ShardTick) {
			if st.Err != nil {
				t.Error(st.Err)
			}
		})
	}()

	const jobs = 48
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) { // ingest
			defer wg.Done()
			for i := 0; i < 40; i++ {
				for j := w; j < jobs; j += 4 {
					for _, s := range jobSamples(j, 2) {
						if err := core.Ingest(j, s); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() { // swap
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := core.SwapClassifier(model); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // lifecycle
		defer wg.Done()
		for i := 0; i < 200; i++ {
			core.EndJob(i % jobs)
			core.EvictIdle(50 * time.Millisecond)
			core.Snapshot()
		}
	}()
	wg.Wait()
	close(stop)
	<-runDone

	if _, err := core.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := core.Swaps(); got != 200 {
		t.Fatalf("Swaps = %d, want 200", got)
	}
	if core.NumJobs() > jobs {
		t.Fatalf("registry holds %d jobs, more than the %d ever ingested", core.NumJobs(), jobs)
	}
}
