package shard

import (
	"testing"

	"repro/internal/events"
	"repro/internal/trace"
)

// drainEvents empties everything currently buffered on the subscription
// without blocking.
func drainEvents(sub *events.Subscription) []events.Event {
	var out []events.Event
	for {
		select {
		case e := <-sub.Events():
			out = append(out, e)
		default:
			return out
		}
	}
}

// TestCoreEventsSingleSwapAllShards pins the sharded push plane: prediction
// events flow from every shard's tick loop into one shared bus, but a
// fleet-wide SwapClassifier — which installs on N monitors — publishes
// exactly ONE swap event and advances the generation exactly once. The
// per-monitor swap events are muted; only the Core speaks for the fleet.
func TestCoreEventsSingleSwapAllShards(t *testing.T) {
	scaler, model := fixture(t)
	c := newCore(t, scaler, model, 4)
	bus := events.NewBus()
	sub := bus.Subscribe(events.SubOptions{Buffer: 4096})
	defer sub.Close()
	c.SetEventSink(bus)
	rec := trace.NewRecorder()
	c.SetTraceRecorder(rec)

	// Enough jobs that splitmix64 routing touches every shard.
	const jobs = 64
	for k := 0; k < jobs; k++ {
		for _, s := range jobSamples(k, testWindow) {
			if err := c.Ingest(k, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := c.SwapClassifier(model); err != nil {
		t.Fatal(err)
	}

	evs := drainEvents(sub)
	var preds, swaps int
	shardsSeen := make(map[int]bool)
	for _, e := range evs {
		switch e.Type {
		case events.TypePrediction:
			preds++
			if e.Gen != 0 {
				t.Fatalf("pre-swap prediction at generation %d: %+v", e.Gen, e)
			}
			shardsSeen[c.ShardOf(*e.Job)] = true
		case events.TypeSwap:
			swaps++
			if e.Gen != 1 {
				t.Fatalf("swap event at generation %d, want 1", e.Gen)
			}
		default:
			t.Fatalf("unexpected event type %q", e.Type)
		}
	}
	if preds != jobs {
		t.Fatalf("prediction events = %d, want %d", preds, jobs)
	}
	if len(shardsSeen) != c.NumShards() {
		t.Fatalf("events arrived from %d shards, want %d", len(shardsSeen), c.NumShards())
	}
	if swaps != 1 {
		t.Fatalf("fleet-wide swap published %d swap events, want exactly 1", swaps)
	}
	if got := bus.Gen(); got != 1 {
		t.Fatalf("bus generation %d after one swap, want 1", got)
	}

	// The shared recorder collected tick stages from the shard loops.
	snap := rec.Snapshot()
	for _, st := range []trace.Stage{trace.StageCollect, trace.StageClassify, trace.StageWriteBack} {
		if snap.Stages[st].Count == 0 {
			t.Fatalf("stage %s recorded no spans", st)
		}
	}
}

// TestCoreEventsEquivalenceBitIdentical pins that attaching the
// observability plane to a sharded core changes no prediction bit.
func TestCoreEventsEquivalenceBitIdentical(t *testing.T) {
	scaler, model := fixture(t)
	plain := newCore(t, scaler, model, 4)
	observed := newCore(t, scaler, model, 4)
	bus := events.NewBus()
	sub := bus.Subscribe(events.SubOptions{Buffer: 4096})
	defer sub.Close()
	observed.SetEventSink(bus)
	observed.SetTraceRecorder(trace.NewRecorder())

	const jobs = 48
	const perJob = testWindow*2 + 1
	for k := 0; k < jobs; k++ {
		for _, s := range jobSamples(k, perJob) {
			if err := plain.Ingest(k, s); err != nil {
				t.Fatal(err)
			}
			if err := observed.Ingest(k, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := plain.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, err := observed.Tick(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < jobs; k++ {
		want, ok := plain.Prediction(k)
		if !ok {
			t.Fatalf("job %d: no plain prediction", k)
		}
		got, ok := observed.Prediction(k)
		if !ok {
			t.Fatalf("job %d: no observed prediction", k)
		}
		assertSamePrediction(t, k, got, want)
	}
}
