package npz

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTripNpy(t *testing.T, a *Array) *Array {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteNpy(&buf, a); err != nil {
		t.Fatalf("WriteNpy: %v", err)
	}
	got, err := ReadNpy(&buf)
	if err != nil {
		t.Fatalf("ReadNpy: %v", err)
	}
	return got
}

func TestNpyFloat64RoundTrip(t *testing.T) {
	a, err := FromFloat64s([]float64{1.5, -2.25, math.Pi, 0, 1e300, -1e-300}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTripNpy(t, a)
	if !reflect.DeepEqual(got.Shape, []int{2, 3}) || got.DType != "<f8" {
		t.Errorf("shape/dtype = %v %q", got.Shape, got.DType)
	}
	if !reflect.DeepEqual(got.Float64s, a.Float64s) {
		t.Errorf("data = %v, want %v", got.Float64s, a.Float64s)
	}
}

func TestNpyFloat32RoundTrip(t *testing.T) {
	a, err := FromFloat32s([]float32{1.5, -7.75, 3.25e8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTripNpy(t, a)
	if got.DType != "<f4" || !reflect.DeepEqual(got.Float32s, a.Float32s) {
		t.Errorf("got %v %q", got.Float32s, got.DType)
	}
}

func TestNpyInt64RoundTrip(t *testing.T) {
	a, err := FromInt64s([]int64{-5, 0, 9223372036854775807}, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTripNpy(t, a)
	if !reflect.DeepEqual(got.Int64s, a.Int64s) {
		t.Errorf("got %v", got.Int64s)
	}
}

func TestNpyStringsRoundTrip(t *testing.T) {
	a := FromStrings([]string{"VGG16", "ResNet50_v1.5", "U3-128", "Bert", ""})
	if !strings.HasPrefix(a.DType, "<U") {
		t.Fatalf("dtype = %q", a.DType)
	}
	got := roundTripNpy(t, a)
	if !reflect.DeepEqual(got.Strings, a.Strings) {
		t.Errorf("got %v, want %v", got.Strings, a.Strings)
	}
}

func TestNpyUnicodeStrings(t *testing.T) {
	a := FromStrings([]string{"日本語", "ünïcode"})
	got := roundTripNpy(t, a)
	if !reflect.DeepEqual(got.Strings, a.Strings) {
		t.Errorf("got %v, want %v", got.Strings, a.Strings)
	}
}

func TestNpy1DShapeTuple(t *testing.T) {
	// 1-D arrays must serialise shape as "(n,)".
	a, _ := FromFloat64s([]float64{1, 2, 3}, 3)
	var buf bytes.Buffer
	if err := WriteNpy(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("(3,)")) {
		t.Error("1-D shape not serialised as (3,)")
	}
}

func TestNpyHeaderAlignment(t *testing.T) {
	a, _ := FromFloat64s([]float64{1}, 1)
	var buf bytes.Buffer
	if err := WriteNpy(&buf, a); err != nil {
		t.Fatal(err)
	}
	// Data must start at a multiple of 64.
	dataStart := buf.Len() - 8
	if dataStart%64 != 0 {
		t.Errorf("data starts at %d, not 64-aligned", dataStart)
	}
}

func TestNpyErrors(t *testing.T) {
	if _, err := FromFloat64s([]float64{1, 2}, 3); err == nil {
		t.Error("shape mismatch should fail")
	}
	if _, err := ReadNpy(bytes.NewReader([]byte("not npy"))); err == nil {
		t.Error("bad magic should fail")
	}
	var empty Array
	if err := WriteNpy(&bytes.Buffer{}, &empty); err == nil {
		t.Error("empty array should fail")
	}
}

func TestParseHeaderVariants(t *testing.T) {
	dtype, fortran, shape, err := parseHeader("{'descr': '<f8', 'fortran_order': False, 'shape': (14590, 540, 7), }")
	if err != nil {
		t.Fatal(err)
	}
	if dtype != "<f8" || fortran || !reflect.DeepEqual(shape, []int{14590, 540, 7}) {
		t.Errorf("parsed %q %v %v", dtype, fortran, shape)
	}
	_, fortran, shape, err = parseHeader("{'descr': '<i8', 'fortran_order': True, 'shape': (), }")
	if err != nil {
		t.Fatal(err)
	}
	if !fortran || len(shape) != 0 {
		t.Errorf("scalar header parsed %v %v", fortran, shape)
	}
	if _, _, _, err := parseHeader("{}"); err == nil {
		t.Error("headerless dict should fail")
	}
}

func TestNpzArchiveRoundTrip(t *testing.T) {
	ar := NewArchive()
	x, _ := FromFloat64s([]float64{1, 2, 3, 4, 5, 6}, 1, 2, 3)
	y, _ := FromInt64s([]int64{3, 1, 4}, 3)
	ar.Set("X_train", x)
	ar.Set("y_train", y)
	ar.Set("model_train", FromStrings([]string{"VGG11", "Bert", "SchNet"}))

	var buf bytes.Buffer
	if _, err := ar.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArchive(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Names(), []string{"X_train", "model_train", "y_train"}) {
		t.Errorf("names = %v", got.Names())
	}
	gx, ok := got.Get("X_train")
	if !ok || !reflect.DeepEqual(gx.Shape, []int{1, 2, 3}) {
		t.Errorf("X_train = %+v", gx)
	}
	gm, _ := got.Get("model_train")
	if gm.Strings[2] != "SchNet" {
		t.Errorf("model_train = %v", gm.Strings)
	}
}

func TestNpzFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.npz")
	ar := NewArchive()
	x, _ := FromFloat32s([]float32{9, 8, 7}, 3)
	ar.Set("x", x)
	if err := ar.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gx, ok := got.Get("x")
	if !ok || gx.Float32s[0] != 9 {
		t.Errorf("got %+v", gx)
	}
}

func TestAsFloat64sConversions(t *testing.T) {
	i32 := &Array{Shape: []int{2}, DType: "<i4", Int32s: []int32{1, -2}}
	f, err := i32.AsFloat64s()
	if err != nil || f[1] != -2 {
		t.Errorf("i4→f8 = %v, %v", f, err)
	}
	s := FromStrings([]string{"a"})
	if _, err := s.AsFloat64s(); err == nil {
		t.Error("strings should not convert to floats")
	}
}

func TestAsInts(t *testing.T) {
	f, _ := FromFloat64s([]float64{1, 2, 3}, 3)
	ints, err := f.AsInts()
	if err != nil || ints[2] != 3 {
		t.Errorf("AsInts = %v, %v", ints, err)
	}
	frac, _ := FromFloat64s([]float64{1.5}, 1)
	if _, err := frac.AsInts(); err == nil {
		t.Error("fractional float should not convert to ints")
	}
}

// TestNpyRoundTripProperty fuzzes random float64 arrays through a write/read
// cycle — data must survive bit-exactly.
func TestNpyRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(5), 1+r.Intn(5)
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = r.NormFloat64() * math.Pow(10, float64(r.Intn(10)-5))
		}
		a, err := FromFloat64s(data, rows, cols)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteNpy(&buf, a); err != nil {
			return false
		}
		got, err := ReadNpy(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Float64s, data) && reflect.DeepEqual(got.Shape, []int{rows, cols})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
