package npz

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
)

// Archive is an in-memory .npz file: a set of named arrays.
type Archive struct {
	arrays map[string]*Array
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{arrays: make(map[string]*Array)}
}

// Set stores an array under name (without the ".npy" suffix).
func (ar *Archive) Set(name string, a *Array) { ar.arrays[name] = a }

// Get retrieves an array by name.
func (ar *Archive) Get(name string) (*Array, bool) {
	a, ok := ar.arrays[name]
	return a, ok
}

// Names returns the sorted array names.
func (ar *Archive) Names() []string {
	names := make([]string, 0, len(ar.arrays))
	for n := range ar.arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteTo serialises the archive as a ZIP of .npy members (stored, not
// deflated, matching numpy.savez).
func (ar *Archive) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	zw := zip.NewWriter(cw)
	for _, name := range ar.Names() {
		hdr := &zip.FileHeader{Name: name + ".npy", Method: zip.Store}
		f, err := zw.CreateHeader(hdr)
		if err != nil {
			return cw.n, err
		}
		if err := WriteNpy(f, ar.arrays[name]); err != nil {
			return cw.n, fmt.Errorf("npz: writing %s: %w", name, err)
		}
	}
	if err := zw.Close(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteFile saves the archive to path.
func (ar *Archive) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := ar.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadArchive parses a .npz archive from raw bytes.
func ReadArchive(data []byte) (*Archive, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("npz: not a zip archive: %w", err)
	}
	ar := NewArchive()
	for _, f := range zr.File {
		name := f.Name
		if len(name) > 4 && name[len(name)-4:] == ".npy" {
			name = name[:len(name)-4]
		}
		rc, err := f.Open()
		if err != nil {
			return nil, err
		}
		a, err := ReadNpy(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("npz: member %s: %w", f.Name, err)
		}
		ar.Set(name, a)
	}
	return ar, nil
}

// ReadFile loads a .npz archive from disk.
func ReadFile(path string) (*Archive, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadArchive(data)
}
