// Package directive parses the //wcc: source annotations the wccvet
// analyzers key on: //wcc:hotpath and //wcc:tickpath on function doc
// comments, //wcc:coordlock on mutex struct fields. A directive is a
// comment line whose text is exactly "//wcc:<name>" (with optional
// trailing explanation after a space), following the //go: directive
// convention: no space before "wcc", so gofmt leaves it alone and a
// prose mention of the marker never counts.
package directive

import (
	"go/ast"
	"strings"
)

// Has reports whether the comment group contains the //wcc:<name>
// directive.
func Has(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	marker := "//wcc:" + name
	for _, c := range cg.List {
		text := c.Text
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// HasFunc reports whether the function's doc comment carries the
// //wcc:<name> directive.
func HasFunc(fn *ast.FuncDecl, name string) bool {
	return Has(fn.Doc, name)
}

// HasField reports whether a struct field carries the //wcc:<name>
// directive, in either its doc comment (above) or line comment (trailing).
func HasField(f *ast.Field, name string) bool {
	return Has(f.Doc, name) || Has(f.Comment, name)
}
