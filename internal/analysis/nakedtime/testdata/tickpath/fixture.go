// Package fixture exercises nakedtime on annotated tick paths: direct
// clock reads are flagged, arithmetic on caller-provided times is not,
// and unannotated loop drivers stay free to read the clock.
package fixture

import "time"

type core struct{ last time.Time }

//wcc:tickpath ticks take their clock from the caller
func (c *core) Tick(now time.Time) time.Duration {
	d := now.Sub(c.last) // arithmetic on a caller-provided time: fine
	c.last = now
	return d
}

//wcc:tickpath
func (c *core) badTick() {
	c.last = time.Now()          // want `time\.Now inside`
	time.Sleep(time.Millisecond) // want `time\.Sleep inside`
}

//wcc:tickpath
func (c *core) badClosure() func() time.Duration {
	return func() time.Duration {
		return time.Since(c.last) // want `time\.Since inside`
	}
}

// Run is the loop driver: unannotated, it owns the real clock.
func (c *core) Run(ticks int) {
	for i := 0; i < ticks; i++ {
		c.Tick(time.Now())
	}
}
