// Package fixture exercises nakedtime's annotation-enforcement rule for
// in-scope packages: Tick entry points must carry //wcc:tickpath so the
// rule cannot be dropped by deleting a comment.
package fixture

import "time"

type monitor struct{ last time.Time }

func (m *monitor) Tick(now time.Time) { // want `must carry //wcc:tickpath`
	m.last = now
}

//wcc:tickpath
func (m *monitor) TickShard(now time.Time, shard int) {
	m.last = now
}
