package nakedtime_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/nakedtime"
)

func TestNakedtime(t *testing.T) {
	analyzertest.Run(t, nakedtime.Analyzer, "testdata/tickpath", "example.com/serve")
}

func TestNakedtimeEnforcesAnnotation(t *testing.T) {
	analyzertest.Run(t, nakedtime.Analyzer, "testdata/enforce", "repro/internal/fleet")
}
