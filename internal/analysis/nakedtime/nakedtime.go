// Package nakedtime checks tick-path clock discipline: a function
// annotated //wcc:tickpath must take its notion of time from the caller
// (an injected clock function or an explicit timestamp argument) rather
// than calling the time package directly. The equivalence tests pin the
// serving plane bit-identical across refactors; a naked time.Now inside a
// tick path makes tick output depend on wall-clock jitter and unpins
// them. time.Sleep inside a tick is worse — it stalls the whole cadence.
//
// Inside an annotated function (including its function literals, which
// execute on the same tick) the analyzer flags calls to time.Now,
// time.Sleep, time.Since, time.Until, time.After, time.Tick,
// time.NewTimer and time.NewTicker. Constructing durations and calling
// methods on caller-provided time.Time values remain fine — the rule is
// about where time is read, not how it is arithmetic'd.
//
// The annotation itself is enforced where it matters most: exported
// methods named Tick or TickShard in internal/fleet and internal/shard —
// the entry points the loop drivers call — must carry //wcc:tickpath, so
// the rule cannot be silently dropped by deleting a comment.
package nakedtime

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/directive"
)

// Analyzer is the nakedtime invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "nakedtime",
	Doc:  "report direct time-package reads inside //wcc:tickpath functions, and missing annotations on Tick entry points",
	Run:  run,
}

// denied are the time-package functions that read or wait on the real
// clock.
var denied = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// mustAnnotate lists package-path suffixes whose exported Tick entry
// points are required to carry the annotation.
var mustAnnotate = []string{
	"internal/fleet",
	"internal/shard",
}

func run(pass *analysis.Pass) (interface{}, error) {
	enforce := false
	for _, s := range mustAnnotate {
		if pass.Pkg.Path() == s || strings.HasSuffix(pass.Pkg.Path(), "/"+s) {
			enforce = true
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			annotated := directive.HasFunc(fn, "tickpath")
			if enforce && !annotated && fn.Recv != nil &&
				(fn.Name.Name == "Tick" || fn.Name.Name == "TickShard") {
				pass.Reportf(fn.Pos(), "%s.%s is a tick entry point and must carry //wcc:tickpath", pass.Pkg.Name(), fn.Name.Name)
				continue
			}
			if !annotated {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil, nil
}

// checkBody flags denied time-package calls anywhere in the body,
// including function literals (they run on the same tick).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		if denied[fn.Name()] {
			pass.Reportf(call.Pos(), "time.%s inside //wcc:tickpath function: take the clock from the caller (injected now func or timestamp argument) so equivalence tests stay deterministic", fn.Name())
		}
		return true
	})
}
