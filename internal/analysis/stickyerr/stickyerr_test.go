package stickyerr_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/stickyerr"
)

func TestStickyerr(t *testing.T) {
	analyzertest.Run(t, stickyerr.Analyzer, "testdata/basic", "example.com/decode")
}
