// Package stickyerr checks the sticky-error decoding contract that
// internal/wire's readers (and bufio.Scanner-shaped APIs generally)
// depend on: decode methods return values without per-call errors, the
// first failure latches, and the consumer must call Err() before trusting
// what it decoded. A loop that reads frames and never checks Err() turns
// a truncated artifact or corrupt ingest stream into silently-missing
// samples — the exact failure the PR 6 framing tests exist to keep loud.
//
// The analyzer is structural and intra-procedural. For each function it
// finds local variables whose type carries an `Err() error` method. If
// such a variable has non-Err methods called on it (it is being used to
// decode) but Err() is never called on any path in the function, and the
// variable never escapes the function (it is not passed to another
// function, returned, stored elsewhere, or address-taken outside a
// method call), the declaration is flagged. An escaping decoder is
// assumed to have its Err() checked by whoever it escapes to — that is
// the callee's contract, and cross-function tracking is out of scope for
// a per-package pass.
package stickyerr

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Analyzer is the stickyerr invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "stickyerr",
	Doc:  "report locally-consumed sticky-error decoders (types with Err() error) whose Err() is never checked",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

// decoderUse accumulates how one sticky-error local is used.
type decoderUse struct {
	pos     ast.Node // declaration site, for the diagnostic
	decoded bool     // a non-Err method was called on it
	checked bool     // Err() was called on it
	escaped bool     // any use other than a method call on it
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// Collect local sticky-error variables from := and var declarations.
	locals := map[types.Object]*decoderUse{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var names []*ast.Ident
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					names = append(names, id)
				}
			}
		case *ast.ValueSpec:
			names = n.Names
		default:
			return true
		}
		for _, id := range names {
			obj := pass.TypesInfo.Defs[id]
			if obj == nil || !hasErrMethod(obj.Type()) {
				continue
			}
			locals[obj] = &decoderUse{pos: id}
		}
		return true
	})
	if len(locals) == 0 {
		return
	}

	// First pass: record receiver idents of method calls on the locals,
	// classifying Err vs decode. Any other appearance is an escape.
	methodRecv := map[*ast.Ident]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		use, ok := locals[pass.TypesInfo.Uses[id]]
		if !ok {
			return true
		}
		methodRecv[id] = true
		if sel.Sel.Name == "Err" {
			use.checked = true
		} else {
			use.decoded = true
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || methodRecv[id] {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if use, ok := locals[obj]; ok {
			use.escaped = true
		}
		return true
	})

	for obj, use := range locals {
		if use.decoded && !use.checked && !use.escaped {
			pass.Reportf(use.pos.Pos(), "sticky-error decoder %q is consumed but its Err() is never checked in this function; a latched decode failure would pass silently", obj.Name())
		}
	}
}

// hasErrMethod reports whether t (through a pointer receiver if needed)
// has a method Err() error.
func hasErrMethod(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Pointer); !ok {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			t = types.NewPointer(t)
		}
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i)
		if m.Obj().Name() != "Err" {
			continue
		}
		sig, ok := m.Obj().Type().(*types.Signature)
		if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			continue
		}
		named, ok := sig.Results().At(0).Type().(*types.Named)
		if ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}
