// Package fixture exercises the stickyerr analyzer: a locally-consumed
// sticky-error decoder must have Err() checked; escaping decoders are the
// consumer's responsibility.
package fixture

type reader struct {
	vals []float64
	i    int
	err  error
}

func (r *reader) Next() float64 {
	if r.i >= len(r.vals) {
		r.err = errTruncated
		return 0
	}
	v := r.vals[r.i]
	r.i++
	return v
}

func (r *reader) Err() error { return r.err }

var errTruncated = errorString("truncated")

type errorString string

func (e errorString) Error() string { return string(e) }

func newReader(vals []float64) *reader { return &reader{vals: vals} }

func badNeverChecked(vals []float64) float64 {
	r := newReader(vals) // want `Err\(\) is never checked`
	var sum float64
	for i := 0; i < 4; i++ {
		sum += r.Next()
	}
	return sum
}

func goodChecked(vals []float64) (float64, error) {
	r := newReader(vals)
	var sum float64
	for i := 0; i < 4; i++ {
		sum += r.Next()
	}
	if err := r.Err(); err != nil {
		return 0, err
	}
	return sum, nil
}

// goodEscapes hands the decoder to a callee; checking Err() becomes the
// callee's contract and the local is not flagged.
func goodEscapes(vals []float64) (float64, error) {
	r := newReader(vals)
	return drain(r)
}

func drain(r *reader) (float64, error) {
	var sum float64
	for i := 0; i < 4; i++ {
		sum += r.Next()
	}
	return sum, r.Err()
}

// badValueDecoder covers the var-declared, value-typed form. (Touching
// its fields directly would count as an escape under the analyzer's
// conservative use rule, so this case sticks to method calls.)
func badValueDecoder() float64 {
	var r reader // want `Err\(\) is never checked`
	return r.Next() + r.Next()
}
