// Package analysis hosts the wccvet analyzer suite: custom static
// analyzers that machine-check the serving plane's correctness invariants
// — rules that previously lived only in tests, DESIGN.md prose and
// reviewer memory. One subpackage per invariant:
//
//   - lockscope: no potentially-blocking call (event publish, naked
//     channel send, time.Sleep, net I/O, WaitGroup.Wait) while holding a
//     data mutex; locks whose protocol deliberately orders publishes
//     under them are annotated //wcc:coordlock at the field.
//   - hotpath: functions annotated //wcc:hotpath must stay free of
//     categorically-allocating calls (encoding/json, fmt, reflect, ...)
//     outside early-return guard blocks, and every annotation must be
//     pinned by a testing.AllocsPerRun == 0 gate in its package.
//   - stickyerr: a locally-constructed sticky-error decoder (any type
//     with an Err() error method, like internal/wire's Reader) whose
//     decoded values are consumed must have Err() checked on some path.
//   - boundedqueue: no unbounded data channels (make(chan T) without an
//     explicit capacity) in the push-plane and serving packages.
//   - nakedtime: functions annotated //wcc:tickpath take their clock
//     from the caller instead of calling time.Now/time.Sleep, keeping
//     the equivalence tests deterministic; Tick entry points in
//     fleet/shard must carry the annotation.
//
// The analyzers are built on golang.org/x/tools/go/analysis and run
// through cmd/wccvet (directly, or as a `go vet -vettool`). Each has
// positive and negative fixtures under its testdata/ tree, driven by the
// analyzertest subpackage, so weakening an analyzer fails tier-1 tests.
package analysis
