// Package lockscope checks that no potentially-blocking operation runs
// while a data mutex is held — the bug class the push plane's bounded,
// non-blocking bus design exists to prevent (DESIGN.md §12): a publish or
// channel send under a fleet/shard/server lock would let one stalled
// consumer stall tick write-back for the whole fleet.
//
// While any sync.Mutex or sync.RWMutex is held (Lock or RLock observed
// earlier in the function without a matching Unlock), the analyzer flags:
//
//   - naked channel sends — a send statement, or a send inside a select
//     with no default clause (a select WITH a default is the sanctioned
//     non-blocking form events.Bus.Publish uses);
//   - calls to any method named Publish (the push-plane emission verbs);
//   - time.Sleep, package net and net/http calls, and os/exec;
//   - sync.WaitGroup.Wait and sync.Cond.Wait.
//
// Some locks deliberately order publishes under them: fleet.Monitor's
// tickMu and shard.Core's swapMu hold the swap protocol's guarantee that
// a swap event publishes exactly when the installation is visible, and
// the bus they publish into is itself non-blocking. Such mutex fields are
// annotated //wcc:coordlock at their declaration; Publish and Wait are
// permitted while only coordlocks are held. Sleeps, net I/O and naked
// sends stay forbidden even under a coordlock.
//
// The analysis is intra-procedural and tracks lock state sequentially
// through each function body: a branch that terminates (returns or
// panics) does not leak its lock-state changes past the branch, so the
// common `if err != nil { mu.Unlock(); return err }` guard keeps the
// fall-through path correctly marked as still locked. Helper functions
// whose callers hold locks (e.g. fleet.publishSwap, documented "callers
// hold tickMu") are analyzed in their own context; the convention there
// remains the documented caller contract.
package lockscope

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/directive"
)

// Analyzer is the lockscope invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "report potentially-blocking calls (Publish, channel sends, sleeps, net I/O) while holding a data mutex",
	Run:  run,
}

// heldLock is one acquired mutex on the walker's stack.
type heldLock struct {
	obj   types.Object // the mutex variable or field, for Unlock matching
	name  string
	coord bool // field annotated //wcc:coordlock
}

func run(pass *analysis.Pass) (interface{}, error) {
	coord := coordLocks(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &walker{pass: pass, coord: coord}
			w.stmts(fn.Body.List)
		}
	}
	return nil, nil
}

// coordLocks collects the mutex struct fields annotated //wcc:coordlock.
func coordLocks(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				if !directive.HasField(f, "coordlock") {
					continue
				}
				for _, name := range f.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil && isMutexType(obj.Type()) {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// isMutexType reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

type walker struct {
	pass  *analysis.Pass
	coord map[types.Object]bool
	held  []heldLock
}

// snapshot and restore bracket branches whose lock-state changes must not
// leak (terminating branches, loop bodies that may run zero times).
func (w *walker) snapshot() []heldLock { return append([]heldLock(nil), w.held...) }
func (w *walker) restore(s []heldLock) { w.held = s }

// terminates reports whether the statement list ends by leaving the
// function (return or panic), so its lock-state changes never reach the
// fall-through path.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		w.nakedSend(s)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function, which is exactly how the walker already models an
		// unmatched Lock, so only the arguments need visiting. Other
		// deferred calls run at exit, outside this sequential model.
		for _, e := range s.Call.Args {
			w.expr(e)
		}
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the spawner's locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.fresh(lit.Body)
		}
		for _, e := range s.Call.Args {
			w.expr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		snap := w.snapshot()
		w.stmts(s.Body.List)
		if terminates(s.Body.List) {
			w.restore(snap)
		}
		if s.Else != nil {
			snap := w.snapshot()
			w.stmt(s.Else)
			if blk, ok := s.Else.(*ast.BlockStmt); ok && terminates(blk.List) {
				w.restore(snap)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		snap := w.snapshot()
		w.stmts(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
		w.restore(snap) // the body may run zero times
	case *ast.RangeStmt:
		w.expr(s.X)
		snap := w.snapshot()
		w.stmts(s.Body.List)
		w.restore(snap)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.clauses(s.Body.List)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.clauses(s.Body.List)
	case *ast.SelectStmt:
		w.selectStmt(s)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// clauses walks switch cases, each from the pre-switch lock state.
func (w *walker) clauses(list []ast.Stmt) {
	snap := w.snapshot()
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok {
			for _, e := range cc.List {
				w.expr(e)
			}
			w.stmts(cc.Body)
			w.restore(snap)
		}
	}
}

// selectStmt checks each communication clause: a send in a select without
// a default clause blocks exactly like a naked send.
func (w *walker) selectStmt(s *ast.SelectStmt) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	snap := w.snapshot()
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault {
			w.nakedSend(send)
		}
		w.stmts(cc.Body)
		w.restore(snap)
	}
}

// fresh analyzes a function literal body with an empty lock stack.
func (w *walker) fresh(body *ast.BlockStmt) {
	nw := &walker{pass: w.pass, coord: w.coord}
	nw.stmts(body.List)
}

// expr visits an expression tree for calls and nested function literals.
func (w *walker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures are analyzed with a fresh stack: whether they run
			// under the spawner's locks depends on the call site, which an
			// intra-procedural pass cannot see. They still get checked for
			// their own internal lock discipline.
			w.fresh(n.Body)
			return false
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

// call classifies a call: a Lock/Unlock transition mutates the stack, any
// other call is checked against the blocking denylist.
func (w *walker) call(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if ok {
		if obj, method, isLock := w.lockOp(sel); isLock {
			switch method {
			case "Lock", "RLock":
				w.held = append(w.held, heldLock{obj: obj, name: obj.Name(), coord: w.coord[obj]})
			case "Unlock", "RUnlock":
				for i := len(w.held) - 1; i >= 0; i-- {
					if w.held[i].obj == obj {
						w.held = append(w.held[:i], w.held[i+1:]...)
						break
					}
				}
			}
			return
		}
	}
	if len(w.held) == 0 {
		return
	}
	w.checkBlocking(call)
}

// lockOp resolves a selector call to a mutex Lock/Unlock operation on a
// sync.Mutex/RWMutex-typed variable or field.
func (w *walker) lockOp(sel *ast.SelectorExpr) (types.Object, string, bool) {
	method := sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	var obj types.Object
	switch x := sel.X.(type) {
	case *ast.Ident:
		obj = w.pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		obj = w.pass.TypesInfo.Uses[x.Sel]
	}
	if obj == nil || !isMutexType(obj.Type()) {
		return nil, "", false
	}
	return obj, method, true
}

// nakedSend reports a blocking channel send under any held lock.
func (w *walker) nakedSend(s *ast.SendStmt) {
	if len(w.held) == 0 {
		return
	}
	w.pass.Reportf(s.Arrow, "blocking channel send while holding mutex %q; send after unlocking, or use a select with a default clause", w.held[len(w.held)-1].name)
}

// checkBlocking flags denylisted potentially-blocking calls under held
// locks. Publish and Wait are permitted when every held lock is an
// annotated coordination lock.
func (w *walker) checkBlocking(call *ast.CallExpr) {
	fn := calleeFunc(w.pass, call)
	if fn == nil {
		return
	}
	name := fn.Name()
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}

	hardBlock := ""
	switch {
	case pkgPath == "time" && name == "Sleep":
		hardBlock = "time.Sleep"
	case pkgPath == "net" || pkgPath == "net/http":
		hardBlock = pkgPath + "." + name
	case pkgPath == "os/exec":
		hardBlock = "os/exec." + name
	}
	if hardBlock != "" {
		w.pass.Reportf(call.Pos(), "potentially-blocking call to %s while holding mutex %q", hardBlock, w.held[len(w.held)-1].name)
		return
	}

	soft := ""
	switch {
	case name == "Publish" && fn.Type().(*types.Signature).Recv() != nil:
		soft = "event publish"
	case pkgPath == "sync" && name == "Wait":
		soft = "sync wait"
	}
	if soft == "" {
		return
	}
	for _, h := range w.held {
		if !h.coord {
			w.pass.Reportf(call.Pos(), "%s (%s) while holding data mutex %q; move it after the unlock, or annotate the lock field //wcc:coordlock if ordering under it is part of the protocol", soft, fullName(fn), h.name)
			return
		}
	}
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// fullName renders a readable qualified name for diagnostics.
func fullName(fn *types.Func) string {
	s := fn.FullName()
	// Trim the module path prefix so messages stay short and stable.
	s = strings.ReplaceAll(s, "repro/internal/", "")
	return s
}
