// Package fixture exercises the lockscope analyzer: blocking operations
// under data mutexes must be flagged, the sanctioned patterns (publish
// after unlock, select-with-default, coordlock ordering) must not.
package fixture

import (
	"sync"
	"time"
)

type bus struct{ mu sync.Mutex }

func (b *bus) Publish(v int) {}

type state struct {
	mu sync.Mutex // data lock: guards n
	//wcc:coordlock swap-ordering protocol publishes under this lock
	tickMu sync.Mutex
	n      int
	b      *bus
	ch     chan int
}

func (s *state) badUnderLock() {
	s.mu.Lock()
	s.b.Publish(s.n)             // want `event publish`
	time.Sleep(time.Millisecond) // want `time.Sleep`
	s.ch <- s.n                  // want `blocking channel send`
	s.mu.Unlock()
}

func (s *state) goodAfterUnlock() {
	s.mu.Lock()
	s.n++
	v := s.n
	s.mu.Unlock()
	s.b.Publish(v)
	s.ch <- v
}

func (s *state) goodSelectDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- s.n:
	default:
	}
}

func (s *state) badSelectNoDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- s.n: // want `blocking channel send`
	}
}

// guardKeepsLockState: the early-unlock-and-return guard must not clear
// the lock state on the fall-through path.
func (s *state) guardKeepsLockState(err error) error {
	s.mu.Lock()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.b.Publish(s.n) // want `event publish`
	s.mu.Unlock()
	return nil
}

func (s *state) coordPublishOK() {
	s.tickMu.Lock()
	s.b.Publish(s.n)
	s.tickMu.Unlock()
}

func (s *state) coordStillNoSleep() {
	s.tickMu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep`
	s.tickMu.Unlock()
}

func (s *state) coordPlusDataStillBad() {
	s.tickMu.Lock()
	s.mu.Lock()
	s.b.Publish(s.n) // want `event publish`
	s.mu.Unlock()
	s.tickMu.Unlock()
}

func (s *state) badWaitUnderLock(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `sync wait`
	s.mu.Unlock()
}

// goroutines do not inherit the spawner's locks, but their own bodies
// are still checked.
func (s *state) goroutineFresh() {
	s.mu.Lock()
	go func() {
		s.b.Publish(1)
		s.mu.Lock()
		s.ch <- 2 // want `blocking channel send`
		s.mu.Unlock()
	}()
	s.mu.Unlock()
}
