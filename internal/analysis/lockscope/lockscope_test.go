package lockscope_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/lockscope"
)

func TestLockscope(t *testing.T) {
	analyzertest.Run(t, lockscope.Analyzer, "testdata/basic", "example.com/serveplane")
}
