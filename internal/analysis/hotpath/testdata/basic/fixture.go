// Package fixture exercises the hotpath analyzer: allocating constructs
// in //wcc:hotpath functions are flagged, terminating guard blocks and
// plain append are not, and unannotated functions are out of scope.
package fixture

import (
	"fmt"
	"strconv"
)

type parser struct {
	buf []float64
}

//wcc:hotpath
func (p *parser) coldGuardAllowed(line []byte) (float64, error) {
	if len(line) == 0 {
		return 0, fmt.Errorf("empty line") // cold guard: not flagged
	}
	v, err := strconv.ParseFloat(string(line), 64) // want `string\(\[\]byte\) conversion`
	if err != nil {
		return 0, err
	}
	p.buf = append(p.buf, v) // amortized append: not flagged
	return v, nil
}

//wcc:hotpath
func (p *parser) badFmt(v float64) string {
	return fmt.Sprintf("%f", v) // want `call to fmt.Sprintf`
}

//wcc:hotpath
func (p *parser) badMake(n int) {
	p.buf = make([]float64, n) // want `make in //wcc:hotpath`
}

//wcc:hotpath
func (p *parser) badEscape() *parser {
	return &parser{} // want `address of composite literal`
}

//wcc:hotpath
func (p *parser) badClosure() func() {
	return func() {} // want `function literal`
}

//wcc:hotpath
func (p *parser) badDefer() {
	defer p.reset() // want `defer in //wcc:hotpath`
	p.buf = p.buf[:0]
}

//wcc:hotpath
func (p *parser) badBytes(s string) []byte {
	return []byte(s) // want `\[\]byte\(string\) conversion`
}

func (p *parser) reset() {}

// slowPath carries no annotation; the same constructs are fine here.
func (p *parser) slowPath(v float64) string {
	p.buf = make([]float64, 8)
	defer p.reset()
	return fmt.Sprintf("%f", v)
}
