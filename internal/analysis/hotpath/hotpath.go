// Package hotpath checks that functions annotated //wcc:hotpath — the
// per-sample serving-plane kernels whose zero-allocation behavior PR 6
// measured and BENCH_BASELINE.json only guards within ±25% — stay free of
// categorically-allocating constructs. The AST walk catches the class of
// regression at review time; the per-package testing.AllocsPerRun == 0
// gates (see hotpath_cover_test.go at the repo root for the pinning rule)
// catch what escape analysis alone can decide.
//
// Inside an annotated function the analyzer flags:
//
//   - calls into denylisted packages that allocate or reflect by design:
//     encoding/json, fmt, errors, reflect, regexp, log, sort, strings
//     (Builder/Split-style helpers), bytes.Split/Fields/Join;
//   - string <-> []byte conversions, which copy;
//   - make, new, and taking the address of a composite literal;
//   - function literals (closure capture allocates), go statements and
//     defer statements (deferred frames may allocate, and neither belongs
//     in a per-sample kernel).
//
// One escape hatch keeps the repo's guard-clause idiom legal: a
// denylisted construct inside an if-block that terminates in return or
// panic is a cold branch (malformed input, corrupt frame) and is not
// flagged — e.g. parseIngestLineFast and the wire decoder return
// fmt.Errorf on their error paths, which never run per-sample in steady
// state. Plain append stays allowed: amortized growth into a reused
// buffer is the fast paths' core idiom, and the AllocsPerRun gate is the
// arbiter of whether it actually amortizes to zero.
package hotpath

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/directive"
)

// Analyzer is the hotpath invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "report allocating constructs in //wcc:hotpath-annotated functions outside terminating guard blocks",
	Run:  run,
}

// denyPkgs are import paths that are categorically off a hot path: every
// entry point allocates, formats, or reflects.
var denyPkgs = map[string]string{
	"encoding/json": "encoding/json formats via reflection",
	"fmt":           "fmt formats and allocates",
	"errors":        "errors constructs heap values",
	"reflect":       "reflect boxes its operands",
	"regexp":        "regexp allocates per match",
	"log":           "log formats and locks",
	"sort":          "sort takes interface values",
}

// denyFuncs are individually-denylisted functions from packages that are
// otherwise fine on hot paths.
var denyFuncs = map[string]string{
	"strings.Split":  "allocates the result slice",
	"strings.Fields": "allocates the result slice",
	"strings.Join":   "allocates the result string",
	"bytes.Split":    "allocates the result slice",
	"bytes.Fields":   "allocates the result slice",
	"bytes.Join":     "allocates the result slice",
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !directive.HasFunc(fn, "hotpath") {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil, nil
}

// checkBody walks statements, skipping cold branches (if-blocks that
// terminate in return/panic — error guards never taken per-sample).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	for _, s := range body.List {
		checkStmt(pass, s)
	}
}

func checkStmt(pass *analysis.Pass, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			checkStmt(pass, s.Init)
		}
		checkExpr(pass, s.Cond)
		if !terminates(s.Body.List) {
			checkBody(pass, s.Body)
		}
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				if !terminates(blk.List) {
					checkBody(pass, blk)
				}
			} else {
				checkStmt(pass, s.Else)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			checkStmt(pass, s.Init)
		}
		if s.Cond != nil {
			checkExpr(pass, s.Cond)
		}
		if s.Post != nil {
			checkStmt(pass, s.Post)
		}
		checkBody(pass, s.Body)
	case *ast.RangeStmt:
		checkExpr(pass, s.X)
		checkBody(pass, s.Body)
	case *ast.BlockStmt:
		checkBody(pass, s)
	case *ast.SwitchStmt:
		if s.Init != nil {
			checkStmt(pass, s.Init)
		}
		if s.Tag != nil {
			checkExpr(pass, s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok && !terminates(cc.Body) {
				for _, cs := range cc.Body {
					checkStmt(pass, cs)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			checkStmt(pass, s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok && !terminates(cc.Body) {
				for _, cs := range cc.Body {
					checkStmt(pass, cs)
				}
			}
		}
	case *ast.LabeledStmt:
		checkStmt(pass, s.Stmt)
	case *ast.GoStmt:
		pass.Reportf(s.Pos(), "go statement in //wcc:hotpath function: spawning belongs in the caller, not a per-sample kernel")
	case *ast.DeferStmt:
		pass.Reportf(s.Pos(), "defer in //wcc:hotpath function: deferred frames cost on every call; unwind explicitly")
	case *ast.ReturnStmt:
		// Results on the final return of a non-cold path are hot.
		for _, e := range s.Results {
			checkExpr(pass, e)
		}
	case *ast.ExprStmt:
		checkExpr(pass, s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			checkExpr(pass, e)
		}
		for _, e := range s.Lhs {
			checkExpr(pass, e)
		}
	case *ast.IncDecStmt:
		checkExpr(pass, s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						checkExpr(pass, e)
					}
				}
			}
		}
	case *ast.SelectStmt:
		pass.Reportf(s.Pos(), "select in //wcc:hotpath function: channel operations do not belong in a per-sample kernel")
	case *ast.SendStmt:
		pass.Reportf(s.Pos(), "channel send in //wcc:hotpath function: channel operations do not belong in a per-sample kernel")
	}
}

// terminates reports whether the statement list ends by leaving the
// function, making the whole block a cold guard branch.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		// continue/break skip the sample, they don't process it.
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkExpr flags allocating constructs in a hot expression tree.
func checkExpr(pass *analysis.Pass, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in //wcc:hotpath function: closure capture allocates; hoist it to a method or package function")
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address of composite literal in //wcc:hotpath function escapes to the heap; write into a caller-provided or pooled value")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Builtins make/new, and conversions string([]byte) / []byte(string).
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			pass.Reportf(call.Pos(), "make in //wcc:hotpath function: allocate buffers once at setup and reuse them")
			return
		case "new":
			pass.Reportf(call.Pos(), "new in //wcc:hotpath function: allocate at setup and reuse")
			return
		}
	}
	if conv, msg := stringConversion(pass, call); conv {
		pass.Reportf(call.Pos(), "%s in //wcc:hotpath function copies; use an unsafe zero-copy view or restructure (see server.bytesString)", msg)
		return
	}
	fn := callee(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	if why, bad := denyPkgs[pkg]; bad {
		pass.Reportf(call.Pos(), "call to %s.%s in //wcc:hotpath function: %s", pkg, fn.Name(), why)
		return
	}
	if why, bad := denyFuncs[pkg+"."+fn.Name()]; bad {
		pass.Reportf(call.Pos(), "call to %s.%s in //wcc:hotpath function: %s", pkg, fn.Name(), why)
	}
}

// stringConversion detects string(b []byte) and []byte(s string)
// conversion "calls", which copy their operand.
func stringConversion(pass *analysis.Pass, call *ast.CallExpr) (bool, string) {
	if len(call.Args) != 1 {
		return false, ""
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false, ""
	}
	to := tv.Type
	from := pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return false, ""
	}
	if isString(to) && isByteSlice(from) {
		return true, "string([]byte) conversion"
	}
	if isByteSlice(to) && isString(from) {
		return true, "[]byte(string) conversion"
	}
	return false, ""
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// callee resolves the statically-known called function, if any.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
