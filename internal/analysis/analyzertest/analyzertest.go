// Package analyzertest drives the wccvet analyzers over source fixtures,
// filling the role golang.org/x/tools/go/analysis/analysistest plays in
// fully-networked repos. This repo vendors only the x/tools packages the
// Go toolchain itself vendors (see vendor/modules.txt), which excludes
// analysistest and its go/packages dependency tree, so the harness here
// typechecks fixtures with the standard library's source importer instead
// — no GOPATH layout, no `go list` subprocess, works offline.
//
// Fixtures live under testdata/<case>/ as ordinary parseable Go files.
// Expected diagnostics are declared inline, analysistest-style: a
// trailing comment `// want "regexp"` (multiple quoted patterns allowed)
// on the line the analyzer must flag. The harness fails the test if any
// want goes unreported or any diagnostic is unexpected, in either
// direction — so a weakened analyzer breaks tier-1 `go test ./...`, which
// is the acceptance criterion the fixtures exist to enforce.
package analyzertest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// want is one expected diagnostic: a pattern anchored to a file line.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRE pulls the quoted patterns out of a want comment; both double
// quotes and backquotes are accepted, analysistest-style.
var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// Run analyzes the fixture directory with the analyzer and matches the
// diagnostics against the fixtures' `// want` comments. pkgPath becomes
// the fixture package's import path, which matters for analyzers that
// scope themselves by package path (boundedqueue, nakedtime).
func Run(t *testing.T, a *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()

	fset := token.NewFileSet()
	files, wants := parseFixtures(t, fset, dir)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		// The "source" importer typechecks imported stdlib packages from
		// GOROOT/src — the only importer that works with no build cache
		// and no network. Fixtures therefore stick to stdlib imports.
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixtures in %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		ReadFile:   os.ReadFile,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if len(a.Requires) > 0 {
		t.Fatalf("analyzer %s has Requires; this harness runs dependency-free analyzers only", a.Name)
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	// Every diagnostic must satisfy a want on its line...
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		file := filepath.Base(pos.Filename)
		found := false
		for _, w := range wants {
			if w.file == file && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", file, pos.Line, d.Message)
		}
	}
	// ...and every want must have been satisfied.
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// parseFixtures parses every .go file under dir (sorted, for stable
// package composition) and extracts the `// want` expectations.
func parseFixtures(t *testing.T, fset *token.FileSet, dir string) ([]*ast.File, []*want) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	var files []*ast.File
	var wants []*want
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", path, err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				quoted := wantRE.FindAllString(rest, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: malformed want comment: %s", name, line, c.Text)
				}
				for _, q := range quoted {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", name, line, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s:%d: want pattern does not compile: %v", name, line, err)
					}
					wants = append(wants, &want{file: name, line: line, pattern: re})
				}
			}
		}
	}
	return files, wants
}
