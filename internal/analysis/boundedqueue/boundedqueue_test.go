package boundedqueue_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/boundedqueue"
)

func TestBoundedqueueInScope(t *testing.T) {
	analyzertest.Run(t, boundedqueue.Analyzer, "testdata/scoped", "repro/internal/events")
}

func TestBoundedqueueOutOfScope(t *testing.T) {
	analyzertest.Run(t, boundedqueue.Analyzer, "testdata/unscoped", "example.com/util")
}
