// Package boundedqueue checks the push plane's backpressure invariant:
// every data-carrying channel in the events and server packages must be
// created with an explicit capacity. An unbounded `make(chan T)` in a
// subscriber or ingest queue reintroduces the failure mode PR 7's design
// exists to prevent — one slow consumer blocking the publisher, which
// under lockscope's rules means blocking a tick.
//
// The analyzer flags any `make(chan T)` without a capacity argument in
// in-scope packages, except `chan struct{}`: zero-width channels carry no
// data, they are close-to-signal latches (done/stop channels), and an
// unbuffered handshake is their correct form.
//
// Scope is by package path suffix (internal/events, internal/server) so
// the rule lands on the packages whose channels face external consumers;
// other packages may use unbuffered channels for internal rendezvous
// where blocking is the point (e.g. a worker handoff with both ends
// owned locally).
package boundedqueue

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzer is the boundedqueue invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "boundedqueue",
	Doc:  "report unbounded make(chan T) for data-carrying channels in push-plane packages",
	Run:  run,
}

// scopeSuffixes are the package-path suffixes the rule applies to.
var scopeSuffixes = []string{
	"internal/cluster",
	"internal/events",
	"internal/server",
}

func inScope(path string) bool {
	for _, s := range scopeSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) || strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "make" || len(call.Args) != 1 {
				return true
			}
			// A one-argument make with a channel type is capacity-less.
			t := pass.TypesInfo.TypeOf(call.Args[0])
			ch, ok := t.(*types.Chan)
			if !ok {
				if named, isNamed := t.(*types.Named); isNamed {
					ch, ok = named.Underlying().(*types.Chan)
				}
				if !ok {
					return true
				}
			}
			if isEmptyStruct(ch.Elem()) {
				return true
			}
			pass.Reportf(call.Pos(), "unbounded make(chan %s) in push-plane package %s: pass an explicit capacity so a slow consumer cannot block the publisher", ch.Elem().String(), pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}

// isEmptyStruct reports whether t is struct{} — a signal channel element.
func isEmptyStruct(t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
