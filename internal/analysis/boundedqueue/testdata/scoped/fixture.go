// Package fixture exercises boundedqueue inside an in-scope package
// path: data channels need explicit capacities, signal latches do not.
package fixture

type event struct{ id int }

func badUnbounded() chan event {
	return make(chan event) // want `unbounded make\(chan`
}

func goodBounded() chan event {
	return make(chan event, 128)
}

// goodSignal: zero-width close-to-signal latches are the one sanctioned
// unbuffered form.
func goodSignal() chan struct{} {
	return make(chan struct{})
}

type queue chan event

func badNamedUnbounded() queue {
	return make(queue) // want `unbounded make\(chan`
}
