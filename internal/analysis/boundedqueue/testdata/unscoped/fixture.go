// Package fixture exercises boundedqueue outside its scoped package
// paths: internal rendezvous channels elsewhere are free to block, so
// nothing here is flagged.
package fixture

func handoff() chan int {
	return make(chan int)
}
