package drift

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/wire"
)

// codecVersion is the drift calibration wire version. Bump it together
// with the artifact format version for incompatible layout changes.
const codecVersion = 1

// Sanity bounds for hostile input: a corrupted header cannot make Decode
// allocate unbounded memory.
const (
	maxSensors = 4096
	maxBins    = 4096
)

// Encode writes the calibration in the drift wire format.
func (c *Calibration) Encode(w io.Writer) error {
	if c == nil || c.Ref == nil {
		return errors.New("drift: cannot encode a nil calibration")
	}
	ww := wire.NewWriter(w)
	ww.U32(codecVersion)
	ww.F64(c.Threshold.Temperature)
	ww.F64(c.Threshold.Quantile)
	ww.F64(c.Threshold.MinConf)
	ww.F64(c.Threshold.MinMargin)
	ww.F64(c.Threshold.MaxEnergy)
	ww.F64(c.Threshold.MaxFeatDist)
	ww.Bool(c.Feat != nil)
	if c.Feat != nil {
		ww.F64s(c.Feat.Means)
		ww.F64s(c.Feat.Stds)
		ww.Matrix(c.Feat.Train)
	}
	ww.U32(uint32(c.Ref.Sensors()))
	ww.U32(uint32(c.Ref.Bins))
	for _, edges := range c.Ref.Edges {
		ww.F64s(edges)
	}
	for _, props := range c.Ref.Props {
		ww.F64s(props)
	}
	return ww.Err()
}

// Decode reads a calibration written by Encode. Corrupted or truncated
// input returns an error; Decode never panics on hostile bytes.
func Decode(r io.Reader) (*Calibration, error) {
	rr := wire.NewReader(r)
	if v := rr.U32(); rr.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("drift: unsupported calibration version %d (this build reads %d)", v, codecVersion)
	}
	c := &Calibration{}
	c.Threshold.Temperature = rr.F64()
	c.Threshold.Quantile = rr.F64()
	c.Threshold.MinConf = rr.F64()
	c.Threshold.MinMargin = rr.F64()
	c.Threshold.MaxEnergy = rr.F64()
	c.Threshold.MaxFeatDist = rr.F64()
	if rr.Bool() {
		c.Feat = &FeatureStats{Means: rr.F64s(), Stds: rr.F64s(), Train: rr.Matrix()}
	}
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if c.Feat != nil {
		if len(c.Feat.Means) == 0 || len(c.Feat.Means) != len(c.Feat.Stds) {
			return nil, fmt.Errorf("drift: corrupt calibration: %d feature means, %d stds",
				len(c.Feat.Means), len(c.Feat.Stds))
		}
		if c.Feat.Train == nil || c.Feat.Train.Rows == 0 || c.Feat.Train.Cols != len(c.Feat.Means) {
			return nil, errors.New("drift: corrupt calibration: feature reference rows missing or misshapen")
		}
	}
	sensors := rr.U32()
	bins := rr.U32()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if sensors == 0 || sensors > maxSensors {
		return nil, fmt.Errorf("drift: corrupt calibration: %d sensors", sensors)
	}
	if bins < 2 || bins > maxBins {
		return nil, fmt.Errorf("drift: corrupt calibration: %d bins", bins)
	}
	if c.Threshold.Temperature <= 0 || math.IsNaN(c.Threshold.Temperature) {
		return nil, fmt.Errorf("drift: corrupt calibration: temperature %v", c.Threshold.Temperature)
	}
	ref := &Reference{
		Bins:  int(bins),
		Edges: make([][]float64, sensors),
		Props: make([][]float64, sensors),
	}
	for i := range ref.Edges {
		ref.Edges[i] = rr.F64s()
	}
	for i := range ref.Props {
		ref.Props[i] = rr.F64s()
	}
	if err := rr.Err(); err != nil {
		return nil, err
	}
	for i := range ref.Edges {
		if len(ref.Edges[i]) != int(bins)-1 || len(ref.Props[i]) != int(bins) {
			return nil, fmt.Errorf("drift: corrupt calibration: sensor %d histogram shape", i)
		}
	}
	c.Ref = ref
	return c, nil
}
