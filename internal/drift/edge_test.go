package drift

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// The continual-learning flywheel calibrates candidates from whatever the
// reservoir happened to buffer, so the fitting paths must behave on the
// degenerate sets that pipeline can produce: empty held-out splits,
// single-sample calibration sets, and all-rejected traffic. Every cut
// point must stay finite — a NaN threshold silently accepts (or rejects)
// everything.

// mustMat builds a small literal matrix.
func mustMat(rows, cols int, vals ...float64) *mat.Matrix {
	m, err := mat.FromSlice(rows, cols, vals)
	if err != nil {
		panic(err)
	}
	return m
}

func TestFitThresholdEmptyCalibrationSets(t *testing.T) {
	for name, probs := range map[string]*mat.Matrix{
		"nil":       nil,
		"zero rows": mat.New(0, 4),
		"zero cols": mat.New(4, 0),
	} {
		if _, err := FitThreshold(probs, 0, 0); err == nil {
			t.Fatalf("%s probability matrix accepted", name)
		}
	}
}

func TestFitThresholdSingleSample(t *testing.T) {
	probs := mustMat(1, 3, 0.7, 0.2, 0.1)
	thr, err := FitThreshold(probs, 0, 0)
	if err != nil {
		t.Fatalf("single calibration row refused: %v", err)
	}
	for name, v := range map[string]float64{
		"MinConf": thr.MinConf, "MinMargin": thr.MinMargin, "MaxEnergy": thr.MaxEnergy,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %v from a single sample", name, v)
		}
	}
	// Comparisons are strict, so the calibration row itself — sitting
	// exactly on every cut point — stays accepted.
	if thr.Reject(ScoreProbs(probs.Row(0), thr.Temperature)) {
		t.Fatal("single-sample threshold rejects its own calibration row")
	}
}

func TestFitFeatureStatsDegenerateSets(t *testing.T) {
	if _, err := FitFeatureStats(nil); err == nil {
		t.Fatal("nil feature matrix accepted")
	}
	if _, err := FitFeatureStats(mat.New(0, 3)); err == nil {
		t.Fatal("empty feature matrix accepted")
	}
	// A single row has zero variance everywhere: the stds must clamp to 1,
	// not divide the standardisation by zero.
	fs, err := FitFeatureStats(mustMat(1, 3, 2, 4, 8))
	if err != nil {
		t.Fatalf("single feature row refused: %v", err)
	}
	for j, s := range fs.Stds {
		if s != 1 {
			t.Fatalf("constant feature %d fitted std %v, want the 1 clamp", j, s)
		}
	}
	if d := fs.Distance([]float64{2, 4, 8}); d != 0 {
		t.Fatalf("distance of the only training row to itself = %v", d)
	}
	if d := fs.Distance([]float64{3, 4, 8}); math.IsNaN(d) || d <= 0 {
		t.Fatalf("distance of a shifted row = %v, want finite positive", d)
	}
}

func TestFitSingleSampleCalibration(t *testing.T) {
	// One held-out row end to end: threshold, feature gate and reference
	// all fit without a division by zero, and the resulting calibration
	// accepts its own calibration point.
	probs := mustMat(1, 2, 0.9, 0.1)
	train := mustMat(1, 2, 1, 2)
	held := mustMat(1, 2, 1, 2)
	raw := mustMat(2, 3, 5, 5, 5, 6, 6, 6)
	cal, err := Fit(FitInput{Probs: probs, TrainFeatures: train, HeldOutFeatures: held, RawSamples: raw}, Options{})
	if err != nil {
		t.Fatalf("single-sample calibration refused: %v", err)
	}
	if math.IsNaN(cal.Threshold.MaxFeatDist) {
		t.Fatal("MaxFeatDist is NaN")
	}
	if cal.Threshold.Reject(cal.Score(probs.Row(0), held.Row(0))) {
		t.Fatal("single-sample calibration rejects its own calibration row")
	}
}

func TestFitMismatchedHeldOutRows(t *testing.T) {
	probs := mustMat(2, 2, 0.9, 0.1, 0.8, 0.2)
	train := mustMat(1, 2, 1, 2)
	held := mustMat(1, 2, 1, 2) // 1 row for 2 probability rows
	raw := mustMat(1, 3, 5, 5, 5)
	if _, err := Fit(FitInput{Probs: probs, TrainFeatures: train, HeldOutFeatures: held, RawSamples: raw}, Options{}); err == nil {
		t.Fatal("held-out/probs row mismatch accepted")
	}
	if _, err := Fit(FitInput{Probs: probs, TrainFeatures: train, RawSamples: raw}, Options{}); err == nil {
		t.Fatal("train features without held-out features accepted")
	}
}

func TestRejectionTallyZeroDenominators(t *testing.T) {
	// Fresh tally: both rates are defined as 0, the report is empty.
	var tally RejectionTally
	if r := tally.Recall(); r != 0 {
		t.Fatalf("empty tally recall %v", r)
	}
	if p := tally.Precision(); p != 0 {
		t.Fatalf("empty tally precision %v", p)
	}
	if s := tally.Report(); s != "" {
		t.Fatalf("empty tally report %q", s)
	}

	// All traffic rejected but nothing truly unknown: precision is a real
	// 0/N, recall's denominator is zero and must stay 0, not NaN.
	var allFlagged RejectionTally
	for i := 0; i < 10; i++ {
		allFlagged.Add(false, true)
	}
	if r := allFlagged.Recall(); r != 0 || math.IsNaN(r) {
		t.Fatalf("all-flagged recall %v", r)
	}
	if p := allFlagged.Precision(); p != 0 {
		t.Fatalf("all-flagged precision %v", p)
	}
	if s := allFlagged.Report(); s != "" {
		t.Fatalf("report with zero classified unknowns %q", s)
	}

	// All traffic truly unknown and all rejected: both rates are exactly 1.
	var perfect RejectionTally
	for i := 0; i < 10; i++ {
		perfect.Add(true, true)
	}
	if perfect.Recall() != 1 || perfect.Precision() != 1 {
		t.Fatalf("perfect tally recall %v precision %v", perfect.Recall(), perfect.Precision())
	}
	if perfect.Report() == "" {
		t.Fatal("perfect tally report empty")
	}
}
