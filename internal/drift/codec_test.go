package drift

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mat"
)

func testCalibration(t *testing.T) *Calibration {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	probs := idProbs(rng, 300, 5)
	feats := mat.New(300, 9)
	for i := range feats.Data {
		feats.Data[i] = rng.NormFloat64()
	}
	samples := mat.New(600, 3)
	for i := range samples.Data {
		samples.Data[i] = rng.NormFloat64()*4 + 10
	}
	c, err := Fit(FitInput{Probs: probs, TrainFeatures: feats, HeldOutFeatures: feats, RawSamples: samples},
		Options{Quantile: 0.95, Temperature: 0.7, Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCalibrationCodecRoundTrip(t *testing.T) {
	for _, withFeat := range []bool{true, false} {
		c := testCalibration(t)
		if !withFeat {
			c.Feat = nil
			c.Threshold.MaxFeatDist = 0
		}
		var buf bytes.Buffer
		if err := c.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Threshold != c.Threshold {
			t.Fatalf("threshold drifted: %+v vs %+v", got.Threshold, c.Threshold)
		}
		if !reflect.DeepEqual(got.Feat, c.Feat) {
			t.Fatal("feature stats drifted through the codec")
		}
		if !reflect.DeepEqual(got.Ref, c.Ref) {
			t.Fatal("reference drifted through the codec")
		}
	}
}

func TestDecodeHostileBytes(t *testing.T) {
	c := testCalibration(t)
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncation at every byte must error, never panic.
	for n := 0; n < len(full); n++ {
		if _, err := Decode(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", n)
		}
	}
	// A wrong version is refused.
	bad := append([]byte(nil), full...)
	bad[0] = 99
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Fatal("future codec version accepted")
	}
	// Absurd sensor counts are refused before allocation. A feat-less
	// encoding has a fixed prelude: u32 version, six F64 thresholds, one
	// presence byte — the sensors u32 starts at byte 53.
	noFeat := testCalibration(t)
	noFeat.Feat = nil
	var nf bytes.Buffer
	if err := noFeat.Encode(&nf); err != nil {
		t.Fatal(err)
	}
	bad = append([]byte(nil), nf.Bytes()...)
	bad[53] = 0xff
	bad[54] = 0xff
	bad[55] = 0xff
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Fatal("absurd sensor count accepted")
	}
	if err := (*Calibration)(nil).Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("nil calibration encoded")
	}
}
