package drift

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestScoreProbsConfidentVsUniform(t *testing.T) {
	confident := []float64{0.9, 0.05, 0.03, 0.02}
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	sc := ScoreProbs(confident, 0)
	su := ScoreProbs(uniform, 0)
	if sc.Conf != 0.9 || su.Conf != 0.25 {
		t.Fatalf("conf: got %v and %v", sc.Conf, su.Conf)
	}
	if got := sc.Margin; math.Abs(got-0.85) > 1e-12 {
		t.Fatalf("margin: got %v, want 0.85", got)
	}
	if su.Margin != 0 {
		t.Fatalf("uniform margin: got %v, want 0", su.Margin)
	}
	if sc.Energy >= su.Energy {
		t.Fatalf("energy should rise toward uniform: confident %v, uniform %v", sc.Energy, su.Energy)
	}
	// Uniform over K classes has the maximal energy T·log(K).
	wantMax := DefaultTemperature * math.Log(4)
	if math.Abs(su.Energy-wantMax) > 1e-9 {
		t.Fatalf("uniform energy %v, want %v", su.Energy, wantMax)
	}
}

func TestScoreProbsZeroProbabilitiesFinite(t *testing.T) {
	s := ScoreProbs([]float64{1, 0, 0, 0}, 0)
	if math.IsNaN(s.Energy) || math.IsInf(s.Energy, 0) {
		t.Fatalf("energy not finite on exact-zero probs: %v", s.Energy)
	}
	if s.Conf != 1 || s.Margin != 1 {
		t.Fatalf("got conf %v margin %v", s.Conf, s.Margin)
	}
}

// idProbs builds confident in-distribution-looking probability rows.
func idProbs(rng *rand.Rand, rows, classes int) *mat.Matrix {
	probs := mat.New(rows, classes)
	for i := 0; i < rows; i++ {
		row := probs.Row(i)
		win := rng.Intn(classes)
		p := 0.6 + 0.35*rng.Float64()
		row[win] = p
		rest := 1 - p
		for c := range row {
			if c != win {
				row[c] = rest / float64(classes-1)
			}
		}
	}
	return probs
}

func TestFitThresholdCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	probs := idProbs(rng, 2000, 26)
	thr, err := FitThreshold(probs, 0.99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if thr.Temperature != DefaultTemperature || thr.Quantile != 0.99 {
		t.Fatalf("defaults not recorded: %+v", thr)
	}
	// In-distribution false rejections stay near the calibrated tails:
	// three rules at 1% each bound the union at 3%.
	rejected := 0
	for i := 0; i < probs.Rows; i++ {
		if thr.Reject(ScoreProbs(probs.Row(i), thr.Temperature)) {
			rejected++
		}
	}
	if frac := float64(rejected) / float64(probs.Rows); frac > 0.03 {
		t.Fatalf("in-distribution rejection %v exceeds calibrated bound", frac)
	}
	// A near-uniform row must be rejected.
	flat := make([]float64, 26)
	for i := range flat {
		flat[i] = 1.0 / 26
	}
	if !thr.Reject(ScoreProbs(flat, thr.Temperature)) {
		t.Fatal("uniform probabilities not rejected")
	}
}

func TestFeatureGateCatchesConfidentOOD(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// In-distribution features: standard normal. Probabilities: confident.
	feats := mat.New(2000, 10)
	for i := range feats.Data {
		feats.Data[i] = rng.NormFloat64()
	}
	held := mat.New(500, 10)
	for i := range held.Data {
		held.Data[i] = rng.NormFloat64()
	}
	probs := idProbs(rng, 500, 26)
	samples := mat.New(500, 2)
	for i := range samples.Data {
		samples.Data[i] = rng.NormFloat64()
	}
	cal, err := Fit(FitInput{Probs: probs, TrainFeatures: feats, HeldOutFeatures: held, RawSamples: samples},
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cal.Feat == nil || cal.Threshold.MaxFeatDist <= 0 {
		t.Fatalf("feature gate not fitted: %+v", cal.Threshold)
	}
	// A *confident* prediction on a feature row far outside the training
	// support must still be rejected — the scenario probability scores
	// alone cannot catch (ensembles vote confidently on far-OOD points).
	confident := make([]float64, 26)
	confident[3] = 1
	ood := make([]float64, 10)
	for j := range ood {
		ood[j] = 50
	}
	s := cal.Score(confident, ood)
	if s.FeatDist < 10 {
		t.Fatalf("OOD feature distance %v implausibly small", s.FeatDist)
	}
	if !cal.Threshold.Reject(s) {
		t.Fatal("confident far-OOD prediction not rejected by the feature gate")
	}
	// The same confident prediction on an in-distribution row passes.
	id := make([]float64, 10)
	if cal.Threshold.Reject(cal.Score(confident, id)) {
		t.Fatal("confident in-distribution prediction rejected")
	}
}

func TestFitThresholdRejectsBadInput(t *testing.T) {
	if _, err := FitThreshold(nil, 0, 0); err == nil {
		t.Fatal("nil probs accepted")
	}
	if _, err := FitThreshold(mat.New(3, 4), 1.5, 0); err == nil {
		t.Fatal("quantile 1.5 accepted")
	}
}

func TestFitReferenceEqualMass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	samples := mat.New(4000, 3)
	for i := range samples.Data {
		samples.Data[i] = rng.NormFloat64()
	}
	ref, err := FitReference(samples, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Sensors() != 3 || ref.Bins != 8 {
		t.Fatalf("shape %dx%d", ref.Sensors(), ref.Bins)
	}
	for c := 0; c < 3; c++ {
		if len(ref.Edges[c]) != 7 || len(ref.Props[c]) != 8 {
			t.Fatalf("sensor %d histogram shape", c)
		}
		total := 0.0
		for b, p := range ref.Props[c] {
			total += p
			if p < 0.05 || p > 0.25 {
				t.Fatalf("sensor %d bin %d mass %v far from equal-mass 0.125", c, b, p)
			}
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("sensor %d proportions sum to %v", c, total)
		}
		for k := 1; k < len(ref.Edges[c]); k++ {
			if ref.Edges[c][k] < ref.Edges[c][k-1] {
				t.Fatalf("sensor %d edges not ascending", c)
			}
		}
	}
}

func TestBinOfOutOfRangeAndNaN(t *testing.T) {
	edges := []float64{1, 2, 3}
	cases := []struct {
		v    float64
		want int
	}{{-100, 0}, {0.5, 0}, {1, 1}, {1.5, 1}, {2.5, 2}, {100, 3}, {math.NaN(), 3}}
	for _, c := range cases {
		if got := binOf(edges, c.v); got != c.want {
			t.Fatalf("binOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestPSISameDistributionNearZeroShiftedLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	samples := mat.New(8000, 2)
	for i := range samples.Data {
		samples.Data[i] = rng.NormFloat64()
	}
	ref, err := FitReference(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	same := NewWindow(2, ref.Bins)
	shifted := NewWindow(2, ref.Bins)
	for i := 0; i < 8000; i++ {
		same.Add(ref, []float64{rng.NormFloat64(), rng.NormFloat64()})
		// Sensor 0 drifts by +2σ, sensor 1 stays put.
		shifted.Add(ref, []float64{rng.NormFloat64() + 2, rng.NormFloat64()})
	}
	psiSame := ref.PSI(same)
	if FleetScore(psiSame) > 0.05 {
		t.Fatalf("same-distribution PSI %v should be near zero", psiSame)
	}
	psiShift := ref.PSI(shifted)
	if psiShift[0] < 0.25 {
		t.Fatalf("shifted sensor PSI %v should flag major drift", psiShift[0])
	}
	if psiShift[1] > 0.05 {
		t.Fatalf("stable sensor PSI %v should stay near zero", psiShift[1])
	}
	if FleetScore(psiShift) != psiShift[0] {
		t.Fatalf("fleet score %v should be the max sensor PSI %v", FleetScore(psiShift), psiShift[0])
	}
}

func TestWindowMergeEqualsCombinedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	samples := mat.New(1000, 2)
	for i := range samples.Data {
		samples.Data[i] = rng.Float64() * 10
	}
	ref, err := FitReference(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	whole := NewWindow(2, 4)
	a, b := NewWindow(2, 4), NewWindow(2, 4)
	for i := 0; i < 500; i++ {
		s := []float64{rng.Float64() * 12, rng.Float64() * 12}
		whole.Add(ref, s)
		if i%2 == 0 {
			a.Add(ref, s)
		} else {
			b.Add(ref, s)
		}
	}
	merged := a.Clone()
	merged.Merge(b)
	if merged.Samples != whole.Samples {
		t.Fatalf("merged %d samples, whole %d", merged.Samples, whole.Samples)
	}
	for i := range whole.Counts {
		if merged.Counts[i] != whole.Counts[i] {
			t.Fatalf("count %d: merged %d, whole %d", i, merged.Counts[i], whole.Counts[i])
		}
	}
}

func TestEmptyWindowPSIZero(t *testing.T) {
	samples := mat.New(10, 1)
	for i := range samples.Data {
		samples.Data[i] = float64(i)
	}
	ref, err := FitReference(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	psi := ref.PSI(NewWindow(1, 2))
	if psi[0] != 0 {
		t.Fatalf("empty window PSI %v, want 0", psi[0])
	}
}

func TestFitRejectsNonFinite(t *testing.T) {
	samples := mat.New(4, 1)
	samples.Data[2] = math.NaN()
	if _, err := FitReference(samples, 2); err == nil {
		t.Fatal("NaN training value accepted")
	}
}

func TestBand(t *testing.T) {
	cases := []struct {
		score float64
		want  string
	}{
		{0, BandStable}, {0.099, BandStable},
		{0.1, BandModerate}, {0.249, BandModerate},
		{0.25, BandMajor}, {3, BandMajor},
	}
	for _, c := range cases {
		if got := Band(c.score); got != c.want {
			t.Fatalf("Band(%v) = %q, want %q", c.score, got, c.want)
		}
	}
}
