// Package drift opens the closed-set assumption of the challenge: a
// production fleet constantly sees workloads outside the ten Table I
// families, and a closed-set classifier silently mislabels every one of
// them. This package supplies the two signals the serving plane needs to
// notice:
//
//   - per-prediction open-set scores — max-softmax confidence, top-two
//     margin, and an energy-style score over the classifier's class
//     probabilities — with a rejection Threshold calibrated on held-out
//     in-distribution scores at training time, so a live prediction can be
//     flagged "unknown" without changing the prediction itself;
//   - windowed input-drift statistics — a per-sensor Population Stability
//     Index (PSI) of the live telemetry against a Reference histogram
//     fitted on the raw training windows, aggregated into one fleet drift
//     score — so an operator sees the input distribution moving before
//     accuracy quietly decays.
//
// A Calibration bundles both, travels inside the .wcc artifact as an
// optional section (older artifacts simply serve with drift disabled), and
// is consumed by fleet.Monitor: every inference tick annotates predictions
// with scores and a rejected flag, and every ingested sample lands in a
// histogram Window that shards merge exactly like tick stats. Everything on
// the hot path is a handful of float compares per prediction and one
// binary search per sensor per sample.
package drift

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
)

// Defaults for Options; FitThreshold and FitReference apply them when a
// field is zero.
const (
	// DefaultQuantile is the calibration quantile: each score threshold is
	// placed so roughly (1-q) of held-out in-distribution predictions land
	// past it.
	DefaultQuantile = 0.99
	// DefaultTemperature sharpens the energy score; see ScoreProbs.
	DefaultTemperature = 0.5
	// DefaultFeatQuantile is the feature-space gate's calibration
	// quantile. It sits below DefaultQuantile deliberately: the
	// nearest-neighbour distance is the only score that catches
	// confidently-misrouted far-OOD inputs, so its rule trades a few
	// percent of in-distribution false flags for most of the rejection
	// recall.
	DefaultFeatQuantile = 0.95
	// DefaultBins is the per-sensor histogram resolution of a Reference.
	DefaultBins = 16
)

// probFloor keeps log-probabilities finite for zero class probabilities
// (tree ensembles emit exact zeros for classes no tree voted for).
const probFloor = 1e-12

// Score is one prediction's open-set evidence. Higher Conf and Margin mean
// more in-distribution; higher Energy and FeatDist mean less.
type Score struct {
	// Conf is the max-softmax confidence: the winning class's probability.
	Conf float64
	// Margin is the gap between the top two class probabilities.
	Margin float64
	// Energy is -T·log Σᵢ exp(log(pᵢ)/T): near zero for a confident
	// prediction, approaching T·log(numClasses) as the class distribution
	// flattens toward uniform.
	Energy float64
	// FeatDist is the feature-space distance from the training support:
	// the Euclidean distance, in per-feature standardised coordinates, to
	// the nearest stored training embedding (see FeatureStats).
	// Probability scores alone cannot flag inputs far outside the training
	// support — an ensemble routes such points down consistent paths and
	// votes *confidently* on them — so this is the score that catches
	// workloads whose covariance structure training never produced.
	FeatDist float64
}

// ScoreProbs computes the open-set scores for one probability row.
// temperature ≤ 0 selects DefaultTemperature.
func ScoreProbs(p []float64, temperature float64) Score {
	if temperature <= 0 {
		temperature = DefaultTemperature
	}
	var best, second, sum float64
	for _, v := range p {
		if v > best {
			best, second = v, best
		} else if v > second {
			second = v
		}
		sum += math.Exp(math.Log(math.Max(v, probFloor)) / temperature)
	}
	return Score{Conf: best, Margin: best - second, Energy: -temperature * math.Log(sum)}
}

// Threshold is a calibrated rejection rule over open-set scores. A
// prediction is rejected as unknown when any score lands past its
// calibrated tail: confidence or margin below the in-distribution
// (1-Quantile) tail, or energy / feature distance above the Quantile tail.
type Threshold struct {
	// Temperature is the energy temperature the thresholds were fitted
	// with; serving must score with the same value.
	Temperature float64
	// Quantile records the calibration quantile, for provenance.
	Quantile float64
	// MinConf, MinMargin, MaxEnergy and MaxFeatDist are the fitted cut
	// points. MaxFeatDist 0 disables the feature gate (calibrations fitted
	// without feature rows).
	MinConf     float64
	MinMargin   float64
	MaxEnergy   float64
	MaxFeatDist float64
}

// Reject reports whether the scores fall outside the calibrated
// in-distribution region. Comparisons are strict, so scores exactly on a
// cut point (common with small ensembles whose probabilities are coarse
// vote fractions) stay accepted.
func (t *Threshold) Reject(s Score) bool {
	if s.Conf < t.MinConf || s.Margin < t.MinMargin || s.Energy > t.MaxEnergy {
		return true
	}
	return t.MaxFeatDist > 0 && s.FeatDist > t.MaxFeatDist
}

// FitThreshold calibrates a rejection threshold on held-out
// in-distribution probability rows (typically the test split's predicted
// probabilities): each cut point is placed at the requested quantile of
// the observed scores, so roughly (1-quantile) of in-distribution
// predictions trip each rule. quantile ≤ 0 selects DefaultQuantile,
// temperature ≤ 0 DefaultTemperature.
func FitThreshold(probs *mat.Matrix, quantile, temperature float64) (Threshold, error) {
	if probs == nil || probs.Rows == 0 || probs.Cols == 0 {
		return Threshold{}, errors.New("drift: no probability rows to calibrate on")
	}
	if quantile <= 0 {
		quantile = DefaultQuantile
	}
	if quantile >= 1 {
		return Threshold{}, fmt.Errorf("drift: calibration quantile %v must be in (0, 1)", quantile)
	}
	if temperature <= 0 {
		temperature = DefaultTemperature
	}
	confs := make([]float64, probs.Rows)
	margins := make([]float64, probs.Rows)
	energies := make([]float64, probs.Rows)
	for i := 0; i < probs.Rows; i++ {
		s := ScoreProbs(probs.Row(i), temperature)
		if math.IsNaN(s.Conf) || math.IsNaN(s.Energy) {
			return Threshold{}, fmt.Errorf("drift: non-finite score on calibration row %d", i)
		}
		confs[i], margins[i], energies[i] = s.Conf, s.Margin, s.Energy
	}
	sort.Float64s(confs)
	sort.Float64s(margins)
	sort.Float64s(energies)
	return Threshold{
		Temperature: temperature,
		Quantile:    quantile,
		MinConf:     quantileOf(confs, 1-quantile),
		MinMargin:   quantileOf(margins, 1-quantile),
		MaxEnergy:   quantileOf(energies, quantile),
	}, nil
}

// MaxTrainRows caps the training embeddings a FeatureStats stores: fitting
// subsamples evenly past this, bounding both the artifact size (a few
// hundred KiB) and the per-prediction nearest-neighbour scan.
const MaxTrainRows = 2048

// FeatureStats is the training feature support the feature-space gate
// measures against: per-feature standardisation statistics plus the
// (standardised, possibly subsampled) training rows themselves — the
// covariance embeddings, for the serving pipeline. The open-set score is
// the distance to the nearest stored row; per-feature envelopes alone are
// too loose, because the embedding's product features are heavy-tailed
// enough that genuinely unseen inputs hide inside the marginal tails.
type FeatureStats struct {
	Means []float64
	Stds  []float64
	// Train holds the standardised training rows the distance is measured
	// against.
	Train *mat.Matrix
}

// FitFeatureStats standardises the training feature rows (constant
// features get std 1) and stores up to MaxTrainRows of them, subsampled
// evenly, as the nearest-neighbour reference set.
func FitFeatureStats(x *mat.Matrix) (*FeatureStats, error) {
	if x == nil || x.Rows == 0 || x.Cols == 0 {
		return nil, errors.New("drift: no feature rows to fit statistics on")
	}
	fs := &FeatureStats{Means: make([]float64, x.Cols), Stds: make([]float64, x.Cols)}
	inv := 1.0 / float64(x.Rows)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			fs.Means[j] += v * inv
		}
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			d := v - fs.Means[j]
			fs.Stds[j] += d * d * inv
		}
	}
	for j, v := range fs.Stds {
		fs.Stds[j] = math.Sqrt(v)
		if fs.Stds[j] == 0 {
			fs.Stds[j] = 1
		}
	}
	keep := x.Rows
	if keep > MaxTrainRows {
		keep = MaxTrainRows
	}
	fs.Train = mat.New(keep, x.Cols)
	for i := 0; i < keep; i++ {
		// Even subsampling keeps every class region represented (training
		// rows are laid out in dataset order, so striding spans them all).
		src := x.Row(i * x.Rows / keep)
		dst := fs.Train.Row(i)
		for j, v := range src {
			dst[j] = (v - fs.Means[j]) / fs.Stds[j]
		}
	}
	return fs, nil
}

// Distance returns the feature-space score of one feature row: the
// Euclidean distance, in standardised coordinates, to the nearest stored
// training row. The scan early-abandons rows that already exceed the best
// distance, so the common in-distribution case touches a fraction of the
// reference set.
func (fs *FeatureStats) Distance(row []float64) float64 {
	z := make([]float64, len(row))
	for j, v := range row {
		z[j] = (v - fs.Means[j]) / fs.Stds[j]
	}
	best := math.Inf(1)
	for i := 0; i < fs.Train.Rows; i++ {
		tr := fs.Train.Row(i)
		d := 0.0
		for j := range z {
			diff := z[j] - tr[j]
			d += diff * diff
			if d >= best {
				break
			}
		}
		if d < best {
			best = d
		}
	}
	return math.Sqrt(best)
}

// quantileOf returns the nearest-rank q-quantile of a sorted slice.
func quantileOf(sorted []float64, q float64) float64 {
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Reference is the training-time input distribution: one equal-mass
// histogram per sensor over the raw (unscaled) telemetry values of the
// training windows. Live samples are binned against it and compared with
// PSI.
type Reference struct {
	// Bins is the per-sensor bin count.
	Bins int
	// Edges[c] holds Bins-1 ascending interior edges for sensor c; a value
	// v lands in the first bin whose edge exceeds it (the last bin when
	// none does), so the outer bins are open-ended.
	Edges [][]float64
	// Props[c][b] is the fraction of training values of sensor c observed
	// in bin b (ties at quantile edges make the masses uneven).
	Props [][]float64
}

// FitReference builds the per-sensor reference histograms from raw
// training samples (rows are telemetry samples, columns sensors — flatten
// the training windows). Edges sit at equally spaced quantiles, so bins
// carry equal mass up to ties. bins ≤ 0 selects DefaultBins.
func FitReference(samples *mat.Matrix, bins int) (*Reference, error) {
	if samples == nil || samples.Rows == 0 || samples.Cols == 0 {
		return nil, errors.New("drift: no samples to fit a reference on")
	}
	if bins <= 0 {
		bins = DefaultBins
	}
	if bins < 2 {
		return nil, fmt.Errorf("drift: need at least 2 bins, got %d", bins)
	}
	r := &Reference{
		Bins:  bins,
		Edges: make([][]float64, samples.Cols),
		Props: make([][]float64, samples.Cols),
	}
	col := make([]float64, samples.Rows)
	for c := 0; c < samples.Cols; c++ {
		for i := 0; i < samples.Rows; i++ {
			v := samples.Row(i)[c]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("drift: non-finite training value for sensor %d", c)
			}
			col[i] = v
		}
		sort.Float64s(col)
		edges := make([]float64, bins-1)
		for k := 1; k < bins; k++ {
			edges[k-1] = quantileOf(col, float64(k)/float64(bins))
		}
		props := make([]float64, bins)
		for _, v := range col {
			props[binOf(edges, v)]++
		}
		inv := 1.0 / float64(len(col))
		for b := range props {
			props[b] *= inv
		}
		r.Edges[c] = edges
		r.Props[c] = props
	}
	return r, nil
}

// Sensors returns the sensor count the reference was fitted for.
func (r *Reference) Sensors() int { return len(r.Edges) }

// Bin returns the bin index a live value of the given sensor falls in.
func (r *Reference) Bin(sensor int, v float64) int {
	return binOf(r.Edges[sensor], v)
}

// binOf locates v among ascending interior edges: the first bin whose edge
// is above v, the last bin when none is. NaN (which compares false
// everywhere) lands in the last bin rather than corrupting an index.
func binOf(edges []float64, v float64) int {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v < edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Window accumulates live per-sensor histogram counts — the serving-side
// half of a PSI comparison. It is a plain value with no internal locking;
// fleet shards guard their own windows and merge copies for reads.
type Window struct {
	// Sensors and Bins fix the count layout.
	Sensors int
	Bins    int
	// Counts is the row-major [sensor][bin] histogram.
	Counts []uint64
	// Samples is the number of telemetry samples accumulated.
	Samples uint64
}

// NewWindow allocates an empty accumulation window.
func NewWindow(sensors, bins int) *Window {
	return &Window{Sensors: sensors, Bins: bins, Counts: make([]uint64, sensors*bins)}
}

// Add bins one telemetry sample (one value per sensor) against the
// reference. The sample width must match the reference's sensor count.
func (w *Window) Add(ref *Reference, sample []float64) {
	for c, v := range sample {
		w.Counts[c*w.Bins+ref.Bin(c, v)]++
	}
	w.Samples++
}

// Merge adds another window's counts into w. The windows must share the
// same layout.
func (w *Window) Merge(o *Window) {
	for i, n := range o.Counts {
		w.Counts[i] += n
	}
	w.Samples += o.Samples
}

// Clone returns an independent copy of the window.
func (w *Window) Clone() *Window {
	out := &Window{Sensors: w.Sensors, Bins: w.Bins, Samples: w.Samples}
	out.Counts = append([]uint64(nil), w.Counts...)
	return out
}

// psiFloor keeps the PSI logarithms finite for empty bins on either side.
const psiFloor = 1e-4

// PSI computes the per-sensor Population Stability Index of the window
// against the reference: Σ_b (p_b - q_b)·ln(p_b/q_b) with live proportion
// p and reference proportion q, both floored at 1e-4. By the usual survey
// convention PSI < 0.1 is stable, 0.1-0.25 moderate drift, > 0.25 major
// drift. An empty window reports zero for every sensor.
func (r *Reference) PSI(w *Window) []float64 {
	out := make([]float64, w.Sensors)
	if w.Samples == 0 {
		return out
	}
	inv := 1.0 / float64(w.Samples)
	for c := 0; c < w.Sensors; c++ {
		psi := 0.0
		for b := 0; b < w.Bins; b++ {
			p := math.Max(float64(w.Counts[c*w.Bins+b])*inv, psiFloor)
			q := math.Max(r.Props[c][b], psiFloor)
			psi += (p - q) * math.Log(p/q)
		}
		out[c] = psi
	}
	return out
}

// FleetScore aggregates per-sensor PSI values into the single fleet drift
// score the serving plane exposes: the maximum, so drift concentrated in
// one sensor is not averaged away by six stable ones.
func FleetScore(psi []float64) float64 {
	best := 0.0
	for _, v := range psi {
		if v > best {
			best = v
		}
	}
	return best
}

// PSI bands: the conventional reading of a Population Stability Index,
// used wherever the serving plane turns a continuous drift score into an
// operator-facing state (the /v1/events drift-crossing events, the
// dashboard's drift panel).
const (
	// BandStable is a PSI below 0.1: the live input matches training.
	BandStable = "stable"
	// BandModerate is a PSI in [0.1, 0.25): distribution shift worth
	// watching.
	BandModerate = "moderate"
	// BandMajor is a PSI of 0.25 or more: the input has left the training
	// distribution.
	BandMajor = "major"
)

// Band maps a drift score (a PSI, typically FleetScore's max) to its
// conventional band name.
func Band(score float64) string {
	switch {
	case score < 0.1:
		return BandStable
	case score < 0.25:
		return BandModerate
	default:
		return BandMajor
	}
}

// RejectionTally scores open-set verdicts against known ground truth —
// the bookkeeping wccserve and wccload share when they inject
// out-of-distribution workloads and read the fleet's unknown flags back.
type RejectionTally struct {
	// ClassifiedUnknown counts truly out-of-distribution jobs that
	// received a verdict, Flagged every job flagged unknown, and TruePos
	// the overlap.
	ClassifiedUnknown int
	Flagged           int
	TruePos           int
}

// Add records one classified job's verdict.
func (t *RejectionTally) Add(trulyUnknown, flaggedUnknown bool) {
	if trulyUnknown {
		t.ClassifiedUnknown++
	}
	if flaggedUnknown {
		t.Flagged++
		if trulyUnknown {
			t.TruePos++
		}
	}
}

// Recall returns the fraction of truly unknown jobs flagged unknown
// (0 when none were classified).
func (t *RejectionTally) Recall() float64 {
	if t.ClassifiedUnknown == 0 {
		return 0
	}
	return float64(t.TruePos) / float64(t.ClassifiedUnknown)
}

// Precision returns the fraction of flagged jobs that were truly unknown
// (0 when nothing was flagged).
func (t *RejectionTally) Precision() float64 {
	if t.Flagged == 0 {
		return 0
	}
	return float64(t.TruePos) / float64(t.Flagged)
}

// Report renders the tally for a command's summary output — shared by
// wccserve and wccload so CI's `rejection recall` assertions match both.
// Empty when no truly-unknown job was classified.
func (t *RejectionTally) Report() string {
	if t.ClassifiedUnknown == 0 {
		return ""
	}
	out := fmt.Sprintf("  rejection recall:    %.2f (%d/%d out-of-distribution jobs flagged unknown)\n",
		t.Recall(), t.TruePos, t.ClassifiedUnknown)
	if t.Flagged > 0 {
		out += fmt.Sprintf("  rejection precision: %.2f (%d/%d flagged jobs truly unknown)\n",
			t.Precision(), t.TruePos, t.Flagged)
	}
	return out
}

// Calibration bundles everything drift-aware serving needs, fitted at
// training time and persisted as an optional .wcc artifact section: the
// rejection threshold over open-set scores, the training feature
// statistics behind the feature-space gate, and the input reference
// histograms.
type Calibration struct {
	Threshold Threshold
	// Feat backs the feature-space distance score; nil when the
	// calibration was fitted without feature rows (the gate is then off).
	Feat *FeatureStats
	Ref  *Reference
}

// Score computes a prediction's full open-set evidence: the probability
// scores plus, when the calibration carries feature statistics, the
// feature-space distance of the embedding row the prediction came from.
func (c *Calibration) Score(probs, features []float64) Score {
	s := ScoreProbs(probs, c.Threshold.Temperature)
	if c.Feat != nil {
		s.FeatDist = c.Feat.Distance(features)
	}
	return s
}

// Options configures Fit. Zero fields select the package defaults.
type Options struct {
	// Quantile is the probability-score calibration quantile
	// (DefaultQuantile).
	Quantile float64
	// FeatQuantile is the feature-space gate's calibration quantile
	// (DefaultFeatQuantile).
	FeatQuantile float64
	// Temperature is the energy temperature (DefaultTemperature).
	Temperature float64
	// Bins is the per-sensor reference histogram resolution (DefaultBins).
	Bins int
}

// FitInput carries the training and held-out material Fit calibrates on.
type FitInput struct {
	// Probs holds held-out in-distribution probability rows (typically
	// the model's predictions on the test split). Required.
	Probs *mat.Matrix
	// TrainFeatures holds the training feature rows the feature-space
	// statistics are fitted on, and HeldOutFeatures the held-out rows the
	// distance cut point is calibrated on (row i must correspond to
	// Probs row i). Both nil disables the feature gate.
	TrainFeatures   *mat.Matrix
	HeldOutFeatures *mat.Matrix
	// RawSamples holds raw telemetry samples (rows samples, columns
	// sensors — flattened training windows) for the PSI reference.
	// Required.
	RawSamples *mat.Matrix
}

// Fit calibrates a full drift calibration: the rejection threshold from
// held-out in-distribution scores, feature statistics from the training
// rows, and the input reference from raw training samples.
func Fit(in FitInput, opts Options) (*Calibration, error) {
	thr, err := FitThreshold(in.Probs, opts.Quantile, opts.Temperature)
	if err != nil {
		return nil, err
	}
	c := &Calibration{Threshold: thr}
	if (in.TrainFeatures == nil) != (in.HeldOutFeatures == nil) {
		return nil, errors.New("drift: feature gating needs both training and held-out feature rows")
	}
	if in.TrainFeatures != nil {
		if in.HeldOutFeatures.Rows != in.Probs.Rows {
			return nil, fmt.Errorf("drift: %d held-out feature rows for %d probability rows",
				in.HeldOutFeatures.Rows, in.Probs.Rows)
		}
		fq := opts.FeatQuantile
		if fq <= 0 {
			fq = DefaultFeatQuantile
		}
		if fq >= 1 {
			return nil, fmt.Errorf("drift: feature calibration quantile %v must be in (0, 1)", fq)
		}
		fs, err := FitFeatureStats(in.TrainFeatures)
		if err != nil {
			return nil, err
		}
		dists := make([]float64, in.HeldOutFeatures.Rows)
		for i := range dists {
			dists[i] = fs.Distance(in.HeldOutFeatures.Row(i))
		}
		sort.Float64s(dists)
		c.Feat = fs
		c.Threshold.MaxFeatDist = quantileOf(dists, fq)
	}
	ref, err := FitReference(in.RawSamples, opts.Bins)
	if err != nil {
		return nil, err
	}
	c.Ref = ref
	return c, nil
}
