package artifact

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fleet"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
)

// Regenerate the golden fixture ONLY for a deliberate, versioned format
// change (bump FormatVersion or a package codecVersion alongside it):
//
//	go test ./internal/artifact -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden artifact fixture")

const (
	goldenArtifact = "testdata/golden_v1.wcc"
	goldenProbs    = "testdata/golden_v1_probs.json"
)

// goldenModel deterministically trains the tiny forest the fixture holds.
// Training only runs at -update time; the committed test path exercises pure
// decoding, so a future encoder change that breaks v1 compatibility fails CI
// even if training behaviour drifts.
func goldenModel(t *testing.T) (*Artifact, *mat.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(424242))
	flat := mat.New(20, 12)
	for i := range flat.Data {
		flat.Data[i] = rng.NormFloat64()*2 + 1
	}
	scaler := &preprocess.StandardScaler{}
	if err := scaler.Fit(flat); err != nil {
		t.Fatal(err)
	}

	x := mat.New(60, 6)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.Intn(3)
	}
	f := forest.New(forest.Config{NumTrees: 5, MaxDepth: 4, Bootstrap: true, Seed: 424242})
	if err := f.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	a := &Artifact{
		Meta: Metadata{
			ClassNames:  []string{"vgg", "resnet", "bert"},
			Features:    "cov",
			Window:      4,
			Sensors:     3,
			Dataset:     "golden-fixture",
			Scale:       0.01,
			Seed:        424242,
			Accuracy:    0.5,
			CreatedUnix: 1753574400, // fixed so the fixture is byte-stable
			Tool:        "golden_test",
		},
		Scaler: scaler,
		Model:  f,
	}
	return a, goldenEval()
}

// goldenEval is the fixed input batch whose predictions the fixture pins.
func goldenEval() *mat.Matrix {
	rng := rand.New(rand.NewSource(515151))
	eval := mat.New(16, 6)
	for i := range eval.Data {
		eval.Data[i] = rng.NormFloat64()
	}
	return eval
}

// TestGoldenArtifactCompatibility loads the checked-in v1 fixture and
// asserts bit-exact predictions after decode. Any encoder/decoder change
// that silently breaks compatibility with already-shipped artifacts fails
// here; a deliberate break must bump the format version and regenerate the
// fixture with -update.
func TestGoldenArtifactCompatibility(t *testing.T) {
	if *update {
		a, eval := goldenModel(t)
		probs, err := a.Model.(*forest.Classifier).PredictProbaBatch(eval)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenArtifact), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := Save(goldenArtifact, a); err != nil {
			t.Fatal(err)
		}
		rows := make([][]float64, probs.Rows)
		for i := range rows {
			rows[i] = probs.Row(i)
		}
		js, err := json.MarshalIndent(rows, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenProbs, append(js, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden fixture rewritten")
	}

	a, err := Load(goldenArtifact)
	if err != nil {
		t.Fatalf("golden artifact failed to load: %v", err)
	}
	if a.Meta.Kind != KindForest || a.Meta.Dataset != "golden-fixture" {
		t.Fatalf("golden metadata drifted: %+v", a.Meta)
	}
	if a.Scaler == nil || len(a.Scaler.Means) != 12 {
		t.Fatal("golden scaler missing or reshaped")
	}
	// The fixture predates the drift section: it must keep loading with
	// open-set detection simply disabled, never an error.
	if a.Drift != nil {
		t.Fatal("golden v1 artifact (written before drift calibration existed) decoded a drift section")
	}

	raw, err := os.ReadFile(goldenProbs)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]float64
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	probs, err := a.Model.(*forest.Classifier).PredictProbaBatch(goldenEval())
	if err != nil {
		t.Fatal(err)
	}
	if probs.Rows != len(want) {
		t.Fatalf("%d prediction rows, fixture has %d", probs.Rows, len(want))
	}
	for i, wrow := range want {
		grow := probs.Row(i)
		if len(grow) != len(wrow) {
			t.Fatalf("row %d: %d classes, fixture has %d", i, len(grow), len(wrow))
		}
		for c := range wrow {
			if grow[c] != wrow[c] {
				t.Fatalf("row %d class %d: %v vs fixture %v (v1 compatibility broken — "+
					"bump the format version and regenerate with -update)", i, c, grow[c], wrow[c])
			}
		}
	}
}

// TestGoldenArtifactServesWithoutDrift pins that a pre-drift artifact still
// serves: a fleet monitor built from its scaler and model, with no drift
// calibration, classifies a live stream and reports drift disabled.
func TestGoldenArtifactServesWithoutDrift(t *testing.T) {
	a, err := Load(goldenArtifact)
	if err != nil {
		t.Fatal(err)
	}
	m, err := fleet.New(fleet.Config{
		Window:  a.Meta.Window,
		Sensors: a.Meta.Sensors,
		Scaler:  a.Scaler,
		Model:   a.Model.(*forest.Classifier),
		Drift:   a.Drift, // nil: drift disabled, never an error
	})
	if err != nil {
		t.Fatalf("pre-drift artifact no longer builds a serving fleet: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < a.Meta.Window+2; i++ {
		sample := make([]float64, a.Meta.Sensors)
		for c := range sample {
			sample[c] = rng.NormFloat64()
		}
		if err := m.Ingest(1, sample); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	pred, ok := m.Prediction(1)
	if !ok {
		t.Fatal("no prediction from the pre-drift artifact")
	}
	if pred.Open != nil {
		t.Fatal("open-set annotation present with drift disabled")
	}
	if st := m.DriftStats(); st.Enabled {
		t.Fatal("drift stats enabled without a calibration")
	}
}
