// Package artifact implements the versioned model-artifact store: a
// self-describing binary container (.wcc) bundling a fitted estimator with
// the preprocessing statistics it was trained under and provenance metadata,
// so a datacenter can train offline once and serve the model continuously —
// wcctrain -o writes artifacts, wccserve -model serves them, and
// fleet.Monitor.SwapClassifier rolls a refreshed artifact into a live fleet
// with zero downtime.
//
// # File layout (format version 1)
//
//	magic        8 bytes  89 57 43 43 0D 0A 1A 0A  ("\x89WCC\r\n\x1a\n")
//	version      u32 LE   container format version
//	sections     u32 LE   section count N
//	table        N × { name (u64-len string), length u64, crc32 u32 }
//	header crc   u32 LE   crc32 over version + sections + table bytes
//	payloads     section payloads concatenated in table order
//
// The PNG-style magic detects text-mode mangling as well as foreign files.
// Every section payload is covered by an IEEE CRC32 recorded in the table,
// and the header/table bytes themselves by a trailing header CRC, so
// truncation and bit corruption are detected before a model is trusted.
// Sections with unknown names are skipped, giving minor-version forward
// compatibility; a file whose container version is newer than this build is
// rejected outright with a descriptive error.
//
// # Sections
//
//	meta    JSON-encoded Metadata (always present, always first)
//	scaler  preprocess.StandardScaler wire encoding (optional)
//	pca     preprocess.PCA wire encoding (optional)
//	drift   drift.Calibration wire encoding (optional): the open-set
//	        rejection threshold and input-drift reference histograms
//	model   estimator wire encoding, dispatched on Metadata.Kind
//
// The drift section was introduced after the first v1 artifacts shipped;
// because unknown sections are skipped, older readers still load newer
// artifacts, and artifacts without the section load here with Drift nil —
// serving simply runs with open-set detection disabled.
package artifact

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/drift"
	"repro/internal/forest"
	"repro/internal/nn"
	"repro/internal/preprocess"
	"repro/internal/svm"
	"repro/internal/wire"
	"repro/internal/xgb"
)

// Magic identifies a .wcc artifact file.
var Magic = [8]byte{0x89, 'W', 'C', 'C', '\r', '\n', 0x1a, '\n'}

// FormatVersion is the container version this build writes and the newest it
// reads.
const FormatVersion = 1

// Model kinds recorded in Metadata.Kind. Sequence models use the
// nn.Kind* vocabulary ("bilstm", "cnnlstm", "convlstm").
const (
	KindForest    = "forest"
	KindXGB       = "xgb"
	KindSVM       = "svm"
	KindLinearSVM = "linear-svm"
)

// Section names.
const (
	sectionMeta   = "meta"
	sectionScaler = "scaler"
	sectionPCA    = "pca"
	sectionDrift  = "drift"
	sectionModel  = "model"
)

// maxSections bounds the section table so corrupted counts fail fast.
const maxSections = 64

// maxSectionLen bounds one section payload (1 GiB).
const maxSectionLen = 1 << 30

// Metadata is the artifact's provenance record: what the model is, what it
// was trained on, and the accuracy observed on the held-out test split.
type Metadata struct {
	// Kind identifies the estimator ("forest", "xgb", "svm", "linear-svm",
	// "bilstm", "cnnlstm", "convlstm") and selects the model-section codec.
	Kind string `json:"kind"`
	// ClassNames maps class indices to the paper's workload names.
	ClassNames []string `json:"class_names,omitempty"`
	// Features names the feature pipeline ("cov", "pca", "sequence").
	Features string `json:"features,omitempty"`
	// Window and Sensors give the telemetry window shape the model consumes
	// (540×7 for the challenge datasets).
	Window  int `json:"window,omitempty"`
	Sensors int `json:"sensors,omitempty"`
	// Dataset, Scale and Seed record the training provenance: the Table IV
	// dataset spec name, the simulation scale, and the generation seed.
	Dataset string  `json:"dataset,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	// Accuracy is the held-out test accuracy measured at training time.
	Accuracy float64 `json:"accuracy,omitempty"`
	// NovelClasses counts the classes appended by the continual-learning
	// flywheel (internal/adapt); the last NovelClasses entries of
	// ClassNames are adapt-discovered families, zero for offline-trained
	// artifacts. The field is additive JSON, so older readers ignore it.
	NovelClasses int `json:"novel_classes,omitempty"`
	// AdaptedFrom records what a flywheel candidate grew from — the
	// producing tool plus the base artifact's class count — tying a
	// promoted model to its lineage.
	AdaptedFrom string `json:"adapted_from,omitempty"`
	// CreatedUnix is the artifact creation time (seconds since epoch).
	CreatedUnix int64 `json:"created_unix,omitempty"`
	// Tool names the producer (e.g. "wcctrain").
	Tool string `json:"tool,omitempty"`
}

// Artifact is a decoded model bundle.
type Artifact struct {
	Meta   Metadata
	Scaler *preprocess.StandardScaler // nil when the model has no scaler
	PCA    *preprocess.PCA            // nil unless Features == "pca"
	// Drift carries the open-set rejection threshold and input-drift
	// reference fitted at training time; nil for artifacts written before
	// drift calibration existed (serving then runs with drift disabled).
	Drift *drift.Calibration
	Model any // *forest.Classifier, *xgb.Classifier, *svm.Classifier, *svm.LinearClassifier, or nn.SequenceClassifier
}

// ModelKind infers the Metadata.Kind string for a model value.
func ModelKind(model any) (string, error) {
	switch m := model.(type) {
	case *forest.Classifier:
		return KindForest, nil
	case *xgb.Classifier:
		return KindXGB, nil
	case *svm.Classifier:
		return KindSVM, nil
	case *svm.LinearClassifier:
		return KindLinearSVM, nil
	case nn.SequenceClassifier:
		return nn.ModelKind(m)
	default:
		return "", fmt.Errorf("artifact: unsupported model type %T", model)
	}
}

func encodeModelPayload(model any) ([]byte, error) {
	var buf bytes.Buffer
	var err error
	switch m := model.(type) {
	case *forest.Classifier:
		err = m.Encode(&buf)
	case *xgb.Classifier:
		err = m.Encode(&buf)
	case *svm.Classifier:
		err = m.Encode(&buf)
	case *svm.LinearClassifier:
		err = m.Encode(&buf)
	case nn.SequenceClassifier:
		err = nn.EncodeModel(&buf, m)
	default:
		err = fmt.Errorf("artifact: unsupported model type %T", model)
	}
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeModelPayload(kind string, payload []byte) (any, error) {
	r := bytes.NewReader(payload)
	switch kind {
	case KindForest:
		return forest.Decode(r)
	case KindXGB:
		return xgb.Decode(r)
	case KindSVM:
		return svm.Decode(r)
	case KindLinearSVM:
		return svm.DecodeLinear(r)
	case nn.KindBiLSTM, nn.KindCNNLSTM, nn.KindConvLSTM:
		m, err := nn.DecodeModel(r)
		if err != nil {
			return nil, err
		}
		if k, _ := nn.ModelKind(m); k != kind {
			return nil, fmt.Errorf("artifact: metadata kind %q but model payload is %q", kind, k)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("artifact: unknown model kind %q", kind)
	}
}

type section struct {
	name    string
	payload []byte
}

// Encode writes the artifact to w in container format version 1.
func Encode(w io.Writer, a *Artifact) error {
	if a == nil || a.Model == nil {
		return errors.New("artifact: nil model")
	}
	kind, err := ModelKind(a.Model)
	if err != nil {
		return err
	}
	if a.Meta.Kind == "" {
		a.Meta.Kind = kind
	} else if a.Meta.Kind != kind {
		return fmt.Errorf("artifact: metadata kind %q does not match model type (%s)", a.Meta.Kind, kind)
	}

	metaJSON, err := json.Marshal(a.Meta)
	if err != nil {
		return err
	}
	sections := []section{{sectionMeta, metaJSON}}
	if a.Scaler != nil {
		var buf bytes.Buffer
		if err := a.Scaler.Encode(&buf); err != nil {
			return err
		}
		sections = append(sections, section{sectionScaler, buf.Bytes()})
	}
	if a.PCA != nil {
		var buf bytes.Buffer
		if err := a.PCA.Encode(&buf); err != nil {
			return err
		}
		sections = append(sections, section{sectionPCA, buf.Bytes()})
	}
	if a.Drift != nil {
		var buf bytes.Buffer
		if err := a.Drift.Encode(&buf); err != nil {
			return err
		}
		sections = append(sections, section{sectionDrift, buf.Bytes()})
	}
	modelPayload, err := encodeModelPayload(a.Model)
	if err != nil {
		return err
	}
	sections = append(sections, section{sectionModel, modelPayload})

	var head bytes.Buffer
	hw := wire.NewWriter(&head)
	hw.U32(FormatVersion)
	hw.U32(uint32(len(sections)))
	for _, s := range sections {
		hw.String(s.name)
		hw.U64(uint64(len(s.payload)))
		hw.U32(crc32.ChecksumIEEE(s.payload))
	}
	if err := hw.Err(); err != nil {
		return err
	}
	if _, err := w.Write(Magic[:]); err != nil {
		return err
	}
	if _, err := w.Write(head.Bytes()); err != nil {
		return err
	}
	ww := wire.NewWriter(w)
	ww.U32(crc32.ChecksumIEEE(head.Bytes()))
	if err := ww.Err(); err != nil {
		return err
	}
	for _, s := range sections {
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
	}
	return nil
}

// SectionInfo describes one section table entry.
type SectionInfo struct {
	Name   string
	Length uint64
	CRC    uint32
}

// header is the decoded container prelude: version and section table.
type header struct {
	version  uint32
	sections []SectionInfo
}

func readHeader(r io.Reader) (*header, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("artifact: not a .wcc artifact: %w", err)
	}
	if magic != Magic {
		return nil, errors.New("artifact: bad magic: not a .wcc artifact")
	}
	// Everything between the magic and the header CRC is checksummed, so a
	// corrupted section table (including names — a mangled name would
	// otherwise look like a skippable unknown section) is always detected.
	headCRC := crc32.NewIEEE()
	rr := wire.NewReader(io.TeeReader(r, headCRC))
	h := &header{version: rr.U32()}
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if h.version > FormatVersion {
		return nil, fmt.Errorf("artifact: format version %d not supported (this build reads <= %d)", h.version, FormatVersion)
	}
	if h.version == 0 {
		return nil, errors.New("artifact: corrupt header: format version 0")
	}
	n := rr.U32()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if n == 0 || n > maxSections {
		return nil, fmt.Errorf("artifact: corrupt header: %d sections", n)
	}
	h.sections = make([]SectionInfo, n)
	for i := range h.sections {
		h.sections[i].Name = rr.String()
		h.sections[i].Length = rr.U64()
		h.sections[i].CRC = rr.U32()
		if err := rr.Err(); err != nil {
			return nil, err
		}
		if h.sections[i].Length > maxSectionLen {
			return nil, fmt.Errorf("artifact: section %q length %d exceeds sanity limit", h.sections[i].Name, h.sections[i].Length)
		}
	}
	want := headCRC.Sum32()
	tail := wire.NewReader(r) // past the tee: the CRC is not part of itself
	got := tail.U32()
	if err := tail.Err(); err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("artifact: header checksum mismatch (file %08x, computed %08x)", got, want)
	}
	return h, nil
}

// readSection consumes and verifies the next payload from r.
func readSection(r io.Reader, info SectionInfo) ([]byte, error) {
	payload := make([]byte, info.Length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("artifact: section %q truncated: %w", info.Name, err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != info.CRC {
		return nil, fmt.Errorf("artifact: section %q checksum mismatch (file %08x, computed %08x)", info.Name, info.CRC, crc)
	}
	return payload, nil
}

// Decode reads an artifact from r, verifying magic, version, and every
// section checksum. Corrupted or truncated input returns a descriptive
// error; Decode never panics on hostile bytes.
func Decode(r io.Reader) (*Artifact, error) {
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	a := &Artifact{}
	sawMeta, sawModel := false, false
	var modelPayload []byte
	for _, info := range h.sections {
		payload, err := readSection(r, info)
		if err != nil {
			return nil, err
		}
		switch info.Name {
		case sectionMeta:
			if err := json.Unmarshal(payload, &a.Meta); err != nil {
				return nil, fmt.Errorf("artifact: corrupt metadata: %w", err)
			}
			sawMeta = true
		case sectionScaler:
			if a.Scaler, err = preprocess.DecodeScaler(bytes.NewReader(payload)); err != nil {
				return nil, err
			}
		case sectionPCA:
			if a.PCA, err = preprocess.DecodePCA(bytes.NewReader(payload)); err != nil {
				return nil, err
			}
		case sectionDrift:
			if a.Drift, err = drift.Decode(bytes.NewReader(payload)); err != nil {
				return nil, err
			}
		case sectionModel:
			// Deferred until the metadata (and with it the kind) is known;
			// the meta section is written first but a reordered file is
			// still legal.
			modelPayload = payload
			sawModel = true
		default:
			// Unknown sections are forward-compatible padding: skip.
		}
	}
	if !sawMeta {
		return nil, errors.New("artifact: missing meta section")
	}
	if !sawModel {
		return nil, errors.New("artifact: missing model section")
	}
	if a.Model, err = decodeModelPayload(a.Meta.Kind, modelPayload); err != nil {
		return nil, err
	}
	return a, nil
}

// Save atomically writes the artifact to path: the bytes land in a
// temporary file in the same directory first and are renamed into place, so
// a serving process polling the path never observes a half-written model.
func Save(path string, a *Artifact) error {
	var buf bytes.Buffer
	if err := Encode(&buf, a); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp opens 0600; artifacts are ordinary shareable files.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Load reads an artifact file.
func Load(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// Info summarises an artifact without decoding the model payload.
type Info struct {
	FormatVersion uint32
	Meta          Metadata
	Sections      []SectionInfo
	// Drift is the decoded drift calibration; populated by ReadInfoDetail
	// only (ReadInfo leaves it nil even when the section exists, so the
	// hot polling path never decodes it).
	Drift *drift.Calibration
}

// ReadInfo reads the container header and metadata section only — the
// cheap inspection path the artifact watcher polls (section identity
// comes from the header's CRC table; no payload past the metadata is
// read or verified). Use ReadInfoDetail to also decode the drift section.
func ReadInfo(path string) (*Info, error) {
	return readInfo(path, false)
}

// ReadInfoDetail is ReadInfo plus the drift calibration section, when
// present — the wccinfo inspection path. The model payload is still
// skipped.
func ReadInfoDetail(path string) (*Info, error) {
	return readInfo(path, true)
}

func readInfo(path string, wantDrift bool) (*Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	h, err := readHeader(f)
	if err != nil {
		return nil, err
	}
	info := &Info{FormatVersion: h.version, Sections: h.sections}
	sawMeta := false
	needDrift := wantDrift && sectionPresent(h.sections, sectionDrift)
	for _, s := range h.sections {
		// Payloads are sequential, so intervening sections must still be
		// consumed; reading stops once every wanted section has been seen,
		// which skips the (large) trailing model payload.
		if sawMeta && (!needDrift || info.Drift != nil) {
			break
		}
		payload, err := readSection(f, s)
		if err != nil {
			return nil, err
		}
		switch s.Name {
		case sectionMeta:
			if err := json.Unmarshal(payload, &info.Meta); err != nil {
				return nil, fmt.Errorf("artifact: corrupt metadata: %w", err)
			}
			sawMeta = true
		case sectionDrift:
			if needDrift {
				if info.Drift, err = drift.Decode(bytes.NewReader(payload)); err != nil {
					return nil, err
				}
			}
		}
	}
	if !sawMeta {
		return nil, errors.New("artifact: missing meta section")
	}
	return info, nil
}

// Identity fingerprints the artifact by its container contents — format
// version plus every section's name, length and CRC32 — so two files with
// identical stat signatures but different payloads still compare as
// different, and two replicas holding the same payload compare as equal.
// The serving watcher polls it to detect replacements, and the cluster
// control plane (internal/cluster) uses it as the replication-convergence
// check: every replica must report the same identity before a rolling
// swap may prepare.
func (info *Info) Identity() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d", info.FormatVersion)
	for _, sec := range info.Sections {
		fmt.Fprintf(&b, "|%s:%d:%08x", sec.Name, sec.Length, sec.CRC)
	}
	return b.String()
}

// Identity reads the artifact at path and returns its content identity —
// ReadInfo's cheap meta-only path, so polling it stays inexpensive.
func Identity(path string) (string, error) {
	info, err := ReadInfo(path)
	if err != nil {
		return "", err
	}
	return info.Identity(), nil
}

// sectionPresent reports whether the table lists a section by name.
func sectionPresent(sections []SectionInfo, name string) bool {
	for _, s := range sections {
		if s.Name == name {
			return true
		}
	}
	return false
}

// Sniff reports whether the file at path starts with the artifact magic.
func Sniff(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return magic == Magic
}
