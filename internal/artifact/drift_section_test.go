package artifact

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/drift"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
)

// driftArtifact builds a small artifact carrying a drift calibration.
func driftArtifact(t *testing.T) *Artifact {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	x := mat.New(60, 6)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.Intn(3)
	}
	f := forest.New(forest.Config{NumTrees: 4, MaxDepth: 3, Bootstrap: true, Seed: 99})
	if err := f.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	probs, err := f.PredictProbaBatch(x)
	if err != nil {
		t.Fatal(err)
	}
	raw := mat.New(500, 3)
	for i := range raw.Data {
		raw.Data[i] = rng.NormFloat64()*5 + 20
	}
	cal, err := drift.Fit(drift.FitInput{
		Probs: probs, TrainFeatures: x, HeldOutFeatures: x, RawSamples: raw,
	}, drift.Options{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	scaler := &preprocess.StandardScaler{}
	flat := mat.New(20, 12)
	for i := range flat.Data {
		flat.Data[i] = rng.NormFloat64()
	}
	if err := scaler.Fit(flat); err != nil {
		t.Fatal(err)
	}
	return &Artifact{
		Meta:   Metadata{Features: "cov", Window: 4, Sensors: 3},
		Scaler: scaler,
		Drift:  cal,
		Model:  f,
	}
}

// TestDriftSectionRoundTrip pins that a calibration survives the container
// bit for bit and surfaces through both Load and the cheap ReadInfo path.
func TestDriftSectionRoundTrip(t *testing.T) {
	a := driftArtifact(t)
	path := filepath.Join(t.TempDir(), "drift.wcc")
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}

	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Drift == nil {
		t.Fatal("drift section lost through the container")
	}
	if got.Drift.Threshold != a.Drift.Threshold {
		t.Fatalf("threshold drifted: %+v vs %+v", got.Drift.Threshold, a.Drift.Threshold)
	}
	if !reflect.DeepEqual(got.Drift.Ref, a.Drift.Ref) {
		t.Fatal("reference drifted through the container")
	}

	info, err := ReadInfoDetail(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Drift == nil {
		t.Fatal("ReadInfoDetail did not surface the drift section")
	}
	if info.Drift.Threshold != a.Drift.Threshold {
		t.Fatal("ReadInfoDetail decoded a different threshold")
	}
	if !sectionPresent(info.Sections, "drift") {
		t.Fatal("section table does not list drift")
	}
	// The watcher's polling path stays cheap: ReadInfo lists the section
	// but never decodes it.
	cheap, err := ReadInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if cheap.Drift != nil {
		t.Fatal("ReadInfo decoded the drift section on the cheap path")
	}
	if !sectionPresent(cheap.Sections, "drift") {
		t.Fatal("ReadInfo section table does not list drift")
	}
}

// TestArtifactWithoutDriftLoadsDisabled pins backward compatibility: an
// artifact written without a calibration decodes with Drift nil on both
// paths, and encoding without Drift never emits the section.
func TestArtifactWithoutDriftLoadsDisabled(t *testing.T) {
	a := driftArtifact(t)
	a.Drift = nil
	var buf bytes.Buffer
	if err := Encode(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Drift != nil {
		t.Fatal("drift materialised from nowhere")
	}
	path := filepath.Join(t.TempDir(), "plain.wcc")
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	info, err := ReadInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Drift != nil || sectionPresent(info.Sections, "drift") {
		t.Fatal("drift section present on a plain artifact")
	}
}

// TestDriftSectionCorruption pins that a corrupted drift payload is caught
// by the section CRC before the calibration decoder ever runs.
func TestDriftSectionCorruption(t *testing.T) {
	a := driftArtifact(t)
	var buf bytes.Buffer
	if err := Encode(&buf, a); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Find the drift payload: sections are laid out in table order, so
	// locate it by walking the declared lengths.
	info, err := func() (*Info, error) {
		path := filepath.Join(t.TempDir(), "x.wcc")
		if err := Save(path, a); err != nil {
			return nil, err
		}
		return ReadInfo(path)
	}()
	if err != nil {
		t.Fatal(err)
	}
	offset := len(raw)
	for _, s := range info.Sections {
		offset -= int(s.Length)
	}
	for _, s := range info.Sections {
		if s.Name == "drift" {
			raw[offset+int(s.Length)/2] ^= 0xff
			break
		}
		offset += int(s.Length)
	}
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted drift section decoded successfully")
	}
}
