package artifact

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/preprocess"
	"repro/internal/svm"
	"repro/internal/wire"
	"repro/internal/xgb"
)

// fixtureForest trains a small deterministic forest + scaler and returns an
// evaluation matrix in embedding space.
func fixtureForest(t *testing.T, seed int64) (*forest.Classifier, *preprocess.StandardScaler, *mat.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	flat := mat.New(30, 18)
	for i := range flat.Data {
		flat.Data[i] = rng.NormFloat64()*2 + 3
	}
	scaler := &preprocess.StandardScaler{}
	if err := scaler.Fit(flat); err != nil {
		t.Fatal(err)
	}

	x := mat.New(100, 6)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.Intn(3)
	}
	f := forest.New(forest.Config{NumTrees: 8, MaxDepth: 6, Bootstrap: true, Seed: seed})
	if err := f.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	eval := mat.New(40, 6)
	for i := range eval.Data {
		eval.Data[i] = rng.NormFloat64()
	}
	return f, scaler, eval
}

func encodeToBytes(t *testing.T, a *Artifact) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, a); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTripForestWithScaler(t *testing.T) {
	f, scaler, eval := fixtureForest(t, 1)
	a := &Artifact{
		Meta: Metadata{
			ClassNames: []string{"vgg", "resnet", "bert"},
			Features:   "cov",
			Window:     6, Sensors: 3,
			Dataset: "60-middle-1", Scale: 0.1, Seed: 1,
			Accuracy: 0.875, CreatedUnix: 1700000000, Tool: "test",
		},
		Scaler: scaler,
		Model:  f,
	}
	raw := encodeToBytes(t, a)
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Kind != KindForest {
		t.Fatalf("kind %q", got.Meta.Kind)
	}
	if got.Meta.Dataset != "60-middle-1" || got.Meta.Accuracy != 0.875 || len(got.Meta.ClassNames) != 3 {
		t.Fatalf("metadata did not survive: %+v", got.Meta)
	}
	if !got.Scaler.Equal(scaler) {
		t.Fatal("scaler did not survive bit-identically")
	}
	gotF, ok := got.Model.(*forest.Classifier)
	if !ok {
		t.Fatalf("model type %T", got.Model)
	}
	want, err := f.PredictProbaBatch(eval)
	if err != nil {
		t.Fatal(err)
	}
	have, err := gotF.PredictProbaBatch(eval)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if have.Data[i] != want.Data[i] {
			t.Fatalf("prob[%d]: %v vs %v (not bit-identical)", i, have.Data[i], want.Data[i])
		}
	}
}

func TestRoundTripEveryKind(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := mat.New(80, 5)
	y := make([]int, x.Rows)
	for i := range y {
		y[i] = rng.Intn(3)
		row := x.Row(i)
		for c := range row {
			row[c] = rng.NormFloat64() + float64(y[i])
		}
	}

	xg := xgb.New(xgb.Config{NumRounds: 4, MaxDepth: 3, Seed: 2})
	if err := xg.Fit(x, y, 3, nil, nil); err != nil {
		t.Fatal(err)
	}
	sv := svm.New(svm.Config{C: 1, Seed: 2})
	if err := sv.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lin := svm.NewLinear(svm.LinearConfig{C: 1, Epochs: 20, Seed: 2})
	if err := lin.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	lstm, err := nn.NewBiLSTMClassifier(3, 4, 5, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		kind  string
		model any
	}{
		{KindXGB, xg},
		{KindSVM, sv},
		{KindLinearSVM, lin},
		{nn.KindBiLSTM, lstm},
	}
	for _, tc := range cases {
		raw := encodeToBytes(t, &Artifact{Model: tc.model})
		got, err := Decode(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if got.Meta.Kind != tc.kind {
			t.Fatalf("kind %q, want %q", got.Meta.Kind, tc.kind)
		}
		if k, err := ModelKind(got.Model); err != nil || k != tc.kind {
			t.Fatalf("%s: decoded model kind %q, %v", tc.kind, k, err)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	if err := Encode(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil artifact should fail")
	}
	if err := Encode(&bytes.Buffer{}, &Artifact{}); err == nil {
		t.Error("nil model should fail")
	}
	if err := Encode(&bytes.Buffer{}, &Artifact{Model: 42}); err == nil {
		t.Error("unsupported model type should fail")
	}
	f, _, _ := fixtureForest(t, 3)
	if err := Encode(&bytes.Buffer{}, &Artifact{Meta: Metadata{Kind: KindXGB}, Model: f}); err == nil {
		t.Error("kind/type mismatch should fail")
	}
}

func TestDecodeWrongMagic(t *testing.T) {
	_, err := Decode(bytes.NewReader([]byte("PK\x03\x04 definitely a zip file")))
	if err == nil || !strings.Contains(err.Error(), "not a .wcc artifact") {
		t.Fatalf("err = %v", err)
	}
	// An npz (zip) header must also be rejected cleanly.
	if _, err := Decode(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("zeroed input accepted")
	}
}

func TestDecodeFutureVersion(t *testing.T) {
	f, _, _ := fixtureForest(t, 4)
	raw := encodeToBytes(t, &Artifact{Model: f})
	binary.LittleEndian.PutUint32(raw[8:], FormatVersion+1)
	_, err := Decode(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeTruncations(t *testing.T) {
	f, scaler, _ := fixtureForest(t, 5)
	raw := encodeToBytes(t, &Artifact{Scaler: scaler, Model: f})
	for cut := 0; cut < len(raw); cut++ {
		if _, err := Decode(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d decoded successfully", cut, len(raw))
		}
	}
}

// TestDecodeByteFlips corrupts every byte of a small artifact in turn; every
// variant must produce an error — never a panic, never a silent misload.
func TestDecodeByteFlips(t *testing.T) {
	f, scaler, _ := fixtureForest(t, 6)
	raw := encodeToBytes(t, &Artifact{Scaler: scaler, Model: f})
	mut := make([]byte, len(raw))
	for i := range raw {
		copy(mut, raw)
		mut[i] ^= 0xFF
		if _, err := Decode(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flip at byte %d of %d decoded successfully", i, len(raw))
		}
	}
}

// craftContainer assembles a raw container from arbitrary sections, for
// corruption cases Encode itself refuses to produce.
func craftContainer(t *testing.T, version uint32, sections []struct {
	name    string
	payload []byte
}) []byte {
	t.Helper()
	var head bytes.Buffer
	ww := wire.NewWriter(&head)
	ww.U32(version)
	ww.U32(uint32(len(sections)))
	for _, s := range sections {
		ww.String(s.name)
		ww.U64(uint64(len(s.payload)))
		ww.U32(crc32.ChecksumIEEE(s.payload))
	}
	if err := ww.Err(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Write(Magic[:])
	buf.Write(head.Bytes())
	wire.NewWriter(&buf).U32(crc32.ChecksumIEEE(head.Bytes()))
	for _, s := range sections {
		buf.Write(s.payload)
	}
	return buf.Bytes()
}

func TestDecodeCraftedCorruption(t *testing.T) {
	type sec = struct {
		name    string
		payload []byte
	}

	// Unknown model kind in otherwise-valid metadata.
	raw := craftContainer(t, FormatVersion, []sec{
		{"meta", []byte(`{"kind":"quantum-forest"}`)},
		{"model", []byte{1, 0}},
	})
	if _, err := Decode(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "unknown model kind") {
		t.Errorf("unknown kind err = %v", err)
	}

	// Missing model section.
	raw = craftContainer(t, FormatVersion, []sec{{"meta", []byte(`{"kind":"forest"}`)}})
	if _, err := Decode(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "missing model section") {
		t.Errorf("missing model err = %v", err)
	}

	// Missing meta section.
	raw = craftContainer(t, FormatVersion, []sec{{"model", []byte{1, 0}}})
	if _, err := Decode(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "missing meta section") {
		t.Errorf("missing meta err = %v", err)
	}

	// Invalid JSON metadata.
	raw = craftContainer(t, FormatVersion, []sec{
		{"meta", []byte(`{"kind":`)},
		{"model", []byte{1, 0}},
	})
	if _, err := Decode(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "corrupt metadata") {
		t.Errorf("bad json err = %v", err)
	}
}

// TestDecodeSkipsUnknownSections pins minor-version forward compatibility: a
// file carrying an extra section a newer writer added still loads.
func TestDecodeSkipsUnknownSections(t *testing.T) {
	f, _, eval := fixtureForest(t, 7)
	var model bytes.Buffer
	if err := f.Encode(&model); err != nil {
		t.Fatal(err)
	}
	raw := craftContainer(t, FormatVersion, []struct {
		name    string
		payload []byte
	}{
		{"meta", []byte(`{"kind":"forest"}`)},
		{"calibration", []byte("future section payload")},
		{"model", model.Bytes()},
	})
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	gotF := got.Model.(*forest.Classifier)
	want, _ := f.PredictProbaBatch(eval)
	have, err := gotF.PredictProbaBatch(eval)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if have.Data[i] != want.Data[i] {
			t.Fatalf("prob[%d] differs after unknown-section skip", i)
		}
	}
}

func TestSaveLoadAndReadInfo(t *testing.T) {
	f, scaler, _ := fixtureForest(t, 8)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.wcc")
	a := &Artifact{
		Meta:   Metadata{Features: "cov", Window: 6, Sensors: 3, Dataset: "60-middle-1", Accuracy: 0.9},
		Scaler: scaler,
		Model:  f,
	}
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	// Atomic save leaves no temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after Save", len(entries))
	}

	if !Sniff(path) {
		t.Error("Sniff should recognise the artifact")
	}
	if Sniff(filepath.Join(dir, "missing")) {
		t.Error("Sniff on a missing file")
	}

	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Kind != KindForest || got.Scaler == nil {
		t.Fatalf("loaded %+v", got.Meta)
	}

	info, err := ReadInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.FormatVersion != FormatVersion || info.Meta.Dataset != "60-middle-1" {
		t.Fatalf("info %+v", info)
	}
	names := make([]string, len(info.Sections))
	for i, s := range info.Sections {
		names[i] = s.Name
	}
	if names[0] != "meta" || len(names) != 3 {
		t.Fatalf("sections %v", names)
	}
}
