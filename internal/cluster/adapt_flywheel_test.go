package cluster_test

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/artifact"
	"repro/internal/cluster/clustertest"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/fleet"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/shard"
)

// The cluster flywheel test reuses the adapt package's fixture recipe: four
// in-distribution classes at raw means 2+2.5c and one coherent OOD family
// at mean 14, embedded through the real fleet so the fixture trains on
// exactly the features live serving computes.

const (
	fwWindow  = 6
	fwSensors = 3
	fwClasses = 4
)

// Class means with distinct squared deviations from the overall mean: the
// uncentered covariance embedding collides equally-spaced means in ± pairs
// after standardisation, so the magnitudes must be unequal.
var fwIDMeans = [fwClasses]float64{2, 4, 8, 16}

func fwIDSamples(class, seed, n int) [][]float64 {
	rng := rand.New(rand.NewSource(int64(seed)*7919 + 3))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, fwSensors)
		for c := range s {
			s[c] = rng.NormFloat64() + fwIDMeans[class]
		}
		out[i] = s
	}
	return out
}

func fwOODSamples(seed, n int) [][]float64 {
	rng := rand.New(rand.NewSource(int64(seed)*104729 + 7))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, fwSensors)
		for c := range s {
			s[c] = rng.NormFloat64() + 28
		}
		out[i] = s
	}
	return out
}

type fwCollector struct {
	mu   sync.Mutex
	rows map[int][]float64
}

func (c *fwCollector) ObserveWindow(o fleet.Observation) {
	c.mu.Lock()
	c.rows[o.Job] = append([]float64(nil), o.Features...)
	c.mu.Unlock()
}

// fwFixture builds the serving stack the cluster boots with: scaler,
// 4-class forest on fleet-embedded features, drift calibration, and the
// base feature pair the in-process trainer widens with novel families.
func fwFixture(t *testing.T) (*preprocess.StandardScaler, *forest.Classifier, *drift.Calibration, *core.FeaturePair, *mat.Matrix) {
	t.Helper()
	const perClass = 60
	const trainPer = 45

	flat := mat.New(fwClasses*perClass, fwWindow*fwSensors)
	raw := mat.New(fwClasses*perClass*fwWindow, fwSensors)
	ri := 0
	for j := 0; j < fwClasses*perClass; j++ {
		for si, s := range fwIDSamples(j%fwClasses, j, fwWindow) {
			copy(flat.Data[j*fwWindow*fwSensors+si*fwSensors:], s)
			copy(raw.Data[ri*fwSensors:(ri+1)*fwSensors], s)
			ri++
		}
	}
	var scaler preprocess.StandardScaler
	if _, err := scaler.FitTransform(flat); err != nil {
		t.Fatal(err)
	}

	dim := preprocess.CovarianceDim(fwSensors)
	rng := rand.New(rand.NewSource(1))
	dummyX := mat.New(80, dim)
	for i := range dummyX.Data {
		dummyX.Data[i] = rng.NormFloat64()
	}
	dummyY := make([]int, dummyX.Rows)
	for i := range dummyY {
		dummyY[i] = rng.Intn(fwClasses)
	}
	dummy := forest.New(forest.Config{NumTrees: 5, Bootstrap: true, Seed: 2})
	if err := dummy.Fit(dummyX, dummyY, fwClasses); err != nil {
		t.Fatal(err)
	}
	collect, err := fleet.New(fleet.Config{Window: fwWindow, Sensors: fwSensors, Scaler: &scaler, Model: dummy})
	if err != nil {
		t.Fatal(err)
	}
	obs := &fwCollector{rows: make(map[int][]float64)}
	collect.SetAdaptObserver(obs)
	for j := 0; j < fwClasses*perClass; j++ {
		for _, s := range fwIDSamples(j%fwClasses, j, fwWindow) {
			if err := collect.Ingest(j, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := collect.Tick(); err != nil {
		t.Fatal(err)
	}

	trainX := mat.New(fwClasses*trainPer, dim)
	trainY := make([]int, 0, trainX.Rows)
	testX := mat.New(fwClasses*(perClass-trainPer), dim)
	testY := make([]int, 0, testX.Rows)
	for j := 0; j < fwClasses*perClass; j++ {
		row, ok := obs.rows[j]
		if !ok {
			t.Fatalf("job %d produced no feature row", j)
		}
		if j/fwClasses < trainPer {
			copy(trainX.Data[len(trainY)*dim:], row)
			trainY = append(trainY, j%fwClasses)
		} else {
			copy(testX.Data[len(testY)*dim:], row)
			testY = append(testY, j%fwClasses)
		}
	}
	model := forest.New(forest.Config{NumTrees: 30, Bootstrap: true, Seed: 3})
	if err := model.Fit(trainX, trainY, fwClasses); err != nil {
		t.Fatal(err)
	}
	probs, err := model.PredictProbaBatch(testX)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := drift.Fit(drift.FitInput{
		Probs: probs, TrainFeatures: trainX, HeldOutFeatures: testX, RawSamples: raw,
	}, drift.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fp := &core.FeaturePair{TrainX: trainX, TrainY: trainY, TestX: testX, TestY: testY, Scaler: &scaler}
	return &scaler, model, cal, fp, raw
}

// fwTrainer widens the base feature pair in-process; the BaseMeta carries
// the full servable shape so the candidate artifact passes the cluster's
// per-node ServableModel gates during the rolling swap.
type fwTrainer struct {
	fp  *core.FeaturePair
	raw *mat.Matrix
}

func (ft *fwTrainer) Train(fams []adapt.Family) (*artifact.Artifact, error) {
	return adapt.BuildCandidateArtifact(ft.fp, ft.raw, fams, adapt.CandidateOptions{
		BaseMeta: artifact.Metadata{
			Kind:       artifact.KindForest,
			Features:   "cov",
			ClassNames: []string{"c0", "c1", "c2", "c3"},
			Window:     fwWindow, Sensors: fwSensors, Seed: 3,
		},
		Trees: 30,
		// The held-out set carries only a handful of family rows, and they
		// dominate the distance tail; the default 0.95 feature quantile
		// would cut into the family region itself.
		FeatQuantile: 0.99,
	})
}

// fwDrive pushes one traffic phase directly into a node's core: idJobs
// in-distribution jobs then oodJobs OOD jobs, one full window each, then a
// deterministic tick. Returns the OOD job IDs.
func fwDrive(t *testing.T, c *shard.Core, base, idJobs, oodJobs int) []int {
	t.Helper()
	for j := 0; j < idJobs; j++ {
		for _, s := range fwIDSamples(j%fwClasses, base+j, fwWindow) {
			if err := c.Ingest(base+j, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	var ood []int
	for j := 0; j < oodJobs; j++ {
		id := base + idJobs + j
		ood = append(ood, id)
		for _, s := range fwOODSamples(id, fwWindow) {
			if err := c.Ingest(id, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	return ood
}

func fwRejectedRate(t *testing.T, c *shard.Core, jobs []int) float64 {
	t.Helper()
	rejected := 0
	for _, id := range jobs {
		pred, ok := c.Prediction(id)
		if !ok {
			t.Fatalf("job %d has no prediction", id)
		}
		if pred.Unknown() {
			rejected++
		}
	}
	return float64(rejected) / float64(len(jobs))
}

// TestClusterFlywheelPromotion runs the full continual-learning loop
// against a live 3-node cluster: OOD traffic rejected and buffered on one
// node, a candidate trained and shadow-scored there, then promoted through
// the cluster's replicate→prepare→commit swap — after which every node
// serves the widened class set at the same generation (no torn
// generation), and the OOD family's unknown rate collapses fleet-wide.
func TestClusterFlywheelPromotion(t *testing.T) {
	scaler, model, cal, fp, raw := fwFixture(t)
	c := clustertest.Start(t, clustertest.Options{
		Nodes: 3, Window: fwWindow, Sensors: fwSensors,
		Scaler: scaler, Model: model, Drift: cal,
	})

	// The flywheel watches node 0; promotion rolls the whole cluster.
	dir := t.TempDir()
	candPath := filepath.Join(dir, "candidate.wcc")
	mgr, err := adapt.New(adapt.Config{
		FeatureDim:       preprocess.CovarianceDim(fwSensors),
		MinSupport:       20,
		Radius:           12,
		Calibration:      cal,
		Trainer:          &fwTrainer{fp: fp, raw: raw},
		ShadowMinWindows: 40,
		GateAgreement:    0.8,
		Promote: func(a *artifact.Artifact) error {
			if err := artifact.Save(candPath, a); err != nil {
				return err
			}
			_, err := c.Member(0).Cluster.DistributeFile(candPath)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Member(0).Core.SetAdaptObserver(mgr)

	// Phase A on node 0: the OOD family is rejected and buffered. Support
	// matters: the candidate's feature gate is calibrated from held-out
	// family rows, so the buffer must sample the family densely enough
	// that its distance scale is represented.
	oodA := fwDrive(t, c.Member(0).Core, 0, 40, 60)
	preRate := fwRejectedRate(t, c.Member(0).Core, oodA)
	if preRate < 0.5 {
		t.Fatalf("pre-promotion OOD rejection rate %.2f, fixture not OOD enough", preRate)
	}
	if st := mgr.Status(); st.Buffered < 20 {
		t.Fatalf("buffered %d rejected windows, want >= MinSupport", st.Buffered)
	}
	if err := mgr.BuildCandidate(); err != nil {
		t.Fatal(err)
	}

	// Phase B: shadow over live node-0 traffic until the gate opens.
	fwDrive(t, c.Member(0).Core, 1000, 40, 30)
	st := mgr.Status()
	if !st.GateReady {
		t.Fatalf("gate closed after healthy shadow: %+v", st.Shadow)
	}
	if err := mgr.PromoteIfReady(); err != nil {
		t.Fatal(err)
	}

	// Every node lands on cluster gen 1 with the same artifact identity:
	// the swap committed everywhere, nothing torn.
	wantIdent := c.Member(0).Cluster.Identity()
	if wantIdent == "" {
		t.Fatal("coordinator has no artifact identity after promotion")
	}
	for i := 0; i < 3; i++ {
		m := c.Member(i)
		if !clustertest.Settle(5*time.Second, func() bool {
			return m.Cluster.Gen() == 1 && m.Cluster.Identity() == wantIdent
		}) {
			t.Fatalf("node %d stuck at gen %d identity %q, want gen 1 %q",
				i, m.Cluster.Gen(), m.Cluster.Identity(), wantIdent)
		}
	}

	// Phase C: the same OOD family hits every node and is now a recognised
	// class fleet-wide.
	for i := 0; i < 3; i++ {
		oodC := fwDrive(t, c.Member(i).Core, 2000+500*i, 10, 20)
		postRate := fwRejectedRate(t, c.Member(i).Core, oodC)
		if postRate > 0.2*preRate {
			for _, id := range oodC {
				if pred, ok := c.Member(i).Core.Prediction(id); ok && pred.Open != nil {
					t.Logf("job %d class %d prob %.3f margin %.3f energy %.3f featdist %.3f rejected %v",
						id, pred.Class, pred.Probability, pred.Open.Margin, pred.Open.Energy, pred.Open.FeatDist, pred.Open.Rejected)
				}
			}
			t.Fatalf("node %d post-promotion OOD rejection rate %.2f vs pre %.2f", i, postRate, preRate)
		}
		novel := 0
		for _, id := range oodC {
			if pred, ok := c.Member(i).Core.Prediction(id); ok && pred.Class == fwClasses {
				novel++
			}
		}
		if novel < len(oodC)*3/4 {
			t.Fatalf("node %d: only %d/%d OOD jobs classified as the novel class", i, novel, len(oodC))
		}
	}

	// The manager reset against the new generation on node 0.
	if st := mgr.Status(); st.Phase != adapt.PhaseBuffer || st.Promotions != 1 {
		t.Fatalf("after cluster promotion: %+v", st)
	}
}
