package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/wire"
)

// Peer ingest forwarding: a sample that arrives at the wrong node rides a
// bounded per-peer queue, is batched into the binary ingest framing of
// internal/wire, and is POSTed to the owner's /cluster/v1/ingest. One
// forwarder goroutine per peer keeps per-job sample order — everything a
// given node forwards to a given peer arrives in enqueue order, so a
// job's window fills exactly as it would have locally.
//
// The queue is bounded and the enqueue non-blocking: a full queue rejects
// the sample with an error that surfaces in the ingest batch's per-line
// accounting, the same visible-backpressure posture as the serving
// layer's 429. Loss during a peer outage is therefore bounded by the
// queue depth and counted, never silent.

// fwdSample is one queued forwarded sample, or a flush marker.
type fwdSample struct {
	job    int
	values []float64 // owned copy; never aliases pooled parse scratch
	// flush, when non-nil, marks a synchronisation point: the forwarder
	// posts everything queued before it, then closes the channel.
	flush chan struct{}
}

// forwarder drains one peer's queue.
type forwarder struct {
	n    *Node
	peer int
	ch   chan fwdSample
}

func newForwarder(n *Node, peer int) *forwarder {
	return &forwarder{n: n, peer: peer, ch: make(chan fwdSample, n.cfg.ForwardBuffer)}
}

// forward enqueues one sample for the owning peer, copying the values
// first: the caller's slice belongs to the serving layer's pooled parse
// scratch, which is reused the moment the ingest handler returns, while
// the queued sample lives until a forwarder batch posts it.
func (n *Node) forward(owner, jobID int, values []float64) error {
	f := n.forwarders[owner]
	if f == nil {
		return fmt.Errorf("cluster: no forwarder for node %d", owner)
	}
	vals := make([]float64, len(values))
	copy(vals, values)
	select {
	case f.ch <- fwdSample{job: jobID, values: vals}:
		n.forwarded.Add(1)
		return nil
	default:
		n.forwardDropped.Add(1)
		return fmt.Errorf("cluster: forward queue to node %d full", owner)
	}
}

// Flush forces every forwarder to post its queue and waits for all of
// them (or the timeout). Tests and drain paths use it to make "every
// accepted sample has reached its owner" a checkable instant.
func (n *Node) Flush(timeout time.Duration) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	var waits []chan struct{}
	for _, f := range n.forwarders {
		if f == nil {
			continue
		}
		done := make(chan struct{})
		select {
		case f.ch <- fwdSample{flush: done}:
			waits = append(waits, done)
		case <-deadline.C:
			return fmt.Errorf("cluster: flush timed out enqueueing marker for node %d", f.peer)
		}
	}
	for _, done := range waits {
		select {
		case <-done:
		case <-deadline.C:
			return fmt.Errorf("cluster: flush timed out after %s", timeout)
		}
	}
	return nil
}

// run drains the queue until Stop, batching up to ForwardBatch samples
// per POST. On Stop it flushes what is queued best-effort, so a graceful
// shutdown loses nothing that was accepted.
func (f *forwarder) run() {
	defer f.n.wg.Done()
	buf := make([]byte, 0, 4096)
	for {
		select {
		case <-f.n.stop:
			f.drainRemaining(&buf)
			return
		case s := <-f.ch:
			f.batch(&buf, s)
		}
	}
}

// batch collects the first sample plus whatever else is immediately
// queued (up to the batch cap), posts once, then releases any flush
// markers collected along the way.
func (f *forwarder) batch(buf *[]byte, first fwdSample) {
	var flushes []chan struct{}
	count := 0
	s := first
	for {
		if s.flush != nil {
			flushes = append(flushes, s.flush)
		} else {
			*buf = wire.AppendIngestRecord(*buf, int64(s.job), s.values)
			count++
		}
		if count >= f.n.cfg.ForwardBatch {
			break
		}
		select {
		case s = <-f.ch:
			continue
		default:
		}
		break
	}
	f.post(buf, count)
	for _, done := range flushes {
		close(done)
	}
}

// drainRemaining posts everything still queued at shutdown and releases
// any pending flush markers.
func (f *forwarder) drainRemaining(buf *[]byte) {
	count := 0
	for {
		select {
		case s := <-f.ch:
			if s.flush != nil {
				close(s.flush)
				continue
			}
			*buf = wire.AppendIngestRecord(*buf, int64(s.job), s.values)
			count++
			if count >= f.n.cfg.ForwardBatch {
				f.post(buf, count)
				count = 0
			}
		default:
			f.post(buf, count)
			return
		}
	}
}

// post ships one batch to the peer's /cluster/v1/ingest. A failed POST
// loses exactly this batch's samples; the loss is counted in
// forwardErrors and bounded by the batch cap.
func (f *forwarder) post(buf *[]byte, count int) {
	if len(*buf) == 0 {
		return
	}
	body := *buf
	*buf = (*buf)[:0]
	resp, err := f.n.client.Post(f.n.peers[f.peer]+peerIngestPath, wire.IngestContentType, bytes.NewReader(body))
	if err != nil {
		f.n.forwardErrors.Add(uint64(count))
		f.n.logf("cluster: forwarding %d samples to node %d: %v", count, f.peer, err)
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		f.n.forwardErrors.Add(uint64(count))
		f.n.logf("cluster: forwarding %d samples to node %d: HTTP %d", count, f.peer, resp.StatusCode)
	}
}
