// Package clustertest runs a real multi-node serving cluster inside one
// test process: N wccserve stacks (shard.Core → cluster.Node →
// server.Server) on loopback listeners, talking real HTTP through a
// fault-injecting transport. Everything runs under plain `go test` and
// `-race` — no containers, no sleeps standing in for synchronisation.
//
// The harness offers the failure levers the cluster tests need:
//
//   - Kill / Restart a node (the listener closes for real; a restart
//     rebinds the same address with a fresh process-equivalent stack);
//   - Partition a node (its peers' requests to it fail at the transport);
//   - Hold requests matching a URL substring (stall a replica mid-swap)
//     until released;
//   - StampArtifact: real `.wcc` artifacts whose models carry a readable
//     generation stamp in their class-0 probability, so a test can ask
//     "which generation served this prediction?" bit-exactly.
package clustertest

import (
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/cluster"
	"repro/internal/drift"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stream"
)

// Options sizes a test cluster. Zero values pick test-friendly defaults.
type Options struct {
	// Nodes is the cluster size (default 3).
	Nodes int
	// Window, Sensors give the fleet shape (defaults 6×3 — small enough
	// that a job classifies after a handful of samples).
	Window  int
	Sensors int
	// Scaler is the serving scaler; nil builds a deterministic synthetic
	// one (see NewScaler).
	Scaler *preprocess.StandardScaler
	// Model is the initial classifier on every node; nil builds a stamped
	// model with stamp 0.
	Model stream.Classifier
	// Shards is each node's local shard count (default 2, so the
	// node-then-shard two-level routing is actually exercised).
	Shards int
	// Drift optionally enables open-set scoring on every node.
	Drift *drift.Calibration
	// TickEvery is each server's inference cadence (default 2ms).
	TickEvery time.Duration
	// HeartbeatEvery is the membership ping cadence (default 25ms).
	HeartbeatEvery time.Duration
	// DeadAfter is the consecutive-failure death threshold (default 2).
	DeadAfter int
	// RPCTimeout bounds control-plane calls (default 2s). Stall tests
	// that hold a prepare want it larger than the hold window.
	RPCTimeout time.Duration
	// ForwardBuffer bounds each per-peer forward queue (default 4096).
	ForwardBuffer int
	// Now, when non-nil, is the injected clock handed to every core and
	// server (fleet idle-eviction and tick latency read it).
	Now func() time.Time
	// Logf, when non-nil, receives every node's operational log lines.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Window <= 0 {
		o.Window = 6
	}
	if o.Sensors <= 0 {
		o.Sensors = 3
	}
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.TickEvery <= 0 {
		o.TickEvery = 2 * time.Millisecond
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 25 * time.Millisecond
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 2
	}
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = 2 * time.Second
	}
	if o.Scaler == nil {
		o.Scaler = NewScaler(o.Window, o.Sensors)
	}
	if o.Model == nil {
		o.Model = StampModel(nil, o.Sensors, 0)
	}
}

// Member is one running node: its serving stack plus enough handles for a
// test to reach every layer.
type Member struct {
	ID      int
	URL     string
	Core    *shard.Core
	Cluster *cluster.Node
	Server  *server.Server

	httpSrv *http.Server
	alive   bool
}

// Alive reports whether the member is currently running (not Killed).
func (m *Member) Alive() bool { return m.alive }

// Cluster is the running test cluster.
type Cluster struct {
	T     *testing.T
	Opts  Options
	Fault *FaultInjector
	URLs  []string

	dir     string
	members []*Member
}

// Start builds and starts an N-node cluster on loopback listeners. Every
// node registers cleanup via t.Cleanup, so tests may return without
// explicit teardown.
func Start(t *testing.T, opts Options) *Cluster {
	t.Helper()
	opts.fill()
	c := &Cluster{
		T:       t,
		Opts:    opts,
		Fault:   NewFaultInjector(),
		dir:     t.TempDir(),
		members: make([]*Member, opts.Nodes),
		URLs:    make([]string, opts.Nodes),
	}
	listeners := make([]net.Listener, opts.Nodes)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("clustertest: listening for node %d: %v", i, err)
		}
		listeners[i] = ln
		c.URLs[i] = "http://" + ln.Addr().String()
	}
	for i, ln := range listeners {
		c.startMember(i, ln)
	}
	t.Cleanup(c.Close)
	return c
}

// startMember boots one node's full stack on the given listener.
func (c *Cluster) startMember(id int, ln net.Listener) {
	c.T.Helper()
	o := c.Opts
	core, err := shard.New(shard.Config{
		Window:  o.Window,
		Sensors: o.Sensors,
		Scaler:  o.Scaler,
		Model:   o.Model,
		Shards:  o.Shards,
		Drift:   o.Drift,
		Now:     o.Now,
	})
	if err != nil {
		c.T.Fatalf("clustertest: node %d core: %v", id, err)
	}
	node, err := cluster.New(cluster.Config{
		Self:           id,
		Peers:          c.URLs,
		Core:           core,
		Dir:            filepath.Join(c.dir, fmt.Sprintf("node%d", id)),
		Window:         o.Window,
		Sensors:        o.Sensors,
		Scaler:         o.Scaler,
		HeartbeatEvery: o.HeartbeatEvery,
		DeadAfter:      o.DeadAfter,
		RPCTimeout:     o.RPCTimeout,
		ForwardBuffer:  o.ForwardBuffer,
		Transport:      c.Fault,
		Now:            o.Now,
		Logf:           o.Logf,
	})
	if err != nil {
		c.T.Fatalf("clustertest: node %d cluster: %v", id, err)
	}
	srv, err := server.New(server.Config{Monitor: node.Monitor(), TickEvery: o.TickEvery, Now: o.Now})
	if err != nil {
		c.T.Fatalf("clustertest: node %d server: %v", id, err)
	}
	handler := node.AttachServer(srv)
	hs := &http.Server{Handler: handler}
	go hs.Serve(ln)
	node.Start()
	c.members[id] = &Member{
		ID:      id,
		URL:     c.URLs[id],
		Core:    core,
		Cluster: node,
		Server:  srv,
		httpSrv: hs,
		alive:   true,
	}
}

// Member returns the node's handles (valid even while killed, pointing at
// the most recent incarnation).
func (c *Cluster) Member(i int) *Member { return c.members[i] }

// Kill stops node i like a crash seen from its peers: the listener and
// every open connection close, the background loops stop. Peer requests
// to it fail immediately; heartbeats mark it dead after DeadAfter rounds.
func (c *Cluster) Kill(i int) {
	c.T.Helper()
	m := c.members[i]
	if !m.alive {
		return
	}
	m.alive = false
	m.httpSrv.Close()
	m.Cluster.Stop()
	m.Server.Close()
}

// Restart boots a fresh stack for node i on its original address — the
// process-restart scenario: empty registries, the boot-time model, gen 0.
// Convergence back to the fleet's live artifact is the anti-entropy
// layer's job, which tests assert via Settle.
func (c *Cluster) Restart(i int) {
	c.T.Helper()
	if c.members[i].alive {
		return
	}
	addr := strings.TrimPrefix(c.URLs[i], "http://")
	var ln net.Listener
	var err error
	// The closed port can linger briefly; rebinding retries over ~2s.
	for attempt := 0; attempt < 40; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		c.T.Fatalf("clustertest: rebinding %s for node %d: %v", addr, i, err)
	}
	c.startMember(i, ln)
}

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	for i, m := range c.members {
		if m != nil && m.alive {
			c.Kill(i)
		}
	}
}

// Settle polls cond every few milliseconds until it holds or the timeout
// expires, reporting whether it held.
func Settle(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// FaultInjector is an http.RoundTripper that injects failures between
// cluster nodes: partitions (requests to a host fail), holds (requests
// matching a URL substring block until released), and fixed delays.
type FaultInjector struct {
	base http.RoundTripper

	mu      sync.Mutex
	blocked map[string]bool
	holds   []*holdRule
	delay   time.Duration
}

type holdRule struct {
	substr  string
	release chan struct{}
}

// NewFaultInjector wraps http.DefaultTransport.
func NewFaultInjector() *FaultInjector {
	return &FaultInjector{base: http.DefaultTransport, blocked: make(map[string]bool)}
}

// Partition makes every request to the URL's host fail at the transport,
// in both control and forwarding planes. Heal undoes it.
func (f *FaultInjector) Partition(url string) {
	f.mu.Lock()
	f.blocked[hostOf(url)] = true
	f.mu.Unlock()
}

// Heal removes a partition.
func (f *FaultInjector) Heal(url string) {
	f.mu.Lock()
	delete(f.blocked, hostOf(url))
	f.mu.Unlock()
}

// Hold blocks every future request whose URL contains substr until the
// returned release function is called (idempotent). A held request still
// honours its context, so client timeouts fire normally — exactly how a
// stalled replica looks to a swap coordinator.
func (f *FaultInjector) Hold(substr string) (release func()) {
	h := &holdRule{substr: substr, release: make(chan struct{})}
	f.mu.Lock()
	f.holds = append(f.holds, h)
	f.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			f.mu.Lock()
			for i, cur := range f.holds {
				if cur == h {
					f.holds = append(f.holds[:i], f.holds[i+1:]...)
					break
				}
			}
			f.mu.Unlock()
			close(h.release)
		})
	}
}

// SetDelay adds a fixed latency to every request (0 disables).
func (f *FaultInjector) SetDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

func hostOf(url string) string {
	return strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
}

// RoundTrip applies the configured faults, then forwards to the real
// transport. All blocking happens outside the injector's lock.
func (f *FaultInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	blocked := f.blocked[req.URL.Host]
	var wait chan struct{}
	full := req.URL.String()
	for _, h := range f.holds {
		if strings.Contains(full, h.substr) {
			wait = h.release
			break
		}
	}
	delay := f.delay
	f.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("clustertest: host %s partitioned", req.URL.Host)
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		}
	}
	if wait != nil {
		select {
		case <-wait:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	return f.base.RoundTrip(req)
}

// NewScaler builds a deterministic identity-ish scaler for the window
// shape: mean 0, stddev 1 for every flattened-window column, so sample
// values pass standardisation unchanged and tests reason in raw values.
func NewScaler(window, sensors int) *preprocess.StandardScaler {
	cols := window * sensors
	train := mat.New(2, cols)
	for j := 0; j < cols; j++ {
		// Two rows at ±1 around zero give exactly mean 0, stddev 1.
		train.Data[j] = 1
		train.Data[cols+j] = -1
	}
	var sc preprocess.StandardScaler
	if _, err := sc.FitTransform(train); err != nil {
		panic(err) // two finite rows cannot fail to fit
	}
	return &sc
}

// stampDenominator is the resolution of a model stamp: a stamp k in
// [0,127] becomes the exactly-representable class-0 probability k/128.
const stampDenominator = 128

// StampModel builds a classifier whose every prediction carries the stamp
// in its class-0 probability: a single-tree, no-bootstrap forest fit on a
// constant design matrix, so the tree is one leaf holding the class
// frequencies [k/128, 1-k/128]. Real forest, real artifact codec, fully
// deterministic — and 128 distinguishable generations. t may be nil (the
// builder cannot fail on valid stamps; invalid stamps panic).
func StampModel(t *testing.T, sensors, stamp int) *forest.Classifier {
	if t != nil {
		t.Helper()
	}
	if stamp < 0 || stamp >= stampDenominator {
		panic(fmt.Sprintf("clustertest: stamp %d outside [0,%d)", stamp, stampDenominator-1))
	}
	dim := preprocess.CovarianceDim(sensors)
	x := mat.New(stampDenominator, dim) // all zeros: nothing to split on
	y := make([]int, stampDenominator)
	for i := stamp; i < len(y); i++ {
		y[i] = 1
	}
	f := forest.New(forest.Config{NumTrees: 1, Bootstrap: false, Seed: 1})
	if err := f.Fit(x, y, 2); err != nil {
		panic(fmt.Sprintf("clustertest: fitting stamp model: %v", err))
	}
	return f
}

// StampArtifact writes a real `.wcc` artifact whose model carries the
// stamp (see StampModel) and is servable by a fleet of the given shape.
// Distinct stamps produce distinct artifact CRC identities — the
// replication-convergence tests depend on that.
func StampArtifact(t *testing.T, dir string, window, sensors int, scaler *preprocess.StandardScaler, stamp int) string {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("stamp-%03d.wcc", stamp))
	a := &artifact.Artifact{
		Meta: artifact.Metadata{
			Kind:     "forest",
			Features: "cov",
			Window:   window,
			Sensors:  sensors,
			Tool:     "clustertest",
		},
		Scaler: scaler,
		Model:  StampModel(t, sensors, stamp),
	}
	if err := artifact.Save(path, a); err != nil {
		t.Fatalf("clustertest: writing stamp artifact %d: %v", stamp, err)
	}
	return path
}

// StampOf recovers the stamp from a prediction's probabilities.
func StampOf(probs []float64) int {
	if len(probs) == 0 {
		return -1
	}
	return int(probs[0]*stampDenominator + 0.5)
}
