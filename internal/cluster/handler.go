package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"

	"repro/internal/server"
	"repro/internal/wire"
)

// maxControlBody caps one control-plane request body: the frame overhead
// plus the largest artifact a replicate may carry.
const maxControlBody = MaxFrameArtifactBytes + 1024

// maxPeerIngestBody caps one forwarded-ingest body, mirroring the serving
// layer's default ingest cap.
const maxPeerIngestBody = 16 << 20

// buildHandler assembles the cluster-aware route table over the serving
// layer's handler:
//
//	POST /cluster/v1/ping          heartbeat + anti-entropy advertisement
//	POST /cluster/v1/replicate     persist a pushed artifact, ack its CRC identity
//	POST /cluster/v1/swap/prepare  decode + gate + stage a generation
//	POST /cluster/v1/swap/commit   install the staged generation
//	POST /cluster/v1/swap/abort    drop the staged generation
//	POST /cluster/v1/ingest        peer-forwarded samples (binary framing)
//	GET  /cluster/v1/artifact      committed artifact bytes, for catch-up
//	GET  /cluster/v1/info          membership/convergence snapshot (JSON)
//
// plus three interceptions of the inner API: /healthz grows the cluster
// membership/routing block, /metrics grows the wcc_cluster_* series, and
// job-scoped reads (GET prediction, DELETE job) this node does not own
// answer 307 with the owner's URL in Location — ingest is forwarded
// server-side, but reads redirect, because a read proxied through the
// wrong node would double every read's latency for no benefit.
func (n *Node) buildHandler(inner http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+pingPath, n.handlePing)
	mux.HandleFunc("POST "+replicatePath, n.handleReplicate)
	mux.HandleFunc("POST "+preparePath, n.handlePrepare)
	mux.HandleFunc("POST "+commitPath, n.handleCommit)
	mux.HandleFunc("POST "+abortPath, n.handleAbort)
	mux.HandleFunc("POST "+peerIngestPath, n.handlePeerIngest)
	mux.HandleFunc("GET "+artifactPath, n.handleArtifact)
	mux.HandleFunc("GET "+infoPath, n.handleInfo)
	mux.HandleFunc("GET /healthz", n.handleHealthz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		inner.ServeHTTP(w, r)
		n.writeClusterMetrics(w)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/prediction", n.redirectOrServe(inner))
	mux.HandleFunc("DELETE /v1/jobs/{id}", n.redirectOrServe(inner))
	mux.Handle("/", inner)
	return mux
}

// redirectOrServe intercepts a job-scoped route: a job this node owns is
// served locally, anything else answers 307 Temporary Redirect with the
// owner's URL, preserving method and path. Clients that follow redirects
// (Go's default) land on the owner transparently; wccload counts them.
func (n *Node) redirectOrServe(inner http.Handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			inner.ServeHTTP(w, r) // let the API layer shape the 400
			return
		}
		owner := n.Owner(id)
		if owner == n.self {
			inner.ServeHTTP(w, r)
			return
		}
		n.redirects.Add(1)
		http.Redirect(w, r, n.peers[owner]+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	}
}

// decodeControlFrame reads and validates one control frame from a
// request, writing the HTTP error itself on failure.
func (n *Node) decodeControlFrame(w http.ResponseWriter, r *http.Request) (Frame, bool) {
	f, err := DecodeFrame(io.LimitReader(r.Body, maxControlBody))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return Frame{}, false
	}
	if f.Node >= len(n.peers) {
		http.Error(w, fmt.Sprintf("cluster: sender node %d out of range for %d-node cluster", f.Node, len(n.peers)), http.StatusBadRequest)
		return Frame{}, false
	}
	return f, true
}

// writeAck answers one control request with an ack frame.
func (n *Node) writeAck(w http.ResponseWriter, ack Frame) {
	ack.Type = MsgAck
	ack.Node = n.self
	body, err := AppendFrame(ack)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", frameContentType)
	w.Write(body)
}

// handlePing answers a heartbeat: record the sender as alive (hearing
// from a peer proves liveness in both directions) along with its
// advertised generation, and reply with this node's own state.
func (n *Node) handlePing(w http.ResponseWriter, r *http.Request) {
	f, ok := n.decodeControlFrame(w, r)
	if !ok {
		return
	}
	if f.Type != MsgPing {
		http.Error(w, fmt.Sprintf("cluster: %s frame on the ping route", f.Type), http.StatusBadRequest)
		return
	}
	n.notePeer(f.Node, f.Gen, f.Identity)
	n.writeAck(w, Frame{OK: true, Gen: n.Gen(), Identity: n.Identity()})
}

// handleReplicate persists a pushed artifact and acks with the identity
// computed from the persisted copy — the coordinator compares it to its
// own, so corruption in transit or on disk fails the replicate phase.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	f, ok := n.decodeControlFrame(w, r)
	if !ok {
		return
	}
	if f.Type != MsgReplicate || len(f.Artifact) == 0 {
		http.Error(w, "cluster: replicate needs a MsgReplicate frame with an artifact payload", http.StatusBadRequest)
		return
	}
	ident, err := n.applyReplicate(f.Gen, f.Identity, f.Artifact)
	if err != nil {
		n.writeAck(w, Frame{OK: false, Gen: f.Gen, Identity: ident, Err: err.Error()})
		return
	}
	n.writeAck(w, Frame{OK: true, Gen: f.Gen, Identity: ident})
}

// handlePrepare stages a replicated generation behind the serving
// compatibility gates. Nothing new is served until commit.
func (n *Node) handlePrepare(w http.ResponseWriter, r *http.Request) {
	f, ok := n.decodeControlFrame(w, r)
	if !ok {
		return
	}
	if f.Type != MsgPrepare {
		http.Error(w, fmt.Sprintf("cluster: %s frame on the prepare route", f.Type), http.StatusBadRequest)
		return
	}
	if _, err := n.applyPrepare(f.Gen, f.Identity); err != nil {
		n.writeAck(w, Frame{OK: false, Gen: f.Gen, Err: err.Error()})
		return
	}
	n.writeAck(w, Frame{OK: true, Gen: f.Gen, Identity: f.Identity})
}

// handleCommit installs the staged generation.
func (n *Node) handleCommit(w http.ResponseWriter, r *http.Request) {
	f, ok := n.decodeControlFrame(w, r)
	if !ok {
		return
	}
	if f.Type != MsgCommit {
		http.Error(w, fmt.Sprintf("cluster: %s frame on the commit route", f.Type), http.StatusBadRequest)
		return
	}
	if err := n.applyCommit(f.Gen); err != nil {
		n.writeAck(w, Frame{OK: false, Gen: f.Gen, Err: err.Error()})
		return
	}
	n.writeAck(w, Frame{OK: true, Gen: f.Gen, Identity: n.Identity()})
}

// handleAbort drops the staged generation.
func (n *Node) handleAbort(w http.ResponseWriter, r *http.Request) {
	f, ok := n.decodeControlFrame(w, r)
	if !ok {
		return
	}
	if f.Type != MsgAbort {
		http.Error(w, fmt.Sprintf("cluster: %s frame on the abort route", f.Type), http.StatusBadRequest)
		return
	}
	n.applyAbort(f.Gen)
	n.writeAck(w, Frame{OK: true, Gen: f.Gen})
}

// peerIngestResponse is the forwarded-ingest accounting.
type peerIngestResponse struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
}

// handlePeerIngest ingests peer-forwarded samples directly into the local
// core — no ownership re-check, because re-routing a forwarded sample
// could loop during a membership disagreement; the forwarding node
// already decided ownership and the sample lands here exactly once.
func (n *Node) handlePeerIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPeerIngestBody+1))
	if err != nil {
		http.Error(w, "cluster: reading forwarded batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxPeerIngestBody {
		http.Error(w, fmt.Sprintf("cluster: forwarded batch exceeds %d bytes", maxPeerIngestBody), http.StatusRequestEntityTooLarge)
		return
	}
	dec := wire.NewIngestDecoder(body)
	var resp peerIngestResponse
	for {
		rec, ok := dec.Next()
		if !ok {
			break
		}
		if rec.Err != nil {
			resp.Rejected++
			continue
		}
		if err := n.core.Ingest(int(rec.Job), rec.Values); err != nil {
			resp.Rejected++
			continue
		}
		resp.Accepted++
	}
	if err := dec.Err(); err != nil {
		// Framing broke: the prefix boundaries after the break are
		// untrustworthy, so the remainder of the batch was not decoded.
		http.Error(w, "cluster: forwarded batch framing: "+err.Error(), http.StatusBadRequest)
		return
	}
	n.forwardReceived.Add(uint64(resp.Accepted))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleArtifact serves the committed artifact's bytes with its
// generation and identity in headers — the anti-entropy fetch a
// rejoining node converges from.
func (n *Node) handleArtifact(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	path, gen, ident := n.artPath, n.gen, n.identity
	n.mu.Unlock()
	if path == "" {
		http.Error(w, "cluster: no committed artifact on this node yet", http.StatusNotFound)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		http.Error(w, "cluster: reading committed artifact: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(genHeader, strconv.FormatUint(gen, 10))
	w.Header().Set(identHeader, ident)
	w.Write(data)
}

// handleInfo serves the membership/convergence snapshot as JSON.
func (n *Node) handleInfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(n.Status())
}

// HealthResponse is the cluster-extended /healthz payload: the serving
// layer's health block with the cluster's membership, generation and
// routing view alongside.
type HealthResponse struct {
	server.HealthResponse
	Cluster Status `json:"cluster"`
}

// handleHealthz extends the serving layer's health read with the cluster
// block. The status code follows the inner health (503 when degraded);
// an unconverged cluster is visible but not unhealthy — convergence is
// eventual by design while a swap rolls or a node catches up.
func (n *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Cluster: n.Status()}
	if n.srv != nil {
		resp.HealthResponse = n.srv.Health()
	}
	code := http.StatusOK
	if resp.Status != "ok" && resp.Status != "" {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
}

// writeClusterMetrics appends the wcc_cluster_* series to a /metrics
// response already written by the serving layer.
func (n *Node) writeClusterMetrics(w io.Writer) {
	st := n.Status()
	fmt.Fprintf(w, "# cluster plane (node %d of %d)\n", st.Node, st.Nodes)
	fmt.Fprintf(w, "wcc_cluster_node %d\n", st.Node)
	fmt.Fprintf(w, "wcc_cluster_nodes %d\n", st.Nodes)
	fmt.Fprintf(w, "wcc_cluster_generation %d\n", st.Gen)
	fmt.Fprintf(w, "wcc_cluster_converged %d\n", boolMetric(st.Converged))
	for _, p := range st.Peers {
		fmt.Fprintf(w, "wcc_cluster_peer_alive{node=\"%d\"} %d\n", p.Node, boolMetric(p.Alive))
		fmt.Fprintf(w, "wcc_cluster_peer_generation{node=\"%d\"} %d\n", p.Node, p.Gen)
	}
	fmt.Fprintf(w, "wcc_cluster_forwarded_samples_total %d\n", n.forwarded.Load())
	fmt.Fprintf(w, "wcc_cluster_forward_dropped_total %d\n", n.forwardDropped.Load())
	fmt.Fprintf(w, "wcc_cluster_forward_errors_total %d\n", n.forwardErrors.Load())
	fmt.Fprintf(w, "wcc_cluster_forward_received_total %d\n", n.forwardReceived.Load())
	fmt.Fprintf(w, "wcc_cluster_redirects_total %d\n", n.redirects.Load())
	fmt.Fprintf(w, "wcc_cluster_replications_total %d\n", n.replications.Load())
	fmt.Fprintf(w, "wcc_cluster_swaps_total %d\n", n.clusterSwaps.Load())
	fmt.Fprintf(w, "wcc_cluster_aborts_total %d\n", n.clusterAborts.Load())
	fmt.Fprintf(w, "wcc_cluster_heartbeats_total %d\n", n.heartbeats.Load())
	fmt.Fprintf(w, "wcc_cluster_heartbeat_failures_total %d\n", n.heartbeatFails.Load())
}

func boolMetric(b bool) int {
	if b {
		return 1
	}
	return 0
}
