// Package cluster scales the serving plane from one process to N: a
// node-membership and routing layer in which every wccserve node owns a
// stable slice of the splitmix64 keyspace, a replication control plane
// that pushes `.wcc` artifacts to every replica and converges on the
// artifact's CRC identity, and a rolling fleet-wide swap protocol —
// prepare on all nodes, then commit — so no node ever serves a model
// generation some peer cannot.
//
// The layer deliberately reuses the single-process building blocks one
// level up:
//
//   - routing hashes job IDs with shard.JobHash, the same splitmix64
//     finalizer the in-process shard router uses — one hash, two moduli
//     (node count, then shard count within the owning node);
//   - forwarded samples travel in the binary ingest framing of
//     internal/wire, the same frames POST /v1/ingest accepts;
//   - replicated artifacts are verified by artifact.Identity, the same
//     section-CRC fingerprint the hot-swap watcher uses for change
//     detection; identity equality across nodes IS the convergence check;
//   - the prepare phase runs server.ServableModel, the same compat gates
//     a local hot-swap runs, so an artifact that cannot serve this fleet
//     is refused cluster-wide before any node installs it.
//
// Membership is heartbeat-based: every node pings every peer on a fixed
// cadence, marks a peer dead after DeadAfter consecutive failures, and
// alive again on the first success. Pings carry the sender's generation
// and artifact identity, so liveness probes double as anti-entropy
// advertisements: a node that learns an alive peer serves a newer
// generation fetches that peer's artifact and installs it through the
// same prepare/commit path — this is how a restarted node converges back
// to the fleet's live CRC without operator action.
package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/drift"
	"repro/internal/events"
	"repro/internal/preprocess"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stream"
)

// MaxNodes bounds the cluster size; the alive set is kept in one atomic
// word so the per-sample routing read is a single load.
const MaxNodes = 64

// Config describes one node's place in the cluster.
type Config struct {
	// Self is this node's ID — its index into Peers.
	Self int
	// Peers lists every node's base URL ("http://host:port"), indexed by
	// node ID; Peers[Self] names this node. Length is the cluster size,
	// fixed for the life of the node (at most MaxNodes).
	Peers []string
	// Core is the node's local serving core. The cluster layer routes and
	// forwards around it but never reaches into its shards.
	Core *shard.Core
	// Dir is the artifact staging directory: replicated artifacts are
	// persisted here (one file per generation) before prepare loads them.
	Dir string
	// Window, Sensors and Scaler are the serving fleet's shape and
	// preprocessing statistics; the prepare phase gates replicated
	// artifacts against them exactly as a local hot-swap would.
	Window  int
	Sensors int
	Scaler  *preprocess.StandardScaler
	// HeartbeatEvery is the peer ping cadence (default 500ms).
	HeartbeatEvery time.Duration
	// DeadAfter is how many consecutive ping failures mark a peer dead
	// (default 3). The first successful ping marks it alive again.
	DeadAfter int
	// RPCTimeout bounds one control-plane round trip (default 5s). A
	// prepare held longer than this fails, which aborts the swap — the
	// torn-generation invariant prefers no new generation anywhere over a
	// partial one somewhere.
	RPCTimeout time.Duration
	// ForwardBuffer bounds each per-peer forwarding queue in samples
	// (default 4096). A full queue rejects the sample — bounded, visible
	// loss in the ingest accounting rather than unbounded memory.
	ForwardBuffer int
	// ForwardBatch caps how many samples one forwarded POST carries
	// (default 256).
	ForwardBatch int
	// Transport, when non-nil, replaces the HTTP transport for every
	// control-plane and forwarding request — the fault-injection seam the
	// in-process cluster tests use to kill, partition and stall nodes.
	Transport http.RoundTripper
	// Now, when non-nil, replaces the real clock for membership
	// bookkeeping; nil means time.Now.
	Now func() time.Time
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// stagedModel is a prepared-but-not-committed generation: decoded, gated,
// held ready. Commit installs it; abort drops it.
type stagedModel struct {
	gen      uint64
	identity string
	path     string
	cls      stream.Classifier
	drift    *drift.Calibration
	meta     artifact.Metadata
}

// Node is one cluster member. Build with New, wire its Monitor into a
// server.Server, AttachServer to get the cluster-aware HTTP handler, then
// Start. All methods are safe for concurrent use.
type Node struct {
	cfg   Config
	self  int
	peers []string
	core  *shard.Core
	// client carries every control-plane and forwarding request; its
	// transport is the fault-injection seam.
	client *http.Client
	logf   func(format string, args ...any)
	now    func() time.Time

	// aliveMask is the routing read: bit i set means node i is believed
	// alive. Owner loads it once per sample — no lock on the ingest path.
	aliveMask atomic.Uint64

	// mu guards the membership and swap state below. Nothing blocking —
	// no HTTP, no publish, no channel send — runs under it; handlers
	// snapshot under mu and do their I/O outside.
	mu        sync.Mutex
	alive     []bool
	failCount []int
	peerGen   []uint64
	peerIdent []string
	gen       uint64
	identity  string
	artPath   string // committed artifact file in cfg.Dir ("" before the first swap)
	staged    *stagedModel

	// distSem serialises swap orchestration (local DistributeFile and
	// anti-entropy catch-up): capacity 1, try-acquire, so a second swap
	// while one is in flight fails fast instead of interleaving phases.
	distSem chan struct{}

	srv        *server.Server
	handler    http.Handler
	forwarders []*forwarder // indexed by node ID; nil at self

	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	stopOnce  sync.Once

	// counters for the wcc_cluster_* metrics series.
	forwarded       atomic.Uint64 // samples handed to a peer forwarder
	forwardDropped  atomic.Uint64 // samples rejected by a full forward queue
	forwardErrors   atomic.Uint64 // samples lost to failed forwarded POSTs
	forwardReceived atomic.Uint64 // forwarded samples ingested for peers
	redirects       atomic.Uint64 // job reads 307-redirected to their owner
	replications    atomic.Uint64 // artifacts staged by replicate
	clusterSwaps    atomic.Uint64 // generations committed on this node
	clusterAborts   atomic.Uint64 // staged generations dropped
	heartbeats      atomic.Uint64 // pings sent
	heartbeatFails  atomic.Uint64 // pings failed
}

// New validates the configuration and builds the node. The node is
// passive until Start; its Monitor can be wired into a server.Server
// immediately.
func New(cfg Config) (*Node, error) {
	if cfg.Core == nil {
		return nil, errors.New("cluster: nil core")
	}
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: empty peer list")
	}
	if len(cfg.Peers) > MaxNodes {
		return nil, fmt.Errorf("cluster: %d nodes exceed the %d-node limit", len(cfg.Peers), MaxNodes)
	}
	if cfg.Self < 0 || cfg.Self >= len(cfg.Peers) {
		return nil, fmt.Errorf("cluster: self %d out of range for %d peers", cfg.Self, len(cfg.Peers))
	}
	if cfg.Dir == "" {
		return nil, errors.New("cluster: empty staging dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: creating staging dir: %w", err)
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 5 * time.Second
	}
	if cfg.ForwardBuffer <= 0 {
		cfg.ForwardBuffer = 4096
	}
	if cfg.ForwardBatch <= 0 {
		cfg.ForwardBatch = 256
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	n := &Node{
		cfg:        cfg,
		self:       cfg.Self,
		peers:      append([]string(nil), cfg.Peers...),
		core:       cfg.Core,
		client:     &http.Client{Transport: transport, Timeout: cfg.RPCTimeout},
		logf:       logf,
		now:        cfg.Now,
		alive:      make([]bool, len(cfg.Peers)),
		failCount:  make([]int, len(cfg.Peers)),
		peerGen:    make([]uint64, len(cfg.Peers)),
		peerIdent:  make([]string, len(cfg.Peers)),
		distSem:    make(chan struct{}, 1),
		stop:       make(chan struct{}),
		forwarders: make([]*forwarder, len(cfg.Peers)),
	}
	// A node starts optimistic: every peer is presumed alive until
	// DeadAfter heartbeats say otherwise, so boot-time routing matches the
	// steady state and the equivalence tests' keyspace split is stable
	// from the first sample.
	var mask uint64
	for i := range n.alive {
		n.alive[i] = true
		mask |= 1 << uint(i)
	}
	n.aliveMask.Store(mask)
	for i := range n.peers {
		if i == n.self {
			continue
		}
		n.forwarders[i] = newForwarder(n, i)
	}
	return n, nil
}

// Monitor returns the node's cluster-routed monitor: a server.Monitor
// (and server.Sharded) whose Ingest routes each sample by job ownership —
// locally owned jobs ingest into the node's own core, foreign jobs are
// forwarded to their owning peer. Everything else (ticks, reads, swaps,
// counters) is the local core untouched.
func (n *Node) Monitor() server.Monitor {
	return &routedMonitor{Core: n.core, n: n}
}

// routedMonitor wraps the local sharded core with ownership routing on
// the ingest path. Embedding keeps the full Monitor/Sharded surface —
// per-shard tick loops and shard-labelled metrics still work — while
// Ingest alone is intercepted.
type routedMonitor struct {
	*shard.Core
	n *Node
}

var _ server.Sharded = (*routedMonitor)(nil)

// Ingest routes one sample: into the local core when this node owns the
// job, onto the owner's forwarding queue otherwise. The forward path
// copies the values before enqueueing — the serving layer's pooled parse
// scratch is reused the moment the handler returns, and a forwarded
// sample outlives the handler.
func (r *routedMonitor) Ingest(jobID int, sample []float64) error {
	owner := r.n.Owner(jobID)
	if owner == r.n.self {
		return r.Core.Ingest(jobID, sample)
	}
	return r.n.forward(owner, jobID, sample)
}

// AttachServer wires the node to its serving layer and returns the
// cluster-aware HTTP handler: the server's routes plus the /cluster/v1
// control plane, an extended /healthz, appended wcc_cluster_* metrics,
// and 307 redirects for job reads this node does not own. Call it once,
// after server.New, before serving traffic.
func (n *Node) AttachServer(srv *server.Server) http.Handler {
	n.srv = srv
	n.handler = n.buildHandler(srv.Handler())
	return n.handler
}

// Handler returns the handler built by AttachServer (nil before it).
func (n *Node) Handler() http.Handler { return n.handler }

// bus returns the push-plane sink for cluster events: the attached
// server's bus, or nil (a valid no-op sink) before AttachServer.
func (n *Node) bus() *events.Bus {
	if n.srv == nil {
		return nil
	}
	return n.srv.Events()
}

// Start launches the heartbeat loop and the per-peer forwarders.
func (n *Node) Start() {
	n.startOnce.Do(func() {
		for _, f := range n.forwarders {
			if f == nil {
				continue
			}
			n.wg.Add(1)
			go f.run()
		}
		n.wg.Add(1)
		go n.heartbeatLoop()
	})
}

// Stop ends the heartbeat loop and the forwarders (each flushes its
// queue best-effort first) and waits for them.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// Self returns this node's ID.
func (n *Node) Self() int { return n.self }

// NumNodes returns the cluster size fixed at construction.
func (n *Node) NumNodes() int { return len(n.peers) }

// Gen returns the committed model generation (0 until the first
// cluster-wide swap commits here).
func (n *Node) Gen() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.gen
}

// Identity returns the committed artifact's CRC identity ("" until the
// first cluster-wide swap commits here). Identity equality across nodes
// is the replication-convergence check.
func (n *Node) Identity() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.identity
}

// Owner returns the node that owns the job: the splitmix64 hash of the
// job ID modulo the cluster size, probed forward past nodes this node
// currently believes dead. With every node alive the mapping is the same
// pure function on every node — hash mod N — which is what keeps
// client-side routing (wccload -cluster) and server-side routing in
// agreement without coordination.
func (n *Node) Owner(jobID int) int {
	mask := n.aliveMask.Load()
	size := len(n.peers)
	start := int(shard.JobHash(jobID) % uint64(size))
	for i := 0; i < size; i++ {
		node := (start + i) % size
		if mask&(1<<uint(node)) != 0 {
			return node
		}
	}
	// Every peer looks dead (a fully partitioned node): serve locally
	// rather than drop — the node is its own last resort.
	return n.self
}

// ForwardStats reports the forwarding-plane counters: samples enqueued
// for peers, samples rejected by a full queue, samples lost to failed
// forwarded POSTs, and forwarded samples this node ingested for peers.
// The loss-accounting tests pin that every accepted sample is either
// ingested somewhere or counted here — never silently gone.
func (n *Node) ForwardStats() (forwarded, dropped, errs, received uint64) {
	return n.forwarded.Load(), n.forwardDropped.Load(), n.forwardErrors.Load(), n.forwardReceived.Load()
}

// Alive snapshots the liveness view, indexed by node ID.
func (n *Node) Alive() []bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]bool(nil), n.alive...)
}

// PeerStatus is one row of the membership table /healthz and
// /cluster/v1/info report.
type PeerStatus struct {
	Node int    `json:"node"`
	URL  string `json:"url"`
	Self bool   `json:"self,omitempty"`
	// Alive is this node's liveness belief about the peer.
	Alive bool `json:"alive"`
	// Gen and Identity are the peer's last advertised generation and
	// artifact identity (zero values until its first heartbeat lands).
	Gen      uint64 `json:"gen"`
	Identity string `json:"identity,omitempty"`
}

// Status is the cluster block of the extended /healthz payload.
type Status struct {
	Node  int `json:"node"`
	Nodes int `json:"nodes"`
	// Gen and Identity are this node's committed generation and artifact
	// identity.
	Gen      uint64 `json:"gen"`
	Identity string `json:"identity,omitempty"`
	// Converged reports whether every alive peer advertises this node's
	// generation and identity — the fleet serving one model.
	Converged bool `json:"converged"`
	// StagedGen is the prepared-but-uncommitted generation held by this
	// node (0 when nothing is staged) — visible so operators and tests can
	// watch a rolling swap sit between prepare and commit.
	StagedGen uint64 `json:"staged_gen,omitempty"`
	// SwapInFlight reports a rolling swap currently orchestrated or
	// caught up by this node.
	SwapInFlight bool         `json:"swap_in_flight,omitempty"`
	Peers        []PeerStatus `json:"peers"`
}

// Status snapshots the node's membership and convergence view.
func (n *Node) Status() Status {
	swapBusy := len(n.distSem) > 0
	n.mu.Lock()
	defer n.mu.Unlock()
	st := Status{
		Node:         n.self,
		Nodes:        len(n.peers),
		Gen:          n.gen,
		Identity:     n.identity,
		Converged:    true,
		SwapInFlight: swapBusy,
		Peers:        make([]PeerStatus, len(n.peers)),
	}
	if n.staged != nil {
		st.StagedGen = n.staged.gen
	}
	for i, url := range n.peers {
		ps := PeerStatus{Node: i, URL: url, Alive: n.alive[i], Gen: n.peerGen[i], Identity: n.peerIdent[i]}
		if i == n.self {
			ps.Self = true
			ps.Gen = n.gen
			ps.Identity = n.identity
		}
		st.Peers[i] = ps
		if ps.Alive && (ps.Gen != n.gen || ps.Identity != n.identity) {
			st.Converged = false
		}
	}
	return st
}

// heartbeatLoop pings every peer on the configured cadence until Stop.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.heartbeat()
		}
	}
}

// heartbeat runs one ping round and then one anti-entropy check.
func (n *Node) heartbeat() {
	gen, ident := n.Gen(), n.Identity()
	for peer := range n.peers {
		if peer == n.self {
			continue
		}
		n.heartbeats.Add(1)
		ack, err := n.rpc(peer, pingPath, Frame{Type: MsgPing, Node: n.self, Gen: gen, Identity: ident})
		if err != nil {
			n.heartbeatFails.Add(1)
			n.noteFailure(peer, err)
			continue
		}
		n.notePeer(peer, ack.Gen, ack.Identity)
	}
	n.catchUp()
}

// noteFailure records one failed probe; DeadAfter consecutive failures
// flip the peer to dead (with a membership event).
func (n *Node) noteFailure(peer int, err error) {
	n.mu.Lock()
	n.failCount[peer]++
	died := n.alive[peer] && n.failCount[peer] >= n.cfg.DeadAfter
	if died {
		n.alive[peer] = false
		n.storeAliveMaskLocked()
	}
	n.mu.Unlock()
	if died {
		n.logf("cluster: node %d marked dead after %d failed probes (last: %v)", peer, n.cfg.DeadAfter, err)
		n.bus().Publish(events.Event{Type: events.TypeMembership, Node: events.Intp(peer), Healthy: events.Boolp(false), Error: err.Error()})
	}
}

// notePeer records one successful probe (or an inbound ping — hearing
// from a peer proves it alive as surely as reaching it), refreshing the
// peer's advertised generation and identity.
func (n *Node) notePeer(peer int, gen uint64, ident string) {
	if peer < 0 || peer >= len(n.peers) || peer == n.self {
		return
	}
	n.mu.Lock()
	n.failCount[peer] = 0
	revived := !n.alive[peer]
	if revived {
		n.alive[peer] = true
		n.storeAliveMaskLocked()
	}
	n.peerGen[peer] = gen
	n.peerIdent[peer] = ident
	n.mu.Unlock()
	if revived {
		n.logf("cluster: node %d alive again", peer)
		n.bus().Publish(events.Event{Type: events.TypeMembership, Node: events.Intp(peer), Healthy: events.Boolp(true)})
	}
}

// storeAliveMaskLocked refreshes the routing mask; callers hold mu.
func (n *Node) storeAliveMaskLocked() {
	var mask uint64
	for i, a := range n.alive {
		if a || i == n.self {
			mask |= 1 << uint(i)
		}
	}
	n.aliveMask.Store(mask)
}

// catchUp is the anti-entropy pull: when an alive peer advertises a newer
// generation than this node serves, fetch its artifact and install it
// through the same replicate → prepare → commit path a coordinated swap
// uses. This is how a restarted node converges back to the fleet's live
// artifact CRC.
func (n *Node) catchUp() {
	n.mu.Lock()
	best, bestGen := -1, n.gen
	for i := range n.peers {
		if i == n.self || !n.alive[i] {
			continue
		}
		if n.peerGen[i] > bestGen {
			best, bestGen = i, n.peerGen[i]
		}
	}
	n.mu.Unlock()
	if best < 0 {
		return
	}
	select {
	case n.distSem <- struct{}{}:
	default:
		return // a swap is in flight; next round will re-check
	}
	defer func() { <-n.distSem }()
	if err := n.pullArtifact(best); err != nil {
		n.logf("cluster: catch-up from node %d failed: %v", best, err)
	}
}
