package cluster_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/clustertest"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/shard"
)

// realFixture builds a scaler and a discriminating forest (the stamp
// models answer the same probabilities for every input, which would make
// an equivalence test vacuous).
func realFixture(t *testing.T, window, sensors int) (*preprocess.StandardScaler, *forest.Classifier) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	train := mat.New(50, window*sensors)
	for i := range train.Data {
		train.Data[i] = rng.NormFloat64()*20 + 40
	}
	var scaler preprocess.StandardScaler
	if _, err := scaler.FitTransform(train); err != nil {
		t.Fatal(err)
	}
	dim := preprocess.CovarianceDim(sensors)
	x := mat.New(300, dim)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.Intn(8)
	}
	f := forest.New(forest.Config{NumTrees: 20, Bootstrap: true, Seed: 4})
	if err := f.Fit(x, y, 8); err != nil {
		t.Fatal(err)
	}
	return &scaler, f
}

// postJob sends every sample of one job as a single NDJSON ingest request
// to the given node — one request per job keeps the job's sample order
// end-to-end, whichever node owns it.
func postJob(t *testing.T, url string, job int, samples [][]float64) (accepted, rejected int) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, vals := range samples {
		if err := enc.Encode(map[string]any{"job": job, "values": vals}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url+"/v1/ingest", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatalf("ingest job %d: %v", job, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest job %d: status %d: %s", job, resp.StatusCode, body)
	}
	var out struct {
		Accepted int `json:"accepted"`
		Rejected int `json:"rejected"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("ingest job %d: parsing response %q: %v", job, body, err)
	}
	return out.Accepted, out.Rejected
}

// fetchPrediction reads a job's prediction over HTTP from an arbitrary
// node, following the cluster's 307 redirect to the owner.
func fetchPrediction(t *testing.T, url string, job int) (class int, probs []float64) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/prediction", url, job))
	if err != nil {
		t.Fatalf("prediction job %d: %v", job, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prediction job %d: status %d: %s", job, resp.StatusCode, body)
	}
	var out struct {
		Class int       `json:"class"`
		Probs []float64 `json:"probs"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("prediction job %d: parsing %q: %v", job, body, err)
	}
	return out.Class, out.Probs
}

// probeJob hands out job IDs far above anything the tests ingest, so
// generation probes never collide with replay traffic.
var probeJob atomic.Int64

func init() { probeJob.Store(1 << 20) }

// stampServedBy reports which stamped generation a member's core is
// serving right now: feed a fresh job one full window, tick, and read the
// stamp out of the prediction. Goes through the core directly so it works
// on any member regardless of routing or liveness.
func stampServedBy(t *testing.T, m *clustertest.Member, window, sensors int) int {
	t.Helper()
	job := int(probeJob.Add(1))
	vals := make([]float64, sensors)
	for s := 0; s < window; s++ {
		if err := m.Core.Ingest(job, vals); err != nil {
			t.Fatalf("probe ingest on node %d: %v", m.ID, err)
		}
	}
	if _, err := m.Core.Tick(); err != nil {
		t.Fatalf("probe tick on node %d: %v", m.ID, err)
	}
	// EndJob reads the final prediction and evicts the probe job, so
	// repeated probing cannot bloat the registry (and slow every tick).
	pred, ok := m.Core.EndJob(job)
	if !ok {
		t.Fatalf("probe job %d on node %d has no prediction after a full window", job, m.ID)
	}
	return clustertest.StampOf(pred.Probs)
}

// TestClusterEquivalenceWithSingleCore is the tentpole invariant: a
// replay spread across a 3-node cluster — every job entering at a node
// chosen without regard to ownership, samples forwarded peer-to-peer, the
// owner classifying — ends bit-identical to the same replay through one
// in-process sharded monitor. Node routing must be a pure placement
// decision with zero numeric footprint.
func TestClusterEquivalenceWithSingleCore(t *testing.T) {
	const (
		window  = 6
		sensors = 3
		jobs    = 24
		perJob  = 10
	)
	scaler, model := realFixture(t, window, sensors)
	c := clustertest.Start(t, clustertest.Options{
		Nodes: 3, Window: window, Sensors: sensors,
		Scaler: scaler, Model: model,
	})

	rng := rand.New(rand.NewSource(23))
	replay := make([][][]float64, jobs)
	for j := range replay {
		replay[j] = make([][]float64, perJob)
		for s := range replay[j] {
			vals := make([]float64, sensors)
			for k := range vals {
				vals[k] = rng.NormFloat64()
			}
			replay[j][s] = vals
		}
	}

	total := 0
	for j, samples := range replay {
		acc, rej := postJob(t, c.URLs[j%3], j, samples)
		if rej != 0 || acc != perJob {
			t.Fatalf("job %d: accepted %d rejected %d, want %d/0", j, acc, rej, perJob)
		}
		total += acc
	}
	for i := 0; i < 3; i++ {
		if err := c.Member(i).Cluster.Flush(5 * time.Second); err != nil {
			t.Fatalf("flushing node %d: %v", i, err)
		}
	}
	ingested := func() uint64 {
		var sum uint64
		for i := 0; i < 3; i++ {
			sum += c.Member(i).Core.SamplesIngested()
		}
		return sum
	}
	if !clustertest.Settle(5*time.Second, func() bool { return ingested() == uint64(total) }) {
		t.Fatalf("cluster ingested %d of %d accepted samples", ingested(), total)
	}
	// Deterministic final scoring pass on every node (the servers' own
	// tick loops are also running; re-ticking a clean fleet is idempotent).
	for i := 0; i < 3; i++ {
		if _, err := c.Member(i).Core.Tick(); err != nil {
			t.Fatalf("final tick on node %d: %v", i, err)
		}
	}

	// The reference: one in-process sharded core, same replay, same order
	// within each job.
	ref, err := shard.New(shard.Config{
		Window: window, Sensors: sensors, Scaler: scaler, Model: model, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for j, samples := range replay {
		for _, vals := range samples {
			if err := ref.Ingest(j, vals); err != nil {
				t.Fatalf("reference ingest job %d: %v", j, err)
			}
		}
	}
	if _, err := ref.Tick(); err != nil {
		t.Fatal(err)
	}

	for j := range replay {
		want, ok := ref.Prediction(j)
		if !ok {
			t.Fatalf("reference has no prediction for job %d", j)
		}
		// Read through a node that usually does not own the job, so the
		// 307 redirect path is part of the invariant.
		class, probs := fetchPrediction(t, c.URLs[(j+1)%3], j)
		if class != want.Class {
			t.Errorf("job %d: cluster class %d, reference class %d", j, class, want.Class)
		}
		if len(probs) != len(want.Probs) {
			t.Fatalf("job %d: %d probs vs reference %d", j, len(probs), len(want.Probs))
		}
		for k := range probs {
			if probs[k] != want.Probs[k] {
				t.Errorf("job %d class %d: cluster prob %v != reference %v", j, k, probs[k], want.Probs[k])
			}
		}
	}

	// Forwarding accounting must balance exactly on the clean path.
	var forwarded, dropped, errs, received uint64
	for i := 0; i < 3; i++ {
		f, d, e, r := c.Member(i).Cluster.ForwardStats()
		forwarded += f
		dropped += d
		errs += e
		received += r
	}
	if dropped != 0 || errs != 0 {
		t.Errorf("clean replay dropped %d / errored %d forwarded samples", dropped, errs)
	}
	if forwarded != received {
		t.Errorf("forwarded %d samples but peers received %d", forwarded, received)
	}
}

// TestClusterKillNodeBoundedLoss kills a node mid-replay. The contract is
// not zero loss — it is bounded, *accounted* loss: every accepted sample
// is either ingested by some core or counted in the forwarding drop/error
// counters, and once the death is detected, traffic for the dead node's
// keyspace reroutes to the next alive node.
func TestClusterKillNodeBoundedLoss(t *testing.T) {
	const (
		window  = 6
		sensors = 3
		jobs    = 40
		perJob  = 6
	)
	c := clustertest.Start(t, clustertest.Options{Nodes: 3, Window: window, Sensors: sensors})

	samples := make([][]float64, perJob)
	for s := range samples {
		samples[s] = make([]float64, sensors)
	}
	accepted := 0
	for j := 0; j < jobs; j++ {
		if j == jobs/2 {
			c.Kill(2)
		}
		acc, _ := postJob(t, c.URLs[0], j, samples)
		accepted += acc
	}
	if err := c.Member(0).Cluster.Flush(5 * time.Second); err != nil {
		t.Fatalf("flushing node 0: %v", err)
	}

	if !clustertest.Settle(3*time.Second, func() bool { return !c.Member(0).Cluster.Alive()[2] }) {
		t.Fatal("node 0 never declared node 2 dead")
	}

	var cores uint64
	for i := 0; i < 3; i++ {
		cores += c.Member(i).Core.SamplesIngested() // the dead core stays readable
	}
	_, dropped, errs, _ := c.Member(0).Cluster.ForwardStats()
	if cores > uint64(accepted) {
		t.Errorf("cores hold %d samples but only %d were accepted", cores, accepted)
	}
	if cores+dropped+errs < uint64(accepted) {
		t.Errorf("unaccounted loss: %d accepted, %d ingested + %d dropped + %d errored",
			accepted, cores, dropped, errs)
	}
	if cores == uint64(accepted) && dropped == 0 && errs == 0 {
		t.Log("note: kill landed between forwarding windows; no samples were in flight")
	}

	// Rerouting: a job whose hash lands on the dead node must now resolve
	// to a live owner and classify there.
	dead := -1
	for j := jobs; j < jobs+64; j++ {
		if int(shard.JobHash(j)%3) == 2 {
			dead = j
			break
		}
	}
	if dead < 0 {
		t.Fatal("no job id hashing to node 2 in the probe range")
	}
	owner := c.Member(0).Cluster.Owner(dead)
	if owner == 2 {
		t.Fatalf("job %d still routed to the dead node", dead)
	}
	full := make([][]float64, window)
	for s := range full {
		full[s] = make([]float64, sensors)
	}
	if acc, rej := postJob(t, c.URLs[0], dead, full); rej != 0 || acc != window {
		t.Fatalf("rerouted job %d: accepted %d rejected %d", dead, acc, rej)
	}
	if err := c.Member(0).Cluster.Flush(5 * time.Second); err != nil {
		t.Fatalf("flushing node 0: %v", err)
	}
	if !clustertest.Settle(3*time.Second, func() bool {
		_, ok := c.Member(owner).Core.Prediction(dead)
		return ok
	}) {
		t.Fatalf("rerouted job %d never classified on node %d", dead, owner)
	}
}

// TestClusterRestartConverges restarts a killed node and requires it to
// rejoin and converge to the fleet's live artifact — same generation,
// same CRC identity, serving the same stamped model — purely through
// anti-entropy, with no operator action.
func TestClusterRestartConverges(t *testing.T) {
	const (
		window  = 6
		sensors = 3
	)
	c := clustertest.Start(t, clustertest.Options{Nodes: 3, Window: window, Sensors: sensors})
	dir := t.TempDir()
	art1 := clustertest.StampArtifact(t, dir, window, sensors, c.Opts.Scaler, 1)
	art2 := clustertest.StampArtifact(t, dir, window, sensors, c.Opts.Scaler, 2)

	if _, err := c.Member(0).Cluster.DistributeFile(art1); err != nil {
		t.Fatalf("distributing stamp 1: %v", err)
	}
	for i := 0; i < 3; i++ {
		if got := stampServedBy(t, c.Member(i), window, sensors); got != 1 {
			t.Fatalf("node %d serves stamp %d after first roll, want 1", i, got)
		}
	}

	c.Kill(2)
	if !clustertest.Settle(3*time.Second, func() bool { return !c.Member(0).Cluster.Alive()[2] }) {
		t.Fatal("node 0 never declared node 2 dead")
	}
	// The roll proceeds without the dead node.
	if _, err := c.Member(0).Cluster.DistributeFile(art2); err != nil {
		t.Fatalf("distributing stamp 2 with a dead node: %v", err)
	}
	if gen := c.Member(0).Cluster.Gen(); gen != 2 {
		t.Fatalf("coordinator at gen %d after second roll, want 2", gen)
	}

	c.Restart(2)
	m2 := c.Member(2)
	if got := stampServedBy(t, m2, window, sensors); got != 0 {
		t.Fatalf("restarted node serves stamp %d before converging, want boot model (0)", got)
	}
	wantIdent := c.Member(0).Cluster.Identity()
	if !clustertest.Settle(5*time.Second, func() bool {
		return m2.Cluster.Gen() == 2 && m2.Cluster.Identity() == wantIdent
	}) {
		t.Fatalf("restarted node stuck at gen %d identity %q, want gen 2 %q",
			m2.Cluster.Gen(), m2.Cluster.Identity(), wantIdent)
	}
	if got := stampServedBy(t, m2, window, sensors); got != 2 {
		t.Fatalf("restarted node serves stamp %d after converging, want 2", got)
	}
	if !clustertest.Settle(3*time.Second, func() bool { return c.Member(0).Cluster.Status().Converged }) {
		t.Fatal("coordinator never reported the cluster converged after the rejoin")
	}
}

// TestClusterStallMidSwapServesOldGeneration holds one replica's prepare
// mid-roll and pins the torn-generation invariant: while any node has not
// prepared, every node keeps serving the old generation — the staged one
// is visible in status but serves nothing.
func TestClusterStallMidSwapServesOldGeneration(t *testing.T) {
	const (
		window  = 6
		sensors = 3
	)
	c := clustertest.Start(t, clustertest.Options{
		Nodes: 3, Window: window, Sensors: sensors,
		RPCTimeout: 10 * time.Second, // longer than the hold, so the roll survives it
	})
	dir := t.TempDir()
	art1 := clustertest.StampArtifact(t, dir, window, sensors, c.Opts.Scaler, 1)
	art2 := clustertest.StampArtifact(t, dir, window, sensors, c.Opts.Scaler, 2)
	if _, err := c.Member(0).Cluster.DistributeFile(art1); err != nil {
		t.Fatalf("distributing stamp 1: %v", err)
	}

	release := c.Fault.Hold(strings.TrimPrefix(c.URLs[2], "http://") + "/cluster/v1/swap/prepare")
	defer release()
	done := make(chan error, 1)
	go func() { _, err := c.Member(0).Cluster.DistributeFile(art2); done <- err }()

	// Node 1 prepares gen 2 while node 2's prepare hangs...
	if !clustertest.Settle(5*time.Second, func() bool {
		return c.Member(1).Cluster.Status().StagedGen == 2
	}) {
		t.Fatal("node 1 never staged gen 2")
	}
	// A competing roll is refused while this one is in flight.
	if _, err := c.Member(0).Cluster.DistributeFile(art1); !errors.Is(err, cluster.ErrSwapInFlight) {
		t.Errorf("concurrent roll returned %v, want ErrSwapInFlight", err)
	}
	// ...and the cluster still serves gen 1 everywhere: staged ≠ serving.
	for i := 0; i < 3; i++ {
		if gen := c.Member(i).Cluster.Gen(); gen != 1 {
			t.Errorf("node %d at gen %d during the stall, want 1", i, gen)
		}
		if got := stampServedBy(t, c.Member(i), window, sensors); got != 1 {
			t.Errorf("node %d serves stamp %d during the stall, want 1", i, got)
		}
	}

	release()
	if err := <-done; err != nil {
		t.Fatalf("roll failed after the stall cleared: %v", err)
	}
	for i := 0; i < 3; i++ {
		if gen := c.Member(i).Cluster.Gen(); gen != 2 {
			t.Errorf("node %d at gen %d after the roll, want 2", i, gen)
		}
		if got := stampServedBy(t, c.Member(i), window, sensors); got != 2 {
			t.Errorf("node %d serves stamp %d after the roll, want 2", i, got)
		}
	}
}

// TestClusterStallTimeoutAborts is the other half of the stall story: if
// the stalled replica never answers, the roll aborts everywhere — staying
// on generation G on every node beats splitting the fleet across G and
// G+1 — and a later retry succeeds.
func TestClusterStallTimeoutAborts(t *testing.T) {
	const (
		window  = 6
		sensors = 3
	)
	c := clustertest.Start(t, clustertest.Options{
		Nodes: 3, Window: window, Sensors: sensors,
		RPCTimeout: 700 * time.Millisecond, // shorter than the hold: the prepare times out
	})
	dir := t.TempDir()
	art1 := clustertest.StampArtifact(t, dir, window, sensors, c.Opts.Scaler, 1)
	art2 := clustertest.StampArtifact(t, dir, window, sensors, c.Opts.Scaler, 2)
	if _, err := c.Member(0).Cluster.DistributeFile(art1); err != nil {
		t.Fatalf("distributing stamp 1: %v", err)
	}

	release := c.Fault.Hold(strings.TrimPrefix(c.URLs[2], "http://") + "/cluster/v1/swap/prepare")
	if _, err := c.Member(0).Cluster.DistributeFile(art2); err == nil {
		t.Fatal("roll succeeded although one replica never prepared")
	}
	for i := 0; i < 3; i++ {
		if gen := c.Member(i).Cluster.Gen(); gen != 1 {
			t.Errorf("node %d at gen %d after the aborted roll, want 1", i, gen)
		}
		if got := stampServedBy(t, c.Member(i), window, sensors); got != 1 {
			t.Errorf("node %d serves stamp %d after the aborted roll, want 1", i, got)
		}
	}
	if !clustertest.Settle(3*time.Second, func() bool {
		return c.Member(0).Cluster.Status().StagedGen == 0 && c.Member(1).Cluster.Status().StagedGen == 0
	}) {
		t.Fatal("staged generation lingered after the abort")
	}

	release()
	if _, err := c.Member(0).Cluster.DistributeFile(art2); err != nil {
		t.Fatalf("retry after the stall cleared failed: %v", err)
	}
	for i := 0; i < 3; i++ {
		if got := stampServedBy(t, c.Member(i), window, sensors); got != 2 {
			t.Errorf("node %d serves stamp %d after the retry, want 2", i, got)
		}
	}
}

// TestClusterRollingSwapsUnderChurn rolls through 20 generations with
// rotating coordinators, transient prepare stalls every fifth roll, and a
// per-node prober asserting the serving stamp only ever moves forward. No
// roll may leave any node behind or show a torn generation to a prober.
func TestClusterRollingSwapsUnderChurn(t *testing.T) {
	const (
		window  = 6
		sensors = 3
		rolls   = 20
	)
	c := clustertest.Start(t, clustertest.Options{Nodes: 3, Window: window, Sensors: sensors})
	dir := t.TempDir()
	arts := make([]string, rolls+1)
	for k := 1; k <= rolls; k++ {
		arts[k] = clustertest.StampArtifact(t, dir, window, sensors, c.Opts.Scaler, k)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			last := -1
			for {
				select {
				case <-done:
					return
				default:
				}
				got := stampServedBy(t, c.Member(i), window, sensors)
				if got < last {
					t.Errorf("node %d stamp went backwards: %d after %d", i, got, last)
					return
				}
				last = got
				time.Sleep(time.Millisecond)
			}
		}(i)
	}

	for k := 1; k <= rolls; k++ {
		if k%5 == 0 {
			release := c.Fault.Hold(strings.TrimPrefix(c.URLs[2], "http://") + "/cluster/v1/swap/prepare")
			time.AfterFunc(30*time.Millisecond, release)
		}
		coord := c.Member(k % 3).Cluster
		if _, err := coord.DistributeFile(arts[k]); err != nil {
			t.Fatalf("roll %d via node %d: %v", k, k%3, err)
		}
		for i := 0; i < 3; i++ {
			if gen := c.Member(i).Cluster.Gen(); gen != uint64(k) {
				t.Fatalf("after roll %d node %d is at gen %d", k, i, gen)
			}
		}
	}
	close(done)
	wg.Wait()

	ident := c.Member(0).Cluster.Identity()
	for i := 1; i < 3; i++ {
		if got := c.Member(i).Cluster.Identity(); got != ident {
			t.Errorf("node %d identity %q diverged from node 0's %q", i, got, ident)
		}
	}
}
