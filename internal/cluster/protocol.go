package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/wire"
)

// Control protocol: the binary frames cluster nodes exchange for
// membership (ping/ack), artifact replication, and the two-phase rolling
// swap (prepare/commit/abort + ack). Frames ride POST bodies between
// nodes; the layout reuses internal/wire's error-sticky primitives, so
// the decoder inherits the same hostile-input posture as the artifact and
// ingest codecs: every length prefix is bounds-checked before allocation,
// a truncated or corrupted frame produces a descriptive error, never a
// panic.
//
// Frame layout (little-endian):
//
//	magic    4 bytes  "WCCC"
//	version  u8       protocol version (1)
//	type     u8       message type (see MsgType)
//	node     i64      sender node ID
//	gen      u64      generation the message speaks about
//	identity string   artifact CRC identity (u64-len prefixed)
//	ok       bool     ack verdict (1 byte, 0 or 1)
//	errmsg   string   ack failure reason ("" on success)
//	artifact bytes    artifact payload (u64-len prefixed; replicate only)
//
// Every frame carries every field — the cost is a few bytes of zero-value
// prefixes on small messages, and in exchange the decoder is a single
// total function over all message types, which keeps the fuzz surface
// one function wide.

// protoMagic distinguishes control frames from everything else a port
// scanner might throw at the endpoint.
var protoMagic = [4]byte{'W', 'C', 'C', 'C'}

// ProtoVersion is the control protocol version this build speaks.
const ProtoVersion = 1

// MaxFrameArtifactBytes caps the artifact payload one replicate frame may
// carry; larger declared lengths are treated as corruption. Far above any
// real .wcc (the smoke models are ~100 KiB) and far below anything that
// could hurt the process.
const MaxFrameArtifactBytes = 1 << 27

// MsgType discriminates control frames.
type MsgType uint8

const (
	// MsgPing is the heartbeat: sender's ID, generation and artifact
	// identity, so liveness probes double as anti-entropy advertisements.
	MsgPing MsgType = 1
	// MsgPingAck answers a ping with the receiver's own state.
	MsgPingAck MsgType = 2
	// MsgReplicate pushes an artifact's raw bytes to a replica, which
	// persists it and answers MsgAck with the identity it computed — the
	// convergence check.
	MsgReplicate MsgType = 3
	// MsgPrepare asks a replica to stage the replicated artifact for the
	// given generation: decode it, run the serving-compatibility gates,
	// hold the model ready — and serve NOTHING new yet.
	MsgPrepare MsgType = 4
	// MsgCommit asks a replica to install its staged generation. Sent only
	// after every node acked prepare, so no node ever serves a generation
	// some peer cannot.
	MsgCommit MsgType = 5
	// MsgAbort drops a staged generation without installing it.
	MsgAbort MsgType = 6
	// MsgAck is the uniform response frame: OK or an error string, plus the
	// responder's identity/generation where relevant.
	MsgAck MsgType = 7
)

// String names the message type for diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgPing:
		return "ping"
	case MsgPingAck:
		return "ping-ack"
	case MsgReplicate:
		return "replicate"
	case MsgPrepare:
		return "prepare"
	case MsgCommit:
		return "commit"
	case MsgAbort:
		return "abort"
	case MsgAck:
		return "ack"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// Frame is one decoded control message. Unused fields are zero values.
type Frame struct {
	Type     MsgType
	Node     int    // sender node ID
	Gen      uint64 // generation the message speaks about
	Identity string // artifact CRC identity
	OK       bool   // ack verdict
	Err      string // ack failure reason
	Artifact []byte // replicate payload
}

// EncodeFrame serialises one control frame.
func EncodeFrame(w io.Writer, f Frame) error {
	if len(f.Artifact) > MaxFrameArtifactBytes {
		return fmt.Errorf("cluster: %d-byte artifact exceeds the %d-byte frame cap", len(f.Artifact), MaxFrameArtifactBytes)
	}
	ww := wire.NewWriter(w)
	for _, b := range protoMagic {
		ww.U8(b)
	}
	ww.U8(ProtoVersion)
	ww.U8(uint8(f.Type))
	ww.Int(f.Node)
	ww.U64(f.Gen)
	ww.String(f.Identity)
	ww.Bool(f.OK)
	ww.String(f.Err)
	ww.Bytes(f.Artifact)
	return ww.Err()
}

// AppendFrame encodes the frame into a fresh byte slice — the form the
// HTTP client posts.
func AppendFrame(f Frame) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFrame reads one control frame from hostile input. Errors are
// descriptive and sticky (first failure wins); the function never panics
// on truncation, wrong magic, or hostile length prefixes.
func DecodeFrame(r io.Reader) (Frame, error) {
	rr := wire.NewReader(r)
	var magic [4]byte
	for i := range magic {
		magic[i] = rr.U8()
	}
	if err := rr.Err(); err != nil {
		return Frame{}, fmt.Errorf("cluster: reading frame magic: %w", err)
	}
	if magic != protoMagic {
		return Frame{}, fmt.Errorf("cluster: bad frame magic %q", magic[:])
	}
	version := rr.U8()
	if err := rr.Err(); err == nil && version != ProtoVersion {
		return Frame{}, fmt.Errorf("cluster: protocol version %d not supported (this build speaks %d)", version, ProtoVersion)
	}
	f := Frame{
		Type:     MsgType(rr.U8()),
		Node:     rr.Int(),
		Gen:      rr.U64(),
		Identity: rr.String(),
		OK:       rr.Bool(),
		Err:      rr.String(),
	}
	f.Artifact = rr.Bytes()
	if err := rr.Err(); err != nil {
		return Frame{}, fmt.Errorf("cluster: decoding %s frame: %w", f.Type, err)
	}
	if len(f.Artifact) > MaxFrameArtifactBytes {
		return Frame{}, fmt.Errorf("cluster: %d-byte artifact exceeds the %d-byte frame cap", len(f.Artifact), MaxFrameArtifactBytes)
	}
	switch f.Type {
	case MsgPing, MsgPingAck, MsgReplicate, MsgPrepare, MsgCommit, MsgAbort, MsgAck:
	default:
		return Frame{}, fmt.Errorf("cluster: unknown message type %d", uint8(f.Type))
	}
	if f.Node < 0 {
		return Frame{}, errors.New("cluster: negative sender node ID")
	}
	return f, nil
}
