package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/artifact"
	"repro/internal/events"
	"repro/internal/server"
)

// Rolling fleet-wide swap: DistributeFile pushes one artifact through
// three phases across every alive node —
//
//	replicate  every node persists the artifact bytes and answers with
//	           the CRC identity it computed from its own copy; a mismatch
//	           anywhere fails the phase (corruption in transit or on disk
//	           is caught before any node decodes a byte of it);
//	prepare    every node decodes its copy, runs the same
//	           server.ServableModel compatibility gates a local hot-swap
//	           runs, and stages the model without serving it;
//	commit     only after EVERY node acked prepare does any node install;
//	           a prepare failure or timeout anywhere aborts everywhere.
//
// The invariant the phases exist for: no node ever serves a generation
// some peer has not proven it can serve. A node that dies mid-swap is
// detected by the membership layer and skipped; it converges through
// anti-entropy when it returns. A node that merely stalls fails its
// prepare RPC by timeout, which aborts the whole swap — the fleet
// prefers staying on generation G everywhere over splitting between G
// and G+1.

// Control-plane route paths, shared by handlers and clients.
const (
	pingPath       = "/cluster/v1/ping"
	replicatePath  = "/cluster/v1/replicate"
	preparePath    = "/cluster/v1/swap/prepare"
	commitPath     = "/cluster/v1/swap/commit"
	abortPath      = "/cluster/v1/swap/abort"
	peerIngestPath = "/cluster/v1/ingest"
	artifactPath   = "/cluster/v1/artifact"
	infoPath       = "/cluster/v1/info"
)

// frameContentType is the control-frame media type.
const frameContentType = "application/x-wcc-cluster"

// genHeader and identHeader carry a served artifact's generation and
// identity on GET /cluster/v1/artifact responses.
const (
	genHeader   = "X-WCC-Generation"
	identHeader = "X-WCC-Identity"
)

// ErrSwapInFlight reports a DistributeFile refused because another swap
// (local or anti-entropy) is mid-flight on this node.
var ErrSwapInFlight = errors.New("cluster: a swap is already in flight")

// DistributeFile runs one rolling fleet-wide swap of the artifact at
// path: replicate to every alive node, prepare on all, then commit on
// all. It returns the artifact's metadata on success, and is the
// function a server.WatchConfig.Distribute hook points at — the watcher
// detects the retrained artifact, the cluster installs it everywhere.
func (n *Node) DistributeFile(path string) (artifact.Metadata, error) {
	select {
	case n.distSem <- struct{}{}:
	default:
		return artifact.Metadata{}, ErrSwapInFlight
	}
	defer func() { <-n.distSem }()

	data, err := os.ReadFile(path)
	if err != nil {
		return artifact.Metadata{}, fmt.Errorf("cluster: reading artifact: %w", err)
	}
	return n.distribute(data)
}

// distribute is the three-phase orchestration over one artifact's bytes.
func (n *Node) distribute(data []byte) (artifact.Metadata, error) {
	n.mu.Lock()
	gen := n.gen + 1
	n.mu.Unlock()

	// Replicate to self first: the local copy's identity is the reference
	// every peer's copy must match.
	ident, err := n.applyReplicate(gen, "", data)
	if err != nil {
		return artifact.Metadata{}, fmt.Errorf("cluster: staging local copy: %w", err)
	}
	targets := n.aliveTargets()
	for _, peer := range targets {
		ack, err := n.rpc(peer, replicatePath, Frame{Type: MsgReplicate, Node: n.self, Gen: gen, Identity: ident, Artifact: data})
		if err != nil {
			return artifact.Metadata{}, fmt.Errorf("cluster: replicating gen %d to node %d: %w", gen, peer, err)
		}
		if ack.Identity != ident {
			return artifact.Metadata{}, fmt.Errorf("cluster: node %d persisted identity %q, want %q", peer, ack.Identity, ident)
		}
	}
	n.publishSwapPhase("replicated", gen)

	// Prepare on all — self included — before anything commits.
	meta, err := n.applyPrepare(gen, ident)
	if err != nil {
		n.abortAll(gen, targets)
		return artifact.Metadata{}, fmt.Errorf("cluster: preparing gen %d locally: %w", gen, err)
	}
	for _, peer := range targets {
		if _, err := n.rpc(peer, preparePath, Frame{Type: MsgPrepare, Node: n.self, Gen: gen, Identity: ident}); err != nil {
			n.abortAll(gen, targets)
			return artifact.Metadata{}, fmt.Errorf("cluster: preparing gen %d on node %d: %w", gen, peer, err)
		}
	}
	n.publishSwapPhase("prepared", gen)

	// Every node has proven it can serve gen: commit rolls through the
	// fleet. Peers first, coordinator last, so the coordinator's own
	// generation (the one the watcher and anti-entropy compare against)
	// only advances once the roll is complete. A peer that dies between
	// its prepare ack and its commit converges by anti-entropy on return.
	for _, peer := range targets {
		if _, err := n.rpc(peer, commitPath, Frame{Type: MsgCommit, Node: n.self, Gen: gen}); err != nil {
			n.logf("cluster: commit of gen %d on node %d failed (will converge by anti-entropy): %v", gen, peer, err)
		}
	}
	if err := n.applyCommit(gen); err != nil {
		return artifact.Metadata{}, fmt.Errorf("cluster: committing gen %d locally: %w", gen, err)
	}
	n.publishSwapPhase("committed", gen)
	return meta, nil
}

// aliveTargets snapshots the alive peers (excluding self) a swap must
// cover.
func (n *Node) aliveTargets() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []int
	for i := range n.peers {
		if i != n.self && n.alive[i] {
			out = append(out, i)
		}
	}
	return out
}

// abortAll drops the staged generation everywhere after a failed prepare
// phase, best-effort: an unreachable peer's stale staged model is
// harmless — commit for that generation will never be sent.
func (n *Node) abortAll(gen uint64, targets []int) {
	n.applyAbort(gen)
	for _, peer := range targets {
		if _, err := n.rpc(peer, abortPath, Frame{Type: MsgAbort, Node: n.self, Gen: gen}); err != nil {
			n.logf("cluster: aborting gen %d on node %d: %v", gen, peer, err)
		}
	}
	n.publishSwapPhase("aborted", gen)
}

// publishSwapPhase narrates one rolling-swap phase on the push plane.
func (n *Node) publishSwapPhase(phase string, gen uint64) {
	n.bus().Publish(events.Event{Type: events.TypeClusterSwap, Phase: phase, Node: events.Intp(n.self)})
	n.logf("cluster: gen %d %s", gen, phase)
}

// stagePath is the staging file for one generation, deterministic so
// replicate and prepare agree without passing paths over the wire.
func (n *Node) stagePath(gen uint64) string {
	return filepath.Join(n.cfg.Dir, fmt.Sprintf("gen-%08d.wcc", gen))
}

// applyReplicate persists one replicated artifact atomically (temp file +
// rename, the artifact.Save discipline, so a concurrent prepare never
// reads a torn file) and returns the identity computed from the written
// copy. A non-empty wantIdent that differs from the computed identity is
// a transit/disk corruption error.
func (n *Node) applyReplicate(gen uint64, wantIdent string, data []byte) (string, error) {
	path := n.stagePath(gen)
	tmp, err := os.CreateTemp(n.cfg.Dir, ".gen-*.tmp")
	if err != nil {
		return "", err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return "", err
	}
	ident, err := artifact.Identity(path)
	if err != nil {
		return "", fmt.Errorf("fingerprinting persisted artifact: %w", err)
	}
	if wantIdent != "" && ident != wantIdent {
		return ident, fmt.Errorf("persisted identity %q differs from coordinator's %q", ident, wantIdent)
	}
	n.replications.Add(1)
	return ident, nil
}

// applyPrepare decodes the staged artifact for gen, runs the serving
// compatibility gates, and holds the model ready without installing it.
func (n *Node) applyPrepare(gen uint64, wantIdent string) (artifact.Metadata, error) {
	path := n.stagePath(gen)
	ident, err := artifact.Identity(path)
	if err != nil {
		return artifact.Metadata{}, fmt.Errorf("no replicated artifact for gen %d: %w", gen, err)
	}
	if wantIdent != "" && ident != wantIdent {
		return artifact.Metadata{}, fmt.Errorf("staged identity %q differs from prepare's %q", ident, wantIdent)
	}
	a, err := artifact.Load(path)
	if err != nil {
		return artifact.Metadata{}, err
	}
	cls, err := server.ServableModel(a, n.cfg.Window, n.cfg.Sensors, n.cfg.Scaler)
	if err != nil {
		return artifact.Metadata{}, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if gen <= n.gen {
		return artifact.Metadata{}, fmt.Errorf("gen %d is not newer than committed gen %d", gen, n.gen)
	}
	n.staged = &stagedModel{gen: gen, identity: ident, path: path, cls: cls, drift: a.Drift, meta: a.Meta}
	return a.Meta, nil
}

// applyCommit installs the staged generation on the local core. The
// actual installation happens outside the node's state lock — the core's
// own swap lock orders it against ticks — and the generation bookkeeping
// flips after the install succeeds.
func (n *Node) applyCommit(gen uint64) error {
	n.mu.Lock()
	st := n.staged
	if st == nil || st.gen != gen {
		n.mu.Unlock()
		if st == nil {
			return fmt.Errorf("no staged model for gen %d (prepare first)", gen)
		}
		return fmt.Errorf("staged gen %d does not match commit gen %d", st.gen, gen)
	}
	n.staged = nil
	n.mu.Unlock()

	if err := n.core.SwapClassifierDrift(st.cls, st.drift); err != nil {
		return err
	}
	n.mu.Lock()
	n.gen = st.gen
	n.identity = st.identity
	n.artPath = st.path
	n.mu.Unlock()
	n.clusterSwaps.Add(1)
	return nil
}

// applyAbort drops the staged generation, if it matches.
func (n *Node) applyAbort(gen uint64) {
	n.mu.Lock()
	dropped := n.staged != nil && n.staged.gen == gen
	if dropped {
		n.staged = nil
	}
	n.mu.Unlock()
	if dropped {
		n.clusterAborts.Add(1)
	}
}

// pullArtifact is the anti-entropy fetch-and-install: GET the peer's
// committed artifact and install it locally through the same
// replicate/prepare/commit path a coordinated swap uses. Callers hold
// the distribute semaphore.
func (n *Node) pullArtifact(peer int) error {
	resp, err := n.client.Get(n.peers[peer] + artifactPath)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	gen, err := strconv.ParseUint(resp.Header.Get(genHeader), 10, 64)
	if err != nil {
		return fmt.Errorf("parsing %s header: %w", genHeader, err)
	}
	wantIdent := resp.Header.Get(identHeader)
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxFrameArtifactBytes+1))
	if err != nil {
		return err
	}
	if len(data) > MaxFrameArtifactBytes {
		return fmt.Errorf("artifact exceeds the %d-byte cap", MaxFrameArtifactBytes)
	}
	if n.Gen() >= gen {
		return nil // converged (or passed) while the fetch was in flight
	}
	ident, err := n.applyReplicate(gen, wantIdent, data)
	if err != nil {
		return err
	}
	if _, err := n.applyPrepare(gen, ident); err != nil {
		return err
	}
	if err := n.applyCommit(gen); err != nil {
		return err
	}
	n.logf("cluster: caught up to gen %d (identity %s) from node %d", gen, ident, peer)
	n.publishSwapPhase("caught-up", gen)
	return nil
}

// rpc posts one control frame to a peer and decodes the ack. A non-OK
// ack surfaces as an error carrying the peer's reason.
func (n *Node) rpc(peer int, path string, f Frame) (Frame, error) {
	body, err := AppendFrame(f)
	if err != nil {
		return Frame{}, err
	}
	resp, err := n.client.Post(n.peers[peer]+path, frameContentType, bytes.NewReader(body))
	if err != nil {
		return Frame{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return Frame{}, fmt.Errorf("node %d: HTTP %d: %s", peer, resp.StatusCode, bytes.TrimSpace(msg))
	}
	ack, err := DecodeFrame(io.LimitReader(resp.Body, MaxFrameArtifactBytes+1024))
	if err != nil {
		return Frame{}, fmt.Errorf("node %d: %w", peer, err)
	}
	if !ack.OK {
		return ack, fmt.Errorf("node %d refused %s: %s", peer, f.Type, ack.Err)
	}
	return ack, nil
}
