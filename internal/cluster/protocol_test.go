package cluster

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// sampleFrames covers every message type with every field population the
// protocol uses.
func sampleFrames() []Frame {
	return []Frame{
		{Type: MsgPing, Node: 0, Gen: 0},
		{Type: MsgPing, Node: 2, Gen: 7, Identity: "v3|meta:120:a1b2c3d4"},
		{Type: MsgPingAck, Node: 1, Gen: 7, Identity: "v3|meta:120:a1b2c3d4", OK: true},
		{Type: MsgReplicate, Node: 0, Gen: 8, Identity: "v3|meta:9:00000001", Artifact: []byte{0xde, 0xad, 0xbe, 0xef}},
		{Type: MsgPrepare, Node: 0, Gen: 8, Identity: "v3|meta:9:00000001"},
		{Type: MsgCommit, Node: 0, Gen: 8},
		{Type: MsgAbort, Node: 0, Gen: 8},
		{Type: MsgAck, Node: 1, Gen: 8, OK: true, Identity: "v3|meta:9:00000001"},
		{Type: MsgAck, Node: 1, Gen: 8, OK: false, Err: "gen 8 is not newer than committed gen 9"},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		body, err := AppendFrame(f)
		if err != nil {
			t.Fatalf("encoding %v: %v", f.Type, err)
		}
		got, err := DecodeFrame(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("decoding %v: %v", f.Type, err)
		}
		if got.Type != f.Type || got.Node != f.Node || got.Gen != f.Gen ||
			got.Identity != f.Identity || got.OK != f.OK || got.Err != f.Err ||
			!bytes.Equal(got.Artifact, f.Artifact) {
			t.Errorf("%v round-trip mismatch:\n got %+v\nwant %+v", f.Type, got, f)
		}
	}
}

// TestDecodeFrameTruncation cuts a valid frame at every byte boundary:
// each prefix must produce a descriptive error — never a panic, never a
// silently-zero frame.
func TestDecodeFrameTruncation(t *testing.T) {
	full, err := AppendFrame(Frame{Type: MsgReplicate, Node: 1, Gen: 3, Identity: "v3|m:1:ff", Artifact: []byte{1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at byte %d/%d decoded without error", cut, len(full))
		}
	}
	if _, err := DecodeFrame(bytes.NewReader(full)); err != nil {
		t.Fatalf("full frame failed to decode: %v", err)
	}
}

func TestDecodeFrameHostileInputs(t *testing.T) {
	valid, err := AppendFrame(Frame{Type: MsgPing, Node: 0, Gen: 1})
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(mut func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return mut(b)
	}

	cases := []struct {
		name    string
		body    []byte
		wantSub string
	}{
		{
			name:    "empty input",
			body:    nil,
			wantSub: "frame magic",
		},
		{
			name:    "wrong magic",
			body:    mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
			wantSub: "bad frame magic",
		},
		{
			name:    "future protocol version",
			body:    mutate(func(b []byte) []byte { b[4] = ProtoVersion + 1; return b }),
			wantSub: "not supported",
		},
		{
			name:    "unknown message type",
			body:    mutate(func(b []byte) []byte { b[5] = 200; return b }),
			wantSub: "unknown message type",
		},
		{
			name: "negative sender node",
			body: mutate(func(b []byte) []byte {
				binary.LittleEndian.PutUint64(b[6:], ^uint64(0)) // node = -1
				return b
			}),
			wantSub: "negative sender",
		},
		{
			name: "hostile identity length",
			body: mutate(func(b []byte) []byte {
				// The identity length prefix sits after magic+ver+type+node+gen.
				binary.LittleEndian.PutUint64(b[22:], 1<<40)
				return b
			}),
			wantSub: "sanity limit",
		},
		{
			name: "corrupt bool",
			body: mutate(func(b []byte) []byte {
				b[30] = 7 // the OK byte (after empty identity)
				return b
			}),
			wantSub: "corrupt bool",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeFrame(bytes.NewReader(tc.body))
			if err == nil {
				t.Fatal("hostile input decoded without error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestDecodeFrameArtifactCap pins that a declared artifact length beyond
// the frame cap is rejected as corruption rather than honoured.
func TestDecodeFrameArtifactCap(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeFrame(&buf, Frame{Type: MsgReplicate, Node: 0, Gen: 1}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// The artifact length prefix is the final 8 bytes of a payload-less frame.
	binary.LittleEndian.PutUint64(b[len(b)-8:], uint64(MaxFrameArtifactBytes)+1)
	if _, err := DecodeFrame(bytes.NewReader(b)); err == nil {
		t.Fatal("oversized artifact length decoded without error")
	}
}

// TestEncodeFrameRefusesOversizedArtifact pins the producer-side cap.
func TestEncodeFrameRefusesOversizedArtifact(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeFrame(&buf, Frame{Type: MsgReplicate, Artifact: make([]byte, MaxFrameArtifactBytes+1)})
	if err == nil {
		t.Fatal("oversized artifact encoded without error")
	}
}

// FuzzDecodeFrame throws arbitrary bytes at the control-protocol decoder:
// it must never panic, and on success a re-encode of the decoded frame
// must decode to the same frame (the codec is self-consistent).
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range sampleFrames() {
		body, err := AppendFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte("WCCC"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		body, err := AppendFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		again, err := DecodeFrame(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if again.Type != fr.Type || again.Node != fr.Node || again.Gen != fr.Gen ||
			again.Identity != fr.Identity || again.OK != fr.OK || again.Err != fr.Err ||
			!bytes.Equal(again.Artifact, fr.Artifact) {
			t.Fatalf("re-decode mismatch:\n got %+v\nwant %+v", again, fr)
		}
	})
}
