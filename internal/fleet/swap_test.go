package fleet

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/stream"
)

// swapFixture builds a scaler plus two independently trained forests so
// their predictions on the same window differ with overwhelming probability.
func swapFixture(t *testing.T) (*preprocess.StandardScaler, *forest.Classifier, *forest.Classifier) {
	t.Helper()
	scaler, modelA := fixture(t)

	rng := rand.New(rand.NewSource(99))
	dim := preprocess.CovarianceDim(testSensors)
	x := mat.New(200, dim)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.Intn(4)
	}
	modelB := forest.New(forest.Config{NumTrees: 9, MaxDepth: 5, Bootstrap: true, Seed: 77})
	if err := modelB.Fit(x, y, 4); err != nil {
		t.Fatal(err)
	}
	return scaler, modelA, modelB
}

// TestSwapClassifierBitIdenticalAcrossSwap is the hot-swap acceptance
// invariant: under concurrent ingest and continuous ticking, predictions
// published before the swap are bit-identical to per-job stream.Monitor
// baselines on the old model, and predictions after the swap to baselines on
// the new model.
func TestSwapClassifierBitIdenticalAcrossSwap(t *testing.T) {
	scaler, modelA, modelB := swapFixture(t)
	const jobs = 48
	const phase1 = testWindow + 2 // full window plus wraparound
	const phase2 = 5

	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: modelA, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Continuous background ticker across both phases and the swap itself.
	stop := make(chan struct{})
	tickErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				tickErr <- nil
				return
			default:
				if _, err := m.Tick(); err != nil {
					tickErr <- err
					return
				}
				runtime.Gosched()
			}
		}
	}()

	ingest := func(from, to int) {
		var wg sync.WaitGroup
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				samples := jobSamples(j, to)
				for _, s := range samples[from:] {
					if err := m.Ingest(j, s); err != nil {
						t.Error(err)
						return
					}
				}
			}(j)
		}
		wg.Wait()
	}

	// Phase 1: ingest on model A, settle, check against A baselines.
	ingest(0, phase1)
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < jobs; j++ {
		got, ok := m.Prediction(j)
		if !ok {
			t.Fatalf("job %d: no pre-swap prediction", j)
		}
		assertSamePrediction(t, j, got, baseline(t, scaler, modelA, jobSamples(j, phase1)))
	}

	// Swap while the background ticker is still running.
	if err := m.SwapClassifier(modelB); err != nil {
		t.Fatal(err)
	}
	if n := m.Swaps(); n != 1 {
		t.Fatalf("swap count %d, want 1", n)
	}

	// Phase 2: further ingest lands on model B.
	ingest(phase1, phase1+phase2)
	close(stop)
	if err := <-tickErr; err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < jobs; j++ {
		got, ok := m.Prediction(j)
		if !ok {
			t.Fatalf("job %d: no post-swap prediction", j)
		}
		assertSamePrediction(t, j, got, baseline(t, scaler, modelB, jobSamples(j, phase1+phase2)))
	}
}

// TestSwapNeverTearsATick hammers SwapClassifier from a background goroutine
// while the main loop keeps ingesting fresh jobs and ticking. Whichever
// model a tick lands on, every published prediction must be bit-identical to
// the serial baseline of model A or of model B — a torn tick (half old
// model, half new) or a torn model install would match neither.
func TestSwapNeverTearsATick(t *testing.T) {
	scaler, modelA, modelB := swapFixture(t)
	const jobs = 16
	const rounds = 80

	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: modelA})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		models := []stream.Classifier{modelB, modelA}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if err := m.SwapClassifier(models[i%2]); err != nil {
					t.Error(err)
					return
				}
				runtime.Gosched()
			}
		}
	}()

	matches := func(got, want *stream.Prediction) bool {
		if got.Class != want.Class || got.Probability != want.Probability || len(got.Probs) != len(want.Probs) {
			return false
		}
		for c := range want.Probs {
			if got.Probs[c] != want.Probs[c] {
				return false
			}
		}
		return true
	}

	for r := 0; r < rounds; r++ {
		// Fresh job IDs each round, so every window is built deterministically
		// from scratch and classified by exactly one tick.
		for k := 0; k < jobs; k++ {
			j := r*jobs + k
			for _, s := range jobSamples(j, testWindow) {
				if err := m.Ingest(j, s); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := m.Tick(); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < jobs; k++ {
			j := r*jobs + k
			got, ok := m.Prediction(j)
			if !ok {
				t.Fatalf("round %d job %d: no prediction after tick", r, j)
			}
			samples := jobSamples(j, testWindow)
			if !matches(got, baseline(t, scaler, modelA, samples)) &&
				!matches(got, baseline(t, scaler, modelB, samples)) {
				t.Fatalf("round %d job %d: prediction matches neither baseline (torn swap?)", r, j)
			}
		}
	}
	close(stop)
	swapper.Wait()
	if m.Swaps() == 0 {
		t.Fatal("swapper never ran")
	}
}

func TestSwapValidationAndFallback(t *testing.T) {
	scaler, modelA, modelB := swapFixture(t)
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: modelA})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SwapClassifier(nil); err == nil {
		t.Fatal("nil swap should fail")
	}
	if m.Swaps() != 0 {
		t.Fatal("failed swap counted")
	}

	// Swapping to a model without the batched fast path downgrades to the
	// multi-row PredictProba fallback — and still matches the baseline.
	if err := m.SwapClassifier(unbatched{modelB}); err != nil {
		t.Fatal(err)
	}
	samples := jobSamples(3, testWindow)
	for _, s := range samples {
		if err := m.Ingest(3, s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Prediction(3)
	if !ok {
		t.Fatal("missing prediction")
	}
	assertSamePrediction(t, 3, got, baseline(t, scaler, modelB, samples))

	// And swapping back restores the batched path.
	if err := m.SwapClassifier(modelA); err != nil {
		t.Fatal(err)
	}
	if m.Swaps() != 2 {
		t.Fatalf("swap count %d, want 2", m.Swaps())
	}
}
