package fleet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/drift"
	"repro/internal/mat"
)

// fitTestCalibration builds a calibration whose threshold comes from the
// fixture model's probabilities on in-distribution covariance rows and
// whose reference histograms come from the jobSamples distribution.
func fitTestCalibration(t *testing.T, model interface {
	PredictProbaBatch(x *mat.Matrix) (*mat.Matrix, error)
}) *drift.Calibration {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	// CovarianceDim(3) = 6: the same space the model was fitted on.
	trainFeats := mat.New(400, 6)
	for i := range trainFeats.Data {
		trainFeats.Data[i] = rng.NormFloat64()
	}
	heldOut := mat.New(200, 6)
	for i := range heldOut.Data {
		heldOut.Data[i] = rng.NormFloat64()
	}
	probs, err := model.PredictProbaBatch(heldOut)
	if err != nil {
		t.Fatal(err)
	}
	// Reference over the raw sensor distribution jobSamples draws from
	// (N(4, 2) per sensor).
	ref := mat.New(4000, testSensors)
	for i := range ref.Data {
		ref.Data[i] = rng.NormFloat64()*2 + 4
	}
	cal, err := drift.Fit(drift.FitInput{
		Probs: probs, TrainFeatures: trainFeats, HeldOutFeatures: heldOut, RawSamples: ref,
	}, drift.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

// TestDriftEquivalenceBitIdentical pins the tentpole invariant: a
// drift-enabled monitor and a drift-disabled monitor fed the same replay
// publish bit-identical Class/Probability/Probs for every job; drift only
// adds the Open annotation.
func TestDriftEquivalenceBitIdentical(t *testing.T) {
	scaler, model := fixture(t)
	cal := fitTestCalibration(t, model)

	plain, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	scored, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model, Drift: cal})
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 48
	for k := 0; k < jobs; k++ {
		for _, s := range jobSamples(k, testWindow+3) {
			if err := plain.Ingest(k, s); err != nil {
				t.Fatal(err)
			}
			if err := scored.Ingest(k, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := plain.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, err := scored.Tick(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < jobs; k++ {
		want, ok := plain.Prediction(k)
		if !ok {
			t.Fatalf("job %d: no baseline prediction", k)
		}
		got, ok := scored.Prediction(k)
		if !ok {
			t.Fatalf("job %d: no drift-enabled prediction", k)
		}
		assertSamePrediction(t, k, got, want)
		if want.Open != nil {
			t.Fatalf("job %d: drift-disabled prediction carries an Open annotation", k)
		}
		if got.Open == nil {
			t.Fatalf("job %d: drift-enabled prediction lacks the Open annotation", k)
		}
		// The annotation must agree with re-scoring the published probs
		// (the feature distance is taken from the annotation itself — the
		// embedding row is internal to the tick).
		sc := drift.ScoreProbs(got.Probs, cal.Threshold.Temperature)
		sc.FeatDist = got.Open.FeatDist
		if got.Open.Margin != sc.Margin || got.Open.Energy != sc.Energy ||
			got.Open.Rejected != cal.Threshold.Reject(sc) {
			t.Fatalf("job %d: annotation %+v disagrees with re-scored %+v", k, got.Open, sc)
		}
		if cal.Feat == nil || got.Open.FeatDist <= 0 {
			t.Fatalf("job %d: feature gate inactive (dist %v)", k, got.Open.FeatDist)
		}
	}

	st := scored.DriftStats()
	if !st.Enabled {
		t.Fatal("drift stats disabled on a drift-enabled monitor")
	}
	if want := uint64(jobs * (testWindow + 3)); st.Samples != want {
		t.Fatalf("drift stats binned %d samples, want %d", st.Samples, want)
	}
	if len(st.SensorPSI) != testSensors {
		t.Fatalf("PSI over %d sensors, want %d", len(st.SensorPSI), testSensors)
	}
	if plainStats := plain.DriftStats(); plainStats.Enabled {
		t.Fatal("drift stats enabled on a plain monitor")
	}
}

// TestDriftUnknownCounting feeds windows whose covariance structure is far
// outside the threshold's calibration and checks the unknown counter moves.
func TestDriftUnknownCounting(t *testing.T) {
	scaler, model := fixture(t)
	cal := fitTestCalibration(t, model)
	// A maximally strict threshold: everything is rejected. This isolates
	// the counting path from the model's actual score distribution.
	cal.Threshold.MinConf = 2
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model, Drift: cal})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		for _, s := range jobSamples(k, testWindow) {
			if err := m.Ingest(k, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if m.Unknowns() != 5 {
		t.Fatalf("unknowns = %d, want 5", m.Unknowns())
	}
	for k := 0; k < 5; k++ {
		pred, ok := m.Prediction(k)
		if !ok || pred.Open == nil || !pred.Open.Rejected {
			t.Fatalf("job %d not flagged unknown: %+v", k, pred)
		}
	}
}

// TestIngestRejectsNonFinite pins the sample sanity gate: NaN, ±Inf and
// absurd magnitudes are refused (without registering the job) because they
// would permanently poison the incremental covariance sums.
func TestIngestRejectsNonFinite(t *testing.T) {
	scaler, model := fixture(t)
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e13, -1e13} {
		s := []float64{1, bad, 3}
		if err := m.Ingest(7, s); err == nil {
			t.Fatalf("sample with %v accepted", bad)
		}
	}
	if m.NumJobs() != 0 {
		t.Fatalf("invalid samples registered %d jobs", m.NumJobs())
	}
	// A job already streaming keeps its state when one sample is refused.
	good := jobSamples(1, testWindow)
	for _, s := range good {
		if err := m.Ingest(1, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Ingest(1, []float64{1, math.NaN(), 3}); err == nil {
		t.Fatal("NaN accepted mid-stream")
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Prediction(1); !ok {
		t.Fatal("job lost its window after a rejected sample")
	}
}

// TestSwapClassifierDriftCoherence pins the hot-swap contract: the
// calibration travels with its model (verdicts after a swap use the NEW
// thresholds), the accumulated histograms reset for the new generation,
// and a nil calibration disables detection.
func TestSwapClassifierDriftCoherence(t *testing.T) {
	scaler, model := fixture(t)
	cal := fitTestCalibration(t, model)
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model, Drift: cal})
	if err != nil {
		t.Fatal(err)
	}
	feed := func() {
		t.Helper()
		for k := 0; k < 6; k++ {
			for _, s := range jobSamples(k, testWindow) {
				if err := m.Ingest(k, s); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	feed()
	if st := m.DriftStats(); st.Samples == 0 {
		t.Fatal("no drift samples before the swap")
	}

	// Swap in the same model with a reject-everything calibration: the
	// new thresholds must govern immediately and the histograms restart.
	strict := fitTestCalibration(t, model)
	strict.Threshold.MinConf = 2
	if err := m.SwapClassifierDrift(model, strict); err != nil {
		t.Fatal(err)
	}
	if st := m.DriftStats(); !st.Enabled || st.Samples != 0 {
		t.Fatalf("histograms did not reset on drift swap: %+v", st)
	}
	before := m.Unknowns()
	feed()
	if got := m.Unknowns() - before; got != 6 {
		t.Fatalf("new thresholds rejected %d of 6 classifications", got)
	}
	for k := 0; k < 6; k++ {
		pred, _ := m.Prediction(k)
		if pred.Open == nil || !pred.Open.Rejected {
			t.Fatalf("job %d not scored by the swapped-in calibration", k)
		}
	}

	// A nil calibration disables detection without disturbing serving.
	if err := m.SwapClassifierDrift(model, nil); err != nil {
		t.Fatal(err)
	}
	if m.DriftEnabled() {
		t.Fatal("drift still enabled after swapping a nil calibration")
	}
	feed()
	pred, ok := m.Prediction(0)
	if !ok || pred.Open != nil {
		t.Fatalf("prediction after disabling drift: %+v (ok %v)", pred, ok)
	}

	// SwapClassifier alone leaves the calibration untouched.
	if err := m.SwapClassifierDrift(model, cal); err != nil {
		t.Fatal(err)
	}
	if err := m.SwapClassifier(model); err != nil {
		t.Fatal(err)
	}
	if !m.DriftEnabled() {
		t.Fatal("model-only swap dropped the calibration")
	}
}

// TestDriftConfigValidation pins construction-time checks.
func TestDriftConfigValidation(t *testing.T) {
	scaler, model := fixture(t)
	if _, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model,
		Drift: &drift.Calibration{}}); err == nil {
		t.Fatal("calibration without a reference accepted")
	}
	cal := fitTestCalibration(t, model)
	bad := &drift.Calibration{Threshold: cal.Threshold, Ref: cal.Ref}
	bad.Ref = &drift.Reference{Bins: cal.Ref.Bins, Edges: cal.Ref.Edges[:2], Props: cal.Ref.Props[:2]}
	if _, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model,
		Drift: bad}); err == nil {
		t.Fatal("sensor-count mismatch accepted")
	}
	// Feature statistics of the wrong width would index out of the
	// embedding row on the first scored tick — construction must refuse,
	// and so must the swap path (a crafted artifact may arrive there too).
	short := fitTestCalibration(t, model)
	short.Feat.Means = short.Feat.Means[:3]
	short.Feat.Stds = short.Feat.Stds[:3]
	if _, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model,
		Drift: short}); err == nil {
		t.Fatal("feature-width mismatch accepted at construction")
	}
	good, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model, Drift: cal})
	if err != nil {
		t.Fatal(err)
	}
	if err := good.SwapClassifierDrift(model, short); err == nil {
		t.Fatal("feature-width mismatch accepted at swap")
	}
	if !good.DriftEnabled() {
		t.Fatal("failed swap disturbed the live calibration")
	}
}
