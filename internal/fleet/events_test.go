package fleet

import (
	"testing"

	"repro/internal/events"
	"repro/internal/trace"
)

// drainEvents empties everything currently buffered on the subscription
// without blocking.
func drainEvents(sub *events.Subscription) []events.Event {
	var out []events.Event
	for {
		select {
		case e := <-sub.Events():
			out = append(out, e)
		default:
			return out
		}
	}
}

// TestEventsEquivalenceBitIdentical pins the tentpole invariant of the
// observability plane: a monitor with an event bus and a trace recorder
// attached publishes bit-identical Class/Probability/Probs to one without,
// for every job, across multiple ticks and window wraparound. Events and
// spans describe serving; they never participate in it.
func TestEventsEquivalenceBitIdentical(t *testing.T) {
	scaler, model := fixture(t)
	const jobs = 40
	const perJob = testWindow*2 + 3 // past wraparound

	plain, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	bus := events.NewBus()
	sub := bus.Subscribe(events.SubOptions{Buffer: 4096})
	defer sub.Close()
	observed.SetEventSink(bus)
	rec := trace.NewRecorder()
	observed.SetTraceRecorder(rec)

	// Interleave ticks mid-stream on both sides so write-back runs against
	// partially filled and already-classified jobs alike.
	for round := 0; round < 3; round++ {
		for k := 0; k < jobs; k++ {
			samples := jobSamples(k, perJob)
			lo, hi := round*perJob/3, (round+1)*perJob/3
			for _, s := range samples[lo:hi] {
				if err := plain.Ingest(k, s); err != nil {
					t.Fatal(err)
				}
				if err := observed.Ingest(k, s); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := plain.Tick(); err != nil {
			t.Fatal(err)
		}
		if _, err := observed.Tick(); err != nil {
			t.Fatal(err)
		}
	}

	for k := 0; k < jobs; k++ {
		want, ok := plain.Prediction(k)
		if !ok {
			t.Fatalf("job %d: no plain prediction", k)
		}
		got, ok := observed.Prediction(k)
		if !ok {
			t.Fatalf("job %d: no observed prediction", k)
		}
		assertSamePrediction(t, k, got, want)
	}

	// The recorder saw the serving stages: one observation per non-empty
	// tick for collect/classify/write-back, none for the HTTP-side stages
	// this package never runs.
	snap := rec.Snapshot()
	for _, st := range []trace.Stage{trace.StageCollect, trace.StageClassify, trace.StageWriteBack} {
		if snap.Stages[st].Count == 0 {
			t.Fatalf("stage %s recorded no spans", st)
		}
	}
	if n := snap.Stages[trace.StageParse].Count; n != 0 {
		t.Fatalf("parse stage recorded %d spans with no HTTP layer", n)
	}
	if len(snap.Spans) == 0 {
		t.Fatal("span ring is empty after three observed ticks")
	}

	// And events flowed: at least one prediction event per job (the first
	// classification is always a transition).
	evs := drainEvents(sub)
	perJobCount := make(map[int]int)
	for _, e := range evs {
		if e.Type != events.TypePrediction {
			t.Fatalf("unexpected event type %q with no swaps or drift", e.Type)
		}
		perJobCount[*e.Job]++
	}
	if len(perJobCount) != jobs {
		t.Fatalf("prediction events covered %d jobs, want %d", len(perJobCount), jobs)
	}
}

// TestEventsTransitionOnly pins the emission policy: the first
// classification emits (PrevClass absent), a re-score that keeps the class
// emits nothing, and a no-op tick emits nothing — the feed carries
// transitions, not steady state.
func TestEventsTransitionOnly(t *testing.T) {
	scaler, model := fixture(t)
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	bus := events.NewBus()
	sub := bus.Subscribe(events.SubOptions{Buffer: 1024})
	defer sub.Close()
	m.SetEventSink(bus)

	const jobs = 10
	for k := 0; k < jobs; k++ {
		for _, s := range jobSamples(k, testWindow) {
			if err := m.Ingest(k, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	first := drainEvents(sub)
	if len(first) != jobs {
		t.Fatalf("first tick emitted %d events, want %d", len(first), jobs)
	}
	lastClass := make(map[int]int)
	for _, e := range first {
		if e.Type != events.TypePrediction || e.PrevClass != nil {
			t.Fatalf("first classification event malformed: %+v", e)
		}
		lastClass[*e.Job] = *e.Class
	}

	// A tick with nothing dirty emits nothing.
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if evs := drainEvents(sub); len(evs) != 0 {
		t.Fatalf("no-op tick emitted %d events", len(evs))
	}

	// Re-scores only emit when the class actually changes, and then carry
	// the class they replaced.
	for k := 0; k < jobs; k++ {
		for _, s := range jobSamples(k+1000, testWindow) {
			if err := m.Ingest(k, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	for _, e := range drainEvents(sub) {
		if e.Type != events.TypePrediction {
			t.Fatalf("unexpected event type %q", e.Type)
		}
		prev, seen := lastClass[*e.Job]
		if !seen || e.PrevClass == nil || *e.PrevClass != prev {
			t.Fatalf("re-score event carries wrong PrevClass: %+v (want %d)", e, prev)
		}
		if *e.Class == prev {
			t.Fatalf("event emitted for an unchanged class: %+v", e)
		}
	}
}

// TestEventsUnknownTransition pins the open-set feed: the verdict flipping
// to rejected emits exactly one unknown event per job, and staying
// rejected on a later re-score emits nothing new.
func TestEventsUnknownTransition(t *testing.T) {
	scaler, model := fixture(t)
	cal := fitTestCalibration(t, model)
	// A maximally strict threshold: everything is rejected, so the first
	// classification is also the false→true verdict transition.
	cal.Threshold.MinConf = 2
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model, Drift: cal})
	if err != nil {
		t.Fatal(err)
	}
	bus := events.NewBus()
	sub := bus.Subscribe(events.SubOptions{Types: []events.Type{events.TypeUnknown}, Buffer: 1024})
	defer sub.Close()
	m.SetEventSink(bus)

	const jobs = 6
	for k := 0; k < jobs; k++ {
		for _, s := range jobSamples(k, testWindow) {
			if err := m.Ingest(k, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	unknown := drainEvents(sub)
	if len(unknown) != jobs {
		t.Fatalf("first tick emitted %d unknown events, want %d", len(unknown), jobs)
	}

	// Still rejected after a re-score: no new verdict events.
	for k := 0; k < jobs; k++ {
		for _, s := range jobSamples(k+500, testWindow) {
			if err := m.Ingest(k, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if evs := drainEvents(sub); len(evs) != 0 {
		t.Fatalf("unchanged verdicts emitted %d unknown events", len(evs))
	}
}

// TestEventsSwapAdvancesGeneration pins the generation protocol end to
// end: predictions before a hot-swap carry generation 0, the swap emits
// exactly one swap event, and predictions after it carry generation 1.
func TestEventsSwapAdvancesGeneration(t *testing.T) {
	scaler, model := fixture(t)
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	bus := events.NewBus()
	sub := bus.Subscribe(events.SubOptions{Buffer: 1024})
	defer sub.Close()
	m.SetEventSink(bus)

	for _, s := range jobSamples(1, testWindow) {
		if err := m.Ingest(1, s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := m.SwapClassifier(model); err != nil {
		t.Fatal(err)
	}
	for _, s := range jobSamples(2, testWindow) {
		if err := m.Ingest(2, s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}

	evs := drainEvents(sub)
	var swaps int
	for _, e := range evs {
		switch e.Type {
		case events.TypeSwap:
			swaps++
			if e.Gen != 1 || e.Model == "" {
				t.Fatalf("swap event malformed: %+v", e)
			}
		case events.TypePrediction:
			want := uint64(0)
			if *e.Job == 2 {
				want = 1
			}
			if e.Gen != want {
				t.Fatalf("job %d prediction at generation %d, want %d", *e.Job, e.Gen, want)
			}
		default:
			t.Fatalf("unexpected event type %q", e.Type)
		}
	}
	if swaps != 1 {
		t.Fatalf("swap emitted %d swap events, want 1", swaps)
	}
}
