// Package fleet scales the single-job stream monitor to datacenter scale:
// thousands of jobs streaming telemetry concurrently, classified together.
//
// The paper frames workload classification as something an operator runs
// continuously over live telemetry from the whole machine (§VI); package
// stream provides the per-job building block (an incrementally maintained
// sliding-window covariance embedding plus a classifier), and this package
// provides the serving layer around it:
//
//   - a sharded registry of per-job WindowedEmbedders — job IDs hash to
//     shards, each shard guarded by its own mutex, so concurrent ingest from
//     many collector goroutines contends only within a shard;
//   - an ingest path (Ingest) accepting one telemetry sample for any job,
//     creating the job's embedder on first sight;
//   - a batched inference engine (Tick) that coalesces every window that
//     changed since the last tick into a single N×F feature matrix and runs
//     one batched PredictProba call instead of N single-row calls;
//   - a zero-downtime model refresh (SwapClassifier) that installs a
//     retrained classifier between inference ticks — the in-flight batch
//     finishes on the old model, ingest never stalls, and no tick mixes
//     predictions from two models.
//
// Models that implement BatchClassifier (forest, xgb) get their worker-pool
// batched path; any stream.Classifier still works via one multi-row
// PredictProba call. Either way per-row results are bit-identical to what a
// per-job stream.Monitor would produce, so scaling out changes throughput,
// not predictions.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/stream"
)

// BatchClassifier is the fast path a model can offer for fleet serving: one
// call scoring a whole N×F feature matrix, typically parallelised across
// rows (forest.PredictProbaBatch, xgb.PredictProbaBatch). Row i of the
// result must equal row i of PredictProba on the same matrix bit for bit.
type BatchClassifier interface {
	PredictProbaBatch(x *mat.Matrix) (*mat.Matrix, error)
}

// Config sizes a fleet monitor.
type Config struct {
	// Window and Sensors give the per-job sliding-window shape (the
	// challenge's 540×7).
	Window  int
	Sensors int
	// Scaler holds the offline training-time statistics every job's window
	// is standardised with (see stream.NewWindowedEmbedder).
	Scaler *preprocess.StandardScaler
	// Model classifies embedded windows. When it also implements
	// BatchClassifier, ticks use the batched path.
	Model stream.Classifier
	// Shards is the registry shard count (default 32). More shards spread
	// ingest lock contention; the count is fixed at construction.
	Shards int
}

// jobState is one job's slot in the registry, guarded by its shard's mutex.
type jobState struct {
	home    *shard // owning shard, for lock re-acquisition at write-back
	emb     *stream.WindowedEmbedder
	dirty   bool // samples arrived since the job was last classified
	pred    *stream.Prediction
	samples uint64
}

type shard struct {
	mu   sync.Mutex
	jobs map[int]*jobState
}

// Monitor is a fleet-wide live classifier. Ingest may be called from any
// number of goroutines concurrently, including concurrently with Tick;
// Tick itself is serialised internally.
type Monitor struct {
	cfg     Config
	dim     int
	batch   BatchClassifier // nil when Model has no batched path
	shards  []*shard
	tickMu  sync.Mutex
	samples atomic.Uint64
	ticks   atomic.Uint64
	classed atomic.Uint64
	swaps   atomic.Uint64
}

// New validates the configuration and returns an empty fleet monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.Window < 2 || cfg.Sensors < 1 {
		return nil, fmt.Errorf("fleet: invalid window shape %dx%d", cfg.Window, cfg.Sensors)
	}
	if cfg.Scaler == nil || len(cfg.Scaler.Means) != cfg.Window*cfg.Sensors {
		return nil, errors.New("fleet: scaler not fitted for this window shape")
	}
	if cfg.Model == nil {
		return nil, errors.New("fleet: nil model")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 32
	}
	m := &Monitor{
		cfg:    cfg,
		dim:    preprocess.CovarianceDim(cfg.Sensors),
		shards: make([]*shard, cfg.Shards),
	}
	if b, ok := cfg.Model.(BatchClassifier); ok {
		m.batch = b
	}
	for i := range m.shards {
		m.shards[i] = &shard{jobs: make(map[int]*jobState)}
	}
	return m, nil
}

// shardFor hashes a job ID to its shard. Sequential IDs are mixed so bursts
// of adjacent jobs do not all land on neighbouring shards.
func (m *Monitor) shardFor(jobID int) *shard {
	h := uint64(jobID) * 0x9e3779b97f4a7c15
	return m.shards[(h>>32)%uint64(len(m.shards))]
}

// Ingest feeds one telemetry sample (one value per sensor) for the given
// job, creating the job's embedder on first sight. Safe for concurrent use.
func (m *Monitor) Ingest(jobID int, sample []float64) error {
	sh := m.shardFor(jobID)
	sh.mu.Lock()
	js := sh.jobs[jobID]
	if js == nil {
		emb, err := stream.NewWindowedEmbedder(m.cfg.Window, m.cfg.Sensors, m.cfg.Scaler)
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		js = &jobState{home: sh, emb: emb}
		sh.jobs[jobID] = js
	}
	err := js.emb.Push(sample)
	if err == nil {
		js.dirty = true
		js.samples++
	}
	sh.mu.Unlock()
	if err == nil {
		m.samples.Add(1)
	}
	return err
}

// TickStats reports one batched inference pass.
type TickStats struct {
	// Classified is the number of jobs scored this tick (the batch height).
	Classified int
	// Pending is the number of registered jobs whose window has not filled.
	Pending int
}

// Tick runs one batched inference pass: every job whose window is full and
// has received samples since its last classification is embedded into one
// N×F matrix and scored with a single (batched, when available) model call.
// Concurrent Ingest during a tick is safe; such samples are picked up by the
// next tick.
func (m *Monitor) Tick() (TickStats, error) {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()

	var stats TickStats
	var ids []*jobState
	var feats []float64
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, js := range sh.jobs {
			if !js.dirty {
				continue
			}
			if !js.emb.Ready() {
				stats.Pending++
				continue
			}
			feats = append(feats, make([]float64, m.dim)...)
			if err := js.emb.FeaturesInto(feats[len(feats)-m.dim:]); err != nil {
				sh.mu.Unlock()
				return stats, err
			}
			js.dirty = false
			ids = append(ids, js)
		}
		sh.mu.Unlock()
	}
	if len(ids) == 0 {
		m.ticks.Add(1)
		return stats, nil
	}

	batch := &mat.Matrix{Rows: len(ids), Cols: m.dim, Data: feats}
	var probs *mat.Matrix
	var err error
	if m.batch != nil {
		probs, err = m.batch.PredictProbaBatch(batch)
	} else {
		probs, err = m.cfg.Model.PredictProba(batch)
	}
	if err != nil {
		return stats, err
	}
	if probs.Rows != len(ids) {
		return stats, fmt.Errorf("fleet: model returned %d rows for %d windows", probs.Rows, len(ids))
	}

	// Write predictions back. jobState pointers are stable, but the dirty
	// flag and pred field belong to the shard mutex, so re-lock per shard
	// ordering doesn't matter — each job is visited once.
	for i, js := range ids {
		row := probs.Row(i)
		best := mat.ArgMax(row)
		pred := &stream.Prediction{Class: best, Probability: row[best], Probs: row}
		js.home.mu.Lock()
		js.pred = pred
		js.home.mu.Unlock()
	}
	stats.Classified = len(ids)
	m.ticks.Add(1)
	m.classed.Add(uint64(len(ids)))
	return stats, nil
}

// SwapClassifier atomically installs a new model for all subsequent ticks —
// the zero-downtime refresh path for a retrained artifact rolling into a
// live fleet. The swap serialises on the tick mutex: an in-flight batched
// inference pass finishes on the old model, the new model takes effect at
// the next tick, and no tick ever mixes the two. Ingest never touches the
// model, so sample collection proceeds untouched throughout. Per-job window
// state is preserved across the swap; the new model must therefore consume
// the same feature layout (and the same scaler statistics) the fleet's
// embedders were built with.
//
// Safe to call from any goroutine, concurrently with Ingest and Tick.
func (m *Monitor) SwapClassifier(model stream.Classifier) error {
	if model == nil {
		return errors.New("fleet: cannot swap in a nil model")
	}
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	m.cfg.Model = model
	m.batch = nil
	if b, ok := model.(BatchClassifier); ok {
		m.batch = b
	}
	m.swaps.Add(1)
	return nil
}

// Swaps returns the number of completed classifier swaps.
func (m *Monitor) Swaps() uint64 { return m.swaps.Load() }

// Prediction returns the most recent classification for the job, or false
// if the job is unknown or has not been classified yet. The returned
// prediction is immutable once published.
func (m *Monitor) Prediction(jobID int) (*stream.Prediction, bool) {
	sh := m.shardFor(jobID)
	sh.mu.Lock()
	js := sh.jobs[jobID]
	var p *stream.Prediction
	if js != nil {
		p = js.pred
	}
	sh.mu.Unlock()
	if p == nil {
		return nil, false
	}
	return p, true
}

// NumJobs counts registered jobs across all shards.
func (m *Monitor) NumJobs() int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		n += len(sh.jobs)
		sh.mu.Unlock()
	}
	return n
}

// SamplesIngested returns the total number of successfully ingested samples.
func (m *Monitor) SamplesIngested() uint64 { return m.samples.Load() }

// Classifications returns the total number of per-job classifications
// produced by ticks so far.
func (m *Monitor) Classifications() uint64 { return m.classed.Load() }

// Ticks returns the number of completed ticks.
func (m *Monitor) Ticks() uint64 { return m.ticks.Load() }
