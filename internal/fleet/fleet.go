// Package fleet scales the single-job stream monitor to datacenter scale:
// thousands of jobs streaming telemetry concurrently, classified together.
//
// The paper frames workload classification as something an operator runs
// continuously over live telemetry from the whole machine (§VI); package
// stream provides the per-job building block (an incrementally maintained
// sliding-window covariance embedding plus a classifier), and this package
// provides the serving layer around it:
//
//   - a sharded registry of per-job WindowedEmbedders — job IDs hash to
//     shards, each shard guarded by its own mutex, so concurrent ingest from
//     many collector goroutines contends only within a shard;
//   - an ingest path (Ingest) accepting one telemetry sample for any job,
//     creating the job's embedder on first sight;
//   - a batched inference engine (Tick) that coalesces every window that
//     changed since the last tick into a single N×F feature matrix and runs
//     one batched PredictProba call instead of N single-row calls;
//   - a zero-downtime model refresh (SwapClassifier) that installs a
//     retrained classifier between inference ticks — the in-flight batch
//     finishes on the old model, ingest never stalls, and no tick mixes
//     predictions from two models;
//   - job lifecycle: EndJob releases a finished job's slot and returns its
//     final prediction, EvictIdle garbage-collects jobs whose producers
//     went away, and Snapshot gives operators a read-only, ID-sorted view
//     of every registered job;
//   - optional open-set detection (Config.Drift, see internal/drift):
//     ticks annotate every prediction with calibrated open-set scores and
//     an unknown-workload rejection flag, ingest accumulates per-sensor
//     input histograms, and DriftStats reports the fleet's PSI drift
//     against the training-time reference — without changing a single
//     in-distribution prediction bit.
//
// Models that implement BatchClassifier (forest, xgb) get their worker-pool
// batched path; any stream.Classifier still works via one multi-row
// PredictProba call. Either way per-row results are bit-identical to what a
// per-job stream.Monitor would produce, so scaling out changes throughput,
// not predictions.
//
// One Monitor still serialises inference on a single tick mutex; package
// shard partitions jobs across many Monitors with independent tick loops
// when that becomes the bottleneck, and package server puts the HTTP API
// in front of either.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/drift"
	"repro/internal/events"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/stream"
	"repro/internal/trace"
)

// BatchClassifier is the fast path a model can offer for fleet serving: one
// call scoring a whole N×F feature matrix, typically parallelised across
// rows (forest.PredictProbaBatch, xgb.PredictProbaBatch). Row i of the
// result must equal row i of PredictProba on the same matrix bit for bit.
type BatchClassifier interface {
	PredictProbaBatch(x *mat.Matrix) (*mat.Matrix, error)
}

// Observation is one scored window handed to an attached adapt observer at
// tick write-back: the serving verdict plus the exact feature row the model
// consumed. Features is borrowed from the tick's batch matrix — an observer
// that retains it past the call must copy. Gen counts completed model swaps
// at scoring time, so an observer can discard windows scored by an older
// generation after a promotion.
type Observation struct {
	Job      int
	Class    int
	Rejected bool // open-set verdict (always false when drift is disabled)
	Gen      uint64
	Features []float64 // borrowed; valid only for the duration of the call
}

// Observer receives every scored window from tick write-back — the feed the
// continual-learning flywheel (internal/adapt) buffers rejected windows and
// shadow-scores candidates from. Calls happen under the tick mutex, so an
// implementation must be bounded pure compute: no blocking operations, no
// calls back into the Monitor, and the same non-blocking discipline the
// events bus pins. Observing never alters a prediction bit.
type Observer interface {
	ObserveWindow(o Observation)
}

// Config sizes a fleet monitor.
type Config struct {
	// Window and Sensors give the per-job sliding-window shape (the
	// challenge's 540×7).
	Window  int
	Sensors int
	// Scaler holds the offline training-time statistics every job's window
	// is standardised with (see stream.NewWindowedEmbedder).
	Scaler *preprocess.StandardScaler
	// Model classifies embedded windows. When it also implements
	// BatchClassifier, ticks use the batched path.
	Model stream.Classifier
	// Shards is the registry shard count (default 32). More shards spread
	// ingest lock contention; the count is fixed at construction.
	Shards int
	// Drift, when non-nil, enables open-set detection and input-drift
	// monitoring: every tick annotates predictions with open-set scores
	// and a rejected flag from the calibrated threshold, and every
	// ingested sample lands in per-sensor drift histograms (DriftStats).
	// In-distribution predictions are bit-identical with or without it —
	// scoring annotates, it never alters Class/Probability/Probs.
	Drift *drift.Calibration
	// Now, when non-nil, replaces the real clock for last-seen stamps,
	// idle-eviction cutoffs and per-stage trace timestamps. Tests and tick
	// drivers that own the cadence inject it so tick output is a pure
	// function of its inputs (the //wcc:tickpath discipline); nil means
	// time.Now.
	Now func() time.Time
}

// jobState is one job's slot in the registry, guarded by its shard's mutex.
type jobState struct {
	id       int    // the job's fleet ID, for event emission at write-back
	home     *shard // owning shard, for lock re-acquisition at write-back
	emb      *stream.WindowedEmbedder
	dirty    bool // samples arrived since the job was last classified
	pred     *stream.Prediction
	samples  uint64
	lastSeen int64 // UnixNano of the last successful Ingest (0 if none)
}

type shard struct {
	mu   sync.Mutex
	jobs map[int]*jobState
	// dw accumulates the shard's input-drift histogram counts against the
	// reference dref (both nil when drift monitoring is disabled); guarded
	// by mu like the registry, and replaced together on a drift swap.
	dw   *drift.Window
	dref *drift.Reference
}

// Monitor is a fleet-wide live classifier. Ingest may be called from any
// number of goroutines concurrently, including concurrently with Tick;
// Tick itself is serialised internally.
type Monitor struct {
	cfg    Config
	dim    int
	batch  BatchClassifier // nil when Model has no batched path
	shards []*shard
	now    func() time.Time // injected clock (Config.Now, default time.Now)
	// tickMu serialises ticks and model/drift swaps. Event publishes are
	// deliberately ordered under it — the bus is non-blocking by design
	// (events.Bus.Publish drops rather than waits), and publishing inside
	// the critical section is what makes a swap event order exactly with
	// the installation it announces.
	//wcc:coordlock publish-under-lock is the swap/tick ordering protocol
	tickMu sync.Mutex
	// dcal is the live drift calibration (nil = detection disabled). It is
	// written only while holding BOTH tickMu and driftMu, so Tick reads it
	// under tickMu alone and the DriftStats read surface under driftMu
	// alone — and a drift swap can never interleave with either.
	driftMu sync.RWMutex
	dcal    *drift.Calibration
	// evs and tracer are the optional observability plane, both guarded by
	// tickMu (everything that reads them — ticks and swaps — already holds
	// it). nil means disabled; neither influences a single prediction bit.
	evs    events.Sink
	tracer *trace.Recorder
	// obs is the optional adapt observer (nil = detached), guarded by tickMu
	// like the sinks above; it sees every scored window but never a
	// prediction's fate.
	obs      Observer
	samples  atomic.Uint64
	ticks    atomic.Uint64
	classed  atomic.Uint64
	swaps    atomic.Uint64
	evicted  atomic.Uint64
	unknowns atomic.Uint64
}

// New validates the configuration and returns an empty fleet monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.Window < 2 || cfg.Sensors < 1 {
		return nil, fmt.Errorf("fleet: invalid window shape %dx%d", cfg.Window, cfg.Sensors)
	}
	if cfg.Scaler == nil || len(cfg.Scaler.Means) != cfg.Window*cfg.Sensors {
		return nil, errors.New("fleet: scaler not fitted for this window shape")
	}
	if cfg.Model == nil {
		return nil, errors.New("fleet: nil model")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 32
	}
	if err := validateDrift(cfg.Drift, cfg.Sensors); err != nil {
		return nil, err
	}
	m := &Monitor{
		cfg:    cfg,
		dim:    preprocess.CovarianceDim(cfg.Sensors),
		dcal:   cfg.Drift,
		shards: make([]*shard, cfg.Shards),
		now:    cfg.Now,
	}
	if m.now == nil {
		m.now = time.Now
	}
	if b, ok := cfg.Model.(BatchClassifier); ok {
		m.batch = b
	}
	for i := range m.shards {
		m.shards[i] = &shard{jobs: make(map[int]*jobState)}
		if cfg.Drift != nil {
			m.shards[i].dw = drift.NewWindow(cfg.Sensors, cfg.Drift.Ref.Bins)
			m.shards[i].dref = cfg.Drift.Ref
		}
	}
	return m, nil
}

// validateDrift checks a calibration against the fleet's window shape
// before it can reach the hot path: a reference over the wrong sensor
// count would mis-bin every sample, and feature statistics of the wrong
// width would index out of the embedding row on the first scored tick — a
// crafted or mismatched artifact must fail construction, never panic
// serving. nil (detection disabled) is always valid.
func validateDrift(cal *drift.Calibration, sensors int) error {
	if cal == nil {
		return nil
	}
	if cal.Ref == nil {
		return errors.New("fleet: drift calibration carries no input reference")
	}
	if got := cal.Ref.Sensors(); got != sensors {
		return fmt.Errorf("fleet: drift reference covers %d sensors, fleet has %d", got, sensors)
	}
	if cal.Feat != nil {
		if want := preprocess.CovarianceDim(sensors); len(cal.Feat.Means) != want {
			return fmt.Errorf("fleet: drift feature statistics cover %d features, embedding has %d",
				len(cal.Feat.Means), want)
		}
	}
	return nil
}

// shardFor hashes a job ID to its shard. Sequential IDs are mixed so bursts
// of adjacent jobs do not all land on neighbouring shards.
func (m *Monitor) shardFor(jobID int) *shard {
	h := uint64(jobID) * 0x9e3779b97f4a7c15
	return m.shards[(h>>32)%uint64(len(m.shards))]
}

// maxSampleMagnitude bounds one sensor reading. Real DCGM telemetry sits
// many orders of magnitude below it; values past the bound (and NaN/Inf,
// which JSON cannot express but a direct caller can) would poison the
// sliding-window covariance sums — a NaN never cancels back out of the
// incremental sums, and an enormous finite value destroys their precision
// even after eviction — so they are rejected before touching any state.
const maxSampleMagnitude = 1e12

// Ingest feeds one telemetry sample (one value per sensor) for the given
// job, creating the job's embedder on first sight. Safe for concurrent use.
// A sample of the wrong width, or carrying a non-finite or absurdly large
// value, is rejected before the job registers, so a stream of invalid
// samples (e.g. hostile ingest traffic behind the HTTP layer) cannot grow
// the registry or corrupt a window.
func (m *Monitor) Ingest(jobID int, sample []float64) error {
	if len(sample) != m.cfg.Sensors {
		return fmt.Errorf("fleet: sample has %d sensors, want %d", len(sample), m.cfg.Sensors)
	}
	for i, v := range sample {
		if math.IsNaN(v) || v > maxSampleMagnitude || v < -maxSampleMagnitude {
			return fmt.Errorf("fleet: sensor %d value %v is not a finite telemetry reading", i, v)
		}
	}
	sh := m.shardFor(jobID)
	sh.mu.Lock()
	js := sh.jobs[jobID]
	if js == nil {
		emb, err := stream.NewWindowedEmbedder(m.cfg.Window, m.cfg.Sensors, m.cfg.Scaler)
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		js = &jobState{id: jobID, home: sh, emb: emb}
		sh.jobs[jobID] = js
	}
	err := js.emb.Push(sample)
	if err == nil {
		js.dirty = true
		js.samples++
		js.lastSeen = m.now().UnixNano()
		if sh.dw != nil {
			sh.dw.Add(sh.dref, sample)
		}
	}
	sh.mu.Unlock()
	if err == nil {
		m.samples.Add(1)
	}
	return err
}

// TickStats reports one batched inference pass.
type TickStats struct {
	// Classified is the number of jobs scored this tick (the batch height).
	Classified int
	// Pending is the number of registered jobs whose window has not filled,
	// whether or not samples arrived since the last tick.
	Pending int
}

// collected pairs a job selected into a tick's batch with the sample count
// observed at collection time, so write-back can tell whether new samples
// arrived while inference ran.
type collected struct {
	js   *jobState
	seen uint64
}

// Tick runs one batched inference pass: every job whose window is full and
// has received samples since its last classification is embedded into one
// N×F matrix and scored with a single (batched, when available) model call.
// Concurrent Ingest during a tick is safe; such samples are picked up by the
// next tick. A tick that fails (embedding error, model error, row-count
// mismatch) leaves every collected job dirty, so the next tick re-scores
// them — a transient error never silently drops pending classifications.
//
//wcc:tickpath reads the clock only through the injected m.now
func (m *Monitor) Tick() (TickStats, error) {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()

	var stats TickStats
	var batch []collected
	var feats []float64
	collectStart := m.now()
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, js := range sh.jobs {
			if !js.emb.Ready() {
				stats.Pending++
				continue
			}
			if !js.dirty {
				continue
			}
			feats = append(feats, make([]float64, m.dim)...)
			if err := js.emb.FeaturesInto(feats[len(feats)-m.dim:]); err != nil {
				sh.mu.Unlock()
				return stats, err
			}
			batch = append(batch, collected{js: js, seen: js.samples})
		}
		sh.mu.Unlock()
	}
	if len(batch) == 0 {
		m.ticks.Add(1)
		return stats, nil
	}
	// Stage spans record only non-empty passes: at a 10ms cadence most
	// ticks collect nothing, and those would drown the ring the sampled
	// trace endpoint serves.
	m.tracer.Observe(trace.StageCollect, collectStart, m.now().Sub(collectStart), len(batch))

	x := &mat.Matrix{Rows: len(batch), Cols: m.dim, Data: feats}
	classifyStart := m.now()
	var probs *mat.Matrix
	var err error
	if m.batch != nil {
		probs, err = m.batch.PredictProbaBatch(x)
	} else {
		probs, err = m.cfg.Model.PredictProba(x)
	}
	if err != nil {
		return stats, err
	}
	m.tracer.Observe(trace.StageClassify, classifyStart, m.now().Sub(classifyStart), len(batch))
	if probs.Rows != len(batch) {
		return stats, fmt.Errorf("fleet: model returned %d rows for %d windows", probs.Rows, len(batch))
	}

	// Write predictions back. jobState pointers are stable, but the dirty
	// flag and pred field belong to the shard mutex, so re-lock per shard
	// ordering doesn't matter — each job is visited once. The dirty flag is
	// retired only here, after the model call succeeded; a job that received
	// more samples while inference ran stays dirty for the next tick.
	writeStart := m.now()
	for i, c := range batch {
		row := probs.Row(i)
		best := mat.ArgMax(row)
		pred := &stream.Prediction{Class: best, Probability: row[best], Probs: row}
		if m.dcal != nil { // tickMu held: coherent with drift swaps
			// Open-set annotation: score the probability row plus the very
			// embedding row the model consumed against the calibrated
			// threshold. The prediction itself is untouched, so enabling
			// drift leaves in-distribution results bit-identical.
			sc := m.dcal.Score(row, x.Row(i))
			rejected := m.dcal.Threshold.Reject(sc)
			pred.Open = &stream.OpenSet{Margin: sc.Margin, Energy: sc.Energy, FeatDist: sc.FeatDist, Rejected: rejected}
			if rejected {
				m.unknowns.Add(1)
			}
		}
		c.js.home.mu.Lock()
		old := c.js.pred
		c.js.pred = pred
		if c.js.samples == c.seen {
			c.js.dirty = false
		}
		c.js.home.mu.Unlock()
		// Adapt observation, outside the job lock like event emission below:
		// the observer sees the verdict and the very feature row the model
		// consumed (borrowed — it copies what it keeps), and can never touch
		// the prediction already published above.
		if m.obs != nil {
			rejected := pred.Open != nil && pred.Open.Rejected
			m.obs.ObserveWindow(Observation{
				Job: c.js.id, Class: pred.Class, Rejected: rejected,
				Gen: m.swaps.Load(), Features: x.Row(i),
			})
		}
		// Push-plane emission, outside the job lock and after the prediction
		// has published: a stalled subscriber can therefore never delay
		// write-back, and enabling events changes no prediction bit. Only
		// transitions emit — a class change (including the first
		// classification) and a verdict flipping to unknown — so steady
		// state costs nothing and the feed carries signal, not re-scores.
		if m.evs != nil {
			if old == nil || old.Class != pred.Class {
				e := events.Event{
					Type: events.TypePrediction, Job: events.Intp(c.js.id),
					Class: events.Intp(pred.Class), Probability: pred.Probability,
				}
				if old != nil {
					e.PrevClass = events.Intp(old.Class)
				}
				m.evs.Publish(e)
			}
			if pred.Unknown() && !old.Unknown() {
				m.evs.Publish(events.Event{
					Type: events.TypeUnknown, Job: events.Intp(c.js.id),
					Class: events.Intp(pred.Class), Probability: pred.Probability,
					FeatDist: pred.Open.FeatDist,
				})
			}
		}
	}
	m.tracer.Observe(trace.StageWriteBack, writeStart, m.now().Sub(writeStart), len(batch))
	stats.Classified = len(batch)
	m.ticks.Add(1)
	m.classed.Add(uint64(len(batch)))
	return stats, nil
}

// SwapClassifier atomically installs a new model for all subsequent ticks —
// the zero-downtime refresh path for a retrained artifact rolling into a
// live fleet. The swap serialises on the tick mutex: an in-flight batched
// inference pass finishes on the old model, the new model takes effect at
// the next tick, and no tick ever mixes the two. Ingest never touches the
// model, so sample collection proceeds untouched throughout. Per-job window
// state is preserved across the swap; the new model must therefore consume
// the same feature layout (and the same scaler statistics) the fleet's
// embedders were built with.
//
// The drift calibration is left untouched — correct only when the model
// itself is unchanged in distribution. A retrained artifact carries its
// own calibration; roll it in with SwapClassifierDrift so open-set
// verdicts are never scored against another model's thresholds.
//
// Safe to call from any goroutine, concurrently with Ingest and Tick.
func (m *Monitor) SwapClassifier(model stream.Classifier) error {
	if model == nil {
		return errors.New("fleet: cannot swap in a nil model")
	}
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	m.installModel(model)
	m.swaps.Add(1)
	m.publishSwap(model)
	return nil
}

// SwapClassifierDrift is SwapClassifier plus the model's own drift
// calibration (nil disables detection): both install under the tick mutex,
// so no inference pass ever scores one model's probabilities against
// another model's thresholds. The accumulated drift histograms reset —
// they were binned against the outgoing reference — so PSI reporting
// restarts cleanly for the new generation; the Unknowns counter stays
// monotonic.
//
// Safe to call from any goroutine, concurrently with Ingest, Tick and the
// DriftStats read surface.
func (m *Monitor) SwapClassifierDrift(model stream.Classifier, cal *drift.Calibration) error {
	if model == nil {
		return errors.New("fleet: cannot swap in a nil model")
	}
	if err := validateDrift(cal, m.cfg.Sensors); err != nil {
		return err
	}
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	m.driftMu.Lock()
	m.installModel(model)
	m.dcal = cal
	for _, sh := range m.shards {
		sh.mu.Lock()
		if cal != nil {
			sh.dw = drift.NewWindow(m.cfg.Sensors, cal.Ref.Bins)
			sh.dref = cal.Ref
		} else {
			sh.dw, sh.dref = nil, nil
		}
		sh.mu.Unlock()
	}
	m.driftMu.Unlock()
	m.swaps.Add(1)
	m.publishSwap(model)
	return nil
}

// publishSwap emits the hot-swap event that advances the bus generation;
// callers hold tickMu, so the event orders exactly with the installation —
// every later tick's events carry the new generation.
func (m *Monitor) publishSwap(model stream.Classifier) {
	if m.evs != nil {
		m.evs.Publish(events.Event{Type: events.TypeSwap, Model: fmt.Sprintf("%T", model)})
	}
}

// SetEventSink attaches the push plane: prediction-change, unknown-verdict
// and swap events publish to s from the next tick on (nil detaches).
// Emission never blocks on a consumer — sinks are expected to be bounded
// and evicting, like events.Bus — and never alters a prediction;
// TestEventsEquivalenceBitIdentical pins that.
func (m *Monitor) SetEventSink(s events.Sink) {
	m.tickMu.Lock()
	m.evs = s
	m.tickMu.Unlock()
}

// SetAdaptObserver attaches the continual-learning feed: from the next tick
// on, every scored window is handed to obs at write-back (nil detaches).
// The observer runs under the tick mutex and must follow the Observer
// contract — bounded compute, never blocking — and cannot alter a
// prediction; TestAdaptEquivalenceBitIdentical (internal/adapt) pins that.
func (m *Monitor) SetAdaptObserver(obs Observer) {
	m.tickMu.Lock()
	m.obs = obs
	m.tickMu.Unlock()
}

// SetTraceRecorder attaches the per-stage span recorder ticks feed
// (collect, classify, write-back stages); nil detaches. The recorder is
// safe to share across monitors — a sharded core threads one through
// every shard.
func (m *Monitor) SetTraceRecorder(r *trace.Recorder) {
	m.tickMu.Lock()
	m.tracer = r
	m.tickMu.Unlock()
}

// installModel sets the serving model and its batched fast path; callers
// hold tickMu.
func (m *Monitor) installModel(model stream.Classifier) {
	m.cfg.Model = model
	m.batch = nil
	if b, ok := model.(BatchClassifier); ok {
		m.batch = b
	}
}

// Swaps returns the number of completed classifier swaps.
func (m *Monitor) Swaps() uint64 { return m.swaps.Load() }

// Prediction returns the most recent classification for the job, or false
// if the job is unknown or has not been classified yet. The returned
// prediction is immutable once published.
func (m *Monitor) Prediction(jobID int) (*stream.Prediction, bool) {
	sh := m.shardFor(jobID)
	sh.mu.Lock()
	js := sh.jobs[jobID]
	var p *stream.Prediction
	if js != nil {
		p = js.pred
	}
	sh.mu.Unlock()
	if p == nil {
		return nil, false
	}
	return p, true
}

// EndJob removes a finished job from the registry, releasing its embedder,
// and returns the job's final published prediction (nil if it was never
// classified) plus whether the job was registered at all. A sample arriving
// for the same ID afterwards re-registers it from scratch. Safe to call
// concurrently with Ingest and Tick.
func (m *Monitor) EndJob(jobID int) (*stream.Prediction, bool) {
	sh := m.shardFor(jobID)
	sh.mu.Lock()
	js := sh.jobs[jobID]
	var pred *stream.Prediction
	if js != nil {
		pred = js.pred
		delete(sh.jobs, jobID)
	}
	sh.mu.Unlock()
	if js == nil {
		return nil, false
	}
	m.evicted.Add(1)
	return pred, true
}

// EvictIdle removes every job whose most recent successful sample is at
// least maxIdle old (jobs that never ingested a sample successfully are
// always idle) and reports how many were evicted. It is the garbage
// collector for fleets whose producers cannot be relied on to call EndJob:
// without it the registry grows by one window-sized embedder per job ever
// seen. Safe to call concurrently with Ingest and Tick.
func (m *Monitor) EvictIdle(maxIdle time.Duration) int {
	if maxIdle < 0 {
		maxIdle = 0
	}
	cutoff := m.now().Add(-maxIdle).UnixNano()
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		for id, js := range sh.jobs {
			if js.lastSeen <= cutoff {
				delete(sh.jobs, id)
				n++
			}
		}
		sh.mu.Unlock()
	}
	if n > 0 {
		m.evicted.Add(uint64(n))
	}
	return n
}

// JobInfo is one job's row in a fleet Snapshot.
type JobInfo struct {
	JobID int
	// Samples counts the job's successfully ingested samples.
	Samples uint64
	// Ready reports whether the job's window has filled.
	Ready bool
	// LastSeen is when the job's most recent sample arrived (zero if none).
	LastSeen time.Time
	// Pred is the last published prediction, nil before the first. It is
	// immutable once published.
	Pred *stream.Prediction
}

// Snapshot returns a read-only, point-in-time view of every registered job,
// sorted by job ID. Shards are visited one at a time, so the view is
// consistent within a shard but jobs on different shards may be observed at
// slightly different instants relative to concurrent ingest.
func (m *Monitor) Snapshot() []JobInfo {
	var out []JobInfo
	for _, sh := range m.shards {
		sh.mu.Lock()
		for id, js := range sh.jobs {
			ji := JobInfo{JobID: id, Samples: js.samples, Ready: js.emb.Ready(), Pred: js.pred}
			if js.lastSeen != 0 {
				ji.LastSeen = time.Unix(0, js.lastSeen)
			}
			out = append(out, ji)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// Window returns the per-job sliding-window length the monitor was built with.
func (m *Monitor) Window() int { return m.cfg.Window }

// Sensors returns the per-sample sensor count the monitor was built with.
func (m *Monitor) Sensors() int { return m.cfg.Sensors }

// Evictions returns the total number of jobs removed from the registry,
// whether by EndJob or EvictIdle.
func (m *Monitor) Evictions() uint64 { return m.evicted.Load() }

// NumJobs counts registered jobs across all shards.
func (m *Monitor) NumJobs() int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		n += len(sh.jobs)
		sh.mu.Unlock()
	}
	return n
}

// SamplesIngested returns the total number of successfully ingested samples.
func (m *Monitor) SamplesIngested() uint64 { return m.samples.Load() }

// Classifications returns the total number of per-job classifications
// produced by ticks so far.
func (m *Monitor) Classifications() uint64 { return m.classed.Load() }

// Ticks returns the number of completed ticks.
func (m *Monitor) Ticks() uint64 { return m.ticks.Load() }

// DriftStats reports the monitor's open-set and input-drift state. Like
// TickStats it is a mergeable snapshot: package shard sums the underlying
// histogram windows across monitors and recomputes the PSI, so a sharded
// fleet reports exactly what one monitor fed the same streams would.
type DriftStats struct {
	// Enabled reports whether the monitor carries a drift calibration;
	// every other field is zero when it does not.
	Enabled bool
	// Samples is the number of telemetry samples binned into the drift
	// histograms.
	Samples uint64
	// Unknowns counts classifications the calibrated threshold rejected
	// as unknown workloads (monotonic; re-scored jobs count each time).
	Unknowns uint64
	// SensorPSI is the per-sensor Population Stability Index of the live
	// input against the training reference.
	SensorPSI []float64
	// Score is the fleet drift score: the maximum SensorPSI.
	Score float64
}

// DriftEnabled reports whether the monitor scores predictions against a
// drift calibration.
func (m *Monitor) DriftEnabled() bool {
	m.driftMu.RLock()
	defer m.driftMu.RUnlock()
	return m.dcal != nil
}

// DriftCalibration returns the monitor's current calibration (nil when
// drift monitoring is disabled). The calibration itself is immutable;
// swaps replace the pointer.
func (m *Monitor) DriftCalibration() *drift.Calibration {
	m.driftMu.RLock()
	defer m.driftMu.RUnlock()
	return m.dcal
}

// DriftWindow merges the per-shard input histograms into one independent
// snapshot, or reports false when drift monitoring is disabled. The
// drift lock is held across the whole merge, so a concurrent
// SwapClassifierDrift can never hand it windows of mixed generations.
func (m *Monitor) DriftWindow() (*drift.Window, bool) {
	m.driftMu.RLock()
	defer m.driftMu.RUnlock()
	w, _ := m.driftWindowLocked()
	return w, w != nil
}

// driftWindowLocked merges the shard histograms; callers hold driftMu.
func (m *Monitor) driftWindowLocked() (*drift.Window, *drift.Calibration) {
	if m.dcal == nil {
		return nil, nil
	}
	out := drift.NewWindow(m.cfg.Sensors, m.dcal.Ref.Bins)
	for _, sh := range m.shards {
		sh.mu.Lock()
		out.Merge(sh.dw)
		sh.mu.Unlock()
	}
	return out, m.dcal
}

// Unknowns returns the total number of classifications rejected as
// unknown workloads (0 when drift monitoring is disabled).
func (m *Monitor) Unknowns() uint64 { return m.unknowns.Load() }

// DriftStats snapshots the open-set and input-drift state: merged
// histogram counts, per-sensor PSI against the training reference, and
// the fleet drift score. Safe to call concurrently with Ingest, Tick and
// swaps.
func (m *Monitor) DriftStats() DriftStats {
	m.driftMu.RLock()
	defer m.driftMu.RUnlock()
	w, cal := m.driftWindowLocked()
	if w == nil {
		return DriftStats{}
	}
	psi := cal.Ref.PSI(w)
	return DriftStats{
		Enabled:   true,
		Samples:   w.Samples,
		Unknowns:  m.unknowns.Load(),
		SensorPSI: psi,
		Score:     drift.FleetScore(psi),
	}
}
