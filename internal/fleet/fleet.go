// Package fleet scales the single-job stream monitor to datacenter scale:
// thousands of jobs streaming telemetry concurrently, classified together.
//
// The paper frames workload classification as something an operator runs
// continuously over live telemetry from the whole machine (§VI); package
// stream provides the per-job building block (an incrementally maintained
// sliding-window covariance embedding plus a classifier), and this package
// provides the serving layer around it:
//
//   - a sharded registry of per-job WindowedEmbedders — job IDs hash to
//     shards, each shard guarded by its own mutex, so concurrent ingest from
//     many collector goroutines contends only within a shard;
//   - an ingest path (Ingest) accepting one telemetry sample for any job,
//     creating the job's embedder on first sight;
//   - a batched inference engine (Tick) that coalesces every window that
//     changed since the last tick into a single N×F feature matrix and runs
//     one batched PredictProba call instead of N single-row calls;
//   - a zero-downtime model refresh (SwapClassifier) that installs a
//     retrained classifier between inference ticks — the in-flight batch
//     finishes on the old model, ingest never stalls, and no tick mixes
//     predictions from two models;
//   - job lifecycle: EndJob releases a finished job's slot and returns its
//     final prediction, EvictIdle garbage-collects jobs whose producers
//     went away, and Snapshot gives operators a read-only, ID-sorted view
//     of every registered job.
//
// Models that implement BatchClassifier (forest, xgb) get their worker-pool
// batched path; any stream.Classifier still works via one multi-row
// PredictProba call. Either way per-row results are bit-identical to what a
// per-job stream.Monitor would produce, so scaling out changes throughput,
// not predictions.
//
// One Monitor still serialises inference on a single tick mutex; package
// shard partitions jobs across many Monitors with independent tick loops
// when that becomes the bottleneck, and package server puts the HTTP API
// in front of either.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/stream"
)

// BatchClassifier is the fast path a model can offer for fleet serving: one
// call scoring a whole N×F feature matrix, typically parallelised across
// rows (forest.PredictProbaBatch, xgb.PredictProbaBatch). Row i of the
// result must equal row i of PredictProba on the same matrix bit for bit.
type BatchClassifier interface {
	PredictProbaBatch(x *mat.Matrix) (*mat.Matrix, error)
}

// Config sizes a fleet monitor.
type Config struct {
	// Window and Sensors give the per-job sliding-window shape (the
	// challenge's 540×7).
	Window  int
	Sensors int
	// Scaler holds the offline training-time statistics every job's window
	// is standardised with (see stream.NewWindowedEmbedder).
	Scaler *preprocess.StandardScaler
	// Model classifies embedded windows. When it also implements
	// BatchClassifier, ticks use the batched path.
	Model stream.Classifier
	// Shards is the registry shard count (default 32). More shards spread
	// ingest lock contention; the count is fixed at construction.
	Shards int
}

// jobState is one job's slot in the registry, guarded by its shard's mutex.
type jobState struct {
	home     *shard // owning shard, for lock re-acquisition at write-back
	emb      *stream.WindowedEmbedder
	dirty    bool // samples arrived since the job was last classified
	pred     *stream.Prediction
	samples  uint64
	lastSeen int64 // UnixNano of the last successful Ingest (0 if none)
}

type shard struct {
	mu   sync.Mutex
	jobs map[int]*jobState
}

// Monitor is a fleet-wide live classifier. Ingest may be called from any
// number of goroutines concurrently, including concurrently with Tick;
// Tick itself is serialised internally.
type Monitor struct {
	cfg     Config
	dim     int
	batch   BatchClassifier // nil when Model has no batched path
	shards  []*shard
	tickMu  sync.Mutex
	samples atomic.Uint64
	ticks   atomic.Uint64
	classed atomic.Uint64
	swaps   atomic.Uint64
	evicted atomic.Uint64
}

// New validates the configuration and returns an empty fleet monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.Window < 2 || cfg.Sensors < 1 {
		return nil, fmt.Errorf("fleet: invalid window shape %dx%d", cfg.Window, cfg.Sensors)
	}
	if cfg.Scaler == nil || len(cfg.Scaler.Means) != cfg.Window*cfg.Sensors {
		return nil, errors.New("fleet: scaler not fitted for this window shape")
	}
	if cfg.Model == nil {
		return nil, errors.New("fleet: nil model")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 32
	}
	m := &Monitor{
		cfg:    cfg,
		dim:    preprocess.CovarianceDim(cfg.Sensors),
		shards: make([]*shard, cfg.Shards),
	}
	if b, ok := cfg.Model.(BatchClassifier); ok {
		m.batch = b
	}
	for i := range m.shards {
		m.shards[i] = &shard{jobs: make(map[int]*jobState)}
	}
	return m, nil
}

// shardFor hashes a job ID to its shard. Sequential IDs are mixed so bursts
// of adjacent jobs do not all land on neighbouring shards.
func (m *Monitor) shardFor(jobID int) *shard {
	h := uint64(jobID) * 0x9e3779b97f4a7c15
	return m.shards[(h>>32)%uint64(len(m.shards))]
}

// Ingest feeds one telemetry sample (one value per sensor) for the given
// job, creating the job's embedder on first sight. Safe for concurrent use.
// A sample of the wrong width is rejected before the job registers, so a
// stream of invalid samples (e.g. hostile ingest traffic behind the HTTP
// layer) cannot grow the registry.
func (m *Monitor) Ingest(jobID int, sample []float64) error {
	if len(sample) != m.cfg.Sensors {
		return fmt.Errorf("fleet: sample has %d sensors, want %d", len(sample), m.cfg.Sensors)
	}
	sh := m.shardFor(jobID)
	sh.mu.Lock()
	js := sh.jobs[jobID]
	if js == nil {
		emb, err := stream.NewWindowedEmbedder(m.cfg.Window, m.cfg.Sensors, m.cfg.Scaler)
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		js = &jobState{home: sh, emb: emb}
		sh.jobs[jobID] = js
	}
	err := js.emb.Push(sample)
	if err == nil {
		js.dirty = true
		js.samples++
		js.lastSeen = time.Now().UnixNano()
	}
	sh.mu.Unlock()
	if err == nil {
		m.samples.Add(1)
	}
	return err
}

// TickStats reports one batched inference pass.
type TickStats struct {
	// Classified is the number of jobs scored this tick (the batch height).
	Classified int
	// Pending is the number of registered jobs whose window has not filled,
	// whether or not samples arrived since the last tick.
	Pending int
}

// collected pairs a job selected into a tick's batch with the sample count
// observed at collection time, so write-back can tell whether new samples
// arrived while inference ran.
type collected struct {
	js   *jobState
	seen uint64
}

// Tick runs one batched inference pass: every job whose window is full and
// has received samples since its last classification is embedded into one
// N×F matrix and scored with a single (batched, when available) model call.
// Concurrent Ingest during a tick is safe; such samples are picked up by the
// next tick. A tick that fails (embedding error, model error, row-count
// mismatch) leaves every collected job dirty, so the next tick re-scores
// them — a transient error never silently drops pending classifications.
func (m *Monitor) Tick() (TickStats, error) {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()

	var stats TickStats
	var batch []collected
	var feats []float64
	for _, sh := range m.shards {
		sh.mu.Lock()
		for _, js := range sh.jobs {
			if !js.emb.Ready() {
				stats.Pending++
				continue
			}
			if !js.dirty {
				continue
			}
			feats = append(feats, make([]float64, m.dim)...)
			if err := js.emb.FeaturesInto(feats[len(feats)-m.dim:]); err != nil {
				sh.mu.Unlock()
				return stats, err
			}
			batch = append(batch, collected{js: js, seen: js.samples})
		}
		sh.mu.Unlock()
	}
	if len(batch) == 0 {
		m.ticks.Add(1)
		return stats, nil
	}

	x := &mat.Matrix{Rows: len(batch), Cols: m.dim, Data: feats}
	var probs *mat.Matrix
	var err error
	if m.batch != nil {
		probs, err = m.batch.PredictProbaBatch(x)
	} else {
		probs, err = m.cfg.Model.PredictProba(x)
	}
	if err != nil {
		return stats, err
	}
	if probs.Rows != len(batch) {
		return stats, fmt.Errorf("fleet: model returned %d rows for %d windows", probs.Rows, len(batch))
	}

	// Write predictions back. jobState pointers are stable, but the dirty
	// flag and pred field belong to the shard mutex, so re-lock per shard
	// ordering doesn't matter — each job is visited once. The dirty flag is
	// retired only here, after the model call succeeded; a job that received
	// more samples while inference ran stays dirty for the next tick.
	for i, c := range batch {
		row := probs.Row(i)
		best := mat.ArgMax(row)
		pred := &stream.Prediction{Class: best, Probability: row[best], Probs: row}
		c.js.home.mu.Lock()
		c.js.pred = pred
		if c.js.samples == c.seen {
			c.js.dirty = false
		}
		c.js.home.mu.Unlock()
	}
	stats.Classified = len(batch)
	m.ticks.Add(1)
	m.classed.Add(uint64(len(batch)))
	return stats, nil
}

// SwapClassifier atomically installs a new model for all subsequent ticks —
// the zero-downtime refresh path for a retrained artifact rolling into a
// live fleet. The swap serialises on the tick mutex: an in-flight batched
// inference pass finishes on the old model, the new model takes effect at
// the next tick, and no tick ever mixes the two. Ingest never touches the
// model, so sample collection proceeds untouched throughout. Per-job window
// state is preserved across the swap; the new model must therefore consume
// the same feature layout (and the same scaler statistics) the fleet's
// embedders were built with.
//
// Safe to call from any goroutine, concurrently with Ingest and Tick.
func (m *Monitor) SwapClassifier(model stream.Classifier) error {
	if model == nil {
		return errors.New("fleet: cannot swap in a nil model")
	}
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	m.cfg.Model = model
	m.batch = nil
	if b, ok := model.(BatchClassifier); ok {
		m.batch = b
	}
	m.swaps.Add(1)
	return nil
}

// Swaps returns the number of completed classifier swaps.
func (m *Monitor) Swaps() uint64 { return m.swaps.Load() }

// Prediction returns the most recent classification for the job, or false
// if the job is unknown or has not been classified yet. The returned
// prediction is immutable once published.
func (m *Monitor) Prediction(jobID int) (*stream.Prediction, bool) {
	sh := m.shardFor(jobID)
	sh.mu.Lock()
	js := sh.jobs[jobID]
	var p *stream.Prediction
	if js != nil {
		p = js.pred
	}
	sh.mu.Unlock()
	if p == nil {
		return nil, false
	}
	return p, true
}

// EndJob removes a finished job from the registry, releasing its embedder,
// and returns the job's final published prediction (nil if it was never
// classified) plus whether the job was registered at all. A sample arriving
// for the same ID afterwards re-registers it from scratch. Safe to call
// concurrently with Ingest and Tick.
func (m *Monitor) EndJob(jobID int) (*stream.Prediction, bool) {
	sh := m.shardFor(jobID)
	sh.mu.Lock()
	js := sh.jobs[jobID]
	var pred *stream.Prediction
	if js != nil {
		pred = js.pred
		delete(sh.jobs, jobID)
	}
	sh.mu.Unlock()
	if js == nil {
		return nil, false
	}
	m.evicted.Add(1)
	return pred, true
}

// EvictIdle removes every job whose most recent successful sample is at
// least maxIdle old (jobs that never ingested a sample successfully are
// always idle) and reports how many were evicted. It is the garbage
// collector for fleets whose producers cannot be relied on to call EndJob:
// without it the registry grows by one window-sized embedder per job ever
// seen. Safe to call concurrently with Ingest and Tick.
func (m *Monitor) EvictIdle(maxIdle time.Duration) int {
	if maxIdle < 0 {
		maxIdle = 0
	}
	cutoff := time.Now().Add(-maxIdle).UnixNano()
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		for id, js := range sh.jobs {
			if js.lastSeen <= cutoff {
				delete(sh.jobs, id)
				n++
			}
		}
		sh.mu.Unlock()
	}
	if n > 0 {
		m.evicted.Add(uint64(n))
	}
	return n
}

// JobInfo is one job's row in a fleet Snapshot.
type JobInfo struct {
	JobID int
	// Samples counts the job's successfully ingested samples.
	Samples uint64
	// Ready reports whether the job's window has filled.
	Ready bool
	// LastSeen is when the job's most recent sample arrived (zero if none).
	LastSeen time.Time
	// Pred is the last published prediction, nil before the first. It is
	// immutable once published.
	Pred *stream.Prediction
}

// Snapshot returns a read-only, point-in-time view of every registered job,
// sorted by job ID. Shards are visited one at a time, so the view is
// consistent within a shard but jobs on different shards may be observed at
// slightly different instants relative to concurrent ingest.
func (m *Monitor) Snapshot() []JobInfo {
	var out []JobInfo
	for _, sh := range m.shards {
		sh.mu.Lock()
		for id, js := range sh.jobs {
			ji := JobInfo{JobID: id, Samples: js.samples, Ready: js.emb.Ready(), Pred: js.pred}
			if js.lastSeen != 0 {
				ji.LastSeen = time.Unix(0, js.lastSeen)
			}
			out = append(out, ji)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

// Window returns the per-job sliding-window length the monitor was built with.
func (m *Monitor) Window() int { return m.cfg.Window }

// Sensors returns the per-sample sensor count the monitor was built with.
func (m *Monitor) Sensors() int { return m.cfg.Sensors }

// Evictions returns the total number of jobs removed from the registry,
// whether by EndJob or EvictIdle.
func (m *Monitor) Evictions() uint64 { return m.evicted.Load() }

// NumJobs counts registered jobs across all shards.
func (m *Monitor) NumJobs() int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		n += len(sh.jobs)
		sh.mu.Unlock()
	}
	return n
}

// SamplesIngested returns the total number of successfully ingested samples.
func (m *Monitor) SamplesIngested() uint64 { return m.samples.Load() }

// Classifications returns the total number of per-job classifications
// produced by ticks so far.
func (m *Monitor) Classifications() uint64 { return m.classed.Load() }

// Ticks returns the number of completed ticks.
func (m *Monitor) Ticks() uint64 { return m.ticks.Load() }
