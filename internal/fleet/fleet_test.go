package fleet

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/stream"
)

const (
	testWindow  = 6
	testSensors = 3
)

// fixture builds a scaler fitted for the test window shape and a small
// random forest over the matching covariance-embedding dimension, shared by
// the equivalence tests.
func fixture(t *testing.T) (*preprocess.StandardScaler, *forest.Classifier) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	train := mat.New(40, testWindow*testSensors)
	for i := range train.Data {
		train.Data[i] = rng.NormFloat64()*3 + 5
	}
	var scaler preprocess.StandardScaler
	if _, err := scaler.FitTransform(train); err != nil {
		t.Fatal(err)
	}

	dim := preprocess.CovarianceDim(testSensors)
	x := mat.New(200, dim)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		y[i] = rng.Intn(4)
	}
	f := forest.New(forest.Config{NumTrees: 15, Bootstrap: true, Seed: 2})
	if err := f.Fit(x, y, 4); err != nil {
		t.Fatal(err)
	}
	return &scaler, f
}

// jobSamples derives a deterministic telemetry stream for one job.
func jobSamples(jobID, n int) [][]float64 {
	rng := rand.New(rand.NewSource(int64(jobID)*7919 + 3))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, testSensors)
		for c := range s {
			s[c] = rng.NormFloat64()*2 + 4
		}
		out[i] = s
	}
	return out
}

// baseline replays the samples through a fresh single-job stream.Monitor.
func baseline(t *testing.T, scaler *preprocess.StandardScaler, model stream.Classifier, samples [][]float64) *stream.Prediction {
	t.Helper()
	emb, err := stream.NewWindowedEmbedder(testWindow, testSensors, scaler)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := emb.Push(s); err != nil {
			t.Fatal(err)
		}
	}
	pred, err := (&stream.Monitor{Embedder: emb, Model: model}).Classify()
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

func assertSamePrediction(t *testing.T, jobID int, got, want *stream.Prediction) {
	t.Helper()
	if got == nil {
		t.Fatalf("job %d: no fleet prediction", jobID)
	}
	if got.Class != want.Class || got.Probability != want.Probability {
		t.Fatalf("job %d: fleet (%d, %v) vs monitor (%d, %v)",
			jobID, got.Class, got.Probability, want.Class, want.Probability)
	}
	if len(got.Probs) != len(want.Probs) {
		t.Fatalf("job %d: %d probs vs %d", jobID, len(got.Probs), len(want.Probs))
	}
	for c := range want.Probs {
		if got.Probs[c] != want.Probs[c] {
			t.Fatalf("job %d class %d: fleet %v vs monitor %v (not bit-identical)",
				jobID, c, got.Probs[c], want.Probs[c])
		}
	}
}

// TestFleetMatchesMonitorConcurrent is the core serving invariant under
// contention: ≥64 jobs ingest their telemetry simultaneously from one
// goroutine each while another goroutine ticks continuously, and every
// job's final prediction must be bit-identical to a single-job
// stream.Monitor replaying the same samples.
func TestFleetMatchesMonitorConcurrent(t *testing.T) {
	scaler, model := fixture(t)
	const jobs = 80
	const perJob = testWindow*2 + 3 // past wraparound

	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	tickErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				tickErr <- nil
				return
			default:
				if _, err := m.Tick(); err != nil {
					tickErr <- err
					return
				}
				runtime.Gosched()
			}
		}
	}()

	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for _, s := range jobSamples(j, perJob) {
				if err := m.Ingest(j, s); err != nil {
					t.Error(err)
					return
				}
			}
		}(j)
	}
	wg.Wait()
	close(stop)
	if err := <-tickErr; err != nil {
		t.Fatal(err)
	}
	// Final tick picks up anything the background ticker missed.
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}

	if n := m.NumJobs(); n != jobs {
		t.Fatalf("registry holds %d jobs, want %d", n, jobs)
	}
	if n := m.SamplesIngested(); n != uint64(jobs*perJob) {
		t.Fatalf("ingested %d samples, want %d", n, jobs*perJob)
	}
	for j := 0; j < jobs; j++ {
		got, ok := m.Prediction(j)
		if !ok {
			t.Fatalf("job %d: missing prediction", j)
		}
		assertSamePrediction(t, j, got, baseline(t, scaler, model, jobSamples(j, perJob)))
	}
}

// TestFleetOverlappingJobIDs hammers the same 64 job IDs from many
// goroutines at once. Each goroutine pushes every job's own constant sample,
// so any interleaving leaves each ring filled with that constant and the
// result stays comparable to the single-job baseline despite write races on
// the same embedders.
func TestFleetOverlappingJobIDs(t *testing.T) {
	scaler, model := fixture(t)
	const jobs = 64
	const writers = 8

	constSample := func(j int) []float64 {
		s := make([]float64, testSensors)
		for c := range s {
			s[c] = float64(j%7) + float64(c)*0.5 + 1
		}
		return s
	}

	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer visits the jobs in a different order.
			for k := 0; k < jobs; k++ {
				j := (k*13 + w*5) % jobs
				s := constSample(j)
				for i := 0; i < testWindow; i++ {
					if err := m.Ingest(j, s); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	stats, err := m.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Classified != jobs {
		t.Fatalf("tick classified %d jobs, want %d", stats.Classified, jobs)
	}
	if n := m.SamplesIngested(); n != uint64(writers*jobs*testWindow) {
		t.Fatalf("ingested %d samples, want %d", n, writers*jobs*testWindow)
	}
	for j := 0; j < jobs; j++ {
		window := make([][]float64, testWindow)
		for i := range window {
			window[i] = constSample(j)
		}
		got, ok := m.Prediction(j)
		if !ok {
			t.Fatalf("job %d: missing prediction", j)
		}
		assertSamePrediction(t, j, got, baseline(t, scaler, model, window))
	}
}

// unbatched hides forest's PredictProbaBatch so the fallback single-call
// path is exercised.
type unbatched struct{ f *forest.Classifier }

func (u unbatched) PredictProba(x *mat.Matrix) (*mat.Matrix, error) { return u.f.PredictProba(x) }

func TestFleetFallbackWithoutBatchPath(t *testing.T) {
	scaler, model := fixture(t)
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: unbatched{model}})
	if err != nil {
		t.Fatal(err)
	}
	samples := jobSamples(7, testWindow+2)
	for _, s := range samples {
		if err := m.Ingest(7, s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Prediction(7)
	if !ok {
		t.Fatal("missing prediction")
	}
	assertSamePrediction(t, 7, got, baseline(t, scaler, model, samples))
}

func TestFleetValidationAndLifecycle(t *testing.T) {
	scaler, model := fixture(t)

	if _, err := New(Config{Window: 1, Sensors: testSensors, Scaler: scaler, Model: model}); err == nil {
		t.Error("window < 2 should fail")
	}
	if _, err := New(Config{Window: testWindow, Sensors: testSensors, Model: model}); err == nil {
		t.Error("nil scaler should fail")
	}
	if _, err := New(Config{Window: testWindow, Sensors: testSensors + 1, Scaler: scaler, Model: model}); err == nil {
		t.Error("scaler shape mismatch should fail")
	}
	if _, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler}); err == nil {
		t.Error("nil model should fail")
	}

	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Ingest(1, []float64{1}); err == nil {
		t.Error("wrong sensor count should fail")
	}
	if _, ok := m.Prediction(99); ok {
		t.Error("unknown job should have no prediction")
	}

	// A job with a part-filled window is pending, not classified.
	if err := m.Ingest(1, make([]float64, testSensors)); err != nil {
		t.Fatal(err)
	}
	stats, err := m.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Classified != 0 || stats.Pending != 1 {
		t.Errorf("tick stats %+v, want 0 classified / 1 pending", stats)
	}
	if _, ok := m.Prediction(1); ok {
		t.Error("pending job should have no prediction")
	}

	// An idle fleet tick classifies nothing and counts nothing.
	before := m.Classifications()
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if m.Classifications() != before {
		t.Error("idle tick should not classify")
	}
	if m.Ticks() != 2 {
		t.Errorf("tick count %d, want 2", m.Ticks())
	}
}
