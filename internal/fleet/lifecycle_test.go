package fleet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mat"
	"repro/internal/stream"
)

// flaky wraps a classifier with an on/off failure switch, modelling a
// transient model error mid-serving (e.g. a half-rolled-out swap). It
// deliberately does not implement BatchClassifier so the fallback path is
// the one under test; wideBatch below covers the batched path.
type flaky struct {
	inner stream.Classifier
	fail  bool
}

func (f *flaky) PredictProba(x *mat.Matrix) (*mat.Matrix, error) {
	if f.fail {
		return nil, errors.New("transient model failure")
	}
	return f.inner.PredictProba(x)
}

// TestTickErrorKeepsJobsDirty is the regression test for the silent
// classification loss: a tick that fails must leave every collected job
// dirty, so the next tick re-scores it even if no new samples arrive. On
// the old code the dirty flag was cleared during batch collection, so the
// second tick found nothing to do and the pending classifications vanished.
func TestTickErrorKeepsJobsDirty(t *testing.T) {
	scaler, model := fixture(t)
	fc := &flaky{inner: model}
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: fc})
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 5
	for j := 0; j < jobs; j++ {
		for _, s := range jobSamples(j, testWindow+1) {
			if err := m.Ingest(j, s); err != nil {
				t.Fatal(err)
			}
		}
	}

	fc.fail = true
	if _, err := m.Tick(); err == nil {
		t.Fatal("tick should surface the model error")
	}
	for j := 0; j < jobs; j++ {
		if _, ok := m.Prediction(j); ok {
			t.Fatalf("job %d: prediction published despite model error", j)
		}
	}

	// No new samples arrive; the retry tick alone must recover every job.
	fc.fail = false
	stats, err := m.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Classified != jobs {
		t.Fatalf("retry tick classified %d jobs, want %d", stats.Classified, jobs)
	}
	for j := 0; j < jobs; j++ {
		got, ok := m.Prediction(j)
		if !ok {
			t.Fatalf("job %d: classification lost across transient model error", j)
		}
		assertSamePrediction(t, j, got, baseline(t, scaler, model, jobSamples(j, testWindow+1)))
	}
}

// wideBatch returns one row too many, triggering the row-count mismatch
// error path on the batched branch.
type wideBatch struct{ inner stream.Classifier }

func (w wideBatch) PredictProba(x *mat.Matrix) (*mat.Matrix, error) { return w.inner.PredictProba(x) }
func (w wideBatch) PredictProbaBatch(x *mat.Matrix) (*mat.Matrix, error) {
	p, err := w.inner.PredictProba(x)
	if err != nil {
		return nil, err
	}
	return mat.New(p.Rows+1, p.Cols), nil
}

// TestTickRowMismatchKeepsJobsDirty covers the same loss bug on the batched
// path's row-count validation: after the mismatch error, a classifier swap
// plus a plain retry tick must still classify the collected jobs.
func TestTickRowMismatchKeepsJobsDirty(t *testing.T) {
	scaler, model := fixture(t)
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: wideBatch{model}})
	if err != nil {
		t.Fatal(err)
	}
	samples := jobSamples(3, testWindow)
	for _, s := range samples {
		if err := m.Ingest(3, s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Tick(); err == nil {
		t.Fatal("tick should surface the row-count mismatch")
	}
	if err := m.SwapClassifier(model); err != nil {
		t.Fatal(err)
	}
	stats, err := m.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Classified != 1 {
		t.Fatalf("retry tick classified %d jobs, want 1", stats.Classified)
	}
	got, ok := m.Prediction(3)
	if !ok {
		t.Fatal("classification lost across row-mismatch error")
	}
	assertSamePrediction(t, 3, got, baseline(t, scaler, model, samples))
}

// TestPendingCountsAllUnfilledJobs pins the documented TickStats.Pending
// semantics: every registered job whose window has not filled is pending,
// whether or not samples arrived since the last tick. The old code checked
// the dirty flag before readiness and so undercounted non-dirty unfilled
// jobs; the second job's state is forced to that corner directly so the
// ordering stays pinned even though normal transitions rarely reach it.
func TestPendingCountsAllUnfilledJobs(t *testing.T) {
	scaler, model := fixture(t)
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}

	// Job 1: partial window, dirty.
	if err := m.Ingest(1, make([]float64, testSensors)); err != nil {
		t.Fatal(err)
	}
	// Job 2: partial window with the dirty flag lowered.
	if err := m.Ingest(2, make([]float64, testSensors)); err != nil {
		t.Fatal(err)
	}
	sh := m.shardFor(2)
	sh.mu.Lock()
	sh.jobs[2].dirty = false
	sh.mu.Unlock()

	for pass := 1; pass <= 2; pass++ {
		stats, err := m.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Pending != 2 {
			t.Fatalf("tick %d: Pending = %d, want 2 (all unfilled jobs)", pass, stats.Pending)
		}
	}
}

// TestRejectedSampleDoesNotRegister pins the registry-growth boundary at
// the ingest edge: an invalid sample must not allocate a job slot.
func TestRejectedSampleDoesNotRegister(t *testing.T) {
	scaler, model := fixture(t)
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 100; j++ {
		if err := m.Ingest(j, []float64{1}); err == nil {
			t.Fatal("wrong-width sample should be rejected")
		}
	}
	if n := m.NumJobs(); n != 0 {
		t.Fatalf("rejected samples registered %d jobs, want 0", n)
	}
}

// TestEndJobAndReRegister pins the lifecycle contract: EndJob frees the
// slot and returns the final prediction; a later sample re-registers the
// job from scratch and it classifies cleanly again.
func TestEndJobAndReRegister(t *testing.T) {
	scaler, model := fixture(t)
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	samples := jobSamples(11, testWindow)
	for _, s := range samples {
		if err := m.Ingest(11, s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}

	final, ok := m.EndJob(11)
	if !ok {
		t.Fatal("EndJob should find the registered job")
	}
	assertSamePrediction(t, 11, final, baseline(t, scaler, model, samples))
	if n := m.NumJobs(); n != 0 {
		t.Fatalf("registry holds %d jobs after EndJob, want 0", n)
	}
	if _, ok := m.Prediction(11); ok {
		t.Fatal("ended job should have no prediction")
	}
	if _, ok := m.EndJob(11); ok {
		t.Fatal("double EndJob should report an unknown job")
	}
	if got := m.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}

	// Re-ingest: the job starts over with an empty window.
	resamples := jobSamples(12, testWindow)
	for _, s := range resamples {
		if err := m.Ingest(11, s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Prediction(11)
	if !ok {
		t.Fatal("re-registered job should classify again")
	}
	assertSamePrediction(t, 11, got, baseline(t, scaler, model, resamples))
}

// TestEvictIdleShrinksRegistry pins the unbounded-growth fix: idle jobs are
// evicted, active jobs survive, and an evicted job re-registers cleanly on
// re-ingest.
func TestEvictIdleShrinksRegistry(t *testing.T) {
	scaler, model := fixture(t)
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 40
	for j := 0; j < jobs; j++ {
		for _, s := range jobSamples(j, testWindow) {
			if err := m.Ingest(j, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}

	// Nothing is a day idle: nothing goes.
	if n := m.EvictIdle(24 * time.Hour); n != 0 {
		t.Fatalf("evicted %d jobs against a 24h idle bound, want 0", n)
	}
	if n := m.NumJobs(); n != jobs {
		t.Fatalf("registry holds %d jobs, want %d", n, jobs)
	}

	// Everything already ingested is idle against a zero bound.
	if n := m.EvictIdle(0); n != jobs {
		t.Fatalf("evicted %d jobs, want %d", n, jobs)
	}
	if n := m.NumJobs(); n != 0 {
		t.Fatalf("registry holds %d jobs after eviction, want 0", n)
	}
	if got := m.Evictions(); got != jobs {
		t.Fatalf("evictions = %d, want %d", got, jobs)
	}

	// An evicted job re-registers on re-ingest and classifies again.
	samples := jobSamples(7, testWindow)
	for _, s := range samples {
		if err := m.Ingest(7, s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Prediction(7)
	if !ok {
		t.Fatal("evicted job should classify again after re-ingest")
	}
	assertSamePrediction(t, 7, got, baseline(t, scaler, model, samples))
}

// TestSnapshotView pins the read-only fleet view the serving layer's
// snapshot endpoint is built on.
func TestSnapshotView(t *testing.T) {
	scaler, model := fixture(t)
	m, err := New(Config{Window: testWindow, Sensors: testSensors, Scaler: scaler, Model: model, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot(); len(got) != 0 {
		t.Fatalf("empty fleet snapshot has %d rows", len(got))
	}

	before := time.Now()
	// Job 5: classified. Job 9: partial window.
	for _, s := range jobSamples(5, testWindow) {
		if err := m.Ingest(5, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Ingest(9, jobSamples(9, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tick(); err != nil {
		t.Fatal(err)
	}

	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].JobID != 5 || snap[1].JobID != 9 {
		t.Fatalf("snapshot = %+v, want jobs [5 9]", snap)
	}
	j5, j9 := snap[0], snap[1]
	if !j5.Ready || j5.Samples != testWindow || j5.Pred == nil {
		t.Fatalf("job 5 snapshot %+v: want ready, %d samples, a prediction", j5, testWindow)
	}
	assertSamePrediction(t, 5, j5.Pred, baseline(t, scaler, model, jobSamples(5, testWindow)))
	if j9.Ready || j9.Samples != 1 || j9.Pred != nil {
		t.Fatalf("job 9 snapshot %+v: want not ready, 1 sample, no prediction", j9)
	}
	for _, ji := range snap {
		if ji.LastSeen.Before(before) || ji.LastSeen.After(time.Now()) {
			t.Fatalf("job %d: implausible LastSeen %v", ji.JobID, ji.LastSeen)
		}
	}

	if w, s := m.Window(), m.Sensors(); w != testWindow || s != testSensors {
		t.Fatalf("monitor shape %dx%d, want %dx%d", w, s, testWindow, testSensors)
	}
}
