package tree

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func fitSmallTree(t *testing.T, seed int64) (*Classifier, *mat.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := mat.New(120, 6)
	y := make([]int, x.Rows)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y {
		if x.At(i, 0)+x.At(i, 3) > 0 {
			y[i] = rng.Intn(2)
		} else {
			y[i] = 2
		}
	}
	tr := New(Config{MaxDepth: 6, MaxFeatures: 3, Seed: seed})
	if err := tr.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	eval := mat.New(50, 6)
	for i := range eval.Data {
		eval.Data[i] = rng.NormFloat64()
	}
	return tr, eval
}

// TestCodecRoundTrip pins the tentpole invariant: Fit → Encode → Decode →
// predict is bit-identical to the in-memory tree on the same inputs.
func TestCodecRoundTrip(t *testing.T) {
	tr, eval := fitSmallTree(t, 3)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != tr.NumNodes() || got.Depth() != tr.Depth() {
		t.Fatalf("decoded %d nodes depth %d, want %d nodes depth %d",
			got.NumNodes(), got.Depth(), tr.NumNodes(), tr.Depth())
	}
	for i := 0; i < eval.Rows; i++ {
		want, err := tr.PredictProbaRow(eval.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.PredictProbaRow(eval.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		for c := range want {
			if have[c] != want[c] {
				t.Fatalf("row %d class %d: %v vs %v (not bit-identical)", i, c, have[c], want[c])
			}
		}
	}
	wantImp := tr.FeatureImportances()
	for i, v := range got.FeatureImportances() {
		if v != wantImp[i] {
			t.Fatalf("importance %d: %v vs %v", i, v, wantImp[i])
		}
	}
}

func TestEncodeUnfitted(t *testing.T) {
	if err := New(DefaultConfig()).Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("encoding an unfitted tree should fail")
	}
}

func TestDecodeRejectsCorruptNodes(t *testing.T) {
	tr, _ := fitSmallTree(t, 5)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncations never panic and always error.
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}
