package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// xorData builds the classic XOR problem no single split can solve.
func xorData() (*mat.Matrix, []int) {
	x, _ := mat.FromRows([][]float64{
		{0, 0}, {0, 1}, {1, 0}, {1, 1},
		{0.1, 0.1}, {0.1, 0.9}, {0.9, 0.1}, {0.9, 0.9},
	})
	y := []int{0, 1, 1, 0, 0, 1, 1, 0}
	return x, y
}

func TestFitPredictSeparable(t *testing.T) {
	x, _ := mat.FromRows([][]float64{{1}, {2}, {3}, {10}, {11}, {12}})
	y := []int{0, 0, 0, 1, 1, 1}
	tr := New(DefaultConfig())
	if err := tr.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	pred, err := tr.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pred {
		if p != y[i] {
			t.Errorf("sample %d predicted %d, want %d", i, p, y[i])
		}
	}
}

func TestFitXOR(t *testing.T) {
	x, y := xorData()
	tr := New(DefaultConfig())
	if err := tr.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	pred, _ := tr.Predict(x)
	for i, p := range pred {
		if p != y[i] {
			t.Errorf("XOR sample %d predicted %d, want %d", i, p, y[i])
		}
	}
	if tr.Depth() < 2 {
		t.Errorf("XOR needs depth ≥ 2, got %d", tr.Depth())
	}
}

func TestMaxDepthLimitsTree(t *testing.T) {
	x, y := xorData()
	tr := New(Config{MaxDepth: 1, MinSamplesSplit: 2, MinSamplesLeaf: 1})
	if err := tr.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 1 {
		t.Errorf("depth %d exceeds MaxDepth 1", tr.Depth())
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	x, _ := mat.FromRows([][]float64{{1}, {2}, {3}, {4}, {5}, {6}})
	y := []int{0, 0, 0, 1, 1, 1}
	tr := New(Config{MinSamplesSplit: 2, MinSamplesLeaf: 3})
	if err := tr.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	// With leaf ≥ 3 only the 3/3 split is legal.
	pred, _ := tr.Predict(x)
	acc := 0
	for i, p := range pred {
		if p == y[i] {
			acc++
		}
	}
	if acc != 6 {
		t.Errorf("expected perfect 3/3 split, got %d/6", acc)
	}
}

func TestPredictProbaRow(t *testing.T) {
	x, _ := mat.FromRows([][]float64{{0}, {0}, {1}})
	y := []int{0, 1, 1}
	tr := New(Config{MaxDepth: 1, MinSamplesSplit: 2, MinSamplesLeaf: 1})
	if err := tr.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	p, err := tr.PredictProbaRow([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Errorf("left leaf probs = %v, want [0.5 0.5]", p)
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probs sum to %v", sum)
	}
}

func TestErrors(t *testing.T) {
	tr := New(DefaultConfig())
	x := mat.New(3, 2)
	if err := tr.Fit(x, []int{0, 1}, 2); err == nil {
		t.Error("label length mismatch should fail")
	}
	if err := tr.Fit(x, []int{0, 1, 5}, 2); err == nil {
		t.Error("out-of-range label should fail")
	}
	if err := tr.Fit(x, []int{0, 0, 0}, 1); err == nil {
		t.Error("single class count should fail")
	}
	if err := tr.FitIndices(x, []int{0, 0, 1}, nil, 2); err == nil {
		t.Error("empty index set should fail")
	}
	if err := tr.FitIndices(x, []int{0, 0, 1}, []int{9}, 2); err == nil {
		t.Error("bad index should fail")
	}
	if _, err := tr.PredictProbaRow([]float64{1, 2}); err == nil {
		t.Error("predict before fit should fail")
	}
	if err := tr.Fit(x, []int{0, 1, 0}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.PredictProbaRow([]float64{1}); err == nil {
		t.Error("wrong feature count should fail")
	}
}

func TestFitIndicesBootstrap(t *testing.T) {
	// Fitting on a repeated subset must only see those samples.
	x, _ := mat.FromRows([][]float64{{0}, {1}, {2}, {100}})
	y := []int{0, 0, 0, 1}
	tr := New(DefaultConfig())
	// Bootstrap without the outlier: prediction for 100 should be class 0.
	if err := tr.FitIndices(x, y, []int{0, 1, 2, 2, 1, 0}, 2); err != nil {
		t.Fatal(err)
	}
	p, _ := tr.PredictProbaRow([]float64{100})
	if mat.ArgMax(p) != 0 {
		t.Errorf("bootstrap leaked unseen sample: probs %v", p)
	}
}

func TestFeatureImportances(t *testing.T) {
	// Only feature 1 carries signal.
	rng := rand.New(rand.NewSource(4))
	n := 200
	x := mat.New(n, 3)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
		sig := rng.Float64()
		x.Set(i, 1, sig)
		x.Set(i, 2, rng.Float64())
		if sig > 0.5 {
			y[i] = 1
		}
	}
	tr := New(DefaultConfig())
	if err := tr.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportances()
	if imp[1] < 0.8 {
		t.Errorf("informative feature importance %v, want > 0.8 (all: %v)", imp[1], imp)
	}
	sum := imp[0] + imp[1] + imp[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v", sum)
	}
}

func TestMaxFeaturesSubsampling(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 100
	x := mat.New(n, 10)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 10; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		if x.At(i, 0) > 0 {
			y[i] = 1
		}
	}
	tr := New(Config{MaxFeatures: 2, MinSamplesSplit: 2, MinSamplesLeaf: 1, Seed: 3})
	if err := tr.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	// Subsampled trees still fit; accuracy on train should be high because
	// the tree can split on feature 0 at some depth.
	pred, _ := tr.Predict(x)
	correct := 0
	for i, p := range pred {
		if p == y[i] {
			correct++
		}
	}
	if correct < 95 {
		t.Errorf("train accuracy %d/100 with feature subsampling", correct)
	}
}

// TestTrainAccuracyPerfectWhenUnconstrained property: an unpruned CART tree
// must perfectly fit any consistent training set (no duplicate rows with
// different labels).
func TestTrainAccuracyPerfectWhenUnconstrained(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(40)
		k := 2 + rng.Intn(3)
		x := mat.New(n, 3)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			for j := 0; j < 3; j++ {
				x.Set(i, j, rng.NormFloat64())
			}
			y[i] = rng.Intn(k)
		}
		tr := New(DefaultConfig())
		if err := tr.Fit(x, y, k); err != nil {
			return false
		}
		pred, err := tr.Predict(x)
		if err != nil {
			return false
		}
		for i := range pred {
			if pred[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDeterminismWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 80
	x := mat.New(n, 5)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 5; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = i % 3
	}
	cfg := Config{MaxFeatures: 2, Seed: 77, MinSamplesSplit: 2, MinSamplesLeaf: 1}
	t1, t2 := New(cfg), New(cfg)
	if err := t1.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	if err := t2.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	p1, _ := t1.Predict(x)
	p2, _ := t2.Predict(x)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different trees")
		}
	}
}
