// Package tree implements CART decision-tree classification: exact greedy
// splits on the Gini criterion with optional per-node feature subsampling.
// It is the base learner for internal/forest and deliberately matches the
// semantics of scikit-learn's DecisionTreeClassifier as used by the paper's
// RandomForestClassifier baseline.
package tree

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/mat"
)

// Config controls tree growth.
type Config struct {
	// MaxDepth limits tree depth (0 = unlimited).
	MaxDepth int
	// MinSamplesSplit is the minimum node size eligible for splitting.
	MinSamplesSplit int
	// MinSamplesLeaf is the minimum samples each child must keep.
	MinSamplesLeaf int
	// MaxFeatures is the number of features sampled per node
	// (0 = all features, the plain CART behaviour).
	MaxFeatures int
	// Seed drives feature subsampling.
	Seed int64
}

// DefaultConfig grows an unpruned CART tree.
func DefaultConfig() Config {
	return Config{MinSamplesSplit: 2, MinSamplesLeaf: 1}
}

type node struct {
	feature   int
	threshold float64
	left      int
	right     int
	leaf      bool
	probs     []float64
}

// Classifier is a fitted decision tree.
type Classifier struct {
	cfg        Config
	nodes      []node
	numClasses int
	numFeats   int
	importance []float64
}

// New returns an unfitted tree with the given config.
func New(cfg Config) *Classifier {
	if cfg.MinSamplesSplit < 2 {
		cfg.MinSamplesSplit = 2
	}
	if cfg.MinSamplesLeaf < 1 {
		cfg.MinSamplesLeaf = 1
	}
	return &Classifier{cfg: cfg}
}

// Fit grows the tree on all rows of x.
func (t *Classifier) Fit(x *mat.Matrix, y []int, numClasses int) error {
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	return t.FitIndices(x, y, idx, numClasses)
}

// FitIndices grows the tree on the given row subset (possibly with
// repetition — forests pass bootstrap samples this way).
func (t *Classifier) FitIndices(x *mat.Matrix, y []int, idx []int, numClasses int) error {
	if x.Rows != len(y) {
		return fmt.Errorf("tree: %d rows vs %d labels", x.Rows, len(y))
	}
	if len(idx) == 0 {
		return errors.New("tree: empty training subset")
	}
	if numClasses < 2 {
		return fmt.Errorf("tree: need at least 2 classes, got %d", numClasses)
	}
	for _, i := range idx {
		if i < 0 || i >= x.Rows {
			return fmt.Errorf("tree: index %d out of range", i)
		}
		if y[i] < 0 || y[i] >= numClasses {
			return fmt.Errorf("tree: label %d out of range [0,%d)", y[i], numClasses)
		}
	}
	t.numClasses = numClasses
	t.numFeats = x.Cols
	t.nodes = t.nodes[:0]
	t.importance = make([]float64, x.Cols)
	rng := rand.New(rand.NewSource(t.cfg.Seed))
	own := make([]int, len(idx))
	copy(own, idx)
	t.grow(x, y, own, 0, rng, float64(len(idx)))
	return nil
}

// grow builds the subtree for the samples in idx and returns its node id.
func (t *Classifier) grow(x *mat.Matrix, y []int, idx []int, depth int, rng *rand.Rand, rootN float64) int {
	counts := make([]float64, t.numClasses)
	for _, i := range idx {
		counts[y[i]]++
	}
	n := float64(len(idx))
	gini := giniImpurity(counts, n)

	id := len(t.nodes)
	t.nodes = append(t.nodes, node{})

	if gini == 0 || len(idx) < t.cfg.MinSamplesSplit ||
		(t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth) {
		t.makeLeaf(id, counts, n)
		return id
	}

	feat, thresh, gain, ok := t.bestSplit(x, y, idx, counts, gini, rng)
	if !ok {
		t.makeLeaf(id, counts, n)
		return id
	}

	var left, right []int
	for _, i := range idx {
		if x.At(i, feat) <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.cfg.MinSamplesLeaf || len(right) < t.cfg.MinSamplesLeaf {
		t.makeLeaf(id, counts, n)
		return id
	}

	t.importance[feat] += gain * n / rootN

	l := t.grow(x, y, left, depth+1, rng, rootN)
	r := t.grow(x, y, right, depth+1, rng, rootN)
	t.nodes[id] = node{feature: feat, threshold: thresh, left: l, right: r}
	return id
}

func (t *Classifier) makeLeaf(id int, counts []float64, n float64) {
	probs := make([]float64, len(counts))
	for c, v := range counts {
		probs[c] = v / n
	}
	t.nodes[id] = node{leaf: true, probs: probs}
}

// bestSplit scans candidate features for the split maximising Gini gain.
func (t *Classifier) bestSplit(x *mat.Matrix, y []int, idx []int, counts []float64, parentGini float64, rng *rand.Rand) (feat int, thresh, gain float64, ok bool) {
	feats := t.candidateFeatures(rng)
	n := float64(len(idx))

	sorted := make([]int, len(idx))
	leftCounts := make([]float64, t.numClasses)
	// Zero-gain splits are accepted (matching scikit-learn's
	// min_impurity_decrease=0); XOR-like problems need them because the
	// root split only pays off deeper down.
	bestGain := -1.0

	for _, f := range feats {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return x.At(sorted[a], f) < x.At(sorted[b], f) })
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		var nl float64
		for k := 0; k < len(sorted)-1; k++ {
			i := sorted[k]
			leftCounts[y[i]]++
			nl++
			v, next := x.At(i, f), x.At(sorted[k+1], f)
			if v == next {
				continue
			}
			if int(nl) < t.cfg.MinSamplesLeaf || len(sorted)-int(nl) < t.cfg.MinSamplesLeaf {
				continue
			}
			nr := n - nl
			gl := giniFromLeft(leftCounts, counts, nl, nr)
			g := parentGini - (nl*gl.left+nr*gl.right)/n
			if g > bestGain {
				bestGain = g
				feat = f
				thresh = (v + next) / 2
				ok = true
			}
		}
	}
	return feat, thresh, bestGain, ok
}

type giniPair struct{ left, right float64 }

// giniFromLeft computes child impurities from left counts and totals.
func giniFromLeft(leftCounts, total []float64, nl, nr float64) giniPair {
	var sl, sr float64
	for c, lc := range leftCounts {
		rc := total[c] - lc
		sl += lc * lc
		sr += rc * rc
	}
	var g giniPair
	if nl > 0 {
		g.left = 1 - sl/(nl*nl)
	}
	if nr > 0 {
		g.right = 1 - sr/(nr*nr)
	}
	return g
}

func giniImpurity(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	var s float64
	for _, c := range counts {
		s += c * c
	}
	return 1 - s/(n*n)
}

// candidateFeatures returns the features considered at one node.
func (t *Classifier) candidateFeatures(rng *rand.Rand) []int {
	k := t.cfg.MaxFeatures
	if k <= 0 || k >= t.numFeats {
		all := make([]int, t.numFeats)
		for i := range all {
			all[i] = i
		}
		return all
	}
	perm := rng.Perm(t.numFeats)
	return perm[:k]
}

// PredictProbaRow returns the leaf class distribution for one feature row.
func (t *Classifier) PredictProbaRow(row []float64) ([]float64, error) {
	if len(t.nodes) == 0 {
		return nil, errors.New("tree: not fitted")
	}
	if len(row) != t.numFeats {
		return nil, fmt.Errorf("tree: row has %d features, fitted on %d", len(row), t.numFeats)
	}
	id := 0
	for !t.nodes[id].leaf {
		nd := &t.nodes[id]
		if row[nd.feature] <= nd.threshold {
			id = nd.left
		} else {
			id = nd.right
		}
	}
	return t.nodes[id].probs, nil
}

// Predict labels every row of x.
func (t *Classifier) Predict(x *mat.Matrix) ([]int, error) {
	out := make([]int, x.Rows)
	for i := 0; i < x.Rows; i++ {
		p, err := t.PredictProbaRow(x.Row(i))
		if err != nil {
			return nil, err
		}
		out[i] = mat.ArgMax(p)
	}
	return out, nil
}

// FeatureImportances returns normalised Gini importances (summing to 1 when
// any split exists).
func (t *Classifier) FeatureImportances() []float64 {
	out := make([]float64, len(t.importance))
	var total float64
	for _, v := range t.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range t.importance {
		out[i] = v / total
	}
	return out
}

// NumNodes reports the tree size (diagnostics and tests).
func (t *Classifier) NumNodes() int { return len(t.nodes) }

// NumClasses reports the class count the tree was fitted for.
func (t *Classifier) NumClasses() int { return t.numClasses }

// NumFeatures reports the feature count the tree was fitted for.
func (t *Classifier) NumFeatures() int { return t.numFeats }

// Depth returns the maximum depth of the fitted tree.
func (t *Classifier) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var walk func(id int) int
	walk = func(id int) int {
		nd := &t.nodes[id]
		if nd.leaf {
			return 0
		}
		l, r := walk(nd.left), walk(nd.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}
