package tree

// ExportNode is one fitted node in codec-independent export form, used by
// internal/forest to compile trees into its flat contiguous inference
// layout. Probs aliases the tree's own leaf distribution — treat it as
// read-only.
type ExportNode struct {
	Feature   int
	Threshold float64
	Left      int
	Right     int
	Leaf      bool
	Probs     []float64
}

// ExportNodes returns the fitted node array (root at index 0) in export
// form. Children always point to higher indices — grow() lays subtrees out
// after their parent and Decode enforces the same invariant — so consumers
// may relayout without cycle checks. Returns nil on an unfitted tree.
func (t *Classifier) ExportNodes() []ExportNode {
	if len(t.nodes) == 0 {
		return nil
	}
	out := make([]ExportNode, len(t.nodes))
	for i := range t.nodes {
		nd := &t.nodes[i]
		out[i] = ExportNode{
			Feature:   nd.feature,
			Threshold: nd.threshold,
			Left:      nd.left,
			Right:     nd.right,
			Leaf:      nd.leaf,
			Probs:     nd.probs,
		}
	}
	return out
}
