package tree

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/wire"
)

// codecVersion is the tree payload format; bump on incompatible layout
// changes so old readers fail descriptively instead of misloading.
const codecVersion = 1

// Encode serialises the fitted tree: config, shape, the node array, and the
// accumulated Gini importances. Decode restores a tree whose predictions are
// bit-identical to the original.
func (t *Classifier) Encode(w io.Writer) error {
	if len(t.nodes) == 0 {
		return errors.New("tree: cannot encode an unfitted tree")
	}
	ww := wire.NewWriter(w)
	ww.U16(codecVersion)
	ww.Int(t.cfg.MaxDepth)
	ww.Int(t.cfg.MinSamplesSplit)
	ww.Int(t.cfg.MinSamplesLeaf)
	ww.Int(t.cfg.MaxFeatures)
	ww.I64(t.cfg.Seed)
	ww.Int(t.numClasses)
	ww.Int(t.numFeats)
	ww.Int(len(t.nodes))
	for i := range t.nodes {
		nd := &t.nodes[i]
		ww.Bool(nd.leaf)
		if nd.leaf {
			ww.F64s(nd.probs)
		} else {
			ww.Int(nd.feature)
			ww.F64(nd.threshold)
			ww.Int(nd.left)
			ww.Int(nd.right)
		}
	}
	ww.F64s(t.importance)
	return ww.Err()
}

// Decode reads a tree previously written by Encode, validating node indices
// and distribution shapes so corrupted input errors instead of panicking at
// prediction time.
func Decode(r io.Reader) (*Classifier, error) {
	rr := wire.NewReader(r)
	if v := rr.U16(); rr.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("tree: unsupported codec version %d (this build reads %d)", v, codecVersion)
	}
	t := &Classifier{}
	t.cfg.MaxDepth = rr.Int()
	t.cfg.MinSamplesSplit = rr.Int()
	t.cfg.MinSamplesLeaf = rr.Int()
	t.cfg.MaxFeatures = rr.Int()
	t.cfg.Seed = rr.I64()
	t.numClasses = rr.Int()
	t.numFeats = rr.Int()
	numNodes := rr.Int()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if t.numClasses < 2 || t.numFeats < 1 || numNodes < 1 || numNodes > 1<<27 {
		return nil, fmt.Errorf("tree: corrupt header (%d classes, %d features, %d nodes)", t.numClasses, t.numFeats, numNodes)
	}
	t.nodes = make([]node, numNodes)
	for i := range t.nodes {
		nd := &t.nodes[i]
		nd.leaf = rr.Bool()
		if nd.leaf {
			nd.probs = rr.F64s()
			if rr.Err() == nil && len(nd.probs) != t.numClasses {
				return nil, fmt.Errorf("tree: node %d has %d class probabilities, want %d", i, len(nd.probs), t.numClasses)
			}
		} else {
			nd.feature = rr.Int()
			nd.threshold = rr.F64()
			nd.left = rr.Int()
			nd.right = rr.Int()
			if rr.Err() == nil {
				if nd.feature < 0 || nd.feature >= t.numFeats {
					return nil, fmt.Errorf("tree: node %d splits on feature %d of %d", i, nd.feature, t.numFeats)
				}
				// Children must point forward to preserve the array layout
				// grow() produces; this also rules out traversal cycles.
				if nd.left <= i || nd.left >= numNodes || nd.right <= i || nd.right >= numNodes {
					return nil, fmt.Errorf("tree: node %d has out-of-range children (%d, %d)", i, nd.left, nd.right)
				}
			}
		}
	}
	t.importance = rr.F64s()
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if len(t.importance) != t.numFeats {
		return nil, fmt.Errorf("tree: %d importances for %d features", len(t.importance), t.numFeats)
	}
	return t, nil
}
