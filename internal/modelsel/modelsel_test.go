package modelsel

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestKFoldPartition(t *testing.T) {
	folds, err := KFold(10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		for _, i := range f.ValIdx {
			seen[i]++
		}
		if len(f.TrainIdx)+len(f.ValIdx) != 10 {
			t.Errorf("fold sizes %d+%d != 10", len(f.TrainIdx), len(f.ValIdx))
		}
		for _, i := range f.TrainIdx {
			for _, j := range f.ValIdx {
				if i == j {
					t.Fatalf("index %d in both train and val", i)
				}
			}
		}
	}
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Errorf("sample %d in %d validation folds", i, seen[i])
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	if _, err := KFold(5, 1, 1); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := KFold(3, 5, 1); err == nil {
		t.Error("k>n should fail")
	}
}

func TestStratifiedKFoldBalance(t *testing.T) {
	// 40 of class 0, 10 of class 1 → each of 5 folds gets exactly 2 of
	// class 1.
	y := make([]int, 50)
	for i := 40; i < 50; i++ {
		y[i] = 1
	}
	folds, err := StratifiedKFold(y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for f, fold := range folds {
		minority := 0
		for _, i := range fold.ValIdx {
			if y[i] == 1 {
				minority++
			}
		}
		if minority != 2 {
			t.Errorf("fold %d holds %d minority samples, want 2", f, minority)
		}
	}
}

// TestStratifiedKFoldPartitionProperty checks that every sample appears in
// exactly one validation fold for random label vectors.
func TestStratifiedKFoldPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		k := 2 + rng.Intn(4)
		y := make([]int, n)
		for i := range y {
			y[i] = rng.Intn(4)
		}
		folds, err := StratifiedKFold(y, k, seed)
		if err != nil {
			return false
		}
		seen := make([]int, n)
		for _, fold := range folds {
			for _, i := range fold.ValIdx {
				seen[i]++
			}
			if len(fold.TrainIdx)+len(fold.ValIdx) != n {
				return false
			}
		}
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// nearestCentroid is a tiny deterministic model for testing the harness.
func nearestCentroid(trainX *mat.Matrix, trainY []int, testX *mat.Matrix) ([]int, error) {
	classes := map[int][]float64{}
	counts := map[int]float64{}
	for i := 0; i < trainX.Rows; i++ {
		c := trainY[i]
		if classes[c] == nil {
			classes[c] = make([]float64, trainX.Cols)
		}
		for j, v := range trainX.Row(i) {
			classes[c][j] += v
		}
		counts[c]++
	}
	for c := range classes {
		for j := range classes[c] {
			classes[c][j] /= counts[c]
		}
	}
	out := make([]int, testX.Rows)
	for i := 0; i < testX.Rows; i++ {
		best, bestD := -1, math.Inf(1)
		for c, cent := range classes {
			var d float64
			for j, v := range testX.Row(i) {
				diff := v - cent[j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		out[i] = best
	}
	return out, nil
}

func separableData(n int, seed int64) (*mat.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := mat.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		x.Set(i, 0, float64(c)*6+rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		y[i] = c
	}
	return x, y
}

func TestCrossValScore(t *testing.T) {
	x, y := separableData(60, 2)
	folds, err := StratifiedKFold(y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	mean, scores, err := CrossValScore(nearestCentroid, x, y, folds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 5 {
		t.Fatalf("got %d scores", len(scores))
	}
	if mean < 0.95 {
		t.Errorf("mean CV accuracy %v on separable data", mean)
	}
}

func TestCrossValScorePropagatesErrors(t *testing.T) {
	failing := func(_ *mat.Matrix, _ []int, _ *mat.Matrix) ([]int, error) {
		return nil, errors.New("boom")
	}
	x, y := separableData(20, 3)
	folds, _ := KFold(20, 4, 1)
	if _, _, err := CrossValScore(failing, x, y, folds, 0); err == nil {
		t.Error("fold errors must propagate")
	}
}

func TestGridSearchPicksInformedModel(t *testing.T) {
	x, y := separableData(80, 5)
	random := func(trainX *mat.Matrix, trainY []int, testX *mat.Matrix) ([]int, error) {
		rng := rand.New(rand.NewSource(9))
		out := make([]int, testX.Rows)
		for i := range out {
			out[i] = rng.Intn(2)
		}
		return out, nil
	}
	gs := &GridSearch{Folds: 4, Stratify: true, Seed: 1}
	results, best, err := gs.Run([]Candidate{
		{Name: "random", Fit: random},
		{Name: "centroid", Fit: nearestCentroid},
	}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if best.Name != "centroid" {
		t.Errorf("grid search picked %q", best.Name)
	}
	if results[0].Name != "centroid" || results[0].MeanScore < results[1].MeanScore {
		t.Errorf("results not sorted: %+v", results)
	}
}

func TestGridSearchErrors(t *testing.T) {
	gs := &GridSearch{Folds: 3}
	if _, _, err := gs.Run(nil, mat.New(5, 1), []int{0, 1, 0, 1, 0}); err == nil {
		t.Error("no candidates should fail")
	}
	if _, _, err := gs.Run([]Candidate{{Name: "c", Fit: nearestCentroid}}, mat.New(2, 1), []int{0, 1}); err == nil {
		t.Error("k>n should fail")
	}
}
