// Package modelsel implements the paper's model-selection protocol: k-fold
// cross-validated grid search (10-fold for SVM/RF, 5-fold for XGBoost) over
// named hyper-parameter candidates, with fold evaluation parallelised on a
// bounded worker pool.
package modelsel

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/mat"
	"repro/internal/metrics"
)

// FitPredictor trains a fresh model on (trainX, trainY) and labels testX.
// Each invocation must be independent — grid search calls it once per fold.
type FitPredictor func(trainX *mat.Matrix, trainY []int, testX *mat.Matrix) ([]int, error)

// Fold is one cross-validation split.
type Fold struct {
	TrainIdx []int
	ValIdx   []int
}

// KFold produces k contiguous folds over a shuffled range of n samples.
func KFold(n, k int, seed int64) ([]Fold, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("modelsel: k=%d invalid for n=%d", k, n)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		val := append([]int{}, perm[lo:hi]...)
		train := make([]int, 0, n-len(val))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		folds[f] = Fold{TrainIdx: train, ValIdx: val}
	}
	return folds, nil
}

// StratifiedKFold assigns each class's samples round-robin to folds so every
// fold preserves class proportions — important for the challenge's rare GNN
// classes.
func StratifiedKFold(y []int, k int, seed int64) ([]Fold, error) {
	n := len(y)
	if k < 2 || k > n {
		return nil, fmt.Errorf("modelsel: k=%d invalid for n=%d", k, n)
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := map[int][]int{}
	for i, v := range y {
		byClass[v] = append(byClass[v], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)

	assign := make([]int, n) // sample → fold
	next := 0
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for _, i := range idx {
			assign[i] = next % k
			next++
		}
	}
	folds := make([]Fold, k)
	for i, f := range assign {
		folds[f].ValIdx = append(folds[f].ValIdx, i)
	}
	for f := range folds {
		inVal := make(map[int]bool, len(folds[f].ValIdx))
		for _, i := range folds[f].ValIdx {
			inVal[i] = true
		}
		for i := 0; i < n; i++ {
			if !inVal[i] {
				folds[f].TrainIdx = append(folds[f].TrainIdx, i)
			}
		}
	}
	return folds, nil
}

// selectRows gathers matrix rows and labels for the given indices.
func selectRows(x *mat.Matrix, y []int, idx []int) (*mat.Matrix, []int) {
	sub := mat.New(len(idx), x.Cols)
	labels := make([]int, len(idx))
	for k, i := range idx {
		copy(sub.Row(k), x.Row(i))
		labels[k] = y[i]
	}
	return sub, labels
}

// CrossValScore evaluates one candidate over the folds, returning the mean
// accuracy and per-fold scores. Folds run concurrently.
func CrossValScore(fp FitPredictor, x *mat.Matrix, y []int, folds []Fold, workers int) (float64, []float64, error) {
	if len(folds) == 0 {
		return 0, nil, errors.New("modelsel: no folds")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scores := make([]float64, len(folds))
	errs := make([]error, len(folds))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for f := range folds {
		wg.Add(1)
		sem <- struct{}{}
		go func(f int) {
			defer wg.Done()
			defer func() { <-sem }()
			trainX, trainY := selectRows(x, y, folds[f].TrainIdx)
			valX, valY := selectRows(x, y, folds[f].ValIdx)
			pred, err := fp(trainX, trainY, valX)
			if err != nil {
				errs[f] = err
				return
			}
			acc, err := metrics.Accuracy(valY, pred)
			if err != nil {
				errs[f] = err
				return
			}
			scores[f] = acc
		}(f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	return sum / float64(len(scores)), scores, nil
}

// Candidate is one grid point: a human-readable name plus a factory.
type Candidate struct {
	Name string
	Fit  FitPredictor
}

// GridResult records one candidate's cross-validation outcome.
type GridResult struct {
	Name       string
	MeanScore  float64
	FoldScores []float64
}

// GridSearch runs cross-validated selection over candidates.
type GridSearch struct {
	// Folds is the CV fold count (the paper: 10 for SVM/RF, 5 for XGBoost).
	Folds int
	// Stratify selects StratifiedKFold over plain KFold.
	Stratify bool
	// Workers bounds fold parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed drives fold assignment.
	Seed int64
}

// Run scores every candidate and returns the results (best first) plus the
// winning candidate.
func (g *GridSearch) Run(candidates []Candidate, x *mat.Matrix, y []int) ([]GridResult, *Candidate, error) {
	if len(candidates) == 0 {
		return nil, nil, errors.New("modelsel: no candidates")
	}
	var folds []Fold
	var err error
	if g.Stratify {
		folds, err = StratifiedKFold(y, g.Folds, g.Seed)
	} else {
		folds, err = KFold(len(y), g.Folds, g.Seed)
	}
	if err != nil {
		return nil, nil, err
	}
	results := make([]GridResult, len(candidates))
	for i, cand := range candidates {
		mean, scores, err := CrossValScore(cand.Fit, x, y, folds, g.Workers)
		if err != nil {
			return nil, nil, fmt.Errorf("modelsel: candidate %q: %w", cand.Name, err)
		}
		results[i] = GridResult{Name: cand.Name, MeanScore: mean, FoldScores: scores}
	}
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return results[order[a]].MeanScore > results[order[b]].MeanScore
	})
	sorted := make([]GridResult, len(results))
	for i, o := range order {
		sorted[i] = results[o]
	}
	best := candidates[order[0]]
	return sorted, &best, nil
}
