package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/telemetry"
)

// Table6Spec identifies one RNN baseline row of the paper's Table VI.
type Table6Spec struct {
	// PaperHidden is the hidden size the paper used (128/256/512); the
	// preset's HiddenScale divides it.
	PaperHidden int
	Layers      int // 1 or 2 (BiLSTM only)
	CNN         bool
	SmallKernel bool
}

// PaperName renders the row label exactly as Table VI prints it.
func (s Table6Spec) PaperName() string {
	switch {
	case s.CNN && s.SmallKernel:
		return fmt.Sprintf("CNN-LSTM (h=%d, small kernel)", s.PaperHidden)
	case s.CNN:
		return fmt.Sprintf("CNN-LSTM (h=%d)", s.PaperHidden)
	case s.Layers == 2:
		return fmt.Sprintf("LSTM (h=%d, 2-layer)", s.PaperHidden)
	default:
		return fmt.Sprintf("LSTM (h=%d)", s.PaperHidden)
	}
}

// Table6Specs lists the six models in the paper's row order.
var Table6Specs = []Table6Spec{
	{PaperHidden: 128, Layers: 1},
	{PaperHidden: 128, Layers: 2},
	{PaperHidden: 128, Layers: 1, CNN: true},
	{PaperHidden: 256, Layers: 1, CNN: true},
	{PaperHidden: 512, Layers: 1, CNN: true},
	{PaperHidden: 512, Layers: 1, CNN: true, SmallKernel: true},
}

// table6Datasets are the three datasets the paper trains RNNs on.
var table6Datasets = []string{"60-start-1", "60-middle-1", "60-random-1"}

// Table6Cell is one (model, dataset) outcome.
type Table6Cell struct {
	TestAccuracy float64
	BestValAcc   float64
	Epochs       int
	EarlyStopped bool
}

// Table6Result maps model name → dataset name → cell.
type Table6Result struct {
	Cells    map[string]map[string]Table6Cell
	Models   []string
	Datasets []string
}

// RunTable6 reproduces Table VI: the six Section V architectures trained on
// the start, middle and random-1 datasets with standardisation only, Adam,
// a cyclical cosine LR schedule and early stopping on validation accuracy.
func RunTable6(sim *telemetry.Simulator, p Preset, logf func(string, ...any)) (*Table6Result, error) {
	res := &Table6Result{Cells: map[string]map[string]Table6Cell{}}
	for _, spec := range Table6Specs {
		res.Models = append(res.Models, spec.PaperName())
		res.Cells[spec.PaperName()] = map[string]Table6Cell{}
	}
	res.Datasets = table6Datasets

	scale := p.RNN.HiddenScale
	if scale < 1 {
		scale = 1
	}

	for _, dsName := range table6Datasets {
		spec, ok := dataset.SpecByName(dsName)
		if !ok {
			return nil, fmt.Errorf("core: dataset %s missing", dsName)
		}
		capped := p
		capped.MaxTrain = p.RNN.MaxTrain
		capped.MaxTest = p.RNN.MaxTest
		ch, err := BuildDataset(sim, spec, capped)
		if err != nil {
			return nil, err
		}

		// Standardise per the paper (no other preprocessing), then reshape
		// back to sequences, optionally downsampled for the scaled presets.
		trainZ, testZ, _, err := standardised(ch)
		if err != nil {
			return nil, err
		}
		trainT := tensorFromFlat(trainZ, ch.Train.X.T, ch.Train.X.C).Downsample(p.RNN.Stride)
		testT := tensorFromFlat(testZ, ch.Test.X.T, ch.Test.X.C).Downsample(p.RNN.Stride)
		seqLen := trainT.T
		numClasses := int(telemetry.NumClasses)

		for _, ms := range Table6Specs {
			hidden := ms.PaperHidden / scale
			if hidden < 4 {
				hidden = 4
			}
			var model nn.SequenceClassifier
			if ms.CNN {
				model, err = nn.NewCNNLSTMClassifier(trainT.C, seqLen, numClasses, nn.CNNLSTMOptions{
					Hidden: hidden, SmallKernel: ms.SmallKernel, Seed: p.Seed,
				})
			} else {
				model, err = nn.NewBiLSTMClassifier(trainT.C, hidden, seqLen, numClasses, ms.Layers, p.Seed)
			}
			if err != nil {
				return nil, fmt.Errorf("core: building %s: %w", ms.PaperName(), err)
			}

			cfg := nn.TrainConfig{
				Epochs:      p.RNN.Epochs,
				BatchSize:   p.RNN.BatchSize,
				LRMax:       p.RNN.LRMax,
				LRMin:       p.RNN.LRMin,
				CycleEpochs: p.RNN.CycleEpochs,
				Patience:    p.RNN.Patience,
				ValFrac:     0.15,
				MaxGradNorm: 5,
				Seed:        p.Seed,
			}
			tr, err := nn.Train(model, trainT, ch.Train.Y, cfg)
			if err != nil {
				return nil, fmt.Errorf("core: training %s on %s: %w", ms.PaperName(), dsName, err)
			}
			pred, err := nn.Predict(model, testT, nil, cfg.BatchSize)
			if err != nil {
				return nil, err
			}
			acc, err := metrics.Accuracy(ch.Test.Y, pred)
			if err != nil {
				return nil, err
			}
			res.Cells[ms.PaperName()][dsName] = Table6Cell{
				TestAccuracy: acc,
				BestValAcc:   tr.BestValAcc,
				Epochs:       len(tr.History),
				EarlyStopped: tr.EarlyStopped,
			}
			if logf != nil {
				logf("table6 %-12s %-32s acc=%.4f (val %.4f, %d epochs)",
					dsName, ms.PaperName(), acc, tr.BestValAcc, len(tr.History))
			}
		}
	}
	return res, nil
}

// tensorFromFlat reshapes a flattened standardised matrix (n×(T·C)) back to
// a sequence tensor.
func tensorFromFlat(z *mat.Matrix, t, c int) *dataset.Tensor3 {
	out := dataset.NewTensor3(z.Rows, t, c)
	for i, v := range z.Data {
		out.Data[i] = float32(v)
	}
	return out
}
