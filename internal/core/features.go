package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/preprocess"
	"repro/internal/telemetry"
)

// FeaturePair holds matched train/test feature matrices plus labels, ready
// for the classical models.
type FeaturePair struct {
	TrainX *mat.Matrix
	TrainY []int
	TestX  *mat.Matrix
	TestY  []int
	// Scaler carries the training-set statistics the features were
	// standardised with, so serving paths can standardise live windows the
	// exact same way (see repro.NewFleet).
	Scaler *preprocess.StandardScaler
	// PCA carries the fitted projection when the PCA pipeline produced the
	// features (nil for the covariance pipeline); model artifacts bundle it
	// so the whole preprocessing chain travels with the model.
	PCA *preprocess.PCA
}

// RawSensorSamples flattens a dataset tensor's windows into one matrix of
// raw telemetry samples (rows are samples, columns sensors) — the input
// drift.FitReference consumes when calibrating the serving plane's
// input-drift reference histograms.
func RawSensorSamples(x *dataset.Tensor3) *mat.Matrix {
	out := mat.New(x.N*x.T, x.C)
	for i, v := range x.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// standardised flattens both splits and standardises them with
// training-set statistics, exactly the paper's first step.
func standardised(ch *dataset.Challenge) (trainZ, testZ *mat.Matrix, scaler *preprocess.StandardScaler, err error) {
	trainFlat := ch.Train.X.Flatten()
	testFlat := ch.Test.X.Flatten()
	scaler = &preprocess.StandardScaler{}
	trainZ, err = scaler.FitTransform(trainFlat)
	if err != nil {
		return nil, nil, nil, err
	}
	testZ, err = scaler.Transform(testFlat)
	if err != nil {
		return nil, nil, nil, err
	}
	return trainZ, testZ, scaler, nil
}

// CovFeatures runs the paper's covariance pipeline: standardise, then embed
// every trial as the 28 unique sensor variances/covariances.
func CovFeatures(ch *dataset.Challenge) (*FeaturePair, error) {
	trainZ, testZ, scaler, err := standardised(ch)
	if err != nil {
		return nil, err
	}
	t, c := ch.Train.X.T, ch.Train.X.C
	trainF, err := preprocess.CovarianceEmbed(trainZ, t, c)
	if err != nil {
		return nil, err
	}
	testF, err := preprocess.CovarianceEmbed(testZ, t, c)
	if err != nil {
		return nil, err
	}
	return &FeaturePair{TrainX: trainF, TrainY: ch.Train.Y, TestX: testF, TestY: ch.Test.Y, Scaler: scaler}, nil
}

// CovFeaturesWith runs the covariance pipeline against an already-fitted
// scaler instead of refitting one on the challenge's training split. The
// continual-learning retrain path (internal/adapt) uses it so a candidate
// artifact carries byte-identical scaler statistics to the serving fleet's:
// the hot-swap compatibility gate compares scalers (server.ServableModel),
// and buffered unknown windows were embedded by the serving scaler — a
// refitted one would shift every feature they are clustered and trained in.
func CovFeaturesWith(ch *dataset.Challenge, scaler *preprocess.StandardScaler) (*FeaturePair, error) {
	trainZ, err := scaler.Transform(ch.Train.X.Flatten())
	if err != nil {
		return nil, err
	}
	testZ, err := scaler.Transform(ch.Test.X.Flatten())
	if err != nil {
		return nil, err
	}
	t, c := ch.Train.X.T, ch.Train.X.C
	trainF, err := preprocess.CovarianceEmbed(trainZ, t, c)
	if err != nil {
		return nil, err
	}
	testF, err := preprocess.CovarianceEmbed(testZ, t, c)
	if err != nil {
		return nil, err
	}
	return &FeaturePair{TrainX: trainF, TrainY: ch.Train.Y, TestX: testF, TestY: ch.Test.Y, Scaler: scaler}, nil
}

// PCAFeatures runs the paper's PCA pipeline at the given dimension:
// standardise the flattened trials, fit PCA on the training split, project
// both splits.
func PCAFeatures(ch *dataset.Challenge, dim int, seed int64) (*FeaturePair, error) {
	trainZ, testZ, scaler, err := standardised(ch)
	if err != nil {
		return nil, err
	}
	if dim > trainZ.Rows-1 {
		return nil, fmt.Errorf("core: PCA dim %d too large for %d training trials", dim, trainZ.Rows)
	}
	pca, err := preprocess.FitPCA(trainZ, dim, seed)
	if err != nil {
		return nil, err
	}
	trainF, err := pca.Transform(trainZ)
	if err != nil {
		return nil, err
	}
	testF, err := pca.Transform(testZ)
	if err != nil {
		return nil, err
	}
	return &FeaturePair{TrainX: trainF, TrainY: ch.Train.Y, TestX: testF, TestY: ch.Test.Y, Scaler: scaler, PCA: pca}, nil
}

// CovFeatureNames labels the covariance embedding dimensions with DCGM
// sensor pairs, for the §IV-B importance analysis.
func CovFeatureNames() []string {
	sensors := make([]string, telemetry.NumGPUSensors)
	for s := telemetry.GPUSensor(0); s < telemetry.NumGPUSensors; s++ {
		sensors[s] = s.String()
	}
	return preprocess.CovariancePairNames(sensors)
}

// BuildDataset constructs one Table IV dataset under the preset's caps.
func BuildDataset(sim *telemetry.Simulator, spec dataset.Spec, p Preset) (*dataset.Challenge, error) {
	opts := dataset.DefaultBuildOptions()
	opts.Seed = p.Seed
	opts.MaxTrialsPerSet = 0
	ch, err := dataset.Build(sim, spec, opts)
	if err != nil {
		return nil, err
	}
	return capChallenge(ch, p.MaxTrain, p.MaxTest), nil
}

// capChallenge truncates splits to the preset budget (the split shuffle has
// already balanced classes).
func capChallenge(ch *dataset.Challenge, maxTrain, maxTest int) *dataset.Challenge {
	out := &dataset.Challenge{Spec: ch.Spec, Train: ch.Train, Test: ch.Test}
	if maxTrain > 0 && ch.Train.Len() > maxTrain {
		idx := make([]int, maxTrain)
		for i := range idx {
			idx[i] = i
		}
		out.Train = ch.Train.Select(idx)
	}
	if maxTest > 0 && ch.Test.Len() > maxTest {
		idx := make([]int, maxTest)
		for i := range idx {
			idx[i] = i
		}
		out.Test = ch.Test.Select(idx)
	}
	return out
}

// NewSimulator builds the simulator for a preset.
func NewSimulator(p Preset) (*telemetry.Simulator, error) {
	return telemetry.NewSimulator(telemetry.Config{Seed: p.Seed, Scale: p.Scale, GapRate: 1})
}
