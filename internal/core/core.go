package core
