package core

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/modelsel"
	"repro/internal/telemetry"
	"repro/internal/xgb"
)

// XGBResult is the outcome of the §IV-B experiment: XGBoost on the
// covariance features of 60-random-1.
type XGBResult struct {
	Accuracy     float64
	BestParams   string
	CVScore      float64
	Rounds       int
	FinalLoss    float64 // train softmax loss after the last round
	TopFeatures  []string
	TopShares    []float64 // normalised gain importances of TopFeatures
	EvalAccuracy []float64 // per-round test accuracy (plateau analysis)
}

// PaperXGBAccuracy is the published §IV-B test accuracy (%).
const PaperXGBAccuracy = 88.47

// RunXGBoost reproduces §IV-B: standardisation + covariance reduction on
// 60-random-1, 5-fold grid search over γ/λ/α, 40 boosting rounds, and the
// gain-importance ranking of sensor covariances.
func RunXGBoost(sim *telemetry.Simulator, p Preset, logf func(string, ...any)) (*XGBResult, error) {
	spec, ok := dataset.SpecByName("60-random-1")
	if !ok {
		return nil, fmt.Errorf("core: 60-random-1 spec missing")
	}
	ch, err := BuildDataset(sim, spec, p)
	if err != nil {
		return nil, err
	}
	fp, err := CovFeatures(ch)
	if err != nil {
		return nil, err
	}
	numClasses := int(telemetry.NumClasses)

	var cands []modelsel.Candidate
	for _, gp := range p.XGBGrid {
		gp := gp
		cands = append(cands, modelsel.Candidate{
			Name: gp.String(),
			Fit: func(trainX *mat.Matrix, trainY []int, testX *mat.Matrix) ([]int, error) {
				m := xgb.New(xgb.Config{
					NumRounds: p.XGBRounds, LearningRate: 0.3, MaxDepth: 6,
					Gamma: gp.Gamma, Lambda: gp.Lambda, Alpha: gp.Alpha,
					MinChildWeight: 1, Subsample: 1, Seed: p.Seed,
				})
				if err := m.Fit(trainX, trainY, numClasses, nil, nil); err != nil {
					return nil, err
				}
				return m.Predict(testX)
			},
		})
	}
	gs := &modelsel.GridSearch{Folds: p.XGBFolds, Stratify: true, Seed: p.Seed}
	results, _, err := gs.Run(cands, fp.TrainX, fp.TrainY)
	if err != nil {
		return nil, err
	}
	bestName := results[0].Name
	var bestParams XGBParams
	for _, gp := range p.XGBGrid {
		if gp.String() == bestName {
			bestParams = gp
			break
		}
	}
	if logf != nil {
		logf("xgboost grid winner: %s (cv %.4f)", bestName, results[0].MeanScore)
	}

	// Refit the winner on the full training split with eval tracking.
	final := xgb.New(xgb.Config{
		NumRounds: p.XGBRounds, LearningRate: 0.3, MaxDepth: 6,
		Gamma: bestParams.Gamma, Lambda: bestParams.Lambda, Alpha: bestParams.Alpha,
		MinChildWeight: 1, Subsample: 1, Seed: p.Seed,
	})
	if err := final.Fit(fp.TrainX, fp.TrainY, numClasses, fp.TestX, fp.TestY); err != nil {
		return nil, err
	}
	pred, err := final.Predict(fp.TestX)
	if err != nil {
		return nil, err
	}
	acc, err := metrics.Accuracy(fp.TestY, pred)
	if err != nil {
		return nil, err
	}

	names := CovFeatureNames()
	top := final.TopFeatures(xgb.ImportanceGain, 3)
	imp := final.FeatureImportances(xgb.ImportanceGain)
	res := &XGBResult{
		Accuracy:     acc,
		BestParams:   bestName,
		CVScore:      results[0].MeanScore,
		Rounds:       final.NumRounds(),
		FinalLoss:    final.TrainLoss[len(final.TrainLoss)-1],
		EvalAccuracy: final.EvalAccuracy,
	}
	for _, f := range top {
		res.TopFeatures = append(res.TopFeatures, names[f])
		res.TopShares = append(res.TopShares, imp[f])
	}
	return res, nil
}

// FormatXGB renders the §IV-B result block.
func FormatXGB(res *XGBResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "XGBoost on 60-random-1 (covariance features)\n")
	fmt.Fprintf(&b, "  test accuracy: %s%%   (paper: %.2f%%)\n", pct(res.Accuracy), PaperXGBAccuracy)
	fmt.Fprintf(&b, "  best grid point: %s (cv %.4f), %d rounds, final train loss %.4f\n",
		res.BestParams, res.CVScore, res.Rounds, res.FinalLoss)
	fmt.Fprintf(&b, "  top-3 covariances by gain importance:\n")
	for i, name := range res.TopFeatures {
		fmt.Fprintf(&b, "    %d. %-55s %.3f\n", i+1, name, res.TopShares[i])
	}
	fmt.Fprintf(&b, "  paper's top-3: cov(gpu util, cpu util)*, var(gpu util), var(power draw)\n")
	fmt.Fprintf(&b, "  * the challenge tensors carry GPU sensors only; the closest\n")
	fmt.Fprintf(&b, "    available pairing is cov(utilization_gpu_pct, utilization_memory_pct)\n")
	return b.String()
}
