package core

import "fmt"

// paperTable6 holds the published RNN accuracies (%) for side-by-side
// reporting.
var paperTable6 = map[string]map[string]float64{
	"LSTM (h=128)":                   {"60-start-1": 82.57, "60-middle-1": 92.09, "60-random-1": 90.81},
	"LSTM (h=128, 2-layer)":          {"60-start-1": 80.51, "60-middle-1": 91.90, "60-random-1": 90.52},
	"CNN-LSTM (h=128)":               {"60-start-1": 82.65, "60-middle-1": 89.90, "60-random-1": 90.55},
	"CNN-LSTM (h=256)":               {"60-start-1": 67.60, "60-middle-1": 89.36, "60-random-1": 88.61},
	"CNN-LSTM (h=512)":               {"60-start-1": 64.45, "60-middle-1": 65.67, "60-random-1": 73.80},
	"CNN-LSTM (h=512, small kernel)": {"60-start-1": 66.26, "60-middle-1": 71.47, "60-random-1": 75.21},
}

// PaperTable6 exposes the published Table VI accuracies (percent).
func PaperTable6() map[string]map[string]float64 { return paperTable6 }

// FormatTable6 renders measured RNN accuracies with the paper's values.
func FormatTable6(res *Table6Result) string {
	headers := []string{"Model", "Start", "Middle", "Random"}
	var cells [][]string
	for _, m := range res.Models {
		row := []string{m}
		for _, d := range res.Datasets {
			row = append(row, pct(res.Cells[m][d].TestAccuracy))
		}
		cells = append(cells, row)
		paperRow := []string{"  (paper)"}
		for _, d := range res.Datasets {
			paperRow = append(paperRow, fmt.Sprintf("%.2f", paperTable6[m][d]))
		}
		cells = append(cells, paperRow)
	}
	return RenderTable("Table VI: RNN test accuracy (%)", headers, cells)
}
