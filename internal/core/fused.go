package core

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/preprocess"
	"repro/internal/telemetry"
	"repro/internal/xgb"
)

// Fused CPU+GPU features.
//
// The challenge tensors are GPU-only, yet the paper's §IV-B names the
// covariance between GPU utilization and *CPU* utilization as the single
// most important feature — which its authors could compute because the
// labelled dataset also ships host-side Slurm profiling. This experiment
// rebuilds that setting: each GPU window is joined with its node's CPU
// series over the same time span (sample-and-hold upsampled from 0.1 Hz to
// 9 Hz), giving 15-sensor trials whose covariance embedding contains the
// cross-device entries the paper ranks.

// FusedSensors is the fused channel count: 7 GPU + 8 CPU.
const FusedSensors = int(telemetry.NumGPUSensors) + int(telemetry.NumCPUSensors)

// FusedSensorNames lists the fused channel names in tensor order.
func FusedSensorNames() []string {
	names := make([]string, 0, FusedSensors)
	for s := telemetry.GPUSensor(0); s < telemetry.NumGPUSensors; s++ {
		names = append(names, s.String())
	}
	for s := telemetry.CPUSensor(0); s < telemetry.NumCPUSensors; s++ {
		names = append(names, s.String())
	}
	return names
}

// fusedTensor joins each trial's GPU window with its node's CPU telemetry.
// Cumulative CPU counters (CPUTime, Pages, ReadMB, WriteMB) are differenced
// into per-interval rates first, since raw monotone counters would swamp
// the covariance with trend.
func fusedTensor(sim *telemetry.Simulator, set *dataset.Set) (*dataset.Tensor3, error) {
	jobsByID := make(map[int]*telemetry.Job, len(sim.Jobs()))
	for _, j := range sim.Jobs() {
		jobsByID[j.ID] = j
	}
	out := dataset.NewTensor3(set.Len(), set.X.T, FusedSensors)
	gpuC := int(telemetry.NumGPUSensors)

	for i := 0; i < set.Len(); i++ {
		job, ok := jobsByID[set.JobIDs[i]]
		if !ok {
			return nil, fmt.Errorf("core: trial %d references unknown job %d", i, set.JobIDs[i])
		}
		node := set.GPUs[i] / telemetry.GPUsPerNode
		cpu, err := job.CPUSeries(node)
		if err != nil {
			return nil, err
		}
		rates := cpuRates(cpu)

		t0 := set.T0s[i]
		for t := 0; t < set.X.T; t++ {
			for c := 0; c < gpuC; c++ {
				out.Set(i, t, c, set.X.At(i, t, c))
			}
			// Sample-and-hold: the CPU sample covering this GPU timestamp.
			abs := t0 + float64(t)*telemetry.GPUSampleDT
			row := int(abs / telemetry.CPUSampleDT)
			if row >= rates.Rows {
				row = rates.Rows - 1
			}
			for c := 0; c < int(telemetry.NumCPUSensors); c++ {
				out.Set(i, t, gpuC+c, rates.At(row, c))
			}
		}
	}
	return out, nil
}

// cpuRates differences the cumulative CPU counters into per-interval rates,
// leaving gauge columns untouched.
func cpuRates(cpu *mat.Matrix) *mat.Matrix {
	out := cpu.Clone()
	counters := []telemetry.CPUSensor{telemetry.CPUTime, telemetry.Pages, telemetry.ReadMB, telemetry.WriteMB}
	for _, s := range counters {
		col := int(s)
		prev := 0.0
		for i := 0; i < cpu.Rows; i++ {
			cur := cpu.At(i, col)
			out.Set(i, col, cur-prev)
			prev = cur
		}
	}
	return out
}

// FusedCovFeatures builds the 120-dimensional fused covariance embedding
// (15 sensors → 15·16/2 entries) for both splits of a challenge dataset.
func FusedCovFeatures(sim *telemetry.Simulator, ch *dataset.Challenge) (*FeaturePair, error) {
	trainT, err := fusedTensor(sim, ch.Train)
	if err != nil {
		return nil, err
	}
	testT, err := fusedTensor(sim, ch.Test)
	if err != nil {
		return nil, err
	}
	var scaler preprocess.StandardScaler
	trainZ, err := scaler.FitTransform(trainT.Flatten())
	if err != nil {
		return nil, err
	}
	testZ, err := scaler.Transform(testT.Flatten())
	if err != nil {
		return nil, err
	}
	trainF, err := preprocess.CovarianceEmbed(trainZ, trainT.T, trainT.C)
	if err != nil {
		return nil, err
	}
	testF, err := preprocess.CovarianceEmbed(testZ, testT.T, testT.C)
	if err != nil {
		return nil, err
	}
	return &FeaturePair{TrainX: trainF, TrainY: ch.Train.Y, TestX: testF, TestY: ch.Test.Y}, nil
}

// FusedResult is the outcome of the fused-features experiment.
type FusedResult struct {
	GPUOnlyAccuracy float64
	FusedAccuracy   float64
	TopFeatures     []string
	TopShares       []float64
	// CrossRank is the best importance rank (1-based) of any GPU×CPU
	// cross-device covariance — the paper's headline feature.
	CrossRank int
}

// RunFusedImportance trains XGBoost on GPU-only vs fused covariance
// features of 60-random-1 and ranks the fused features by gain importance,
// reproducing the §IV-B analysis in its original (CPU+GPU) feature space.
func RunFusedImportance(sim *telemetry.Simulator, p Preset, logf func(string, ...any)) (*FusedResult, error) {
	spec, _ := dataset.SpecByName("60-random-1")
	ch, err := BuildDataset(sim, spec, p)
	if err != nil {
		return nil, err
	}
	numClasses := int(telemetry.NumClasses)
	cfg := xgb.Config{
		NumRounds: p.XGBRounds, LearningRate: 0.3, MaxDepth: 6,
		Lambda: 1, MinChildWeight: 1, Subsample: 1, Seed: p.Seed,
	}

	gpuFP, err := CovFeatures(ch)
	if err != nil {
		return nil, err
	}
	gpuModel := xgb.New(cfg)
	if err := gpuModel.Fit(gpuFP.TrainX, gpuFP.TrainY, numClasses, nil, nil); err != nil {
		return nil, err
	}
	gpuPred, err := gpuModel.Predict(gpuFP.TestX)
	if err != nil {
		return nil, err
	}
	gpuAcc, err := metrics.Accuracy(gpuFP.TestY, gpuPred)
	if err != nil {
		return nil, err
	}
	if logf != nil {
		logf("fused: GPU-only accuracy %.4f", gpuAcc)
	}

	fusedFP, err := FusedCovFeatures(sim, ch)
	if err != nil {
		return nil, err
	}
	fusedModel := xgb.New(cfg)
	if err := fusedModel.Fit(fusedFP.TrainX, fusedFP.TrainY, numClasses, nil, nil); err != nil {
		return nil, err
	}
	fusedPred, err := fusedModel.Predict(fusedFP.TestX)
	if err != nil {
		return nil, err
	}
	fusedAcc, err := metrics.Accuracy(fusedFP.TestY, fusedPred)
	if err != nil {
		return nil, err
	}
	if logf != nil {
		logf("fused: CPU+GPU accuracy %.4f", fusedAcc)
	}

	names := preprocess.CovariancePairNames(FusedSensorNames())
	top := fusedModel.TopFeatures(xgb.ImportanceGain, 10)
	imp := fusedModel.FeatureImportances(xgb.ImportanceGain)
	res := &FusedResult{GPUOnlyAccuracy: gpuAcc, FusedAccuracy: fusedAcc}
	for rank, f := range top {
		res.TopFeatures = append(res.TopFeatures, names[f])
		res.TopShares = append(res.TopShares, imp[f])
		if res.CrossRank == 0 && isCrossDevice(names[f]) {
			res.CrossRank = rank + 1
		}
	}
	return res, nil
}

// isCrossDevice reports whether a covariance name pairs a GPU sensor with a
// CPU sensor.
func isCrossDevice(name string) bool {
	if !strings.HasPrefix(name, "cov(") {
		return false
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(name, "cov("), ")")
	parts := strings.SplitN(inner, ",", 2)
	if len(parts) != 2 {
		return false
	}
	gpu := func(s string) bool {
		return strings.Contains(s, "_pct") || strings.Contains(s, "MiB") ||
			strings.Contains(s, "temperature") || strings.Contains(s, "power")
	}
	return gpu(parts[0]) != gpu(parts[1])
}

// FormatFused renders the fused-features experiment.
func FormatFused(res *FusedResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fused CPU+GPU covariance features (60-random-1, XGBoost)\n")
	fmt.Fprintf(&b, "  GPU-only (28 features):  %s%%\n", pct(res.GPUOnlyAccuracy))
	fmt.Fprintf(&b, "  CPU+GPU (120 features):  %s%%\n", pct(res.FusedAccuracy))
	fmt.Fprintf(&b, "  top-10 by gain importance:\n")
	for i, name := range res.TopFeatures {
		marker := ""
		if isCrossDevice(name) {
			marker = "  << cross-device"
		}
		fmt.Fprintf(&b, "    %2d. %-62s %.3f%s\n", i+1, name, res.TopShares[i], marker)
	}
	if res.CrossRank > 0 {
		fmt.Fprintf(&b, "  first GPU x CPU covariance at rank %d (paper: rank 1, cov(gpu util, cpu util))\n", res.CrossRank)
	} else {
		fmt.Fprintf(&b, "  no cross-device covariance in the top 10 (paper: rank 1)\n")
	}
	return b.String()
}
