package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/telemetry"
)

func smokeSim(t testing.TB) *telemetry.Simulator {
	t.Helper()
	sim, err := NewSimulator(PresetSmoke())
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"smoke", "scaled", "full"} {
		p, err := PresetByName(name)
		if err != nil || p.Name != name {
			t.Errorf("PresetByName(%q) = %+v, %v", name, p.Name, err)
		}
	}
	if _, err := PresetByName("turbo"); err == nil {
		t.Error("unknown preset should fail")
	}
}

func TestPresetGridsMatchPaper(t *testing.T) {
	full := PresetFull()
	if full.Folds != 10 || full.XGBFolds != 5 {
		t.Errorf("full preset folds %d/%d, want 10/5", full.Folds, full.XGBFolds)
	}
	wantDims := []int{28, 64, 256, 512}
	for i, d := range wantDims {
		if full.PCADims[i] != d {
			t.Errorf("full PCA dims %v, want %v", full.PCADims, wantDims)
		}
	}
	wantCs := []float64{0.1, 1, 10}
	for i, c := range wantCs {
		if full.SVMCs[i] != c {
			t.Errorf("full SVM grid %v, want %v", full.SVMCs, wantCs)
		}
	}
	wantTrees := []int{50, 100, 250}
	for i, n := range wantTrees {
		if full.RFTrees[i] != n {
			t.Errorf("full RF grid %v, want %v", full.RFTrees, wantTrees)
		}
	}
	if full.XGBRounds != 40 {
		t.Errorf("full XGB rounds %d, want 40", full.XGBRounds)
	}
	if full.RNN.Epochs != 1000 || full.RNN.Patience != 100 {
		t.Errorf("full RNN protocol %d/%d, want 1000/100", full.RNN.Epochs, full.RNN.Patience)
	}
}

func TestCovFeatureShapes(t *testing.T) {
	sim := smokeSim(t)
	p := PresetSmoke()
	ch, err := BuildDataset(sim, dataset.ChallengeSpecs[1], p)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := CovFeatures(ch)
	if err != nil {
		t.Fatal(err)
	}
	if fp.TrainX.Cols != 28 {
		t.Errorf("covariance features have %d dims, want 28", fp.TrainX.Cols)
	}
	if fp.TrainX.Rows != len(fp.TrainY) || fp.TestX.Rows != len(fp.TestY) {
		t.Error("feature/label size mismatch")
	}
}

func TestPCAFeatureShapes(t *testing.T) {
	sim := smokeSim(t)
	p := PresetSmoke()
	ch, err := BuildDataset(sim, dataset.ChallengeSpecs[1], p)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := PCAFeatures(ch, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fp.TrainX.Cols != 16 || fp.TestX.Cols != 16 {
		t.Errorf("PCA features %d/%d dims, want 16", fp.TrainX.Cols, fp.TestX.Cols)
	}
	if _, err := PCAFeatures(ch, 100000, 1); err == nil {
		t.Error("absurd PCA dim should fail")
	}
}

func TestCovFeatureNames(t *testing.T) {
	names := CovFeatureNames()
	if len(names) != 28 {
		t.Fatalf("got %d names", len(names))
	}
	if names[0] != "var(utilization_gpu_pct)" {
		t.Errorf("names[0] = %q", names[0])
	}
	if names[1] != "cov(utilization_gpu_pct,utilization_memory_pct)" {
		t.Errorf("names[1] = %q", names[1])
	}
}

func TestBuildDatasetCaps(t *testing.T) {
	sim := smokeSim(t)
	p := PresetSmoke()
	ch, err := BuildDataset(sim, dataset.ChallengeSpecs[0], p)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Train.Len() > p.MaxTrain || ch.Test.Len() > p.MaxTest {
		t.Errorf("caps not applied: %d/%d", ch.Train.Len(), ch.Test.Len())
	}
}

func TestRunTable1(t *testing.T) {
	sim := smokeSim(t)
	rows := RunTable1(sim)
	if len(rows) != int(telemetry.NumFamilies) {
		t.Fatalf("got %d family rows", len(rows))
	}
	totalPaper := 0
	for _, r := range rows {
		totalPaper += r.PaperJobs
		if r.GeneratedJobs <= 0 {
			t.Errorf("family %s has no generated jobs", r.Family)
		}
	}
	if totalPaper != telemetry.TotalJobs {
		t.Errorf("paper totals sum to %d, want %d", totalPaper, telemetry.TotalJobs)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "U-Net") || !strings.Contains(out, "1431") {
		t.Errorf("Table I render missing content:\n%s", out)
	}
}

func TestFormatTables2And3(t *testing.T) {
	out := FormatTables2And3()
	for _, want := range []string{"CPUFrequency", "utilization_gpu_pct", "power_draw_W", "RSS"} {
		if !strings.Contains(out, want) {
			t.Errorf("Tables II/III render missing %q", want)
		}
	}
}

func TestRunTable4(t *testing.T) {
	sim := smokeSim(t)
	rows, err := RunTable4(sim, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d dataset rows, want 7", len(rows))
	}
	for _, r := range rows {
		if r.Samples != 540 || r.Sensors != 7 {
			t.Errorf("%s shape %dx%d, want 540x7", r.Name, r.Samples, r.Sensors)
		}
		if r.TrainTrials == 0 || r.TestTrials == 0 {
			t.Errorf("%s is empty", r.Name)
		}
	}
	if rows[0].TrainTrials+rows[0].TestTrials <= rows[1].TrainTrials+rows[1].TestTrials {
		t.Error("start dataset should have the most trials")
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "60-random-5") || !strings.Contains(out, "14590") {
		t.Errorf("Table IV render missing content:\n%s", out)
	}
}

func TestRunTables789(t *testing.T) {
	sim := smokeSim(t)
	rows := RunTables789(sim)
	if len(rows) != int(telemetry.NumClasses) {
		t.Fatalf("got %d class rows", len(rows))
	}
	out := FormatTables789(rows)
	for _, want := range []string{"VGG11", "U3-128", "DimeNet", "ResNet50_v1.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("class inventory missing %q", want)
		}
	}
}

func TestRunTable5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table 5 smoke run takes ~a minute")
	}
	sim := smokeSim(t)
	res, err := RunTable5(sim, PresetSmoke(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 7 {
		t.Fatalf("got %d datasets", len(res.Datasets))
	}
	for _, m := range Table5Models {
		for _, d := range res.Datasets {
			cell, ok := res.Cells[m][d]
			if !ok {
				t.Fatalf("missing cell %s/%s", m, d)
			}
			if cell.Accuracy < 0.10 {
				t.Errorf("%s on %s: accuracy %.3f is at chance level", m, d, cell.Accuracy)
			}
			if cell.BestParams == "" {
				t.Errorf("%s on %s: no best params recorded", m, d)
			}
		}
	}
	// The covariance embedding must carry real signal for RF even at smoke
	// scale (~6 train trials per class; chance is 1/26 ≈ 0.04).
	if res.Cells[RFCov]["60-middle-1"].Accuracy < 0.4 {
		t.Errorf("RF-Cov middle accuracy %.3f, want > 0.4", res.Cells[RFCov]["60-middle-1"].Accuracy)
	}
	out := FormatTable5(res)
	if !strings.Contains(out, "93.02") {
		t.Errorf("Table V render missing paper reference values:\n%s", out)
	}
}

func TestRunXGBoostSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("xgboost smoke run takes tens of seconds")
	}
	sim := smokeSim(t)
	res, err := RunXGBoost(sim, PresetSmoke(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.3 {
		t.Errorf("XGB accuracy %.3f at smoke scale", res.Accuracy)
	}
	if len(res.TopFeatures) != 3 {
		t.Fatalf("want top-3 features, got %v", res.TopFeatures)
	}
	out := FormatXGB(res)
	if !strings.Contains(out, "88.47") || !strings.Contains(out, "top-3") {
		t.Errorf("XGB render missing content:\n%s", out)
	}
}

func TestRunTable6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table 6 smoke run takes ~a minute")
	}
	sim := smokeSim(t)
	res, err := RunTable6(sim, PresetSmoke(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 6 {
		t.Fatalf("got %d models, want 6", len(res.Models))
	}
	if len(res.Datasets) != 3 {
		t.Fatalf("got %d datasets, want 3", len(res.Datasets))
	}
	for _, m := range res.Models {
		for _, d := range res.Datasets {
			if _, ok := res.Cells[m][d]; !ok {
				t.Fatalf("missing cell %s/%s", m, d)
			}
		}
	}
	out := FormatTable6(res)
	if !strings.Contains(out, "CNN-LSTM (h=512, small kernel)") {
		t.Errorf("Table VI render missing models:\n%s", out)
	}
}

func TestTable6SpecNames(t *testing.T) {
	want := []string{
		"LSTM (h=128)",
		"LSTM (h=128, 2-layer)",
		"CNN-LSTM (h=128)",
		"CNN-LSTM (h=256)",
		"CNN-LSTM (h=512)",
		"CNN-LSTM (h=512, small kernel)",
	}
	for i, spec := range Table6Specs {
		if spec.PaperName() != want[i] {
			t.Errorf("spec %d name %q, want %q", i, spec.PaperName(), want[i])
		}
		if _, ok := paperTable6[spec.PaperName()]; !ok {
			t.Errorf("no paper reference for %q", spec.PaperName())
		}
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable("Title", []string{"A", "Long header"},
		[][]string{{"x", "1"}, {"longer cell", "2"}})
	if !strings.Contains(out, "Title") || !strings.Contains(out, "Long header") {
		t.Errorf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestPaperReferenceTables(t *testing.T) {
	// Published values must be present for every cell we report.
	for _, m := range Table5Models {
		row := PaperTable5()[m]
		if len(row) != 7 {
			t.Errorf("paper Table V row %s has %d cells", m, len(row))
		}
	}
	if PaperXGBAccuracy != 88.47 {
		t.Errorf("paper XGB accuracy constant = %v", PaperXGBAccuracy)
	}
	for name, row := range PaperTable6() {
		if len(row) != 3 {
			t.Errorf("paper Table VI row %s has %d cells", name, len(row))
		}
	}
}
