package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/modelsel"
	"repro/internal/svm"
	"repro/internal/telemetry"
)

// Table5Model identifies one of the four Table V rows.
type Table5Model string

// The four baselines of Table V.
const (
	SVMPCA Table5Model = "SVM PCA"
	SVMCov Table5Model = "SVM Cov."
	RFPCA  Table5Model = "RF PCA"
	RFCov  Table5Model = "RF Cov."
)

// Table5Models lists the rows in the paper's order.
var Table5Models = []Table5Model{SVMPCA, SVMCov, RFPCA, RFCov}

// Table5Cell is the outcome of one (model, dataset) cell: the test accuracy
// of the grid-search winner and the winning hyper-parameters.
type Table5Cell struct {
	Accuracy   float64
	BestParams string
	CVScore    float64
}

// Table5Result maps model → dataset name → cell.
type Table5Result struct {
	Cells map[Table5Model]map[string]Table5Cell
	// Datasets preserves column order.
	Datasets []string
}

// svmCandidates builds the SVC grid (C values) for the given features.
func svmCandidates(cs []float64, seed int64) []modelsel.Candidate {
	var cands []modelsel.Candidate
	for _, c := range cs {
		c := c
		cands = append(cands, modelsel.Candidate{
			Name: fmt.Sprintf("C=%g", c),
			Fit: func(trainX *mat.Matrix, trainY []int, testX *mat.Matrix) ([]int, error) {
				m := svm.New(svm.Config{C: c, Seed: seed})
				if err := m.Fit(trainX, trainY); err != nil {
					return nil, err
				}
				return m.Predict(testX)
			},
		})
	}
	return cands
}

// rfCandidates builds the random-forest grid (tree counts).
func rfCandidates(trees []int, numClasses int, seed int64) []modelsel.Candidate {
	var cands []modelsel.Candidate
	for _, n := range trees {
		n := n
		cands = append(cands, modelsel.Candidate{
			Name: fmt.Sprintf("trees=%d", n),
			Fit: func(trainX *mat.Matrix, trainY []int, testX *mat.Matrix) ([]int, error) {
				f := forest.New(forest.Config{NumTrees: n, Bootstrap: true, Seed: seed})
				if err := f.Fit(trainX, trainY, numClasses); err != nil {
					return nil, err
				}
				return f.Predict(testX)
			},
		})
	}
	return cands
}

// runGrid performs the cross-validated search and then scores the winner on
// the held-out test split.
func runGrid(cands []modelsel.Candidate, fp *FeaturePair, folds int, seed int64) (Table5Cell, error) {
	gs := &modelsel.GridSearch{Folds: folds, Stratify: true, Seed: seed}
	results, best, err := gs.Run(cands, fp.TrainX, fp.TrainY)
	if err != nil {
		return Table5Cell{}, err
	}
	pred, err := best.Fit(fp.TrainX, fp.TrainY, fp.TestX)
	if err != nil {
		return Table5Cell{}, err
	}
	acc, err := metrics.Accuracy(fp.TestY, pred)
	if err != nil {
		return Table5Cell{}, err
	}
	return Table5Cell{Accuracy: acc, BestParams: results[0].Name, CVScore: results[0].MeanScore}, nil
}

// runPCAGrid searches jointly over PCA dimensions and model grids: for each
// dimension the features are re-projected and the model grid is
// cross-validated; the (dim, params) pair with the best CV score wins and
// is scored on test.
func runPCAGrid(ch *dataset.Challenge, dims []int,
	mkCands func() []modelsel.Candidate, folds int, seed int64) (Table5Cell, error) {
	bestCV := -1.0
	var bestCell Table5Cell
	for _, dim := range dims {
		fp, err := PCAFeatures(ch, dim, seed)
		if err != nil {
			return Table5Cell{}, err
		}
		cell, err := runGrid(mkCands(), fp, folds, seed)
		if err != nil {
			return Table5Cell{}, err
		}
		if cell.CVScore > bestCV {
			bestCV = cell.CVScore
			cell.BestParams = fmt.Sprintf("pca=%d %s", dim, cell.BestParams)
			bestCell = cell
		}
	}
	return bestCell, nil
}

// RunTable5 reproduces Table V: SVM and RF, each with PCA and covariance
// dimensionality reduction, grid-searched with stratified k-fold CV on all
// seven datasets, reporting held-out test accuracy.
func RunTable5(sim *telemetry.Simulator, p Preset, logf func(string, ...any)) (*Table5Result, error) {
	res := &Table5Result{Cells: map[Table5Model]map[string]Table5Cell{}}
	for _, m := range Table5Models {
		res.Cells[m] = map[string]Table5Cell{}
	}
	for _, spec := range dataset.ChallengeSpecs {
		res.Datasets = append(res.Datasets, spec.Name)
		ch, err := BuildDataset(sim, spec, p)
		if err != nil {
			return nil, err
		}
		numClasses := int(telemetry.NumClasses)

		cov, err := CovFeatures(ch)
		if err != nil {
			return nil, err
		}

		cell, err := runGrid(svmCandidates(p.SVMCs, p.Seed), cov, p.Folds, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: %s SVM Cov: %w", spec.Name, err)
		}
		res.Cells[SVMCov][spec.Name] = cell
		if logf != nil {
			logf("table5 %-12s %-8s acc=%.4f (%s)", spec.Name, SVMCov, cell.Accuracy, cell.BestParams)
		}

		cell, err = runGrid(rfCandidates(p.RFTrees, numClasses, p.Seed), cov, p.Folds, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: %s RF Cov: %w", spec.Name, err)
		}
		res.Cells[RFCov][spec.Name] = cell
		if logf != nil {
			logf("table5 %-12s %-8s acc=%.4f (%s)", spec.Name, RFCov, cell.Accuracy, cell.BestParams)
		}

		cell, err = runPCAGrid(ch, p.PCADims, func() []modelsel.Candidate {
			return svmCandidates(p.SVMCs, p.Seed)
		}, p.Folds, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: %s SVM PCA: %w", spec.Name, err)
		}
		res.Cells[SVMPCA][spec.Name] = cell
		if logf != nil {
			logf("table5 %-12s %-8s acc=%.4f (%s)", spec.Name, SVMPCA, cell.Accuracy, cell.BestParams)
		}

		cell, err = runPCAGrid(ch, p.PCADims, func() []modelsel.Candidate {
			return rfCandidates(p.RFTrees, numClasses, p.Seed)
		}, p.Folds, p.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: %s RF PCA: %w", spec.Name, err)
		}
		res.Cells[RFPCA][spec.Name] = cell
		if logf != nil {
			logf("table5 %-12s %-8s acc=%.4f (%s)", spec.Name, RFPCA, cell.Accuracy, cell.BestParams)
		}
	}
	return res, nil
}

// paperTable5 holds the published accuracies for side-by-side reporting.
var paperTable5 = map[Table5Model]map[string]float64{
	SVMPCA: {"60-start-1": 82.13, "60-middle-1": 80.84, "60-random-1": 76.62, "60-random-2": 75.32, "60-random-3": 76.78, "60-random-4": 75.29, "60-random-5": 75.46},
	SVMCov: {"60-start-1": 67.24, "60-middle-1": 73.21, "60-random-1": 71.66, "60-random-2": 71.32, "60-random-3": 71.05, "60-random-4": 70.55, "60-random-5": 70.61},
	RFPCA:  {"60-start-1": 83.17, "60-middle-1": 89.76, "60-random-1": 85.58, "60-random-2": 86.69, "60-random-3": 86.51, "60-random-4": 86.31, "60-random-5": 86.42},
	RFCov:  {"60-start-1": 81.80, "60-middle-1": 93.02, "60-random-1": 90.05, "60-random-2": 90.64, "60-random-3": 90.01, "60-random-4": 90.73, "60-random-5": 90.90},
}

// PaperTable5 exposes the published Table V accuracies (percent).
func PaperTable5() map[Table5Model]map[string]float64 { return paperTable5 }

// FormatTable5 renders measured accuracies with the paper's values beside
// them.
func FormatTable5(res *Table5Result) string {
	headers := []string{"Model"}
	for _, d := range res.Datasets {
		headers = append(headers, shortName(d))
	}
	var cells [][]string
	for _, m := range Table5Models {
		row := []string{string(m)}
		for _, d := range res.Datasets {
			row = append(row, pct(res.Cells[m][d].Accuracy))
		}
		cells = append(cells, row)
		paperRow := []string{"  (paper)"}
		for _, d := range res.Datasets {
			paperRow = append(paperRow, fmt.Sprintf("%.2f", paperTable5[m][d]))
		}
		cells = append(cells, paperRow)
	}
	return RenderTable("Table V: SVM and RF test accuracy (%)", headers, cells)
}

func shortName(d string) string {
	switch d {
	case "60-start-1":
		return "Start"
	case "60-middle-1":
		return "Middle"
	default:
		return "R" + d[len(d)-1:]
	}
}
