// Package core ties the substrates together into the MIT Supercloud
// Workload Classification Challenge: it builds the seven Table IV datasets
// from the simulated labelled dataset, runs every baseline of Sections IV
// and V under the paper's model-selection protocol, and renders each of the
// paper's tables (I-IX) from measured results.
package core

import "fmt"

// XGBParams is one XGBoost grid point (the paper grid-searches γ, α and λ).
type XGBParams struct {
	Gamma, Lambda, Alpha float64
}

func (p XGBParams) String() string {
	return fmt.Sprintf("gamma=%g lambda=%g alpha=%g", p.Gamma, p.Lambda, p.Alpha)
}

// RNNPreset controls the Section V training runs.
type RNNPreset struct {
	// HiddenScale divides the paper's hidden sizes (128/256/512) so the
	// pure-Go implementation fits the compute budget; 1 reproduces the
	// paper's architecture exactly.
	HiddenScale int
	// Stride downsamples the 540-step windows before the RNNs (1 = none).
	Stride int
	// MaxTrain / MaxTest cap the trials used.
	MaxTrain, MaxTest int
	Epochs            int
	Patience          int
	BatchSize         int
	CycleEpochs       int
	LRMax, LRMin      float64
}

// Preset bundles every knob of the experiment suite. The paper's exact
// protocol is PresetFull; PresetScaled fits a single CPU core; PresetSmoke
// is for tests.
type Preset struct {
	Name string

	// Scale is the labelled-dataset generation scale (1 = 3,430 jobs).
	Scale float64
	Seed  int64

	// MaxTrain/MaxTest cap dataset sizes after the 80/20 split
	// (0 = no cap).
	MaxTrain, MaxTest int

	// Folds is the SVM/RF grid-search fold count (paper: 10).
	Folds int
	// XGBFolds is the XGBoost grid-search fold count (paper: 5).
	XGBFolds int

	// PCADims is the PCA dimension grid (paper: 28, 64, 256, 512).
	PCADims []int
	// SVMCs is the SVC regularisation grid (paper: 0.1, 1, 10).
	SVMCs []float64
	// RFTrees is the forest-size grid (paper: 50, 100, 250).
	RFTrees []int
	// XGBGrid is the XGBoost regularisation grid.
	XGBGrid []XGBParams
	// XGBRounds is the boosting-round count (paper: 40).
	XGBRounds int

	RNN RNNPreset
}

// PresetSmoke is the CI preset: everything tiny, seconds of CPU.
func PresetSmoke() Preset {
	return Preset{
		Name:     "smoke",
		Scale:    0.05,
		Seed:     1,
		MaxTrain: 150,
		MaxTest:  80,
		Folds:    3,
		XGBFolds: 3,
		PCADims:  []int{16, 28},
		SVMCs:    []float64{1},
		RFTrees:  []int{25},
		XGBGrid: []XGBParams{
			{Gamma: 0, Lambda: 1, Alpha: 0},
			{Gamma: 0.1, Lambda: 1, Alpha: 0.1},
		},
		XGBRounds: 10,
		RNN: RNNPreset{
			HiddenScale: 16, // 128→8
			Stride:      20, // 540→27 steps
			MaxTrain:    80,
			MaxTest:     60,
			Epochs:      3,
			Patience:    3,
			BatchSize:   16,
			CycleEpochs: 3,
			LRMax:       3e-3,
			LRMin:       1e-4,
		},
	}
}

// PresetScaled is the default: the whole suite runs on one CPU core in tens
// of minutes while preserving the paper's comparisons. Deviations from the
// paper's protocol are documented in EXPERIMENTS.md.
func PresetScaled() Preset {
	return Preset{
		Name:     "scaled",
		Scale:    0.30,
		Seed:     1,
		MaxTrain: 1400,
		MaxTest:  600,
		Folds:    5,
		XGBFolds: 5,
		PCADims:  []int{28, 64, 256},
		SVMCs:    []float64{0.1, 1, 10},
		RFTrees:  []int{50, 100, 250},
		XGBGrid: []XGBParams{
			{Gamma: 0, Lambda: 1, Alpha: 0},
			{Gamma: 0, Lambda: 1, Alpha: 0.5},
			{Gamma: 0, Lambda: 5, Alpha: 0},
			{Gamma: 0.5, Lambda: 1, Alpha: 0},
			{Gamma: 0.5, Lambda: 5, Alpha: 0.5},
		},
		XGBRounds: 40,
		RNN: RNNPreset{
			HiddenScale: 4, // 128→32, 256→64, 512→128
			Stride:      10,
			MaxTrain:    300,
			MaxTest:     300,
			Epochs:      10,
			Patience:    6,
			BatchSize:   32,
			CycleEpochs: 5,
			LRMax:       3e-3,
			LRMin:       1e-4,
		},
	}
}

// PresetFull is the paper's protocol: full-scale dataset, full grids,
// 10-fold SVM/RF search, the exact RNN architectures, 1000 epochs with
// patience 100. Budget hours of CPU.
func PresetFull() Preset {
	return Preset{
		Name:     "full",
		Scale:    1.0,
		Seed:     1,
		Folds:    10,
		XGBFolds: 5,
		PCADims:  []int{28, 64, 256, 512},
		SVMCs:    []float64{0.1, 1, 10},
		RFTrees:  []int{50, 100, 250},
		XGBGrid: []XGBParams{
			{Gamma: 0, Lambda: 1, Alpha: 0},
			{Gamma: 0, Lambda: 1, Alpha: 0.5},
			{Gamma: 0, Lambda: 5, Alpha: 0},
			{Gamma: 0, Lambda: 5, Alpha: 0.5},
			{Gamma: 0.5, Lambda: 1, Alpha: 0},
			{Gamma: 0.5, Lambda: 1, Alpha: 0.5},
			{Gamma: 0.5, Lambda: 5, Alpha: 0},
			{Gamma: 0.5, Lambda: 5, Alpha: 0.5},
		},
		XGBRounds: 40,
		RNN: RNNPreset{
			HiddenScale: 1,
			Stride:      1,
			Epochs:      1000,
			Patience:    100,
			BatchSize:   32,
			CycleEpochs: 10,
			LRMax:       3e-3,
			LRMin:       1e-5,
		},
	}
}

// PresetByName resolves smoke/scaled/full.
func PresetByName(name string) (Preset, error) {
	switch name {
	case "smoke":
		return PresetSmoke(), nil
	case "scaled":
		return PresetScaled(), nil
	case "full":
		return PresetFull(), nil
	}
	return Preset{}, fmt.Errorf("core: unknown preset %q (want smoke, scaled or full)", name)
}
