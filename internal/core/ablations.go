package core

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/preprocess"
	"repro/internal/telemetry"
)

// Ablations probe the design choices DESIGN.md calls out. They are not in
// the paper; they test the mechanisms this reproduction claims explain the
// paper's results.

// StartPhaseAblation compares RF-Cov accuracy on 60-start-1 with the
// simulator's class-agnostic startup phase enabled vs disabled. The paper's
// §IV-A hypothesis — the start dataset is hardest because early-job compute
// is generic — predicts a clear accuracy gain when startup is removed.
type StartPhaseAblation struct {
	WithStartup    float64
	WithoutStartup float64
}

// RunStartPhaseAblation executes the ablation under the given preset.
func RunStartPhaseAblation(p Preset) (*StartPhaseAblation, error) {
	res := &StartPhaseAblation{}
	for _, disable := range []bool{false, true} {
		sim, err := telemetry.NewSimulator(telemetry.Config{
			Seed: p.Seed, Scale: p.Scale, GapRate: 1, DisableStartup: disable,
		})
		if err != nil {
			return nil, err
		}
		spec, _ := dataset.SpecByName("60-start-1")
		ch, err := BuildDataset(sim, spec, p)
		if err != nil {
			return nil, err
		}
		fp, err := CovFeatures(ch)
		if err != nil {
			return nil, err
		}
		acc, err := rfAccuracy(fp, 100, p.Seed)
		if err != nil {
			return nil, err
		}
		if disable {
			res.WithoutStartup = acc
		} else {
			res.WithStartup = acc
		}
	}
	return res, nil
}

func rfAccuracy(fp *FeaturePair, trees int, seed int64) (float64, error) {
	f := forest.New(forest.Config{NumTrees: trees, Bootstrap: true, Seed: seed})
	if err := f.Fit(fp.TrainX, fp.TrainY, int(telemetry.NumClasses)); err != nil {
		return 0, err
	}
	pred, err := f.Predict(fp.TestX)
	if err != nil {
		return 0, err
	}
	return metrics.Accuracy(fp.TestY, pred)
}

// EmbeddingAblation compares the three trial embeddings feeding the same RF
// on the same dataset: covariance (28-d), PCA (28-d) and a raw
// downsampled flatten — accuracy and wall-clock per embedding.
type EmbeddingAblation struct {
	Rows []EmbeddingRow
}

// EmbeddingRow is one embedding's outcome.
type EmbeddingRow struct {
	Name     string
	Dim      int
	Accuracy float64
	Elapsed  time.Duration
}

// RunEmbeddingAblation executes the comparison on 60-middle-1.
func RunEmbeddingAblation(sim *telemetry.Simulator, p Preset) (*EmbeddingAblation, error) {
	spec, _ := dataset.SpecByName("60-middle-1")
	ch, err := BuildDataset(sim, spec, p)
	if err != nil {
		return nil, err
	}
	out := &EmbeddingAblation{}

	run := func(name string, build func() (*FeaturePair, error)) error {
		start := time.Now()
		fp, err := build()
		if err != nil {
			return fmt.Errorf("core: embedding %s: %w", name, err)
		}
		acc, err := rfAccuracy(fp, 100, p.Seed)
		if err != nil {
			return err
		}
		out.Rows = append(out.Rows, EmbeddingRow{
			Name: name, Dim: fp.TrainX.Cols, Accuracy: acc, Elapsed: time.Since(start),
		})
		return nil
	}

	if err := run("covariance", func() (*FeaturePair, error) { return CovFeatures(ch) }); err != nil {
		return nil, err
	}
	if err := run("pca-28", func() (*FeaturePair, error) { return PCAFeatures(ch, 28, p.Seed) }); err != nil {
		return nil, err
	}
	if err := run("raw-flatten (stride 10)", func() (*FeaturePair, error) {
		trainDS := ch.Train.X.Downsample(10)
		testDS := ch.Test.X.Downsample(10)
		var scaler preprocess.StandardScaler
		trainZ, err := scaler.FitTransform(trainDS.Flatten())
		if err != nil {
			return nil, err
		}
		testZ, err := scaler.Transform(testDS.Flatten())
		if err != nil {
			return nil, err
		}
		return &FeaturePair{TrainX: trainZ, TrainY: ch.Train.Y, TestX: testZ, TestY: ch.Test.Y}, nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// EigensolverAblation compares the exact Jacobi eigensolver against the
// randomized top-k solver for PCA on downsampled flattened trials:
// agreement of leading eigenvalues and wall-clock.
type EigensolverAblation struct {
	Dim           int
	K             int
	ExactElapsed  time.Duration
	RandomElapsed time.Duration
	MaxRelValDiff float64
	LeadingExact  []float64
	LeadingRandom []float64
}

// RunEigensolverAblation executes the comparison.
func RunEigensolverAblation(sim *telemetry.Simulator, p Preset) (*EigensolverAblation, error) {
	spec, _ := dataset.SpecByName("60-middle-1")
	ch, err := BuildDataset(sim, spec, p)
	if err != nil {
		return nil, err
	}
	// Downsample so the exact solver's O(d³) Jacobi stays tractable.
	ds := ch.Train.X.Downsample(10) // 54×7 → 378 dims
	var scaler preprocess.StandardScaler
	z, err := scaler.FitTransform(ds.Flatten())
	if err != nil {
		return nil, err
	}
	const k = 8
	res := &EigensolverAblation{Dim: z.Cols, K: k}

	start := time.Now()
	centered := z.Clone()
	means := mat.ColumnMeans(centered)
	for i := 0; i < centered.Rows; i++ {
		row := centered.Row(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	cov, err := mat.Covariance(centered, false)
	if err != nil {
		return nil, err
	}
	exactVals, _, err := mat.EigSym(cov)
	if err != nil {
		return nil, err
	}
	res.ExactElapsed = time.Since(start)
	res.LeadingExact = exactVals[:k]

	start = time.Now()
	randVals, _, err := mat.EigSymTopK(centered, k, 3, nil)
	if err != nil {
		return nil, err
	}
	res.RandomElapsed = time.Since(start)
	res.LeadingRandom = randVals

	for i := 0; i < k; i++ {
		rel := (exactVals[i] - randVals[i]) / (exactVals[i] + 1e-12)
		if rel < 0 {
			rel = -rel
		}
		if rel > res.MaxRelValDiff {
			res.MaxRelValDiff = rel
		}
	}
	return res, nil
}

// FormatAblations renders all ablation results.
func FormatAblations(sp *StartPhaseAblation, emb *EmbeddingAblation, eig *EigensolverAblation) string {
	s := ""
	if sp != nil {
		s += RenderTable("Ablation: class-agnostic startup phase (RF-Cov on 60-start-1)",
			[]string{"Startup phase", "Accuracy (%)"},
			[][]string{
				{"enabled (paper's setting)", pct(sp.WithStartup)},
				{"disabled", pct(sp.WithoutStartup)},
			}) + "\n"
	}
	if emb != nil {
		var rows [][]string
		for _, r := range emb.Rows {
			rows = append(rows, []string{r.Name, fmt.Sprintf("%d", r.Dim), pct(r.Accuracy), r.Elapsed.Round(time.Millisecond).String()})
		}
		s += RenderTable("Ablation: trial embedding (RF, 60-middle-1)",
			[]string{"Embedding", "Dim", "Accuracy (%)", "Wall clock"}, rows) + "\n"
	}
	if eig != nil {
		s += RenderTable("Ablation: PCA eigensolver (378-dim flattened trials, k=8)",
			[]string{"Solver", "Wall clock", "Max rel. eigenvalue diff"},
			[][]string{
				{"exact Jacobi", eig.ExactElapsed.Round(time.Millisecond).String(), "-"},
				{"randomized subspace", eig.RandomElapsed.Round(time.Millisecond).String(), fmt.Sprintf("%.2e", eig.MaxRelValDiff)},
			})
	}
	return s
}
