package core

import (
	"fmt"
	"strconv"

	"repro/internal/dataset"
	"repro/internal/telemetry"
)

// Table1Row is one family row of the paper's Table I.
type Table1Row struct {
	Domain    telemetry.Domain
	Family    telemetry.Family
	PaperJobs int
	// GeneratedJobs counts jobs in the simulated population (differs from
	// PaperJobs only when Scale < 1).
	GeneratedJobs int
}

// RunTable1 tallies architecture totals for all model families.
func RunTable1(sim *telemetry.Simulator) []Table1Row {
	gen := map[telemetry.Family]int{}
	for _, j := range sim.Jobs() {
		gen[j.Class.Family()]++
	}
	var rows []Table1Row
	for f := telemetry.Family(0); f < telemetry.NumFamilies; f++ {
		rows = append(rows, Table1Row{
			Domain:        f.Domain(),
			Family:        f,
			PaperJobs:     telemetry.FamilyJobCount(f),
			GeneratedJobs: gen[f],
		})
	}
	return rows
}

// FormatTable1 renders Table I.
func FormatTable1(rows []Table1Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Domain.String(), r.Family.String(),
			strconv.Itoa(r.PaperJobs), strconv.Itoa(r.GeneratedJobs),
		})
	}
	return RenderTable("Table I: architecture totals for all models",
		[]string{"Domain", "Family", "Paper jobs", "Generated jobs"}, cells)
}

// FormatTables2And3 renders the CPU and GPU sensor schemas (Tables II/III).
func FormatTables2And3() string {
	var cpu [][]string
	for s := telemetry.CPUSensor(0); s < telemetry.NumCPUSensors; s++ {
		cpu = append(cpu, []string{s.String(), s.Description()})
	}
	var gpu [][]string
	for s := telemetry.GPUSensor(0); s < telemetry.NumGPUSensors; s++ {
		gpu = append(gpu, []string{strconv.Itoa(int(s)), s.String(), s.Description()})
	}
	return RenderTable("Table II: CPU time series features for classification",
		[]string{"Metric", "Description"}, cpu) + "\n" +
		RenderTable("Table III: GPU time series features for classification",
			[]string{"Index", "Metric", "Description"}, gpu)
}

// Table4Row is one dataset row of the paper's Table IV.
type Table4Row struct {
	Name        string
	TrainTrials int
	TestTrials  int
	Samples     int
	Sensors     int
	PaperTrain  int
	PaperTest   int
}

// paperTable4 holds the published trial counts for reference columns.
var paperTable4 = map[string][2]int{
	"60-start-1":  {14590, 3648},
	"60-middle-1": {14213, 3554},
	"60-random-1": {14184, 3546},
	"60-random-2": {14183, 3546},
	"60-random-3": {14175, 3544},
	"60-random-4": {14193, 3549},
	"60-random-5": {14193, 3549},
}

// RunTable4 builds all seven challenge datasets (uncapped) and reports
// their shapes.
func RunTable4(sim *telemetry.Simulator, seed int64) ([]Table4Row, error) {
	var rows []Table4Row
	for _, spec := range dataset.ChallengeSpecs {
		opts := dataset.DefaultBuildOptions()
		opts.Seed = seed
		ch, err := dataset.Build(sim, spec, opts)
		if err != nil {
			return nil, fmt.Errorf("core: table 4 %s: %w", spec.Name, err)
		}
		paper := paperTable4[spec.Name]
		rows = append(rows, Table4Row{
			Name:        spec.Name,
			TrainTrials: ch.Train.Len(),
			TestTrials:  ch.Test.Len(),
			Samples:     ch.Train.X.T,
			Sensors:     ch.Train.X.C,
			PaperTrain:  paper[0],
			PaperTest:   paper[1],
		})
	}
	return rows, nil
}

// FormatTable4 renders Table IV with paper-vs-generated counts.
func FormatTable4(rows []Table4Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name,
			strconv.Itoa(r.TrainTrials), strconv.Itoa(r.TestTrials),
			strconv.Itoa(r.Samples), strconv.Itoa(r.Sensors),
			strconv.Itoa(r.PaperTrain), strconv.Itoa(r.PaperTest),
		})
	}
	return RenderTable("Table IV: workload classification challenge datasets",
		[]string{"Dataset", "Train", "Test", "Samples", "Sensors", "Paper train", "Paper test"}, cells)
}

// Table789Row is one class row of the appendix inventory.
type Table789Row struct {
	Class         telemetry.Class
	PaperJobs     int
	GeneratedJobs int
	GPUSeries     int
}

// RunTables789 tallies per-class job counts (appendix Tables VII-IX).
func RunTables789(sim *telemetry.Simulator) []Table789Row {
	gen := map[telemetry.Class]int{}
	series := map[telemetry.Class]int{}
	for _, j := range sim.Jobs() {
		gen[j.Class]++
		series[j.Class] += j.NumGPUs
	}
	var rows []Table789Row
	for _, c := range telemetry.AllClasses() {
		rows = append(rows, Table789Row{
			Class:         c,
			PaperJobs:     c.JobCount(),
			GeneratedJobs: gen[c],
			GPUSeries:     series[c],
		})
	}
	return rows
}

// FormatTables789 renders the class inventory.
func FormatTables789(rows []Table789Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", int(r.Class)), r.Class.Name(), r.Class.Family().String(),
			strconv.Itoa(r.PaperJobs), strconv.Itoa(r.GeneratedJobs), strconv.Itoa(r.GPUSeries),
		})
	}
	return RenderTable("Tables VII-IX: the 26 labelled architectures",
		[]string{"Label", "Model", "Family", "Paper jobs", "Generated jobs", "GPU series"}, cells)
}
