package core

import (
	"fmt"
	"strings"
)

// RenderTable renders an aligned plain-text table with a header rule,
// matching the layout the benchmark harness prints for each paper table.
func RenderTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// pct formats an accuracy as the paper prints them (two decimals, percent).
func pct(v float64) string { return fmt.Sprintf("%.2f", v*100) }
