package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/preprocess"
)

func TestFusedSensorNames(t *testing.T) {
	names := FusedSensorNames()
	if len(names) != FusedSensors || FusedSensors != 15 {
		t.Fatalf("fused sensors = %d names (const %d), want 15", len(names), FusedSensors)
	}
	if names[0] != "utilization_gpu_pct" || names[7] != "CPUFrequency" {
		t.Errorf("fused order wrong: %v", names[:9])
	}
	pairs := preprocess.CovariancePairNames(names)
	if len(pairs) != 120 {
		t.Errorf("fused embedding has %d entries, want 120", len(pairs))
	}
}

func TestIsCrossDevice(t *testing.T) {
	if !isCrossDevice("cov(utilization_gpu_pct,CPUUtilization)") {
		t.Error("gpu×cpu pair not detected")
	}
	if isCrossDevice("cov(utilization_gpu_pct,power_draw_W)") {
		t.Error("gpu×gpu pair misdetected")
	}
	if isCrossDevice("cov(CPUTime,CPUUtilization)") {
		t.Error("cpu×cpu pair misdetected")
	}
	if isCrossDevice("var(utilization_gpu_pct)") {
		t.Error("variance misdetected")
	}
}

func TestFusedCovFeatureShapes(t *testing.T) {
	sim := smokeSim(t)
	p := PresetSmoke()
	p.MaxTrain = 60
	p.MaxTest = 30
	spec, _ := dataset.SpecByName("60-middle-1")
	ch, err := BuildDataset(sim, spec, p)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := FusedCovFeatures(sim, ch)
	if err != nil {
		t.Fatal(err)
	}
	if fp.TrainX.Cols != 120 {
		t.Errorf("fused features have %d dims, want 120", fp.TrainX.Cols)
	}
	if fp.TrainX.Rows != ch.Train.Len() || fp.TestX.Rows != ch.Test.Len() {
		t.Error("fused feature row counts wrong")
	}
}

func TestRunFusedImportanceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fused importance run takes ~a minute")
	}
	sim := smokeSim(t)
	p := PresetSmoke()
	p.MaxTrain = 120
	p.MaxTest = 60
	p.XGBRounds = 8
	res, err := RunFusedImportance(sim, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FusedAccuracy <= 0 || res.GPUOnlyAccuracy <= 0 {
		t.Errorf("degenerate accuracies: %+v", res)
	}
	if len(res.TopFeatures) == 0 {
		t.Fatal("no top features")
	}
	out := FormatFused(res)
	if !strings.Contains(out, "CPU+GPU") || !strings.Contains(out, "gain importance") {
		t.Errorf("render missing content:\n%s", out)
	}
}
