package events

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestPublishStampsSeqAndTime(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(SubOptions{})
	defer sub.Close()
	b.Publish(Event{Type: TypePrediction, Job: Intp(1), Class: Intp(3)})
	b.Publish(Event{Type: TypePrediction, Job: Intp(2), Class: Intp(4)})
	e1 := <-sub.Events()
	e2 := <-sub.Events()
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("sequence numbers %d, %d; want 1, 2", e1.Seq, e2.Seq)
	}
	if e1.TimeUnixMS == 0 {
		t.Fatal("publish did not stamp TimeUnixMS")
	}
	if got := b.Stats().Published; got != 2 {
		t.Fatalf("Published = %d, want 2", got)
	}
}

func TestSwapAdvancesGeneration(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(SubOptions{})
	defer sub.Close()
	b.Publish(Event{Type: TypePrediction, Job: Intp(1), Class: Intp(0)})
	b.Publish(Event{Type: TypeSwap, Model: "*forest.Forest"})
	b.Publish(Event{Type: TypeUnknown, Job: Intp(1), Class: Intp(0)})
	pre := <-sub.Events()
	swap := <-sub.Events()
	post := <-sub.Events()
	if pre.Gen != 0 {
		t.Fatalf("pre-swap event at generation %d, want 0", pre.Gen)
	}
	if swap.Gen != 1 || post.Gen != 1 {
		t.Fatalf("swap/post generations %d/%d, want 1/1", swap.Gen, post.Gen)
	}
	if b.Gen() != 1 {
		t.Fatalf("bus generation %d, want 1", b.Gen())
	}
}

func TestTypeAndJobFilters(t *testing.T) {
	b := NewBus()
	unknownOnly := b.Subscribe(SubOptions{Types: []Type{TypeUnknown}})
	defer unknownOnly.Close()
	job7 := b.Subscribe(SubOptions{Job: Intp(7)})
	defer job7.Close()

	b.Publish(Event{Type: TypePrediction, Job: Intp(7), Class: Intp(1)})
	b.Publish(Event{Type: TypePrediction, Job: Intp(8), Class: Intp(2)})
	b.Publish(Event{Type: TypeUnknown, Job: Intp(8), Class: Intp(2)})
	b.Publish(Event{Type: TypeSwap})

	if e := <-unknownOnly.Events(); e.Type != TypeUnknown || *e.Job != 8 {
		t.Fatalf("type-filtered subscriber got %+v", e)
	}
	select {
	case e := <-unknownOnly.Events():
		t.Fatalf("type-filtered subscriber got extra event %+v", e)
	default:
	}

	// Job filter: job 7's prediction and the job-less swap deliver; job 8's
	// two events do not.
	if e := <-job7.Events(); e.Type != TypePrediction || *e.Job != 7 {
		t.Fatalf("job-filtered subscriber got %+v", e)
	}
	if e := <-job7.Events(); e.Type != TypeSwap {
		t.Fatalf("job-filtered subscriber missed the fleet-scoped swap, got %+v", e)
	}
	select {
	case e := <-job7.Events():
		t.Fatalf("job-filtered subscriber got extra event %+v", e)
	default:
	}
}

// TestSlowSubscriberEvicted pins the slow-client policy: a subscriber that
// stops draining is evicted the moment its bounded queue overflows — the
// publisher never blocks, the channel closes, and the stats account for it.
func TestSlowSubscriberEvicted(t *testing.T) {
	b := NewBus()
	stalled := b.Subscribe(SubOptions{Buffer: 4})
	healthy := b.Subscribe(SubOptions{Buffer: 64})
	defer healthy.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 16; i++ {
			b.Publish(Event{Type: TypePrediction, Job: Intp(i), Class: Intp(0)})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a stalled subscriber")
	}

	// The stalled subscription's channel must close after its 4 buffered
	// events.
	n := 0
	for range stalled.Events() {
		n++
	}
	if n != 4 {
		t.Fatalf("stalled subscriber drained %d events before close, want 4", n)
	}
	if !stalled.Evicted() {
		t.Fatal("stalled subscriber not marked evicted")
	}
	st := b.Stats()
	if st.Evicted != 1 || st.Subscribers != 1 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	if st.Dropped == 0 {
		t.Fatal("eviction recorded no dropped events")
	}
	// Eviction then Close must not double-close.
	stalled.Close()

	// The healthy subscriber saw everything.
	got := 0
	for len(healthy.Events()) > 0 {
		<-healthy.Events()
		got++
	}
	if got != 16 {
		t.Fatalf("healthy subscriber saw %d events, want 16", got)
	}
}

// TestConcurrentPublishSubscribeEvict hammers the bus from many publishers
// while subscribers churn and some deliberately stall; run under -race this
// pins the locking discipline, and the final goroutine count pins that
// evicted subscribers leak nothing.
func TestConcurrentPublishSubscribeEvict(t *testing.T) {
	before := runtime.NumGoroutine()
	b := NewBus()
	var pubs, readers sync.WaitGroup
	for p := 0; p < 4; p++ {
		pubs.Add(1)
		go func(p int) {
			defer pubs.Done()
			for i := 0; i < 500; i++ {
				b.Publish(Event{Type: TypePrediction, Job: Intp(i), Class: Intp(p)})
				if i%100 == 0 {
					b.Publish(Event{Type: TypeSwap})
				}
			}
		}(p)
	}
	subs := make([]*Subscription, 8)
	for s := 0; s < 8; s++ {
		subs[s] = b.Subscribe(SubOptions{Buffer: 8})
		if s%2 == 0 {
			// Stall: never read; the bus must evict without help.
			continue
		}
		readers.Add(1)
		go func(sub *Subscription) {
			defer readers.Done()
			for range sub.Events() {
			}
		}(subs[s])
	}
	pubs.Wait()
	// Unblock any reader whose subscription outlived the publishers; Close
	// is a no-op on the evicted ones.
	for _, sub := range subs {
		sub.Close()
	}
	readers.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

func TestNilBusIsValidSink(t *testing.T) {
	var b *Bus
	// Must not panic; emitters publish unconditionally through a nil bus.
	b.Publish(Event{Type: TypePrediction})
}

func TestSubscriptionCloseIsIdempotent(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(SubOptions{})
	sub.Close()
	sub.Close()
	if st := b.Stats(); st.Subscribers != 0 {
		t.Fatalf("subscribers after close: %d", st.Subscribers)
	}
	b.Publish(Event{Type: TypeSwap}) // must not panic on the closed sub
}
