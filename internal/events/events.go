// Package events is the push plane of the serving stack: a
// generation-aware event bus carrying the discrete moments polling smears
// — a job's classification changing, an open-set verdict rejecting a
// workload as unknown, the fleet drift score crossing a PSI band, a model
// hot-swap installing, a shard tick loop failing or recovering.
//
// The bus is built for untrusted, possibly stalled consumers:
//
//   - every subscriber owns a bounded queue (Subscribe's Buffer); Publish
//     never blocks on any of them;
//   - a subscriber whose queue is full when an event arrives is evicted —
//     its channel closes, its slot frees — so one stalled SSE reader can
//     never apply backpressure to tick write-back or leak its goroutine;
//   - events are stamped with a monotonically increasing sequence number
//     and the model generation that produced them: swap events advance the
//     generation, so a consumer can tell whether a verdict was scored by
//     the model before or after a hot-swap without any extra round trip.
//
// Publishing is cheap and safe from any goroutine, including under the
// fleet's tick and swap locks. A nil *Bus is a valid no-op sink, so
// emitters need no "events enabled?" branches — and the equivalence tests
// pin that an events-enabled fleet produces bit-identical predictions to
// an events-disabled one.
package events

import (
	"sync"
	"time"
)

// Type names one kind of event on the bus.
type Type string

const (
	// TypePrediction fires when a job's classified class changes (including
	// its first classification). Re-scores that keep the same class are not
	// events — polling GET /v1/jobs covers steady state.
	TypePrediction Type = "prediction"
	// TypeUnknown fires when a job's open-set verdict transitions to
	// rejected: the fleet has decided this workload matches no trained
	// family.
	TypeUnknown Type = "unknown"
	// TypeDrift fires when the fleet drift score (max per-sensor PSI)
	// crosses a band boundary — stable / moderate / major — in either
	// direction.
	TypeDrift Type = "drift"
	// TypeSwap fires when a model hot-swap installs fleet-wide. It advances
	// the bus generation: events with a higher Gen were produced by the new
	// model.
	TypeSwap Type = "swap"
	// TypeShardHealth fires when a serving tick loop's error state changes:
	// a shard's tick failing after successes, or recovering after a
	// failure.
	TypeShardHealth Type = "shard_health"
	// TypeMembership fires when a cluster node's liveness view of a peer
	// changes: a peer marked dead after missed heartbeats, or alive again
	// after rejoining (see internal/cluster).
	TypeMembership Type = "membership"
	// TypeClusterSwap fires as a rolling fleet-wide swap advances through
	// its phases — replicated, prepared, committed, aborted — on the
	// orchestrating node. Per-node model installs still publish TypeSwap on
	// each node's own bus; TypeClusterSwap narrates the cross-node protocol.
	TypeClusterSwap Type = "cluster_swap"
	// TypeAdapt fires as the continual-learning flywheel advances through
	// its lifecycle (see internal/adapt): a candidate model built from
	// clustered unknown traffic ("candidate"), shadow scoring starting
	// ("shadow"), the candidate promoted into serving ("promoted"), or the
	// attempt abandoned ("aborted"). The promotion itself still installs
	// through the swap path and publishes TypeSwap.
	TypeAdapt Type = "adapt"
)

// Types lists every event type the serving plane emits, in the order the
// documentation presents them.
func Types() []Type {
	return []Type{TypePrediction, TypeUnknown, TypeDrift, TypeSwap, TypeShardHealth, TypeMembership, TypeClusterSwap, TypeAdapt}
}

// Event is one moment on the bus. Seq, Gen, Type and TimeUnixMS are always
// set; the remaining fields depend on Type and marshal only when present,
// so the SSE wire form stays lean.
type Event struct {
	// Seq is the bus-wide publication sequence number, strictly increasing.
	Seq uint64 `json:"seq"`
	// Gen is the model generation the event belongs to; swap events carry
	// the generation they installed.
	Gen uint64 `json:"gen"`
	// Type discriminates the payload fields below.
	Type Type `json:"type"`
	// TimeUnixMS is the publication time (stamped by the bus when zero).
	TimeUnixMS int64 `json:"time_unix_ms"`

	// Job, Class, PrevClass and Probability describe prediction and
	// unknown events. PrevClass is absent on a job's first classification.
	Job         *int    `json:"job,omitempty"`
	Class       *int    `json:"class,omitempty"`
	PrevClass   *int    `json:"prev_class,omitempty"`
	Probability float64 `json:"probability,omitempty"`
	// FeatDist is the unknown event's feature-space distance from the
	// training distribution — the score that carries open-set recall.
	FeatDist float64 `json:"feature_distance,omitempty"`

	// Score, Band and PrevBand describe drift events: the fleet PSI score
	// and the band it moved between.
	Score    float64 `json:"score,omitempty"`
	Band     string  `json:"band,omitempty"`
	PrevBand string  `json:"prev_band,omitempty"`

	// Model names the swapped-in classifier on swap events.
	Model string `json:"model,omitempty"`

	// Shard, Error and Healthy describe shard-health events; Error is empty
	// on recovery. Healthy doubles as the liveness verdict on membership
	// events.
	Shard   *int   `json:"shard,omitempty"`
	Error   string `json:"error,omitempty"`
	Healthy *bool  `json:"healthy,omitempty"`

	// Node and Phase describe cluster events: Node is the peer a membership
	// event speaks about (or the node a cluster-swap phase just covered),
	// Phase is the rolling-swap phase reached ("replicated", "prepared",
	// "committed", "aborted"). Adapt events reuse Phase for the lifecycle
	// step reached ("candidate", "shadow", "promoted", "aborted") and Model
	// for the candidate artifact description.
	Node  *int   `json:"node,omitempty"`
	Phase string `json:"phase,omitempty"`
}

// Sink accepts published events. *Bus implements it; emitters hold a Sink
// so tests can capture emission without a bus.
type Sink interface {
	Publish(Event)
}

// Stats is a point-in-time read of the bus counters.
type Stats struct {
	// Published counts events accepted by Publish.
	Published uint64
	// Dropped counts events a subscriber missed because its queue was full
	// at publication (each such event also evicts that subscriber).
	Dropped uint64
	// Evicted counts subscribers removed for falling behind.
	Evicted uint64
	// Subscribers is the current live subscription count.
	Subscribers int
}

// Bus fans published events out to subscribers. The zero value is not
// usable; construct with NewBus. A nil *Bus is a valid Sink that discards
// everything.
type Bus struct {
	mu        sync.Mutex
	subs      map[*Subscription]struct{}
	seq       uint64
	gen       uint64
	published uint64
	dropped   uint64
	evicted   uint64
}

// NewBus returns an empty bus at generation 0.
func NewBus() *Bus {
	return &Bus{subs: make(map[*Subscription]struct{})}
}

// Publish stamps the event (sequence, generation, time when unset) and
// delivers it to every matching subscriber without blocking: a subscriber
// whose queue is full is evicted on the spot. Safe from any goroutine; a
// nil receiver discards the event.
func (b *Bus) Publish(e Event) {
	if b == nil {
		return
	}
	if e.TimeUnixMS == 0 {
		e.TimeUnixMS = time.Now().UnixMilli()
	}
	b.mu.Lock()
	b.seq++
	if e.Type == TypeSwap {
		b.gen++
	}
	e.Seq = b.seq
	e.Gen = b.gen
	b.published++
	for sub := range b.subs {
		if !sub.matches(e) {
			continue
		}
		select {
		case sub.ch <- e:
		default:
			// The subscriber fell behind its bounded queue: evict it so a
			// stalled reader can never block the publisher. Closing under
			// b.mu is safe — sends only happen here, under the same lock.
			delete(b.subs, sub)
			close(sub.ch)
			sub.evicted = true
			b.dropped++
			b.evicted++
		}
	}
	b.mu.Unlock()
}

// Gen returns the current model generation (the number of swap events
// published so far).
func (b *Bus) Gen() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gen
}

// Stats snapshots the bus counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		Published:   b.published,
		Dropped:     b.dropped,
		Evicted:     b.evicted,
		Subscribers: len(b.subs),
	}
}

// SubOptions filters and sizes one subscription.
type SubOptions struct {
	// Buffer bounds the subscriber's queue (default 256). When the queue is
	// full at publication the subscriber is evicted.
	Buffer int
	// Types restricts delivery to these event types; empty means all.
	Types []Type
	// Job, when non-nil, restricts job-scoped events (prediction, unknown)
	// to this job ID; events without a job (drift, swap, shard health)
	// still deliver, so a job-scoped dashboard keeps its fleet context.
	Job *int
}

// Subscription is one subscriber's handle: receive from Events until it
// closes, then check Evicted to distinguish a slow-client eviction from an
// orderly Close.
type Subscription struct {
	bus     *Bus
	ch      chan Event
	types   map[Type]struct{} // nil = all
	job     *int
	evicted bool // guarded by bus.mu until the channel closes
}

// Subscribe registers a new subscriber and returns its handle. The caller
// must either drain Events promptly or accept eviction; Close releases the
// slot early.
func (b *Bus) Subscribe(opts SubOptions) *Subscription {
	if opts.Buffer <= 0 {
		opts.Buffer = 256
	}
	sub := &Subscription{bus: b, ch: make(chan Event, opts.Buffer), job: opts.Job}
	if len(opts.Types) > 0 {
		sub.types = make(map[Type]struct{}, len(opts.Types))
		for _, t := range opts.Types {
			sub.types[t] = struct{}{}
		}
	}
	b.mu.Lock()
	b.subs[sub] = struct{}{}
	b.mu.Unlock()
	return sub
}

// Events is the subscriber's receive side. It closes on eviction or Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Evicted reports whether the bus removed this subscriber for falling
// behind. Meaningful once Events has closed.
func (s *Subscription) Evicted() bool {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.evicted
}

// Close unsubscribes and closes Events. Safe to call more than once, and
// safe concurrently with Publish; after an eviction it is a no-op.
func (s *Subscription) Close() {
	s.bus.mu.Lock()
	if _, ok := s.bus.subs[s]; ok {
		delete(s.bus.subs, s)
		close(s.ch)
	}
	s.bus.mu.Unlock()
}

// matches reports whether the event passes the subscription's filters;
// callers hold bus.mu.
func (s *Subscription) matches(e Event) bool {
	if s.types != nil {
		if _, ok := s.types[e.Type]; !ok {
			return false
		}
	}
	if s.job != nil && e.Job != nil && *e.Job != *s.job {
		return false
	}
	return true
}

// Intp is a small helper for building job-scoped events: it returns a
// pointer to v, the form the Event's optional fields take.
func Intp(v int) *int { return &v }

// Boolp returns a pointer to v, for Event.Healthy.
func Boolp(v bool) *bool { return &v }
