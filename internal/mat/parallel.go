package mat

import (
	"runtime"
	"sync"
)

// ParallelRowBlocks splits rows into up to workers contiguous blocks
// (workers ≤ 0 selects GOMAXPROCS, and never more blocks than rows) and
// runs fn on each block concurrently, returning the first error. With a
// single block fn runs inline on the caller's goroutine. It is the shared
// scaffolding of the model packages' batched predict paths.
func ParallelRowBlocks(rows, workers int, fn func(lo, hi int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		return fn(0, rows)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	block := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*block, (w+1)*block
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
