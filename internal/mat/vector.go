package mat

import "math"

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range x {
		x[i] *= inv
	}
	return n
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x around its mean.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// ArgMax returns the index of the largest element of x (first on ties),
// or -1 for an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i := 1; i < len(x); i++ {
		if x[i] > best {
			best, bi = x[i], i
		}
	}
	return bi
}

// SumSlice returns the sum of x.
func SumSlice(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Clip limits v to the closed interval [lo, hi].
func Clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
