package mat

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// EigSym computes the full eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi method. It returns the eigenvalues in descending
// order and a matrix whose columns are the corresponding unit eigenvectors.
//
// Jacobi is exact and robust but O(n³) per sweep, so it is used for the
// small covariance matrices this project produces directly (the 7×7 sensor
// covariance, the 28×28 embedding covariance). For PCA on flattened trials
// (3,780 dimensions) use EigSymTopK instead.
func EigSym(a *Matrix) (values []float64, vectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("mat: EigSym needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if n == 0 {
		return nil, New(0, 0), nil
	}
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += w.At(p, q) * w.At(p, q)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation G(p,q,θ) on both sides of w and
				// accumulate it into v.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := New(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// EigSymTopK approximates the k largest eigenpairs of the symmetric PSD
// matrix implicitly defined by XᵀX/(n-1), where x holds one centered
// observation per row. It uses a randomized subspace iteration (Halko et
// al.) with a fixed number of power iterations, which avoids ever forming
// the d×d covariance when d is large (PCA on 3,780-dim flattened trials).
//
// Returned eigenvalues are in descending order; vectors holds the
// corresponding unit eigenvectors as columns (d×k).
func EigSymTopK(x *Matrix, k, powerIters int, rng *rand.Rand) (values []float64, vectors *Matrix, err error) {
	n, d := x.Rows, x.Cols
	if n < 2 {
		return nil, nil, errors.New("mat: EigSymTopK needs at least two observations")
	}
	if k <= 0 || k > d {
		return nil, nil, fmt.Errorf("mat: EigSymTopK k=%d out of range (d=%d)", k, d)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	oversample := 8
	l := k + oversample
	if l > d {
		l = d
	}
	if l > n {
		l = n
	}
	if l < k {
		k = l
	}

	// Q: d×l random range, refined by power iteration on A = XᵀX.
	q := New(d, l)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
	}
	orthonormalizeColumns(q)

	y := New(n, l) // X * Q
	z := New(d, l) // Xᵀ * Y
	xt := x.T()    // materialise once; reused across iterations
	for it := 0; it <= powerIters; it++ {
		MulInto(y, x, q)
		MulInto(z, xt, y)
		copy(q.Data, z.Data)
		orthonormalizeColumns(q)
	}

	// Project: B = Qᵀ (XᵀX) Q / (n-1)  (l×l, small), solve exactly.
	MulInto(y, x, q)
	b := New(l, l)
	for i := 0; i < l; i++ {
		for j := i; j < l; j++ {
			var s float64
			for r := 0; r < n; r++ {
				s += y.At(r, i) * y.At(r, j)
			}
			s /= float64(n - 1)
			b.Set(i, j, s)
			b.Set(j, i, s)
		}
	}
	bvals, bvecs, err := EigSym(b)
	if err != nil {
		return nil, nil, err
	}

	// Lift back: V = Q * Bvecs, keep first k columns.
	full, err := Mul(q, bvecs)
	if err != nil {
		return nil, nil, err
	}
	vectors = New(d, k)
	values = make([]float64, k)
	for c := 0; c < k; c++ {
		values[c] = bvals[c]
		for r := 0; r < d; r++ {
			vectors.Set(r, c, full.At(r, c))
		}
	}
	return values, vectors, nil
}

// orthonormalizeColumns applies modified Gram-Schmidt to the columns of q
// in place. Columns that become numerically zero are replaced with unit
// basis vectors to keep the basis full rank.
func orthonormalizeColumns(q *Matrix) {
	d, l := q.Rows, q.Cols
	col := make([]float64, d)
	for j := 0; j < l; j++ {
		for r := 0; r < d; r++ {
			col[r] = q.At(r, j)
		}
		for p := 0; p < j; p++ {
			var dot float64
			for r := 0; r < d; r++ {
				dot += col[r] * q.At(r, p)
			}
			for r := 0; r < d; r++ {
				col[r] -= dot * q.At(r, p)
			}
		}
		n := Norm2(col)
		if n < 1e-12 {
			for r := range col {
				col[r] = 0
			}
			col[j%d] = 1
		} else {
			inv := 1 / n
			for r := range col {
				col[r] *= inv
			}
		}
		for r := 0; r < d; r++ {
			q.Set(r, j, col[r])
		}
	}
}
