// Package mat provides the dense linear-algebra kernels used throughout the
// reproduction: matrices backed by flat float64 slices, covariance
// computation, symmetric eigendecomposition (exact Jacobi and a randomized
// top-k solver), and the small vector kernels the model packages share.
//
// The package is deliberately minimal: it implements exactly what the
// preprocessing (StandardScaler, PCA, covariance embedding) and the neural
// network layers need, with row-major storage so that per-row operations
// (one trial, one sample) are contiguous.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty matrix. Data is stored in a single backing
// slice of length Rows*Cols so that row i occupies
// Data[i*Cols : (i+1)*Cols].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major, length rows*cols) in a Matrix without
// copying. The caller must not resize data afterwards.
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("mat: data length %d does not match %dx%d", len(data), rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// FromRows builds a matrix by copying the given rows, which must all have
// equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("mat: row %d has length %d, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into a new slice.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Mul returns the matrix product a*b.
//
// The implementation is the classic ikj loop order so the inner loop runs
// over contiguous memory in both b and the destination; this is the hot path
// for PCA projection and the neural-network layers.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("mat: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Cols)
	MulInto(out, a, b)
	return out, nil
}

// MulInto computes dst = a*b, where dst must already have shape
// a.Rows×b.Cols. dst is overwritten. It panics on shape mismatch; it exists
// so hot loops (NN training) can reuse buffers without reallocating.
func MulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulInto shape mismatch dst %dx%d = %dx%d * %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulTransInto computes dst = a*bᵀ without materialising the transpose.
// dst must have shape a.Rows×b.Rows.
func MulTransInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulTransInto shape mismatch dst %dx%d = %dx%d * (%dx%d)ᵀ",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] = Dot(arow, b.Row(j))
		}
	}
}

// Add computes m += other element-wise.
func (m *Matrix) Add(other *Matrix) error {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return fmt.Errorf("mat: Add shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols)
	}
	for i, v := range other.Data {
		m.Data[i] += v
	}
	return nil
}

// Scale multiplies every element of m by s.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Equal reports whether a and b have the same shape and all elements are
// within tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// ColumnMeans returns the mean of each column of m.
func ColumnMeans(m *Matrix) []float64 {
	means := make([]float64, m.Cols)
	if m.Rows == 0 {
		return means
	}
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			means[j] += v
		}
	}
	inv := 1.0 / float64(m.Rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// ColumnStds returns the population standard deviation of each column
// (matching scikit-learn's StandardScaler, which divides by N).
func ColumnStds(m *Matrix, means []float64) []float64 {
	stds := make([]float64, m.Cols)
	if m.Rows == 0 {
		return stds
	}
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			d := v - means[j]
			stds[j] += d * d
		}
	}
	inv := 1.0 / float64(m.Rows)
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] * inv)
	}
	return stds
}

// Covariance returns the d×d sample covariance matrix of the rows of x
// (each row one observation), normalised by N-1. If centered is false the
// raw second-moment matrix XᵀX/(N-1) is returned instead, which is the
// paper's MᵀM trial embedding before mean removal.
func Covariance(x *Matrix, centered bool) (*Matrix, error) {
	if x.Rows < 2 {
		return nil, errors.New("mat: covariance needs at least two rows")
	}
	d := x.Cols
	cov := New(d, d)
	var means []float64
	if centered {
		means = ColumnMeans(x)
	} else {
		means = make([]float64, d)
	}
	row := make([]float64, d)
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		for j := range row {
			row[j] = src[j] - means[j]
		}
		for a := 0; a < d; a++ {
			va := row[a]
			if va == 0 {
				continue
			}
			crow := cov.Row(a)
			for b := a; b < d; b++ {
				crow[b] += va * row[b]
			}
		}
	}
	inv := 1.0 / float64(x.Rows-1)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.At(a, b) * inv
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov, nil
}

// String renders small matrices for debugging; large matrices are summarised.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
