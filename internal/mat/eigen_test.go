package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEigSymDiagonal(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Errorf("eigenvalues = %v", vals)
	}
	// First eigenvector should be ±e1.
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-8 {
		t.Errorf("first eigenvector = %v %v", vecs.At(0, 0), vecs.At(1, 0))
	}
}

func TestEigSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	// Check A v = λ v for first pair.
	v0 := vecs.Col(0)
	av := []float64{2*v0[0] + v0[1], v0[0] + 2*v0[1]}
	for i := range av {
		if math.Abs(av[i]-3*v0[i]) > 1e-8 {
			t.Errorf("A v != λ v at %d: %v vs %v", i, av[i], 3*v0[i])
		}
	}
}

func TestEigSymNonSquare(t *testing.T) {
	if _, _, err := EigSym(New(2, 3)); err == nil {
		t.Error("EigSym on non-square should fail")
	}
}

func TestEigSymEmpty(t *testing.T) {
	vals, vecs, err := EigSym(New(0, 0))
	if err != nil || len(vals) != 0 || vecs.Rows != 0 {
		t.Errorf("EigSym(0x0) = %v %v %v", vals, vecs, err)
	}
}

// TestEigSymReconstruction checks A == V diag(λ) Vᵀ on random symmetric
// matrices, the defining property of the decomposition.
func TestEigSymReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigSym(a)
		if err != nil {
			return false
		}
		// Eigenvalues must be sorted descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-10 {
				return false
			}
		}
		// Reconstruct.
		recon := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += vecs.At(i, k) * vals[k] * vecs.At(j, k)
				}
				recon.Set(i, j, s)
			}
		}
		return Equal(recon, a, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEigSymOrthonormal checks VᵀV == I.
func TestEigSymOrthonormal(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 10
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	_, vecs, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := Mul(vecs.T(), vecs)
	if !Equal(prod, Identity(n), 1e-8) {
		t.Error("eigenvectors not orthonormal")
	}
}

func TestEigSymTopKMatchesExact(t *testing.T) {
	// Build observations with a known dominant direction, compare the
	// randomized solver against exact Jacobi on the explicit covariance.
	r := rand.New(rand.NewSource(3))
	n, d := 200, 12
	x := New(n, d)
	for i := 0; i < n; i++ {
		base := r.NormFloat64() * 5
		for j := 0; j < d; j++ {
			x.Set(i, j, base*float64(j%3)+r.NormFloat64())
		}
	}
	// Center columns.
	means := ColumnMeans(x)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	cov, err := Covariance(x, false)
	if err != nil {
		t.Fatal(err)
	}
	exactVals, _, err := EigSym(cov)
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	vals, vecs, err := EigSymTopK(x, k, 4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if vecs.Rows != d || vecs.Cols != k {
		t.Fatalf("vectors shape %dx%d, want %dx%d", vecs.Rows, vecs.Cols, d, k)
	}
	for i := 0; i < k; i++ {
		rel := math.Abs(vals[i]-exactVals[i]) / (math.Abs(exactVals[i]) + 1e-12)
		if rel > 0.02 {
			t.Errorf("eigenvalue %d: randomized %v vs exact %v (rel err %v)", i, vals[i], exactVals[i], rel)
		}
	}
}

func TestEigSymTopKErrors(t *testing.T) {
	if _, _, err := EigSymTopK(New(1, 4), 2, 2, nil); err == nil {
		t.Error("one observation should fail")
	}
	if _, _, err := EigSymTopK(New(10, 4), 0, 2, nil); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := EigSymTopK(New(10, 4), 5, 2, nil); err == nil {
		t.Error("k>d should fail")
	}
}

func TestEigSymTopKNilRNG(t *testing.T) {
	x := New(20, 5)
	r := rand.New(rand.NewSource(11))
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	if _, _, err := EigSymTopK(x, 2, 2, nil); err != nil {
		t.Errorf("nil rng should default: %v", err)
	}
}

func TestOrthonormalizeColumns(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	q := New(10, 4)
	for i := range q.Data {
		q.Data[i] = r.NormFloat64()
	}
	orthonormalizeColumns(q)
	for a := 0; a < 4; a++ {
		ca := q.Col(a)
		if math.Abs(Norm2(ca)-1) > 1e-10 {
			t.Errorf("column %d not unit norm", a)
		}
		for b := a + 1; b < 4; b++ {
			if math.Abs(Dot(ca, q.Col(b))) > 1e-10 {
				t.Errorf("columns %d,%d not orthogonal", a, b)
			}
		}
	}
}
