package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Errorf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.Row(1)[2]; got != 7.5 {
		t.Errorf("Row(1)[2] = %v, want 7.5", got)
	}
	col := m.Col(2)
	if col[1] != 7.5 || len(col) != 3 {
		t.Errorf("Col(2) = %v", col)
	}
}

func TestFromSlice(t *testing.T) {
	if _, err := FromSlice(2, 2, []float64{1, 2, 3}); err == nil {
		t.Error("FromSlice with wrong length should fail")
	}
	m, err := FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Errorf("FromRows gave %v", m)
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Error("ragged FromRows should fail")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Errorf("FromRows(nil) = %v, %v", empty, err)
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T() shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("T() content wrong: %v", tr)
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(c, want, 1e-12) {
		t.Errorf("Mul = %v, want %v", c, want)
	}
	if _, err := Mul(a, New(3, 2)); err == nil {
		t.Error("mismatched Mul should fail")
	}
}

func TestMulTransInto(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b, _ := FromRows([][]float64{{1, 0, 1}, {0, 1, 0}})
	dst := New(2, 2)
	MulTransInto(dst, a, b)
	bt := b.T()
	want, _ := Mul(a, bt)
	if !Equal(dst, want, 1e-12) {
		t.Errorf("MulTransInto = %v, want %v", dst, want)
	}
}

func TestIdentityMulProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		m := New(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		prod, err := Mul(m, Identity(n))
		if err != nil {
			return false
		}
		return Equal(prod, m, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(6), 1+r.Intn(6)
		m := New(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		return Equal(m.T().T(), m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAddScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	b, _ := FromRows([][]float64{{3, 4}})
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != 6 {
		t.Errorf("Add gave %v", a)
	}
	a.Scale(0.5)
	if a.At(0, 0) != 2 {
		t.Errorf("Scale gave %v", a)
	}
	if err := a.Add(New(2, 2)); err == nil {
		t.Error("mismatched Add should fail")
	}
}

func TestColumnMeansStds(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 10}, {3, 30}})
	means := ColumnMeans(m)
	if means[0] != 2 || means[1] != 20 {
		t.Errorf("means = %v", means)
	}
	stds := ColumnStds(m, means)
	if math.Abs(stds[0]-1) > 1e-12 || math.Abs(stds[1]-10) > 1e-12 {
		t.Errorf("stds = %v", stds)
	}
}

func TestCovariance(t *testing.T) {
	// Two perfectly correlated columns.
	m, _ := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}})
	cov, err := Covariance(m, true)
	if err != nil {
		t.Fatal(err)
	}
	// Var(col0) with N-1: mean 2.5, sum sq dev = 5, /3.
	if math.Abs(cov.At(0, 0)-5.0/3.0) > 1e-12 {
		t.Errorf("cov[0,0] = %v", cov.At(0, 0))
	}
	if math.Abs(cov.At(0, 1)-2*cov.At(0, 0)) > 1e-12 {
		t.Errorf("cov[0,1] = %v, want %v", cov.At(0, 1), 2*cov.At(0, 0))
	}
	if cov.At(0, 1) != cov.At(1, 0) {
		t.Error("covariance not symmetric")
	}
	if _, err := Covariance(New(1, 2), true); err == nil {
		t.Error("covariance of one row should fail")
	}
}

func TestCovarianceUncentered(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	cov, err := Covariance(m, false)
	if err != nil {
		t.Fatal(err)
	}
	// Raw XᵀX / (n-1): X^T X = [[2,1],[1,2]].
	if math.Abs(cov.At(0, 0)-1) > 1e-12 || math.Abs(cov.At(0, 1)-0.5) > 1e-12 {
		t.Errorf("uncentered cov = %v", cov)
	}
}

func TestCovarianceSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 3+r.Intn(20), 1+r.Intn(6)
		m := New(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64() * 3
		}
		cov, err := Covariance(m, true)
		if err != nil {
			return false
		}
		for i := 0; i < cols; i++ {
			if cov.At(i, i) < -1e-12 {
				return false // variance must be non-negative
			}
			for j := 0; j < cols; j++ {
				if math.Abs(cov.At(i, j)-cov.At(j, i)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVectorKernels(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy gave %v", y)
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Error("Norm2 wrong")
	}
	v := []float64{3, 4}
	if n := Normalize(v); math.Abs(n-5) > 1e-12 || math.Abs(Norm2(v)-1) > 1e-12 {
		t.Errorf("Normalize gave norm %v vec %v", n, v)
	}
	zero := []float64{0, 0}
	if Normalize(zero) != 0 {
		t.Error("Normalize of zero vector should return 0")
	}
	if Mean([]float64{2, 4}) != 3 || Mean(nil) != 0 {
		t.Error("Mean wrong")
	}
	if Variance([]float64{1, 3}) != 1 {
		t.Errorf("Variance = %v", Variance([]float64{1, 3}))
	}
	if ArgMax([]float64{1, 5, 3}) != 1 || ArgMax(nil) != -1 {
		t.Error("ArgMax wrong")
	}
	if Clip(5, 0, 3) != 3 || Clip(-1, 0, 3) != 0 || Clip(2, 0, 3) != 2 {
		t.Error("Clip wrong")
	}
}
