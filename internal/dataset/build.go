package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/telemetry"
)

// WindowMethod selects how the 60-second window is positioned within a
// trial's time series (the paper's three sampling strategies).
type WindowMethod int

const (
	// WindowStart takes the first 60 seconds of the series.
	WindowStart WindowMethod = iota
	// WindowMiddle takes the 60 seconds centred in the series.
	WindowMiddle
	// WindowRandom draws the window position uniformly at random.
	WindowRandom
)

func (m WindowMethod) String() string {
	switch m {
	case WindowStart:
		return "start"
	case WindowMiddle:
		return "middle"
	case WindowRandom:
		return "random"
	}
	return "unknown"
}

// Spec identifies one of the seven challenge datasets of Table IV.
type Spec struct {
	Name        string
	Method      WindowMethod
	RandomIndex int // 1..5 for the random variants, 1 otherwise
}

// ChallengeSpecs lists the seven datasets exactly as Table IV does.
var ChallengeSpecs = []Spec{
	{Name: "60-start-1", Method: WindowStart, RandomIndex: 1},
	{Name: "60-middle-1", Method: WindowMiddle, RandomIndex: 1},
	{Name: "60-random-1", Method: WindowRandom, RandomIndex: 1},
	{Name: "60-random-2", Method: WindowRandom, RandomIndex: 2},
	{Name: "60-random-3", Method: WindowRandom, RandomIndex: 3},
	{Name: "60-random-4", Method: WindowRandom, RandomIndex: 4},
	{Name: "60-random-5", Method: WindowRandom, RandomIndex: 5},
}

// SpecByName resolves a dataset name like "60-middle-1".
func SpecByName(name string) (Spec, bool) {
	for _, s := range ChallengeSpecs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// WindowSamples is the number of DCGM samples in one challenge window.
const WindowSamples = 540

// WindowSeconds is the window length in seconds.
const WindowSeconds = 60.0

// Eligibility thresholds (seconds). A start window only needs the first
// minute to exist; middle and random windows additionally need margin so
// the window is interior to the series. These generate the Table IV
// start>middle>random trial-count ordering.
const (
	minDurStart  = WindowSeconds + 1
	minDurMiddle = WindowSeconds + 12
	minDurRandom = WindowSeconds + 12
)

// Set is one side (train or test) of a challenge dataset: the tensor plus
// integer labels and model names, mirroring the X/y/model npz arrays.
type Set struct {
	X      *Tensor3
	Y      []int
	Models []string
	JobIDs []int     // provenance: generating job of each trial (not in the npz)
	GPUs   []int     // provenance: GPU index within the job
	T0s    []float64 // provenance: window start time within the job (s)
}

// Len returns the number of trials.
func (s *Set) Len() int { return len(s.Y) }

// NumClasses returns the label-space size (max label + 1).
func (s *Set) NumClasses() int {
	max := -1
	for _, y := range s.Y {
		if y > max {
			max = y
		}
	}
	return max + 1
}

// Select gathers the given trial indices into a new Set.
func (s *Set) Select(idx []int) *Set {
	out := &Set{
		X:      s.X.SelectTrials(idx),
		Y:      make([]int, len(idx)),
		Models: make([]string, len(idx)),
		JobIDs: make([]int, len(idx)),
		GPUs:   make([]int, len(idx)),
		T0s:    make([]float64, len(idx)),
	}
	for k, i := range idx {
		out.Y[k] = s.Y[i]
		out.Models[k] = s.Models[i]
		out.JobIDs[k] = s.JobIDs[i]
		out.GPUs[k] = s.GPUs[i]
		out.T0s[k] = s.T0s[i]
	}
	return out
}

// Challenge is one complete Table IV dataset: train and test splits.
type Challenge struct {
	Spec  Spec
	Train *Set
	Test  *Set
}

// BuildOptions controls dataset construction.
type BuildOptions struct {
	// TrainFrac is the training fraction of the 80/20 split.
	TrainFrac float64
	// Seed drives the split shuffle and random window draws.
	Seed int64
	// MaxTrialsPerSet truncates train/test after the split (0 = no limit);
	// used by the scaled presets to bound model-fitting cost.
	MaxTrialsPerSet int
}

// DefaultBuildOptions mirrors the challenge: 80/20 split.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{TrainFrac: 0.8, Seed: 1}
}

// trialRef identifies one GPU series with its chosen window.
type trialRef struct {
	job *telemetry.Job
	gpu int
	t0  float64
}

// Build extracts the named challenge dataset from the simulated labelled
// dataset. Per the paper, every GPU series of a multi-GPU job becomes its
// own trial carrying the job's label; series shorter than the eligibility
// threshold are dropped, and random draws that land on telemetry gaps
// exclude the trial (this is what makes the five random datasets differ
// slightly in size).
func Build(sim *telemetry.Simulator, spec Spec, opt BuildOptions) (*Challenge, error) {
	if opt.TrainFrac <= 0 || opt.TrainFrac >= 1 {
		return nil, fmt.Errorf("dataset: train fraction %v out of (0,1)", opt.TrainFrac)
	}
	var refs []trialRef
	for _, j := range sim.Jobs() {
		for g := 0; g < j.NumGPUs; g++ {
			t0, ok := chooseWindow(sim, j, g, spec)
			if !ok {
				continue
			}
			refs = append(refs, trialRef{job: j, gpu: g, t0: t0})
		}
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("dataset: no eligible trials for %s", spec.Name)
	}

	trainIdx, testIdx := stratifiedSplit(refs, opt.TrainFrac, opt.Seed)
	if opt.MaxTrialsPerSet > 0 {
		if len(trainIdx) > opt.MaxTrialsPerSet {
			trainIdx = trainIdx[:opt.MaxTrialsPerSet]
		}
		if len(testIdx) > opt.MaxTrialsPerSet {
			testIdx = testIdx[:opt.MaxTrialsPerSet]
		}
	}

	train, err := materialise(refs, trainIdx)
	if err != nil {
		return nil, err
	}
	test, err := materialise(refs, testIdx)
	if err != nil {
		return nil, err
	}
	return &Challenge{Spec: spec, Train: train, Test: test}, nil
}

// chooseWindow returns the window start time for one series, or ok=false if
// the series is ineligible for this spec.
func chooseWindow(sim *telemetry.Simulator, j *telemetry.Job, gpu int, spec Spec) (float64, bool) {
	d := j.Duration
	switch spec.Method {
	case WindowStart:
		// Collectors start with the job, so the first minute is always
		// gap-free; only duration gates eligibility.
		if d < minDurStart {
			return 0, false
		}
		return 0, true
	case WindowMiddle:
		if d < minDurMiddle {
			return 0, false
		}
		return (d - WindowSeconds) / 2, true
	case WindowRandom:
		if d < minDurRandom {
			return 0, false
		}
		// Deterministic per (series, random index): the five random datasets
		// draw independently, as the challenge generated five variants. A
		// draw landing on a telemetry outage drops the trial, which is why
		// the random datasets are slightly smaller than 60-middle-1 and
		// differ from each other (Table IV).
		seed := j.Seed ^ int64(gpu)<<32 ^ int64(spec.RandomIndex)*0x9e3779b9
		rng := rand.New(rand.NewSource(seed))
		t0 := rng.Float64() * (d - WindowSeconds - 1)
		if sim.HasGap(j, gpu, t0, t0+WindowSeconds) {
			return 0, false
		}
		return t0, true
	}
	return 0, false
}

// stratifiedSplit shuffles trials within each class and splits each class
// trainFrac/1-trainFrac, so every class appears on both sides even at small
// generation scales.
func stratifiedSplit(refs []trialRef, trainFrac float64, seed int64) (train, test []int) {
	byClass := map[int][]int{}
	for i, r := range refs {
		c := int(r.job.Class)
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	rng := rand.New(rand.NewSource(seed))
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		cut := int(float64(len(idx)) * trainFrac)
		if cut == len(idx) && len(idx) > 1 {
			cut-- // keep at least one test trial per class when possible
		}
		if cut == 0 && len(idx) > 1 {
			cut = 1
		}
		train = append(train, idx[:cut]...)
		test = append(test, idx[cut:]...)
	}
	// Shuffle across classes so truncation (MaxTrialsPerSet) stays balanced.
	rng.Shuffle(len(train), func(a, b int) { train[a], train[b] = train[b], train[a] })
	rng.Shuffle(len(test), func(a, b int) { test[a], test[b] = test[b], test[a] })
	return train, test
}

func materialise(refs []trialRef, idx []int) (*Set, error) {
	set := &Set{
		X:      NewTensor3(len(idx), WindowSamples, int(telemetry.NumGPUSensors)),
		Y:      make([]int, len(idx)),
		Models: make([]string, len(idx)),
		JobIDs: make([]int, len(idx)),
		GPUs:   make([]int, len(idx)),
		T0s:    make([]float64, len(idx)),
	}
	for k, i := range idx {
		r := refs[i]
		w, err := r.job.GPUWindow(r.gpu, r.t0, WindowSamples)
		if err != nil {
			return nil, fmt.Errorf("dataset: job %d gpu %d t0 %.1f: %w", r.job.ID, r.gpu, r.t0, err)
		}
		if err := set.X.SetTrial(k, w); err != nil {
			return nil, err
		}
		set.Y[k] = int(r.job.Class)
		set.Models[k] = r.job.Class.Name()
		set.JobIDs[k] = r.job.ID
		set.GPUs[k] = r.gpu
		set.T0s[k] = r.t0
	}
	return set, nil
}
