// Package dataset builds and manipulates the Workload Classification
// Challenge datasets: 60-second, 540-sample, 7-sensor GPU windows extracted
// from labelled jobs, split 80/20 into train and test sets (the paper's
// Table IV), and serialised in the challenge's .npz layout.
package dataset

import (
	"fmt"

	"repro/internal/mat"
)

// Tensor3 is a dense (trials × samples × sensors) array stored as float32,
// matching the challenge files and halving memory for full-scale builds.
type Tensor3 struct {
	N, T, C int
	Data    []float32
}

// NewTensor3 allocates a zeroed tensor.
func NewTensor3(n, t, c int) *Tensor3 {
	return &Tensor3{N: n, T: t, C: c, Data: make([]float32, n*t*c)}
}

// Dims returns the tensor shape; with At it satisfies nn.SeqSource.
func (x *Tensor3) Dims() (n, t, c int) { return x.N, x.T, x.C }

// At returns element (i, t, c).
func (x *Tensor3) At(i, t, c int) float64 {
	return float64(x.Data[(i*x.T+t)*x.C+c])
}

// Set assigns element (i, t, c).
func (x *Tensor3) Set(i, t, c int, v float64) {
	x.Data[(i*x.T+t)*x.C+c] = float32(v)
}

// SetTrial copies a samples×sensors matrix into trial i.
func (x *Tensor3) SetTrial(i int, m *mat.Matrix) error {
	if m.Rows != x.T || m.Cols != x.C {
		return fmt.Errorf("dataset: trial shape %dx%d, want %dx%d", m.Rows, m.Cols, x.T, x.C)
	}
	base := i * x.T * x.C
	for k, v := range m.Data {
		x.Data[base+k] = float32(v)
	}
	return nil
}

// Trial returns trial i as a samples×sensors float64 matrix (copied).
func (x *Tensor3) Trial(i int) *mat.Matrix {
	m := mat.New(x.T, x.C)
	base := i * x.T * x.C
	for k := range m.Data {
		m.Data[k] = float64(x.Data[base+k])
	}
	return m
}

// Flatten returns the tensor reshaped to N×(T·C) float64, the layout used
// before standardisation and PCA (the paper reshapes each trial to R^3780).
func (x *Tensor3) Flatten() *mat.Matrix {
	m := mat.New(x.N, x.T*x.C)
	for k, v := range x.Data {
		m.Data[k] = float64(v)
	}
	return m
}

// Downsample returns a new tensor keeping every stride-th sample of each
// trial — the sequence-length reduction used by the scaled RNN presets.
func (x *Tensor3) Downsample(stride int) *Tensor3 {
	if stride <= 1 {
		out := NewTensor3(x.N, x.T, x.C)
		copy(out.Data, x.Data)
		return out
	}
	nt := (x.T + stride - 1) / stride
	out := NewTensor3(x.N, nt, x.C)
	for i := 0; i < x.N; i++ {
		for t, tt := 0, 0; t < x.T; t, tt = t+stride, tt+1 {
			for c := 0; c < x.C; c++ {
				out.Set(i, tt, c, x.At(i, t, c))
			}
		}
	}
	return out
}

// SelectTrials gathers the given trial indices into a new tensor.
func (x *Tensor3) SelectTrials(idx []int) *Tensor3 {
	out := NewTensor3(len(idx), x.T, x.C)
	stride := x.T * x.C
	for k, i := range idx {
		copy(out.Data[k*stride:(k+1)*stride], x.Data[i*stride:(i+1)*stride])
	}
	return out
}
