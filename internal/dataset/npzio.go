package dataset

import (
	"fmt"

	"repro/internal/npz"
)

// ToArchive serialises a challenge dataset into the exact npz layout the
// MIT challenge distributes: X_train, y_train, model_train, X_test, y_test,
// model_test, with X as float32 (trials, samples, sensors) and y as int64.
func (c *Challenge) ToArchive() (*npz.Archive, error) {
	ar := npz.NewArchive()
	if err := putSet(ar, "train", c.Train); err != nil {
		return nil, err
	}
	if err := putSet(ar, "test", c.Test); err != nil {
		return nil, err
	}
	return ar, nil
}

func putSet(ar *npz.Archive, suffix string, s *Set) error {
	x, err := npz.FromFloat32s(s.X.Data, s.X.N, s.X.T, s.X.C)
	if err != nil {
		return fmt.Errorf("dataset: X_%s: %w", suffix, err)
	}
	ar.Set("X_"+suffix, x)
	labels := make([]int64, len(s.Y))
	for i, v := range s.Y {
		labels[i] = int64(v)
	}
	y, err := npz.FromInt64s(labels, len(labels))
	if err != nil {
		return fmt.Errorf("dataset: y_%s: %w", suffix, err)
	}
	ar.Set("y_"+suffix, y)
	ar.Set("model_"+suffix, npz.FromStrings(s.Models))
	return nil
}

// FromArchive loads a challenge dataset from the npz layout. The Spec is
// carried through opaque metadata-free files, so the caller supplies it.
func FromArchive(ar *npz.Archive, spec Spec) (*Challenge, error) {
	train, err := getSet(ar, "train")
	if err != nil {
		return nil, err
	}
	test, err := getSet(ar, "test")
	if err != nil {
		return nil, err
	}
	return &Challenge{Spec: spec, Train: train, Test: test}, nil
}

func getSet(ar *npz.Archive, suffix string) (*Set, error) {
	xa, ok := ar.Get("X_" + suffix)
	if !ok {
		return nil, fmt.Errorf("dataset: archive missing X_%s", suffix)
	}
	if len(xa.Shape) != 3 {
		return nil, fmt.Errorf("dataset: X_%s has shape %v, want 3-D", suffix, xa.Shape)
	}
	xf, err := xa.AsFloat64s()
	if err != nil {
		return nil, err
	}
	t := NewTensor3(xa.Shape[0], xa.Shape[1], xa.Shape[2])
	for i, v := range xf {
		t.Data[i] = float32(v)
	}

	ya, ok := ar.Get("y_" + suffix)
	if !ok {
		return nil, fmt.Errorf("dataset: archive missing y_%s", suffix)
	}
	y, err := ya.AsInts()
	if err != nil {
		return nil, err
	}
	if len(y) != t.N {
		return nil, fmt.Errorf("dataset: %d labels for %d trials", len(y), t.N)
	}

	var models []string
	if ma, ok := ar.Get("model_" + suffix); ok && ma.Strings != nil {
		models = ma.Strings
	} else {
		models = make([]string, t.N)
	}
	return &Set{
		X: t, Y: y, Models: models,
		JobIDs: make([]int, t.N), GPUs: make([]int, t.N), T0s: make([]float64, t.N),
	}, nil
}
