package dataset

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/npz"
	"repro/internal/telemetry"
)

func testSim(t testing.TB, scale float64) *telemetry.Simulator {
	t.Helper()
	sim, err := telemetry.NewSimulator(telemetry.Config{Seed: 1, Scale: scale, GapRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestTensor3Basics(t *testing.T) {
	x := NewTensor3(2, 3, 4)
	x.Set(1, 2, 3, 9.5)
	if x.At(1, 2, 3) != 9.5 {
		t.Errorf("At = %v", x.At(1, 2, 3))
	}
	m, _ := mat.FromRows([][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}})
	if err := x.SetTrial(0, m); err != nil {
		t.Fatal(err)
	}
	got := x.Trial(0)
	if !mat.Equal(got, m, 1e-6) {
		t.Errorf("Trial round trip failed: %v vs %v", got, m)
	}
	if err := x.SetTrial(0, mat.New(2, 2)); err == nil {
		t.Error("wrong trial shape should fail")
	}
}

func TestTensor3Flatten(t *testing.T) {
	x := NewTensor3(2, 2, 2)
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	for i, v := range vals {
		x.Data[i] = float32(v)
	}
	f := x.Flatten()
	if f.Rows != 2 || f.Cols != 4 {
		t.Fatalf("flatten shape %dx%d", f.Rows, f.Cols)
	}
	if f.At(1, 0) != 5 {
		t.Errorf("flatten content wrong: %v", f)
	}
}

func TestTensor3Downsample(t *testing.T) {
	x := NewTensor3(1, 10, 1)
	for i := 0; i < 10; i++ {
		x.Set(0, i, 0, float64(i))
	}
	d := x.Downsample(3)
	if d.T != 4 {
		t.Fatalf("downsample T = %d, want 4", d.T)
	}
	want := []float64{0, 3, 6, 9}
	for i, w := range want {
		if d.At(0, i, 0) != w {
			t.Errorf("downsample[%d] = %v, want %v", i, d.At(0, i, 0), w)
		}
	}
	same := x.Downsample(1)
	if same.T != 10 || same.At(0, 7, 0) != 7 {
		t.Error("stride 1 must copy")
	}
}

func TestTensor3SelectTrials(t *testing.T) {
	x := NewTensor3(3, 2, 1)
	for i := 0; i < 3; i++ {
		x.Set(i, 0, 0, float64(i*10))
	}
	sel := x.SelectTrials([]int{2, 0})
	if sel.N != 2 || sel.At(0, 0, 0) != 20 || sel.At(1, 0, 0) != 0 {
		t.Errorf("SelectTrials wrong: %+v", sel)
	}
}

func TestChallengeSpecs(t *testing.T) {
	if len(ChallengeSpecs) != 7 {
		t.Fatalf("want 7 challenge datasets per Table IV, got %d", len(ChallengeSpecs))
	}
	names := map[string]bool{}
	for _, s := range ChallengeSpecs {
		names[s.Name] = true
	}
	for _, want := range []string{"60-start-1", "60-middle-1", "60-random-1", "60-random-5"} {
		if !names[want] {
			t.Errorf("missing dataset %s", want)
		}
	}
	s, ok := SpecByName("60-middle-1")
	if !ok || s.Method != WindowMiddle {
		t.Errorf("SpecByName = %+v, %v", s, ok)
	}
	if _, ok := SpecByName("60-end-1"); ok {
		t.Error("unknown spec should not resolve")
	}
}

func TestWindowMethodString(t *testing.T) {
	if WindowStart.String() != "start" || WindowMiddle.String() != "middle" ||
		WindowRandom.String() != "random" {
		t.Error("WindowMethod strings wrong")
	}
}

func TestBuildShapesAndLabels(t *testing.T) {
	sim := testSim(t, 0.05)
	ch, err := Build(sim, ChallengeSpecs[0], DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Set{ch.Train, ch.Test} {
		if s.X.T != WindowSamples || s.X.C != 7 {
			t.Fatalf("window shape %dx%d", s.X.T, s.X.C)
		}
		if s.X.N != len(s.Y) || len(s.Y) != len(s.Models) {
			t.Fatalf("inconsistent lengths: %d trials, %d labels, %d models", s.X.N, len(s.Y), len(s.Models))
		}
		for i, y := range s.Y {
			if y < 0 || y >= int(telemetry.NumClasses) {
				t.Fatalf("label %d out of range", y)
			}
			if s.Models[i] != telemetry.Class(y).Name() {
				t.Fatalf("model name %q does not match label %d", s.Models[i], y)
			}
		}
	}
	// 80/20 split.
	total := float64(ch.Train.Len() + ch.Test.Len())
	frac := float64(ch.Train.Len()) / total
	if math.Abs(frac-0.8) > 0.05 {
		t.Errorf("train fraction %v, want ≈0.8", frac)
	}
}

func TestBuildTableIVOrdering(t *testing.T) {
	// start must have more trials than middle; middle ≥ each random (up to
	// gap noise). This is the Table IV eligibility shape.
	sim := testSim(t, 0.15)
	counts := map[string]int{}
	for _, spec := range ChallengeSpecs {
		ch, err := Build(sim, spec, DefaultBuildOptions())
		if err != nil {
			t.Fatal(err)
		}
		counts[spec.Name] = ch.Train.Len() + ch.Test.Len()
	}
	if counts["60-start-1"] <= counts["60-middle-1"] {
		t.Errorf("start (%d) must exceed middle (%d)", counts["60-start-1"], counts["60-middle-1"])
	}
	for i := 1; i <= 5; i++ {
		name := ChallengeSpecs[1+i].Name
		if counts[name] > counts["60-middle-1"] {
			t.Errorf("%s (%d) should not exceed middle (%d)", name, counts[name], counts["60-middle-1"])
		}
	}
}

func TestBuildRandomVariantsDiffer(t *testing.T) {
	sim := testSim(t, 0.05)
	opts := DefaultBuildOptions()
	ch1, err := Build(sim, ChallengeSpecs[2], opts) // 60-random-1
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := Build(sim, ChallengeSpecs[3], opts) // 60-random-2
	if err != nil {
		t.Fatal(err)
	}
	// Same trial universe, different window draws: tensors must differ.
	if ch1.Train.Len() == ch2.Train.Len() {
		same := true
		for i := 0; i < ch1.Train.X.N*ch1.Train.X.T*ch1.Train.X.C && same; i++ {
			if ch1.Train.X.Data[i] != ch2.Train.X.Data[i] {
				same = false
			}
		}
		if same {
			t.Error("random-1 and random-2 produced identical tensors")
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	sim := testSim(t, 0.03)
	opts := DefaultBuildOptions()
	a, err := Build(sim, ChallengeSpecs[2], opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(sim, ChallengeSpecs[2], opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Train.Len() != b.Train.Len() {
		t.Fatal("non-deterministic build size")
	}
	for i := range a.Train.X.Data {
		if a.Train.X.Data[i] != b.Train.X.Data[i] {
			t.Fatal("non-deterministic build content")
		}
	}
}

func TestBuildMaxTrials(t *testing.T) {
	sim := testSim(t, 0.05)
	opts := DefaultBuildOptions()
	opts.MaxTrialsPerSet = 50
	ch, err := Build(sim, ChallengeSpecs[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Train.Len() > 50 || ch.Test.Len() > 50 {
		t.Errorf("truncation failed: %d/%d", ch.Train.Len(), ch.Test.Len())
	}
}

func TestBuildBadOptions(t *testing.T) {
	sim := testSim(t, 0.02)
	opts := DefaultBuildOptions()
	opts.TrainFrac = 0
	if _, err := Build(sim, ChallengeSpecs[0], opts); err == nil {
		t.Error("zero train fraction should fail")
	}
	opts.TrainFrac = 1
	if _, err := Build(sim, ChallengeSpecs[0], opts); err == nil {
		t.Error("train fraction 1 should fail")
	}
}

func TestStratifiedSplitAllClassesBothSides(t *testing.T) {
	sim := testSim(t, 0.1)
	ch, err := Build(sim, ChallengeSpecs[1], DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	trainClasses := map[int]bool{}
	testClasses := map[int]bool{}
	for _, y := range ch.Train.Y {
		trainClasses[y] = true
	}
	for _, y := range ch.Test.Y {
		testClasses[y] = true
	}
	if len(trainClasses) != int(telemetry.NumClasses) {
		t.Errorf("train covers %d classes", len(trainClasses))
	}
	if len(testClasses) != int(telemetry.NumClasses) {
		t.Errorf("test covers %d classes", len(testClasses))
	}
}

func TestSetSelect(t *testing.T) {
	sim := testSim(t, 0.02)
	ch, err := Build(sim, ChallengeSpecs[0], DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	sub := ch.Train.Select([]int{0, 2})
	if sub.Len() != 2 || sub.Y[0] != ch.Train.Y[0] || sub.Y[1] != ch.Train.Y[2] {
		t.Error("Select mismatch")
	}
	if sub.Models[1] != ch.Train.Models[2] {
		t.Error("Select models mismatch")
	}
}

func TestNumClasses(t *testing.T) {
	s := &Set{Y: []int{0, 3, 1}}
	if s.NumClasses() != 4 {
		t.Errorf("NumClasses = %d", s.NumClasses())
	}
}

func TestNpzRoundTrip(t *testing.T) {
	sim := testSim(t, 0.02)
	opts := DefaultBuildOptions()
	opts.MaxTrialsPerSet = 20
	ch, err := Build(sim, ChallengeSpecs[2], opts)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := ch.ToArchive()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ar.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ar2, err := npz.ReadArchive(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromArchive(ar2, ch.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Train.Len() != ch.Train.Len() || got.Test.Len() != ch.Test.Len() {
		t.Fatalf("sizes changed: %d/%d vs %d/%d", got.Train.Len(), got.Test.Len(), ch.Train.Len(), ch.Test.Len())
	}
	for i := range ch.Train.X.Data {
		if got.Train.X.Data[i] != ch.Train.X.Data[i] {
			t.Fatal("tensor changed through npz round trip")
		}
	}
	for i, y := range ch.Train.Y {
		if got.Train.Y[i] != y || got.Train.Models[i] != ch.Train.Models[i] {
			t.Fatal("labels changed through npz round trip")
		}
	}
}

func TestFromArchiveMissingMembers(t *testing.T) {
	ar := npz.NewArchive()
	if _, err := FromArchive(ar, ChallengeSpecs[0]); err == nil {
		t.Error("empty archive should fail")
	}
}

// TestDownsamplePreservesTrials property: downsampling never mixes data
// across trials or sensors.
func TestDownsamplePreservesTrials(t *testing.T) {
	f := func(seed int64) bool {
		n, tt, c := 3, 20, 4
		x := NewTensor3(n, tt, c)
		for i := range x.Data {
			x.Data[i] = float32(int64(i) + seed%100)
		}
		d := x.Downsample(4)
		for i := 0; i < n; i++ {
			for k := 0; k < d.T; k++ {
				for s := 0; s < c; s++ {
					if d.At(i, k, s) != x.At(i, k*4, s) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
