package preprocess

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/wire"
)

// codecVersion is the preprocess payload format (scaler and PCA); bump on
// incompatible layout changes so old readers fail descriptively instead of
// misloading.
const codecVersion = 1

// Encode serialises the fitted scaler's column statistics. The scaler must
// travel with any model it standardised features for, so live windows are
// preprocessed exactly as the training set was.
func (s *StandardScaler) Encode(w io.Writer) error {
	if s.Means == nil {
		return errors.New("preprocess: cannot encode an unfitted scaler")
	}
	ww := wire.NewWriter(w)
	ww.U16(codecVersion)
	ww.F64s(s.Means)
	ww.F64s(s.Stds)
	return ww.Err()
}

// DecodeScaler reads a scaler previously written by Encode.
func DecodeScaler(r io.Reader) (*StandardScaler, error) {
	rr := wire.NewReader(r)
	if v := rr.U16(); rr.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("preprocess: unsupported codec version %d (this build reads %d)", v, codecVersion)
	}
	s := &StandardScaler{Means: rr.F64s(), Stds: rr.F64s()}
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if len(s.Means) == 0 || len(s.Means) != len(s.Stds) {
		return nil, fmt.Errorf("preprocess: corrupt scaler (%d means, %d stds)", len(s.Means), len(s.Stds))
	}
	return s, nil
}

// Equal reports whether two fitted scalers carry bit-identical statistics —
// the compatibility check serving hot-swap paths run before installing a new
// model next to embedders that standardised with the old scaler.
func (s *StandardScaler) Equal(o *StandardScaler) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.Means) != len(o.Means) || len(s.Stds) != len(o.Stds) {
		return false
	}
	for i := range s.Means {
		if s.Means[i] != o.Means[i] || s.Stds[i] != o.Stds[i] {
			return false
		}
	}
	return true
}

// Encode serialises the fitted PCA projection.
func (p *PCA) Encode(w io.Writer) error {
	if p.Components == nil {
		return errors.New("preprocess: cannot encode an unfitted PCA")
	}
	ww := wire.NewWriter(w)
	ww.U16(codecVersion)
	ww.Matrix(p.Components)
	ww.F64s(p.Means)
	ww.F64s(p.ExplainedVar)
	return ww.Err()
}

// DecodePCA reads a PCA previously written by Encode.
func DecodePCA(r io.Reader) (*PCA, error) {
	rr := wire.NewReader(r)
	if v := rr.U16(); rr.Err() == nil && v != codecVersion {
		return nil, fmt.Errorf("preprocess: unsupported codec version %d (this build reads %d)", v, codecVersion)
	}
	p := &PCA{Components: rr.Matrix(), Means: rr.F64s(), ExplainedVar: rr.F64s()}
	if err := rr.Err(); err != nil {
		return nil, err
	}
	if p.Components.Rows < 1 || p.Components.Cols < 1 ||
		len(p.Means) != p.Components.Rows || len(p.ExplainedVar) != p.Components.Cols {
		return nil, errors.New("preprocess: corrupt PCA shapes")
	}
	return p, nil
}
