package preprocess

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// TestScalerCodecRoundTrip pins Fit → Encode → Decode → Transform
// bit-identical to the in-memory scaler — the property that keeps live
// serving windows in the training distribution after a model reload.
func TestScalerCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := mat.New(50, 12)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()*3 + 7
	}
	var s StandardScaler
	if err := s.Fit(x); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeScaler(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(&s) {
		t.Fatal("decoded scaler statistics differ")
	}
	want, err := s.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if have.Data[i] != want.Data[i] {
			t.Fatalf("z[%d]: %v vs %v (not bit-identical)", i, have.Data[i], want.Data[i])
		}
	}
}

func TestScalerEqual(t *testing.T) {
	a := &StandardScaler{Means: []float64{1, 2}, Stds: []float64{3, 4}}
	b := &StandardScaler{Means: []float64{1, 2}, Stds: []float64{3, 4}}
	if !a.Equal(b) {
		t.Error("identical scalers reported unequal")
	}
	b.Stds[1] = 5
	if a.Equal(b) {
		t.Error("different scalers reported equal")
	}
	if a.Equal(nil) {
		t.Error("nil comparison should be false")
	}
	var nilScaler *StandardScaler
	if !nilScaler.Equal(nil) {
		t.Error("nil-nil comparison should be true")
	}
}

// TestPCACodecRoundTrip pins the PCA projection bit-identical through a
// round trip.
func TestPCACodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x := mat.New(40, 9)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	p, err := FitPCA(x, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePCA(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if have.Data[i] != want.Data[i] {
			t.Fatalf("proj[%d]: %v vs %v (not bit-identical)", i, have.Data[i], want.Data[i])
		}
	}
}

func TestCodecUnfittedAndCorrupt(t *testing.T) {
	if err := (&StandardScaler{}).Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("encoding an unfitted scaler should fail")
	}
	if err := (&PCA{}).Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("encoding an unfitted PCA should fail")
	}
	if _, err := DecodeScaler(bytes.NewReader(nil)); err == nil {
		t.Fatal("decoding empty input should fail")
	}
	if _, err := DecodePCA(bytes.NewReader([]byte{1, 0})); err == nil {
		t.Fatal("decoding truncated PCA should fail")
	}
}
