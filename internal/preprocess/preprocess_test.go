package preprocess

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestStandardScaler(t *testing.T) {
	x, _ := mat.FromRows([][]float64{{1, 100}, {3, 300}, {5, 500}})
	var s StandardScaler
	z, err := s.FitTransform(x)
	if err != nil {
		t.Fatal(err)
	}
	means := mat.ColumnMeans(z)
	stds := mat.ColumnStds(z, means)
	for j := 0; j < 2; j++ {
		if math.Abs(means[j]) > 1e-12 || math.Abs(stds[j]-1) > 1e-12 {
			t.Errorf("column %d: mean %v std %v", j, means[j], stds[j])
		}
	}
}

func TestStandardScalerConstantColumn(t *testing.T) {
	x, _ := mat.FromRows([][]float64{{7, 1}, {7, 2}})
	var s StandardScaler
	z, err := s.FitTransform(x)
	if err != nil {
		t.Fatal(err)
	}
	if z.At(0, 0) != 0 || z.At(1, 0) != 0 {
		t.Errorf("constant column should centre to zero, got %v %v", z.At(0, 0), z.At(1, 0))
	}
}

func TestStandardScalerTrainTestConsistency(t *testing.T) {
	// Test data must use train statistics, not its own.
	train, _ := mat.FromRows([][]float64{{0}, {2}})
	test, _ := mat.FromRows([][]float64{{4}})
	var s StandardScaler
	if _, err := s.FitTransform(train); err != nil {
		t.Fatal(err)
	}
	z, err := s.Transform(test)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z.At(0, 0)-3) > 1e-12 { // (4-1)/1
		t.Errorf("test transform = %v, want 3", z.At(0, 0))
	}
}

func TestStandardScalerErrors(t *testing.T) {
	var s StandardScaler
	if _, err := s.Transform(mat.New(1, 1)); err == nil {
		t.Error("transform before fit should fail")
	}
	if err := s.Fit(mat.New(0, 3)); err == nil {
		t.Error("fit on empty should fail")
	}
	s2 := StandardScaler{}
	x, _ := mat.FromRows([][]float64{{1, 2}})
	if err := s2.Fit(x); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Transform(mat.New(1, 3)); err == nil {
		t.Error("column mismatch should fail")
	}
}

func TestPCARecoverDominantDirection(t *testing.T) {
	// Data varies mostly along (1,1)/√2; PC1 must align with it.
	rng := rand.New(rand.NewSource(2))
	x := mat.New(300, 2)
	for i := 0; i < 300; i++ {
		s := rng.NormFloat64() * 10
		n := rng.NormFloat64() * 0.5
		x.Set(i, 0, s+n)
		x.Set(i, 1, s-n)
	}
	p, err := FitPCA(x, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	v0, v1 := p.Components.At(0, 0), p.Components.At(1, 0)
	if math.Abs(math.Abs(v0)-math.Sqrt(0.5)) > 0.02 || math.Abs(v0-v1) > 0.04 {
		t.Errorf("PC1 = (%v, %v), want ±(0.707, 0.707)", v0, v1)
	}
	if p.ExplainedVar[0] < 50 {
		t.Errorf("explained variance %v too small", p.ExplainedVar[0])
	}
}

func TestPCATransformShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := mat.New(50, 10)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	p, err := FitPCA(x, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	z, err := p.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	if z.Rows != 50 || z.Cols != 4 {
		t.Fatalf("transform shape %dx%d", z.Rows, z.Cols)
	}
	// Projected data must be centred.
	means := mat.ColumnMeans(z)
	for j, m := range means {
		if math.Abs(m) > 1e-8 {
			t.Errorf("projected column %d mean %v", j, m)
		}
	}
}

func TestPCARandomizedPathMatchesExact(t *testing.T) {
	// Above exactThreshold the randomized solver runs; its explained
	// variances must match the exact solver computed on the same data.
	rng := rand.New(rand.NewSource(5))
	n, d := 120, exactThreshold+10
	x := mat.New(n, d)
	for i := 0; i < n; i++ {
		base := rng.NormFloat64() * 4
		for j := 0; j < d; j++ {
			x.Set(i, j, base*math.Sin(float64(j)/7)+rng.NormFloat64()*0.3)
		}
	}
	k := 5
	p, err := FitPCA(x, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Exact reference on centred data.
	centered := x.Clone()
	means := mat.ColumnMeans(x)
	for i := 0; i < n; i++ {
		row := centered.Row(i)
		for j := range row {
			row[j] -= means[j]
		}
	}
	cov, _ := mat.Covariance(centered, false)
	exactVals, _, err := mat.EigSym(cov)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		rel := math.Abs(p.ExplainedVar[i]-exactVals[i]) / (exactVals[i] + 1e-12)
		// Leading (signal) components must be tight; trailing components sit
		// in a near-flat noise spectrum where subspace iteration is looser.
		tol := 0.05
		if i >= 2 {
			tol = 0.15
		}
		if rel > tol {
			t.Errorf("component %d: randomized %v vs exact %v", i, p.ExplainedVar[i], exactVals[i])
		}
	}
}

func TestPCAErrors(t *testing.T) {
	x := mat.New(10, 4)
	if _, err := FitPCA(x, 0, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := FitPCA(x, 5, 1); err == nil {
		t.Error("k>d should fail")
	}
	if _, err := FitPCA(mat.New(1, 4), 2, 1); err == nil {
		t.Error("single observation should fail")
	}
	var p PCA
	if _, err := p.Transform(x); err == nil {
		t.Error("transform before fit should fail")
	}
}

func TestCovarianceDim(t *testing.T) {
	if CovarianceDim(7) != 28 {
		t.Errorf("CovarianceDim(7) = %d, want 28 (the paper's R^28)", CovarianceDim(7))
	}
	if CovarianceDim(1) != 1 || CovarianceDim(2) != 3 {
		t.Error("CovarianceDim wrong for small c")
	}
}

func TestCovarianceEmbedKnown(t *testing.T) {
	// One trial, T=3, C=2: M = [[1,0],[0,1],[1,1]], MᵀM = [[2,1],[1,2]],
	// /(T-1)=2 → upper triangle [1, 0.5, 1].
	z, _ := mat.FromRows([][]float64{{1, 0, 0, 1, 1, 1}})
	out, err := CovarianceEmbed(z, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 1}
	for i, w := range want {
		if math.Abs(out.At(0, i)-w) > 1e-12 {
			t.Errorf("embed[%d] = %v, want %v", i, out.At(0, i), w)
		}
	}
}

func TestCovarianceEmbedShape(t *testing.T) {
	z := mat.New(5, 540*7)
	out, err := CovarianceEmbed(z, 540, 7)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows != 5 || out.Cols != 28 {
		t.Errorf("shape %dx%d, want 5x28", out.Rows, out.Cols)
	}
}

func TestCovarianceEmbedErrors(t *testing.T) {
	if _, err := CovarianceEmbed(mat.New(1, 10), 3, 2); err == nil {
		t.Error("shape mismatch should fail")
	}
	if _, err := CovarianceEmbed(mat.New(1, 2), 1, 2); err == nil {
		t.Error("T<2 should fail")
	}
}

// TestCovarianceEmbedMatchesMatCovariance cross-checks against
// mat.Covariance on uncentered data.
func TestCovarianceEmbedMatchesMatCovariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tSteps, c := 8, 3
		trial := mat.New(tSteps, c)
		for i := range trial.Data {
			trial.Data[i] = rng.NormFloat64()
		}
		flat := mat.New(1, tSteps*c)
		copy(flat.Data, trial.Data)
		emb, err := CovarianceEmbed(flat, tSteps, c)
		if err != nil {
			return false
		}
		cov, err := mat.Covariance(trial, false)
		if err != nil {
			return false
		}
		k := 0
		for a := 0; a < c; a++ {
			for b := a; b < c; b++ {
				if math.Abs(emb.At(0, k)-cov.At(a, b)) > 1e-10 {
					return false
				}
				k++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCovariancePairNames(t *testing.T) {
	names := CovariancePairNames([]string{"a", "b", "c"})
	want := []string{"var(a)", "cov(a,b)", "cov(a,c)", "var(b)", "cov(b,c)", "var(c)"}
	if len(names) != len(want) {
		t.Fatalf("got %d names", len(names))
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("names[%d] = %q, want %q", i, names[i], w)
		}
	}
}
