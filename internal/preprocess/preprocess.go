// Package preprocess implements the paper's feature pipeline:
// StandardScaler (scikit-learn semantics), PCA, and the covariance
// upper-triangle embedding that maps a standardised 540×7 trial to the 28
// unique sensor variances/covariances (§IV-A).
//
// The order matches the paper exactly: trials are flattened to R^{T·C},
// standardised per column on the training set, and only then reduced by
// PCA or the covariance embedding.
package preprocess

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/mat"
)

// StandardScaler standardises columns to zero mean and unit variance using
// training-set statistics, like scikit-learn's StandardScaler (population
// std, constant columns left unscaled).
type StandardScaler struct {
	Means []float64
	Stds  []float64
}

// Fit computes per-column statistics from x.
func (s *StandardScaler) Fit(x *mat.Matrix) error {
	if x.Rows == 0 {
		return errors.New("preprocess: cannot fit scaler on empty matrix")
	}
	s.Means = mat.ColumnMeans(x)
	s.Stds = mat.ColumnStds(x, s.Means)
	for i, v := range s.Stds {
		if v == 0 {
			s.Stds[i] = 1 // constant column: centre only
		}
	}
	return nil
}

// Transform returns a standardised copy of x.
func (s *StandardScaler) Transform(x *mat.Matrix) (*mat.Matrix, error) {
	if s.Means == nil {
		return nil, errors.New("preprocess: scaler not fitted")
	}
	if x.Cols != len(s.Means) {
		return nil, fmt.Errorf("preprocess: %d columns, scaler fitted on %d", x.Cols, len(s.Means))
	}
	out := mat.New(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		dst := out.Row(i)
		for j := range src {
			dst[j] = (src[j] - s.Means[j]) / s.Stds[j]
		}
	}
	return out, nil
}

// FitTransform fits on x and returns its standardised copy.
func (s *StandardScaler) FitTransform(x *mat.Matrix) (*mat.Matrix, error) {
	if err := s.Fit(x); err != nil {
		return nil, err
	}
	return s.Transform(x)
}

// PCA projects observations onto the leading principal components of the
// training distribution.
type PCA struct {
	Components   *mat.Matrix // d×k, columns are principal axes
	Means        []float64
	ExplainedVar []float64 // eigenvalues, descending
}

// exactThreshold is the dimensionality below which the exact Jacobi solver
// is used; above it the randomized top-k solver avoids forming the d×d
// covariance (PCA on 3,780-dim flattened trials).
const exactThreshold = 256

// FitPCA learns a k-component PCA from x (one observation per row).
func FitPCA(x *mat.Matrix, k int, seed int64) (*PCA, error) {
	if k <= 0 || k > x.Cols {
		return nil, fmt.Errorf("preprocess: PCA k=%d out of range for %d features", k, x.Cols)
	}
	if x.Rows < 2 {
		return nil, errors.New("preprocess: PCA needs at least two observations")
	}
	p := &PCA{Means: mat.ColumnMeans(x)}

	centered := mat.New(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		dst := centered.Row(i)
		for j := range src {
			dst[j] = src[j] - p.Means[j]
		}
	}

	if x.Cols <= exactThreshold {
		cov, err := mat.Covariance(centered, false)
		if err != nil {
			return nil, err
		}
		vals, vecs, err := mat.EigSym(cov)
		if err != nil {
			return nil, err
		}
		p.ExplainedVar = vals[:k]
		p.Components = mat.New(x.Cols, k)
		for c := 0; c < k; c++ {
			for r := 0; r < x.Cols; r++ {
				p.Components.Set(r, c, vecs.At(r, c))
			}
		}
		return p, nil
	}

	vals, vecs, err := mat.EigSymTopK(centered, k, 3, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	p.ExplainedVar = vals
	p.Components = vecs
	return p, nil
}

// Transform projects x onto the fitted components, returning rows in R^k.
func (p *PCA) Transform(x *mat.Matrix) (*mat.Matrix, error) {
	if p.Components == nil {
		return nil, errors.New("preprocess: PCA not fitted")
	}
	if x.Cols != p.Components.Rows {
		return nil, fmt.Errorf("preprocess: %d features, PCA fitted on %d", x.Cols, p.Components.Rows)
	}
	out := mat.New(x.Rows, p.Components.Cols)
	row := make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		src := x.Row(i)
		for j := range row {
			row[j] = src[j] - p.Means[j]
		}
		dst := out.Row(i)
		for c := 0; c < p.Components.Cols; c++ {
			var s float64
			for r, v := range row {
				s += v * p.Components.At(r, c)
			}
			dst[c] = s
		}
	}
	return out, nil
}

// CovarianceDim returns the embedding size for c sensors: c(c+1)/2 unique
// entries of the upper triangle (28 for the challenge's 7 sensors).
func CovarianceDim(c int) int { return c * (c + 1) / 2 }

// CovarianceEmbed maps each row of z — a flattened standardised trial in
// R^{T·C} — to the upper triangle of MᵀM/(T-1), where M is the trial
// reshaped to T×C. This is the paper's second dimensionality-reduction
// technique: R^{n×540×7} ↦ R^{n×28}.
func CovarianceEmbed(z *mat.Matrix, t, c int) (*mat.Matrix, error) {
	if t < 2 || c < 1 {
		return nil, fmt.Errorf("preprocess: invalid trial shape %dx%d", t, c)
	}
	if z.Cols != t*c {
		return nil, fmt.Errorf("preprocess: %d columns cannot reshape to %dx%d", z.Cols, t, c)
	}
	dim := CovarianceDim(c)
	out := mat.New(z.Rows, dim)
	inv := 1.0 / float64(t-1)
	for i := 0; i < z.Rows; i++ {
		trial := z.Row(i) // row-major T×C
		dst := out.Row(i)
		k := 0
		for a := 0; a < c; a++ {
			for b := a; b < c; b++ {
				var s float64
				for step := 0; step < t; step++ {
					s += trial[step*c+a] * trial[step*c+b]
				}
				dst[k] = s * inv
				k++
			}
		}
	}
	return out, nil
}

// CovariancePairNames labels the embedding dimensions with the sensor-pair
// each entry couples, in the same order CovarianceEmbed emits them:
// "var(s0)", "cov(s0,s1)", ..., used by the feature-importance analysis.
func CovariancePairNames(sensorNames []string) []string {
	c := len(sensorNames)
	names := make([]string, 0, CovarianceDim(c))
	for a := 0; a < c; a++ {
		for b := a; b < c; b++ {
			if a == b {
				names = append(names, "var("+sensorNames[a]+")")
			} else {
				names = append(names, "cov("+sensorNames[a]+","+sensorNames[b]+")")
			}
		}
	}
	return names
}
